//===- bench/bench_security_entropy.cpp - Section 8 security --------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies the Section 8 security observation: heap-base randomization
/// (ASLR-style) gives an attacker one unknown that, once leaked, exposes
/// the entire deterministic layout, while DieHard randomizes *every*
/// placement independently. We report placement entropy (bits an attacker
/// must guess to locate a victim object relative to a known object) and
/// the adjacency rate (how reliably heap grooming lands attacker data next
/// to a victim) for each allocator.
///
//===----------------------------------------------------------------------===//

#include "analysis/Entropy.h"
#include "baselines/LeaAllocator.h"
#include "bench/BenchUtil.h"
#include "core/DieHardHeap.h"

#include <cstdio>

using namespace diehard;

int main() {
  std::printf("Section 8: layout unpredictability "
              "(attacker-guess entropy)\n");
  bench::printRule(78);
  std::printf("%-26s %14s %14s %14s\n", "allocator", "Shannon bits",
              "min-entropy", "adjacency rate");
  bench::printRule(78);

  constexpr int Samples = 2000;
  constexpr size_t ObjectSize = 64;

  {
    // Lea baseline: relative placement is a constant — zero entropy even
    // under perfect base-address randomization.
    EntropyEstimate E = estimatePlacementEntropy(
        [](uint64_t) {
          LeaAllocator A(16 << 20);
          auto *First = static_cast<char *>(A.allocate(ObjectSize));
          auto *Second = static_cast<char *>(A.allocate(ObjectSize));
          return static_cast<uint64_t>(Second - First);
        },
        200);
    double Adjacency = measureAdjacencyRate(
        [](uint64_t) {
          LeaAllocator A(16 << 20);
          auto First = reinterpret_cast<uintptr_t>(A.allocate(ObjectSize));
          auto Second = reinterpret_cast<uintptr_t>(A.allocate(ObjectSize));
          return std::make_pair(First, Second);
        },
        ObjectSize + 16, 200);
    std::printf("%-26s %14.2f %14.2f %13.1f%%\n", "lea (freelist)",
                E.ShannonBits, E.MinEntropyBits, 100.0 * Adjacency);
  }

  for (double M : {2.0, 4.0}) {
    DieHardOptions O;
    O.HeapSize = 12 * SizeClass::MaxObjectSize * 32;
    O.M = M;
    EntropyEstimate E = estimatePlacementEntropy(
        [&](uint64_t Seed) {
          DieHardOptions Local = O;
          Local.Seed = Seed | 1;
          DieHardHeap H(Local);
          char *Base =
              static_cast<char *>(H.getObjectStart(H.allocate(ObjectSize)));
          char *Second = static_cast<char *>(H.allocate(ObjectSize));
          return static_cast<uint64_t>(Second - Base);
        },
        Samples);
    double Adjacency = measureAdjacencyRate(
        [&](uint64_t Seed) {
          DieHardOptions Local = O;
          Local.Seed = Seed | 1;
          DieHardHeap H(Local);
          auto First = reinterpret_cast<uintptr_t>(H.allocate(ObjectSize));
          auto Second = reinterpret_cast<uintptr_t>(H.allocate(ObjectSize));
          return std::make_pair(First, Second);
        },
        ObjectSize, Samples);
    char Label[32];
    std::snprintf(Label, sizeof(Label), "diehard (M=%.0f)", M);
    std::printf("%-26s %14.2f %14.2f %13.2f%%\n", Label, E.ShannonBits,
                E.MinEntropyBits, 100.0 * Adjacency);
  }

  bench::printRule(78);
  std::printf("Shape: the freelist allocator's relative layout carries 0\n"
              "bits (and ~100%% adjacency — heap grooming always works);\n"
              "every DieHard placement carries ~log2(slots) fresh bits and\n"
              "adjacency is ~1/slots (Section 8: base-address\n"
              "randomization is weak, per-object randomization is not).\n"
              "Note: entropy estimates are capped near log2(samples) =\n"
              "%.1f bits by sample count; true placement entropy is\n"
              "log2(slots).\n",
              std::log2(static_cast<double>(Samples)));
  return 0;
}
