//===- bench/bench_uninit_detect.cpp - Theorem 3 table --------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Section 6.3 numbers: the probability that the replicated
/// voter detects an uninitialized read of B bits with k replicas, including
/// the paper's counterintuitive observation that extra replicas *lower*
/// detection for narrow reads (82% -> 66.7% for 4 bits, 3 -> 4 replicas)
/// while wide reads stay near certainty.
///
//===----------------------------------------------------------------------===//

#include "analysis/MonteCarlo.h"
#include "analysis/Probability.h"
#include "bench/BenchUtil.h"

#include <cstdio>

using namespace diehard;

int main() {
  std::printf("Section 6.3: Probability of Detecting an Uninitialized "
              "Read\n");
  std::printf("(analytic = Theorem 3, sim = Monte Carlo, 200k trials)\n");
  bench::printRule();
  std::printf("%-10s", "bits read");
  const int ReplicaCounts[] = {3, 4, 5};
  for (int K : ReplicaCounts)
    std::printf("   k=%d analytic / sim ", K);
  std::printf("\n");
  bench::printRule();

  Rng Rand(0x6E3);
  for (int Bits : {1, 2, 4, 8, 16, 32}) {
    std::printf("%-10d", Bits);
    for (int K : ReplicaCounts) {
      double Analytic = detectUninitReadProbability(Bits, K);
      double Sim = simulateUninitDetect(Bits, K, 200000, Rand);
      std::printf("    %7.3f%% / %7.3f%%", 100.0 * Analytic, 100.0 * Sim);
    }
    std::printf("\n");
  }
  bench::printRule();
  std::printf("Paper anchors: B=4 drops 82%% -> 66.7%% going from three to\n"
              "four replicas; B=16 stays above 99.99%% (Section 6.3).\n");
  return 0;
}
