//===- bench/bench_real_apps.cpp - genuine-application check --------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-validation of Figure 5(a) with *real* miniature applications
/// rather than parameterized drivers: the continued-fraction bignum
/// workload (cfrac's core) and the hypercube message simulator (lindsay's
/// core), each run over the three memory managers. If the synthetic suite
/// models the world faithfully, the normalized runtimes here land in the
/// same bands.
///
//===----------------------------------------------------------------------===//

#include "apps/MiniCfrac.h"
#include "apps/MiniEspresso.h"
#include "apps/MiniLindsay.h"
#include "baselines/DieHardAllocator.h"
#include "baselines/GcAllocator.h"
#include "baselines/LeaAllocator.h"
#include "bench/BenchUtil.h"

#include <cstdio>
#include <functional>

using namespace diehard;

namespace {

double timeOn(const std::function<void(Allocator &)> &App,
              const std::function<Allocator *()> &Make, int Reps = 3) {
  // One warm-up run before timing, as in the paper (Section 7.2): the
  // first pass demand-faults the heap's pages; the steady state is what
  // the figure reports.
  Allocator *A = Make();
  App(*A);
  double Best = 1e300;
  for (int R = 0; R < Reps; ++R) {
    double T = bench::timeSeconds([&] { App(*A); });
    Best = T < Best ? T : Best;
  }
  delete A;
  return Best;
}

void runRow(const char *Name, const std::function<void(Allocator &)> &App) {
  double TMalloc = timeOn(App, [] {
    return static_cast<Allocator *>(new LeaAllocator(size_t(512) << 20));
  });
  double TGc = timeOn(App, [] {
    return static_cast<Allocator *>(
        new GcAllocator(size_t(768) << 20, 96 << 20));
  });
  double TDieHard = timeOn(App, [] {
    DieHardOptions O;
    O.HeapSize = 384 * 1024 * 1024;
    O.Seed = 0xA44;
    return static_cast<Allocator *>(new DieHardAllocator(O));
  });
  std::printf("%-22s %10.2f %10.2f %10.2f\n", Name, 1.0, TGc / TMalloc,
              TDieHard / TMalloc);
}

} // namespace

int main() {
  std::printf("Real miniature applications (normalized to malloc)\n");
  bench::printRule();
  std::printf("%-22s %10s %10s %10s\n", "application", "malloc", "GC",
              "DieHard");
  bench::printRule();

  runRow("cfrac-core (bignums)", [](Allocator &A) {
    (void)runCfracWorkload(A, 60, 260, 0xC0FFEE);
  });

  runRow("espresso-core (cubes)", [](Allocator &A) {
    (void)runEspressoWorkload(A, 300, 10, 160, 0xE59);
  });

  runRow("lindsay-core (routing)", [](Allocator &A) {
    LindsayConfig Config;
    Config.Dimensions = 8;
    Config.Messages = 60000;
    (void)runLindsay(A, Config);
  });

  bench::printRule();
  std::printf("Shape check: both rows should land in the Figure 5(a)\n"
              "allocation-intensive band (DieHard above 1x, same order as\n"
              "the synthetic suite's cfrac and lindsay rows).\n");
  return 0;
}
