//===- bench/BenchUtil.h - shared harness helpers ---------------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small timing and formatting helpers shared by the experiment binaries.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_BENCH_BENCHUTIL_H
#define DIEHARD_BENCH_BENCHUTIL_H

#include "baselines/Allocator.h"
#include "workloads/SyntheticWorkload.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <vector>

namespace diehard {
namespace bench {

/// Wall-clock seconds for one call of \p Fn.
inline double timeSeconds(const std::function<void()> &Fn) {
  auto Start = std::chrono::steady_clock::now();
  Fn();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

/// Runs \p W on \p Target \p Reps times and returns the fastest run, which
/// is the conventional way to suppress scheduling noise.
inline double timeWorkload(SyntheticWorkload &W, Allocator &Target,
                           int Reps = 3) {
  double Best = 1e300;
  for (int R = 0; R < Reps; ++R) {
    double T = timeSeconds([&] { (void)W.run(Target); });
    Best = T < Best ? T : Best;
  }
  return Best;
}

/// Geometric mean of \p Values (the statistic the paper reports).
inline double geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

/// Prints a rule line matching the width of our tables.
inline void printRule(int Width = 72) {
  for (int I = 0; I < Width; ++I)
    std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

} // namespace bench
} // namespace diehard

#endif // DIEHARD_BENCH_BENCHUTIL_H
