//===- bench/bench_fig4a_overflow.cpp - Figure 4(a) -----------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 4(a): the probability of masking single-object buffer
/// overflows for varying numbers of replicas (1, 3, 4, 5, 6) and degrees of
/// heap fullness (1/8, 1/4, 1/2). Each cell shows the closed form of
/// Theorem 1 next to a Monte-Carlo estimate over the randomized-heap model.
///
//===----------------------------------------------------------------------===//

#include "analysis/MonteCarlo.h"
#include "analysis/Probability.h"
#include "bench/BenchUtil.h"

#include <cstdio>

using namespace diehard;

int main() {
  std::printf("Figure 4(a): Probability of Avoiding Buffer Overflow\n");
  std::printf("(single-object overflow; analytic = Theorem 1, "
              "sim = Monte Carlo)\n");
  bench::printRule();
  std::printf("%-10s", "fullness");
  const int ReplicaCounts[] = {1, 3, 4, 5, 6};
  for (int K : ReplicaCounts)
    std::printf("  k=%d analytic / sim ", K);
  std::printf("\n");
  bench::printRule();

  Rng Rand(0xF16A);
  const double Fullness[] = {1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0};
  const char *Labels[] = {"1/8 full", "1/4 full", "1/2 full"};
  constexpr size_t HeapSlots = 4096;
  constexpr int Trials = 200000;

  for (int F = 0; F < 3; ++F) {
    std::printf("%-10s", Labels[F]);
    for (int K : ReplicaCounts) {
      double Analytic = maskOverflowProbability(1.0 - Fullness[F], 1, K);
      double Sim = simulateOverflowMask(
          HeapSlots, static_cast<size_t>(Fullness[F] * HeapSlots), 1, K,
          Trials, Rand);
      std::printf("     %6.2f%% / %6.2f%%", 100.0 * Analytic, 100.0 * Sim);
    }
    std::printf("\n");
  }
  bench::printRule();
  std::printf("Paper anchors: stand-alone at 1/8 full masks 87.5%%; three\n"
              "replicas exceed 99%% (Section 6.1).\n");
  return 0;
}
