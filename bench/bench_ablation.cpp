//===- bench/bench_ablation.cpp - design-choice ablations -----------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation studies for the design choices DESIGN.md calls out:
///
///  1. Heap expansion factor M — probe cost and overflow-masking safety
///     move in opposite directions (Sections 4.2 and 6.1).
///  2. Random object fill (replicated mode) — the allocation-time cost of
///     uninitialized-read detection (Section 4.2).
///  3. Metadata segregation — bitmap metadata survives overflow attacks
///     that corrupt boundary tags (Section 4.1).
///  4. Checked libc — the cost of clamping string copies (Section 4.4).
///
//===----------------------------------------------------------------------===//

#include "analysis/Probability.h"
#include "baselines/DieHardAllocator.h"
#include "baselines/LeaAllocator.h"
#include "bench/BenchUtil.h"
#include "core/CheckedLibc.h"
#include "workloads/ForkHarness.h"
#include "workloads/WorkloadSuite.h"

#include <cstdio>
#include <cstring>
#include <vector>

using namespace diehard;

namespace {

WorkloadParams driver() {
  WorkloadParams P = findWorkload("espresso");
  P.MemoryOps = 200000;
  return P;
}

void ablateExpansionFactor() {
  std::printf("\nAblation 1: heap expansion factor M\n");
  bench::printRule();
  std::printf("%-6s %12s %17s %16s %18s\n", "M", "runtime (s)",
              "probes@threshold", "E[probes] @ 1/M",
              "P(mask 1-obj ovfl)");
  bench::printRule();
  for (double M : {1.5, 2.0, 4.0, 8.0}) {
    // Runtime on the paper-default 384 MB heap (far from the threshold).
    DieHardOptions O;
    O.HeapSize = 384 * 1024 * 1024;
    O.M = M;
    O.Seed = 0xAB1A;
    DieHardAllocator A(O);
    SyntheticWorkload W(driver());
    double T = bench::timeWorkload(W, A, 2);

    // Probe cost at the 1/M fill bound: fill a class of a small heap to
    // 90% of its threshold, then measure the probes of the final stretch.
    DieHardOptions Small;
    Small.HeapSize = 12 * SizeClass::MaxObjectSize * 64;
    Small.M = M;
    Small.Seed = 0xAB1A;
    DieHardAllocator B(Small);
    int C = SizeClass::sizeToClass(64);
    size_t Threshold = B.heap().thresholdForClass(C);
    std::vector<void *> Held;
    while (B.heap().liveInClass(C) < Threshold * 9 / 10)
      Held.push_back(B.allocate(64));
    uint64_t Probes0 = B.heap().stats().Probes;
    uint64_t Allocs0 = B.heap().stats().Allocations;
    while (B.heap().liveInClass(C) < Threshold)
      Held.push_back(B.allocate(64));
    double ProbesNearFull =
        static_cast<double>(B.heap().stats().Probes - Probes0) /
        static_cast<double>(B.heap().stats().Allocations - Allocs0);
    for (void *P : Held)
      B.deallocate(P);

    std::printf("%-6.1f %12.3f %17.2f %16.2f %17.2f%%\n", M, T,
                ProbesNearFull, expectedProbes(M),
                100.0 * maskOverflowProbability(1.0 - 1.0 / M, 1, 1));
  }
  std::printf("Shape: larger M costs address space, buys fewer probes at\n"
              "the fill bound and higher masking probability.\n");
}

void ablateRandomFill() {
  std::printf("\nAblation 2: random object fill (replicated mode)\n");
  bench::printRule();
  for (bool Fill : {false, true}) {
    DieHardOptions O;
    O.HeapSize = 384 * 1024 * 1024;
    O.Seed = 0xAB1B;
    O.RandomFillObjects = Fill;
    O.RandomFillOnFree = Fill;
    DieHardAllocator A(O);
    SyntheticWorkload W(driver());
    double T = bench::timeWorkload(W, A, 2);
    std::printf("%-28s %10.3f s\n",
                Fill ? "fill objects with random" : "no fill (stand-alone)",
                T);
  }
  std::printf("Shape: filling costs extra per-allocation work, which is why\n"
              "stand-alone mode skips it.\n");
}

void ablateMetadataSegregation() {
  std::printf("\nAblation 3: metadata segregation under overflow attack\n");
  bench::printRule();
  // Identical attack against both allocators: overflow 16 bytes past each
  // of 100 objects, then keep allocating/freeing.
  auto Attack = [](Allocator &A) {
    std::vector<char *> Objs;
    for (int I = 0; I < 100; ++I) {
      auto *P = static_cast<char *>(A.allocate(40));
      if (P == nullptr)
        return 1;
      Objs.push_back(P);
    }
    for (char *P : Objs)
      std::memset(P, 0x41, 40 + 16);
    for (char *P : Objs)
      A.deallocate(P);
    for (int I = 0; I < 200; ++I)
      A.deallocate(A.allocate(40));
    return 0;
  };
  {
    ForkOutcome Outcome = runInFork([&] {
      LeaAllocator Lea(64 << 20);
      int Rc = Attack(Lea);
      return Rc != 0 ? Rc : (Lea.checkHeapIntegrity() ? 0 : 3);
    });
    std::printf("%-34s %s\n", "boundary tags (Lea baseline)",
                Outcome.cleanExit() ? "metadata intact"
                                    : "METADATA CORRUPTED/CRASH");
  }
  {
    ForkOutcome Outcome = runInFork([&] {
      DieHardOptions O;
      O.HeapSize = 128 * 1024 * 1024;
      O.Seed = 0xAB1C;
      DieHardAllocator A(O);
      int Rc = Attack(A);
      // The heap must still be fully functional afterwards.
      void *P = A.allocate(40);
      return Rc != 0 ? Rc : (P != nullptr ? 0 : 4);
    });
    std::printf("%-34s %s\n", "segregated bitmap (DieHard)",
                Outcome.cleanExit() ? "metadata intact"
                                    : "METADATA CORRUPTED/CRASH");
  }
  std::printf("Shape: the same attack that corrupts boundary tags cannot\n"
              "reach DieHard's bitmap (Section 4.1).\n");
}

void ablateCheckedLibc() {
  std::printf("\nAblation 4: checked libc string functions\n");
  bench::printRule();
  DieHardOptions O;
  O.HeapSize = 128 * 1024 * 1024;
  O.Seed = 0xAB1D;
  DieHardAllocator A(O);
  CheckedLibc Checked(A.heap());
  auto *Dst = static_cast<char *>(A.allocate(256));
  char Src[200];
  std::memset(Src, 'q', sizeof(Src) - 1);
  Src[sizeof(Src) - 1] = '\0';
  constexpr int Iters = 2000000;
  double TUnchecked = bench::timeSeconds([&] {
    for (int I = 0; I < Iters; ++I)
      std::strcpy(Dst, Src);
  });
  double TChecked = bench::timeSeconds([&] {
    for (int I = 0; I < Iters; ++I)
      Checked.strcpy(Dst, Src);
  });
  std::printf("%-28s %10.3f s\n", "libc strcpy", TUnchecked);
  std::printf("%-28s %10.3f s (%.2fx)\n", "DieHard checked strcpy",
              TChecked, TChecked / TUnchecked);
  std::printf("Shape: a handful of comparisons and shifts per call\n"
              "(Section 4.4) — cheap enough to leave on.\n");
  A.deallocate(Dst);
}

} // namespace

int main() {
  std::printf("DieHard design-choice ablations\n");
  ablateExpansionFactor();
  ablateRandomFill();
  ablateMetadataSegregation();
  ablateCheckedLibc();
  return 0;
}
