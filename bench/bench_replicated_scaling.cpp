//===- bench/bench_replicated_scaling.cpp - Section 7.2.3 -----------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Section 7.2.3 experiment: wall-clock overhead of running
/// k replicas simultaneously versus one replica under the replicated
/// runtime. The paper measured 16 replicas on a 16-way Sun server at ~50%
/// overhead (part of it process creation); the shape to reproduce is
/// sub-linear growth in wall-clock time as replicas scale out across cores.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/DieHardHeap.h"
#include "core/HeapAdapter.h"
#include "replication/Replication.h"
#include "workloads/SyntheticWorkload.h"

#include <algorithm>
#include <cstdio>

#include <unistd.h>

using namespace diehard;

namespace {

/// The replica body: an espresso-like allocation-intensive run whose
/// checksum is emitted as output (identical across replicas, so the voter
/// always agrees).
int replicaBody(ReplicaContext &Ctx) {
  DieHardHeap Heap(Ctx.heapOptions());
  // A self-contained workload over the replica-private heap.
  WorkloadParams P;
  P.Name = "replica";
  P.MemoryOps = 150000;
  P.MinSize = 8;
  P.MaxSize = 512;
  P.MaxLive = 3000;
  P.Seed = 0xE5B;

  HeapAdapter Adapter(Heap, "replica-heap");

  SyntheticWorkload W(P);
  WorkloadResult R = W.run(Adapter);
  char Line[64];
  int N = std::snprintf(Line, sizeof(Line), "checksum %016llx\n",
                        static_cast<unsigned long long>(R.Checksum));
  Ctx.write(Line, static_cast<size_t>(N));
  return 0;
}

} // namespace

int main() {
  long Cores = ::sysconf(_SC_NPROCESSORS_ONLN);
  std::printf("Section 7.2.3: Replicated-mode scaling (%ld core%s "
              "available)\n",
              Cores, Cores == 1 ? "" : "s");
  bench::printRule();
  std::printf("%-10s %14s %14s %16s %10s\n", "replicas", "wall-clock (s)",
              "vs 1 replica", "per-replica cost", "agreed");
  bench::printRule();

  double Baseline = 0.0;
  for (int K : {1, 3, 4, 8, 16}) {
    ReplicationOptions O;
    O.Replicas = K;
    O.MasterSeed = 0x5CA1E + static_cast<uint64_t>(K);
    O.HeapSize = 48 * 1024 * 1024;
    O.TimeoutMillis = 120000;
    ReplicaManager Manager(O);

    ReplicationResult Result;
    double T = bench::timeSeconds(
        [&] { Result = Manager.run(replicaBody, ""); });
    if (K == 1)
      Baseline = T;
    // With C cores, the serialization-free ideal is K/min(K,C) times the
    // single-replica time; per-replica cost shows voting/IPC overhead on
    // top of that ideal.
    double CoreBound = static_cast<double>(K) /
                       static_cast<double>(std::min<long>(K, Cores));
    std::printf("%-10d %14.3f %13.2fx %15.2fx %10s\n", K, T,
                Baseline > 0 ? T / Baseline : 1.0,
                Baseline > 0 ? T / (Baseline * CoreBound) : 1.0,
                Result.Success ? "yes" : "NO");
  }
  bench::printRule();
  std::printf("Paper shape: 16 replicas cost ~1.5x one replica on a 16-way\n"
              "machine. The comparable statistic here is per-replica cost\n"
              "(wall-clock over the core-count-limited ideal): it stays\n"
              "near 1x, i.e. voting and IPC add little beyond the CPU the\n"
              "replicas themselves consume (Section 7.2.3).\n");
  return 0;
}
