//===- bench/bench_fig5a_runtime.cpp - Figure 5(a) ------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 5(a): normalized runtime of the Lea-style baseline
/// ("malloc"), the conservative collector ("GC"), and DieHard across the
/// allocation-intensive suite and the general-purpose (SPECint-like) suite.
/// Runtimes are normalized to the malloc baseline; geometric means close
/// each group, as in the paper.
///
/// Expected shape (Section 7.2.1): DieHard costs noticeably more than
/// malloc on the allocation-intensive programs (paper: geomean ~40%) and
/// only a little on general-purpose ones (paper: geomean ~12%, with
/// allocation-heavy perlbmk and wide-size twolf as outliers).
///
//===----------------------------------------------------------------------===//

#include "baselines/DieHardAllocator.h"
#include "baselines/GcAllocator.h"
#include "baselines/LeaAllocator.h"
#include "bench/BenchUtil.h"
#include "workloads/WorkloadSuite.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace diehard;
using bench::geometricMean;
using bench::timeWorkload;

namespace {

void runSuite(const char *Title,
              const std::vector<WorkloadParams> &Suite) {
  std::printf("\n%s\n", Title);
  bench::printRule();
  std::printf("%-20s %10s %10s %10s   (normalized to malloc)\n",
              "benchmark", "malloc", "GC", "DieHard");
  bench::printRule();

  std::vector<double> GcNorm, DieHardNorm;
  for (const WorkloadParams &P : Suite) {
    SyntheticWorkload W(P);

    LeaAllocator Lea(size_t(512) << 20);
    double TMalloc = timeWorkload(W, Lea);

    // BDW-like space-time trade: let garbage accumulate (3-5x heap growth,
    // Section 8) so collections stay rare.
    GcAllocator Gc(size_t(768) << 20, 96 << 20);
    double TGc = timeWorkload(W, Gc);

    DieHardOptions O;
    O.HeapSize = 384 * 1024 * 1024; // The paper's default heap.
    O.Seed = 0x5EED + P.Seed;
    DieHardAllocator DieHardA(O);
    double TDieHard = timeWorkload(W, DieHardA);

    double NGc = TGc / TMalloc;
    double NDieHard = TDieHard / TMalloc;
    GcNorm.push_back(NGc);
    DieHardNorm.push_back(NDieHard);
    std::printf("%-20s %10.2f %10.2f %10.2f\n", P.Name.c_str(), 1.0, NGc,
                NDieHard);
  }
  bench::printRule();
  std::printf("%-20s %10.2f %10.2f %10.2f\n", "Geo. Mean", 1.0,
              geometricMean(GcNorm), geometricMean(DieHardNorm));
}

} // namespace

int main() {
  std::printf("Figure 5(a): Runtime on Linux "
              "(normalized; lower is better)\n");
  runSuite("Allocation-intensive suite", allocationIntensiveSuite());
  runSuite("General-purpose (SPECint2000-like) suite",
           generalPurposeSuite());
  std::printf("\nPaper shape: DieHard geomean ~1.4x on alloc-intensive,\n"
              "~1.12x on general-purpose; perlbmk-like and twolf-like are\n"
              "the outliers (Section 7.2.1).\n");
  return 0;
}
