//===- bench/bench_squid.cpp - Section 7.3 real-fault case study ----------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Squid case study: the same buggy caching server, fed the
/// same ill-formed input, under four memory managers. The paper reports
/// that Squid 2.3s5 crashes with both the GNU libc allocator and the
/// Boehm-Demers-Weiser collector, and runs correctly with DieHard.
///
//===----------------------------------------------------------------------===//

#include "baselines/DieHardAllocator.h"
#include "baselines/GcAllocator.h"
#include "baselines/LeaAllocator.h"
#include "bench/BenchUtil.h"
#include "workloads/ForkHarness.h"
#include "workloads/MiniSquid.h"

#include <cstdio>
#include <functional>
#include <string>

using namespace diehard;

namespace {

/// Serves traffic including the overflow-triggering request; returns 0 on a
/// fully correct run.
int serveTraffic(Allocator &Heap, const CheckedLibc *Checked) {
  MiniSquid Server(Heap, Checked);
  for (int I = 0; I < 60; ++I)
    if (Server
            .handleRequest("GET http://origin.example/obj" +
                           std::to_string(I))
            .rfind("200 ", 0) != 0)
      return 1;
  std::string IllFormed = "GET http://evil.example/";
  IllFormed.append(300, 'A');
  Server.handleRequest(IllFormed);
  for (int I = 0; I < 200; ++I)
    if (Server
            .handleRequest("GET http://origin.example/post" +
                           std::to_string(I))
            .rfind("200 ", 0) != 0)
      return 2;
  return 0;
}

const char *describe(const ForkOutcome &Outcome) {
  if (Outcome.cleanExit())
    return "runs correctly";
  if (Outcome.Signaled)
    return "CRASH (segmentation fault)";
  if (Outcome.TimedOut)
    return "HANG";
  return "incorrect output";
}

} // namespace

int main() {
  std::printf("Section 7.3: Squid buffer-overflow case study\n");
  std::printf("(ill-formed request overflows a 64-byte heap buffer)\n");
  bench::printRule();
  std::printf("%-34s %s\n", "memory manager", "outcome");
  bench::printRule();

  {
    ForkOutcome Outcome = runInFork([] {
      LeaAllocator Lea(size_t(256) << 20);
      return serveTraffic(Lea, nullptr);
    });
    std::printf("%-34s %s\n", "GNU-libc-style (Lea baseline)",
                describe(Outcome));
  }
  {
    // The BDW collector also stores no boundary tags, but the overflow
    // still lands in adjacent live cache entries on a bump-allocated heap,
    // corrupting server data; the paper observed a crash.
    ForkOutcome Outcome = runInFork([] {
      GcAllocator Gc(size_t(256) << 20);
      return serveTraffic(Gc, nullptr);
    });
    std::printf("%-34s %s\n", "Boehm-Demers-Weiser-style GC",
                describe(Outcome));
  }
  {
    int Survived = 0;
    for (int Run = 0; Run < 10; ++Run) {
      ForkOutcome Outcome = runInFork([Run] {
        DieHardOptions O;
        O.HeapSize = 384 * 1024 * 1024;
        O.Seed = static_cast<uint64_t>(Run) + 1;
        DieHardAllocator A(O);
        return serveTraffic(A, nullptr);
      });
      Survived += Outcome.cleanExit() ? 1 : 0;
    }
    char Line[64];
    std::snprintf(Line, sizeof(Line), "runs correctly (%d/10 seeds)",
                  Survived);
    std::printf("%-34s %s\n", "DieHard (stand-alone)", Line);
  }
  {
    ForkOutcome Outcome = runInFork([] {
      DieHardOptions O;
      O.HeapSize = 384 * 1024 * 1024;
      O.Seed = 7;
      DieHardAllocator A(O);
      CheckedLibc Checked(A.heap());
      return serveTraffic(A, &Checked);
    });
    std::printf("%-34s %s\n", "DieHard + checked libc (4.4)",
                describe(Outcome));
  }
  bench::printRule();
  std::printf("Paper anchor: Squid crashes under GNU libc and under the\n"
              "BDW collector; with DieHard the overflow has no effect\n"
              "(Section 7.3).\n");
  return 0;
}
