//===- bench/bench_space.cpp - Section 4.5 space consumption --------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The space side of the paper's space-reliability trade-off (Sections 4.5
/// and 8): DieHard touches more pages than a compact freelist allocator
/// (random placement spreads the live set across each 1/M-bounded region),
/// conservative GC holds 3-5x malloc/free's footprint (garbage awaits
/// collection), and the Section 9 adaptive variant recovers most of the
/// fixed design's cost by growing regions on demand.
///
/// Each allocator runs the espresso-like workload in a forked child; the
/// parent reports the child's peak resident set (ru_maxrss), the honest
/// measure of memory actually consumed (reserved-but-untouched pages are
/// free).
///
/// A second table tracks RSS *over time* on the sharded heap: a burst of
/// 4 KB objects is allocated, freed, and the process then idles. With the
/// epoch sweeper off the freed pages stay resident forever (the bitmap
/// says free, the OS still backs the data); with the sweeper on the empty
/// partition's pages go back to the OS within a couple of sweep passes and
/// the resident set falls back toward its starting point.
///
/// A third table is the production-footprint matrix: a churn workload
/// that pins one live object in every size-class partition (so no
/// partition is ever fully empty and only *partial* page return can shed
/// anything), bursts, frees, and idles — across the page-return policies
/// (off / dontneed / free) and the sweeper switch. Under MADV_FREE the
/// kernel keeps lazily-freed pages resident until pressure, so the
/// matrix reports effective RSS = resident - LazyFree (from
/// /proc/self/smaps_rollup) alongside the raw number — and then applies
/// real pressure (MADV_PAGEOUT over the heap's anonymous mappings) and
/// samples once more, so the `free` row's LazyFree parking demonstrably
/// converges to the effective number instead of being taken on faith.
///
/// A fourth table is the meshing scenario: a 64-byte churn that strands
/// one or two live objects on nearly every data page of the partition.
/// No page is object-free, so partial return reclaims ~0% — this is the
/// fragmentation shape DIEHARD_MESH exists for. The table crosses
/// meshing off/on; with it on, the sweeper's mesh passes pair pages with
/// disjoint slot masks and remap them onto shared physical frames, and
/// idle RSS falls even though every virtual page still holds live data.
///
/// After the tables the bench emits one line starting with "JSON: " —
/// the machine-readable summary CI archives and diffs against the
/// committed baseline (BENCH_space.json) via tools/bench_compare.py.
///
//===----------------------------------------------------------------------===//

#include "baselines/AdaptiveAllocator.h"
#include "baselines/DieHardAllocator.h"
#include "baselines/GcAllocator.h"
#include "baselines/LeaAllocator.h"
#include "bench/BenchUtil.h"
#include "core/ShardedHeap.h"
#include "core/SizeClass.h"
#include "support/MmapRegion.h"
#include "workloads/ForkHarness.h"
#include "workloads/ProcessStats.h"
#include "workloads/WorkloadSuite.h"

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace diehard;

namespace {

/// Runs \p Body in a forked child (via the shared crash harness) and
/// returns the child's peak RSS in KB, or 0 on failure.
long peakRssKb(const std::function<void()> &Body) {
  ForkOutcome Outcome = runInFork([&Body] {
    Body();
    return 0;
  });
  return Outcome.cleanExit() ? Outcome.MaxRssKb : 0;
}

WorkloadParams driver() {
  WorkloadParams P = findWorkload("espresso");
  P.MemoryOps = 400000;
  return P;
}

/// RSS samples (KB) at the four interesting moments of the burst-and-idle
/// run: before the heap exists, at the top of the burst, right after the
/// last free, and after an idle tail long enough for several sweep passes.
struct RssTimeline {
  long Start = 0, Burst = 0, Freed = 0, Idle = 0;
};

/// Runs the burst-free-idle scenario on a fresh sharded heap in a forked
/// child (so each config starts from a clean address space) and reports
/// the child's RSS timeline through a pipe.
RssTimeline rssTimeline(bool Sweeper) {
  int Fds[2];
  RssTimeline T;
  if (::pipe(Fds) != 0)
    return T;
  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Fds[0]);
    ::close(Fds[1]);
    return T;
  }
  if (Pid == 0) {
    ::close(Fds[0]);
    T.Start = currentRssKb();
    {
      ShardedHeapOptions O;
      O.Heap.HeapSize = 256 * 1024 * 1024;
      O.Heap.Seed = 0x5BACE;
      O.NumShards = 1;
      O.ThreadCacheSlots = 0;
      O.Sweeper = Sweeper;
      O.SweepIntervalMs = 20;
      ShardedHeap Heap(O);
      std::vector<void *> Objects;
      Objects.reserve(8192);
      for (int I = 0; I < 8192; ++I) {
        void *P = Heap.allocate(4096);
        if (P == nullptr)
          break;
        std::memset(P, 0xAB, 4096);
        Objects.push_back(P);
      }
      T.Burst = currentRssKb();
      for (void *P : Objects)
        Heap.deallocate(P);
      T.Freed = currentRssKb();
      ::usleep(100 * 1000); // Idle tail: five sweep intervals.
      T.Idle = currentRssKb();
    }
    (void)!::write(Fds[1], &T, sizeof(T));
    ::close(Fds[1]);
    ::_exit(0);
  }
  ::close(Fds[1]);
  if (::read(Fds[0], &T, sizeof(T)) != static_cast<ssize_t>(sizeof(T)))
    T = RssTimeline{};
  ::close(Fds[0]);
  int Status = 0;
  ::waitpid(Pid, &Status, 0);
  return T;
}

/// One cell of the production-footprint matrix: a page-return policy plus
/// the sweeper switch, and the RSS trajectory the combination produced.
struct ChurnSample {
  const char *Name = "";
  PageReturnPolicy Policy = PageReturnPolicy::DontNeed;
  bool Sweeper = true;
  long Start = 0;        ///< KB, heap mapped and partitions pinned.
  long Burst = 0;        ///< KB, at the top of the churn burst.
  long Idle = 0;         ///< KB, after the idle tail (raw resident).
  long IdleLazyFree = 0; ///< KB of that still resident only as LazyFree.
  long Pressure = 0;     ///< KB, after MADV_PAGEOUT reclaims LazyFree.
  /// The number the matrix compares: what the process actually holds once
  /// lazily-freed pages are discounted.
  long effectiveIdle() const { return Idle - IdleLazyFree; }
};

/// Runs the pinned-partition churn scenario in a forked child: one live
/// object pinned in every size-class partition (so the fully-empty path
/// can never fire and every returned page is a *partial* return), then a
/// burst of page-spanning objects, free them all, idle for many sweep
/// epochs. Fills in the sample's RSS fields through a pipe.
void churnTimeline(ChurnSample &S) {
  int Fds[2];
  if (::pipe(Fds) != 0)
    return;
  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Fds[0]);
    ::close(Fds[1]);
    return;
  }
  if (Pid == 0) {
    ::close(Fds[0]);
    MmapRegion::setPageReturnPolicy(S.Policy);
    {
      ShardedHeapOptions O;
      O.Heap.HeapSize = 256 * 1024 * 1024;
      O.Heap.Seed = 0x5BACE;
      O.NumShards = 1;
      O.ThreadCacheSlots = 0;
      O.Sweeper = S.Sweeper;
      O.SweepIntervalMs = 10;
      ShardedHeap Heap(O);
      std::vector<void *> Pins;
      for (int C = 0; C < SizeClass::NumClasses; ++C) {
        size_t Size = SizeClass::classToSize(C);
        void *P = Heap.allocate(Size);
        if (P != nullptr) {
          std::memset(P, 0x77, Size);
          Pins.push_back(P);
        }
      }
      S.Start = currentRssKb();
      std::vector<void *> Objects;
      Objects.reserve(8192 + 2048);
      for (int I = 0; I < 8192; ++I) {
        void *P = Heap.allocate(4096);
        if (P == nullptr)
          break;
        std::memset(P, 0xAB, 4096);
        Objects.push_back(P);
      }
      for (int I = 0; I < 2048; ++I) {
        void *P = Heap.allocate(16384);
        if (P == nullptr)
          break;
        std::memset(P, 0xCD, 16384);
        Objects.push_back(P);
      }
      S.Burst = currentRssKb();
      for (void *P : Objects)
        Heap.deallocate(P);
      ::usleep(200 * 1000); // Idle tail: twenty sweep epochs.
      S.Idle = currentRssKb();
      S.IdleLazyFree = lazyFreeKb();
      // Memory-pressure phase: page out the heap's anonymous mappings so
      // MADV_FREE'd pages are actually reclaimed, not just flagged. The
      // `free` row's raw idle number converges to its effective number
      // here; the eager policies barely move.
      pageOutAnonymous();
      S.Pressure = currentRssKb();
      for (void *P : Pins)
        Heap.deallocate(P);
    }
    MmapRegion::setPageReturnPolicy(PageReturnPolicy::DontNeed);
    (void)!::write(Fds[1], &S, sizeof(S));
    ::close(Fds[1]);
    ::_exit(0);
  }
  ::close(Fds[1]);
  ChurnSample Filled = S;
  if (::read(Fds[0], &Filled, sizeof(Filled)) ==
      static_cast<ssize_t>(sizeof(Filled)))
    S = Filled;
  ::close(Fds[0]);
  int Status = 0;
  ::waitpid(Pid, &Status, 0);
}

/// One row of the meshing table: the DIEHARD_MESH switch and the RSS
/// trajectory of the fragmentation-heavy scenario under it.
struct MeshSample {
  const char *Name = "";
  bool Meshing = false;
  long Start = 0;  ///< KB, heap mapped, before the burst.
  long Burst = 0;  ///< KB, ~98k live 64-byte objects.
  long Freed = 0;  ///< KB, right after freeing 15 of every 16.
  long Idle = 0;   ///< KB, after an idle tail of many mesh passes.
  unsigned long long PagesMeshed = 0; ///< Donor pages remapped away.
};

/// Runs the fragmentation-heavy scenario in a forked child: burst ~98k
/// 64-byte objects (filling the partition's data pages about 24 objects
/// deep), free all but every 16th, then idle. The stranded survivors
/// average 1-2 live objects per 4 KB page, so partial page return finds
/// almost nothing object-free — only meshing's disjoint-mask pair remaps
/// can shed the sparse pages' frames.
void fragTimeline(MeshSample &S) {
  int Fds[2];
  if (::pipe(Fds) != 0)
    return;
  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Fds[0]);
    ::close(Fds[1]);
    return;
  }
  if (Pid == 0) {
    ::close(Fds[0]);
    {
      ShardedHeapOptions O;
      O.Heap.HeapSize = 192 * 1024 * 1024;
      O.Heap.Seed = 0x5BACE;
      O.Heap.Meshing = S.Meshing;
      O.NumShards = 1;
      O.ThreadCacheSlots = 0;
      O.Sweeper = true;
      O.SweepIntervalMs = 5;
      ShardedHeap Heap(O);
      S.Start = currentRssKb();
      std::vector<void *> Objects;
      Objects.reserve(98304);
      for (int I = 0; I < 98304; ++I) {
        void *P = Heap.allocate(64);
        if (P == nullptr)
          break;
        std::memset(P, 0x5A, 64);
        Objects.push_back(P);
      }
      S.Burst = currentRssKb();
      for (size_t I = 0; I < Objects.size(); ++I)
        if (I % 16 != 0)
          Heap.deallocate(Objects[I]);
      S.Freed = currentRssKb();
      // Idle tail: enough sweep epochs for the pair-capped mesh passes
      // (snapshot pass, then remap pass, 64 pairs each) to work through
      // every quiet page of the partition.
      ::usleep(800 * 1000);
      S.Idle = currentRssKb();
      S.PagesMeshed = Heap.pagesMeshed();
      for (size_t I = 0; I < Objects.size(); I += 16)
        Heap.deallocate(Objects[I]);
    }
    (void)!::write(Fds[1], &S, sizeof(S));
    ::close(Fds[1]);
    ::_exit(0);
  }
  ::close(Fds[1]);
  MeshSample Filled = S;
  if (::read(Fds[0], &Filled, sizeof(Filled)) ==
      static_cast<ssize_t>(sizeof(Filled)))
    S = Filled;
  ::close(Fds[0]);
  int Status = 0;
  ::waitpid(Pid, &Status, 0);
}

/// Accumulates every measurement for the trailing JSON summary.
std::string JsonRows;

void recordJson(const char *Scenario, const char *Config, long ValueKb) {
  char Row[160];
  std::snprintf(Row, sizeof(Row),
                "%s{\"scenario\":\"%s\",\"config\":\"%s\",\"value\":%ld}",
                JsonRows.empty() ? "" : ",", Scenario, Config, ValueKb);
  JsonRows += Row;
}

} // namespace

int main() {
  std::printf("Section 4.5: memory consumption "
              "(peak RSS, espresso-like workload)\n");
  bench::printRule();
  std::printf("%-26s %14s %14s\n", "allocator", "peak RSS (MB)",
              "vs malloc");
  bench::printRule();

  long Baseline = peakRssKb([] {
    LeaAllocator A(size_t(512) << 20);
    SyntheticWorkload W(driver());
    W.run(A);
  });
  std::printf("%-26s %14.1f %13.2fx\n", "lea (freelist)",
              Baseline / 1024.0, 1.0);
  recordJson("peak_espresso", "lea", Baseline);

  long Gc = peakRssKb([] {
    GcAllocator A(size_t(768) << 20, 16 << 20);
    SyntheticWorkload W(driver());
    W.run(A);
  });
  std::printf("%-26s %14.1f %13.2fx\n", "bdw-gc-sim", Gc / 1024.0,
              static_cast<double>(Gc) / Baseline);
  recordJson("peak_espresso", "gc", Gc);

  long Fixed = peakRssKb([] {
    DieHardOptions O;
    O.HeapSize = 384 * 1024 * 1024;
    O.Seed = 0x5BACE;
    DieHardAllocator A(O);
    SyntheticWorkload W(driver());
    W.run(A);
  });
  std::printf("%-26s %14.1f %13.2fx\n", "diehard (fixed, M=2)",
              Fixed / 1024.0, static_cast<double>(Fixed) / Baseline);
  recordJson("peak_espresso", "diehard_fixed", Fixed);

  long Adaptive = peakRssKb([] {
    AdaptiveOptions O;
    O.Seed = 0x5BACE;
    AdaptiveAllocator A(O);
    SyntheticWorkload W(driver());
    W.run(A);
  });
  std::printf("%-26s %14.1f %13.2fx\n", "diehard (adaptive, M=2)",
              Adaptive / 1024.0, static_cast<double>(Adaptive) / Baseline);
  recordJson("peak_espresso", "diehard_adaptive", Adaptive);

  bench::printRule();
  std::printf("Shape: freelist is the compact baseline; the collector\n"
              "holds several times more (garbage awaits collection);\n"
              "fixed DieHard touches pages across its randomized regions;\n"
              "the adaptive variant recovers most of that by sizing\n"
              "regions to demand (Sections 4.5, 8, 9).\n"
              "Note: this workload's live set is well under a megabyte, so\n"
              "the fixed-heap ratio is near its worst case — the paper's\n"
              "\"up to 12M more memory than needed\" concern, and exactly\n"
              "why Section 9 proposes the adaptive variant measured above.\n");

  // RSS over time: fill the 4 KB partition, free it all, idle 100 ms.
  // Only the sweeper configuration can shed the freed pages.
  std::printf("\nepoch sweeper page return "
              "(sharded heap, burst of 4 KB objects)\n");
  bench::printRule();
  std::printf("%-14s %10s %10s %10s %12s\n", "config", "start KB",
              "burst KB", "freed KB", "idle+100ms");
  bench::printRule();
  RssTimeline Off = rssTimeline(false);
  RssTimeline On = rssTimeline(true);
  std::printf("%-14s %10ld %10ld %10ld %12ld\n", "sweeper-off", Off.Start,
              Off.Burst, Off.Freed, Off.Idle);
  std::printf("%-14s %10ld %10ld %10ld %12ld\n", "sweeper-on", On.Start,
              On.Burst, On.Freed, On.Idle);
  bench::printRule();
  std::printf("idle tail shed %ld KB with the sweeper on vs %ld KB off\n"
              "(freed bitmap slots keep their data pages resident until a\n"
              "sweep pass returns the empty partition's pages to the OS).\n",
              On.Freed - On.Idle, Off.Freed - Off.Idle);

  // Production-footprint matrix: pinned partitions force *partial* page
  // return; the policies and the sweeper switch are crossed so the table
  // shows which knob buys what.
  std::printf("\npartial page return under churn "
              "(one pinned object per partition)\n");
  bench::printRule();
  std::printf("%-18s %8s %8s %8s %8s %9s %8s\n", "config", "start KB",
              "burst KB", "idle KB", "lazyfree", "eff. idle", "pressure");
  bench::printRule();
  ChurnSample Matrix[] = {
      {"return-off", PageReturnPolicy::Off, true},
      {"dontneed-nosweep", PageReturnPolicy::DontNeed, false},
      {"dontneed", PageReturnPolicy::DontNeed, true},
      {"free", PageReturnPolicy::Free, true},
  };
  for (ChurnSample &S : Matrix) {
    churnTimeline(S);
    std::printf("%-18s %8ld %8ld %8ld %8ld %9ld %8ld\n", S.Name, S.Start,
                S.Burst, S.Idle, S.IdleLazyFree, S.effectiveIdle(),
                S.Pressure);
    recordJson("churn_idle", S.Name, S.effectiveIdle());
    recordJson("churn_pressure", S.Name, S.Pressure);
  }
  bench::printRule();
  const ChurnSample &ReturnOff = Matrix[0];
  const ChurnSample &DontNeed = Matrix[2];
  double Shed =
      ReturnOff.effectiveIdle() > 0
          ? 100.0 * (ReturnOff.effectiveIdle() - DontNeed.effectiveIdle()) /
                ReturnOff.effectiveIdle()
          : 0.0;
  std::printf("steady-state idle RSS with dontneed+sweeper is %.0f%% below\n"
              "page-return-off (span scanner returns object-free pages of\n"
              "partitions that are still live; MADV_FREE parks them as\n"
              "LazyFree until memory pressure). The pressure column is RSS\n"
              "after MADV_PAGEOUT over the heap mappings: the free row's\n"
              "raw idle number converges to its effective number once the\n"
              "kernel actually reclaims the LazyFree pages.\n",
              Shed);

  // Meshing: strand 1-2 live 64 B objects on nearly every data page, so
  // no page is object-free and partial return reclaims ~0%. Only the
  // mesh passes' disjoint-mask pair remaps can shed frames here.
  std::printf("\npage meshing under fragmentation "
              "(1-2 live 64 B objects per page)\n");
  bench::printRule();
  std::printf("%-14s %9s %9s %9s %9s %11s\n", "config", "start KB",
              "burst KB", "freed KB", "idle KB", "pages meshed");
  bench::printRule();
  MeshSample MeshOff{"mesh-off", false};
  MeshSample MeshOn{"mesh-on", true};
  fragTimeline(MeshOff);
  fragTimeline(MeshOn);
  for (const MeshSample &S : {MeshOff, MeshOn}) {
    std::printf("%-14s %9ld %9ld %9ld %9ld %11llu\n", S.Name, S.Start,
                S.Burst, S.Freed, S.Idle, S.PagesMeshed);
    recordJson("frag_idle", S.Name, S.Idle);
  }
  bench::printRule();
  double MeshCut =
      MeshOff.Idle > 0
          ? 100.0 * (MeshOff.Idle - MeshOn.Idle) / MeshOff.Idle
          : 0.0;
  std::printf("meshing cut idle RSS %.0f%% (%llu donor pages remapped onto\n"
              "survivors' frames and their own frames punched out; virtual\n"
              "addresses, bitmaps, and the 1/M bound are untouched — only\n"
              "the physical backing is compacted).\n",
              MeshCut, MeshOn.PagesMeshed);

  std::printf("\nJSON: {\"bench\":\"space\",\"lower_is_better\":true,"
              "\"unit\":\"kb\",\"results\":[%s]}\n",
              JsonRows.c_str());
  return 0;
}
