//===- bench/bench_space.cpp - Section 4.5 space consumption --------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The space side of the paper's space-reliability trade-off (Sections 4.5
/// and 8): DieHard touches more pages than a compact freelist allocator
/// (random placement spreads the live set across each 1/M-bounded region),
/// conservative GC holds 3-5x malloc/free's footprint (garbage awaits
/// collection), and the Section 9 adaptive variant recovers most of the
/// fixed design's cost by growing regions on demand.
///
/// Each allocator runs the espresso-like workload in a forked child; the
/// parent reports the child's peak resident set (ru_maxrss), the honest
/// measure of memory actually consumed (reserved-but-untouched pages are
/// free).
///
//===----------------------------------------------------------------------===//

#include "baselines/AdaptiveAllocator.h"
#include "baselines/DieHardAllocator.h"
#include "baselines/GcAllocator.h"
#include "baselines/LeaAllocator.h"
#include "bench/BenchUtil.h"
#include "workloads/WorkloadSuite.h"

#include <cstdio>
#include <functional>

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace diehard;

namespace {

/// Runs \p Body in a forked child; returns the child's peak RSS in KB, or
/// 0 on failure.
long peakRssKb(const std::function<void()> &Body) {
  pid_t Pid = ::fork();
  if (Pid < 0)
    return 0;
  if (Pid == 0) {
    Body();
    ::_exit(0);
  }
  int Status = 0;
  struct rusage Usage;
  if (::wait4(Pid, &Status, 0, &Usage) != Pid)
    return 0;
  return Usage.ru_maxrss;
}

WorkloadParams driver() {
  WorkloadParams P = findWorkload("espresso");
  P.MemoryOps = 400000;
  return P;
}

} // namespace

int main() {
  std::printf("Section 4.5: memory consumption "
              "(peak RSS, espresso-like workload)\n");
  bench::printRule();
  std::printf("%-26s %14s %14s\n", "allocator", "peak RSS (MB)",
              "vs malloc");
  bench::printRule();

  long Baseline = peakRssKb([] {
    LeaAllocator A(size_t(512) << 20);
    SyntheticWorkload W(driver());
    W.run(A);
  });
  std::printf("%-26s %14.1f %13.2fx\n", "lea (freelist)",
              Baseline / 1024.0, 1.0);

  long Gc = peakRssKb([] {
    GcAllocator A(size_t(768) << 20, 16 << 20);
    SyntheticWorkload W(driver());
    W.run(A);
  });
  std::printf("%-26s %14.1f %13.2fx\n", "bdw-gc-sim", Gc / 1024.0,
              static_cast<double>(Gc) / Baseline);

  long Fixed = peakRssKb([] {
    DieHardOptions O;
    O.HeapSize = 384 * 1024 * 1024;
    O.Seed = 0x5BACE;
    DieHardAllocator A(O);
    SyntheticWorkload W(driver());
    W.run(A);
  });
  std::printf("%-26s %14.1f %13.2fx\n", "diehard (fixed, M=2)",
              Fixed / 1024.0, static_cast<double>(Fixed) / Baseline);

  long Adaptive = peakRssKb([] {
    AdaptiveOptions O;
    O.Seed = 0x5BACE;
    AdaptiveAllocator A(O);
    SyntheticWorkload W(driver());
    W.run(A);
  });
  std::printf("%-26s %14.1f %13.2fx\n", "diehard (adaptive, M=2)",
              Adaptive / 1024.0, static_cast<double>(Adaptive) / Baseline);

  bench::printRule();
  std::printf("Shape: freelist is the compact baseline; the collector\n"
              "holds several times more (garbage awaits collection);\n"
              "fixed DieHard touches pages across its randomized regions;\n"
              "the adaptive variant recovers most of that by sizing\n"
              "regions to demand (Sections 4.5, 8, 9).\n"
              "Note: this workload's live set is well under a megabyte, so\n"
              "the fixed-heap ratio is near its worst case — the paper's\n"
              "\"up to 12M more memory than needed\" concern, and exactly\n"
              "why Section 9 proposes the adaptive variant measured above.\n");
  return 0;
}
