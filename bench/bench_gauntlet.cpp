//===- bench/bench_gauntlet.cpp - allocator gauntlet macrobench -----------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The allocator gauntlet: the classic allocator-bench stress workloads
/// (larson server churn with cross-thread handoff, a producer/consumer
/// pipeline, burst alloc/free phases, and a fragmentation-heavy
/// long-runner — see docs/ARCHITECTURE.md for the canon mapping) run
/// head-to-head across allocator backends through ONE shared driver
/// (src/workloads/WorkloadDriver):
///
///   glibc         the system malloc, plain — the Fig. 5 reference
///   shim          libdiehard.so LD_PRELOADed, thread cache off
///   shim-tcache   + per-thread caches (DIEHARD_TCACHE=32)
///   shim-adapt    + adaptive per-class K (DIEHARD_TCACHE_ADAPT=1)
///   shim-sweeper  + the background epoch sweeper (DIEHARD_SWEEPER=1)
///   lea           the in-tree Lea baseline behind one lock
///   diehard       the in-tree DieHardHeap (direct, unsharded) behind
///                 one lock — the paper's allocator without the
///                 scalability tiers, its honest single-heap cost
///
/// Every (workload, backend) cell runs in a fresh fork+exec'd child — the
/// bench re-executes itself in `--child` mode — so each measurement gets a
/// clean address space, an honest peak RSS (ru_maxrss from the parent's
/// wait4), and, for the shim rows, the LD_PRELOAD interposition exactly as
/// production processes see it. The child reports ops/s, sampled p50/p99
/// per-op latency, and the driver's determinism counters through a result
/// line the parent parses.
///
/// The driver's checksums are allocator-independent, so the parent also
/// asserts every backend produced the identical checksum per workload — a
/// cross-allocator correctness gate riding along with the perf numbers
/// (a mismatch fails the bench).
///
/// Usage: bench_gauntlet [ops-per-thread] [threads]
/// (defaults: 100000 ops, 4 threads; CI runs 20000 x 2)
///
/// After the tables the bench emits one line starting with "JSON: " — the
/// machine-readable trailer CI archives and diffs against the committed
/// baseline (BENCH_gauntlet.json) via tools/bench_compare.py. Rows mix
/// directions: ops/s is higher-is-better, p99 and peak RSS carry
/// "lower_is_better": true per row.
///
//===----------------------------------------------------------------------===//

#include "baselines/DieHardAllocator.h"
#include "baselines/LeaAllocator.h"
#include "bench/BenchUtil.h"
#include "workloads/ForkHarness.h"
#include "workloads/WorkloadDriver.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#ifndef DIEHARD_SHIM_PATH
#error "bench_gauntlet needs DIEHARD_SHIM_PATH (set by CMake)"
#endif

using namespace diehard;

namespace {

constexpr uint64_t GauntletSeed = 0x6A07;

/// One backend of the matrix: how the child allocates, and the
/// environment the parent applies to the child process.
struct Backend {
  const char *Name;      ///< Report/JSON config name.
  const char *ChildMode; ///< Child-side allocator: malloc | lea | diehard.
  bool Preload;          ///< LD_PRELOAD the shim into the child.
  std::vector<const char *> Env; ///< Extra DIEHARD_* settings.
};

const Backend Backends[] = {
    {"glibc", "malloc", false, {}},
    {"shim", "malloc", true, {"DIEHARD_TCACHE=0"}},
    {"shim-tcache", "malloc", true, {"DIEHARD_TCACHE=32"}},
    {"shim-adapt",
     "malloc",
     true,
     {"DIEHARD_TCACHE=32", "DIEHARD_TCACHE_ADAPT=1"}},
    {"shim-sweeper",
     "malloc",
     true,
     {"DIEHARD_TCACHE=32", "DIEHARD_SWEEPER=1"}},
    {"lea", "lea", false, {}},
    {"diehard", "diehard", false, {}},
};

/// The gauntlet's workload list. Sizes and live sets follow the canon
/// shapes each workload is named for (docs/ARCHITECTURE.md).
GauntletParams workloadParams(GauntletKind Kind, uint64_t Ops, int Threads) {
  GauntletParams P;
  P.Kind = Kind;
  P.OpsPerThread = Ops;
  P.Threads = Threads;
  P.Seed = GauntletSeed;
  switch (Kind) {
  case GauntletKind::Larson:
    P.MinSize = 8;
    P.MaxSize = 1024;
    P.SlotsPerThread = 512;
    break;
  case GauntletKind::Pipeline:
    P.MinSize = 8;
    P.MaxSize = 256;
    break;
  case GauntletKind::Burst:
    P.MinSize = 16;
    P.MaxSize = 2048;
    P.BurstObjects = 1024;
    break;
  case GauntletKind::Fragment:
    P.MinSize = 32;
    P.MaxSize = 8192;
    P.SlotsPerThread = 2048;
    P.PinnedStride = 16;
    break;
  }
  return P;
}

constexpr GauntletKind AllWorkloads[] = {
    GauntletKind::Larson, GauntletKind::Pipeline, GauntletKind::Burst,
    GauntletKind::Fragment};

/// What the parent extracts from one child run.
struct CellResult {
  bool Ok = false;
  uint64_t Allocations = 0;
  uint64_t Frees = 0;
  uint64_t Failed = 0;
  uint64_t Checksum = 0;
  double Seconds = 0.0;
  double OpsPerSec = 0.0;
  uint64_t P50Ns = 0;
  uint64_t P99Ns = 0;
  long PeakRssKb = 0;
};

/// Child mode: run one workload against the requested allocator and print
/// the result line the parent parses. The "malloc" mode goes through the
/// process allocator, which is glibc when exec'd plain and the DieHard
/// shim when the parent LD_PRELOADs libdiehard.so.
int runChild(const std::string &Workload, const std::string &Mode,
             uint64_t Ops, int Threads) {
  GauntletKind Kind;
  if (!gauntletKindFromName(Workload, Kind)) {
    std::fprintf(stderr, "unknown workload: %s\n", Workload.c_str());
    return 2;
  }
  GauntletParams Params = workloadParams(Kind, Ops, Threads);

  std::unique_ptr<Allocator> Owned;
  std::unique_ptr<LockedAllocator> Locked;
  Allocator *Target = nullptr;
  if (Mode == "malloc") {
    Owned = std::make_unique<SystemAllocator>();
    Target = Owned.get();
  } else if (Mode == "lea") {
    Owned = std::make_unique<LeaAllocator>(size_t(512) << 20);
    Locked = std::make_unique<LockedAllocator>(*Owned);
    Target = Locked.get();
  } else if (Mode == "diehard") {
    DieHardOptions O;
    O.HeapSize = 384 * 1024 * 1024;
    O.Seed = GauntletSeed;
    Owned = std::make_unique<DieHardAllocator>(O);
    Locked = std::make_unique<LockedAllocator>(*Owned);
    Target = Locked.get();
  } else {
    std::fprintf(stderr, "unknown child mode: %s\n", Mode.c_str());
    return 2;
  }

  GauntletResult R = runGauntlet(Params, *Target);
  std::printf("GAUNTLET_RESULT: {\"allocations\":%" PRIu64
              ",\"frees\":%" PRIu64 ",\"failed\":%" PRIu64
              ",\"checksum\":%" PRIu64
              ",\"seconds\":%.6f,\"ops_per_sec\":%.0f,\"p50_ns\":%" PRIu64
              ",\"p99_ns\":%" PRIu64 "}\n",
              R.Allocations, R.Frees, R.FailedAllocations, R.Checksum,
              R.Seconds, R.OpsPerSec, R.Latency.p50(), R.Latency.p99());
  return 0;
}

/// Parent side of one cell: fork+exec the child with the backend's
/// environment and parse its result line.
CellResult runCell(const std::string &Self, GauntletKind Kind,
                   const Backend &B, uint64_t Ops, int Threads) {
  CellResult Cell;
  std::vector<std::string> Argv = {Self,
                                   "--child",
                                   gauntletKindName(Kind),
                                   B.ChildMode,
                                   std::to_string(Ops),
                                   std::to_string(Threads)};
  std::vector<std::string> Env;
  if (B.Preload) {
    Env.push_back(std::string("LD_PRELOAD=") + DIEHARD_SHIM_PATH);
    // A fixed seed keeps the shim's randomized placement on one stream
    // across runs, so the trajectory's run-to-run noise is scheduling,
    // not layout.
    Env.push_back("DIEHARD_SEED=23459");
  }
  for (const char *E : B.Env)
    Env.emplace_back(E);

  ExecCapture Capture = runCommandCapture(Argv, Env, /*TimeoutMillis=*/
                                          300000);
  if (!Capture.Outcome.cleanExit()) {
    std::fprintf(stderr, "  %s/%s child failed (exit=%d signal=%d%s)\n",
                 gauntletKindName(Kind), B.Name, Capture.Outcome.ExitCode,
                 Capture.Outcome.Signal,
                 Capture.Outcome.TimedOut ? " timeout" : "");
    return Cell;
  }
  size_t Pos = Capture.Output.find("GAUNTLET_RESULT: ");
  if (Pos == std::string::npos) {
    std::fprintf(stderr, "  %s/%s child printed no result line\n",
                 gauntletKindName(Kind), B.Name);
    return Cell;
  }
  const char *Line = Capture.Output.c_str() + Pos;
  if (std::sscanf(Line,
                  "GAUNTLET_RESULT: {\"allocations\":%" SCNu64
                  ",\"frees\":%" SCNu64 ",\"failed\":%" SCNu64
                  ",\"checksum\":%" SCNu64
                  ",\"seconds\":%lf,\"ops_per_sec\":%lf,\"p50_ns\":%" SCNu64
                  ",\"p99_ns\":%" SCNu64 "}",
                  &Cell.Allocations, &Cell.Frees, &Cell.Failed,
                  &Cell.Checksum, &Cell.Seconds, &Cell.OpsPerSec,
                  &Cell.P50Ns, &Cell.P99Ns) != 8) {
    std::fprintf(stderr, "  %s/%s result line did not parse\n",
                 gauntletKindName(Kind), B.Name);
    return Cell;
  }
  Cell.PeakRssKb = Capture.Outcome.MaxRssKb;
  Cell.Ok = true;
  return Cell;
}

/// Accumulates every measurement for the trailing JSON summary.
std::string JsonRows;

void recordJson(const char *Scenario, const char *Config, int Threads,
                double Value, bool LowerIsBetter) {
  char Row[200];
  std::snprintf(Row, sizeof(Row),
                "%s{\"scenario\":\"%s\",\"config\":\"%s\",\"threads\":%d,"
                "\"value\":%.0f%s}",
                JsonRows.empty() ? "" : ",", Scenario, Config, Threads,
                Value, LowerIsBetter ? ",\"lower_is_better\":true" : "");
  JsonRows += Row;
}

std::string selfExePath(const char *Argv0) {
  char Buffer[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buffer, sizeof(Buffer) - 1);
  if (N > 0) {
    Buffer[N] = '\0';
    return Buffer;
  }
  return Argv0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--child") == 0) {
    if (argc != 6) {
      std::fprintf(stderr,
                   "usage: %s --child <workload> <mode> <ops> <threads>\n",
                   argv[0]);
      return 2;
    }
    return runChild(argv[2], argv[3],
                    std::strtoull(argv[4], nullptr, 10),
                    static_cast<int>(std::strtol(argv[5], nullptr, 10)));
  }

  uint64_t Ops = 100000;
  if (argc > 1) {
    long long V = std::strtoll(argv[1], nullptr, 10);
    if (V > 0)
      Ops = static_cast<uint64_t>(V);
  }
  int Threads = 4;
  if (argc > 2) {
    long V = std::strtol(argv[2], nullptr, 10);
    if (V > 0)
      Threads = static_cast<int>(V);
  }
  std::string Self = selfExePath(argv[0]);

  std::printf("allocator gauntlet: %" PRIu64
              " ops/thread, %d threads, shim=%s\n",
              Ops, Threads, DIEHARD_SHIM_PATH);

  int FailedCells = 0;
  int ChecksumMismatches = 0;
  for (GauntletKind Kind : AllWorkloads) {
    GauntletParams Params = workloadParams(Kind, Ops, Threads);
    int Used = gauntletThreadsUsed(Params);
    std::printf("\n%s (%d threads, %" PRIu64 " expected allocations)\n",
                gauntletKindName(Kind), Used, expectedAllocations(Params));
    bench::printRule();
    std::printf("%-14s %12s %10s %10s %10s %9s\n", "backend", "ops/s",
                "p50 ns", "p99 ns", "rss KB", "vs glibc");
    bench::printRule();

    double GlibcOps = 0.0;
    bool HaveChecksum = false;
    uint64_t ReferenceChecksum = 0;
    for (const Backend &B : Backends) {
      CellResult Cell = runCell(Self, Kind, B, Ops, Threads);
      if (!Cell.Ok) {
        ++FailedCells;
        std::printf("%-14s %12s\n", B.Name, "FAILED");
        continue;
      }
      if (Cell.Failed != 0)
        std::fprintf(stderr, "  %s/%s: %" PRIu64 " failed allocations\n",
                     gauntletKindName(Kind), B.Name, Cell.Failed);
      if (Cell.Allocations != Cell.Frees) {
        std::fprintf(stderr,
                     "  %s/%s: allocations %" PRIu64 " != frees %" PRIu64
                     "\n",
                     gauntletKindName(Kind), B.Name, Cell.Allocations,
                     Cell.Frees);
        ++FailedCells;
      }
      // The checksum is allocator-independent when nothing failed, so
      // every backend must agree — the gauntlet doubles as a
      // cross-allocator differential test.
      if (Cell.Failed == 0) {
        if (!HaveChecksum) {
          HaveChecksum = true;
          ReferenceChecksum = Cell.Checksum;
        } else if (Cell.Checksum != ReferenceChecksum) {
          std::fprintf(stderr,
                       "  %s/%s: checksum %016" PRIx64
                       " differs from reference %016" PRIx64 "\n",
                       gauntletKindName(Kind), B.Name, Cell.Checksum,
                       ReferenceChecksum);
          ++ChecksumMismatches;
        }
      }
      if (std::strcmp(B.Name, "glibc") == 0)
        GlibcOps = Cell.OpsPerSec;
      std::printf("%-14s %12.0f %10" PRIu64 " %10" PRIu64 " %10ld %8.2fx\n",
                  B.Name, Cell.OpsPerSec, Cell.P50Ns, Cell.P99Ns,
                  Cell.PeakRssKb,
                  GlibcOps > 0.0 ? Cell.OpsPerSec / GlibcOps : 0.0);

      std::string Prefix = gauntletKindName(Kind);
      recordJson((Prefix + "_ops").c_str(), B.Name, Threads, Cell.OpsPerSec,
                 /*LowerIsBetter=*/false);
      recordJson((Prefix + "_p99").c_str(), B.Name, Threads,
                 static_cast<double>(Cell.P99Ns), /*LowerIsBetter=*/true);
      recordJson((Prefix + "_rss").c_str(), B.Name, Threads,
                 static_cast<double>(Cell.PeakRssKb),
                 /*LowerIsBetter=*/true);
    }
    bench::printRule();
  }

  if (ChecksumMismatches > 0)
    std::fprintf(stderr,
                 "\n%d checksum mismatches: some backend corrupted or "
                 "reordered user data\n",
                 ChecksumMismatches);
  if (FailedCells > 0)
    std::fprintf(stderr, "\n%d gauntlet cells failed\n", FailedCells);

  // Machine-readable trailer for the perf trajectory. reference_config
  // tells bench_compare.py which backend anchors each scenario's ratios.
  std::printf("\nJSON: {\"bench\":\"gauntlet\",\"ops_per_thread\":%" PRIu64
              ",\"threads\":%d,\"reference_config\":\"glibc\","
              "\"results\":[%s]}\n",
              Ops, Threads, JsonRows.c_str());
  return ChecksumMismatches > 0 ? 1 : 0;
}
