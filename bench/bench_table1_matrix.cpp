//===- bench/bench_table1_matrix.cpp - Table 1 ----------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1 empirically: for each memory-error class, a small
/// scenario program triggers exactly that error under each memory manager
/// (the Lea-style GNU-libc stand-in, the BDW-style collector, and DieHard),
/// in a forked child, and the observed outcome is printed.
///
///   correct   = the scenario ran to completion with correct data
///   undefined = crash, hang, or silently corrupted data
///   abort*    = detected and reported (DieHard's replicated mode turns
///               uninitialized reads into detection; see Section 6.3)
///
/// Expected shape (Table 1): the libc column is undefined almost
/// everywhere; the GC column fixes the free-family errors; DieHard handles
/// everything, probabilistically where marked.
///
//===----------------------------------------------------------------------===//

#include "baselines/DieHardAllocator.h"
#include "baselines/GcAllocator.h"
#include "baselines/LeaAllocator.h"
#include "bench/BenchUtil.h"
#include "replication/Replication.h"
#include "workloads/ForkHarness.h"

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

using namespace diehard;

namespace {

using AllocatorFactory = std::function<std::unique_ptr<Allocator>()>;

/// Each scenario returns 0 when the program's own data survived intact.
/// They are written against the plain Allocator interface so one body runs
/// under every manager.

int scenarioHeapMetadataOverwrite(Allocator &A) {
  // Write a few bytes past an object, then exercise free/alloc heavily:
  // with boundary tags this is metadata corruption; with inline-adjacent
  // data it silently corrupts the neighbour.
  std::vector<char *> Objs;
  for (int I = 0; I < 64; ++I) {
    auto *P = static_cast<char *>(A.allocate(48));
    if (P == nullptr)
      return 1;
    std::memset(P, 'm', 48);
    Objs.push_back(P);
  }
  std::memset(Objs[32], 0x41, 48 + 24); // 24 bytes of overflow.
  int Bad = 0;
  for (size_t I = 0; I < Objs.size(); ++I) {
    if (I == 32)
      continue;
    for (int B = 0; B < 48; ++B)
      Bad += Objs[I][B] != 'm' ? 1 : 0;
  }
  for (char *P : Objs)
    A.deallocate(P);
  for (int I = 0; I < 64; ++I)
    A.deallocate(A.allocate(48));
  return Bad == 0 ? 0 : 1;
}

int scenarioInvalidFree(Allocator &A) {
  char Stack[64];
  char *P = static_cast<char *>(A.allocate(64));
  std::memset(P, 7, 64);
  A.deallocate(Stack + 8);      // Stack address.
  A.deallocate(P + 24);         // Interior pointer.
  for (int I = 0; I < 128; ++I) // Churn to surface corruption.
    A.deallocate(A.allocate(64));
  for (int I = 0; I < 64; ++I)
    if (P[I] != 7)
      return 1;
  A.deallocate(P);
  return 0;
}

int scenarioDoubleFree(Allocator &A) {
  char *P = static_cast<char *>(A.allocate(64));
  A.deallocate(P);
  A.deallocate(P); // Double free.
  // If the allocator hands the same chunk out twice, two writers collide.
  char *X = static_cast<char *>(A.allocate(64));
  char *Y = static_cast<char *>(A.allocate(64));
  if (X == Y)
    return 1;
  std::memset(X, 1, 64);
  std::memset(Y, 2, 64);
  for (int I = 0; I < 64; ++I)
    if (X[I] != 1)
      return 1;
  A.deallocate(X);
  A.deallocate(Y);
  return 0;
}

int scenarioDanglingPointer(Allocator &A) {
  auto *P = static_cast<unsigned char *>(A.allocate(64));
  std::memset(P, 0xAB, 64);
  A.deallocate(P); // Premature free; the program keeps using P.
  // A burst of intervening allocations (each immediately freed in the
  // malloc world would be too kind — hold them, the worst case).
  std::vector<void *> Hold;
  for (int I = 0; I < 50; ++I) {
    void *Q = A.allocate(64);
    if (Q != nullptr)
      std::memset(Q, 0xCD, 64);
    Hold.push_back(Q);
  }
  int Intact = 1;
  for (int I = 0; I < 64; ++I)
    Intact &= P[I] == 0xAB ? 1 : 0;
  for (void *Q : Hold)
    A.deallocate(Q);
  return Intact ? 0 : 1;
}

int scenarioBufferOverflow(Allocator &A) {
  // One live neighbour population, one overflowing write, then integrity
  // check of everything else.
  std::vector<char *> Objs;
  for (int I = 0; I < 40; ++I) {
    auto *P = static_cast<char *>(A.allocate(64));
    if (P == nullptr)
      return 1;
    std::memset(P, 'x', 64);
    Objs.push_back(P);
  }
  std::memset(Objs[20], 'Z', 64 + 128); // Two objects' worth of overflow.
  int Bad = 0;
  for (size_t I = 0; I < Objs.size(); ++I) {
    if (I == 20)
      continue;
    for (int B = 0; B < 64; ++B)
      Bad += Objs[I][B] != 'x' ? 1 : 0;
  }
  for (char *P : Objs)
    A.deallocate(P);
  return Bad == 0 ? 0 : 1;
}

const char *outcomeText(const ForkOutcome &Outcome) {
  if (Outcome.cleanExit())
    return "correct";
  return "undefined";
}

void runRow(const char *Error, const std::function<int(Allocator &)> &Body,
            bool DieHardProbabilistic) {
  auto MakeLea = [] {
    return std::unique_ptr<Allocator>(new LeaAllocator(64 << 20));
  };
  auto MakeGc = [] {
    return std::unique_ptr<Allocator>(new GcAllocator(64 << 20));
  };
  auto MakeDieHard = [] {
    DieHardOptions O;
    O.HeapSize = 128 * 1024 * 1024;
    O.Seed = 0xAB1E;
    return std::unique_ptr<Allocator>(new DieHardAllocator(O));
  };

  auto RunWith = [&](const AllocatorFactory &Make) {
    return runInFork([&] {
      auto A = Make();
      return Body(*A);
    });
  };

  std::printf("%-26s %-12s %-12s %s%s\n", Error,
              outcomeText(RunWith(MakeLea)), outcomeText(RunWith(MakeGc)),
              outcomeText(RunWith(MakeDieHard)),
              DieHardProbabilistic ? "*" : "");
}

} // namespace

int main() {
  std::printf("Table 1: How memory managers handle memory-safety errors\n");
  std::printf("(measured empirically; * = probabilistic guarantee)\n");
  bench::printRule();
  std::printf("%-26s %-12s %-12s %s\n", "error", "libc(Lea)", "BDW-GC",
              "DieHard");
  bench::printRule();

  runRow("heap metadata overwrites", scenarioHeapMetadataOverwrite, false);
  runRow("invalid frees", scenarioInvalidFree, false);
  runRow("double frees", scenarioDoubleFree, false);
  runRow("dangling pointers", scenarioDanglingPointer, true);
  runRow("buffer overflows", scenarioBufferOverflow, true);

  // Uninitialized reads: only DieHard's replicated mode does anything —
  // it aborts with detection rather than computing garbage.
  {
    ReplicationOptions O;
    O.Replicas = 3;
    O.MasterSeed = 0x7AB1;
    O.HeapSize = 24 * 1024 * 1024;
    ReplicaManager Manager(O);
    ReplicationResult R = Manager.run(
        [](ReplicaContext &Ctx) {
          DieHardHeap Heap(Ctx.heapOptions());
          auto *P = static_cast<uint32_t *>(Heap.allocate(256));
          char Buf[16];
          std::snprintf(Buf, sizeof(Buf), "%08x", P[5]); // Uninit read.
          Ctx.write(Buf, 8);
          return 0;
        },
        "");
    std::printf("%-26s %-12s %-12s %s\n", "uninitialized reads",
                "undefined", "undefined",
                R.UninitReadDetected ? "abort* (detected)" : "undefined");
  }
  bench::printRule();
  std::printf("Paper anchors (Table 1): libc is undefined on every row;\n"
              "the GC fixes invalid/double frees and dangling pointers;\n"
              "DieHard handles all rows, probabilistically where starred.\n");
  return 0;
}
