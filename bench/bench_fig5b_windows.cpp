//===- bench/bench_fig5b_windows.cpp - Figure 5(b) ------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 5(b): the Windows XP comparison. The paper found that
/// against the (much slower) Windows system allocator, DieHard's overhead
/// vanishes — some programs even speed up. We substitute a deliberately
/// slower lock-and-search system-allocator stand-in (see DESIGN.md) and
/// report DieHard's runtime normalized to it across the
/// allocation-intensive suite.
///
/// Expected shape: normalized DieHard runtimes clustered around (and below)
/// 1.0, versus the clearly-above-1.0 ratios of Figure 5(a).
///
//===----------------------------------------------------------------------===//

#include "baselines/Allocator.h"
#include "baselines/DieHardAllocator.h"
#include "bench/BenchUtil.h"
#include "workloads/WorkloadSuite.h"

#include <cstdio>
#include <vector>

using namespace diehard;
using bench::geometricMean;
using bench::timeWorkload;

int main() {
  std::printf("Figure 5(b): Runtime on Windows XP "
              "(slow system allocator stand-in; normalized)\n");
  bench::printRule();
  std::printf("%-20s %10s %10s\n", "benchmark", "malloc", "DieHard");
  bench::printRule();

  std::vector<double> Norm;
  for (const WorkloadParams &P : allocationIntensiveSuite()) {
    SyntheticWorkload W(P);

    SlowSystemAllocator Slow;
    double TMalloc = timeWorkload(W, Slow);

    DieHardOptions O;
    O.HeapSize = 384 * 1024 * 1024;
    O.Seed = 0x317ED + P.Seed;
    DieHardAllocator DieHardA(O);
    double TDieHard = timeWorkload(W, DieHardA);

    double N = TDieHard / TMalloc;
    Norm.push_back(N);
    std::printf("%-20s %10.2f %10.2f\n", P.Name.c_str(), 1.0, N);
  }
  bench::printRule();
  std::printf("%-20s %10.2f %10.2f\n", "Geo. Mean", 1.0,
              geometricMean(Norm));
  std::printf("\nPaper shape: against a slow system allocator the geometric\n"
              "mean is ~1.0 — DieHard is effectively free, and some programs\n"
              "run faster (Section 7.2.2).\n");
  return 0;
}
