//===- bench/bench_mt_scaling.cpp - multithreaded malloc scaling ----------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures how aggregate malloc/free throughput scales with threads, in
/// two scenarios:
///
/// 1. *Sharding* — a single global DieHard heap (shards = 1, the
///    pre-sharding configuration) versus a per-thread-sharded heap
///    (shards = CPU count). Each worker runs a fixed count of churn
///    operations — allocate a random small size into a random slot,
///    freeing the previous occupant — and the table reports aggregate
///    operations per second at 1/2/4/8 threads plus the speedup of
///    sharding at the highest thread count.
///
/// 2. *Partition locking* — all threads pinned to ONE shard (NumShards=1),
///    each thread churning its own size class, with the shard's old
///    coarse lock (PartitionLocking=false) versus the per-partition locks.
///    This isolates the win of pushing lock granularity down to the
///    paper's per-size-class unit: same shard, disjoint partitions, so
///    fine-grained locking should approach linear scaling where the
///    coarse lock serializes everything.
///
/// 3. *Thread cache* — the sharded configuration with the per-thread
///    cache tier off versus on (DIEHARD_TCACHE semantics, K=32) versus on
///    with adaptive sizing (DIEHARD_TCACHE_ADAPT, K starting at 32 and
///    moving per class with traffic). With the cache, the steady-state
///    malloc/free is a TLS pop/push and partition locks are only touched
///    once per K-slot batch, so this measures the lock-free fast path's
///    win over per-operation locking — visible even single-threaded
///    (fewer lock round-trips), growing with contention — and what
///    adaptation adds on top (bigger batches on hot classes, so fewer
///    refills).
///
/// 4. *Epoch sweeper* — the cached sharded configuration with the
///    background maintenance thread (DIEHARD_SWEEPER semantics, 25 ms
///    passes) off versus on. Every bench thread stays hot, so nothing is
///    ever aged or released; the scenario measures the sweeper's steady-
///    state overhead, which should be ~1.0x.
///
/// Usage: bench_mt_scaling [ops-per-thread] [shards]
/// (defaults: 400000 ops, one shard per CPU)
///
/// The absolute numbers depend on the machine; the interesting outputs are
/// the per-row scaling and the final ratios (>= 3x sharded-vs-global at 8
/// threads on a multicore box is the sharding layer's acceptance number).
/// After the tables the bench emits one line starting with "JSON: "
/// followed by a machine-readable summary of every measurement, so CI and
/// future PRs can track the perf trajectory.
///
//===----------------------------------------------------------------------===//

#include "core/ShardedHeap.h"
#include "support/Rng.h"

#include "bench/BenchUtil.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace {

using diehard::Rng;
using diehard::ShardedHeap;
using diehard::ShardedHeapOptions;
using diehard::SizeClass;

constexpr int SlotsPerThread = 256;
constexpr size_t MaxRequest = 1024;

/// One worker: `Ops` rounds of slot churn against `Heap`. With ClassIndex
/// >= 0 every request is that size class's exact size (the mixed-class
/// scenario gives each thread its own class); otherwise sizes are random in
/// [1, MaxRequest].
void churnWorker(ShardedHeap &Heap, uint64_t Seed, long Ops, int ClassIndex,
                 std::atomic<bool> &Go, std::atomic<long> &Failed) {
  Rng Rand(Seed);
  size_t FixedSize =
      ClassIndex >= 0 ? SizeClass::classToSize(ClassIndex) : 0;
  std::vector<void *> Slots(SlotsPerThread, nullptr);
  while (!Go.load(std::memory_order_acquire))
    std::this_thread::yield();
  long Failures = 0;
  for (long I = 0; I < Ops; ++I) {
    size_t Slot = Rand.nextBounded(SlotsPerThread);
    if (Slots[Slot] != nullptr)
      Heap.deallocate(Slots[Slot]);
    size_t Size =
        FixedSize != 0 ? FixedSize : 1 + Rand.nextBounded(MaxRequest);
    Slots[Slot] = Heap.allocate(Size);
    if (Slots[Slot] == nullptr)
      ++Failures;
  }
  for (void *P : Slots)
    if (P != nullptr)
      Heap.deallocate(P);
  if (Failures != 0)
    Failed.fetch_add(Failures, std::memory_order_relaxed);
}

struct RunConfig {
  size_t Shards;
  bool PartitionLocks;
  bool PerThreadClasses;     ///< Thread t churns size class t % NumClasses.
  size_t ThreadCacheSlots = 0; ///< K for the thread-cache tier (0 = off).
  bool AdaptiveCache = false;  ///< Adaptive per-class K (needs K > 0).
  bool Sweeper = false;        ///< Background epoch sweeper thread.
  uint32_t SweepIntervalMs = 25; ///< Sweeper pass interval when enabled.
};

/// Runs `Threads` workers against a fresh heap per `Config` and returns
/// aggregate operations (1 alloc + amortized 1 free) per second.
double measure(const RunConfig &Config, int Threads, long OpsPerThread) {
  ShardedHeapOptions Options;
  Options.Heap.HeapSize = 384 * 1024 * 1024;
  Options.Heap.Seed = 0x5EED + 17 * static_cast<uint64_t>(Threads);
  Options.NumShards = Config.Shards;
  Options.PartitionLocking = Config.PartitionLocks;
  Options.ThreadCacheSlots = Config.ThreadCacheSlots;
  Options.ThreadCacheAdaptive = Config.AdaptiveCache;
  Options.Sweeper = Config.Sweeper;
  Options.SweepIntervalMs = Config.SweepIntervalMs;
  ShardedHeap Heap(Options);
  if (!Heap.isValid()) {
    std::fprintf(stderr, "heap reservation failed\n");
    std::exit(1);
  }

  std::atomic<bool> Go{false};
  std::atomic<long> Failed{0};
  std::vector<std::thread> Workers;
  Workers.reserve(static_cast<size_t>(Threads));
  for (int T = 0; T < Threads; ++T) {
    int ClassIndex =
        Config.PerThreadClasses ? T % SizeClass::NumClasses : -1;
    Workers.emplace_back(churnWorker, std::ref(Heap),
                         static_cast<uint64_t>(T) + 1, OpsPerThread,
                         ClassIndex, std::ref(Go), std::ref(Failed));
  }

  double Seconds = diehard::bench::timeSeconds([&] {
    Go.store(true, std::memory_order_release);
    for (std::thread &W : Workers)
      W.join();
  });
  if (Failed.load() != 0)
    std::fprintf(stderr, "  (%ld failed allocations)\n", Failed.load());
  return static_cast<double>(OpsPerThread) * Threads / Seconds;
}

/// Accumulates every measurement for the trailing JSON summary.
std::string JsonRows;

void recordJson(const char *Scenario, const char *Config, int Threads,
                double OpsPerSec) {
  char Row[160];
  std::snprintf(Row, sizeof(Row),
                "%s{\"scenario\":\"%s\",\"config\":\"%s\","
                "\"threads\":%d,\"ops_per_sec\":%.0f}",
                JsonRows.empty() ? "" : ",", Scenario, Config, Threads,
                OpsPerSec);
  JsonRows += Row;
}

} // namespace

int main(int argc, char **argv) {
  long OpsPerThread = 400000;
  if (argc > 1)
    OpsPerThread = std::strtol(argv[1], nullptr, 10);
  if (OpsPerThread <= 0)
    OpsPerThread = 400000;

  size_t Cpus = ShardedHeap::defaultShardCount();
  if (argc > 2) {
    long Shards = std::strtol(argv[2], nullptr, 10);
    if (Shards > 0)
      Cpus = static_cast<size_t>(Shards);
  }
  std::printf("mt scaling: %ld churn ops/thread, slots=%d, max size=%zu, "
              "cpus=%zu\n",
              OpsPerThread, SlotsPerThread, MaxRequest, Cpus);

  // Scenario 1: global (1 shard) vs sharded (one shard per CPU), random
  // sizes — the cross-shard scaling picture.
  diehard::bench::printRule();
  std::printf("%8s  %12s  %12s  %8s\n", "threads", "global ops/s",
              "sharded ops/s", "ratio");
  diehard::bench::printRule();

  const RunConfig Global{1, true, false};
  const RunConfig Sharded{Cpus, true, false};
  const int ThreadCounts[] = {1, 2, 4, 8};
  double GlobalAt8 = 0, ShardedAt8 = 0;
  for (int Threads : ThreadCounts) {
    double G = measure(Global, Threads, OpsPerThread);
    double S = measure(Sharded, Threads, OpsPerThread);
    recordJson("sharding", "global", Threads, G);
    recordJson("sharding", "sharded", Threads, S);
    std::printf("%8d  %12.0f  %12.0f  %7.2fx\n", Threads, G, S, S / G);
    if (Threads == 8) {
      GlobalAt8 = G;
      ShardedAt8 = S;
    }
  }
  diehard::bench::printRule();
  std::printf("sharded (%zu shards) vs global at 8 threads: %.2fx\n", Cpus,
              ShardedAt8 / GlobalAt8);

  // Scenario 2: same shard, each thread its own size class — coarse
  // per-shard lock vs per-partition locks. This is the contention pattern
  // the partition decomposition exists for.
  std::printf("\nsame-shard mixed-size-class contention (1 shard, thread t "
              "-> class t%%%d)\n",
              SizeClass::NumClasses);
  diehard::bench::printRule();
  std::printf("%8s  %12s  %14s  %8s\n", "threads", "coarse ops/s",
              "partition ops/s", "ratio");
  diehard::bench::printRule();

  const RunConfig Coarse{1, false, true};
  const RunConfig Partitioned{1, true, true};
  double CoarseAt8 = 0, PartitionedAt8 = 0;
  for (int Threads : ThreadCounts) {
    double C = measure(Coarse, Threads, OpsPerThread);
    double P = measure(Partitioned, Threads, OpsPerThread);
    recordJson("mixed_class", "coarse_lock", Threads, C);
    recordJson("mixed_class", "partition_locks", Threads, P);
    std::printf("%8d  %12.0f  %14.0f  %7.2fx\n", Threads, C, P, P / C);
    if (Threads == 8) {
      CoarseAt8 = C;
      PartitionedAt8 = P;
    }
  }
  diehard::bench::printRule();
  std::printf("partition locks vs coarse lock at 8 threads: %.2fx\n",
              PartitionedAt8 / CoarseAt8);

  // Scenario 3: the thread-cache tier off vs on (K=32) vs adaptive over
  // the sharded configuration — the lock-free fast path's win over per-op
  // locking, and adaptation's win over a fixed K.
  std::printf("\nthread cache (%zu shards, random sizes, K=32)\n", Cpus);
  diehard::bench::printRule();
  std::printf("%8s  %14s  %13s  %13s  %8s\n", "threads", "cache-off ops/s",
              "cache-on ops/s", "adaptive ops/s", "on/off");
  diehard::bench::printRule();

  const RunConfig CacheOff{Cpus, true, false, 0};
  const RunConfig CacheOn{Cpus, true, false, 32};
  const RunConfig CacheAdaptive{Cpus, true, false, 32, true};
  double OffAt8 = 0, OnAt8 = 0, AdaptiveAt8 = 0;
  for (int Threads : ThreadCounts) {
    double Off = measure(CacheOff, Threads, OpsPerThread);
    double On = measure(CacheOn, Threads, OpsPerThread);
    double Adp = measure(CacheAdaptive, Threads, OpsPerThread);
    recordJson("tcache", "cache_off", Threads, Off);
    recordJson("tcache", "cache_on", Threads, On);
    recordJson("tcache", "cache_adaptive", Threads, Adp);
    std::printf("%8d  %14.0f  %13.0f  %13.0f  %7.2fx\n", Threads, Off, On,
                Adp, On / Off);
    if (Threads == 8) {
      OffAt8 = Off;
      OnAt8 = On;
      AdaptiveAt8 = Adp;
    }
  }
  diehard::bench::printRule();
  std::printf("thread cache on vs off at 8 threads: %.2fx\n",
              OnAt8 / OffAt8);
  std::printf("adaptive vs fixed K at 8 threads: %.2fx\n",
              AdaptiveAt8 / OnAt8);

  // Scenario 4: the background epoch sweeper off vs on over the cached
  // sharded configuration. The sweeper periodically drains sidecars, ages
  // quiet caches and publishes the pressure table; under a steady-state
  // churn storm every thread stays active, so its cost here is pure
  // overhead — the interesting result is how close on/off stays to 1.0x
  // (the maintenance thread must not tax the fast path).
  const RunConfig SweeperOff{Cpus, true, false, 32, false, false, 25};
  const RunConfig SweeperOn{Cpus, true, false, 32, false, true, 25};
  std::printf("\nepoch sweeper (%zu shards, K=32, %u ms passes)\n", Cpus,
              SweeperOn.SweepIntervalMs);
  diehard::bench::printRule();
  std::printf("%8s  %15s  %14s  %8s\n", "threads", "sweeper-off ops/s",
              "sweeper-on ops/s", "on/off");
  diehard::bench::printRule();

  double SwOffAt8 = 0, SwOnAt8 = 0;
  for (int Threads : ThreadCounts) {
    double Off = measure(SweeperOff, Threads, OpsPerThread);
    double On = measure(SweeperOn, Threads, OpsPerThread);
    recordJson("sweeper", "sweeper_off", Threads, Off);
    recordJson("sweeper", "sweeper_on", Threads, On);
    std::printf("%8d  %15.0f  %14.0f  %7.2fx\n", Threads, Off, On,
                On / Off);
    if (Threads == 8) {
      SwOffAt8 = Off;
      SwOnAt8 = On;
    }
  }
  diehard::bench::printRule();
  std::printf("sweeper on vs off at 8 threads: %.2fx\n", SwOnAt8 / SwOffAt8);

  // Machine-readable trailer for the perf trajectory.
  std::printf("\nJSON: {\"bench\":\"mt_scaling\",\"ops_per_thread\":%ld,"
              "\"shards\":%zu,\"results\":[%s]}\n",
              OpsPerThread, Cpus, JsonRows.c_str());
  return 0;
}
