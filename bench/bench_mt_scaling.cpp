//===- bench/bench_mt_scaling.cpp - multithreaded malloc scaling ----------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures how aggregate malloc/free throughput scales with threads, for a
/// single global DieHard heap (shards = 1, the pre-sharding configuration)
/// versus a per-thread-sharded heap (shards = CPU count). Each worker runs a
/// fixed count of churn operations — allocate a random small size into a
/// random slot, freeing the previous occupant — and the table reports
/// aggregate operations per second at 1/2/4/8 threads plus the speedup of
/// sharding at the highest thread count.
///
/// Usage: bench_mt_scaling [ops-per-thread] [shards]
/// (defaults: 400000 ops, one shard per CPU)
///
/// The absolute numbers depend on the machine; the interesting outputs are
/// the per-row scaling and the final sharded-vs-global ratio, which is the
/// acceptance number for the sharding layer (>= 3x on a multicore box).
///
//===----------------------------------------------------------------------===//

#include "core/ShardedHeap.h"
#include "support/Rng.h"

#include "bench/BenchUtil.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

namespace {

using diehard::Rng;
using diehard::ShardedHeap;
using diehard::ShardedHeapOptions;

constexpr int SlotsPerThread = 256;
constexpr size_t MaxRequest = 1024;

/// One worker: `Ops` rounds of slot churn against `Heap`.
void churnWorker(ShardedHeap &Heap, uint64_t Seed, long Ops,
                 std::atomic<bool> &Go, std::atomic<long> &Failed) {
  Rng Rand(Seed);
  std::vector<void *> Slots(SlotsPerThread, nullptr);
  while (!Go.load(std::memory_order_acquire))
    std::this_thread::yield();
  long Failures = 0;
  for (long I = 0; I < Ops; ++I) {
    size_t Slot = Rand.nextBounded(SlotsPerThread);
    if (Slots[Slot] != nullptr)
      Heap.deallocate(Slots[Slot]);
    Slots[Slot] = Heap.allocate(1 + Rand.nextBounded(MaxRequest));
    if (Slots[Slot] == nullptr)
      ++Failures;
  }
  for (void *P : Slots)
    if (P != nullptr)
      Heap.deallocate(P);
  if (Failures != 0)
    Failed.fetch_add(Failures, std::memory_order_relaxed);
}

/// Runs `Threads` workers against a fresh heap with `Shards` shards and
/// returns aggregate operations (1 alloc + amortized 1 free) per second.
double measure(size_t Shards, int Threads, long OpsPerThread) {
  ShardedHeapOptions Options;
  Options.Heap.HeapSize = 384 * 1024 * 1024;
  Options.Heap.Seed = 0x5EED + 17 * static_cast<uint64_t>(Threads);
  Options.NumShards = Shards;
  ShardedHeap Heap(Options);
  if (!Heap.isValid()) {
    std::fprintf(stderr, "heap reservation failed\n");
    std::exit(1);
  }

  std::atomic<bool> Go{false};
  std::atomic<long> Failed{0};
  std::vector<std::thread> Workers;
  Workers.reserve(static_cast<size_t>(Threads));
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back(churnWorker, std::ref(Heap),
                         static_cast<uint64_t>(T) + 1, OpsPerThread,
                         std::ref(Go), std::ref(Failed));

  double Seconds = diehard::bench::timeSeconds([&] {
    Go.store(true, std::memory_order_release);
    for (std::thread &W : Workers)
      W.join();
  });
  if (Failed.load() != 0)
    std::fprintf(stderr, "  (%ld failed allocations)\n", Failed.load());
  return static_cast<double>(OpsPerThread) * Threads / Seconds;
}

} // namespace

int main(int argc, char **argv) {
  long OpsPerThread = 400000;
  if (argc > 1)
    OpsPerThread = std::strtol(argv[1], nullptr, 10);
  if (OpsPerThread <= 0)
    OpsPerThread = 400000;

  size_t Cpus = ShardedHeap::defaultShardCount();
  if (argc > 2) {
    long Shards = std::strtol(argv[2], nullptr, 10);
    if (Shards > 0)
      Cpus = static_cast<size_t>(Shards);
  }
  std::printf("mt scaling: %ld churn ops/thread, slots=%d, max size=%zu, "
              "cpus=%zu\n",
              OpsPerThread, SlotsPerThread, MaxRequest, Cpus);
  diehard::bench::printRule();
  std::printf("%8s  %12s  %12s  %8s\n", "threads", "global ops/s",
              "sharded ops/s", "ratio");
  diehard::bench::printRule();

  const int ThreadCounts[] = {1, 2, 4, 8};
  double GlobalAt8 = 0, ShardedAt8 = 0;
  for (int Threads : ThreadCounts) {
    double Global = measure(1, Threads, OpsPerThread);
    double Sharded = measure(Cpus, Threads, OpsPerThread);
    std::printf("%8d  %12.0f  %12.0f  %7.2fx\n", Threads, Global, Sharded,
                Sharded / Global);
    if (Threads == 8) {
      GlobalAt8 = Global;
      ShardedAt8 = Sharded;
    }
  }
  diehard::bench::printRule();
  std::printf("sharded (%zu shards) vs global at 8 threads: %.2fx\n", Cpus,
              ShardedAt8 / GlobalAt8);
  return 0;
}
