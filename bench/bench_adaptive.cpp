//===- bench/bench_adaptive.cpp - adaptive vs fixed heap ------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates the Section 9 future-work extension implemented in this
/// repository: the adaptive heap that grows regions on demand versus the
/// paper's fixed maximum-size heap. Reports runtime and reserved address
/// space across the allocation-intensive suite.
///
/// Expected shape: near-identical runtime (growth amortizes away), with
/// reservation proportional to each program's live demand instead of a
/// fixed 384 MB — addressing the paper's "reduced address space" concern
/// for 32-bit systems (Section 4.5).
///
//===----------------------------------------------------------------------===//

#include "baselines/AdaptiveAllocator.h"
#include "baselines/DieHardAllocator.h"
#include "bench/BenchUtil.h"
#include "workloads/WorkloadSuite.h"

#include <cstdio>

using namespace diehard;

int main() {
  std::printf("Extension: adaptive region growth (paper Section 9)\n");
  bench::printRule(78);
  std::printf("%-14s %12s %12s %16s %16s\n", "benchmark", "fixed (s)",
              "adaptive (s)", "fixed reserve", "adaptive reserve");
  bench::printRule(78);

  for (const WorkloadParams &P : allocationIntensiveSuite()) {
    SyntheticWorkload W(P);

    DieHardOptions Fixed;
    Fixed.HeapSize = 384 * 1024 * 1024;
    Fixed.Seed = 0xADA + P.Seed;
    DieHardAllocator FixedA(Fixed);
    double TFixed = bench::timeWorkload(W, FixedA, 2);

    AdaptiveOptions Adaptive;
    Adaptive.Seed = 0xADA + P.Seed;
    AdaptiveAllocator AdaptiveA(Adaptive);
    double TAdaptive = bench::timeWorkload(W, AdaptiveA, 2);

    std::printf("%-14s %12.3f %12.3f %13zu MB %13zu MB\n", P.Name.c_str(),
                TFixed, TAdaptive, Fixed.HeapSize >> 20,
                AdaptiveA.heap().reservedBytes() >> 20);
  }
  bench::printRule(78);
  std::printf("Shape: runtimes match; the adaptive heap reserves only what\n"
              "the live set demands (times M), recovering the address space\n"
              "the fixed design gives up (Section 4.5 / Section 9).\n");
  return 0;
}
