//===- bench/bench_fault_injection.cpp - Section 7.3.1 --------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Section 7.3.1 fault-injection experiment on the
/// espresso-like workload, 10 runs per configuration:
///
///  * dangling pointers at 50% frequency, distance 10 — the paper's default
///    allocator fails all 10 runs, DieHard completes 9 of 10;
///  * buffer overflows at 1% (4-byte under-allocation of requests >= 32
///    bytes) — the default allocator crashes 9 of 10 and hangs the tenth,
///    DieHard completes 10 of 10.
///
/// "Correct" means the run finishes with the fault-free checksum; crashes,
/// hangs, and wrong checksums are failures.
///
//===----------------------------------------------------------------------===//

#include "baselines/DieHardAllocator.h"
#include "baselines/LeaAllocator.h"
#include "bench/BenchUtil.h"
#include "faultinject/FaultInjector.h"
#include "faultinject/TraceAllocator.h"
#include "workloads/ForkHarness.h"
#include "workloads/WorkloadSuite.h"

#include <cstdio>
#include <functional>

using namespace diehard;

namespace {

WorkloadParams espressoLike() {
  WorkloadParams P = findWorkload("espresso");
  P.MemoryOps = 120000; // Keep each of the 10 runs quick.
  return P;
}

/// Traces the workload once to get the allocation log and the fault-free
/// checksum.
struct TracedRun {
  AllocationTrace Trace;
  uint64_t CleanChecksum;
};

TracedRun traceWorkload() {
  DieHardOptions O;
  O.HeapSize = 256 * 1024 * 1024;
  O.Seed = 99;
  DieHardAllocator Inner(O);
  TraceAllocator Tracer(Inner);
  SyntheticWorkload W(espressoLike());
  WorkloadResult R = W.run(Tracer);
  return TracedRun{Tracer.trace(), R.Checksum};
}

using AllocatorFactory = std::function<Allocator *()>;

/// Runs the injected workload 10 times in forked children; returns how many
/// runs completed with the correct checksum.
int survivedRuns(const TracedRun &Traced, const FaultConfig &BaseConfig,
                 const AllocatorFactory &MakeAllocator) {
  int Survived = 0;
  for (int Run = 0; Run < 10; ++Run) {
    FaultConfig Config = BaseConfig;
    Config.Seed = static_cast<uint64_t>(Run) * 7919 + 13;
    ForkOutcome Outcome = runInFork(
        [&]() -> int {
          Allocator *Inner = MakeAllocator();
          FaultInjector Injector(*Inner, Traced.Trace, Config);
          SyntheticWorkload W(espressoLike());
          WorkloadResult R = W.run(Injector);
          bool Correct = R.Checksum == Traced.CleanChecksum;
          delete Inner;
          return Correct ? 0 : 1;
        },
        /*TimeoutMillis=*/30000);
    Survived += Outcome.cleanExit() ? 1 : 0;
  }
  return Survived;
}

} // namespace

int main() {
  std::printf("Section 7.3.1: Fault injection on espresso-like workload\n");
  std::printf("(10 runs per cell; 'correct' = clean exit with the fault-free"
              " checksum)\n");
  bench::printRule();

  TracedRun Traced = traceWorkload();
  std::printf("traced %zu allocations; clean checksum %016llx\n",
              Traced.Trace.size(),
              static_cast<unsigned long long>(Traced.CleanChecksum));
  bench::printRule();

  AllocatorFactory MakeLea = [] {
    return new LeaAllocator(size_t(512) << 20);
  };
  AllocatorFactory MakeDieHard = [] {
    DieHardOptions O;
    O.HeapSize = 384 * 1024 * 1024;
    O.Seed = 0; // Truly random per run, as deployed.
    return new DieHardAllocator(O);
  };

  std::printf("%-44s %12s %12s\n", "fault configuration", "malloc",
              "DieHard");
  bench::printRule();

  FaultConfig Dangling;
  Dangling.DanglingProbability = 0.5;
  Dangling.DanglingDistance = 10;
  std::printf("%-44s %9d/10 %9d/10\n",
              "dangling: 50% of frees, 10 allocs early",
              survivedRuns(Traced, Dangling, MakeLea),
              survivedRuns(Traced, Dangling, MakeDieHard));

  FaultConfig Overflow;
  Overflow.OverflowProbability = 0.01;
  Overflow.OverflowMinSize = 32;
  Overflow.UnderAllocateBytes = 4;
  std::printf("%-44s %9d/10 %9d/10\n",
              "overflow: 1% of allocs >= 32B short by 4B",
              survivedRuns(Traced, Overflow, MakeLea),
              survivedRuns(Traced, Overflow, MakeDieHard));

  bench::printRule();
  std::printf("Paper anchors: with dangling 50%%/10, espresso never finishes"
              "\nunder the default allocator but runs correctly 9/10 under\n"
              "DieHard; with 1%% overflows it crashes or hangs 10/10 under\n"
              "the default allocator and runs 10/10 under DieHard.\n");
  return 0;
}
