//===- bench/bench_micro_alloc.cpp - allocator microbenchmarks ------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the allocation fast paths: malloc +
/// free pairs across size classes for DieHard, the Lea-style baseline, and
/// the system allocator, plus the two DieHard modes (with and without
/// random fill). These decompose the Figure 5 results into per-operation
/// costs.
///
//===----------------------------------------------------------------------===//

#include "baselines/DieHardAllocator.h"
#include "baselines/LeaAllocator.h"

#include <benchmark/benchmark.h>

#include <cstdlib>

using namespace diehard;

namespace {

void BM_DieHardMallocFree(benchmark::State &State) {
  DieHardOptions O;
  O.HeapSize = 384 * 1024 * 1024;
  O.Seed = 0xBE7C;
  DieHardAllocator A(O);
  size_t Size = static_cast<size_t>(State.range(0));
  for (auto _ : State) {
    void *P = A.allocate(Size);
    benchmark::DoNotOptimize(P);
    A.deallocate(P);
  }
}
BENCHMARK(BM_DieHardMallocFree)->RangeMultiplier(4)->Range(8, 16384);

void BM_DieHardReplicatedMallocFree(benchmark::State &State) {
  DieHardOptions O;
  O.HeapSize = 384 * 1024 * 1024;
  O.Seed = 0xBE7D;
  O.RandomFillObjects = true;
  DieHardAllocator A(O);
  size_t Size = static_cast<size_t>(State.range(0));
  for (auto _ : State) {
    void *P = A.allocate(Size);
    benchmark::DoNotOptimize(P);
    A.deallocate(P);
  }
}
BENCHMARK(BM_DieHardReplicatedMallocFree)
    ->RangeMultiplier(4)
    ->Range(8, 16384);

void BM_LeaMallocFree(benchmark::State &State) {
  LeaAllocator A(size_t(512) << 20);
  size_t Size = static_cast<size_t>(State.range(0));
  for (auto _ : State) {
    void *P = A.allocate(Size);
    benchmark::DoNotOptimize(P);
    A.deallocate(P);
  }
}
BENCHMARK(BM_LeaMallocFree)->RangeMultiplier(4)->Range(8, 16384);

void BM_SystemMallocFree(benchmark::State &State) {
  size_t Size = static_cast<size_t>(State.range(0));
  for (auto _ : State) {
    void *P = std::malloc(Size);
    benchmark::DoNotOptimize(P);
    std::free(P);
  }
}
BENCHMARK(BM_SystemMallocFree)->RangeMultiplier(4)->Range(8, 16384);

void BM_DieHardLargeObject(benchmark::State &State) {
  DieHardOptions O;
  O.HeapSize = 64 * 1024 * 1024;
  O.Seed = 0xBE7E;
  DieHardAllocator A(O);
  size_t Size = static_cast<size_t>(State.range(0));
  for (auto _ : State) {
    void *P = A.allocate(Size);
    benchmark::DoNotOptimize(P);
    A.deallocate(P);
  }
}
BENCHMARK(BM_DieHardLargeObject)->Arg(32 * 1024)->Arg(256 * 1024);

void BM_DieHardMallocAtFillLevel(benchmark::State &State) {
  // Probe cost as the partition approaches its 1/M threshold.
  DieHardOptions O;
  O.HeapSize = 96 * 1024 * 1024;
  O.Seed = 0xBE7F;
  DieHardAllocator A(O);
  int Percent = static_cast<int>(State.range(0));
  int C = SizeClass::sizeToClass(64);
  size_t Target = A.heap().thresholdForClass(C) *
                  static_cast<size_t>(Percent) / 100;
  std::vector<void *> Held;
  while (A.heap().liveInClass(C) < Target)
    Held.push_back(A.allocate(64));
  for (auto _ : State) {
    void *P = A.allocate(64);
    benchmark::DoNotOptimize(P);
    A.deallocate(P);
  }
  for (void *P : Held)
    A.deallocate(P);
}
BENCHMARK(BM_DieHardMallocAtFillLevel)->Arg(0)->Arg(50)->Arg(90)->Arg(99);

} // namespace

BENCHMARK_MAIN();
