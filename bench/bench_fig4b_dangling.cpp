//===- bench/bench_fig4b_dangling.cpp - Figure 4(b) -----------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 4(b): the probability of masking dangling-pointer
/// errors with stand-alone DieHard in its default configuration (384 MB
/// heap, M = 2, so each size class has a 32 MB region of which 16 MB is
/// free), for object sizes 8..256 bytes and 100 / 1,000 / 10,000
/// intervening allocations. Analytic = Theorem 2; sim = Monte Carlo over
/// the bitmap model.
///
//===----------------------------------------------------------------------===//

#include "analysis/MonteCarlo.h"
#include "analysis/Probability.h"
#include "bench/BenchUtil.h"

#include <cstdio>

using namespace diehard;

int main() {
  // Default configuration (Section 7.1): 384 MB heap, 12 regions, M = 2.
  constexpr size_t FreeBytesPerClass = 16 * 1024 * 1024;

  std::printf("Figure 4(b): Probability of Avoiding Dangling Pointer Error\n");
  std::printf("(stand-alone DieHard, default configuration: F = 16 MB per "
              "class)\n");
  bench::printRule(78);
  std::printf("%-12s %22s %22s %22s\n", "object size", "100 allocs",
              "1000 allocs", "10000 allocs");
  bench::printRule(78);

  Rng Rand(0xF16B);
  const size_t Allocations[] = {100, 1000, 10000};

  for (size_t Size = 8; Size <= 256; Size *= 2) {
    std::printf("%-12zu", Size);
    for (size_t A : Allocations) {
      double Analytic = maskDanglingProbability(FreeBytesPerClass, Size, A,
                                                /*Replicas=*/1);
      // The simulator works in slots; scale to a tractable slot count while
      // keeping A/Q fixed so the probability is unchanged.
      size_t Q = FreeBytesPerClass / Size;
      size_t ScaledQ = Q, ScaledA = A;
      while (ScaledQ > 65536) {
        ScaledQ /= 2;
        ScaledA /= 2;
      }
      double Sim = ScaledA > 0 ? simulateDanglingMask(ScaledQ, ScaledA, 1,
                                                      3000, Rand)
                               : 1.0;
      std::printf("   %7.3f%% / %7.3f%%", 100.0 * Analytic, 100.0 * Sim);
    }
    std::printf("\n");
  }
  bench::printRule(78);
  std::printf("Paper anchor: an 8-byte object freed 10,000 allocations too\n"
              "soon survives with > 99.5%% probability (Section 6.2).\n");
  return 0;
}
