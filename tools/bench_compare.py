#!/usr/bin/env python3
"""Compare a fresh bench JSON trailer against its committed baseline
(BENCH_mt_scaling.json / BENCH_space.json / BENCH_gauntlet.json at the
repo root).

Absolute numbers are machine-bound (ops/s especially, but RSS too once
kernel page-accounting differs), so the comparison works on *scenario
ratios* — each config's value relative to its scenario's reference
config (sharded/global, cache-on/off, dontneed/return-off, or the
document's own "reference_config", e.g. glibc for the gauntlet). Ratios
survive runner-hardware churn far better than raw numbers, which is what
lets a committed baseline accumulate a trajectory across PRs.

Each result row carries a "value" (older mt_scaling trailers say
"ops_per_sec"; both are accepted) and optionally "threads" (defaults to
0 for single-process benches). Regression direction is resolved per
row: a row-level "lower_is_better" wins, then the document-level
"lower_is_better", then higher-is-better. That lets one gauntlet
document mix ops/s (higher-better) with p99 latency and peak RSS
(lower-better) rows.

The reference config of a scenario is resolved in the same spirit: the
well-known scenarios in REFERENCE_CONFIG keep their historical
denominators, otherwise a document-level "reference_config" applies if
that config actually appears in the scenario, otherwise the
alphabetically first config — so new bench scenarios never break the
comparison.

The script prints a GitHub `::warning::` annotation per hit and a
machine-readable JSON summary (stdout, and --output if given), but
always exits 0 on well-formed input — the gate warns, it does not
block, because two-vCPU hosted runners are noisy. Exit codes: 0
compared, 2 bad input.

Usage:
  bench_compare.py --baseline BENCH_space.json --fresh fresh.json \
      [--warn-pct 10] [--output compare.json]
"""

import argparse
import json
import sys

# The denominator config of each known scenario; ratios are
# value(config)/value(reference) at equal thread counts.
REFERENCE_CONFIG = {
    "sharding": "global",
    "mixed_class": "coarse_lock",
    "tcache": "cache_off",
    "peak_espresso": "lea",
    "churn_idle": "return-off",
    "churn_pressure": "return-off",
    "frag_idle": "mesh-off",
}


def load_doc(path):
    """Returns the parsed trailer document, exiting 2 on unreadable input."""
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as err:
        sys.stderr.write(f"bench_compare: cannot parse {path}: {err}\n")
        sys.exit(2)


def load_results(doc):
    """Returns {(scenario, config, threads): (value, lower_or_None)} where
    the second element is the row-level lower_is_better flag, or None when
    the row does not carry one. Raises ValueError on malformed rows."""
    try:
        out = {}
        for row in doc["results"]:
            key = (row["scenario"], row["config"], int(row.get("threads", 0)))
            value = row["value"] if "value" in row else row["ops_per_sec"]
            lower = row.get("lower_is_better")
            out[key] = (float(value), None if lower is None else bool(lower))
        return out
    except (KeyError, TypeError) as err:
        raise ValueError(f"malformed results row: {err}") from err


def resolve_reference(scenario, configs, doc_reference):
    """Returns the denominator config for one scenario: the historical
    map first, then the document's reference_config (only if present in
    this scenario), then the alphabetically first config."""
    reference = REFERENCE_CONFIG.get(scenario)
    if reference is not None:
        return reference
    if doc_reference in configs:
        return doc_reference
    return sorted(configs)[0]


def scenario_ratios(results, doc_reference=None):
    """Returns ({key: ratio-vs-reference}, {key: lower_or_None}), skipping
    reference configs themselves and rows whose reference is missing."""
    ratios = {}
    flags = {}
    scenarios = {s for (s, _, _) in results}
    for scenario in scenarios:
        configs = {c for (s, c, _) in results if s == scenario}
        reference = resolve_reference(scenario, configs, doc_reference)
        for (s, config, threads), (value, lower) in results.items():
            if s != scenario or config == reference:
                continue
            ref = results.get((scenario, reference, threads))
            if ref is None or not ref[0]:
                continue
            key = (scenario, config, threads)
            ratios[key] = value / ref[0]
            flags[key] = lower
    return ratios, flags


def compare(base_doc, fresh_doc, warn_pct):
    """Compares two trailer documents and returns the summary dict. Each
    comparison entry carries the resolved direction under
    "lower_is_better"; regressed entries have status "regressed". Raises
    ValueError on malformed results."""
    base, base_flags = scenario_ratios(
        load_results(base_doc), base_doc.get("reference_config"))
    fresh, fresh_flags = scenario_ratios(
        load_results(fresh_doc), fresh_doc.get("reference_config"))
    doc_lower = bool(fresh_doc.get("lower_is_better", False))

    comparisons = []
    regressions = 0
    for key in sorted(base.keys() | fresh.keys()):
        scenario, config, threads = key
        entry = {"scenario": scenario, "config": config, "threads": threads}
        if key not in base:
            entry["status"] = "added"  # New scenario/config: no baseline.
            entry["fresh_ratio"] = round(fresh[key], 4)
        elif key not in fresh:
            entry["status"] = "removed"  # Gone from the bench: informational.
            entry["baseline_ratio"] = round(base[key], 4)
        else:
            # Row-level direction wins (fresh row first, then baseline row,
            # for trailers written before the row carried the flag), then
            # the document-level default.
            lower = fresh_flags.get(key)
            if lower is None:
                lower = base_flags.get(key)
            if lower is None:
                lower = doc_lower
            delta_pct = (fresh[key] - base[key]) / base[key] * 100.0
            if lower:
                regressed = delta_pct >= warn_pct
            else:
                regressed = delta_pct <= -warn_pct
            entry.update(
                status="regressed" if regressed else "ok",
                baseline_ratio=round(base[key], 4),
                fresh_ratio=round(fresh[key], 4),
                delta_pct=round(delta_pct, 2),
                lower_is_better=bool(lower),
            )
            if regressed:
                regressions += 1
        comparisons.append(entry)

    return {
        "bench": fresh_doc.get("bench", "unknown"),
        "warn_pct": warn_pct,
        "lower_is_better": doc_lower,
        "regressions": regressions,
        "comparisons": comparisons,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--warn-pct", type=float, default=10.0)
    parser.add_argument("--output")
    args = parser.parse_args()

    base_doc = load_doc(args.baseline)
    fresh_doc = load_doc(args.fresh)
    try:
        summary = compare(base_doc, fresh_doc, args.warn_pct)
    except ValueError as err:
        sys.stderr.write(f"bench_compare: {err}\n")
        return 2

    for entry in summary["comparisons"]:
        if entry["status"] != "regressed":
            continue
        print(
            f"::warning title=bench ratio regression::"
            f"{entry['scenario']}/{entry['config']} @{entry['threads']}t: "
            f"{entry['baseline_ratio']:.3f} -> {entry['fresh_ratio']:.3f} "
            f"({entry['delta_pct']:+.1f}%)"
        )

    text = json.dumps(summary, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
