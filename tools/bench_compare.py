#!/usr/bin/env python3
"""Compare a fresh bench JSON trailer against its committed baseline
(BENCH_mt_scaling.json / BENCH_space.json at the repo root).

Absolute numbers are machine-bound (ops/s especially, but RSS too once
kernel page-accounting differs), so the comparison works on *scenario
ratios* — each config's value relative to its scenario's reference
config (sharded/global, cache-on/off, dontneed/return-off). Ratios
survive runner-hardware churn far better than raw numbers, which is what
lets a committed baseline accumulate a trajectory across PRs.

Each result row carries a "value" (older mt_scaling trailers say
"ops_per_sec"; both are accepted) and optionally "threads" (defaults to
0 for single-process benches). A document-level "lower_is_better": true
flips the regression direction: for throughput a ratio that *dropped*
by --warn-pct percent regresses, for footprint one that *rose* does.

The script prints a GitHub `::warning::` annotation per hit and a
machine-readable JSON summary (stdout, and --output if given), but
always exits 0 on well-formed input — the gate warns, it does not
block, because two-vCPU hosted runners are noisy. Exit codes: 0
compared, 2 bad input.

Usage:
  bench_compare.py --baseline BENCH_space.json --fresh fresh.json \
      [--warn-pct 10] [--output compare.json]
"""

import argparse
import json
import sys

# The denominator config of each known scenario; ratios are
# value(config)/value(reference) at equal thread counts. Unknown
# scenarios fall back to their alphabetically first config so new bench
# scenarios never break the comparison.
REFERENCE_CONFIG = {
    "sharding": "global",
    "mixed_class": "coarse_lock",
    "tcache": "cache_off",
    "peak_espresso": "lea",
    "churn_idle": "return-off",
    "churn_pressure": "return-off",
    "frag_idle": "mesh-off",
}


def load_doc(path):
    """Returns the parsed trailer document."""
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as err:
        sys.stderr.write(f"bench_compare: cannot parse {path}: {err}\n")
        sys.exit(2)


def load_results(doc, path):
    """Returns {(scenario, config, threads): value}."""
    try:
        out = {}
        for row in doc["results"]:
            key = (row["scenario"], row["config"], int(row.get("threads", 0)))
            value = row["value"] if "value" in row else row["ops_per_sec"]
            out[key] = float(value)
        return out
    except (ValueError, KeyError, TypeError) as err:
        sys.stderr.write(f"bench_compare: cannot parse {path}: {err}\n")
        sys.exit(2)


def scenario_ratios(results):
    """Returns {(scenario, config, threads): ratio-vs-reference}, skipping
    reference configs themselves and rows whose reference is missing."""
    ratios = {}
    scenarios = {s for (s, _, _) in results}
    for scenario in scenarios:
        configs = sorted({c for (s, c, _) in results if s == scenario})
        reference = REFERENCE_CONFIG.get(scenario, configs[0])
        for (s, config, threads), value in results.items():
            if s != scenario or config == reference:
                continue
            ref = results.get((scenario, reference, threads))
            if not ref:
                continue
            ratios[(scenario, config, threads)] = value / ref
    return ratios


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--warn-pct", type=float, default=10.0)
    parser.add_argument("--output")
    args = parser.parse_args()

    base_doc = load_doc(args.baseline)
    fresh_doc = load_doc(args.fresh)
    base = scenario_ratios(load_results(base_doc, args.baseline))
    fresh = scenario_ratios(load_results(fresh_doc, args.fresh))
    lower_is_better = bool(fresh_doc.get("lower_is_better", False))

    comparisons = []
    regressions = 0
    for key in sorted(base.keys() | fresh.keys()):
        scenario, config, threads = key
        entry = {"scenario": scenario, "config": config, "threads": threads}
        if key not in base:
            entry["status"] = "added"  # New scenario/config: no baseline.
            entry["fresh_ratio"] = round(fresh[key], 4)
        elif key not in fresh:
            entry["status"] = "removed"  # Gone from the bench: informational.
            entry["baseline_ratio"] = round(base[key], 4)
        else:
            delta_pct = (fresh[key] - base[key]) / base[key] * 100.0
            if lower_is_better:
                regressed = delta_pct >= args.warn_pct
            else:
                regressed = delta_pct <= -args.warn_pct
            entry.update(
                status="regressed" if regressed else "ok",
                baseline_ratio=round(base[key], 4),
                fresh_ratio=round(fresh[key], 4),
                delta_pct=round(delta_pct, 2),
            )
            if regressed:
                regressions += 1
                print(
                    f"::warning title=bench ratio regression::"
                    f"{scenario}/{config} @{threads}t: "
                    f"{base[key]:.3f} -> {fresh[key]:.3f} "
                    f"({delta_pct:+.1f}%)"
                )
        comparisons.append(entry)

    summary = {
        "bench": fresh_doc.get("bench", "unknown"),
        "warn_pct": args.warn_pct,
        "lower_is_better": lower_is_better,
        "regressions": regressions,
        "comparisons": comparisons,
    }
    text = json.dumps(summary, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
