#!/usr/bin/env python3
"""Compare a fresh bench_mt_scaling JSON trailer against the committed
baseline (BENCH_mt_scaling.json at the repo root).

Absolute ops/s are machine-bound, so the comparison works on *scenario
ratios* — each config's throughput relative to its scenario's reference
config at the same thread count (sharded/global, partition/coarse,
cache-on/off). Ratios survive runner-hardware churn far better than raw
numbers, which is what lets a committed baseline accumulate a perf
trajectory across PRs.

A ratio that dropped by --warn-pct percent or more counts as a regression:
the script prints a GitHub `::warning::` annotation per hit and a
machine-readable JSON summary (stdout, and --output if given), but always
exits 0 on well-formed input — the gate warns, it does not block, because
two-vCPU hosted runners are noisy. Exit codes: 0 compared, 2 bad input.

Usage:
  bench_compare.py --baseline BENCH_mt_scaling.json --fresh fresh.json \
      [--warn-pct 10] [--output compare.json]
"""

import argparse
import json
import sys

# The denominator config of each known scenario; ratios are
# ops(config)/ops(reference) at equal thread counts. Unknown scenarios
# fall back to their alphabetically first config so new bench scenarios
# never break the comparison.
REFERENCE_CONFIG = {
    "sharding": "global",
    "mixed_class": "coarse_lock",
    "tcache": "cache_off",
}


def load_results(path):
    """Returns {(scenario, config, threads): ops_per_sec}."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        out = {}
        for row in doc["results"]:
            key = (row["scenario"], row["config"], int(row["threads"]))
            out[key] = float(row["ops_per_sec"])
        return out
    except (OSError, ValueError, KeyError, TypeError) as err:
        sys.stderr.write(f"bench_compare: cannot parse {path}: {err}\n")
        sys.exit(2)


def scenario_ratios(results):
    """Returns {(scenario, config, threads): ratio-vs-reference}, skipping
    reference configs themselves and rows whose reference is missing."""
    ratios = {}
    scenarios = {s for (s, _, _) in results}
    for scenario in scenarios:
        configs = sorted({c for (s, c, _) in results if s == scenario})
        reference = REFERENCE_CONFIG.get(scenario, configs[0])
        for (s, config, threads), ops in results.items():
            if s != scenario or config == reference:
                continue
            ref = results.get((scenario, reference, threads))
            if not ref:
                continue
            ratios[(scenario, config, threads)] = ops / ref
    return ratios


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--warn-pct", type=float, default=10.0)
    parser.add_argument("--output")
    args = parser.parse_args()

    base = scenario_ratios(load_results(args.baseline))
    fresh = scenario_ratios(load_results(args.fresh))

    comparisons = []
    regressions = 0
    for key in sorted(base.keys() | fresh.keys()):
        scenario, config, threads = key
        entry = {"scenario": scenario, "config": config, "threads": threads}
        if key not in base:
            entry["status"] = "added"  # New scenario/config: no baseline.
            entry["fresh_ratio"] = round(fresh[key], 4)
        elif key not in fresh:
            entry["status"] = "removed"  # Gone from the bench: informational.
            entry["baseline_ratio"] = round(base[key], 4)
        else:
            delta_pct = (fresh[key] - base[key]) / base[key] * 100.0
            regressed = delta_pct <= -args.warn_pct
            entry.update(
                status="regressed" if regressed else "ok",
                baseline_ratio=round(base[key], 4),
                fresh_ratio=round(fresh[key], 4),
                delta_pct=round(delta_pct, 2),
            )
            if regressed:
                regressions += 1
                print(
                    f"::warning title=bench ratio regression::"
                    f"{scenario}/{config} @{threads}t: "
                    f"{base[key]:.3f} -> {fresh[key]:.3f} "
                    f"({delta_pct:+.1f}%)"
                )
        comparisons.append(entry)

    summary = {
        "bench": "mt_scaling",
        "warn_pct": args.warn_pct,
        "regressions": regressions,
        "comparisons": comparisons,
    }
    text = json.dumps(summary, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
