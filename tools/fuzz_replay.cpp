//===- tools/fuzz_replay.cpp - corpus replayer / bounded fuzz runner ------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The libFuzzer-free shell around the differential fuzz driver
/// (src/fuzz/FuzzDriver.h). Three modes, composable in one invocation:
///
///   fuzz_replay FILE...                 replay saved inputs / corpus files
///   fuzz_replay --dir DIR               replay every file in DIR (sorted)
///   fuzz_replay --random N [--len L] [--gen-seed S]
///                                       run N deterministically generated
///                                       random inputs of up to L bytes
///   fuzz_replay --emit DIR --budget N   corpus refresh: search N random
///                                       inputs, write a minimal set that
///                                       covers every error class and
///                                       configuration axis into DIR
///
/// Failures print the driver's message and (in --random mode) save the
/// offending input next to the cwd (or --save-failures DIR) so it can be
/// replayed and committed. Exit status is nonzero iff any input failed.
/// Every run is a pure function of (inputs, DIEHARD_SEED, --gen-seed).
///
//===----------------------------------------------------------------------===//

#include "fuzz/FuzzDriver.h"
#include "support/Rng.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>

using diehard::Rng;
using diehard::fuzz::FuzzResult;
using diehard::fuzz::NumErrorClasses;

namespace {

struct Totals {
  uint64_t Inputs = 0;
  uint64_t Ops = 0;
  uint64_t ModelAllocs = 0;
  uint64_t FailedAllocs = 0;
  uint64_t Injected[NumErrorClasses] = {};
  uint64_t Failures = 0;
};

/// Coverage bitmask of one result, for --emit's greedy corpus selection.
enum CoverageBit {
  // Bits 0..4: the five error classes, by ErrorClass index.
  BitTcache = 5,
  BitAdaptive = 6,
  BitSweeper = 7,
  BitSweeperOff = 8, // Guarantees a deterministic replay entry.
  BitOverflowOff = 9,
  BitMultiShard = 10,
  BitWorkers = 11,
  BitRandomFill = 12,
  BitLargeObjects = 13,
  BitSaturation = 14,
  BitRemoteFrees = 15,
  // Config-derived only (never from runtime counters): how many pages a
  // run actually returns depends on sweep timing, and a corpus selected
  // on timing-dependent coverage would not replay to the same bits.
  BitPageReturnFree = 16,
  BitPageReturnOff = 17,
  BitMeshing = 18,
  NumCoverageBits = 19
};

uint32_t coverageOf(const FuzzResult &R) {
  uint32_t Bits = 0;
  for (int C = 0; C < NumErrorClasses; ++C)
    if (R.Injected[C] > 0)
      Bits |= 1u << C;
  if (R.Config.ThreadCacheSlots > 0)
    Bits |= 1u << BitTcache;
  if (R.Config.Adaptive)
    Bits |= 1u << BitAdaptive;
  Bits |= 1u << (R.Config.Sweeper ? BitSweeper : BitSweeperOff);
  if (!R.Config.Overflow)
    Bits |= 1u << BitOverflowOff;
  if (R.Config.NumShards > 1)
    Bits |= 1u << BitMultiShard;
  if (R.Config.Workers > 0)
    Bits |= 1u << BitWorkers;
  if (R.Config.RandomFill)
    Bits |= 1u << BitRandomFill;
  if (R.FinalStats.LargeAllocations > 0)
    Bits |= 1u << BitLargeObjects;
  if (R.FailedAllocs > 0)
    Bits |= 1u << BitSaturation;
  if (R.FinalStats.RemoteFrees > 0)
    Bits |= 1u << BitRemoteFrees;
  if (R.Config.PageReturn == diehard::PageReturnPolicy::Free)
    Bits |= 1u << BitPageReturnFree;
  if (R.Config.PageReturn == diehard::PageReturnPolicy::Off)
    Bits |= 1u << BitPageReturnOff;
  if (R.Config.Meshing)
    Bits |= 1u << BitMeshing;
  return Bits;
}

void fold(Totals &T, const FuzzResult &R) {
  ++T.Inputs;
  T.Ops += R.OpsExecuted;
  T.ModelAllocs += R.ModelAllocs;
  T.FailedAllocs += R.FailedAllocs;
  for (int C = 0; C < NumErrorClasses; ++C)
    T.Injected[C] += R.Injected[C];
  if (!R.Ok)
    ++T.Failures;
}

bool readFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (F == nullptr)
    return false;
  std::fseek(F, 0, SEEK_END);
  long Len = std::ftell(F);
  std::fseek(F, 0, SEEK_SET);
  Out.resize(Len > 0 ? static_cast<size_t>(Len) : 0);
  size_t Read = Out.empty() ? 0 : std::fread(Out.data(), 1, Out.size(), F);
  std::fclose(F);
  return Read == Out.size();
}

bool writeFile(const std::string &Path, const std::vector<uint8_t> &Data) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (F == nullptr)
    return false;
  size_t Wrote =
      Data.empty() ? 0 : std::fwrite(Data.data(), 1, Data.size(), F);
  std::fclose(F);
  return Wrote == Data.size();
}

std::vector<std::string> listDir(const std::string &Dir) {
  std::vector<std::string> Names;
  DIR *D = opendir(Dir.c_str());
  if (D == nullptr)
    return Names;
  while (dirent *E = readdir(D)) {
    // Skip dotfiles and the corpus README (FuzzCorpusTest skips it too).
    if (E->d_name[0] == '.' || std::strcmp(E->d_name, "README.md") == 0)
      continue;
    Names.push_back(Dir + "/" + E->d_name);
  }
  closedir(D);
  std::sort(Names.begin(), Names.end()); // Deterministic replay order.
  return Names;
}

/// The deterministic random-input generator shared by --random and
/// --emit: input i of generation seed S is always the same bytes.
std::vector<uint8_t> generateInput(uint64_t GenSeed, uint64_t Index,
                                   size_t MaxLen) {
  Rng R(Rng::deriveStream(GenSeed, Index + 1));
  if (Index % 16 == 7) {
    // Saturation hammer: random byte soup essentially never drives a
    // partition to its 1/M bound (the driver caps live objects and sizes
    // scatter over twelve classes), so every sixteenth input is a crafted
    // storm — strict per-shard bound (overflow off), one shard, the small
    // 8 MB heap, and a run of top-size-class mallocs (16383 bytes). A few
    // dozen of those saturate the 16 KB class and the tail of the run
    // exercises FailedAllocations and the post-saturation recovery paths.
    std::vector<uint8_t> Bytes;
    Bytes.push_back(0x28); // Config: overflow OFF, 8 MB heap, all else off.
    Bytes.push_back(0x00); // One shard, no workers.
    Bytes.push_back(static_cast<uint8_t>(R.next())); // Seed entropy.
    Bytes.push_back(static_cast<uint8_t>(R.next()));
    size_t Ops = 64 + R.nextBounded(64);
    for (size_t I = 0; I < Ops; ++I) {
      Bytes.push_back(0);   // Op: malloc.
      Bytes.push_back(141); // Size: class-boundary mode, 16384 - 1.
      Bytes.push_back(0);
    }
    return Bytes;
  }
  size_t MinLen = 16;
  if (MaxLen < MinLen)
    MaxLen = MinLen;
  size_t Len =
      MinLen + R.nextBounded(static_cast<uint32_t>(MaxLen - MinLen + 1));
  std::vector<uint8_t> Bytes(Len);
  for (size_t I = 0; I < Len; ++I)
    Bytes[I] = static_cast<uint8_t>(R.next());
  return Bytes;
}

void reportFailure(const FuzzResult &R, const std::string &Origin) {
  std::fprintf(stderr, "FAIL %s: %s\n", Origin.c_str(), R.Message.c_str());
  const char *Policy =
      R.Config.PageReturn == diehard::PageReturnPolicy::Free
          ? "free"
          : (R.Config.PageReturn == diehard::PageReturnPolicy::Off
                 ? "off"
                 : "dontneed");
  std::fprintf(stderr,
               "  config: shards=%zu tcache=%zu adapt=%d sweeper=%d/%zums "
               "pagereturn=%s overflow=%d fill=%d workers=%zu heap=%zuMB "
               "seed=%llu\n",
               R.Config.NumShards, R.Config.ThreadCacheSlots,
               R.Config.Adaptive ? 1 : 0, R.Config.Sweeper ? 1 : 0,
               R.Config.SweepIntervalMs, Policy, R.Config.Overflow ? 1 : 0,
               R.Config.RandomFill ? 1 : 0, R.Config.Workers,
               R.Config.HeapSize >> 20,
               static_cast<unsigned long long>(R.Config.Seed));
}

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [FILE...] [--dir DIR] [--random N] [--len L]\n"
      "          [--gen-seed S] [--save-failures DIR]\n"
      "          [--emit DIR --budget N] [--quiet]\n"
      "Replays fuzz inputs through the differential heap checker; see\n"
      "docs/USAGE.md (Fuzzing) for the corpus-refresh recipe.\n",
      Argv0);
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Files;
  std::string EmitDir;
  std::string SaveDir = ".";
  uint64_t RandomCount = 0;
  uint64_t EmitBudget = 2000;
  uint64_t GenSeed = 20260808;
  size_t MaxLen = 512;
  bool Quiet = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (Arg == "--dir") {
      std::vector<std::string> Names = listDir(Next());
      Files.insert(Files.end(), Names.begin(), Names.end());
    } else if (Arg == "--random") {
      RandomCount = std::strtoull(Next(), nullptr, 10);
    } else if (Arg == "--len") {
      MaxLen = std::strtoull(Next(), nullptr, 10);
    } else if (Arg == "--gen-seed") {
      GenSeed = std::strtoull(Next(), nullptr, 10);
    } else if (Arg == "--save-failures") {
      SaveDir = Next();
    } else if (Arg == "--emit") {
      EmitDir = Next();
    } else if (Arg == "--budget") {
      EmitBudget = std::strtoull(Next(), nullptr, 10);
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      usage(Argv[0]);
      return 2;
    } else {
      Files.push_back(Arg);
    }
  }
  if (Files.empty() && RandomCount == 0 && EmitDir.empty()) {
    usage(Argv[0]);
    return 2;
  }

  Totals T;

  // --- replay saved inputs -------------------------------------------------
  for (const std::string &Path : Files) {
    std::vector<uint8_t> Bytes;
    if (!readFile(Path, Bytes)) {
      std::fprintf(stderr, "cannot read %s\n", Path.c_str());
      return 2;
    }
    FuzzResult R = diehard::fuzz::runFuzzSequence(
        Bytes.data(), Bytes.size());
    fold(T, R);
    if (!R.Ok)
      reportFailure(R, Path);
    else if (!Quiet)
      std::printf("ok %s: %llu ops, trace %016llx\n", Path.c_str(),
                  static_cast<unsigned long long>(R.OpsExecuted),
                  static_cast<unsigned long long>(R.TraceHash));
  }

  // --- bounded random sweep ------------------------------------------------
  for (uint64_t I = 0; I < RandomCount; ++I) {
    std::vector<uint8_t> Bytes = generateInput(GenSeed, I, MaxLen);
    FuzzResult R = diehard::fuzz::runFuzzSequence(
        Bytes.data(), Bytes.size());
    fold(T, R);
    if (!R.Ok) {
      char Name[64];
      std::snprintf(Name, sizeof(Name), "fuzz_failure_%llu_%06llu.bin",
                    static_cast<unsigned long long>(GenSeed),
                    static_cast<unsigned long long>(I));
      std::string Path = SaveDir + "/" + Name;
      reportFailure(R, "--random input " + std::to_string(I));
      if (writeFile(Path, Bytes))
        std::fprintf(stderr, "  input saved to %s\n", Path.c_str());
    }
  }

  // --- corpus refresh ------------------------------------------------------
  if (!EmitDir.empty()) {
    ::mkdir(EmitDir.c_str(), 0755);
    uint32_t Covered = 0;
    const uint32_t All = (1u << NumCoverageBits) - 1;
    size_t Kept = 0;
    for (uint64_t I = 0; I < EmitBudget && Covered != All; ++I) {
      std::vector<uint8_t> Bytes = generateInput(GenSeed, I, MaxLen);
      FuzzResult R = diehard::fuzz::runFuzzSequence(
          Bytes.data(), Bytes.size());
      fold(T, R);
      if (!R.Ok) {
        reportFailure(R, "--emit input " + std::to_string(I));
        continue; // A failing input is a finding, not a corpus entry.
      }
      uint32_t Bits = coverageOf(R);
      if ((Bits & ~Covered) == 0)
        continue; // Adds nothing new.
      Covered |= Bits;
      char Name[80];
      std::snprintf(Name, sizeof(Name), "seq_%02zu_gen%llu_%06llu.bin",
                    Kept, static_cast<unsigned long long>(GenSeed),
                    static_cast<unsigned long long>(I));
      if (!writeFile(EmitDir + "/" + Name, Bytes)) {
        std::fprintf(stderr, "cannot write %s/%s\n", EmitDir.c_str(), Name);
        return 2;
      }
      ++Kept;
      if (!Quiet)
        std::printf("kept %s (coverage %05x -> %05x)\n", Name,
                    Bits, Covered);
    }
    std::printf("emit: %zu entries, coverage %05x/%05x%s\n", Kept, Covered,
                All, Covered == All ? "" : " (INCOMPLETE)");
  }

  std::printf("inputs=%llu ops=%llu allocs=%llu refused=%llu failures=%llu\n",
              static_cast<unsigned long long>(T.Inputs),
              static_cast<unsigned long long>(T.Ops),
              static_cast<unsigned long long>(T.ModelAllocs),
              static_cast<unsigned long long>(T.FailedAllocs),
              static_cast<unsigned long long>(T.Failures));
  for (int C = 0; C < NumErrorClasses; ++C)
    std::printf("injected %s=%llu\n", diehard::fuzz::errorClassName(C),
                static_cast<unsigned long long>(T.Injected[C]));
  return T.Failures == 0 ? 0 : 1;
}
