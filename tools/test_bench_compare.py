#!/usr/bin/env python3
"""Unit tests for the bench_compare comparator.

Run directly (python3 tools/test_bench_compare.py) or via ctest as
tools.bench_compare. The tests exercise the pure comparison layer —
reference resolution, ratio math, per-row regression direction — without
touching the CLI or the filesystem.
"""

import unittest

import bench_compare


def doc(rows, **top):
    """Builds a trailer document from (scenario, config, value[, extras])
    tuples plus top-level keys."""
    results = []
    for row in rows:
        entry = {"scenario": row[0], "config": row[1], "value": row[2],
                 "threads": row[3] if len(row) > 3 else 1}
        if len(row) > 4:
            entry.update(row[4])
        results.append(entry)
    return {"bench": "test", "results": results, **top}


class LoadResultsTest(unittest.TestCase):
    def test_accepts_value_and_legacy_ops_per_sec(self):
        results = bench_compare.load_results({"results": [
            {"scenario": "a", "config": "x", "value": 10, "threads": 2},
            {"scenario": "a", "config": "y", "ops_per_sec": 20},
        ]})
        self.assertEqual(results[("a", "x", 2)], (10.0, None))
        self.assertEqual(results[("a", "y", 0)], (20.0, None))

    def test_row_flag_is_preserved(self):
        results = bench_compare.load_results({"results": [
            {"scenario": "a", "config": "x", "value": 1,
             "lower_is_better": True},
        ]})
        self.assertEqual(results[("a", "x", 0)], (1.0, True))

    def test_malformed_row_raises(self):
        with self.assertRaises(ValueError):
            bench_compare.load_results({"results": [{"scenario": "a"}]})


class ReferenceResolutionTest(unittest.TestCase):
    def test_known_scenario_keeps_historical_reference(self):
        self.assertEqual(
            bench_compare.resolve_reference(
                "tcache", {"cache_off", "cache_on"}, "cache_on"),
            "cache_off")

    def test_document_reference_wins_for_unknown_scenario(self):
        self.assertEqual(
            bench_compare.resolve_reference(
                "larson_ops", {"glibc", "shim", "lea"}, "glibc"),
            "glibc")

    def test_absent_document_reference_falls_back_alphabetically(self):
        self.assertEqual(
            bench_compare.resolve_reference(
                "larson_ops", {"shim", "lea"}, "glibc"),
            "lea")

    def test_ratios_use_document_reference(self):
        ratios, _ = bench_compare.scenario_ratios(
            bench_compare.load_results(doc([
                ("larson_ops", "glibc", 100),
                ("larson_ops", "shim", 25),
            ])),
            doc_reference="glibc")
        self.assertEqual(ratios, {("larson_ops", "shim", 1): 0.25})

    def test_zero_reference_row_is_skipped(self):
        ratios, _ = bench_compare.scenario_ratios(
            bench_compare.load_results(doc([
                ("larson_ops", "glibc", 0),
                ("larson_ops", "shim", 25),
            ])),
            doc_reference="glibc")
        self.assertEqual(ratios, {})


class CompareDirectionTest(unittest.TestCase):
    """One gauntlet-style document mixes ops/s rows (higher-better) with
    p99/RSS rows flagged lower_is_better — the per-row flag must flip the
    regression direction row by row."""

    def make(self, base_shim_ops, fresh_shim_ops, base_shim_p99,
             fresh_shim_p99):
        lower = {"lower_is_better": True}
        base = doc([
            ("larson_ops", "glibc", 100), ("larson_ops", "shim",
                                           base_shim_ops),
            ("larson_p99", "glibc", 1000, 1, lower),
            ("larson_p99", "shim", base_shim_p99, 1, lower),
        ], reference_config="glibc")
        fresh = doc([
            ("larson_ops", "glibc", 100), ("larson_ops", "shim",
                                           fresh_shim_ops),
            ("larson_p99", "glibc", 1000, 1, lower),
            ("larson_p99", "shim", fresh_shim_p99, 1, lower),
        ], reference_config="glibc")
        return bench_compare.compare(base, fresh, warn_pct=10.0)

    def entry(self, summary, scenario):
        [entry] = [e for e in summary["comparisons"]
                   if e["scenario"] == scenario]
        return entry

    def test_throughput_drop_regresses_latency_drop_does_not(self):
        summary = self.make(base_shim_ops=50, fresh_shim_ops=40,
                            base_shim_p99=2000, fresh_shim_p99=1500)
        ops = self.entry(summary, "larson_ops")
        p99 = self.entry(summary, "larson_p99")
        self.assertEqual(ops["status"], "regressed")
        self.assertFalse(ops["lower_is_better"])
        self.assertEqual(p99["status"], "ok")  # Lower latency is better.
        self.assertTrue(p99["lower_is_better"])
        self.assertEqual(summary["regressions"], 1)

    def test_latency_rise_regresses_throughput_rise_does_not(self):
        summary = self.make(base_shim_ops=50, fresh_shim_ops=60,
                            base_shim_p99=2000, fresh_shim_p99=2500)
        self.assertEqual(self.entry(summary, "larson_ops")["status"], "ok")
        self.assertEqual(
            self.entry(summary, "larson_p99")["status"], "regressed")
        self.assertEqual(summary["regressions"], 1)

    def test_below_threshold_is_ok_in_both_directions(self):
        summary = self.make(base_shim_ops=50, fresh_shim_ops=48,
                            base_shim_p99=2000, fresh_shim_p99=2100)
        self.assertEqual(summary["regressions"], 0)

    def test_document_level_flag_still_applies_to_unflagged_rows(self):
        base = doc([("rss", "a", 100), ("rss", "b", 100)],
                   lower_is_better=True)
        fresh = doc([("rss", "a", 100), ("rss", "b", 150)],
                    lower_is_better=True)
        summary = bench_compare.compare(base, fresh, warn_pct=10.0)
        [entry] = summary["comparisons"]
        self.assertEqual(entry["status"], "regressed")
        self.assertTrue(entry["lower_is_better"])

    def test_baseline_row_flag_covers_older_fresh_trailers(self):
        # A baseline written with row flags compared against a fresh
        # trailer that lacks them: the baseline's direction applies.
        lower = {"lower_is_better": True}
        base = doc([("p99", "a", 100), ("p99", "b", 100, 1, lower)])
        fresh = doc([("p99", "a", 100), ("p99", "b", 150)])
        summary = bench_compare.compare(base, fresh, warn_pct=10.0)
        [entry] = summary["comparisons"]
        self.assertEqual(entry["status"], "regressed")

    def test_added_and_removed_rows_are_informational(self):
        base = doc([("s", "a", 100), ("s", "b", 50)])
        fresh = doc([("s", "a", 100), ("s", "c", 70)])
        summary = bench_compare.compare(base, fresh, warn_pct=10.0)
        statuses = {e["config"]: e["status"] for e in summary["comparisons"]}
        self.assertEqual(statuses, {"b": "removed", "c": "added"})
        self.assertEqual(summary["regressions"], 0)


if __name__ == "__main__":
    unittest.main()
