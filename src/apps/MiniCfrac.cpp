//===- apps/MiniCfrac.cpp -------------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the cfrac-like continued-fraction workload.
///
//===----------------------------------------------------------------------===//

#include "apps/MiniCfrac.h"

#include "support/Rng.h"

#include <cassert>
#include <cmath>

namespace diehard {

namespace {

/// Integer square root of a 64-bit value.
uint64_t isqrt(uint64_t N) {
  if (N == 0)
    return 0;
  auto Guess = static_cast<uint64_t>(std::sqrt(static_cast<double>(N)));
  // Correct floating-point slop in both directions.
  while (Guess > 0 && Guess * Guess > N)
    --Guess;
  while ((Guess + 1) * (Guess + 1) <= N)
    ++Guess;
  return Guess;
}

} // namespace

std::vector<uint32_t> sqrtContinuedFraction(uint64_t N, int Count) {
  assert(Count > 0 && "need at least one term");
  std::vector<uint32_t> Terms;
  Terms.reserve(static_cast<size_t>(Count));
  uint64_t A0 = isqrt(N);
  Terms.push_back(static_cast<uint32_t>(A0));
  if (A0 * A0 == N) {
    // Perfect square: the expansion is just [a0]; pad deterministically.
    while (Terms.size() < static_cast<size_t>(Count))
      Terms.push_back(static_cast<uint32_t>(A0));
    return Terms;
  }
  // Classical recurrence: m_{k+1} = d_k a_k - m_k,
  // d_{k+1} = (N - m^2) / d, a_{k+1} = floor((a0 + m) / d).
  uint64_t M = 0, D = 1, A = A0;
  while (Terms.size() < static_cast<size_t>(Count)) {
    M = D * A - M;
    D = (N - M * M) / D;
    A = (A0 + M) / D;
    Terms.push_back(static_cast<uint32_t>(A));
  }
  return Terms;
}

Convergent foldConvergent(Allocator &Heap,
                          const std::vector<uint32_t> &Terms) {
  assert(!Terms.empty() && "no terms to fold");
  // p_{-1} = 1, p_0 = a0; q_{-1} = 0, q_0 = 1.
  Bignum PPrev(Heap, 1), P(Heap, Terms[0]);
  Bignum QPrev(Heap, 0), Q(Heap, 1);
  for (size_t K = 1; K < Terms.size(); ++K) {
    // p_k = a_k * p_{k-1} + p_{k-2} — each step churns fresh digit arrays,
    // which is the allocation behaviour this driver exists to produce.
    Bignum NewP(P);
    NewP.multiplySmall(Terms[K]);
    NewP.add(PPrev);
    Bignum NewQ(Q);
    NewQ.multiplySmall(Terms[K]);
    NewQ.add(QPrev);
    PPrev = std::move(P);
    P = std::move(NewP);
    QPrev = std::move(Q);
    Q = std::move(NewQ);
  }
  return Convergent{std::move(P), std::move(Q)};
}

uint64_t runCfracWorkload(Allocator &Heap, int Numbers, int TermsPerNumber,
                          uint64_t Seed) {
  Rng Rand(Seed);
  uint64_t Checksum = 0x9E3779B97F4A7C15ULL;
  for (int I = 0; I < Numbers; ++I) {
    // Non-square 48-bit composites, like CFRAC's candidates.
    uint64_t N = (static_cast<uint64_t>(Rand.next()) << 16) ^ Rand.next();
    N |= 3; // Avoid trivial squares and zero.
    std::vector<uint32_t> Terms = sqrtContinuedFraction(N, TermsPerNumber);
    Convergent C = foldConvergent(Heap, Terms);
    Checksum = Checksum * 1099511628211ULL ^ C.P.digest();
    Checksum = Checksum * 1099511628211ULL ^ C.Q.digest();
  }
  return Checksum;
}

} // namespace diehard
