//===- apps/MiniLindsay.h - hypercube simulator workload --------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature hypercube message simulator with lindsay's profile — and
/// lindsay's bug. The paper notes that lindsay "has an uninitialized read
/// error that DieHard detects and terminates" (Section 7.2.3): its
/// replicated runs disagree because a value read from uninitialized heap
/// memory reaches the output.
///
/// The simulator routes messages between the 2^d nodes of a hypercube
/// along dimension-order paths, allocating a fresh header+payload per hop
/// (lindsay's allocation churn). In Buggy mode, one header field
/// (`Priority`) is read before ever being written — the uninitialized
/// read — and folded into the routing summary. Stand-alone, the program
/// silently computes garbage; under replication, the voter catches it.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_APPS_MINILINDSAY_H
#define DIEHARD_APPS_MINILINDSAY_H

#include "baselines/Allocator.h"

#include <cstdint>

namespace diehard {

/// Configuration for a simulation run.
struct LindsayConfig {
  int Dimensions = 6;     ///< Hypercube dimension d (2^d nodes).
  int Messages = 2000;    ///< Messages injected.
  uint64_t Seed = 0x11D;  ///< Source/destination selection.
  bool BuggyUninitRead = false; ///< Enable lindsay's famous bug.
};

/// Result of a simulation.
struct LindsayResult {
  uint64_t RoutingSummary = 0; ///< Deterministic unless the bug fires.
  uint64_t TotalHops = 0;
  uint64_t MessagesDelivered = 0;
};

/// Runs the simulator with every message buffer drawn from \p Heap.
LindsayResult runLindsay(Allocator &Heap, const LindsayConfig &Config);

} // namespace diehard

#endif // DIEHARD_APPS_MINILINDSAY_H
