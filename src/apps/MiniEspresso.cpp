//===- apps/MiniEspresso.cpp ----------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the espresso-like two-level logic minimizer.
///
//===----------------------------------------------------------------------===//

#include "apps/MiniEspresso.h"

#include "support/Rng.h"

#include <cassert>

namespace diehard {

Cover::Cover(Allocator &Alloc, int NumVars)
    : Heap(Alloc), Variables(NumVars) {
  assert(NumVars >= 1 && NumVars <= 32 && "1..32 variables supported");
}

Cover::~Cover() {
  while (Head != nullptr) {
    CubeNode *Next = Head->Next;
    Heap.deallocate(Head);
    Head = Next;
  }
}

void Cover::addMinterm(uint32_t Minterm) {
  uint64_t Bits = 0;
  for (int V = 0; V < Variables; ++V) {
    uint64_t Pair = (Minterm >> V) & 1 ? 0b10 : 0b01;
    Bits |= Pair << (2 * V);
  }
  addCube(Bits);
}

void Cover::addCube(uint64_t Positional) {
#ifndef NDEBUG
  for (int V = 0; V < Variables; ++V)
    assert(((Positional >> (2 * V)) & 0b11) != 0 &&
           "empty literal makes the cube unsatisfiable");
#endif
  auto *Node = static_cast<CubeNode *>(Heap.allocate(sizeof(CubeNode)));
  assert(Node != nullptr && "cube allocation failed");
  Node->Bits = Positional;
  Node->Next = Head;
  Head = Node;
  ++Count;
}

bool Cover::evaluate(uint32_t Minterm) const {
  uint64_t MintermBits = 0;
  for (int V = 0; V < Variables; ++V) {
    uint64_t Pair = (Minterm >> V) & 1 ? 0b10 : 0b01;
    MintermBits |= Pair << (2 * V);
  }
  for (const CubeNode *N = Head; N != nullptr; N = N->Next)
    if (covers(N->Bits, MintermBits))
      return true;
  return false;
}

bool Cover::tryMerge(uint64_t A, uint64_t B, uint64_t &Merged) const {
  // Merge is legal when the cubes agree on every variable but one, and on
  // that one their literal sets are 01 and 10 (x + !x): the union is a
  // don't-care. More generally, union-per-variable is sound when it
  // differs from both inputs in exactly one variable position (the
  // classic adjacency/consensus step of Quine-McCluskey).
  if (A == B) {
    Merged = A;
    return true;
  }
  uint64_t Diff = A ^ B;
  // Locate the single differing variable (two-bit lane).
  int Lane = -1;
  for (int V = 0; V < Variables; ++V) {
    if ((Diff >> (2 * V)) & 0b11) {
      if (Lane >= 0)
        return false; // Differs in more than one variable.
      Lane = V;
    }
  }
  assert(Lane >= 0 && "A != B must differ somewhere");
  uint64_t ALane = (A >> (2 * Lane)) & 0b11;
  uint64_t BLane = (B >> (2 * Lane)) & 0b11;
  // x + !x = don't-care; also c + dc = dc (containment handles that, but
  // merging here is equally sound).
  uint64_t Union = ALane | BLane;
  if (Union != 0b11)
    return false;
  Merged = (A & ~(uint64_t(0b11) << (2 * Lane))) |
           (uint64_t(0b11) << (2 * Lane));
  return true;
}

void Cover::minimize() {
  bool Changed = true;
  while (Changed) {
    Changed = false;

    // Pass 1: delete every cube covered by another cube (this subsumes
    // duplicate removal).
    for (CubeNode *Keep = Head; Keep != nullptr; Keep = Keep->Next) {
      CubeNode **Link = &Head;
      while (*Link != nullptr) {
        CubeNode *Candidate = *Link;
        if (Candidate != Keep && covers(Keep->Bits, Candidate->Bits)) {
          *Link = Candidate->Next;
          Heap.deallocate(Candidate);
          --Count;
          Changed = true;
          continue;
        }
        Link = &Candidate->Next;
      }
    }

    // Pass 2: merge one distance-1 pair, if any, replacing both cubes by
    // their union. Restart the scan after a merge (the new cube can
    // enable further merges and containments).
    bool MergedOne = false;
    for (CubeNode *A = Head; A != nullptr && !MergedOne; A = A->Next) {
      for (CubeNode *B = A->Next; B != nullptr && !MergedOne; B = B->Next) {
        uint64_t Merged;
        if (!tryMerge(A->Bits, B->Bits, Merged))
          continue;
        // Remove A and B, insert the merged cube.
        CubeNode **Link = &Head;
        while (*Link != nullptr) {
          if (*Link == A || *Link == B) {
            CubeNode *Dead = *Link;
            *Link = Dead->Next;
            Heap.deallocate(Dead);
            --Count;
          } else {
            Link = &(*Link)->Next;
          }
        }
        addCube(Merged);
        MergedOne = true;
        Changed = true;
      }
    }
  }
}

uint64_t Cover::digest() const {
  // Order-independent: combine per-cube hashes commutatively.
  uint64_t Sum = 0, Xor = 0;
  for (const CubeNode *N = Head; N != nullptr; N = N->Next) {
    uint64_t H = N->Bits * 0x9E3779B97F4A7C15ULL;
    H ^= H >> 29;
    Sum += H;
    Xor ^= H;
  }
  return Sum ^ (Xor * 1099511628211ULL) ^ Count;
}

uint64_t runEspressoWorkload(Allocator &Heap, int Functions, int Variables,
                             int MintermsPerFunction, uint64_t Seed) {
  assert(Variables >= 1 && Variables <= 16 &&
         "exhaustive verification needs small domains");
  Rng Rand(Seed);
  uint64_t Checksum = 0xE59E550;
  uint32_t Domain = uint32_t(1) << Variables;
  for (int F = 0; F < Functions; ++F) {
    Cover C(Heap, Variables);
    std::vector<bool> OnSet(Domain, false);
    for (int M = 0; M < MintermsPerFunction; ++M) {
      uint32_t Minterm = Rand.nextBounded(Domain);
      OnSet[Minterm] = true;
      C.addMinterm(Minterm);
    }
    C.minimize();
    // Verify function preservation exhaustively on a sample of functions.
    if (F % 10 == 0) {
      for (uint32_t M = 0; M < Domain; ++M)
        if (C.evaluate(M) != OnSet[M])
          return 0; // Corruption sentinel: minimization changed f.
    }
    Checksum = Checksum * 1099511628211ULL ^ C.digest();
    Checksum ^= C.cubeCount();
  }
  return Checksum;
}

} // namespace diehard
