//===- apps/Bignum.cpp ----------------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the allocator-backed arbitrary-precision integer.
///
//===----------------------------------------------------------------------===//

#include "apps/Bignum.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace diehard {

Bignum::Bignum(Allocator &Alloc) : Heap(&Alloc) {}

Bignum::Bignum(Allocator &Alloc, uint64_t Value) : Heap(&Alloc) {
  if (Value == 0)
    return;
  reserve(2);
  Digits[0] = static_cast<uint32_t>(Value);
  Digits[1] = static_cast<uint32_t>(Value >> 32);
  Count = Digits[1] != 0 ? 2 : 1;
}

Bignum::Bignum(const Bignum &Other) : Heap(Other.Heap) {
  if (Other.Count == 0)
    return;
  reserve(Other.Count);
  std::memcpy(Digits, Other.Digits, Other.Count * sizeof(uint32_t));
  Count = Other.Count;
}

Bignum::Bignum(Bignum &&Other) noexcept
    : Heap(Other.Heap), Digits(Other.Digits), Count(Other.Count),
      Capacity(Other.Capacity) {
  Other.Digits = nullptr;
  Other.Count = 0;
  Other.Capacity = 0;
}

Bignum &Bignum::operator=(const Bignum &Other) {
  if (this == &Other)
    return *this;
  Count = 0;
  if (Other.Count != 0) {
    reserve(Other.Count);
    std::memcpy(Digits, Other.Digits, Other.Count * sizeof(uint32_t));
    Count = Other.Count;
  }
  return *this;
}

Bignum &Bignum::operator=(Bignum &&Other) noexcept {
  if (this == &Other)
    return *this;
  if (Digits != nullptr)
    Heap->deallocate(Digits);
  Heap = Other.Heap;
  Digits = Other.Digits;
  Count = Other.Count;
  Capacity = Other.Capacity;
  Other.Digits = nullptr;
  Other.Count = 0;
  Other.Capacity = 0;
  return *this;
}

Bignum::~Bignum() {
  if (Digits != nullptr)
    Heap->deallocate(Digits);
}

void Bignum::reserve(size_t NeededDigits) {
  if (NeededDigits <= Capacity)
    return;
  size_t NewCapacity = Capacity == 0 ? 4 : Capacity;
  while (NewCapacity < NeededDigits)
    NewCapacity *= 2;
  auto *Fresh =
      static_cast<uint32_t *>(Heap->allocate(NewCapacity * sizeof(uint32_t)));
  assert(Fresh != nullptr && "bignum digit allocation failed");
  if (Count != 0)
    std::memcpy(Fresh, Digits, Count * sizeof(uint32_t));
  if (Digits != nullptr)
    Heap->deallocate(Digits);
  Digits = Fresh;
  Capacity = NewCapacity;
}

void Bignum::trim() {
  while (Count > 0 && Digits[Count - 1] == 0)
    --Count;
}

int Bignum::compare(const Bignum &Other) const {
  if (Count != Other.Count)
    return Count < Other.Count ? -1 : 1;
  for (size_t I = Count; I-- > 0;)
    if (Digits[I] != Other.Digits[I])
      return Digits[I] < Other.Digits[I] ? -1 : 1;
  return 0;
}

void Bignum::add(const Bignum &Other) {
  size_t N = std::max(Count, Other.Count);
  reserve(N + 1);
  uint64_t Carry = 0;
  for (size_t I = 0; I < N; ++I) {
    uint64_t Sum = Carry;
    if (I < Count)
      Sum += Digits[I];
    if (I < Other.Count)
      Sum += Other.Digits[I];
    Digits[I] = static_cast<uint32_t>(Sum);
    Carry = Sum >> 32;
  }
  Count = N;
  if (Carry != 0) {
    Digits[Count] = static_cast<uint32_t>(Carry);
    ++Count;
  }
}

void Bignum::subtract(const Bignum &Other) {
  assert(compare(Other) >= 0 && "subtract would underflow");
  uint64_t Borrow = 0;
  for (size_t I = 0; I < Count; ++I) {
    uint64_t Take = Borrow + (I < Other.Count ? Other.Digits[I] : 0);
    uint64_t Have = Digits[I];
    if (Have >= Take) {
      Digits[I] = static_cast<uint32_t>(Have - Take);
      Borrow = 0;
    } else {
      Digits[I] = static_cast<uint32_t>((uint64_t(1) << 32) + Have - Take);
      Borrow = 1;
    }
  }
  assert(Borrow == 0 && "borrow out of the top digit");
  trim();
}

void Bignum::multiplySmall(uint32_t Small) {
  if (Count == 0)
    return;
  if (Small == 0) {
    Count = 0;
    return;
  }
  reserve(Count + 1);
  uint64_t Carry = 0;
  for (size_t I = 0; I < Count; ++I) {
    uint64_t Product = static_cast<uint64_t>(Digits[I]) * Small + Carry;
    Digits[I] = static_cast<uint32_t>(Product);
    Carry = Product >> 32;
  }
  if (Carry != 0) {
    Digits[Count] = static_cast<uint32_t>(Carry);
    ++Count;
  }
}

uint32_t Bignum::divideSmall(uint32_t Small) {
  assert(Small != 0 && "division by zero");
  uint64_t Remainder = 0;
  for (size_t I = Count; I-- > 0;) {
    uint64_t Current = (Remainder << 32) | Digits[I];
    Digits[I] = static_cast<uint32_t>(Current / Small);
    Remainder = Current % Small;
  }
  trim();
  return static_cast<uint32_t>(Remainder);
}

uint64_t Bignum::low64() const {
  uint64_t Value = Count > 0 ? Digits[0] : 0;
  if (Count > 1)
    Value |= static_cast<uint64_t>(Digits[1]) << 32;
  return Value;
}

std::string Bignum::toDecimal() const {
  if (Count == 0)
    return "0";
  Bignum Scratch(*this);
  std::string Reversed;
  while (!Scratch.isZero())
    Reversed.push_back(
        static_cast<char>('0' + Scratch.divideSmall(10)));
  return std::string(Reversed.rbegin(), Reversed.rend());
}

uint64_t Bignum::digest() const {
  uint64_t Hash = 1469598103934665603ULL;
  for (size_t I = 0; I < Count; ++I) {
    Hash ^= Digits[I];
    Hash *= 1099511628211ULL;
  }
  return Hash;
}

} // namespace diehard
