//===- apps/MiniLindsay.cpp -----------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the lindsay-like hypercube simulator, including its
/// signature uninitialized-read bug.
///
//===----------------------------------------------------------------------===//

#include "apps/MiniLindsay.h"

#include "support/Rng.h"

#include <bit>
#include <cassert>
#include <cstring>

namespace diehard {

namespace {

/// Per-hop message header, allocated from the injected heap. In buggy
/// mode, Priority is never initialized before being read.
struct MessageHop {
  uint32_t Source;
  uint32_t Destination;
  uint32_t CurrentNode;
  uint32_t Priority; ///< The uninitialized-read victim in buggy mode.
  uint32_t PayloadWords;
  uint32_t Payload[]; // Trailing payload.
};

} // namespace

LindsayResult runLindsay(Allocator &Heap, const LindsayConfig &Config) {
  assert(Config.Dimensions >= 1 && Config.Dimensions <= 20 &&
         "unreasonable hypercube dimension");
  LindsayResult Result;
  Rng Rand(Config.Seed);
  uint32_t Nodes = uint32_t(1) << Config.Dimensions;

  for (int M = 0; M < Config.Messages; ++M) {
    uint32_t Source = Rand.nextBounded(Nodes);
    uint32_t Destination = Rand.nextBounded(Nodes);
    uint32_t PayloadWords = 1 + Rand.nextBounded(15);

    uint32_t Node = Source;
    uint64_t PathDigest = 0;
    // Dimension-order routing: correct one bit per hop, allocating a fresh
    // hop record each time (lindsay's per-hop churn).
    int Guard = Config.Dimensions + 1;
    while (true) {
      auto *Hop = static_cast<MessageHop *>(Heap.allocate(
          sizeof(MessageHop) + PayloadWords * sizeof(uint32_t)));
      if (Hop == nullptr)
        return Result; // Out of memory: deliver what we have.
      Hop->Source = Source;
      Hop->Destination = Destination;
      Hop->CurrentNode = Node;
      Hop->PayloadWords = PayloadWords;
      for (uint32_t W = 0; W < PayloadWords; ++W)
        Hop->Payload[W] = (Source << 16) ^ Destination ^ W;
      if (!Config.BuggyUninitRead)
        Hop->Priority = Hop->CurrentNode & 7;
      // else: Priority is read below without ever being written — the
      // uninitialized read the paper caught in lindsay.

      PathDigest = PathDigest * 31 + Hop->CurrentNode;
      PathDigest ^= Hop->Priority; // Garbage in buggy mode.
      for (uint32_t W = 0; W < PayloadWords; ++W)
        PathDigest = PathDigest * 131 + Hop->Payload[W];

      uint32_t Differ = Node ^ Destination;
      Heap.deallocate(Hop);
      ++Result.TotalHops;
      if (Differ == 0)
        break;
      // Flip the lowest differing dimension.
      Node ^= uint32_t(1) << std::countr_zero(Differ);
      if (--Guard < 0) {
        assert(false && "routing failed to converge");
        break;
      }
    }
    ++Result.MessagesDelivered;
    Result.RoutingSummary =
        Result.RoutingSummary * 1099511628211ULL ^ PathDigest;
  }
  return Result;
}

} // namespace diehard
