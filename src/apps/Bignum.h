//===- apps/Bignum.h - allocator-backed big integers ------------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small arbitrary-precision unsigned integer whose digit storage lives
/// in an injected Allocator. This is the substrate for the cfrac-like
/// workload (MiniCfrac): the real cfrac's allocation intensity comes from
/// torrents of short-lived bignum digit arrays, which is exactly what this
/// type produces.
///
/// Representation: little-endian base-2^32 digits, no leading zero digit
/// (zero is Count == 0). Operations are the ones the continued-fraction
/// driver needs: compare, add, multiply-by-small, divide-by-small, and
/// decimal rendering.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_APPS_BIGNUM_H
#define DIEHARD_APPS_BIGNUM_H

#include "baselines/Allocator.h"

#include <cstdint>
#include <string>

namespace diehard {

/// Arbitrary-precision unsigned integer with allocator-backed digits.
class Bignum {
public:
  /// Constructs zero. \p Alloc must outlive the number.
  explicit Bignum(Allocator &Alloc);

  /// Constructs from a 64-bit value.
  Bignum(Allocator &Alloc, uint64_t Value);

  Bignum(const Bignum &Other);
  Bignum(Bignum &&Other) noexcept;
  Bignum &operator=(const Bignum &Other);
  Bignum &operator=(Bignum &&Other) noexcept;
  ~Bignum();

  /// True if the value is zero.
  bool isZero() const { return Count == 0; }

  /// Number of base-2^32 digits.
  size_t digitCount() const { return Count; }

  /// Three-way comparison: negative, zero, or positive as *this <=> Other.
  int compare(const Bignum &Other) const;

  /// *this += Other.
  void add(const Bignum &Other);

  /// *this -= Other; requires *this >= Other.
  void subtract(const Bignum &Other);

  /// *this *= Small.
  void multiplySmall(uint32_t Small);

  /// *this /= Small; \returns the remainder. Requires Small != 0.
  uint32_t divideSmall(uint32_t Small);

  /// The low 64 bits of the value.
  uint64_t low64() const;

  /// Decimal rendering (allocates temporaries from the same heap).
  std::string toDecimal() const;

  /// FNV-style digest of the digits — allocator-independent, used by the
  /// workload checksums.
  uint64_t digest() const;

private:
  void reserve(size_t NeededDigits);
  void trim();

  Allocator *Heap;
  uint32_t *Digits = nullptr;
  size_t Count = 0;
  size_t Capacity = 0;
};

} // namespace diehard

#endif // DIEHARD_APPS_BIGNUM_H
