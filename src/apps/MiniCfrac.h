//===- apps/MiniCfrac.h - continued-fraction workload -----------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A real (if miniature) application with cfrac's allocation profile: the
/// continued-fraction machinery at the heart of the CFRAC factoring
/// algorithm. It expands sqrt(N) as a continued fraction and accumulates
/// the rational convergents p_k / q_k with allocator-backed bignums —
/// torrents of small, short-lived digit arrays, exactly the behaviour that
/// makes cfrac the most allocation-intensive program in the paper's suite.
///
/// Correctness is externally checkable: the convergents of [1; 1, 1, ...]
/// are ratios of Fibonacci numbers, and convergents of sqrt(N) satisfy
/// |p^2 - N q^2| bounded, which the tests verify.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_APPS_MINICFRAC_H
#define DIEHARD_APPS_MINICFRAC_H

#include "apps/Bignum.h"

#include <cstdint>
#include <vector>

namespace diehard {

/// One convergent p/q of a continued fraction.
struct Convergent {
  Bignum P;
  Bignum Q;
};

/// Computes the first \p Count partial quotients of the continued-fraction
/// expansion of sqrt(\p N) (the classical integer-only recurrence). For a
/// perfect square the expansion terminates; the result is padded with the
/// terminating value repeated.
std::vector<uint32_t> sqrtContinuedFraction(uint64_t N, int Count);

/// Folds \p Terms into the final convergent p/q using the standard
/// recurrence p_k = a_k p_{k-1} + p_{k-2} (and likewise q), with all
/// intermediate state allocated from \p Heap.
Convergent foldConvergent(Allocator &Heap,
                          const std::vector<uint32_t> &Terms);

/// The cfrac-like workload driver: expands sqrt of each seed-derived N,
/// folds convergents, and mixes their digests into a checksum that any
/// correct allocator reproduces exactly.
uint64_t runCfracWorkload(Allocator &Heap, int Numbers, int TermsPerNumber,
                          uint64_t Seed);

} // namespace diehard

#endif // DIEHARD_APPS_MINICFRAC_H
