//===- apps/MiniEspresso.h - cube-list logic minimizer ----------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature two-level logic minimizer with espresso's data-structure
/// profile: boolean covers as linked lists of heap-allocated cubes, with
/// heavy list surgery (duplicate removal, containment deletion, merging of
/// distance-1 cube pairs) — the bursty small-object churn that makes
/// espresso a staple of memory-management studies and the paper's
/// fault-injection target (Section 7.3.1).
///
/// Encoding: positional cube notation. Each variable takes two bits,
/// (can-be-0, can-be-1): 01 = positive literal, 10 = negated literal,
/// 11 = don't care. A cube covers a minterm if the minterm's bits are a
/// subset of the cube's bits per variable. Up to 32 variables per cube
/// (one uint64_t).
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_APPS_MINIESPRESSO_H
#define DIEHARD_APPS_MINIESPRESSO_H

#include "baselines/Allocator.h"

#include <cstdint>
#include <vector>

namespace diehard {

/// A boolean cover: a set of cubes over a fixed variable count, with every
/// cube node allocated from the injected allocator.
class Cover {
public:
  /// Creates an empty cover over \p NumVars variables (1..32).
  Cover(Allocator &Alloc, int NumVars);
  Cover(const Cover &) = delete;
  Cover &operator=(const Cover &) = delete;
  ~Cover();

  /// Adds the single-minterm cube for \p Minterm (bit i = value of x_i).
  void addMinterm(uint32_t Minterm);

  /// Adds a raw positional cube. Each variable's two bits must not be 00.
  void addCube(uint64_t Positional);

  /// True if some cube covers \p Minterm.
  bool evaluate(uint32_t Minterm) const;

  /// Minimizes in place: deletes duplicate and contained cubes, and
  /// repeatedly merges distance-1 pairs, until a fixed point. The cover's
  /// boolean function is preserved exactly.
  void minimize();

  /// Number of cubes currently in the cover.
  size_t cubeCount() const { return Count; }

  /// Order-independent digest of the cube set (for allocator-independence
  /// checks).
  uint64_t digest() const;

  int variables() const { return Variables; }

private:
  struct CubeNode {
    uint64_t Bits;
    CubeNode *Next;
  };

  /// True if \p A covers \p B (B's bits are a subset per variable).
  static bool covers(uint64_t A, uint64_t B) { return (B & ~A) == 0; }

  /// If \p A and \p B merge into one cube (identical except one variable,
  /// whose literals are complementary), writes the merge and returns true.
  bool tryMerge(uint64_t A, uint64_t B, uint64_t &Merged) const;

  Allocator &Heap;
  int Variables;
  CubeNode *Head = nullptr;
  size_t Count = 0;
};

/// The espresso-like workload: builds random ON-sets, minimizes them, and
/// folds cube-set digests into a checksum; verifies function preservation
/// on every tenth function. Deterministic given \p Seed.
uint64_t runEspressoWorkload(Allocator &Heap, int Functions, int Variables,
                             int MintermsPerFunction, uint64_t Seed);

} // namespace diehard

#endif // DIEHARD_APPS_MINIESPRESSO_H
