//===- baselines/LeaAllocator.h - boundary-tag freelist malloc --*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch Lea-style allocator standing in for the GNU libc malloc the
/// paper compares against. It uses the classic design whose failure modes
/// DieHard is built to avoid (Sections 4.1 and 8):
///
///  * an 8-byte header ("boundary tag") lives immediately before every
///    object, so a one-byte overflow can corrupt heap metadata;
///  * free chunks carry intrusive next/prev freelist links inside the user
///    area, so writes through dangling pointers corrupt the freelist;
///  * free performs no validation, so double and invalid frees corrupt the
///    heap (typically crashing later, sometimes much later).
///
/// Under correct usage it is a competent segregated-fit allocator with
/// coalescing, which is what the performance comparison needs.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_BASELINES_LEAALLOCATOR_H
#define DIEHARD_BASELINES_LEAALLOCATOR_H

#include "baselines/Allocator.h"
#include "support/MmapRegion.h"

#include <cstddef>
#include <cstdint>

namespace diehard {

/// Boundary-tag, segregated-fit allocator with coalescing (dlmalloc-style).
class LeaAllocator final : public Allocator {
public:
  /// Creates an allocator with an arena of \p ArenaBytes.
  explicit LeaAllocator(size_t ArenaBytes = size_t(512) * 1024 * 1024);

  void *allocate(size_t Size) override;
  void deallocate(void *Ptr) override;
  const char *getName() const override { return "lea-malloc"; }

  /// Usable size of the chunk holding \p Ptr (from its header; garbage if
  /// the header was corrupted — exactly like the real thing).
  size_t getChunkSize(const void *Ptr) const;

  /// Returns true if \p Ptr lies inside the arena.
  bool isInArena(const void *Ptr) const { return Arena.contains(Ptr); }

  /// Walks every boundary tag from the bottom of the arena and verifies the
  /// chain is self-consistent. \returns false if metadata is corrupted.
  /// (Diagnostic only; the allocator itself never checks, faithfully.)
  bool checkHeapIntegrity() const;

  /// Total bytes handed out and not yet freed (by header bookkeeping).
  size_t bytesInUse() const { return InUseBytes; }

private:
  // Chunk layout (all sizes multiples of 16):
  //   [ Header (8 bytes: size | flags) ][ user data ... ]
  // Free chunks instead hold:
  //   [ Header ][ Next ][ Prev ][ ... ][ Footer (copy of size) ]
  // Flag bit 0: this chunk is in use. Flag bit 1: previous chunk in memory
  // is in use (so free never reads the footer of an in-use neighbour).
  struct Chunk {
    size_t SizeAndFlags;
    Chunk *Next; ///< Valid only while free.
    Chunk *Prev; ///< Valid only while free.

    static constexpr size_t InUseFlag = 1;
    static constexpr size_t PrevInUseFlag = 2;
    static constexpr size_t FlagMask = InUseFlag | PrevInUseFlag;

    size_t size() const { return SizeAndFlags & ~FlagMask; }
    bool isInUse() const { return SizeAndFlags & InUseFlag; }
    bool isPrevInUse() const { return SizeAndFlags & PrevInUseFlag; }
  };

  static constexpr size_t HeaderSize = sizeof(size_t);
  static constexpr size_t Alignment = 16;
  static constexpr size_t MinChunkSize = 48; // header+links+footer, aligned.
  static constexpr int NumSmallBins = 64;    // 48, 64, ..., 16-byte spaced.
  static constexpr size_t SmallBinLimit = MinChunkSize +
                                          (NumSmallBins - 1) * Alignment;

  static size_t chunkSizeFor(size_t Request);
  static Chunk *chunkOf(void *Ptr) {
    return reinterpret_cast<Chunk *>(static_cast<char *>(Ptr) - HeaderSize);
  }
  static void *userOf(Chunk *C) {
    return reinterpret_cast<char *>(C) + HeaderSize;
  }

  Chunk *nextInMemory(Chunk *C) const {
    return reinterpret_cast<Chunk *>(reinterpret_cast<char *>(C) + C->size());
  }

  int binIndex(size_t ChunkSize) const;
  void pushBin(Chunk *C);
  void unlinkBin(Chunk *C);
  void writeFooter(Chunk *C);
  void setPrevInUse(Chunk *C, bool InUse);
  Chunk *takeFromBins(size_t Need);
  Chunk *extendWilderness(size_t Need);
  void splitChunk(Chunk *C, size_t Need);

  MmapRegion Arena;
  char *WildernessTop = nullptr; ///< First never-carved byte of the arena.
  char *ArenaEnd = nullptr;
  Chunk *Bins[NumSmallBins] = {};
  Chunk *LargeBin = nullptr;
  Chunk *LastInMemory = nullptr; ///< Highest-addressed carved chunk.
  size_t InUseBytes = 0;
};

} // namespace diehard

#endif // DIEHARD_BASELINES_LEAALLOCATOR_H
