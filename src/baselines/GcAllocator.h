//===- baselines/GcAllocator.h - conservative mark-sweep GC -----*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conservative mark-sweep collector standing in for the Boehm-Demers-
/// Weiser collector in the paper's comparison (Sections 7.2 and 8). It
/// captures the properties the paper relies on:
///
///  * free is a no-op, so invalid frees, double frees, and dangling pointer
///    errors cannot corrupt the heap;
///  * anything reachable from registered root ranges (conservatively
///    scanned, interior pointers included) survives collection;
///  * memory cost is several times malloc/free because unreachable garbage
///    is only reclaimed at collection points.
///
/// Roots are registered explicitly (the workload drivers register their
/// object tables); stack scanning is intentionally out of scope.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_BASELINES_GCALLOCATOR_H
#define DIEHARD_BASELINES_GCALLOCATOR_H

#include "baselines/Allocator.h"
#include "support/MmapRegion.h"

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace diehard {

/// Conservative mark-sweep allocator over registered root ranges.
class GcAllocator final : public Allocator {
public:
  /// Creates a collector with an arena of \p ArenaBytes; a collection is
  /// triggered whenever \p Threshold bytes have been allocated since the
  /// previous collection.
  explicit GcAllocator(size_t ArenaBytes = size_t(512) * 1024 * 1024,
                       size_t Threshold = 8 * 1024 * 1024);

  void *allocate(size_t Size) override;
  /// Deliberate no-op: collectors ignore explicit frees.
  void deallocate(void *Ptr) override;
  const char *getName() const override { return "bdw-gc-sim"; }

  void registerRootRange(void *Base, size_t Len) override;
  void unregisterRootRange(void *Base) override;

  /// Runs a full mark-sweep collection now.
  void collect() override;

  /// Live (marked-reachable at last collect, plus newly allocated) objects.
  size_t liveObjects() const { return Blocks.size(); }

  /// Bytes held by the heap (live + uncollected garbage).
  size_t heapBytes() const { return HeapBytes; }

  /// Number of collections run so far.
  size_t collections() const { return Collections; }

private:
  struct Block {
    size_t Size;  ///< User size in bytes.
    bool Marked;
  };

  static constexpr size_t Alignment = 16;

  /// Finds the block containing \p Candidate (interior pointers allowed);
  /// returns Blocks.end() if it points nowhere inside a live block.
  std::map<uintptr_t, Block>::iterator findBlock(uintptr_t Candidate);

  /// Conservatively scans [\p Base, \p Base + \p Len) for heap pointers and
  /// pushes newly marked blocks onto the work list.
  void scanRange(const char *Base, size_t Len,
                 std::vector<uintptr_t> &WorkList);

  void *takeFromFreeList(size_t Need);

  MmapRegion Arena;
  char *Bump = nullptr;
  char *ArenaEnd = nullptr;

  /// Live blocks keyed by start address.
  std::map<uintptr_t, Block> Blocks;
  /// Free blocks recovered by sweep, bucketed by exact size.
  std::map<size_t, std::vector<uintptr_t>> FreeLists;
  /// Registered conservative root ranges keyed by base address.
  std::map<void *, size_t> Roots;

  size_t HeapBytes = 0;
  size_t AllocatedSinceGc = 0;
  size_t CollectThreshold;
  size_t Collections = 0;
};

} // namespace diehard

#endif // DIEHARD_BASELINES_GCALLOCATOR_H
