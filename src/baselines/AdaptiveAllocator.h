//===- baselines/AdaptiveAllocator.h - facade over AdaptiveHeap -*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adapter presenting the adaptive (dynamically growing) DieHard heap
/// through the uniform Allocator interface.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_BASELINES_ADAPTIVEALLOCATOR_H
#define DIEHARD_BASELINES_ADAPTIVEALLOCATOR_H

#include "baselines/Allocator.h"
#include "core/AdaptiveHeap.h"

namespace diehard {

/// Allocator-interface adapter over an AdaptiveDieHardHeap instance.
class AdaptiveAllocator final : public Allocator {
public:
  explicit AdaptiveAllocator(
      const AdaptiveOptions &Options = AdaptiveOptions())
      : Heap(Options) {}

  void *allocate(size_t Size) override { return Heap.allocate(Size); }
  void deallocate(void *Ptr) override { Heap.deallocate(Ptr); }
  const char *getName() const override { return "diehard-adaptive"; }

  AdaptiveDieHardHeap &heap() { return Heap; }
  const AdaptiveDieHardHeap &heap() const { return Heap; }

private:
  AdaptiveDieHardHeap Heap;
};

} // namespace diehard

#endif // DIEHARD_BASELINES_ADAPTIVEALLOCATOR_H
