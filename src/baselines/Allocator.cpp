//===- baselines/Allocator.cpp --------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the uniform Allocator facade and the system-malloc
/// baseline.
///
//===----------------------------------------------------------------------===//

#include "baselines/Allocator.h"

#include <cstdint>
#include <cstdlib>

namespace diehard {

Allocator::~Allocator() = default;

void Allocator::registerRootRange(void *, size_t) {}
void Allocator::unregisterRootRange(void *) {}
void Allocator::collect() {}
void Allocator::anchor() {}

void *SystemAllocator::allocate(size_t Size) { return std::malloc(Size); }
void SystemAllocator::deallocate(void *Ptr) { std::free(Ptr); }

void *SlowSystemAllocator::allocate(size_t Size) {
  // Simulate the lock-and-search cost profile of a slow system allocator.
  unsigned Acc = static_cast<unsigned>(Size);
  for (int I = 0; I < WorkFactor; ++I)
    Acc = Acc * 1664525u + 1013904223u;
  Sink = Acc;
  return std::malloc(Size);
}

void SlowSystemAllocator::deallocate(void *Ptr) {
  unsigned Acc = static_cast<unsigned>(reinterpret_cast<uintptr_t>(Ptr));
  for (int I = 0; I < WorkFactor; ++I)
    Acc = Acc * 1664525u + 1013904223u;
  Sink = Acc;
  std::free(Ptr);
}

} // namespace diehard
