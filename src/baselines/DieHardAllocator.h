//===- baselines/DieHardAllocator.h - facade over DieHardHeap ---*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adapter presenting a DieHardHeap through the uniform Allocator interface
/// so the workload and fault-injection harnesses can drive it alongside the
/// baselines.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_BASELINES_DIEHARDALLOCATOR_H
#define DIEHARD_BASELINES_DIEHARDALLOCATOR_H

#include "baselines/Allocator.h"
#include "core/DieHardHeap.h"

namespace diehard {

/// Allocator-interface adapter over a DieHardHeap instance.
class DieHardAllocator final : public Allocator {
public:
  explicit DieHardAllocator(const DieHardOptions &Options = DieHardOptions())
      : Heap(Options) {}

  void *allocate(size_t Size) override { return Heap.allocate(Size); }
  void deallocate(void *Ptr) override { Heap.deallocate(Ptr); }
  const char *getName() const override { return "diehard"; }

  /// Direct access to the underlying heap (stats, checked libc, ...).
  DieHardHeap &heap() { return Heap; }
  const DieHardHeap &heap() const { return Heap; }

  /// Per-size-class introspection: the partition serving class \p Class
  /// (fill gauges, probe stats, stream seed). Benches use this to report
  /// per-partition fill alongside the aggregate counters.
  const RandomizedPartition &partition(int Class) const {
    return Heap.partition(Class);
  }

private:
  DieHardHeap Heap;
};

} // namespace diehard

#endif // DIEHARD_BASELINES_DIEHARDALLOCATOR_H
