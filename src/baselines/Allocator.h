//===- baselines/Allocator.h - uniform allocator facade ---------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A uniform allocator interface so workloads, fault injectors, and benches
/// can run unchanged over DieHard, the Lea-style baseline, the conservative
/// GC baseline, and the system allocator — mirroring the paper's evaluation,
/// which compares exactly these memory managers (Section 7).
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_BASELINES_ALLOCATOR_H
#define DIEHARD_BASELINES_ALLOCATOR_H

#include <cstddef>

namespace diehard {

/// Abstract allocator used by the workload and fault-injection harnesses.
class Allocator {
public:
  virtual ~Allocator();

  /// Allocates \p Size bytes; returns nullptr on exhaustion.
  virtual void *allocate(size_t Size) = 0;

  /// Frees \p Ptr. Behaviour on invalid input is allocator-specific: DieHard
  /// ignores it, the Lea baseline corrupts itself, the GC ignores all frees.
  virtual void deallocate(void *Ptr) = 0;

  /// Human-readable name for reports ("malloc", "GC", "DieHard", ...).
  virtual const char *getName() const = 0;

  /// Registers [\p Base, \p Base + \p Len) as a root range for collectors;
  /// a no-op for manual allocators.
  virtual void registerRootRange(void *Base, size_t Len);

  /// Drops a previously registered root range; no-op for manual allocators.
  virtual void unregisterRootRange(void *Base);

  /// Forces a collection, if the allocator is a collector.
  virtual void collect();

private:
  virtual void anchor();
};

/// Adapter over the C library's malloc/free.
class SystemAllocator final : public Allocator {
public:
  void *allocate(size_t Size) override;
  void deallocate(void *Ptr) override;
  const char *getName() const override { return "system-malloc"; }
};

/// A deliberately slower system-allocator stand-in used to reproduce the
/// Figure 5(b) comparison: the paper observes that against the (slow)
/// Windows XP allocator, DieHard's relative overhead disappears. Each
/// operation performs a fixed amount of extra bookkeeping work comparable to
/// a lock-and-search allocator.
class SlowSystemAllocator final : public Allocator {
public:
  /// \p Factor scales the synthetic per-operation bookkeeping cost.
  /// The default is calibrated so the overall allocator cost is a few times
  /// the Lea baseline's, matching the Windows XP / GNU libc gap the paper
  /// describes (Section 7.2.2).
  explicit SlowSystemAllocator(int Factor = 60) : WorkFactor(Factor) {}

  void *allocate(size_t Size) override;
  void deallocate(void *Ptr) override;
  const char *getName() const override { return "slow-system-malloc"; }

private:
  int WorkFactor;
  volatile unsigned Sink = 0; ///< Defeats dead-code elimination.
};

} // namespace diehard

#endif // DIEHARD_BASELINES_ALLOCATOR_H
