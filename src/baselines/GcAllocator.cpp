//===- baselines/GcAllocator.cpp ------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the conservative mark-sweep baseline collector.
///
//===----------------------------------------------------------------------===//

#include "baselines/GcAllocator.h"

#include <cassert>
#include <cstring>

namespace diehard {

GcAllocator::GcAllocator(size_t ArenaBytes, size_t Threshold)
    : CollectThreshold(Threshold) {
  if (!Arena.map(ArenaBytes))
    return;
  Bump = static_cast<char *>(Arena.base());
  ArenaEnd = Bump + Arena.size();
}

void *GcAllocator::takeFromFreeList(size_t Need) {
  auto It = FreeLists.lower_bound(Need);
  // Accept a recycled block of the exact size or up to 2x (the slack is
  // wasted until the block dies again, mirroring BDW's size-class reuse).
  if (It == FreeLists.end() || It->first > 2 * Need || It->second.empty())
    return nullptr;
  uintptr_t Addr = It->second.back();
  It->second.pop_back();
  size_t BlockSize = It->first;
  if (It->second.empty())
    FreeLists.erase(It);
  Blocks.emplace(Addr, Block{BlockSize, false});
  return reinterpret_cast<void *>(Addr);
}

void *GcAllocator::allocate(size_t Size) {
  if (Size == 0)
    Size = 1;
  size_t Need = (Size + Alignment - 1) & ~(Alignment - 1);

  if (AllocatedSinceGc >= CollectThreshold)
    collect();

  if (void *Recycled = takeFromFreeList(Need)) {
    AllocatedSinceGc += Need;
    return Recycled;
  }

  if (Bump == nullptr || Bump + Need > ArenaEnd) {
    // Out of fresh space: collect and retry the free lists once.
    collect();
    if (void *Recycled = takeFromFreeList(Need)) {
      AllocatedSinceGc += Need;
      return Recycled;
    }
    return nullptr;
  }

  char *Ptr = Bump;
  Bump += Need;
  // Bump addresses increase monotonically, so inserting at end() is O(1)
  // amortized — this keeps the allocation fast path competitive.
  Blocks.emplace_hint(Blocks.end(), reinterpret_cast<uintptr_t>(Ptr),
                      Block{Need, false});
  HeapBytes += Need;
  AllocatedSinceGc += Need;
  return Ptr;
}

void GcAllocator::deallocate(void *) {
  // Collectors ignore explicit deallocation; this is what makes double and
  // invalid frees harmless under BDW in Table 1.
}

void GcAllocator::registerRootRange(void *Base, size_t Len) {
  Roots[Base] = Len;
}

void GcAllocator::unregisterRootRange(void *Base) { Roots.erase(Base); }

std::map<uintptr_t, GcAllocator::Block>::iterator
GcAllocator::findBlock(uintptr_t Candidate) {
  if (Candidate < reinterpret_cast<uintptr_t>(Arena.base()) ||
      Candidate >= reinterpret_cast<uintptr_t>(Bump))
    return Blocks.end();
  auto It = Blocks.upper_bound(Candidate);
  if (It == Blocks.begin())
    return Blocks.end();
  --It;
  if (Candidate < It->first + It->second.Size)
    return It;
  return Blocks.end();
}

void GcAllocator::scanRange(const char *Base, size_t Len,
                            std::vector<uintptr_t> &WorkList) {
  // Conservative word-by-word scan: anything that looks like a pointer into
  // a live block (interior pointers included) marks that block.
  const char *End = Base + Len;
  for (const char *P = Base; P + sizeof(uintptr_t) <= End;
       P += sizeof(uintptr_t)) {
    uintptr_t Candidate;
    std::memcpy(&Candidate, P, sizeof(Candidate));
    auto It = findBlock(Candidate);
    if (It == Blocks.end() || It->second.Marked)
      continue;
    It->second.Marked = true;
    WorkList.push_back(It->first);
  }
}

void GcAllocator::collect() {
  ++Collections;
  AllocatedSinceGc = 0;

  for (auto &[Addr, B] : Blocks)
    B.Marked = false;

  // Mark phase: roots first, then transitively through marked objects.
  std::vector<uintptr_t> WorkList;
  for (const auto &[Base, Len] : Roots)
    scanRange(static_cast<const char *>(Base), Len, WorkList);
  while (!WorkList.empty()) {
    uintptr_t Addr = WorkList.back();
    WorkList.pop_back();
    auto It = Blocks.find(Addr);
    assert(It != Blocks.end() && "work list holds only live blocks");
    scanRange(reinterpret_cast<const char *>(Addr), It->second.Size,
              WorkList);
  }

  // Sweep phase: unmarked blocks go to the size-bucketed free lists.
  for (auto It = Blocks.begin(); It != Blocks.end();) {
    if (It->second.Marked) {
      ++It;
      continue;
    }
    FreeLists[It->second.Size].push_back(It->first);
    It = Blocks.erase(It);
  }
}

} // namespace diehard
