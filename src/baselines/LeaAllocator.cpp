//===- baselines/LeaAllocator.cpp -----------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the Lea-style freelist baseline allocator.
///
//===----------------------------------------------------------------------===//

#include "baselines/LeaAllocator.h"

#include <cassert>
#include <cstring>

namespace diehard {

LeaAllocator::LeaAllocator(size_t ArenaBytes) {
  if (!Arena.map(ArenaBytes))
    return;
  // Start carving at base + 8 so chunk headers sit at 8 mod 16 and user
  // pointers (header + 8) are 16-byte aligned, as in dlmalloc.
  WildernessTop = static_cast<char *>(Arena.base()) + HeaderSize;
  ArenaEnd = static_cast<char *>(Arena.base()) + Arena.size();
}

size_t LeaAllocator::chunkSizeFor(size_t Request) {
  size_t Need = (Request + HeaderSize + Alignment - 1) & ~(Alignment - 1);
  return Need < MinChunkSize ? MinChunkSize : Need;
}

int LeaAllocator::binIndex(size_t ChunkSize) const {
  assert(ChunkSize >= MinChunkSize && ChunkSize % Alignment == 0 &&
         "malformed chunk size");
  size_t Index = (ChunkSize - MinChunkSize) / Alignment;
  return Index < NumSmallBins ? static_cast<int>(Index) : -1;
}

void LeaAllocator::writeFooter(Chunk *C) {
  // The footer is a copy of the size at the end of a free chunk; the next
  // chunk's free path reads it to find where this chunk starts.
  auto *Footer = reinterpret_cast<size_t *>(
      reinterpret_cast<char *>(C) + C->size() - sizeof(size_t));
  *Footer = C->size();
}

void LeaAllocator::setPrevInUse(Chunk *C, bool InUse) {
  if (InUse)
    C->SizeAndFlags |= Chunk::PrevInUseFlag;
  else
    C->SizeAndFlags &= ~Chunk::PrevInUseFlag;
}

void LeaAllocator::pushBin(Chunk *C) {
  int Bin = binIndex(C->size());
  Chunk *&Head = Bin >= 0 ? Bins[Bin] : LargeBin;
  C->Next = Head;
  C->Prev = nullptr;
  if (Head != nullptr)
    Head->Prev = C;
  Head = C;
}

void LeaAllocator::unlinkBin(Chunk *C) {
  int Bin = binIndex(C->size());
  Chunk *&Head = Bin >= 0 ? Bins[Bin] : LargeBin;
  if (C->Prev != nullptr)
    C->Prev->Next = C->Next;
  else
    Head = C->Next;
  if (C->Next != nullptr)
    C->Next->Prev = C->Prev;
}

void LeaAllocator::splitChunk(Chunk *C, size_t Need) {
  size_t Rest = C->size() - Need;
  if (Rest < MinChunkSize)
    return; // Too small to split; the caller keeps the slack.
  C->SizeAndFlags = Need | (C->SizeAndFlags & Chunk::FlagMask);
  auto *Remainder = reinterpret_cast<Chunk *>(
      reinterpret_cast<char *>(C) + Need);
  // The remainder's predecessor (C) is about to be in use.
  Remainder->SizeAndFlags = Rest | Chunk::PrevInUseFlag;
  writeFooter(Remainder);
  pushBin(Remainder);
  if (LastInMemory == C)
    LastInMemory = Remainder;
}

LeaAllocator::Chunk *LeaAllocator::takeFromBins(size_t Need) {
  int Bin = binIndex(Need);
  if (Bin >= 0) {
    for (int I = Bin; I < NumSmallBins; ++I) {
      if (Bins[I] == nullptr)
        continue;
      Chunk *C = Bins[I];
      unlinkBin(C);
      return C;
    }
  }
  // First fit in the large bin.
  for (Chunk *C = LargeBin; C != nullptr; C = C->Next) {
    if (C->size() >= Need) {
      unlinkBin(C);
      return C;
    }
  }
  return nullptr;
}

LeaAllocator::Chunk *LeaAllocator::extendWilderness(size_t Need) {
  if (WildernessTop == nullptr || WildernessTop + Need > ArenaEnd)
    return nullptr;
  auto *C = reinterpret_cast<Chunk *>(WildernessTop);
  bool PrevInUse = LastInMemory == nullptr || LastInMemory->isInUse();
  C->SizeAndFlags = Need | (PrevInUse ? Chunk::PrevInUseFlag : 0);
  WildernessTop += Need;
  LastInMemory = C;
  return C;
}

void *LeaAllocator::allocate(size_t Size) {
  if (Size == 0)
    Size = 1;
  size_t Need = chunkSizeFor(Size);

  Chunk *C = takeFromBins(Need);
  if (C != nullptr) {
    splitChunk(C, Need);
  } else {
    C = extendWilderness(Need);
    if (C == nullptr)
      return nullptr;
  }

  C->SizeAndFlags |= Chunk::InUseFlag;
  auto *After = nextInMemory(C);
  if (reinterpret_cast<char *>(After) < WildernessTop)
    setPrevInUse(After, true);
  InUseBytes += C->size();
  return userOf(C);
}

void LeaAllocator::deallocate(void *Ptr) {
  if (Ptr == nullptr)
    return;
  // Faithfully unvalidated: the header is trusted completely. A corrupted
  // header or a double free corrupts the freelists, just like the classic
  // allocators the paper contrasts DieHard with.
  Chunk *C = chunkOf(Ptr);
  InUseBytes -= C->size();
  C->SizeAndFlags &= ~Chunk::InUseFlag;

  // Coalesce with the previous chunk in memory if it is free.
  if (!C->isPrevInUse()) {
    size_t PrevSize =
        *reinterpret_cast<size_t *>(reinterpret_cast<char *>(C) -
                                    sizeof(size_t));
    auto *Prev = reinterpret_cast<Chunk *>(
        reinterpret_cast<char *>(C) - PrevSize);
    unlinkBin(Prev);
    Prev->SizeAndFlags =
        (Prev->size() + C->size()) | (Prev->SizeAndFlags & Chunk::FlagMask &
                                      ~Chunk::InUseFlag);
    if (LastInMemory == C)
      LastInMemory = Prev;
    C = Prev;
  }

  // Coalesce with the next chunk in memory if it is free.
  auto *Next = nextInMemory(C);
  if (reinterpret_cast<char *>(Next) < WildernessTop && !Next->isInUse()) {
    unlinkBin(Next);
    if (LastInMemory == Next)
      LastInMemory = C;
    C->SizeAndFlags += Next->size();
  }

  // Publish the free chunk: footer for backward coalescing, clear the
  // successor's prev-in-use bit, and push onto the matching freelist.
  writeFooter(C);
  auto *After = nextInMemory(C);
  if (reinterpret_cast<char *>(After) < WildernessTop)
    setPrevInUse(After, false);
  pushBin(C);
}

size_t LeaAllocator::getChunkSize(const void *Ptr) const {
  if (Ptr == nullptr)
    return 0;
  const Chunk *C = chunkOf(const_cast<void *>(Ptr));
  return C->size() - HeaderSize;
}

bool LeaAllocator::checkHeapIntegrity() const {
  if (Arena.base() == nullptr)
    return true;
  const char *Cursor = static_cast<const char *>(Arena.base()) + HeaderSize;
  bool PrevWasInUse = true;
  while (Cursor < WildernessTop) {
    const auto *C = reinterpret_cast<const Chunk *>(Cursor);
    size_t Size = C->size();
    if (Size < MinChunkSize || Size % Alignment != 0 ||
        Cursor + Size > WildernessTop)
      return false;
    if (C->isPrevInUse() != PrevWasInUse)
      return false;
    if (!C->isInUse()) {
      const auto *Footer = reinterpret_cast<const size_t *>(
          Cursor + Size - sizeof(size_t));
      if (*Footer != Size)
        return false;
    }
    PrevWasInUse = C->isInUse();
    Cursor += Size;
  }
  return Cursor == WildernessTop;
}

} // namespace diehard
