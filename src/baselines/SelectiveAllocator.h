//===- baselines/SelectiveAllocator.h - per-class protection ----*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's other space-reduction direction (Section 9): "selectively
/// applying the technique to particular size classes". This allocator
/// routes chosen size classes through a randomized DieHard heap and the
/// remaining classes through the compact Lea-style allocator, trading
/// protection for memory on a per-class basis — e.g. protect only the
/// small classes where dangling-pointer masking is strongest (Theorem 2)
/// while large, rarely-corrupted classes stay cheap.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_BASELINES_SELECTIVEALLOCATOR_H
#define DIEHARD_BASELINES_SELECTIVEALLOCATOR_H

#include "baselines/Allocator.h"
#include "baselines/LeaAllocator.h"
#include "core/DieHardHeap.h"

#include <cstdint>

namespace diehard {

/// Hybrid allocator: DieHard for the size classes selected in a 12-bit
/// mask, the Lea baseline for everything else (including large objects if
/// bit-free... large objects always go to DieHard's guarded mmap path).
class SelectiveAllocator final : public Allocator {
public:
  /// \p ClassMask selects protected classes: bit c covers objects of size
  /// class c (8 << c bytes). ~0 protects everything (= plain DieHard);
  /// 0x3F protects the six classes up to 256 bytes.
  SelectiveAllocator(uint32_t ClassMask,
                     const DieHardOptions &Options = DieHardOptions(),
                     size_t FallbackArenaBytes = size_t(512) << 20)
      : Mask(ClassMask), Protected(Options),
        Fallback(FallbackArenaBytes) {}

  void *allocate(size_t Size) override {
    if (!SizeClass::isSmall(Size))
      return Protected.allocate(Size); // Guarded mmap path.
    int C = SizeClass::sizeToClass(Size);
    if (Mask & (uint32_t(1) << C))
      return Protected.allocate(Size);
    return Fallback.allocate(Size);
  }

  void deallocate(void *Ptr) override {
    if (Ptr == nullptr)
      return;
    // Membership decides the owner; DieHard validates its own frees, and
    // anything inside the fallback arena belongs to the Lea allocator.
    if (Protected.isInHeap(Ptr) || Protected.getObjectSize(Ptr) != 0) {
      Protected.deallocate(Ptr);
      return;
    }
    if (Fallback.isInArena(Ptr))
      Fallback.deallocate(Ptr);
    // Foreign pointers are ignored (DieHard semantics win overall).
  }

  const char *getName() const override { return "diehard-selective"; }

  /// The protected randomized heap.
  DieHardHeap &heap() { return Protected; }

  /// The unprotected fallback allocator.
  LeaAllocator &fallback() { return Fallback; }

  /// True if objects of \p Size go to the randomized heap.
  bool isProtected(size_t Size) const {
    return !SizeClass::isSmall(Size) ||
           (Mask & (uint32_t(1) << SizeClass::sizeToClass(Size)));
  }

  /// Fill level of protected class \p Class relative to its 1/M threshold,
  /// in [0, 1] (always 0 for unprotected classes, which never route here).
  /// Lets experiments watch how close each protected region runs to its
  /// bound.
  double protectedFill(int Class) const {
    return Protected.partition(Class).fill();
  }

private:
  uint32_t Mask;
  DieHardHeap Protected;
  LeaAllocator Fallback;
};

} // namespace diehard

#endif // DIEHARD_BASELINES_SELECTIVEALLOCATOR_H
