//===- support/Rng.h - Marsaglia multiply-with-carry RNG --------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fast, high-quality pseudo-random number generator based on Marsaglia's
/// multiply-with-carry algorithm, the generator the DieHard paper uses inside
/// its allocator (Section 4.1). The generator is deliberately tiny so it can
/// be inlined into the allocation fast path.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_SUPPORT_RNG_H
#define DIEHARD_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace diehard {

/// Marsaglia's multiply-with-carry pseudo-random number generator.
///
/// Two 32-bit MWC streams are combined into one 32-bit output per call,
/// following the classic MWC construction posted by Marsaglia (1994). The
/// state is four 32-bit words; the period is about 2^60.
class Rng {
public:
  /// Stream-derivation gamma for the *shard* axis: shard i of a sharded heap
  /// seeds its generator with deriveStream(Seed, i, ShardStreamGamma), so
  /// stream 0 is the base seed verbatim (single-shard configurations stay
  /// bit-identical to an unsharded heap).
  static constexpr uint64_t ShardStreamGamma = 0x9E3779B97F4A7C15ULL;

  /// Stream-derivation gamma for the *size-class* axis. Deliberately a
  /// different odd constant than the shard gamma so that partition c of
  /// shard s never lands on the same stream as partition c' of shard s'
  /// (equal streams would require a multiple of one gamma to equal a
  /// multiple of the other modulo 2^64).
  static constexpr uint64_t ClassStreamGamma = 0xC2B2AE3D27D4EB4FULL;

  /// Derives the seed for decorrelated stream \p Stream of a generator
  /// family rooted at \p Seed. The per-axis \p Gamma keeps orthogonal
  /// families (shards vs. size-class partitions) off each other's streams;
  /// setSeed()'s SplitMix finalizer then turns the arithmetic progression
  /// into unrelated state. Stream 0 returns \p Seed unchanged.
  static constexpr uint64_t deriveStream(uint64_t Seed, uint64_t Stream,
                                         uint64_t Gamma = ShardStreamGamma) {
    return Seed + Stream * Gamma;
  }

  /// Constructs a generator seeded with \p Seed. A zero seed is remapped to a
  /// fixed non-zero constant because an all-zero MWC state is a fixed point.
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ULL) { setSeed(Seed); }

  /// Re-seeds the generator. Splits \p Seed into the two MWC lanes and mixes
  /// it so that nearby seeds produce unrelated streams.
  void setSeed(uint64_t Seed) {
    // SplitMix64-style finalizer to decorrelate adjacent seeds.
    uint64_t Z = Seed + 0x9E3779B97F4A7C15ULL;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    Z = Z ^ (Z >> 31);
    Hi = static_cast<uint32_t>(Z >> 32);
    Lo = static_cast<uint32_t>(Z);
    if (Hi == 0)
      Hi = 0x9068FFFFU;
    if (Lo == 0)
      Lo = 0x464FFFFFU;
  }

  /// Returns the next 32 bits of the stream.
  uint32_t next() {
    // Marsaglia MWC: each lane is x = a*(x&0xffff) + (x>>16); the two lanes
    // are concatenated to yield one 32-bit result.
    Hi = 36969 * (Hi & 0xFFFF) + (Hi >> 16);
    Lo = 18000 * (Lo & 0xFFFF) + (Lo >> 16);
    return (Hi << 16) + (Lo & 0xFFFF);
  }

  /// Returns the next 64 bits of the stream.
  uint64_t next64() {
    uint64_t High = next();
    return (High << 32) | next();
  }

  /// Returns a uniformly distributed value in [0, \p Bound).
  ///
  /// Uses Lemire's multiply-shift reduction, which avoids the modulo bias of
  /// `next() % Bound` for bounds that do not divide 2^32 while staying on the
  /// allocation fast path (one multiply, no division).
  uint32_t nextBounded(uint32_t Bound) {
    assert(Bound > 0 && "bound must be positive");
    return static_cast<uint32_t>(
        (static_cast<uint64_t>(next()) * Bound) >> 32);
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next()) / 4294967296.0;
  }

private:
  uint32_t Hi = 0;
  uint32_t Lo = 0;
};

} // namespace diehard

#endif // DIEHARD_SUPPORT_RNG_H
