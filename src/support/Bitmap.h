//===- support/Bitmap.h - allocation bitmap ---------------------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense bit vector used as the per-size-class allocation bitmap. The paper
/// stores exactly one bit of metadata per heap object, fully segregated from
/// the heap itself (Section 4.1), which is what makes DieHard immune to heap
/// metadata overwrites.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_SUPPORT_BITMAP_H
#define DIEHARD_SUPPORT_BITMAP_H

#include "support/MmapRegion.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>

namespace diehard {

/// Dense bit vector with one bit per heap slot.
///
/// All bits start clear (slot free). The bitmap owns its storage — a private
/// anonymous mapping, far from the managed heap, so heap overflows cannot
/// reach it. Going straight to mmap (rather than the global allocator)
/// matters twice over: fresh pages are demand-zero, so a huge bitmap costs
/// only the pages actually probed, and constructing a heap under the malloc
/// shim does not funnel megabytes of metadata through the shim's bootstrap
/// arena. Move-only, like the mapping it owns.
class Bitmap {
public:
  Bitmap() = default;

  /// Creates a bitmap of \p NumBits bits, all clear.
  explicit Bitmap(size_t NumBits) { reset(NumBits); }

  Bitmap(Bitmap &&Other) noexcept
      : Bits(Other.Bits), Storage(std::move(Other.Storage)) {
    Other.Bits = 0; // Keep size()==0 <=> no storage for the moved-from side.
  }
  Bitmap &operator=(Bitmap &&Other) noexcept {
    if (this != &Other) {
      Bits = Other.Bits;
      Storage = std::move(Other.Storage);
      Other.Bits = 0;
    }
    return *this;
  }

  /// Resizes to \p NumBits bits and clears every bit. On mapping failure
  /// the bitmap is left empty (size() == 0), which callers can detect.
  void reset(size_t NumBits) {
    Bits = NumBits;
    size_t NumWords = (NumBits + BitsPerWord - 1) / BitsPerWord;
    if (NumWords == 0 || !Storage.map(NumWords * sizeof(uint64_t)))
      Bits = 0; // Fresh mappings are demand-zero: all bits start clear.
    // Bitmaps are the hottest always-resident metadata (every allocate,
    // free, and span scan walks them); under DIEHARD_THP, back them with
    // transparent huge pages to cut TLB pressure.
    Storage.adviseHugePages();
  }

  /// Clears every bit without changing the size.
  void clear() {
    if (Storage.base() != nullptr)
      std::memset(Storage.base(), 0, Storage.size());
  }

  /// Returns the number of bits.
  size_t size() const { return Bits; }

  /// Returns true if bit \p Index is set.
  bool test(size_t Index) const {
    assert(Index < Bits && "bitmap index out of range");
    return (words()[Index / BitsPerWord] >> (Index % BitsPerWord)) & 1;
  }

  /// Sets bit \p Index. Returns false if it was already set.
  bool trySet(size_t Index) {
    assert(Index < Bits && "bitmap index out of range");
    uint64_t &Word = words()[Index / BitsPerWord];
    uint64_t Mask = uint64_t(1) << (Index % BitsPerWord);
    if (Word & Mask)
      return false;
    Word |= Mask;
    return true;
  }

  /// Clears bit \p Index. Returns false if it was already clear.
  bool tryClear(size_t Index) {
    assert(Index < Bits && "bitmap index out of range");
    uint64_t &Word = words()[Index / BitsPerWord];
    uint64_t Mask = uint64_t(1) << (Index % BitsPerWord);
    if (!(Word & Mask))
      return false;
    Word &= ~Mask;
    return true;
  }

  /// Returns the number of set bits.
  size_t count() const;

  /// Returns the index of the first clear bit at or after \p From, or
  /// size() if every bit from \p From onward is set. Used as the fallback
  /// linear probe when random probing is unlucky.
  size_t findNextClear(size_t From) const;

  /// Returns the index of the first set bit at or after \p From, or size()
  /// if every bit from \p From onward is clear. Together with
  /// findNextClear this enumerates the maximal free runs the page-return
  /// span scanner releases.
  size_t findNextSet(size_t From) const;

private:
  static constexpr size_t BitsPerWord = 64;

  /// The word array inside the mapping (derived, so default moves stay
  /// correct).
  uint64_t *words() { return static_cast<uint64_t *>(Storage.base()); }
  const uint64_t *words() const {
    return static_cast<const uint64_t *>(Storage.base());
  }

  size_t Bits = 0;
  MmapRegion Storage;
};

} // namespace diehard

#endif // DIEHARD_SUPPORT_BITMAP_H
