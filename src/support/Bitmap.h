//===- support/Bitmap.h - allocation bitmap ---------------------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense bit vector used as the per-size-class allocation bitmap. The paper
/// stores exactly one bit of metadata per heap object, fully segregated from
/// the heap itself (Section 4.1), which is what makes DieHard immune to heap
/// metadata overwrites.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_SUPPORT_BITMAP_H
#define DIEHARD_SUPPORT_BITMAP_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace diehard {

/// Dense bit vector with one bit per heap slot.
///
/// All bits start clear (slot free). The bitmap owns its storage; it lives in
/// ordinary allocator-private memory, far from the managed heap, so heap
/// overflows cannot reach it.
class Bitmap {
public:
  Bitmap() = default;

  /// Creates a bitmap of \p NumBits bits, all clear.
  explicit Bitmap(size_t NumBits) { reset(NumBits); }

  /// Resizes to \p NumBits bits and clears every bit.
  void reset(size_t NumBits) {
    Bits = NumBits;
    Words.assign((NumBits + BitsPerWord - 1) / BitsPerWord, 0);
  }

  /// Clears every bit without changing the size.
  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Returns the number of bits.
  size_t size() const { return Bits; }

  /// Returns true if bit \p Index is set.
  bool test(size_t Index) const {
    assert(Index < Bits && "bitmap index out of range");
    return (Words[Index / BitsPerWord] >> (Index % BitsPerWord)) & 1;
  }

  /// Sets bit \p Index. Returns false if it was already set.
  bool trySet(size_t Index) {
    assert(Index < Bits && "bitmap index out of range");
    uint64_t &Word = Words[Index / BitsPerWord];
    uint64_t Mask = uint64_t(1) << (Index % BitsPerWord);
    if (Word & Mask)
      return false;
    Word |= Mask;
    return true;
  }

  /// Clears bit \p Index. Returns false if it was already clear.
  bool tryClear(size_t Index) {
    assert(Index < Bits && "bitmap index out of range");
    uint64_t &Word = Words[Index / BitsPerWord];
    uint64_t Mask = uint64_t(1) << (Index % BitsPerWord);
    if (!(Word & Mask))
      return false;
    Word &= ~Mask;
    return true;
  }

  /// Returns the number of set bits.
  size_t count() const;

  /// Returns the index of the first clear bit at or after \p From, or
  /// size() if every bit from \p From onward is set. Used as the fallback
  /// linear probe when random probing is unlucky.
  size_t findNextClear(size_t From) const;

private:
  static constexpr size_t BitsPerWord = 64;

  size_t Bits = 0;
  std::vector<uint64_t> Words;
};

} // namespace diehard

#endif // DIEHARD_SUPPORT_BITMAP_H
