//===- support/RealRandomSource.cpp ---------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the /dev/urandom seed source and its time/pid
/// fallback.
///
//===----------------------------------------------------------------------===//

#include "support/RealRandomSource.h"

#include <chrono>
#include <cstdio>

#include <unistd.h>

namespace diehard {

uint64_t realRandomSeed() {
  if (FILE *Dev = std::fopen("/dev/urandom", "rb")) {
    uint64_t Seed = 0;
    size_t Read = std::fread(&Seed, sizeof(Seed), 1, Dev);
    std::fclose(Dev);
    if (Read == 1)
      return Seed;
  }
  // Fallback: mix the monotonic clock with the pid. Not cryptographic, but
  // sufficient to give replicas distinct allocator layouts.
  uint64_t Now = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return Now ^ (static_cast<uint64_t>(::getpid()) << 32);
}

} // namespace diehard
