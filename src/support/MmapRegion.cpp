//===- support/MmapRegion.cpp ---------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the RAII anonymous-mapping wrapper.
///
//===----------------------------------------------------------------------===//

#include "support/MmapRegion.h"

#include <cassert>
#include <cstdint>

#include <sys/mman.h>
#include <unistd.h>

namespace diehard {

MmapRegion::MmapRegion(MmapRegion &&Other) noexcept
    : Base(Other.Base), Size(Other.Size) {
  Other.Base = nullptr;
  Other.Size = 0;
}

MmapRegion &MmapRegion::operator=(MmapRegion &&Other) noexcept {
  if (this == &Other)
    return *this;
  unmap();
  Base = Other.Base;
  Size = Other.Size;
  Other.Base = nullptr;
  Other.Size = 0;
  return *this;
}

MmapRegion::~MmapRegion() { unmap(); }

bool MmapRegion::map(size_t NumBytes) {
  unmap();
  if (NumBytes == 0)
    return false;
  // MAP_NORESERVE keeps huge reservations cheap: pages are committed lazily
  // on first touch, exactly the lazy-initialization behaviour the paper
  // relies on for its M-times-oversized heap.
  void *P = ::mmap(nullptr, NumBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (P == MAP_FAILED)
    return false;
  Base = P;
  Size = NumBytes;
  return true;
}

void MmapRegion::unmap() {
  if (Base != nullptr)
    ::munmap(Base, Size);
  Base = nullptr;
  Size = 0;
}

bool MmapRegion::protectNone(size_t Offset, size_t Len) {
  assert(Base != nullptr && "cannot protect an empty region");
  assert(Offset % pageSize() == 0 && Len % pageSize() == 0 &&
         "guard pages must be page-aligned");
  assert(Offset + Len <= Size && "guard range out of bounds");
  char *Start = static_cast<char *>(Base) + Offset;
  return ::mprotect(Start, Len, PROT_NONE) == 0;
}

size_t MmapRegion::releasePages(void *Ptr, size_t Len) {
  const size_t Page = pageSize();
  auto Begin = reinterpret_cast<uintptr_t>(Ptr);
  uintptr_t First = (Begin + Page - 1) & ~(Page - 1);
  uintptr_t Last = (Begin + Len) & ~(Page - 1);
  if (First >= Last)
    return 0;
  if (::madvise(reinterpret_cast<void *>(First), Last - First,
                MADV_DONTNEED) != 0)
    return 0;
  return Last - First;
}

size_t MmapRegion::pageSize() {
  static const size_t Cached = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  return Cached;
}

} // namespace diehard
