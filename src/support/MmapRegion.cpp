//===- support/MmapRegion.cpp ---------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the RAII anonymous-mapping wrapper.
///
//===----------------------------------------------------------------------===//

#include "support/MmapRegion.h"

#include <atomic>
#include <cassert>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include <sys/mman.h>
#include <unistd.h>

namespace diehard {

MmapRegion::MmapRegion(MmapRegion &&Other) noexcept
    : Base(Other.Base), Size(Other.Size) {
  Other.Base = nullptr;
  Other.Size = 0;
}

MmapRegion &MmapRegion::operator=(MmapRegion &&Other) noexcept {
  if (this == &Other)
    return *this;
  unmap();
  Base = Other.Base;
  Size = Other.Size;
  Other.Base = nullptr;
  Other.Size = 0;
  return *this;
}

MmapRegion::~MmapRegion() { unmap(); }

bool MmapRegion::map(size_t NumBytes) {
  unmap();
  if (NumBytes == 0)
    return false;
  // MAP_NORESERVE keeps huge reservations cheap: pages are committed lazily
  // on first touch, exactly the lazy-initialization behaviour the paper
  // relies on for its M-times-oversized heap.
  void *P = ::mmap(nullptr, NumBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (P == MAP_FAILED)
    return false;
  Base = P;
  Size = NumBytes;
  return true;
}

void MmapRegion::unmap() {
  if (Base != nullptr)
    ::munmap(Base, Size);
  Base = nullptr;
  Size = 0;
}

bool MmapRegion::protectNone(size_t Offset, size_t Len) {
  assert(Base != nullptr && "cannot protect an empty region");
  assert(Offset % pageSize() == 0 && Len % pageSize() == 0 &&
         "guard pages must be page-aligned");
  assert(Offset + Len <= Size && "guard range out of bounds");
  char *Start = static_cast<char *>(Base) + Offset;
  return ::mprotect(Start, Len, PROT_NONE) == 0;
}

namespace {

/// The process page-return policy, resolved lazily from DIEHARD_PAGE_RETURN.
/// -1 = unresolved; otherwise a PageReturnPolicy value. Relaxed atomics: a
/// racing first resolution parses the same environment and stores the same
/// answer.
std::atomic<int> PolicyState{-1};

/// Whether madvise(MADV_FREE) works here: 0 = untried, 1 = works,
/// 2 = refused (pre-4.5 kernel, or no MADV_FREE at compile time) — fall
/// back to MADV_DONTNEED forever after.
std::atomic<int> LazyFreeState{0};

/// DIEHARD_THP: -1 = unresolved, 0 = off, 1 = back metadata mappings with
/// transparent huge pages.
std::atomic<int> ThpState{-1};

} // namespace

PageReturnPolicy MmapRegion::pageReturnPolicy() {
  int State = PolicyState.load(std::memory_order_relaxed);
  if (State < 0) {
    const char *V = std::getenv("DIEHARD_PAGE_RETURN");
    PageReturnPolicy P = PageReturnPolicy::DontNeed;
    if (V != nullptr) {
      if (std::strcmp(V, "free") == 0)
        P = PageReturnPolicy::Free;
      else if (std::strcmp(V, "off") == 0 || std::strcmp(V, "0") == 0)
        P = PageReturnPolicy::Off;
    }
    State = static_cast<int>(P);
    PolicyState.store(State, std::memory_order_relaxed);
  }
  return static_cast<PageReturnPolicy>(State);
}

void MmapRegion::setPageReturnPolicy(PageReturnPolicy Policy) {
  PolicyState.store(static_cast<int>(Policy), std::memory_order_relaxed);
}

bool MmapRegion::lazyFreeWorks() {
  return LazyFreeState.load(std::memory_order_relaxed) == 1;
}

size_t MmapRegion::releasePageRange(void *PageBegin, size_t PageBytes) {
  assert(reinterpret_cast<uintptr_t>(PageBegin) % pageSize() == 0 &&
         PageBytes % pageSize() == 0 && "range must be exactly page-aligned");
  if (PageBytes == 0)
    return 0;
  PageReturnPolicy Policy = pageReturnPolicy();
  if (Policy == PageReturnPolicy::Off)
    return 0;
#ifdef MADV_FREE
  if (Policy == PageReturnPolicy::Free &&
      LazyFreeState.load(std::memory_order_relaxed) != 2) {
    if (::madvise(PageBegin, PageBytes, MADV_FREE) == 0) {
      LazyFreeState.store(1, std::memory_order_relaxed);
      return PageBytes;
    }
    if (errno != EINVAL)
      return 0; // Transient refusal (e.g. locked pages): advise nothing.
    // EINVAL: the kernel predates MADV_FREE. Remember and fall through.
    LazyFreeState.store(2, std::memory_order_relaxed);
  }
#else
  if (Policy == PageReturnPolicy::Free)
    LazyFreeState.store(2, std::memory_order_relaxed);
#endif
  if (::madvise(PageBegin, PageBytes, MADV_DONTNEED) != 0)
    return 0;
  return PageBytes;
}

bool MmapRegion::hugePageMetadata() {
  int State = ThpState.load(std::memory_order_relaxed);
  if (State < 0) {
    const char *V = std::getenv("DIEHARD_THP");
    State = (V != nullptr && V[0] == '1' && V[1] == '\0') ? 1 : 0;
    ThpState.store(State, std::memory_order_relaxed);
  }
  return State == 1;
}

void MmapRegion::setHugePageMetadata(bool On) {
  ThpState.store(On ? 1 : 0, std::memory_order_relaxed);
}

void MmapRegion::adviseHugePages() const {
  if (Base == nullptr || !hugePageMetadata())
    return;
#ifdef MADV_HUGEPAGE
  // Best effort: THP may be disabled system-wide (EINVAL) — the mapping
  // works identically either way, just with 4 KB TLB entries.
  (void)::madvise(Base, Size, MADV_HUGEPAGE);
#endif
}

size_t MmapRegion::pageSize() {
  static const size_t Cached = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  return Cached;
}

} // namespace diehard
