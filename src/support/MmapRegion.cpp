//===- support/MmapRegion.cpp ---------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the RAII anonymous-mapping wrapper.
///
//===----------------------------------------------------------------------===//

#include "support/MmapRegion.h"

#include <atomic>
#include <cassert>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sched.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

namespace diehard {

namespace {

/// MAP_FIXED remap used by meshing. Under TSan this bypasses the mmap
/// interceptor with a raw syscall: the interceptor models any mmap as a
/// fresh write to every word of the range by the calling thread, which
/// would appear to race the page's client accesses. A mesh remap (and its
/// identity-restoring inverse) preserves the page's contents byte for
/// byte — only the backing frame changes — so keeping the pre-remap
/// shadow history is exactly the right model, and real orderings are
/// enforced physically by the write-quiescence guard's page-table update.
void *remapFixed(void *Addr, size_t Len, int Prot, int Flags, int Fd,
                 off_t Off) {
#if defined(__SANITIZE_THREAD__)
  long R = ::syscall(SYS_mmap, Addr, Len, Prot, Flags, Fd, Off);
  return R == -1 ? MAP_FAILED : reinterpret_cast<void *>(R);
#else
  return ::mmap(Addr, Len, Prot, Flags, Fd, Off);
#endif
}

/// Registry of live meshable regions, [Begin, End) per slot (Begin == 0 =
/// free). The SEGV handler needs it to classify *stale* guard faults: a
/// store can fault on the guarded donor page, yet by the time the signal
/// is delivered the mesh has finished and cleared ActiveMeshDonor — the
/// handler must not mistake that for a wild write and chain to the old
/// disposition (under TSan that aborts the process; on a plain build it
/// uninstalls the guard). Inside a meshable region every page is
/// permanently mapped read-write except during a guard window, so any
/// write fault landing in a registered range is guard-induced and
/// transient: returning to retry the store always makes progress.
constexpr size_t MaxMeshableRegions = 64;
/// Slot-claimed-but-not-yet-published sentinel. Region bases are
/// page-aligned, so 1 can never collide with a real Begin.
constexpr uintptr_t ReservedSlot = 1;
struct MeshableRange {
  std::atomic<uintptr_t> Begin{0};
  std::atomic<uintptr_t> End{0};
};
MeshableRange MeshableRegions[MaxMeshableRegions];

/// Claims a registry slot for [Begin, Begin + Len). False when all slots
/// are taken — the caller then refuses the meshable mapping entirely, so
/// an unregistered region (whose stale faults the handler could not
/// classify) can never exist. Two-phase publish: reserve the slot with a
/// sentinel CAS, fill End, then release-store the real Begin — a handler
/// that acquire-loads a real Begin therefore sees a matching End.
bool registerMeshableRegion(void *Begin, size_t Len) {
  auto B = reinterpret_cast<uintptr_t>(Begin);
  for (auto &R : MeshableRegions) {
    uintptr_t Expected = 0;
    if (!R.Begin.compare_exchange_strong(Expected, ReservedSlot,
                                         std::memory_order_relaxed))
      continue;
    R.End.store(B + Len, std::memory_order_relaxed);
    R.Begin.store(B, std::memory_order_release);
    return true;
  }
  return false;
}

void unregisterMeshableRegion(void *Begin) {
  auto B = reinterpret_cast<uintptr_t>(Begin);
  for (auto &R : MeshableRegions) {
    if (R.Begin.load(std::memory_order_relaxed) == B) {
      R.Begin.store(0, std::memory_order_release);
      R.End.store(0, std::memory_order_relaxed);
      return;
    }
  }
}

bool addrInMeshableRegion(uintptr_t Addr) {
  for (const auto &R : MeshableRegions) {
    uintptr_t B = R.Begin.load(std::memory_order_acquire);
    if (B > ReservedSlot && Addr >= B &&
        Addr < R.End.load(std::memory_order_relaxed))
      return true;
  }
  return false;
}

} // namespace

MmapRegion::MmapRegion(MmapRegion &&Other) noexcept
    : Base(Other.Base), Size(Other.Size), Fd(Other.Fd),
      NumPages(Other.NumPages), MeshTarget(Other.MeshTarget),
      FrameRefs(Other.FrameRefs) {
  Other.Base = nullptr;
  Other.Size = 0;
  Other.Fd = -1;
  Other.NumPages = 0;
  Other.MeshTarget = nullptr;
  Other.FrameRefs = nullptr;
}

MmapRegion &MmapRegion::operator=(MmapRegion &&Other) noexcept {
  if (this == &Other)
    return *this;
  unmap();
  Base = Other.Base;
  Size = Other.Size;
  Fd = Other.Fd;
  NumPages = Other.NumPages;
  MeshTarget = Other.MeshTarget;
  FrameRefs = Other.FrameRefs;
  Other.Base = nullptr;
  Other.Size = 0;
  Other.Fd = -1;
  Other.NumPages = 0;
  Other.MeshTarget = nullptr;
  Other.FrameRefs = nullptr;
  return *this;
}

MmapRegion::~MmapRegion() { unmap(); }

bool MmapRegion::map(size_t NumBytes) {
  unmap();
  if (NumBytes == 0)
    return false;
  // MAP_NORESERVE keeps huge reservations cheap: pages are committed lazily
  // on first touch, exactly the lazy-initialization behaviour the paper
  // relies on for its M-times-oversized heap.
  void *P = ::mmap(nullptr, NumBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (P == MAP_FAILED)
    return false;
  Base = P;
  Size = NumBytes;
  return true;
}

bool MmapRegion::mapMeshable(size_t NumBytes) {
  unmap();
  if (NumBytes == 0)
    return false;
  const size_t Page = pageSize();
  size_t Rounded = (NumBytes + Page - 1) & ~(Page - 1);
  int NewFd = ::memfd_create("diehard-mesh", MFD_CLOEXEC);
  if (NewFd < 0)
    return false; // Pre-memfd kernel or seccomp refusal: caller falls back.
  if (::ftruncate(NewFd, static_cast<off_t>(Rounded)) != 0) {
    ::close(NewFd);
    return false;
  }
  // MAP_SHARED through the memfd: untouched pages cost nothing (tmpfs pages
  // materialize on first write), and any page of the file can later be
  // mapped at any virtual page via MAP_FIXED — the remap meshing is built
  // on. MAP_NORESERVE keeps the huge reservation cheap, as for map().
  void *P = ::mmap(nullptr, Rounded, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_NORESERVE, NewFd, 0);
  if (P == MAP_FAILED) {
    ::close(NewFd);
    return false;
  }
  size_t Pages = Rounded / Page;
  void *Tables =
      ::mmap(nullptr, Pages * 2 * sizeof(uint32_t), PROT_READ | PROT_WRITE,
             MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (Tables == MAP_FAILED) {
    ::munmap(P, Rounded);
    ::close(NewFd);
    return false;
  }
  if (!registerMeshableRegion(P, Rounded)) {
    // Registry exhausted: without a registry entry the SEGV handler could
    // not classify this region's stale guard faults, so refuse the
    // meshable mapping outright — the caller falls back to map().
    ::munmap(Tables, Pages * 2 * sizeof(uint32_t));
    ::munmap(P, Rounded);
    ::close(NewFd);
    return false;
  }
  Base = P;
  Size = Rounded;
  Fd = NewFd;
  NumPages = Pages;
  MeshTarget = static_cast<uint32_t *>(Tables);
  FrameRefs = MeshTarget + Pages;
  return true;
}

void MmapRegion::unmap() {
  if (Base != nullptr && meshable())
    unregisterMeshableRegion(Base);
  if (Base != nullptr)
    ::munmap(Base, Size);
  if (MeshTarget != nullptr)
    ::munmap(MeshTarget, NumPages * 2 * sizeof(uint32_t));
  if (Fd >= 0)
    ::close(Fd);
  Base = nullptr;
  Size = 0;
  Fd = -1;
  NumPages = 0;
  MeshTarget = nullptr;
  FrameRefs = nullptr;
}

bool MmapRegion::remapPageTo(size_t VPage, size_t FramePage) {
  assert(meshable() && "remapPageTo needs a mapMeshable region");
  if (VPage >= NumPages || FramePage >= NumPages)
    return false;
  const size_t Page = pageSize();
  char *VAddr = static_cast<char *>(Base) + VPage * Page;
  uint32_t Cur = MeshTarget[VPage];

  if (FramePage == VPage) {
    // Restore the identity mapping (unmesh). Fresh PTEs onto the page's own
    // frame — which was punched when the page meshed away, so the next
    // touch refaults zero unless the caller rebuilt it through a scratch
    // mapping first.
    if (Cur == 0)
      return true; // Already identity.
    if (remapFixed(VAddr, Page, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_FIXED,
                   Fd, static_cast<off_t>(VPage * Page)) == MAP_FAILED)
      return false;
    assert(FrameRefs[Cur - 1] != 0 && "unmesh of an unreferenced frame");
    --FrameRefs[Cur - 1];
    MeshTarget[VPage] = 0;
    return true;
  }

  if (Cur == FramePage + 1)
    return true; // Idempotent: already meshed onto that frame.
  // Strictly pairwise: only an identity page may mesh away, only onto a
  // frame that is itself still identity-mapped and unreferenced. Anything
  // deeper would chain frames and make the refcount story ambiguous.
  if (Cur != 0 || MeshTarget[FramePage] != 0 || FrameRefs[VPage] != 0)
    return false;
  if (remapFixed(VAddr, Page, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_FIXED,
                 Fd, static_cast<off_t>(FramePage * Page)) == MAP_FAILED)
    return false;
  MeshTarget[VPage] = static_cast<uint32_t>(FramePage) + 1;
  ++FrameRefs[FramePage];
  // The donor's own frame is now unreachable from any mapping: punching it
  // out of the backing file IS the meshing reclaim — one physical frame now
  // backs two virtual pages. Failure (exotic filesystem) costs only the
  // reclaim, never correctness, so it is ignored.
#ifdef FALLOC_FL_PUNCH_HOLE
  (void)::fallocate(Fd, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                    static_cast<off_t>(VPage * Page),
                    static_cast<off_t>(Page));
#endif
  return true;
}

void *MmapRegion::mapFrameScratch(size_t FramePage) {
  assert(meshable() && "scratch mappings need a mapMeshable region");
  if (FramePage >= NumPages)
    return nullptr;
  const size_t Page = pageSize();
  void *P = ::mmap(nullptr, Page, PROT_READ | PROT_WRITE, MAP_SHARED, Fd,
                   static_cast<off_t>(FramePage * Page));
  return P == MAP_FAILED ? nullptr : P;
}

void MmapRegion::unmapFrameScratch(void *Scratch) {
  if (Scratch != nullptr)
    ::munmap(Scratch, pageSize());
}

size_t MmapRegion::releasePages(size_t FirstPage, size_t PageCount) {
  const size_t Page = pageSize();
  if (!meshable())
    return releasePageRange(static_cast<char *>(Base) + FirstPage * Page,
                            PageCount * Page);
  if (pageReturnPolicy() == PageReturnPolicy::Off)
    return 0;
  if (FirstPage >= NumPages)
    return 0;
  if (PageCount > NumPages - FirstPage)
    PageCount = NumPages - FirstPage;
  // Shared backing: MADV_DONTNEED only drops PTEs, the frames survive in
  // the page cache — real reclaim is a hole punch, for the Free policy as
  // well (a shared file has no MADV_FREE-style lazy mode). Pages meshed on
  // either side are skipped: a donor's virtual page no longer owns its
  // frame, and a survivor's frame is read through by its sibling — the
  // refcount is exactly what makes this path unable to release it.
  size_t Released = 0;
#ifdef FALLOC_FL_PUNCH_HOLE
  size_t P = FirstPage, End = FirstPage + PageCount;
  while (P < End) {
    while (P < End && pageMeshed(P))
      ++P;
    size_t RunBegin = P;
    while (P < End && !pageMeshed(P))
      ++P;
    if (P == RunBegin)
      continue;
    if (::fallocate(Fd, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                    static_cast<off_t>(RunBegin * Page),
                    static_cast<off_t>((P - RunBegin) * Page)) == 0)
      Released += (P - RunBegin) * Page;
  }
#endif
  return Released;
}

bool MmapRegion::protectNone(size_t Offset, size_t Len) {
  assert(Base != nullptr && "cannot protect an empty region");
  assert(Offset % pageSize() == 0 && Len % pageSize() == 0 &&
         "guard pages must be page-aligned");
  assert(Offset + Len <= Size && "guard range out of bounds");
  char *Start = static_cast<char *>(Base) + Offset;
  return ::mprotect(Start, Len, PROT_NONE) == 0;
}

namespace {

/// The process page-return policy, resolved lazily from DIEHARD_PAGE_RETURN.
/// -1 = unresolved; otherwise a PageReturnPolicy value. Relaxed atomics: a
/// racing first resolution parses the same environment and stores the same
/// answer.
std::atomic<int> PolicyState{-1};

/// Whether madvise(MADV_FREE) works here: 0 = untried, 1 = works,
/// 2 = refused (pre-4.5 kernel, or no MADV_FREE at compile time) — fall
/// back to MADV_DONTNEED forever after.
std::atomic<int> LazyFreeState{0};

/// DIEHARD_THP: -1 = unresolved, 0 = off, 1 = back metadata mappings with
/// transparent huge pages.
std::atomic<int> ThpState{-1};

} // namespace

PageReturnPolicy MmapRegion::pageReturnPolicy() {
  int State = PolicyState.load(std::memory_order_relaxed);
  if (State < 0) {
    const char *V = std::getenv("DIEHARD_PAGE_RETURN");
    PageReturnPolicy P = PageReturnPolicy::DontNeed;
    if (V != nullptr) {
      if (std::strcmp(V, "free") == 0)
        P = PageReturnPolicy::Free;
      else if (std::strcmp(V, "off") == 0 || std::strcmp(V, "0") == 0)
        P = PageReturnPolicy::Off;
    }
    State = static_cast<int>(P);
    PolicyState.store(State, std::memory_order_relaxed);
  }
  return static_cast<PageReturnPolicy>(State);
}

void MmapRegion::setPageReturnPolicy(PageReturnPolicy Policy) {
  PolicyState.store(static_cast<int>(Policy), std::memory_order_relaxed);
}

bool MmapRegion::lazyFreeWorks() {
  return LazyFreeState.load(std::memory_order_relaxed) == 1;
}

size_t MmapRegion::releasePageRange(void *PageBegin, size_t PageBytes) {
  assert(reinterpret_cast<uintptr_t>(PageBegin) % pageSize() == 0 &&
         PageBytes % pageSize() == 0 && "range must be exactly page-aligned");
  if (PageBytes == 0)
    return 0;
  PageReturnPolicy Policy = pageReturnPolicy();
  if (Policy == PageReturnPolicy::Off)
    return 0;
#ifdef MADV_FREE
  if (Policy == PageReturnPolicy::Free &&
      LazyFreeState.load(std::memory_order_relaxed) != 2) {
    if (::madvise(PageBegin, PageBytes, MADV_FREE) == 0) {
      LazyFreeState.store(1, std::memory_order_relaxed);
      return PageBytes;
    }
    if (errno != EINVAL)
      return 0; // Transient refusal (e.g. locked pages): advise nothing.
    // EINVAL: the kernel predates MADV_FREE. Remember and fall through.
    LazyFreeState.store(2, std::memory_order_relaxed);
  }
#else
  if (Policy == PageReturnPolicy::Free)
    LazyFreeState.store(2, std::memory_order_relaxed);
#endif
  if (::madvise(PageBegin, PageBytes, MADV_DONTNEED) != 0)
    return 0;
  return PageBytes;
}

namespace {

/// The page currently write-protected for a mesh copy (0 = none). One mesh
/// at a time process-wide: begin takes it with a CAS, end/abort release it.
/// acquire/release so a faulting writer that observes the cleared guard
/// also observes the remap that made its address writable again.
std::atomic<uintptr_t> ActiveMeshDonor{0};

/// Previous SIGSEGV disposition, chained to for faults that are not mesh
/// writes. Written once, before the handler can fire.
struct sigaction PrevSegvAction;

/// 0 = handler not installed, 1 = installing, 2 = installed.
std::atomic<int> MeshGuardState{0};

/// SIGSEGV handler for the mesh write-quiescence guard. A write into the
/// donor page during the copy lands here: spin until the guard clears (the
/// mesh thread's MAP_FIXED remap has then made the address writable on the
/// survivor's frame) and return, so the kernel retries the faulting store
/// and it lands exactly where the copied object now lives. Anything else
/// chains to the previously installed handler. Async-signal-safe: atomic
/// loads and sched_yield only.
void meshSegvHandler(int Sig, siginfo_t *Info, void *Ctx) {
  auto Addr = reinterpret_cast<uintptr_t>(Info->si_addr);
  const uintptr_t Mask = ~(MmapRegion::pageSize() - 1);
  uintptr_t Donor = ActiveMeshDonor.load(std::memory_order_acquire);
  if (Donor != 0 && (Addr & Mask) == Donor) {
    while (ActiveMeshDonor.load(std::memory_order_acquire) == Donor)
      ::sched_yield();
    return; // Retry the store against the remapped (writable) page.
  }
  // Stale guard fault: the store faulted while the page was guarded, but
  // the mesh finished (and restored writability) before the signal was
  // delivered. The guard no longer matches — or a later mesh already took
  // it for a different page — yet the address is inside a meshable region,
  // where every fault is guard-induced by construction. Retry; the store
  // now lands on the remapped page.
  if (addrInMeshableRegion(Addr))
    return;
  // Not ours: hand off to whoever was installed before us.
  if ((PrevSegvAction.sa_flags & SA_SIGINFO) != 0 &&
      PrevSegvAction.sa_sigaction != nullptr) {
    PrevSegvAction.sa_sigaction(Sig, Info, Ctx);
    return;
  }
  if (PrevSegvAction.sa_handler == SIG_IGN)
    return;
  if (PrevSegvAction.sa_handler != SIG_DFL &&
      PrevSegvAction.sa_handler != nullptr) {
    PrevSegvAction.sa_handler(Sig);
    return;
  }
  // Default disposition: reinstate it and return — the instruction retries,
  // faults again, and the process dies with the stock SIGSEGV report.
  ::sigaction(SIGSEGV, &PrevSegvAction, nullptr);
}

/// Installs the mesh SIGSEGV handler exactly once (first mesh of the
/// process). Racing installers spin on the tri-state.
bool installMeshGuardHandler() {
  int State = MeshGuardState.load(std::memory_order_acquire);
  if (State == 2)
    return true;
  int Expected = 0;
  if (MeshGuardState.compare_exchange_strong(Expected, 1,
                                             std::memory_order_acq_rel)) {
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_sigaction = meshSegvHandler;
    SA.sa_flags = SA_SIGINFO | SA_NODEFER;
    sigemptyset(&SA.sa_mask);
    if (::sigaction(SIGSEGV, &SA, &PrevSegvAction) != 0) {
      MeshGuardState.store(0, std::memory_order_release);
      return false;
    }
    MeshGuardState.store(2, std::memory_order_release);
    return true;
  }
  while (MeshGuardState.load(std::memory_order_acquire) == 1)
    ::sched_yield();
  return MeshGuardState.load(std::memory_order_acquire) == 2;
}

} // namespace

bool MmapRegion::beginMeshGuard(void *DonorPage) {
  if (!installMeshGuardHandler())
    return false;
  auto Addr = reinterpret_cast<uintptr_t>(DonorPage);
  assert(Addr % pageSize() == 0 && "donor must be page-aligned");
  uintptr_t Expected = 0;
  // One mesh at a time: a second partition mid-mesh simply aborts this
  // pair and retries on a later sweep pass.
  if (!ActiveMeshDonor.compare_exchange_strong(Expected, Addr,
                                               std::memory_order_acq_rel))
    return false;
  // Publish the guard BEFORE revoking write access, so every fault taken
  // on this page observes it.
  if (::mprotect(DonorPage, pageSize(), PROT_READ) != 0) {
    ActiveMeshDonor.store(0, std::memory_order_release);
    return false;
  }
  return true;
}

void MmapRegion::endMeshGuard() {
  ActiveMeshDonor.store(0, std::memory_order_release);
}

void MmapRegion::abortMeshGuard(void *DonorPage) {
  (void)::mprotect(DonorPage, pageSize(), PROT_READ | PROT_WRITE);
  ActiveMeshDonor.store(0, std::memory_order_release);
}

bool MmapRegion::hugePageMetadata() {
  int State = ThpState.load(std::memory_order_relaxed);
  if (State < 0) {
    const char *V = std::getenv("DIEHARD_THP");
    State = (V != nullptr && V[0] == '1' && V[1] == '\0') ? 1 : 0;
    ThpState.store(State, std::memory_order_relaxed);
  }
  return State == 1;
}

void MmapRegion::setHugePageMetadata(bool On) {
  ThpState.store(On ? 1 : 0, std::memory_order_relaxed);
}

void MmapRegion::adviseHugePages() const {
  if (Base == nullptr || !hugePageMetadata())
    return;
#ifdef MADV_HUGEPAGE
  // Best effort: THP may be disabled system-wide (EINVAL) — the mapping
  // works identically either way, just with 4 KB TLB entries.
  (void)::madvise(Base, Size, MADV_HUGEPAGE);
#endif
}

size_t MmapRegion::pageSize() {
  static const size_t Cached = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  return Cached;
}

} // namespace diehard
