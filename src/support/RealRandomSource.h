//===- support/RealRandomSource.h - true randomness for seeds ---*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source of true random seeds. The paper seeds each replica's allocator RNG
/// with a truly random number read from /dev/urandom (Section 4.1); this
/// wrapper provides that, with a time/pid fallback when the device is
/// unavailable (e.g. heavily sandboxed environments).
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_SUPPORT_REALRANDOMSOURCE_H
#define DIEHARD_SUPPORT_REALRANDOMSOURCE_H

#include <cstdint>

namespace diehard {

/// Reads 64 bits of entropy from /dev/urandom; falls back to a mix of the
/// monotonic clock and the process id if the device cannot be opened.
uint64_t realRandomSeed();

} // namespace diehard

#endif // DIEHARD_SUPPORT_REALRANDOMSOURCE_H
