//===- support/AddressRangeMap.h - address range -> owner lookup -*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe map from half-open address ranges to small integer owner
/// ids. The sharded heap uses it to recognize live large objects when
/// routing a free/realloc/size query of an arbitrary pointer (shard
/// reservations, being immutable after construction, are routed by a
/// lock-free array instead). Reads vastly outnumber writes, so lookups take
/// a shared lock.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_SUPPORT_ADDRESSRANGEMAP_H
#define DIEHARD_SUPPORT_ADDRESSRANGEMAP_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <shared_mutex>

namespace diehard {

/// Thread-safe registry of disjoint [begin, end) address ranges, each tagged
/// with a 32-bit owner id.
///
/// Ranges must not overlap; this is the caller's responsibility (heap
/// reservations and mmap'd large objects are disjoint by construction).
/// Mutating calls allocate through the global allocator, so a malloc shim
/// must only invoke them while it can absorb re-entrant allocation (see
/// ShardedHeap for the lock ordering that makes this safe).
class AddressRangeMap {
public:
  /// Returned by ownerOf() for addresses no range covers.
  static constexpr uint32_t NoOwner = UINT32_MAX;

  AddressRangeMap() = default;
  AddressRangeMap(const AddressRangeMap &) = delete;
  AddressRangeMap &operator=(const AddressRangeMap &) = delete;

  /// Registers [\p Begin, \p Begin + \p Bytes) as owned by \p Owner.
  /// \p Owner must not be NoOwner and \p Bytes must be nonzero.
  /// \returns false if node storage could not be allocated (the map is
  /// unchanged); never throws, so a malloc shim can call it on an
  /// exhausted heap and still return nullptr to its caller.
  bool insert(const void *Begin, size_t Bytes, uint32_t Owner);

  /// Removes the range that starts exactly at \p Begin. \returns true if a
  /// range was removed.
  bool erase(const void *Begin);

  /// Returns the owner id of the range containing \p Ptr, or NoOwner.
  uint32_t ownerOf(const void *Ptr) const;

  /// Number of registered ranges.
  size_t size() const;

private:
  struct Range {
    uintptr_t End;
    uint32_t Owner;
  };

  mutable std::shared_mutex Lock;
  /// Keyed by range begin; ordered so a lookup is one upper_bound probe.
  std::map<uintptr_t, Range> Ranges;
};

} // namespace diehard

#endif // DIEHARD_SUPPORT_ADDRESSRANGEMAP_H
