//===- support/MmapRegion.h - RAII anonymous mapping ------------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII wrapper around an anonymous mmap. DieHard obtains all heap memory
/// from the system with mmap (Section 4.1); reserved-but-untouched pages cost
/// no physical memory, which is what makes the M-times-larger heap practical
/// ("memory that is reserved by DieHard but not used does not consume any
/// virtual memory").
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_SUPPORT_MMAPREGION_H
#define DIEHARD_SUPPORT_MMAPREGION_H

#include <cstddef>

namespace diehard {

/// Owns one anonymous, demand-zero memory mapping.
class MmapRegion {
public:
  MmapRegion() = default;

  /// Maps \p NumBytes of anonymous read/write memory. On failure the region
  /// is empty (base() == nullptr).
  explicit MmapRegion(size_t NumBytes) { map(NumBytes); }

  MmapRegion(const MmapRegion &) = delete;
  MmapRegion &operator=(const MmapRegion &) = delete;

  MmapRegion(MmapRegion &&Other) noexcept;
  MmapRegion &operator=(MmapRegion &&Other) noexcept;

  ~MmapRegion();

  /// Maps \p NumBytes, releasing any previous mapping first.
  /// \returns true on success.
  bool map(size_t NumBytes);

  /// Releases the mapping (idempotent).
  void unmap();

  /// Returns the base address, or nullptr if empty.
  void *base() const { return Base; }

  /// Returns the size in bytes (0 if empty).
  size_t size() const { return Size; }

  /// Returns true if \p Ptr points inside the mapping.
  bool contains(const void *Ptr) const {
    const char *P = static_cast<const char *>(Ptr);
    const char *B = static_cast<const char *>(Base);
    return Base != nullptr && P >= B && P < B + Size;
  }

  /// Removes all access rights from [\p Offset, \p Offset + \p Len), turning
  /// those pages into guard pages. Offset and Len must be page-aligned.
  /// \returns true on success.
  bool protectNone(size_t Offset, size_t Len);

  /// Returns the physical pages fully contained in [\p Ptr, \p Ptr + \p Len)
  /// to the OS with madvise(MADV_DONTNEED): the virtual range stays mapped
  /// and demand-zero, only the resident pages are dropped. The range is
  /// clipped inward to page boundaries, so callers may pass arbitrary object
  /// ranges. \returns the number of bytes released (0 when no full page fits
  /// in the range or the kernel refused the advice).
  static size_t releasePages(void *Ptr, size_t Len);

  /// Returns the system page size.
  static size_t pageSize();

private:
  void *Base = nullptr;
  size_t Size = 0;
};

} // namespace diehard

#endif // DIEHARD_SUPPORT_MMAPREGION_H
