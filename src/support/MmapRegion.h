//===- support/MmapRegion.h - RAII anonymous mapping ------------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII wrapper around an anonymous mmap. DieHard obtains all heap memory
/// from the system with mmap (Section 4.1); reserved-but-untouched pages cost
/// no physical memory, which is what makes the M-times-larger heap practical
/// ("memory that is reserved by DieHard but not used does not consume any
/// virtual memory").
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_SUPPORT_MMAPREGION_H
#define DIEHARD_SUPPORT_MMAPREGION_H

#include <cstddef>
#include <cstdint>

namespace diehard {

/// How releasePageRange() hands resident pages back to the OS. Resolved
/// once per process from DIEHARD_PAGE_RETURN (overridable by benches and
/// tests through setPageReturnPolicy).
enum class PageReturnPolicy {
  /// madvise(MADV_DONTNEED): pages drop out of the resident set
  /// immediately and refault demand-zero. The default — RSS falls the
  /// moment the advice lands, which keeps footprint measurements honest.
  DontNeed,
  /// madvise(MADV_FREE) where the kernel supports it (runtime-detected;
  /// falls back to MADV_DONTNEED): pages become reclaimable but stay
  /// resident until memory pressure, and a write before reclaim cancels
  /// the free — cheaper refaults on churny workloads, lazier RSS.
  Free,
  /// Never release pages (the pre-partial-return behaviour).
  Off,
};

/// Owns one anonymous, demand-zero memory mapping.
class MmapRegion {
public:
  MmapRegion() = default;

  /// Maps \p NumBytes of anonymous read/write memory. On failure the region
  /// is empty (base() == nullptr).
  explicit MmapRegion(size_t NumBytes) { map(NumBytes); }

  MmapRegion(const MmapRegion &) = delete;
  MmapRegion &operator=(const MmapRegion &) = delete;

  MmapRegion(MmapRegion &&Other) noexcept;
  MmapRegion &operator=(MmapRegion &&Other) noexcept;

  ~MmapRegion();

  /// Maps \p NumBytes, releasing any previous mapping first.
  /// \returns true on success.
  bool map(size_t NumBytes);

  /// Maps \p NumBytes of *meshable* memory: a memfd-backed MAP_SHARED
  /// mapping whose virtual pages can individually be remapped onto each
  /// other's physical frames (remapPageTo), the backing mode page meshing
  /// needs. Behaves like map() otherwise — demand-zero, read/write,
  /// MAP_NORESERVE. Allocates the per-frame bookkeeping tables (mesh
  /// targets + frame refcounts). \returns false (leaving the region empty)
  /// when memfd_create or any mapping fails, so callers can fall back to a
  /// private mapping with meshing disabled.
  bool mapMeshable(size_t NumBytes);

  /// True if this region was created with mapMeshable().
  bool meshable() const { return Fd >= 0; }

  /// Number of whole pages in the mapping (0 for a non-meshable region —
  /// only meshable regions carry per-page tables).
  size_t numPages() const { return NumPages; }

  /// Meshable regions only: remaps virtual page \p VPage onto physical
  /// frame \p FramePage via mmap(MAP_FIXED) of the shared backing, so both
  /// virtual pages read and write the same frame. The donor's own frame is
  /// punched out of the backing file (the actual RSS reclaim) once nothing
  /// references it. \p FramePage == \p VPage restores the identity mapping
  /// (unmesh), dropping the frame reference; a fresh touch of the restored
  /// page refaults zero. Idempotent: remapping a page onto its current
  /// target succeeds without a syscall. A page may only be remapped from
  /// its identity state (strictly pairwise meshing), and never onto a frame
  /// whose own virtual page has been remapped away. Callers serialize
  /// per-page (the partition lock); \returns false when the kernel refuses
  /// or the request violates the pairing rules.
  bool remapPageTo(size_t VPage, size_t FramePage);

  /// Meshable regions only: the frame \p VPage's virtual page currently
  /// maps to (== \p VPage for an unmeshed page).
  size_t meshTargetOf(size_t VPage) const {
    uint32_t T = MeshTarget[VPage];
    return T == 0 ? VPage : static_cast<size_t>(T) - 1;
  }

  /// Meshable regions only: how many *other* virtual pages are remapped
  /// onto frame \p FramePage. A frame with references must never be
  /// released — a meshed sibling still reads through it.
  uint32_t frameRefs(size_t FramePage) const { return FrameRefs[FramePage]; }

  /// Meshable regions only: true when page \p Page participates in a mesh
  /// on either side (its virtual page is remapped away, or its frame hosts
  /// a remapped sibling). Such pages are exempt from page return.
  bool pageMeshed(size_t Page) const {
    return meshable() && (MeshTarget[Page] != 0 || FrameRefs[Page] != 0);
  }

  /// Meshable regions only: maps frame \p FramePage a second time at a
  /// kernel-chosen address (read/write, shared). The unmesh path uses this
  /// to rebuild a donor's own frame while the donor's virtual page still
  /// reads the survivor's. Unmap with unmapFrameScratch(). \returns nullptr
  /// on failure.
  void *mapFrameScratch(size_t FramePage);

  /// Releases a scratch mapping obtained from mapFrameScratch().
  static void unmapFrameScratch(void *Scratch);

  /// Returns the physical memory behind pages [\p FirstPage, \p FirstPage +
  /// \p PageCount) to the OS under the process page-return policy, like
  /// releasePageRange but aware of this region's backing mode: private
  /// regions take the madvise path; meshable regions punch holes in the
  /// backing file (MADV_DONTNEED cannot evict a shared file's page-cache
  /// frames — both policies reclaim eagerly, there is no lazy mode) and
  /// skip any page participating in a mesh, so a survivor's frame is never
  /// pulled out from under its sibling. \returns the number of bytes
  /// actually released.
  size_t releasePages(size_t FirstPage, size_t PageCount);

  /// Write-quiescence guard for a mesh copy: marks the page at \p DonorPage
  /// as the process's active mesh donor and downgrades it to PROT_READ, so
  /// a concurrent user write faults into a lazily-installed SIGSEGV handler
  /// that spins until endMeshGuard() and then retries — by which time the
  /// donor's virtual page has been remapped read/write onto the survivor's
  /// frame, so the write lands exactly where the copied object now lives.
  /// No lost writes, no torn copies, no crash. One guard may be active
  /// process-wide at a time; \returns false (guard not taken) when another
  /// mesh is in flight or mprotect fails — callers abort that mesh and try
  /// again on a later pass.
  static bool beginMeshGuard(void *DonorPage);

  /// Releases the mesh guard after the remap made \p DonorPage writable
  /// again (MAP_FIXED installs fresh PROT_READ|PROT_WRITE PTEs, so no
  /// mprotect is needed on this path).
  static void endMeshGuard();

  /// Abandons a mesh mid-copy: restores PROT_READ|PROT_WRITE on
  /// \p DonorPage (which was never remapped) and releases the guard.
  static void abortMeshGuard(void *DonorPage);

  /// Releases the mapping (idempotent).
  void unmap();

  /// Returns the base address, or nullptr if empty.
  void *base() const { return Base; }

  /// Returns the size in bytes (0 if empty).
  size_t size() const { return Size; }

  /// Returns true if \p Ptr points inside the mapping.
  bool contains(const void *Ptr) const {
    const char *P = static_cast<const char *>(Ptr);
    const char *B = static_cast<const char *>(Base);
    return Base != nullptr && P >= B && P < B + Size;
  }

  /// Removes all access rights from [\p Offset, \p Offset + \p Len), turning
  /// those pages into guard pages. Offset and Len must be page-aligned.
  /// \returns true on success.
  bool protectNone(size_t Offset, size_t Len);

  /// Returns the exactly page-aligned range [\p PageBegin, \p PageBegin +
  /// \p PageBytes) to the OS under the process page-return policy: the
  /// virtual range stays mapped, only its physical pages are handed back
  /// (immediately with MADV_DONTNEED, lazily with MADV_FREE). \returns the
  /// number of bytes the advice covered — 0 when the policy is Off or the
  /// kernel refused — so callers only account pages that actually left the
  /// committed set.
  static size_t releasePageRange(void *PageBegin, size_t PageBytes);

  /// The process page-return policy. First call resolves
  /// DIEHARD_PAGE_RETURN ("dontneed" | "free" | "off"; default dontneed);
  /// later calls return the cached value.
  static PageReturnPolicy pageReturnPolicy();

  /// Overrides the page-return policy (benches and tests; takes effect for
  /// subsequent releasePageRange calls process-wide).
  static void setPageReturnPolicy(PageReturnPolicy Policy);

  /// True once a MADV_FREE advice has been observed to work in this
  /// process; meaningful after the first releasePageRange under the Free
  /// policy (benches report which mode actually ran).
  static bool lazyFreeWorks();

  /// Whether always-resident metadata regions should be backed by
  /// transparent huge pages (MADV_HUGEPAGE). First call resolves
  /// DIEHARD_THP ("1" enables; default off).
  static bool hugePageMetadata();

  /// Overrides the metadata-THP switch (tests; affects mappings created
  /// afterwards).
  static void setHugePageMetadata(bool On);

  /// Advises the kernel to back this mapping with transparent huge pages,
  /// if hugePageMetadata() is on. Failure is ignored — THP is a TLB
  /// optimization, never a correctness requirement.
  void adviseHugePages() const;

  /// Returns the system page size.
  static size_t pageSize();

private:
  void *Base = nullptr;
  size_t Size = 0;

  // --- Meshable backing (mapMeshable) --------------------------------------
  // Fd is the memfd the shared mapping is built on (-1 = private region).
  // MeshTarget has one word per page: 0 = identity, else frame index + 1.
  // FrameRefs has one word per page: the number of OTHER virtual pages
  // currently remapped onto that frame. Both live in one anonymous
  // demand-zero side mapping owned by the region. Entries are only read
  // and written under the lock of the partition owning that page (pages of
  // different partitions never pair), so plain words suffice.
  int Fd = -1;
  size_t NumPages = 0;
  uint32_t *MeshTarget = nullptr;
  uint32_t *FrameRefs = nullptr;
};

} // namespace diehard

#endif // DIEHARD_SUPPORT_MMAPREGION_H
