//===- support/MmapRegion.h - RAII anonymous mapping ------------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII wrapper around an anonymous mmap. DieHard obtains all heap memory
/// from the system with mmap (Section 4.1); reserved-but-untouched pages cost
/// no physical memory, which is what makes the M-times-larger heap practical
/// ("memory that is reserved by DieHard but not used does not consume any
/// virtual memory").
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_SUPPORT_MMAPREGION_H
#define DIEHARD_SUPPORT_MMAPREGION_H

#include <cstddef>

namespace diehard {

/// How releasePageRange() hands resident pages back to the OS. Resolved
/// once per process from DIEHARD_PAGE_RETURN (overridable by benches and
/// tests through setPageReturnPolicy).
enum class PageReturnPolicy {
  /// madvise(MADV_DONTNEED): pages drop out of the resident set
  /// immediately and refault demand-zero. The default — RSS falls the
  /// moment the advice lands, which keeps footprint measurements honest.
  DontNeed,
  /// madvise(MADV_FREE) where the kernel supports it (runtime-detected;
  /// falls back to MADV_DONTNEED): pages become reclaimable but stay
  /// resident until memory pressure, and a write before reclaim cancels
  /// the free — cheaper refaults on churny workloads, lazier RSS.
  Free,
  /// Never release pages (the pre-partial-return behaviour).
  Off,
};

/// Owns one anonymous, demand-zero memory mapping.
class MmapRegion {
public:
  MmapRegion() = default;

  /// Maps \p NumBytes of anonymous read/write memory. On failure the region
  /// is empty (base() == nullptr).
  explicit MmapRegion(size_t NumBytes) { map(NumBytes); }

  MmapRegion(const MmapRegion &) = delete;
  MmapRegion &operator=(const MmapRegion &) = delete;

  MmapRegion(MmapRegion &&Other) noexcept;
  MmapRegion &operator=(MmapRegion &&Other) noexcept;

  ~MmapRegion();

  /// Maps \p NumBytes, releasing any previous mapping first.
  /// \returns true on success.
  bool map(size_t NumBytes);

  /// Releases the mapping (idempotent).
  void unmap();

  /// Returns the base address, or nullptr if empty.
  void *base() const { return Base; }

  /// Returns the size in bytes (0 if empty).
  size_t size() const { return Size; }

  /// Returns true if \p Ptr points inside the mapping.
  bool contains(const void *Ptr) const {
    const char *P = static_cast<const char *>(Ptr);
    const char *B = static_cast<const char *>(Base);
    return Base != nullptr && P >= B && P < B + Size;
  }

  /// Removes all access rights from [\p Offset, \p Offset + \p Len), turning
  /// those pages into guard pages. Offset and Len must be page-aligned.
  /// \returns true on success.
  bool protectNone(size_t Offset, size_t Len);

  /// Returns the exactly page-aligned range [\p PageBegin, \p PageBegin +
  /// \p PageBytes) to the OS under the process page-return policy: the
  /// virtual range stays mapped, only its physical pages are handed back
  /// (immediately with MADV_DONTNEED, lazily with MADV_FREE). \returns the
  /// number of bytes the advice covered — 0 when the policy is Off or the
  /// kernel refused — so callers only account pages that actually left the
  /// committed set.
  static size_t releasePageRange(void *PageBegin, size_t PageBytes);

  /// The process page-return policy. First call resolves
  /// DIEHARD_PAGE_RETURN ("dontneed" | "free" | "off"; default dontneed);
  /// later calls return the cached value.
  static PageReturnPolicy pageReturnPolicy();

  /// Overrides the page-return policy (benches and tests; takes effect for
  /// subsequent releasePageRange calls process-wide).
  static void setPageReturnPolicy(PageReturnPolicy Policy);

  /// True once a MADV_FREE advice has been observed to work in this
  /// process; meaningful after the first releasePageRange under the Free
  /// policy (benches report which mode actually ran).
  static bool lazyFreeWorks();

  /// Whether always-resident metadata regions should be backed by
  /// transparent huge pages (MADV_HUGEPAGE). First call resolves
  /// DIEHARD_THP ("1" enables; default off).
  static bool hugePageMetadata();

  /// Overrides the metadata-THP switch (tests; affects mappings created
  /// afterwards).
  static void setHugePageMetadata(bool On);

  /// Advises the kernel to back this mapping with transparent huge pages,
  /// if hugePageMetadata() is on. Failure is ignored — THP is a TLB
  /// optimization, never a correctness requirement.
  void adviseHugePages() const;

  /// Returns the system page size.
  static size_t pageSize();

private:
  void *Base = nullptr;
  size_t Size = 0;
};

} // namespace diehard

#endif // DIEHARD_SUPPORT_MMAPREGION_H
