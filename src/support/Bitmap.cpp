//===- support/Bitmap.cpp -------------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the out-of-line Bitmap operations (popcount and the
/// linear clear-bit scan).
///
//===----------------------------------------------------------------------===//

#include "support/Bitmap.h"

#include <bit>

namespace diehard {

size_t Bitmap::count() const {
  size_t Total = 0;
  size_t NumWords = (Bits + BitsPerWord - 1) / BitsPerWord;
  for (size_t I = 0; I < NumWords; ++I)
    Total += static_cast<size_t>(std::popcount(words()[I]));
  return Total;
}

size_t Bitmap::findNextClear(size_t From) const {
  for (size_t Index = From; Index < Bits; ++Index) {
    size_t WordIndex = Index / BitsPerWord;
    uint64_t Word = words()[WordIndex];
    // Skip fully-set words quickly.
    if (Word == ~uint64_t(0)) {
      Index = (WordIndex + 1) * BitsPerWord - 1;
      continue;
    }
    if (!((Word >> (Index % BitsPerWord)) & 1))
      return Index;
  }
  return Bits;
}

size_t Bitmap::findNextSet(size_t From) const {
  for (size_t Index = From; Index < Bits; ++Index) {
    size_t WordIndex = Index / BitsPerWord;
    uint64_t Word = words()[WordIndex];
    // Skip fully-clear words quickly.
    if (Word == 0) {
      Index = (WordIndex + 1) * BitsPerWord - 1;
      continue;
    }
    if ((Word >> (Index % BitsPerWord)) & 1)
      return Index;
  }
  return Bits;
}

} // namespace diehard
