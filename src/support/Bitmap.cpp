//===- support/Bitmap.cpp -------------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//

#include "support/Bitmap.h"

#include <bit>

namespace diehard {

size_t Bitmap::count() const {
  size_t Total = 0;
  for (uint64_t W : Words)
    Total += static_cast<size_t>(std::popcount(W));
  return Total;
}

size_t Bitmap::findNextClear(size_t From) const {
  for (size_t Index = From; Index < Bits; ++Index) {
    size_t WordIndex = Index / BitsPerWord;
    uint64_t Word = Words[WordIndex];
    // Skip fully-set words quickly.
    if (Word == ~uint64_t(0)) {
      Index = (WordIndex + 1) * BitsPerWord - 1;
      continue;
    }
    if (!((Word >> (Index % BitsPerWord)) & 1))
      return Index;
  }
  return Bits;
}

} // namespace diehard
