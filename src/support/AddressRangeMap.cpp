//===- support/AddressRangeMap.cpp ----------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the range registry: an ordered map keyed by range begin,
/// probed with one upper_bound per lookup under a shared lock.
///
//===----------------------------------------------------------------------===//

#include "support/AddressRangeMap.h"

#include <cassert>
#include <mutex>
#include <new>

namespace diehard {

bool AddressRangeMap::insert(const void *Begin, size_t Bytes,
                             uint32_t Owner) {
  assert(Owner != NoOwner && "NoOwner is reserved for lookup misses");
  assert(Bytes != 0 && "empty ranges are not representable");
  auto B = reinterpret_cast<uintptr_t>(Begin);
  try {
    std::unique_lock<std::shared_mutex> Guard(Lock);
    Ranges.insert_or_assign(B, Range{B + Bytes, Owner});
  } catch (const std::bad_alloc &) {
    // Node allocation failed (heap exhausted). Report rather than throw:
    // under the malloc shim this call sits inside extern "C" malloc, where
    // an escaping exception would terminate the process instead of letting
    // malloc return nullptr.
    return false;
  }
  return true;
}

bool AddressRangeMap::erase(const void *Begin) {
  auto B = reinterpret_cast<uintptr_t>(Begin);
  // Extract under the lock but destroy the node after releasing it: under
  // the malloc shim, freeing the node re-enters deallocate -> ownerOf, and
  // taking the read lock while this thread holds the write lock would
  // deadlock (EDEADLK from pthread_rwlock_rdlock).
  std::map<uintptr_t, Range>::node_type Node;
  {
    std::unique_lock<std::shared_mutex> Guard(Lock);
    Node = Ranges.extract(B);
  }
  return !Node.empty();
}

uint32_t AddressRangeMap::ownerOf(const void *Ptr) const {
  auto P = reinterpret_cast<uintptr_t>(Ptr);
  std::shared_lock<std::shared_mutex> Guard(Lock);
  // The candidate is the last range whose begin is <= P.
  auto It = Ranges.upper_bound(P);
  if (It == Ranges.begin())
    return NoOwner;
  --It;
  return P < It->second.End ? It->second.Owner : NoOwner;
}

size_t AddressRangeMap::size() const {
  std::shared_lock<std::shared_mutex> Guard(Lock);
  return Ranges.size();
}

} // namespace diehard
