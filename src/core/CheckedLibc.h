//===- core/CheckedLibc.h - overflow-clamped string functions ---*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replacements for unsafe C library functions (Section 4.4). DieHard's
/// power-of-two heap layout makes it cheap to recover the bounds of any heap
/// object from an interior pointer, so strcpy and friends can clamp the
/// number of bytes written to the space remaining in the destination object.
/// The paper also replaces the "safe" strncpy, because programmers routinely
/// pass a wrong length; the actual available space is used as the bound.
///
/// Destinations outside the DieHard heap (stack, globals, foreign heaps) are
/// passed through to the ordinary semantics unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_CORE_CHECKEDLIBC_H
#define DIEHARD_CORE_CHECKEDLIBC_H

#include <cstddef>

namespace diehard {

class DieHardHeap;

/// Checked libc functions bound to one heap instance.
class CheckedLibc {
public:
  /// Binds the checked functions to \p Bound, which must outlive this
  /// object.
  explicit CheckedLibc(const DieHardHeap &Bound) : Heap(Bound) {}

  /// strcpy that never writes past the end of a heap destination object.
  /// \returns \p Dst. The copy is truncated (and still NUL-terminated when
  /// any byte fits) if \p Src is too long.
  char *strcpy(char *Dst, const char *Src) const;

  /// strncpy with the effective bound min(\p Count, space left in \p Dst).
  char *strncpy(char *Dst, const char *Src, size_t Count) const;

  /// strcat clamped to the destination object's remaining space.
  char *strcat(char *Dst, const char *Src) const;

  /// memcpy clamped to the destination object's remaining space.
  /// \returns \p Dst.
  void *memcpy(void *Dst, const void *Src, size_t Count) const;

  /// memset clamped to the destination object's remaining space.
  void *memset(void *Dst, int Value, size_t Count) const;

  /// sprintf-style bounded copy helper: returns the number of bytes
  /// (excluding the NUL) that may be written starting at \p Dst, or
  /// SIZE_MAX if \p Dst is not a heap object (caller's bound applies).
  size_t availableSpace(const void *Dst) const;

private:
  const DieHardHeap &Heap;
};

} // namespace diehard

#endif // DIEHARD_CORE_CHECKEDLIBC_H
