//===- core/LargeObjectManager.cpp ----------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//

#include "core/LargeObjectManager.h"

#include "support/MmapRegion.h"

#include <sys/mman.h>

namespace diehard {

LargeObjectManager::~LargeObjectManager() {
  for (auto &[Ptr, E] : Table)
    ::munmap(E.MapBase, E.MapSize);
}

void *LargeObjectManager::allocate(size_t Size) {
  if (Size == 0)
    return nullptr;
  size_t Page = MmapRegion::pageSize();
  size_t Body = (Size + Page - 1) / Page * Page;
  // One guard page before and one after the object body.
  size_t Total = Body + 2 * Page;
  void *Base = ::mmap(nullptr, Total, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (Base == MAP_FAILED)
    return nullptr;
  char *User = static_cast<char *>(Base) + Page;
  // Revoke all access on the guard pages so that any overflow off either end
  // of the object faults immediately instead of silently corrupting memory.
  ::mprotect(Base, Page, PROT_NONE);
  ::mprotect(User + Body, Page, PROT_NONE);
  Table.emplace(User, Entry{Base, Total, Size});
  return User;
}

bool LargeObjectManager::deallocate(void *Ptr) {
  auto It = Table.find(Ptr);
  if (It == Table.end())
    return false; // Unknown or already-freed address: ignore, per the paper.
  ::munmap(It->second.MapBase, It->second.MapSize);
  Table.erase(It);
  return true;
}

size_t LargeObjectManager::getSize(const void *Ptr) const {
  auto It = Table.find(Ptr);
  return It == Table.end() ? 0 : It->second.UserSize;
}

} // namespace diehard
