//===- core/LargeObjectManager.cpp ----------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the mmap-with-guard-pages large-object manager and its
/// allocator-re-entrancy-free open-addressing validity table.
///
//===----------------------------------------------------------------------===//

#include "core/LargeObjectManager.h"

#include <utility>

#include <sys/mman.h>

namespace diehard {

namespace {

/// SplitMix64-style mix of the user address. Large-object pointers are
/// page-aligned, so the low bits carry no information; mixing spreads the
/// page number over the whole word.
size_t hashPointer(const void *Ptr) {
  uint64_t Z = reinterpret_cast<uintptr_t>(Ptr) >> 12;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return static_cast<size_t>(Z ^ (Z >> 31));
}

} // namespace

LargeObjectManager::~LargeObjectManager() {
  for (size_t I = 0; I < Capacity; ++I) {
    Slot &S = slots()[I];
    if (S.User != nullptr && S.User != tombstone())
      ::munmap(S.MapBase, S.MapSize);
  }
}

bool LargeObjectManager::grow() {
  size_t NewCapacity = Capacity == 0 ? 64 : Capacity * 2;
  MmapRegion NewStorage;
  if (!NewStorage.map(NewCapacity * sizeof(Slot)))
    return false;
  auto *NewSlots = static_cast<Slot *>(NewStorage.base());
  // Fresh anonymous pages are demand-zero, so every User starts nullptr.
  for (size_t I = 0; I < Capacity; ++I) {
    const Slot &S = slots()[I];
    if (S.User == nullptr || S.User == tombstone())
      continue;
    size_t Index = hashPointer(S.User) & (NewCapacity - 1);
    while (NewSlots[Index].User != nullptr)
      Index = (Index + 1) & (NewCapacity - 1);
    NewSlots[Index] = S;
  }
  Storage = std::move(NewStorage);
  Capacity = NewCapacity;
  Used = Live; // Rehashing drops the tombstones.
  return true;
}

LargeObjectManager::Slot *
LargeObjectManager::findSlot(const void *Ptr) const {
  if (Capacity == 0 || Ptr == nullptr || Ptr == tombstone())
    return nullptr;
  size_t Index = hashPointer(Ptr) & (Capacity - 1);
  while (true) {
    Slot &S = slots()[Index];
    if (S.User == nullptr)
      return nullptr; // Hit a never-used slot: Ptr is not in the table.
    if (S.User == Ptr)
      return &S;
    Index = (Index + 1) & (Capacity - 1);
  }
}

void *LargeObjectManager::allocate(size_t Size) {
  if (Size == 0)
    return nullptr;
  // Keep the table at most 3/4 occupied (tombstones included) so probe
  // chains stay short and the insert below cannot fail.
  if ((Used + 1) * 4 > Capacity * 3 && !grow())
    return nullptr;

  size_t Page = MmapRegion::pageSize();
  size_t Body = (Size + Page - 1) / Page * Page;
  // One guard page before and one after the object body.
  size_t Total = Body + 2 * Page;
  void *Base = ::mmap(nullptr, Total, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (Base == MAP_FAILED)
    return nullptr;
  char *User = static_cast<char *>(Base) + Page;
  // Revoke all access on the guard pages so that any overflow off either end
  // of the object faults immediately instead of silently corrupting memory.
  ::mprotect(Base, Page, PROT_NONE);
  ::mprotect(User + Body, Page, PROT_NONE);

  size_t Index = hashPointer(User) & (Capacity - 1);
  while (slots()[Index].User != nullptr &&
         slots()[Index].User != tombstone())
    Index = (Index + 1) & (Capacity - 1);
  if (slots()[Index].User == nullptr)
    ++Used; // Reusing a tombstone keeps Used unchanged.
  slots()[Index] = Slot{User, Base, Total, Size};
  ++Live;
  return User;
}

bool LargeObjectManager::deallocate(void *Ptr) {
  Slot *S = findSlot(Ptr);
  if (S == nullptr)
    return false; // Unknown or already-freed address: ignore, per the paper.
  ::munmap(S->MapBase, S->MapSize);
  S->User = tombstone();
  --Live;
  return true;
}

size_t LargeObjectManager::getSize(const void *Ptr) const {
  const Slot *S = findSlot(Ptr);
  return S == nullptr ? 0 : S->UserSize;
}

} // namespace diehard
