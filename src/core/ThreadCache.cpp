//===- core/ThreadCache.cpp -----------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ThreadCache storage management and the process-global cache registry:
/// per-thread lookup with a one-entry memo, lazy installation, the
/// pthread-key thread-exit flush, and heap retirement. See the header for
/// the lifetime rules and the lock hierarchy.
///
//===----------------------------------------------------------------------===//

#include "core/ThreadCache.h"

#include "core/ShardedHeap.h"

#include <cassert>
#include <cstring>
#include <new>

#include <pthread.h>
#include <sys/mman.h>

namespace diehard {

namespace {

/// Guards every heap's cache registry (the ThreadCacheAnchor lists and the
/// HeapDead flags). Taken only on the cold paths — cache creation, thread
/// exit, heap destruction, stats — never on malloc/free themselves. May be
/// held while taking partition locks (exit flush); never the reverse.
pthread_mutex_t RegistryLock = PTHREAD_MUTEX_INITIALIZER;

/// One process-global key whose destructor flushes and destroys all of the
/// exiting thread's caches. Created once, never deleted, so there is no
/// key-reuse hazard across heap lifetimes.
pthread_key_t ExitKey;
pthread_once_t ExitKeyOnce = PTHREAD_ONCE_INIT;

// Constant-initialized POD TLS (initial-exec where available): reading it
// never allocates, which matters inside the malloc shim.
#if defined(__GNUC__)
#define DIEHARD_TLS_MODEL __attribute__((tls_model("initial-exec")))
#else
#define DIEHARD_TLS_MODEL
#endif

/// The calling thread's caches, one per heap it has touched (singly linked;
/// owner-thread access only).
thread_local ThreadCache *ThreadCaches DIEHARD_TLS_MODEL = nullptr;

/// One-entry memo making the common lookup (one heap per process, as under
/// the shim) a single TLS load + compare. Heap ids are unique per instance
/// and never reused, so a stale memo can never alias a new heap.
struct CacheMemo {
  uint64_t HeapId;
  ThreadCache *Cache;
};
thread_local CacheMemo Memo DIEHARD_TLS_MODEL = {0, nullptr};

/// Re-entry guard: an allocation made *while* a cache is being installed
/// (e.g. glibc's pthread_setspecific second-level block) must take the
/// uncached path instead of recursing into installation.
thread_local bool Installing DIEHARD_TLS_MODEL = false;

void createExitKey() {
  pthread_key_create(&ExitKey, threadCacheExitFlush);
}

} // namespace

void threadCacheExitFlush(void *) {
  pthread_mutex_lock(&RegistryLock);
  ThreadCache *TC = ThreadCaches;
  ThreadCaches = nullptr;
  Memo = {0, nullptr};
  while (TC != nullptr) {
    ThreadCache *Next = TC->NextInThread;
    if (!TC->HeapDead.load(std::memory_order_acquire)) {
      // The heap outlives us: return every cached slot and deferred free,
      // then drop out of its registry. Partition locks are taken under the
      // registry lock here — the documented hierarchy.
      TC->Heap->flushCacheAtThreadExit(*TC);
      if (TC->RegPrev != nullptr)
        TC->RegPrev->RegNext = TC->RegNext;
      else
        TC->Anchor->Head = TC->RegNext;
      if (TC->RegNext != nullptr)
        TC->RegNext->RegPrev = TC->RegPrev;
    }
    TC->destroy();
    TC = Next;
  }
  pthread_mutex_unlock(&RegistryLock);
}

ThreadCache *ThreadCache::create(ShardedHeap *Heap,
                                 ThreadCacheAnchor *Anchor, uint64_t HeapId,
                                 uint32_t HomeShard, uint32_t SlotsPerClass,
                                 uint32_t InitialK,
                                 uint32_t DeferredCapacity) {
  assert(SlotsPerClass >= 1 && SlotsPerClass <= MaxSlotsPerClass);
  assert(InitialK >= 1 && InitialK <= SlotsPerClass);
  assert(DeferredCapacity >= 1 && DeferredCapacity <= MaxDeferred);
  size_t Bytes = sizeof(ThreadCache) +
                 static_cast<size_t>(SizeClass::NumClasses) * SlotsPerClass *
                     sizeof(void *) +
                 static_cast<size_t>(DeferredCapacity) * sizeof(DeferredFree);
  Bytes = (Bytes + 4095) & ~size_t(4095);
  // A dedicated anonymous mapping: no malloc (shim-safe), demand-zero, and
  // naturally page-aligned for the trailing arrays.
  void *Mem = ::mmap(nullptr, Bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Mem == MAP_FAILED)
    return nullptr;
  return new (Mem) ThreadCache(Heap, Anchor, HeapId, HomeShard,
                               SlotsPerClass, InitialK, DeferredCapacity,
                               Bytes);
}

ThreadCache::ThreadCache(ShardedHeap *OwningHeap,
                         ThreadCacheAnchor *HeapAnchor,
                         uint64_t OwningHeapId, uint32_t HomeShard,
                         uint32_t SlotsEachClass, uint32_t InitialK,
                         uint32_t DeferredCapacity, size_t MappedBytes)
    : Heap(OwningHeap), Anchor(HeapAnchor), HeapId(OwningHeapId),
      Home(HomeShard), SlotCapacity(SlotsEachClass),
      DeferredCap(DeferredCapacity), MapBytes(MappedBytes) {
  for (int C = 0; C < SizeClass::NumClasses; ++C) {
    TargetK[C] = InitialK;
    RefillsSinceSweep[C] = 0;
  }
}

void ThreadCache::destroy() {
  size_t Bytes = MapBytes;
  this->~ThreadCache();
  ::munmap(this, Bytes);
}

void ThreadCache::put(int Class, void *const *Ptrs, size_t Count) {
  assert(Counts[Class].load(std::memory_order_relaxed) == 0 &&
         "refill only lands in an empty class buffer");
  assert(Count <= SlotCapacity);
  std::memcpy(classSlots(Class), Ptrs, Count * sizeof(void *));
  Counts[Class].store(static_cast<uint32_t>(Count),
                      std::memory_order_relaxed);
}

size_t ThreadCache::take(int Class, void **Out) {
  uint32_t N = Counts[Class].load(std::memory_order_relaxed);
  if (N != 0) {
    std::memcpy(Out, classSlots(Class), N * sizeof(void *));
    Counts[Class].store(0, std::memory_order_relaxed);
  }
  return N;
}

size_t ThreadCache::drainDeferred(DeferredFree *Out) {
  uint32_t N = DeferredUsed.load(std::memory_order_relaxed);
  if (N != 0) {
    std::memcpy(Out, deferredArray(), N * sizeof(DeferredFree));
    DeferredUsed.store(0, std::memory_order_relaxed);
  }
  return N;
}

size_t ThreadCache::takeSurplus(int Class, void **Out, uint32_t Keep) {
  uint32_t N = Counts[Class].load(std::memory_order_relaxed);
  if (N <= Keep)
    return 0;
  uint32_t Surplus = N - Keep;
  std::memcpy(Out, classSlots(Class) + Keep, Surplus * sizeof(void *));
  Counts[Class].store(Keep, std::memory_order_relaxed);
  return Surplus;
}

size_t ThreadCache::cachedTotal() const {
  size_t Total = 0;
  for (int C = 0; C < SizeClass::NumClasses; ++C)
    Total += Counts[C].load(std::memory_order_relaxed);
  return Total;
}

ThreadCache *threadCacheLookup(uint64_t HeapId) {
  if (Memo.HeapId == HeapId)
    return Memo.Cache;
  ThreadCache **Link = &ThreadCaches;
  while (*Link != nullptr) {
    ThreadCache *TC = *Link;
    if (TC->HeapDead.load(std::memory_order_acquire)) {
      // The heap died first; the corpse holds nothing worth flushing.
      // Unlink (owner-thread list, no lock needed) and unmap.
      *Link = TC->NextInThread;
      if (Memo.Cache == TC)
        Memo = {0, nullptr};
      TC->destroy();
      continue;
    }
    if (TC->HeapId == HeapId) {
      Memo = {HeapId, TC};
      return TC;
    }
    Link = &TC->NextInThread;
  }
  return nullptr;
}

ThreadCache *threadCacheInstall(ShardedHeap &Heap,
                                ThreadCacheAnchor &Anchor, uint64_t HeapId,
                                uint32_t HomeShard, uint32_t SlotsPerClass,
                                uint32_t InitialK,
                                uint32_t DeferredCapacity) {
  if (Installing)
    return nullptr;
  Installing = true;
  pthread_once(&ExitKeyOnce, createExitKey);
  ThreadCache *TC = ThreadCache::create(&Heap, &Anchor, HeapId, HomeShard,
                                        SlotsPerClass, InitialK,
                                        DeferredCapacity);
  if (TC != nullptr) {
    // Arm the exit destructor BEFORE publishing the cache anywhere: any
    // non-null value triggers it, and the destructor walks the
    // thread-local list, not this value. (glibc may allocate a
    // second-level TSD block here — the Installing guard routes that
    // nested malloc onto the uncached path.) If arming fails, a cache
    // would claim slots that no thread exit ever reclaims — permanently
    // eating into the 1/M bound — so abandon it and let this thread stay
    // on the locked paths.
    if (pthread_setspecific(ExitKey, TC) != 0) {
      TC->destroy();
      TC = nullptr;
    } else {
      pthread_mutex_lock(&RegistryLock);
      TC->RegNext = Anchor.Head;
      if (Anchor.Head != nullptr)
        Anchor.Head->RegPrev = TC;
      Anchor.Head = TC;
      pthread_mutex_unlock(&RegistryLock);

      TC->NextInThread = ThreadCaches;
      ThreadCaches = TC;
      Memo = {HeapId, TC};
    }
  }
  Installing = false;
  return TC;
}

void threadCacheRetireHeap(ThreadCacheAnchor &Anchor) {
  pthread_mutex_lock(&RegistryLock);
  ThreadCache *TC = Anchor.Head;
  Anchor.Head = nullptr;
  while (TC != nullptr) {
    ThreadCache *Next = TC->RegNext;
    TC->RegPrev = nullptr;
    TC->RegNext = nullptr;
    // Release so an owner thread that observes HeapDead (acquire) also
    // sees the unlinking above and can safely unmap the corpse.
    TC->HeapDead.store(true, std::memory_order_release);
    TC = Next;
  }
  pthread_mutex_unlock(&RegistryLock);
}

size_t threadCacheAgeQuiet(ThreadCacheAnchor &Anchor, uint64_t Epoch) {
  size_t Aged = 0;
  pthread_mutex_lock(&RegistryLock);
  for (ThreadCache *TC = Anchor.Head; TC != nullptr; TC = TC->RegNext) {
    // Aging horizon: the owner must have been quiet for two full epochs
    // (a stamp during epoch E survives the pass that opens E+1 and ages at
    // E+2), and the cache must actually hold something worth reclaiming.
    if (TC->LastEpoch.load(std::memory_order_relaxed) + 2 > Epoch)
      continue;
    if (TC->cachedTotal() == 0 && TC->deferredUsed() == 0)
      continue;
    // Dekker handshake with the owner's op bracket: publish the seizure,
    // then check for an op in flight. Both sides' first access is seq_cst,
    // so at least one of them observes the other; a mid-op owner makes the
    // sweeper roll back and skip — never wait — which also keeps a
    // descheduled owner from blocking the sweep.
    TC->Seized.store(1, std::memory_order_seq_cst);
    if (TC->InOp.load(std::memory_order_seq_cst) != 0) {
      TC->Seized.store(0, std::memory_order_relaxed);
      continue;
    }
    // The owner is parked outside any bracket and will serialize through
    // the registry lock if it wakes now: the cache is ours. Flush it
    // through the ordinary full-flush path — deferred frees return to
    // their owners (cross-shard via sidecars), cached slots reclaim via
    // reclaimSlots, pops fold — without the owner thread exiting.
    TC->Heap->flushCacheAged(*TC);
    // Release the buffers back to the owner: its next bracket entry
    // acquires this store (or takes the registry lock) before touching
    // them.
    TC->Seized.store(0, std::memory_order_release);
    ++Aged;
  }
  pthread_mutex_unlock(&RegistryLock);
  return Aged;
}

void threadCacheUnseize(ThreadCache &TC) {
  // Taking the registry lock waits out any sweeper flush in progress;
  // clearing an already-cleared flag is harmless.
  pthread_mutex_lock(&RegistryLock);
  TC.Seized.store(0, std::memory_order_relaxed);
  pthread_mutex_unlock(&RegistryLock);
}

ThreadCacheTally threadCacheTally(const ThreadCacheAnchor &Anchor) {
  ThreadCacheTally Tally;
  pthread_mutex_lock(&RegistryLock);
  for (const ThreadCache *TC = Anchor.Head; TC != nullptr;
       TC = TC->RegNext) {
    Tally.CachedSlots += TC->cachedTotal();
    Tally.PendingPops += TC->pendingPops();
    Tally.DeferredFrees += TC->deferredUsed();
  }
  pthread_mutex_unlock(&RegistryLock);
  return Tally;
}

} // namespace diehard
