//===- core/LargeObjectManager.h - mmap-backed large objects ----*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Manager for objects larger than 16 KB. The paper allocates these directly
/// with mmap, places no-access guard pages on either end, and records each
/// object in a table so that free can validate the address (Sections 4.1 and
/// 4.3). Requests to free addresses that were never returned by
/// allocateLargeObject are ignored.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_CORE_LARGEOBJECTMANAGER_H
#define DIEHARD_CORE_LARGEOBJECTMANAGER_H

#include <cstddef>
#include <unordered_map>

namespace diehard {

/// Allocates and frees large objects via mmap, with guard pages and a
/// validity table.
class LargeObjectManager {
public:
  LargeObjectManager() = default;
  LargeObjectManager(const LargeObjectManager &) = delete;
  LargeObjectManager &operator=(const LargeObjectManager &) = delete;
  ~LargeObjectManager();

  /// Maps a fresh region for \p Size bytes, bracketed by PROT_NONE guard
  /// pages. \returns the usable pointer, or nullptr on exhaustion.
  void *allocate(size_t Size);

  /// Unmaps \p Ptr if and only if it was returned by allocate and not yet
  /// freed. \returns true if the object was released, false if the request
  /// was ignored as invalid (unknown address or double free).
  bool deallocate(void *Ptr);

  /// Returns the requested size of \p Ptr, or 0 if it is not a live large
  /// object.
  size_t getSize(const void *Ptr) const;

  /// Returns true if \p Ptr is a live large object.
  bool contains(const void *Ptr) const { return getSize(Ptr) != 0; }

  /// Number of live large objects.
  size_t liveCount() const { return Table.size(); }

private:
  struct Entry {
    void *MapBase;   ///< Base of the whole mapping including guards.
    size_t MapSize;  ///< Size of the whole mapping including guards.
    size_t UserSize; ///< Size the caller asked for.
  };

  /// Keyed by the user-visible pointer (first byte after the front guard).
  std::unordered_map<const void *, Entry> Table;
};

} // namespace diehard

#endif // DIEHARD_CORE_LARGEOBJECTMANAGER_H
