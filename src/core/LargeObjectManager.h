//===- core/LargeObjectManager.h - mmap-backed large objects ----*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Manager for objects larger than 16 KB. The paper allocates these directly
/// with mmap, places no-access guard pages on either end, and records each
/// object in a table so that free can validate the address (Sections 4.1 and
/// 4.3). Requests to free addresses that were never returned by
/// allocateLargeObject are ignored.
///
/// The validity table is an open-addressing hash table whose storage is its
/// own anonymous mapping, so the manager never allocates through the global
/// allocator. That matters under the malloc shim: the large-object path runs
/// under a lock, and a table that malloc'd its nodes (the previous
/// std::unordered_map) could re-enter that locked path from inside its own
/// rehash — the table must be allocator-re-entrancy-free, not merely
/// external-synchronization-safe.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_CORE_LARGEOBJECTMANAGER_H
#define DIEHARD_CORE_LARGEOBJECTMANAGER_H

#include "support/MmapRegion.h"

#include <cstddef>
#include <cstdint>

namespace diehard {

/// Allocates and frees large objects via mmap, with guard pages and a
/// validity table. Not thread-safe; callers serialize access (ShardedHeap
/// uses a dedicated large-object lock).
class LargeObjectManager {
public:
  LargeObjectManager() = default;
  LargeObjectManager(const LargeObjectManager &) = delete;
  LargeObjectManager &operator=(const LargeObjectManager &) = delete;
  ~LargeObjectManager();

  /// Maps a fresh region for \p Size bytes, bracketed by PROT_NONE guard
  /// pages. \returns the usable pointer, or nullptr on exhaustion.
  void *allocate(size_t Size);

  /// Unmaps \p Ptr if and only if it was returned by allocate and not yet
  /// freed. \returns true if the object was released, false if the request
  /// was ignored as invalid (unknown address or double free).
  bool deallocate(void *Ptr);

  /// Returns the requested size of \p Ptr, or 0 if it is not a live large
  /// object.
  size_t getSize(const void *Ptr) const;

  /// Returns true if \p Ptr is a live large object.
  bool contains(const void *Ptr) const { return getSize(Ptr) != 0; }

  /// Number of live large objects.
  size_t liveCount() const { return Live; }

private:
  /// One table slot, keyed by the user-visible pointer (first byte after
  /// the front guard). User is nullptr for never-used slots and Tombstone
  /// for erased ones.
  struct Slot {
    const void *User;
    void *MapBase;   ///< Base of the whole mapping including guards.
    size_t MapSize;  ///< Size of the whole mapping including guards.
    size_t UserSize; ///< Size the caller asked for.
  };

  static const void *tombstone() {
    return reinterpret_cast<const void *>(~uintptr_t(0));
  }

  /// Doubles (or initializes) the table and rehashes live entries.
  /// \returns false if the new mapping cannot be obtained.
  bool grow();

  /// Returns the live slot for \p Ptr, or nullptr.
  Slot *findSlot(const void *Ptr) const;

  Slot *slots() const { return static_cast<Slot *>(Storage.base()); }

  MmapRegion Storage; ///< Backing for the slot array.
  size_t Capacity = 0; ///< Slot count; always a power of two (or 0).
  size_t Live = 0;     ///< Live entries.
  size_t Used = 0;     ///< Live entries plus tombstones.
};

} // namespace diehard

#endif // DIEHARD_CORE_LARGEOBJECTMANAGER_H
