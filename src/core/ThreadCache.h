//===- core/ThreadCache.h - per-thread randomized slot cache ----*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lock-free malloc fast path: a per-thread, per-size-class buffer of
/// pre-claimed randomly chosen slots plus a bounded deferred-free buffer,
/// layered in front of the partitioned sharded heap (the Hoard-lineage
/// per-thread tier the paper's allocator family builds on).
///
/// A ThreadCache never chooses placement itself — every slot it holds was
/// claimed by RandomizedPartition::claimRandomSlots under the partition
/// lock, drawn by exactly the uniform probe discipline of Figure 2, so the
/// paper's randomization argument is preserved by construction. Cached
/// slots keep their bitmap bits set and stay counted in the partition's
/// live gauge, so the 1/M fill bound holds with slots sitting in caches.
/// The steady-state malloc/free is then a plain TLS array pop/push: no
/// mutex, and no shared-memory atomics (the cache's own counters are
/// relaxed atomics on thread-private cache lines, so unlocked stats
/// snapshots stay race-free at zero practical cost).
///
/// Frees — including cross-thread frees of objects owned by any shard —
/// are pushed into the freeing thread's deferred buffer together with their
/// pre-resolved (owner shard, size class); a full buffer flushes back in
/// owner-grouped locked batches. Free validation (double/invalid frees)
/// still happens, at flush time, by the owning partition.
///
/// Lifetime: caches are created lazily on a thread's first malloc/free
/// against a caching heap, registered with the owning ShardedHeap, and
/// flushed + destroyed by a process-global pthread-key destructor at thread
/// exit. A heap that is destroyed first retires its caches (marks them
/// dead); dead caches are pruned lazily by their owner thread. All cache
/// storage is a private anonymous mapping — cache management never calls
/// malloc, so the tier is safe inside the interposition shim.
///
/// Lock hierarchy: the process-global cache registry lock may be held while
/// taking partition locks (thread-exit flush); nothing that holds a
/// partition lock ever takes the registry lock.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_CORE_THREADCACHE_H
#define DIEHARD_CORE_THREADCACHE_H

#include "core/SizeClass.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace diehard {

class ShardedHeap;
class ThreadCache;

/// One user-freed object parked in a deferred buffer, with its owner shard
/// and size class pre-resolved (both derive from immutable construction-time
/// geometry, so resolution is lock-free at push time).
struct DeferredFree {
  void *Ptr;
  uint32_t Owner;
  int32_t Class;
};

/// Head of a heap's registry of live caches. Embedded in ShardedHeap;
/// guarded by the process-global cache registry lock in ThreadCache.cpp.
struct ThreadCacheAnchor {
  ThreadCache *Head = nullptr;
};

/// Snapshot of a heap's cache tier, taken under the registry lock.
struct ThreadCacheTally {
  uint64_t CachedSlots = 0;   ///< Claimed slots sitting in caches.
  uint64_t PendingPops = 0;   ///< Cache-served allocations not yet folded.
  uint64_t DeferredFrees = 0; ///< User frees parked in deferred buffers.
};

/// Per-thread cache bound to one (thread, heap) pair. The owner thread is
/// the only mutator; the relaxed-atomic gauges may be read by anyone. The
/// object lives in its own anonymous mapping (see create()/destroy()) and
/// holds no heap-allocated state.
///
/// This class is a dumb container: refill, flush and all locking live in
/// ShardedHeap, which is the only caller of these methods.
class ThreadCache {
public:
  /// Hard caps keeping refill/flush stack buffers bounded.
  static constexpr uint32_t MaxSlotsPerClass = 256;
  static constexpr uint32_t MaxDeferred = 256;

  /// Maps and initializes a cache for the calling thread. \p SlotsPerClass
  /// sizes the per-class buffers (the adaptive cap; with fixed K the cap
  /// IS K); \p InitialK seeds every class's adaptive target. \returns
  /// nullptr if the mapping fails.
  static ThreadCache *create(ShardedHeap *Heap, ThreadCacheAnchor *Anchor,
                             uint64_t HeapId, uint32_t HomeShard,
                             uint32_t SlotsPerClass, uint32_t InitialK,
                             uint32_t DeferredCapacity);

  /// Unmaps the cache. The caller must have unlinked it from the thread
  /// list and the heap registry first.
  void destroy();

  /// Pops one cached slot of \p Class, or nullptr when the class's buffer
  /// is empty. Counts the pop.
  void *pop(int Class) {
    uint32_t N = Counts[Class].load(std::memory_order_relaxed);
    if (N == 0)
      return nullptr;
    void *Ptr = classSlots(Class)[N - 1];
    Counts[Class].store(N - 1, std::memory_order_relaxed);
    Pops.store(Pops.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
    return Ptr;
  }

  /// Installs a freshly claimed batch into \p Class's (empty) buffer.
  void put(int Class, void *const *Ptrs, size_t Count);

  /// Drains \p Class's buffer into \p Out (capacity >= slotsPerClass());
  /// \returns the number of slots removed.
  size_t take(int Class, void **Out);

  /// Parks a user free. \returns false when the buffer is full (the caller
  /// flushes and retries; a push after a drain cannot fail).
  bool pushDeferred(void *Ptr, uint32_t Owner, int32_t Class) {
    uint32_t N = DeferredUsed.load(std::memory_order_relaxed);
    if (N >= DeferredCap)
      return false;
    deferredArray()[N] = DeferredFree{Ptr, Owner, Class};
    DeferredUsed.store(N + 1, std::memory_order_relaxed);
    return true;
  }

  /// Drains the deferred buffer into \p Out (capacity >=
  /// deferredCapacity()); \returns the number of entries removed.
  size_t drainDeferred(DeferredFree *Out);

  /// Returns and zeroes the unfolded pop count (owner thread only; the
  /// caller folds it into the heap's aggregate).
  uint64_t takePops() {
    uint64_t N = Pops.load(std::memory_order_relaxed);
    Pops.store(0, std::memory_order_relaxed);
    return N;
  }

  /// Racy gauges for stats snapshots.
  uint64_t pendingPops() const {
    return Pops.load(std::memory_order_relaxed);
  }
  uint32_t cached(int Class) const {
    return Counts[Class].load(std::memory_order_relaxed);
  }
  size_t cachedTotal() const;
  uint32_t deferredUsed() const {
    return DeferredUsed.load(std::memory_order_relaxed);
  }

  uint32_t homeShard() const { return Home; }
  uint32_t slotsPerClass() const { return SlotCapacity; }
  uint32_t deferredCapacity() const { return DeferredCap; }

  // --- Adaptive sizing bookkeeping (owner thread only; the policy lives
  // --- in ShardedHeap, this is just the cache's slow-path state) ----------

  /// The current adaptive refill size for \p Class (== the initial K with
  /// adaptation off).
  uint32_t targetK(int Class) const { return TargetK[Class]; }
  void setTargetK(int Class, uint32_t K) {
    TargetK[Class] = K <= SlotCapacity ? K : SlotCapacity;
  }

  /// Counts a refill of \p Class within the current sweep window.
  /// \returns the number of refills since the last sweep, this one
  /// included.
  uint32_t noteRefill(int Class) { return ++RefillsSinceSweep[Class]; }

  /// Reads and clears \p Class's refill count for the closing window.
  uint32_t takeRefillMark(int Class) {
    uint32_t N = RefillsSinceSweep[Class];
    RefillsSinceSweep[Class] = 0;
    return N;
  }

  /// Counts one slow-path event. \returns true every \p Period events —
  /// the cue to run an idle sweep.
  bool tickSlowPath(uint32_t Period) {
    return ++SlowPathTicks % Period == 0;
  }

  /// Removes every cached slot of \p Class beyond \p Keep into \p Out
  /// (capacity >= slotsPerClass()). \returns the number removed.
  size_t takeSurplus(int Class, void **Out, uint32_t Keep);

  // --- Sweeper handshake and epoch stamp (active only with the epoch
  // --- sweeper on; see ShardedHeap's sweeper documentation) ---------------

  /// Owner side, bracket entry: marks a cache operation in flight. The
  /// seq_cst store forms a Dekker pair with the sweeper's seq_cst
  /// Seized-store/InOp-load in threadCacheAgeQuiet(): either the sweeper
  /// observes the op and backs off, or the owner observes the seizure and
  /// serializes through the registry lock. Never called on the default
  /// (sweeper-off) configuration, so the lock-free fast path is untouched.
  void beginOp() { InOp.store(1, std::memory_order_seq_cst); }

  /// Owner side: true when the sweeper has (or may still hold) this cache
  /// seized; the owner must pass through threadCacheUnseize() before
  /// touching its buffers.
  bool seizedBySweeper() const {
    return Seized.load(std::memory_order_seq_cst) != 0;
  }

  /// Owner side, bracket exit.
  void endOp() { InOp.store(0, std::memory_order_release); }

  /// Stamps the owner's last-activity epoch (called at the owning heap's
  /// cache-lookup boundary, never inside pop/push themselves).
  void stampEpoch(uint64_t Epoch) {
    LastEpoch.store(Epoch, std::memory_order_relaxed);
  }
  uint64_t lastEpoch() const {
    return LastEpoch.load(std::memory_order_relaxed);
  }

private:
  ThreadCache(ShardedHeap *OwningHeap, ThreadCacheAnchor *HeapAnchor,
              uint64_t OwningHeapId, uint32_t HomeShard,
              uint32_t SlotsEachClass, uint32_t InitialK,
              uint32_t DeferredCapacity, size_t MappedBytes);

  friend ThreadCache *threadCacheLookup(uint64_t HeapId);
  friend ThreadCache *threadCacheInstall(ShardedHeap &Heap,
                                         ThreadCacheAnchor &Anchor,
                                         uint64_t HeapId, uint32_t HomeShard,
                                         uint32_t SlotsPerClass,
                                         uint32_t InitialK,
                                         uint32_t DeferredCapacity);
  friend void threadCacheRetireHeap(ThreadCacheAnchor &Anchor);
  friend ThreadCacheTally threadCacheTally(const ThreadCacheAnchor &Anchor);
  friend void threadCacheExitFlush(void *);
  friend size_t threadCacheAgeQuiet(ThreadCacheAnchor &Anchor,
                                    uint64_t Epoch);
  friend void threadCacheUnseize(ThreadCache &TC);

  /// The trailing per-class slot arrays and deferred array live directly
  /// after the object inside its mapping.
  void **classSlots(int Class) {
    return reinterpret_cast<void **>(this + 1) +
           static_cast<size_t>(Class) * SlotCapacity;
  }
  const void *const *classSlots(int Class) const {
    return const_cast<ThreadCache *>(this)->classSlots(Class);
  }
  DeferredFree *deferredArray() {
    return reinterpret_cast<DeferredFree *>(
        classSlots(SizeClass::NumClasses));
  }

  ShardedHeap *Heap;          ///< Valid while !HeapDead.
  ThreadCacheAnchor *Anchor;  ///< The heap's registry head.
  uint64_t HeapId;            ///< Unique per heap instance, never reused.
  uint32_t Home;              ///< The owner thread's home shard.
  uint32_t SlotCapacity;      ///< K: cached slots per size class.
  uint32_t DeferredCap;       ///< Deferred-free buffer capacity.
  size_t MapBytes;            ///< Size of the backing mapping.
  ThreadCache *NextInThread = nullptr; ///< Owner thread's cache list.
  ThreadCache *RegPrev = nullptr;      ///< Heap registry links (guarded by
  ThreadCache *RegNext = nullptr;      ///< the registry lock).

  /// Set (release, under the registry lock) when the heap is destroyed
  /// before the owner thread exits; the owner prunes dead caches lazily.
  std::atomic<bool> HeapDead{false};

  /// Cache-served allocations since the last fold into the heap aggregate.
  std::atomic<uint64_t> Pops{0};

  /// Per-class cached-slot counts. Owner-written, racy-readable.
  std::atomic<uint32_t> Counts[SizeClass::NumClasses];

  /// Occupancy of the deferred-free buffer. Owner-written, racy-readable.
  std::atomic<uint32_t> DeferredUsed{0};

  // Sweeper handshake state (quiescent zeroes with the sweeper off).
  /// Last sweep epoch at which the owner made an allocator call.
  std::atomic<uint64_t> LastEpoch{0};
  /// Owner-op-in-flight flag for the Dekker handshake with the sweeper.
  std::atomic<uint32_t> InOp{0};
  /// Set by the sweeper while it owns the cache's buffers (under the
  /// registry lock); the owner re-synchronizes through the registry lock
  /// when it observes the flag.
  std::atomic<uint32_t> Seized{0};

  // Adaptive-sizing state: owner-thread-only plain words (never read off
  // the owner thread; stats snapshots sum Counts, not targets).
  uint32_t TargetK[SizeClass::NumClasses];
  uint32_t RefillsSinceSweep[SizeClass::NumClasses];
  uint32_t SlowPathTicks = 0;
};

/// Returns the calling thread's cache for heap \p HeapId, or nullptr if
/// none exists yet. Prunes caches of destroyed heaps along the way.
ThreadCache *threadCacheLookup(uint64_t HeapId);

/// Creates, registers and returns the calling thread's cache for \p Heap.
/// \returns nullptr on mapping failure or re-entry (a nested allocation
/// made while the cache is being installed must take the uncached path).
ThreadCache *threadCacheInstall(ShardedHeap &Heap, ThreadCacheAnchor &Anchor,
                                uint64_t HeapId, uint32_t HomeShard,
                                uint32_t SlotsPerClass, uint32_t InitialK,
                                uint32_t DeferredCapacity);

/// Marks every cache registered on \p Anchor dead and empties the registry.
/// Called by ~ShardedHeap; owner threads prune the corpses lazily (their
/// slots need no flushing — the heap they point into is gone).
void threadCacheRetireHeap(ThreadCacheAnchor &Anchor);

/// Sums the live caches' gauges under the registry lock. Exact while the
/// heap is quiescent; a racy-but-race-free approximation otherwise.
ThreadCacheTally threadCacheTally(const ThreadCacheAnchor &Anchor);

/// The process-global pthread-key destructor: flushes and destroys every
/// cache of the exiting thread. Exposed only so the key can point at it.
void threadCacheExitFlush(void *);

/// Sweeper side: ages out every cache on \p Anchor whose owner has been
/// quiet for at least two sweep epochs and which still holds cached slots
/// or deferred frees — the whole cache is flushed through the owning heap's
/// ordinary full-flush path (deferred frees included) without the owner
/// thread exiting. Runs under the registry lock; each candidate is seized
/// with the Dekker handshake and skipped (not waited for) when its owner is
/// mid-operation. \returns the number of caches aged.
size_t threadCacheAgeQuiet(ThreadCacheAnchor &Anchor, uint64_t Epoch);

///// Owner side: clears this cache's seized flag, serializing with any
/// in-flight sweeper flush via the registry lock. Called when a bracketed
/// cache operation observes seizedBySweeper().
void threadCacheUnseize(ThreadCache &TC);

} // namespace diehard

#endif // DIEHARD_CORE_THREADCACHE_H
