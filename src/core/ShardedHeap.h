//===- core/ShardedHeap.h - per-thread DieHard heap shards ------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-scalable front end over N independent DieHardHeap shards. The
/// paper's probabilistic-safety argument (Section 3) only requires that each
/// randomized heap place objects uniformly within its own partitions, so the
/// heap can be sharded per thread without weakening the miss-probability
/// bounds: every shard is a full M-approximation of an infinite heap for the
/// threads it serves, and the analysis in src/analysis applies per shard
/// unchanged.
///
/// Each thread is pinned to a home shard by a cheap thread-local token
/// (round-robin assignment on first allocation), so the common malloc/free
/// pattern — free on the thread that allocated — touches exactly one lock.
/// Locking is *per partition*, not per shard: a shard's DieHardHeap is
/// twelve independent RandomizedPartition objects, and each gets its own
/// cache-line-padded mutex, so two threads sharing a home shard but
/// allocating different size classes do not contend at all. (The paper's
/// analysis is stated per partition; the lock granularity just follows it.)
///
/// Frees, reallocs and size queries of pointers owned by *another* shard
/// are routed to the owner by address: shard reservations are immutable
/// after construction, so they are matched against a lock-free array of
/// ranges — and the partition index within the owner is derived from the
/// offset, again lock-free — before exactly one partition lock is taken.
/// Live large objects (which come and go) are looked up in an
/// AddressRangeMap under a shared lock. Objects above
/// SizeClass::MaxObjectSize bypass the shards entirely and go to one shared
/// LargeObjectManager behind its own lock, so large-object traffic never
/// serializes small-object traffic.
///
/// Overflow routing (DIEHARD_OVERFLOW): when the calling thread's home
/// partition is at its 1/M bound, the allocation is routed to the same
/// class's partition on the least-loaded sibling shard (a bounded probe in
/// ascending fill order) instead of failing. The 1/M invariant still holds
/// partition by partition — the object simply lives in a sibling's
/// M-approximated region, and frees find it through the range array like
/// any cross-thread free. Disabled, the strict per-shard bound applies and
/// saturation returns nullptr as in a lone DieHardHeap.
///
/// With NumShards == 1, small-object behaviour is bit-identical to a lone
/// DieHardHeap with the same options: one shard, same seed, same per-class
/// RNG streams, same slots (a unit test enforces this; overflow routing
/// never engages with no siblings). The one divergence is replicated mode
/// with large objects: a lone DieHardHeap fills those from its heap-level
/// stream, while this layer fills them from a dedicated stream — placement
/// remains deterministic per seed (which is the invariant replica voting
/// needs; replicas all run this code), it just differs from the unsharded
/// heap's sequence. Replicas run one shard so scheduling cannot perturb
/// their allocation order.
///
/// Thread-cache tier (ThreadCacheSlots > 0 / DIEHARD_TCACHE): each thread
/// fronts its home shard with a per-size-class buffer of K pre-claimed,
/// uniformly chosen slots (one locked batch claim per refill) and a bounded
/// deferred-free buffer flushed back in owner-grouped batches, so the
/// steady-state malloc/free takes no lock at all. Cached slots stay
/// counted against the owning partition's 1/M bound; refills draw from
/// exactly allocate()'s distribution, so the paper's invariants survive
/// unchanged (see ThreadCache.h). ShardedHeap owns cache registration,
/// refill/flush, thread-exit flush and the cache-aware stats.
///
/// Remote-free sidecars: every small-object free owned by a shard other
/// than the freeing thread's home — a deferred-flush group with the cache
/// tier on, or an individual uncached free with it off — is NOT returned
/// under the remote partition's lock. Each pointer is pushed onto the
/// owning partition's lock-free MPSC sidecar instead
/// (RandomizedPartition::remoteFree), so a cross-shard free performs zero
/// acquisitions of any remote mutex. Whoever next takes that partition's
/// lock for its own reasons — a refill, a locked allocation, a same-shard
/// flush batch, a sweeper pass, an explicit drainRemoteFrees() — drains
/// the sidecar through the ordinary validated free path. Same-shard frees
/// keep the locked path (the home locks are the cheap, mostly-uncontended
/// ones).
///
/// Adaptive cache sizing (ThreadCacheAdaptive / DIEHARD_TCACHE_ADAPT):
/// each cache's per-class batch size K starts at ThreadCacheSlots and
/// adapts to the thread's traffic — repeated refills of a class within one
/// sweep window double its K toward a cap (8x the base, bounded by
/// ThreadCache::MaxSlotsPerClass); classes idle across a whole window have
/// K halved (floor: a quarter of the base) and any cached surplus above
/// the new K is returned to the home partition via reclaimSlots, shrinking
/// the cache's claim against the 1/M bound. Adaptation happens only on
/// slow paths (refills and deferred flushes); pops and pushes are
/// untouched. Placement stays uniform by construction: adaptation only
/// changes *how many* slots a refill claims, never how they are chosen.
///
/// Epoch sweeper (Sweeper / DIEHARD_SWEEPER): an optional background
/// maintenance thread that wakes every SweepIntervalMs and runs one pass
/// over all four layers. A pass (1) ages out thread caches whose owners
/// have been quiet for two full epochs — the whole cache (deferred frees
/// included) flushes through the ordinary full-flush path without the
/// owner thread exiting; (2) runs RandomizedPartition::maintain() on every
/// partition with pending sidecar entries or a newly empty region, so
/// in-flight cross-shard frees of idle partitions materialize and fully
/// empty partitions hand their data pages back to the OS (MADV_DONTNEED;
/// the bitmap metadata is untouched, so the 1/M bound and free validation
/// are unchanged); and (3) publishes a per-(shard, class) pressure table
/// of relaxed atomics that overflow routing reads instead of re-probing
/// every sibling's gauges per allocation (with a direct-gauge fallback, so
/// a stale table entry can only cost a retry, never a spurious failure).
///
/// Safety of foreign-cache aging rests on a Dekker-style handshake, active
/// only when the sweeper is configured: every owner cache operation is
/// bracketed by a seq_cst InOp store and a Seized check, and the sweeper
/// (under the registry lock) publishes Seized with seq_cst before reading
/// InOp — whichever side loses the race backs off (the sweeper skips the
/// cache; the owner serializes through the registry lock). The default
/// configuration never executes the bracket, and the pop/push operations
/// themselves never stamp epochs — activity stamps happen at the
/// cache-lookup boundary around them — so the lock-free fast path is
/// untouched either way. The sweeper allocates nothing (its state is
/// embedded in the heap; glibc mmaps the thread stack), making it safe
/// under the malloc shim, and fork is handled with pthread_atfork: the
/// prepare hook holds every sweeper's pass gate across the fork, so the
/// child inherits no mid-pass state; the child simply has no sweeper
/// thread (it is not respawned — a documented limitation matching the
/// usual fork-then-exec pattern).
///
/// Lock ordering: sweeper list lock -> sweeper pass gate -> cache registry
/// lock -> LargeLock -> AddressRangeMap lock -> partition lock (the
/// registry lock is only ever combined with partition locks, by the
/// thread-exit flush and the sweeper's cache aging; stats() takes it and
/// releases it before touching partitions; the sweeper's pass gate is held
/// across a whole pass, and the list lock only by start/stop/fork
/// handlers). A thread holds at most one partition lock at a time — the
/// sweeper included — with one exception:
/// the stats()/aggregation paths may hold several partition locks *of the
/// same shard* acquired in ascending class order (never locks of two
/// different shards). Overflow routing takes sibling partition locks only
/// after releasing the home partition's lock. Sidecar pushes and the
/// pending gauges are lock-free and sit outside the hierarchy entirely;
/// sidecar drains happen only under the drained partition's lock. The
/// sweeper never holds any lock across a blocking call: its
/// pthread_cond_timedwait releases the pass gate, and every lock it takes
/// during a pass is released before the next wait. Nothing
/// that runs under LargeLock allocates through the global allocator — the
/// large-object validity table is mmap-backed precisely so that, under the
/// malloc shim, the locked large path can never re-enter itself. (The
/// registry's map nodes are small and are therefore served by a shard, a
/// lock this path is allowed to take.)
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_CORE_SHARDEDHEAP_H
#define DIEHARD_CORE_SHARDEDHEAP_H

#include "core/DieHardHeap.h"
#include "core/LargeObjectManager.h"
#include "core/ThreadCache.h"
#include "support/AddressRangeMap.h"
#include "support/Rng.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include <pthread.h>

namespace diehard {

/// Configuration for a ShardedHeap.
struct ShardedHeapOptions {
  /// Per-heap options applied to every shard. Each shard reserves the full
  /// HeapSize, so a thread keeps the configured capacity no matter how
  /// allocations distribute across threads; the cost is virtual address
  /// space (MAP_NORESERVE) and lazily-committed bitmap pages, not physical
  /// memory. Seed seeds shard 0 exactly; shard i derives a decorrelated
  /// stream (Seed of 0 still draws true randomness per shard).
  DieHardOptions Heap;

  /// Number of shards. 0 selects one shard per online CPU. Values are
  /// clamped to [1, MaxShards].
  size_t NumShards = 0;

  /// When a thread's home partition is at its 1/M bound, route the
  /// allocation to the least-loaded sibling shard's same-class partition
  /// instead of failing (see the file comment). No effect with one shard.
  /// The shim maps DIEHARD_OVERFLOW onto this.
  bool OverflowRouting = true;

  /// Lock at partition granularity (default). False degrades every shard
  /// to one coarse lock shared by all twelve partitions — the pre-partition
  /// behaviour — kept as a measurement baseline for bench_mt_scaling's
  /// contention scenario.
  bool PartitionLocking = true;

  /// K: per-thread, per-size-class cached slot count. 0 (default) disables
  /// the thread-cache tier entirely, leaving every operation on the locked
  /// paths — and small-object placement bit-identical to a lone
  /// DieHardHeap in the single-shard configuration. Nonzero enables the
  /// lock-free fast path: batches of K uniformly chosen slots per refill,
  /// and a deferred-free buffer of 2K entries (clamped to
  /// [ThreadCache minimums, ThreadCache::Max*]). The shim maps
  /// DIEHARD_TCACHE onto this.
  size_t ThreadCacheSlots = 0;

  /// Adapt each cache's per-class K to the owning thread's traffic: grow
  /// toward a cap on frequent refills, shrink and return surplus slots on
  /// idle (see the file comment). No effect with ThreadCacheSlots == 0.
  /// The shim maps DIEHARD_TCACHE_ADAPT onto this.
  bool ThreadCacheAdaptive = false;

  /// Start the background epoch sweeper (see the file comment): periodic
  /// sidecar drains, quiet-cache aging, empty-partition page return, and
  /// the pressure table for overflow routing. Off by default — and the
  /// shim forces it off for replicas, whose per-seed determinism a
  /// concurrent maintenance thread would perturb. The shim maps
  /// DIEHARD_SWEEPER onto this.
  bool Sweeper = false;

  /// Milliseconds between sweeper passes. The shim maps DIEHARD_SWEEP_MS
  /// onto this; clamped to >= 1.
  uint32_t SweepIntervalMs = 100;
};

/// Thread-scalable sharded DieHard heap.
///
/// All public methods are thread-safe. Per-partition behaviour (placement
/// randomization, 1/M thresholds, free validation) is delegated to
/// DieHardHeap's RandomizedPartition objects; this layer only adds routing
/// and locking.
class ShardedHeap {
public:
  /// Upper bound on NumShards; keeps token arithmetic and the per-shard
  /// reservation split sane on absurd inputs.
  static constexpr size_t MaxShards = 64;

  /// Overflow routing probes at most this many sibling shards (least
  /// loaded first) before giving up. Bounds the worst-case work of an
  /// allocation at saturation.
  static constexpr size_t MaxOverflowProbes = 8;

  /// Adaptive cache sizing: a class must refill this many times within one
  /// sweep window before its K doubles (the first refill after a quiet
  /// window is free; the second marks the class hot).
  static constexpr uint32_t CacheGrowRefills = 2;

  /// Adaptive cache sizing: one idle-class shrink sweep per this many
  /// slow-path events (refills + deferred flushes) of a cache.
  static constexpr uint32_t CacheSweepPeriod = 32;

  /// Creates the shards per \p Options. As with DieHardHeap, a reservation
  /// failure leaves the heap unusable rather than throwing: isValid() turns
  /// false and every allocation returns nullptr.
  explicit ShardedHeap(
      const ShardedHeapOptions &Options = ShardedHeapOptions());

  ShardedHeap(const ShardedHeap &) = delete;
  ShardedHeap &operator=(const ShardedHeap &) = delete;
  ~ShardedHeap();

  /// True if every shard's backing reservation succeeded.
  bool isValid() const { return Valid; }

  /// Allocates \p Size bytes from the calling thread's home shard — or, if
  /// the home partition is saturated and overflow routing is on, from the
  /// least-loaded sibling shard's same-class partition — or from the shared
  /// large-object path when \p Size exceeds SizeClass::MaxObjectSize.
  /// \returns nullptr on failure, as DieHardHeap.
  void *allocate(size_t Size);

  /// Frees \p Ptr on whichever shard owns it, regardless of which thread
  /// allocated it. Invalid, double and foreign frees are validated by the
  /// owner and ignored, exactly as in DieHardHeap.
  void deallocate(void *Ptr);

  /// C realloc semantics. The object may migrate between shards (the new
  /// block comes from the calling thread's home shard) and across the
  /// small/large boundary.
  void *reallocate(void *Ptr, size_t NewSize);

  /// Zero-initialized allocation (C calloc semantics, overflow-checked).
  void *allocateZeroed(size_t Count, size_t Size);

  /// Usable size of the object containing \p Ptr (see
  /// DieHardHeap::getObjectSize), 0 if \p Ptr is not a live object of any
  /// shard.
  size_t getObjectSize(const void *Ptr) const;

  /// Number of shards (resolved; never 0).
  size_t numShards() const { return Shards.size(); }

  /// Read-only access to shard \p Index's heap, for tests and diagnostics.
  /// The partition fill gauges (live()/liveBytes()/fill()) are safe
  /// concurrently; everything else only when no other thread is mutating
  /// the heap.
  const DieHardHeap &shard(size_t Index) const;

  /// Index of the shard owning \p Ptr, numShards() for a live large object,
  /// or SIZE_MAX if no shard owns it.
  size_t shardIndexOf(const void *Ptr) const;

  /// The calling thread's home shard index.
  size_t homeShardIndex() const { return homeShard(); }

  /// Pins the calling thread's shard token so its home shard becomes
  /// Token % numShards() on every ShardedHeap, replacing whatever token
  /// the thread had (or would have been handed by the process-global
  /// round-robin). Replay harnesses call this — tokens are normally
  /// assigned first-come-first-served across the whole process, so a
  /// thread's home shard depends on how many threads allocated before it
  /// since process start; pinning removes that ambient history from the
  /// placement sequence and makes (input, seed) a complete replay key.
  static void pinThreadToken(uint32_t Token);

  /// Behaviour counters aggregated across every shard, the large-object
  /// path and the thread-cache tier (including OverflowAllocations and the
  /// Cache* fields). Takes each partition lock briefly plus the cache
  /// registry lock; intended for tests and reporting, not hot paths. Exact
  /// when the heap is quiescent; Allocations includes cache-served pops and
  /// Frees includes deferred (not-yet-flushed) frees, so the
  /// Allocations == Frees invariant holds whenever every user object has
  /// been freed, flushed or not.
  DieHardStats stats() const;

  /// Lock-free approximation of stats(): every field is assembled from
  /// relaxed-atomic gauges without taking any partition lock or the cache
  /// registry lock, so observability never contends with allocation. With
  /// the cache tier active, Allocations lags stats() by at most the pops
  /// not yet folded (one refill per thread), Frees by the deferred buffers'
  /// occupancy, and CachedSlots is an overestimate clamped at 0 under
  /// concurrent refills. Equal to stats() when the heap is quiescent and
  /// every cache has been flushed.
  DieHardStats statsApprox() const;

  /// Slots currently claimed into thread caches (exact, under the cache
  /// registry lock). The satellite gauge for "no leaked cached slots":
  /// after every caching thread has exited (or flushed), this is 0.
  size_t cachedSlots() const {
    return threadCacheTally(Caches).CachedSlots;
  }

  /// Flushes the calling thread's cache for this heap, if any: deferred
  /// frees are returned to their owning partitions and unused cached slots
  /// are reclaimed. The cache stays installed (and refills on next use).
  void flushThreadCache();

  /// Drains every partition's remote-free sidecar (one partition lock at a
  /// time), materializing all in-flight cross-shard frees. Allocation
  /// paths drain opportunistically, so this is only needed to force
  /// quiescence — tests, teardown audits, the stats dump. \returns the
  /// number of entries drained.
  size_t drainRemoteFrees();

  /// Sidecar pushes accepted across all partitions. Lock-free read.
  uint64_t remoteFrees() const;

  /// Sidecar pushes not yet drained, across all partitions. Lock-free.
  uint64_t pendingRemoteFrees() const;

  /// Push-time sidecar rejects (double/invalid cross-shard frees caught at
  /// the CAS, before ever reaching a partition lock), across all
  /// partitions. Already folded into stats().IgnoredFrees; exposed
  /// separately so tests can pin down *which* path caught an injected
  /// error. Lock-free read.
  uint64_t remoteFreeRejects() const;

  /// The calling thread's current adaptive batch size K for size class
  /// \p Class — ThreadCacheSlots until adaptation moves it — or 0 when the
  /// cache tier is off, \p Class is out of range, or this thread has no
  /// cache installed yet (the query never installs one). The dlsym
  /// observability hook diehard_tcache_target_k() lands here.
  size_t threadCacheTargetK(int Class) const;

  /// Internal: full flush on behalf of the thread-exit destructor. Called
  /// by threadCacheExitFlush() under the cache registry lock; not part of
  /// the public surface.
  void flushCacheAtThreadExit(ThreadCache &TC) { flushCacheFully(TC); }

  /// Internal: full flush of a quiet thread's seized cache on behalf of
  /// the sweeper (threadCacheAgeQuiet, under the cache registry lock).
  /// Skips the adaptive-sizing bookkeeping — that state is owner-private
  /// plain words the sweeper must not touch. Not part of the public
  /// surface.
  void flushCacheAged(ThreadCache &TC) {
    flushCacheFully(TC, /*Adapt=*/false);
  }

  /// Runs one synchronous sweeper pass on the calling thread (serialized
  /// with the background thread through the pass gate). Only meaningful
  /// with Options.Sweeper on; tests pair it with a long SweepIntervalMs to
  /// drive deterministic epochs. The caller must hold no heap lock.
  /// \returns the number of sidecar entries the pass drained.
  size_t sweepNow();

  /// Completed sweeper passes (the epoch counter). Lock-free read.
  uint64_t sweepPasses() const {
    return SweepPassCount.load(std::memory_order_relaxed);
  }

  /// Quiet thread caches aged out by the sweeper. Lock-free read.
  uint64_t agedCaches() const {
    return AgedCacheCount.load(std::memory_order_relaxed);
  }

  /// Object-free data pages returned to the OS by the span scanner, across
  /// all shards. Lock-free read.
  uint64_t pagesReturned() const;

  /// Partition maintain() scans that released at least one page, across
  /// all shards. Lock-free read.
  uint64_t partialReturns() const;

  /// Contiguous page runs advised away (one madvise call each), across all
  /// shards. Lock-free read.
  uint64_t spansReleased() const;

  /// Donor pages currently-or-ever meshed onto a survivor's physical frame
  /// by the sweeper's mesh passes, across all shards (monotonic counter,
  /// not a gauge). Lock-free read.
  uint64_t pagesMeshed() const;

  /// Physical bytes reclaimed by meshing, across all shards. Lock-free
  /// read.
  uint64_t meshedBytes() const;

  /// Fill-ratio gate for the sweeper's partial page return and mesh
  /// scans: partitions fuller than this are skipped by the pass (a
  /// mostly-set bitmap walk finds few releasable pages for its cost; the
  /// partition will be scanned once it quiets down). Exposed so tests can
  /// pin workloads on either side of the gate.
  ///
  /// Re-tuned against bench_space's fragmentation scenario when meshing
  /// landed: the scenario idles at fill ~0.05 and produced identical RSS
  /// trajectories and mesh counts with the gate at 0.25 and 0.5, so the
  /// value is insensitive where it matters and 0.5 stands. It is also the
  /// right shape for meshing specifically — at fill 0.5 (1/(2M) of the
  /// slots, ~16 of 64 objects per 4 KB page for the 64 B class) randomly
  /// placed pages almost never have disjoint slot masks, so scanning
  /// fuller partitions for mesh pairs would burn bitmap walks on pages
  /// that cannot pair.
  static constexpr double PartialReturnFillGate = 0.5;

  /// True when the epoch sweeper is configured and its thread started.
  bool sweeperEnabled() const { return SweeperOn; }

  /// Allocations that were served by a sibling shard because the home
  /// partition was at its 1/M bound. Lock-free read.
  uint64_t overflowAllocations() const {
    return OverflowCount.load(std::memory_order_relaxed);
  }

  /// Small allocations that failed outright with overflow routing on (home
  /// and every probed sibling saturated). Folded into
  /// stats().FailedAllocations; exposed separately for exactly-once
  /// counter tests. Lock-free read.
  uint64_t overflowFailedAllocations() const {
    return OverflowFailedCount.load(std::memory_order_relaxed);
  }

  /// Wild reallocs refused: reallocate() of a pointer no shard or large
  /// object owns returns nullptr without touching any state, and counts
  /// here (and in stats().ReallocRejects). Lock-free read.
  uint64_t reallocRejects() const {
    return ReallocRejectCount.load(std::memory_order_relaxed);
  }

  /// Fill level of class \p Class on shard \p ShardIndex relative to its
  /// 1/M threshold, in [0, 1]. Lock-free gauge (see
  /// RandomizedPartition::fill).
  double partitionFill(size_t ShardIndex, int Class) const {
    return shard(ShardIndex).partition(Class).fill();
  }

  /// Bytes currently live across all shards and large objects.
  size_t bytesLive() const;

  /// Number of live large objects.
  size_t liveLargeObjects() const;

  /// The resolved seed of shard 0 (equal to DieHardHeap::seed() of a
  /// single-shard heap with the same options).
  uint64_t seed() const;

  /// The options this instance was built with (NumShards as passed, possibly
  /// 0; numShards() reports the resolved count).
  const ShardedHeapOptions &options() const { return Opts; }

  /// One shard per online CPU, clamped to [1, MaxShards].
  static size_t defaultShardCount();

private:
  /// A mutex alone on its cache lines so partition locks never false-share
  /// with each other or with the heap they guard.
  struct alignas(64) PaddedMutex {
    mutable std::mutex M;
  };

  /// A DieHardHeap plus one lock per size-class partition.
  struct Shard {
    explicit Shard(const DieHardOptions &HeapOpts) : Heap(HeapOpts) {}
    PaddedMutex Locks[DieHardHeap::NumPartitions];
    DieHardHeap Heap;
  };

  /// The lock guarding partition \p Class of \p S. With PartitionLocking
  /// off, every class maps to lock 0 (one coarse lock per shard).
  std::mutex &partitionLock(const Shard &S, int Class) const {
    return S.Locks[Opts.PartitionLocking ? Class : 0].M;
  }

  /// Returns the calling thread's home shard index (assigning a token on
  /// first use).
  uint32_t homeShard() const;

  /// Resolves the owner of \p Ptr: a shard index, LargeOwner, or
  /// AddressRangeMap::NoOwner. Shard reservations are matched lock-free
  /// against the immutable range array; only the (rarer) large-object case
  /// touches the registry's lock.
  uint32_t ownerOf(const void *Ptr) const;

  /// getObjectSize / deallocate against an already-resolved owner.
  size_t sizeOfOwned(const void *Ptr, uint32_t Owner) const;
  void deallocateOwned(void *Ptr, uint32_t Owner);

  /// Free with an already-resolved owner, parking small-object frees in
  /// the calling thread's deferred buffer when the cache tier is on;
  /// everything else (large, foreign, no cache) goes to deallocateOwned.
  void deferOrDeallocate(void *Ptr, uint32_t Owner);

  /// The calling thread's cache, created on first use; nullptr when the
  /// tier is disabled or installation failed (callers use the locked
  /// paths).
  ThreadCache *cacheForThread();

  /// Refills \p TC's class-\p Class buffer with one locked batch claim of
  /// the cache's current K from the home partition (draining the
  /// partition's sidecar first, since the lock is held anyway) and pops
  /// the first slot. Runs the adaptive grow/sweep bookkeeping when
  /// enabled. \returns nullptr if the home partition is saturated (the
  /// caller falls back to the locked path, which may route overflow to a
  /// sibling).
  void *refillAndPop(ThreadCache &TC, int Class);

  /// Adaptive sizing, post-refill: marks \p Class hot (doubling its K
  /// toward the cap on repeated refills) and runs the periodic idle sweep.
  void adaptAfterRefill(ThreadCache &TC, int Class);

  /// Adaptive sizing: every CacheSweepPeriod slow-path events, halve the K
  /// of classes with no refill since the last sweep and return any cached
  /// surplus above the new K to the home partition.
  void maybeSweepCache(ThreadCache &TC);

  /// Returns every deferred free to its owning partition: one locked batch
  /// per home-shard (owner, class) group, lock-free sidecar pushes for
  /// groups owned by other shards. \p Adapt false (the sweeper's aged
  /// flush) skips the adaptive idle sweep, whose bookkeeping is
  /// owner-private.
  void flushDeferred(ThreadCache &TC, bool Adapt = true);

  /// flushDeferred plus reclamation of all unused cached slots and a fold
  /// of the cache's counters into the heap aggregates.
  void flushCacheFully(ThreadCache &TC, bool Adapt = true);

  /// The heap-level relaxed gauges common to stats() and statsApprox()
  /// (large path, foreign frees, overflow, cache refill/flush counters,
  /// folded pops). Lock-free.
  DieHardStats sharedCounterSnapshot() const;

  /// Locks class \p Class of shard \p Index and allocates \p Size bytes.
  void *allocateSmallIn(uint32_t Index, int Class, size_t Size);

  /// The overflow slow path: \p Home's class-\p Class partition refused the
  /// allocation; probe up to MaxOverflowProbes sibling shards in ascending
  /// fill order — ranked from the sweeper's pressure table when it is
  /// running, from the live gauges otherwise (and as the fallback when
  /// every table-ranked probe fails, so a stale table entry can never turn
  /// into a spurious allocation failure). \returns nullptr if every probed
  /// sibling is saturated too.
  void *allocateOverflow(uint32_t Home, int Class, size_t Size);

  /// One ranking-and-probing round of allocateOverflow. \p UseTable picks
  /// the pressure table or the direct gauges as the ranking source.
  void *overflowProbe(uint32_t Home, int Class, size_t Size, bool UseTable);

  // --- Epoch sweeper (see the file comment) -------------------------------

  /// Starts/stops the background sweeper thread (constructor tail /
  /// destructor head; the stop precedes cache retirement so the sweeper
  /// can never touch a dying registry).
  void startSweeper();
  void stopSweeper();

  /// One maintenance pass: age quiet caches, maintain every pressured
  /// partition (one partition lock at a time), publish the pressure table,
  /// advance the epoch. Runs with the pass gate held. \returns sidecar
  /// entries drained.
  size_t sweepOnce();

  /// The sweeper thread body: timed waits on the pass gate interleaved
  /// with sweepOnce() until stop is requested.
  static void *sweeperMain(void *Arg);

  /// Fork handlers: prepare holds the list lock and every sweeper's pass
  /// gate across the fork (no sweeper is mid-pass in the child); the child
  /// marks every sweeper thread as gone — sweepers are not respawned after
  /// fork.
  static void sweeperAtforkPrepare();
  static void sweeperAtforkParent();
  static void sweeperAtforkChild();

  /// Large-object path (caller verified Size > SizeClass::MaxObjectSize).
  void *allocateLarge(size_t Size);
  void deallocateLarge(void *Ptr);

  ShardedHeapOptions Opts;
  bool Valid = false;
  std::vector<std::unique_ptr<Shard>> Shards;

  /// Owner id used for large objects (== numShards()).
  uint32_t LargeOwner = 0;

  /// One [begin, end) per shard, fixed at construction and read without
  /// locks by ownerOf().
  struct ShardRange {
    uintptr_t Begin;
    uintptr_t End;
  };
  std::vector<ShardRange> ShardRanges;

  /// Live large objects only. Mutated exclusively under LargeLock, so a
  /// concurrent unmap-then-remap of the same address cannot drop a fresh
  /// entry.
  AddressRangeMap Registry;

  mutable std::mutex LargeLock;
  LargeObjectManager LargeObjects;
  Rng LargeRand; ///< Fills large objects in replica mode.

  // Large-path counters: mutated only under LargeLock, RelaxedCounter so
  // stats()/statsApprox()/bytesLive() read them without it.
  RelaxedCounter LargeAllocCount;
  RelaxedCounter LargeFreeCount;
  RelaxedCounter LargeFailedCount;
  RelaxedCounter LargeIgnoredFrees;
  RelaxedCounter LargeLiveBytes;

  // --- Thread-cache tier ---------------------------------------------------

  /// Unique id of this heap instance (never reused), the key thread-local
  /// cache memos match against.
  uint64_t Id = 0;

  /// Resolved per-class cache batch size K (0 = tier disabled) and
  /// deferred buffer capacity. With adaptive sizing, K is only each
  /// cache's starting point: per-class targets move within
  /// [CacheMinK, CacheCapPerClass], and buffers are sized for the cap.
  uint32_t CacheSlotsPerClass = 0;
  uint32_t CacheDeferredCap = 0;
  bool CacheAdaptive = false;
  uint32_t CacheMinK = 0;
  uint32_t CacheCapPerClass = 0;

  /// Registry of this heap's live caches (guarded by the process-global
  /// cache registry lock in ThreadCache.cpp).
  ThreadCacheAnchor Caches;

  /// Cache-tier aggregates. Pops fold in at refill/flush boundaries so the
  /// per-allocation fast path touches no shared atomics.
  std::atomic<uint64_t> FoldedPops{0};
  std::atomic<uint64_t> CacheRefillCount{0};
  std::atomic<uint64_t> CacheFlushCount{0};

  /// Allocations served by a sibling shard (home partition saturated).
  std::atomic<uint64_t> OverflowCount{0};

  /// Small allocations that failed outright with routing on (home and
  /// every viable sibling saturated). Saturated partitions are skipped by
  /// gauge on this path, so their FailedAllocations counters stay
  /// meaningful ("refusals the caller saw"), and the whole-request
  /// failure is recorded here instead.
  std::atomic<uint64_t> OverflowFailedCount{0};

  /// Wild reallocs refused (pointer owned by no shard or large object).
  std::atomic<uint64_t> ReallocRejectCount{0};

  /// Frees of pointers no shard or large object owns (e.g. pre-shim
  /// allocations of the dynamic loader). Atomic so the foreign-free path
  /// does not contend with the syscall-heavy large path.
  mutable std::atomic<uint64_t> ForeignFrees{0};

  // --- Epoch sweeper state -------------------------------------------------

  /// Embedded sweeper thread state: no allocation anywhere in sweeper
  /// bookkeeping (shim-safe). The pass gate (Lock) is held for the whole
  /// of every pass and released inside the timed wait between passes,
  /// which is exactly what the fork prepare handler and sweepNow()
  /// serialize against.
  struct SweeperState {
    pthread_t Thread{};
    pthread_mutex_t Lock = PTHREAD_MUTEX_INITIALIZER;
    pthread_cond_t Wake = PTHREAD_COND_INITIALIZER;
    /// The thread exists and must be joined. Cleared only by stopSweeper()
    /// and by the atfork child handler (the thread does not survive fork).
    bool Running = false;
    bool StopRequested = false;
  };
  SweeperState Sweep;

  /// True once the sweeper thread started; constant afterwards. Gates the
  /// owner-side op brackets and the pressure-table ranking, so the default
  /// configuration pays nothing.
  bool SweeperOn = false;

  /// Intrusive link in the process-global list of sweeper-enabled heaps
  /// (for the fork handlers). Guarded by the list lock in ShardedHeap.cpp.
  ShardedHeap *SweeperNext = nullptr;

  /// Completed sweeper passes; doubles as the cache-aging epoch.
  std::atomic<uint64_t> SweepPassCount{0};

  /// Quiet caches aged out by the sweeper.
  std::atomic<uint64_t> AgedCacheCount{0};

  /// The published per-(shard, class) pressure table: live objects net of
  /// pending sidecar entries, refreshed once per sweep pass. Overflow
  /// routing ranks siblings from this instead of probing every sibling's
  /// gauges per allocation when the sweeper runs.
  std::atomic<uint32_t> Pressure[MaxShards * DieHardHeap::NumPartitions] =
      {};

  /// RAII owner-side bracket for the sweeper handshake; a no-op until the
  /// sweeper is on.
  class CacheOpGuard {
  public:
    CacheOpGuard(const ShardedHeap &H, ThreadCache &Cache)
        : Active(H.SweeperOn), TC(Cache) {
      if (!Active)
        return;
      TC.beginOp();
      if (TC.seizedBySweeper())
        threadCacheUnseize(TC);
    }
    ~CacheOpGuard() {
      if (Active)
        TC.endOp();
    }
    CacheOpGuard(const CacheOpGuard &) = delete;
    CacheOpGuard &operator=(const CacheOpGuard &) = delete;

  private:
    bool Active;
    ThreadCache &TC;
  };
};

} // namespace diehard

#endif // DIEHARD_CORE_SHARDEDHEAP_H
