//===- core/ShardedHeap.h - per-thread DieHard heap shards ------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-scalable front end over N independent DieHardHeap shards. The
/// paper's probabilistic-safety argument (Section 3) only requires that each
/// randomized heap place objects uniformly within its own partitions, so the
/// heap can be sharded per thread without weakening the miss-probability
/// bounds: every shard is a full M-approximation of an infinite heap for the
/// threads it serves, and the analysis in src/analysis applies per shard
/// unchanged.
///
/// Each thread is pinned to a home shard by a cheap thread-local token
/// (round-robin assignment on first allocation), so the common malloc/free
/// pattern — free on the thread that allocated — touches exactly one
/// per-shard mutex and scales with the number of cores. Frees, reallocs and
/// size queries of pointers owned by *another* shard are routed to the
/// owner by address: shard reservations are immutable after construction,
/// so they are matched against a lock-free array of ranges, and live large
/// objects (which come and go) are looked up in an AddressRangeMap under a
/// shared lock. Objects above SizeClass::MaxObjectSize bypass the shards
/// entirely and go to one shared LargeObjectManager behind its own lock, so
/// large-object traffic never serializes small-object traffic.
///
/// With NumShards == 1, small-object behaviour is bit-identical to a lone
/// DieHardHeap with the same options: one shard, same seed, same RNG stream,
/// same slots (a unit test enforces this). The one divergence is replicated
/// mode with large objects: a lone DieHardHeap fills those from the same
/// stream that drives small-object placement, while this layer fills them
/// from a dedicated stream — placement remains deterministic per seed
/// (which is the invariant replica voting needs; replicas all run this
/// code), it just differs from the unsharded heap's sequence. Replicas run
/// one shard so scheduling cannot perturb their allocation order.
///
/// Lock ordering (a thread may hold at most one of each, acquired left to
/// right): LargeLock -> AddressRangeMap lock -> shard lock. Nothing that
/// runs under LargeLock allocates through the global allocator — the
/// large-object validity table is mmap-backed precisely so that, under the
/// malloc shim, the locked large path can never re-enter itself. (The
/// registry's map nodes are small and are therefore served by a shard, a
/// lock this path is allowed to take.)
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_CORE_SHARDEDHEAP_H
#define DIEHARD_CORE_SHARDEDHEAP_H

#include "core/DieHardHeap.h"
#include "core/LargeObjectManager.h"
#include "support/AddressRangeMap.h"
#include "support/Rng.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace diehard {

/// Configuration for a ShardedHeap.
struct ShardedHeapOptions {
  /// Per-heap options applied to every shard. Each shard reserves the full
  /// HeapSize, so a thread keeps the configured capacity no matter how
  /// allocations distribute across threads; the cost is virtual address
  /// space (MAP_NORESERVE) and lazily-committed bitmap pages, not physical
  /// memory. Seed seeds shard 0 exactly; shard i derives a decorrelated
  /// stream (Seed of 0 still draws true randomness per shard).
  DieHardOptions Heap;

  /// Number of shards. 0 selects one shard per online CPU. Values are
  /// clamped to [1, MaxShards].
  size_t NumShards = 0;
};

/// Thread-scalable sharded DieHard heap.
///
/// All public methods are thread-safe. Per-shard behaviour (placement
/// randomization, 1/M thresholds, free validation) is delegated to
/// DieHardHeap; this layer only adds routing and locking.
class ShardedHeap {
public:
  /// Upper bound on NumShards; keeps token arithmetic and the per-shard
  /// reservation split sane on absurd inputs.
  static constexpr size_t MaxShards = 64;

  /// Creates the shards per \p Options. As with DieHardHeap, a reservation
  /// failure leaves the heap unusable rather than throwing: isValid() turns
  /// false and every allocation returns nullptr.
  explicit ShardedHeap(const ShardedHeapOptions &Options = ShardedHeapOptions());

  ShardedHeap(const ShardedHeap &) = delete;
  ShardedHeap &operator=(const ShardedHeap &) = delete;
  ~ShardedHeap();

  /// True if every shard's backing reservation succeeded.
  bool isValid() const { return Valid; }

  /// Allocates \p Size bytes from the calling thread's home shard, or from
  /// the shared large-object path when \p Size exceeds
  /// SizeClass::MaxObjectSize. \returns nullptr on failure, as DieHardHeap.
  void *allocate(size_t Size);

  /// Frees \p Ptr on whichever shard owns it, regardless of which thread
  /// allocated it. Invalid, double and foreign frees are validated by the
  /// owner and ignored, exactly as in DieHardHeap.
  void deallocate(void *Ptr);

  /// C realloc semantics. The object may migrate between shards (the new
  /// block comes from the calling thread's home shard) and across the
  /// small/large boundary.
  void *reallocate(void *Ptr, size_t NewSize);

  /// Zero-initialized allocation (C calloc semantics, overflow-checked).
  void *allocateZeroed(size_t Count, size_t Size);

  /// Usable size of the object containing \p Ptr (see
  /// DieHardHeap::getObjectSize), 0 if \p Ptr is not a live object of any
  /// shard.
  size_t getObjectSize(const void *Ptr) const;

  /// Number of shards (resolved; never 0).
  size_t numShards() const { return Shards.size(); }

  /// Read-only access to shard \p Index's heap, for tests and diagnostics.
  /// Only safe when no other thread is mutating the heap.
  const DieHardHeap &shard(size_t Index) const;

  /// Index of the shard owning \p Ptr, numShards() for a live large object,
  /// or SIZE_MAX if no shard owns it.
  size_t shardIndexOf(const void *Ptr) const;

  /// The calling thread's home shard index.
  size_t homeShardIndex() const { return homeShard(); }

  /// Behaviour counters aggregated across every shard and the large-object
  /// path. Takes every lock briefly; intended for tests and reporting, not
  /// hot paths.
  DieHardStats stats() const;

  /// Bytes currently live across all shards and large objects.
  size_t bytesLive() const;

  /// Number of live large objects.
  size_t liveLargeObjects() const;

  /// The resolved seed of shard 0 (equal to DieHardHeap::seed() of a
  /// single-shard heap with the same options).
  uint64_t seed() const;

  /// The options this instance was built with (NumShards as passed, possibly
  /// 0; numShards() reports the resolved count).
  const ShardedHeapOptions &options() const { return Opts; }

  /// One shard per online CPU, clamped to [1, MaxShards].
  static size_t defaultShardCount();

private:
  /// A DieHardHeap plus its lock, padded onto its own cache lines so shard
  /// locks do not false-share.
  struct alignas(64) Shard {
    explicit Shard(const DieHardOptions &HeapOpts) : Heap(HeapOpts) {}
    mutable std::mutex Lock;
    DieHardHeap Heap;
  };

  /// Returns the calling thread's home shard index (assigning a token on
  /// first use).
  uint32_t homeShard() const;

  /// Resolves the owner of \p Ptr: a shard index, LargeOwner, or
  /// AddressRangeMap::NoOwner. Shard reservations are matched lock-free
  /// against the immutable range array; only the (rarer) large-object case
  /// touches the registry's lock.
  uint32_t ownerOf(const void *Ptr) const;

  /// getObjectSize / deallocate against an already-resolved owner.
  size_t sizeOfOwned(const void *Ptr, uint32_t Owner) const;
  void deallocateOwned(void *Ptr, uint32_t Owner);

  /// Large-object path (caller verified Size > SizeClass::MaxObjectSize).
  void *allocateLarge(size_t Size);
  void deallocateLarge(void *Ptr);

  ShardedHeapOptions Opts;
  bool Valid = false;
  std::vector<std::unique_ptr<Shard>> Shards;

  /// Owner id used for large objects (== numShards()).
  uint32_t LargeOwner = 0;

  /// One [begin, end) per shard, fixed at construction and read without
  /// locks by ownerOf().
  struct ShardRange {
    uintptr_t Begin;
    uintptr_t End;
  };
  std::vector<ShardRange> ShardRanges;

  /// Live large objects only. Mutated exclusively under LargeLock, so a
  /// concurrent unmap-then-remap of the same address cannot drop a fresh
  /// entry.
  AddressRangeMap Registry;

  mutable std::mutex LargeLock;
  LargeObjectManager LargeObjects;
  Rng LargeRand;                ///< Fills large objects in replica mode.
  DieHardStats LargeStats;      ///< Large-path counters (under LargeLock).
  size_t LargeLiveBytes = 0;

  /// Frees of pointers no shard or large object owns (e.g. pre-shim
  /// allocations of the dynamic loader). Atomic so the foreign-free path
  /// does not contend with the syscall-heavy large path.
  mutable std::atomic<uint64_t> ForeignFrees{0};
};

} // namespace diehard

#endif // DIEHARD_CORE_SHARDEDHEAP_H
