//===- core/RandomizedPartition.h - one size-class miniheap -----*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One size class's randomized region, extracted from the DieHardHeap
/// monolith. The paper's safety argument (Sections 3-4) is stated per
/// partition: each power-of-two region is an independent M-approximation of
/// an infinite heap with its own allocation bitmap, 1/M fill bound, and
/// uniform random placement. Materializing that unit as a class gives the
/// layers above a natural locking granularity — two threads touching
/// different size classes of the same heap share no partition state — and
/// gives each partition its own RNG stream, derived from the heap seed, so
/// partitions can be driven concurrently without serializing on a shared
/// generator.
///
/// A partition is a slab of `Slots` objects of one rounded size inside the
/// owning heap's reservation. It owns the allocation bitmap (stored far from
/// the heap, Section 4.1), the live count, the 1/M threshold, live-byte
/// accounting, the probe/fallback placement logic of Figure 2, and the
/// replicated-mode random-fill behaviour for its objects.
///
/// Thread safety: none by itself, by design — the sharded layer wraps each
/// partition in its own cache-line-padded lock. The live()/liveBytes()
/// gauges are relaxed atomics so overflow routing and stats reporting may
/// *read* them without taking the partition's lock.
///
/// The one concurrent structure a partition does own is the remote-free
/// sidecar: a lock-free MPSC intrusive stack of slot indices (Treiber push
/// from any thread, owner-side drain under the partition lock) that lets a
/// cross-thread free hand a slot back without ever touching the owner's
/// lock. Pushed slots stay bit-set and counted in the live gauge until the
/// owner drains them, so the 1/M fill invariant holds with frees in flight,
/// and the drain runs the ordinary validated deallocate() per slot, so
/// double-/invalid-free detection is preserved — it just happens at drain
/// time (or at push time, when the same slot is pushed twice before a
/// drain).
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_CORE_RANDOMIZEDPARTITION_H
#define DIEHARD_CORE_RANDOMIZEDPARTITION_H

#include "support/Bitmap.h"
#include "support/MmapRegion.h"
#include "support/Rng.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace diehard {

/// A counter mutated only under an external lock (the partition lock in
/// concurrent configurations) but readable by anyone without it. The store
/// and load are relaxed atomics — on mainstream hardware a plain move — so
/// the mutation stays as cheap as a non-atomic increment while unlocked
/// readers (statsApprox(), the shim's stats dump) stay race-free. NOT an
/// atomic counter: concurrent unsynchronized writers would lose updates,
/// which is exactly why writes require the owner's lock.
class RelaxedCounter {
public:
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter &) = delete;
  RelaxedCounter &operator=(const RelaxedCounter &) = delete;

  RelaxedCounter &operator++() {
    add(1);
    return *this;
  }
  RelaxedCounter &operator+=(uint64_t N) {
    add(N);
    return *this;
  }
  RelaxedCounter &operator-=(uint64_t N) {
    Value.store(Value.load(std::memory_order_relaxed) - N,
                std::memory_order_relaxed);
    return *this;
  }
  /// Lock-free read.
  operator uint64_t() const { return Value.load(std::memory_order_relaxed); }

private:
  void add(uint64_t N) {
    Value.store(Value.load(std::memory_order_relaxed) + N,
                std::memory_order_relaxed);
  }
  std::atomic<uint64_t> Value{0};
};

/// Behaviour counters of a single partition. Mutated only by the partition's
/// owner (under the partition lock in concurrent configurations); each field
/// is a RelaxedCounter so lock-free snapshots may read them concurrently.
struct PartitionStats {
  RelaxedCounter Allocations;       ///< Successful allocations.
  RelaxedCounter Frees;             ///< Successful frees.
  RelaxedCounter FailedAllocations; ///< Requests refused (1/M bound reached).
  RelaxedCounter IgnoredFrees;      ///< Invalid/double frees ignored.
  RelaxedCounter Probes;            ///< Bitmap probes across all allocations.
  RelaxedCounter ProbeFallbacks;    ///< Times the linear fallback scan ran.
  RelaxedCounter ClaimedSlots;      ///< Slots handed to thread caches.
  RelaxedCounter ReturnedSlots;     ///< Unused cached slots handed back.
  RelaxedCounter SidecarDrains;     ///< Non-empty remote-free drains.
  RelaxedCounter SweeperDrained;    ///< Sidecar entries drained by maintain().
  RelaxedCounter PagesReturned;     ///< Object-free data pages handed back to
                                    ///< the OS by the span scanner.
  RelaxedCounter PartialReturns;    ///< maintain() scans that released pages.
  RelaxedCounter SpansReleased;     ///< Contiguous page runs advised away
                                    ///< (one madvise call each).
  RelaxedCounter MeshCandidates;    ///< Disjoint page pairs the mesh scan
                                    ///< identified (attempted meshes).
  RelaxedCounter PagesMeshed;       ///< Donor pages remapped onto a
                                    ///< survivor's physical frame.
  RelaxedCounter MeshedBytes;       ///< Physical bytes reclaimed by meshing
                                    ///< (PagesMeshed * page size).
};

/// Claims a free slot in \p Bits: up to 64 uniform random probes, then a
/// linear fallback scan from a random start (Figure 2's termination
/// guarantee without measurably biasing placement). The claimed bit is set
/// before returning. \returns the slot index, or \p Slots if every bit is
/// set. \p Probes and \p Fallbacks are incremented in place so callers can
/// keep their own counter domains.
size_t claimRandomSlot(Bitmap &Bits, Rng &Rand, size_t Slots,
                       uint64_t &Probes, uint64_t &Fallbacks);

/// Fills \p Bytes bytes at \p Ptr from \p Rand in 32-bit units, as in
/// Figure 2 of the paper (the replicated-mode fill; callers pass sizes
/// already rounded to a multiple of 4). Shared by the partitions, both
/// heaps' large-object paths, and the adaptive heap.
void randomFillWords(Rng &Rand, void *Ptr, size_t Bytes);

/// One size class's randomized region: bitmap, 1/M threshold, RNG stream,
/// and accounting. See the file comment for the design rationale.
class RandomizedPartition {
public:
  RandomizedPartition() = default;
  RandomizedPartition(const RandomizedPartition &) = delete;
  RandomizedPartition &operator=(const RandomizedPartition &) = delete;

  /// Binds the partition to the \p NumSlots objects of \p ObjectBytes each
  /// starting at \p RegionBase, installs the 1/M threshold, and seeds the
  /// partition's RNG with \p StreamSeed (a per-class stream derived from
  /// the heap seed). \p FillOnAllocate / \p FillOnFree select the
  /// replicated-mode random-fill behaviour (Section 3.2). \returns false if
  /// the bitmap mapping failed, in which case the partition is unusable.
  bool init(void *RegionBase, size_t ObjectBytes, size_t NumSlots, double M,
            uint64_t StreamSeed, bool FillOnAllocate, bool FillOnFree);

  /// Random-probe allocation of one object (Figure 2). \returns nullptr
  /// when the partition is at its 1/M threshold.
  void *allocate();

  /// Batch claim for the thread-cache tier: claims up to \p MaxCount slots,
  /// each chosen by the same uniform probe discipline as allocate() (so a
  /// refill draws from exactly the distribution a sequence of allocate()
  /// calls would), and writes their object pointers to \p Out in shuffled
  /// order. Claimed slots are counted as live immediately — they occupy
  /// bitmap bits and the InUse gauge, so the 1/M bound holds with slots
  /// sitting in caches — but are NOT counted as Allocations (the cache
  /// layer counts the user-visible pop). \returns the number of slots
  /// claimed: fewer than \p MaxCount when the 1/M threshold is near, 0 when
  /// the partition is saturated (without counting a FailedAllocation — the
  /// caller decides whether the request as a whole failed).
  size_t claimRandomSlots(void **Out, size_t MaxCount);

  /// Returns \p Count slots previously obtained from claimRandomSlots() and
  /// never handed to a user: clears their bits and live accounting without
  /// touching the Allocations/Frees counters or the free-fill behaviour.
  void reclaimSlots(void *const *Ptrs, size_t Count);

  /// Validated free. The pointer must lie inside this partition's region;
  /// wrong slot offsets, double frees and dead slots are counted and
  /// ignored. \returns true if an object was actually freed.
  bool deallocate(void *Ptr);

  /// Validated batch free under one lock acquisition: deallocate() for each
  /// of the \p Count pointers (all of which must lie in this partition's
  /// region). \returns the number of objects actually freed.
  size_t deallocateBatch(void *const *Ptrs, size_t Count);

  /// Lock-free cross-thread free: pushes \p Ptr's slot onto the partition's
  /// MPSC remote-free sidecar without taking any lock. The slot stays
  /// bit-set and counted live until the owner drains it, so the 1/M bound
  /// is unaffected by frees in flight. Misaligned pointers and slots
  /// already pending in the sidecar (a double free racing a drain) are
  /// rejected and counted immediately; everything else is validated by the
  /// ordinary deallocate() when the owner drains. Callable from any thread,
  /// with or without the partition lock. \p Ptr must lie inside this
  /// partition's region.
  void remoteFree(void *Ptr);

  /// Owner-side drain of the remote-free sidecar: detaches the pushed chain
  /// in one atomic exchange and runs the validated deallocate() for every
  /// entry. Callers hold the partition lock in concurrent configurations
  /// (any lock holder may drain — "owner" means the lock, not a thread).
  /// \returns the number of entries processed (freed or rejected as
  /// double/invalid frees).
  size_t drainRemoteFrees();

  /// Result of one maintain() pass.
  struct MaintainOutcome {
    size_t Drained = 0;       ///< Sidecar entries processed.
    size_t PagesReturned = 0; ///< Whole pages handed back to the OS.
    size_t SpansReleased = 0; ///< Contiguous page runs advised away.
    size_t PagesMeshed = 0;   ///< Donor pages meshed onto survivors.
  };

  /// Epoch-maintenance entry for the background sweeper. Drains the
  /// remote-free sidecar through the validated deallocate() path (so
  /// double-free detection fires exactly as an owner drain would), then
  /// runs the free-span scanner: every maximal run of clear bits is mapped
  /// to the pages lying entirely inside it (a page overlapped by any
  /// bit-set slot — live, cache-claimed, or sidecar-pending — is never
  /// touched, which handles objects straddling page boundaries for free),
  /// and each not-yet-released sub-run of those pages is returned to the OS
  /// through MmapRegion::releasePageRange under the process page-return
  /// policy. Only demand-zero object pages are dropped; the bitmap, live
  /// gauges, and threshold are untouched, so the 1/M bound and free
  /// validation never consult residency. The scan is gated on a free-stamp
  /// (no frees since the last scan means no new clear bits, so repeated
  /// sweeps of an idle heap cost two relaxed loads and no bitmap walk) and
  /// skipped entirely for replicated-fill partitions (FillOnAllocate),
  /// whose pre-randomized contents a refault would destroy. Callers hold
  /// the partition lock in concurrent configurations.
  MaintainOutcome maintain();

  /// True while any of the partition's data pages are returned to the OS
  /// (set by maintain()'s span scanner, cleared per page by allocations
  /// landing on it). Lock-free gauge.
  bool pagesReleased() const {
    return ReleasedPages.load(std::memory_order_relaxed) != 0;
  }

  /// Number of data pages currently returned to the OS. Lock-free gauge.
  size_t releasedPages() const {
    return ReleasedPages.load(std::memory_order_relaxed);
  }

  /// True if a maintain() call now could plausibly release pages: the
  /// partition has releasable geometry, frees have happened since the last
  /// span scan, and the fill level is at or below \p FillGate (the sweeper
  /// skips hot partitions — scanning a bitmap that is mostly set walks
  /// memory for nothing). Lock-free pre-check; the authoritative re-check
  /// happens under the partition lock inside maintain().
  bool pageScanPending(double FillGate) const {
    if (NumDataPages == 0 || FillOnAllocate)
      return false;
    uint64_t Stamp = Stats.Frees + Stats.ReturnedSlots;
    if (Stamp == LastScanFreeStamp.load(std::memory_order_relaxed))
      return false;
    return fill() <= FillGate;
  }

  /// Enables page meshing for this partition. \p Backing must be the
  /// meshable (memfd-backed) region the partition's slots live in; the
  /// partition allocates its per-page mesh bookkeeping (partner table +
  /// occupancy snapshots) from demand-zero side mappings. Called once after
  /// init(), before any allocation; partitions with FillOnAllocate (replica
  /// random fill) refuse — a refault of pre-randomized contents would
  /// destroy them, and meshing's copy discipline assumes no allocator-side
  /// data writes under the lock. \returns true when meshing is active
  /// afterwards (false leaves the partition fully functional, unmeshed).
  bool bindMeshBacking(MmapRegion *Backing);

  /// True if a maintain() call now could plausibly mesh pages: meshing is
  /// bound, frees happened since the last mesh scan (or the previous scan
  /// armed a re-check), and the fill level is at or below \p FillGate.
  /// Lock-free pre-check for the sweeper, mirroring pageScanPending().
  bool meshScanPending(double FillGate) const {
    if (MeshBacking == nullptr || NumDataPages == 0)
      return false;
    if (MeshArmed.load(std::memory_order_relaxed))
      return true;
    uint64_t Stamp = Stats.Frees + Stats.ReturnedSlots;
    if (Stamp == LastMeshFreeStamp.load(std::memory_order_relaxed))
      return false;
    return fill() <= FillGate;
  }

  /// Number of donor pages currently meshed away onto a survivor's frame.
  /// Lock-free gauge; the hot allocation path reads it to decide whether an
  /// unmesh check is needed at all.
  size_t meshedPages() const {
    return MeshedCount.load(std::memory_order_relaxed);
  }

  /// Successful sidecar pushes so far. Lock-free gauge.
  uint64_t remoteFrees() const {
    return RemotePushes.load(std::memory_order_relaxed);
  }

  /// Pushes rejected without entering the sidecar (misaligned offset, or
  /// the slot was already pending — a double free caught at push time).
  /// Lock-free gauge.
  uint64_t remoteFreeRejects() const {
    return RemoteRejects.load(std::memory_order_relaxed);
  }

  /// Pushes not yet drained. Lock-free gauge; clamped against transiently
  /// reordered counter reads.
  uint64_t pendingRemoteFrees() const {
    uint64_t P = RemotePushes.load(std::memory_order_relaxed);
    uint64_t D = RemoteDrained.load(std::memory_order_relaxed);
    return P > D ? P - D : 0;
  }

  /// True if the sidecar has a pushed (undrained) chain. One relaxed load —
  /// cheap enough for allocation-path gauge pre-checks.
  bool hasPendingRemoteFrees() const {
    return SidecarHead.load(std::memory_order_relaxed) != 0;
  }

  /// Usable (rounded) size of the live object containing \p Ptr — interior
  /// pointers allowed — or 0 if the slot is not live.
  size_t objectSize(const void *Ptr) const;

  /// Start of the live object containing \p Ptr (interior pointers
  /// allowed), or nullptr if the slot is not live.
  void *objectStart(const void *Ptr) const;

  /// True if \p Ptr lies anywhere inside the partition's region.
  bool contains(const void *Ptr) const {
    const char *P = static_cast<const char *>(Ptr);
    return P >= Base && P < Base + Slots * ObjectSize;
  }

  /// Visits every live object as (slot index, pointer), slot ascending.
  /// The deterministic order is what the heap-differencing debugger keys
  /// its snapshots on.
  template <typename Visitor> void forEachLive(Visitor &&Visit) const {
    for (size_t Slot = 0; Slot < IsAllocated.size(); ++Slot)
      if (IsAllocated.test(Slot))
        Visit(Slot, static_cast<const void *>(Base + Slot * ObjectSize));
  }

  /// Number of live objects. Relaxed-atomic gauge: safe to read without the
  /// partition lock (overflow routing ranks sibling partitions with it).
  size_t live() const { return InUse.load(std::memory_order_relaxed); }

  /// Bytes live in this partition (rounded sizes). Lock-free gauge.
  size_t liveBytes() const {
    return LiveBytes.load(std::memory_order_relaxed);
  }

  /// Fill level relative to the 1/M threshold, in [0, 1]. 1.0 means the
  /// partition refuses further allocations. Lock-free gauge.
  double fill() const {
    return Threshold == 0
               ? 1.0
               : static_cast<double>(live()) / static_cast<double>(Threshold);
  }

  /// Slot capacity (before applying the 1/M bound).
  size_t slots() const { return Slots; }

  /// Maximum live objects allowed (the 1/M threshold).
  size_t threshold() const { return Threshold; }

  /// The rounded object size this partition serves.
  size_t objectBytes() const { return ObjectSize; }

  /// First byte of the partition's region.
  const void *base() const { return Base; }

  /// The seed of this partition's RNG stream.
  uint64_t streamSeed() const { return StreamSeed; }

  /// Behaviour counters. Mutated only under the partition lock in
  /// concurrent configurations; every field is a RelaxedCounter, so
  /// lock-free readers (statsApprox(), the shim's stats dump) may snapshot
  /// them concurrently — individual fields are exact, cross-field
  /// consistency requires the lock.
  const PartitionStats &stats() const { return Stats; }

private:
  /// Fills \p Bytes bytes at \p Ptr from this partition's RNG stream, in
  /// 32-bit units as in Figure 2 (object sizes are multiples of 8).
  void randomFill(void *Ptr, size_t Bytes);

  /// claimRandomSlot, then reject-and-reprobe any slot that still has an
  /// in-flight sidecar entry (a stale double free of its previous life),
  /// draining the sidecar so the stale entry is consumed harmlessly
  /// before the slot can be reused. \returns the slot index, or Slots.
  size_t claimCleanSlot(uint64_t &Probes, uint64_t &Fallbacks);

  /// Lazily un-marks released pages the freshly claimed slot \p Index
  /// overlaps, so the next span scan can re-release them once they go
  /// quiet again. Called only when ReleasedPages != 0 (the hot allocation
  /// path pays one relaxed load to find that out); runs under the
  /// partition lock like every other mutation.
  void clearReleasedForSlot(size_t Index);

  /// The span scanner behind maintain(): walks maximal clear-bit runs,
  /// clips each inward to page boundaries, and releases the not-yet-
  /// released page sub-runs. Accumulates into \p Out and the partition
  /// counters. Requires the partition lock.
  void scanAndReleaseSpans(MaintainOutcome &Out);

  /// True when data page \p PageIndex participates in a mesh on either
  /// side. Such pages are exempt from span release (the frame refcount is
  /// what makes releasing a survivor impossible; skipping here keeps the
  /// released-bit prefix accounting exact).
  bool meshedDataPage(size_t PageIndex) const {
    return MeshBacking != nullptr &&
           MeshBacking->pageMeshed(MeshPageBase + PageIndex);
  }

  /// Releases data pages [\p First, \p First + \p Count), routing through
  /// the meshable backing when bound (punch-hole semantics) and the static
  /// madvise path otherwise. \returns bytes released.
  size_t releaseDataPages(size_t First, size_t Count);

  /// The mesh pass behind maintain(): builds a byte-granularity occupancy
  /// mask per candidate page, requires two consecutive scans to observe an
  /// identical mask (the quiet-page criterion), greedily pairs disjoint
  /// masks, and meshes each pair (sparser page donates). Requires the
  /// partition lock.
  void meshScan(MaintainOutcome &Out);

  /// Fills \p Mask (MeshMaskWords words, one bit per 8-byte unit of data
  /// page \p PageIndex) from the allocation bitmap, handling objects that
  /// straddle page boundaries. \returns the number of set units.
  size_t buildPageMask(size_t PageIndex, uint64_t *Mask) const;

  /// Meshes donor data page \p Donor onto survivor \p Survivor: copies the
  /// donor's live units (per \p DonorMask) to their same offsets on the
  /// survivor's frame under the write-quiescence guard, then remaps the
  /// donor's virtual page onto the survivor's physical frame. \returns
  /// false (no state changed) when the guard or the remap refuses.
  bool meshPair(size_t Donor, size_t Survivor, const uint64_t *DonorMask);

  /// Dissolves every mesh the freshly claimed slot \p Index overlaps, so
  /// the slot's page is writable flesh of its own again before the caller
  /// hands the object out. Called only when MeshedCount != 0 (one relaxed
  /// load on the hot path). \returns false when an unmesh could not be
  /// completed — the caller MUST then reject the slot: writing a new
  /// object into a still-meshed page would land on the shared frame and
  /// corrupt the partner page's live bytes.
  bool unmeshForSlot(size_t Index);

  /// Restores donor data page \p Donor (currently remapped onto
  /// \p Survivor's frame) to its own frame: rebuilds the donor's live
  /// units into its punched-out frame through a scratch mapping, then
  /// remaps the donor's virtual page back to identity.
  bool unmeshPage(size_t Donor, size_t Survivor);

  /// Mesh-partner table entry of data page \p PageIndex: 0 = unmeshed,
  /// else partner data page + 1 (set symmetrically on both pages).
  uint32_t &meshPartner(size_t PageIndex) const {
    return static_cast<uint32_t *>(MeshPartners.base())[PageIndex];
  }

  /// Occupancy-mask hash snapshot of data page \p PageIndex from the
  /// previous mesh scan (0 = no snapshot; hashes are never 0).
  uint64_t &meshSnapshot(size_t PageIndex) const {
    return static_cast<uint64_t *>(MeshSnapshots.base())[PageIndex];
  }

  /// Word/bit accessors of the released-page summary (one bit per data
  /// page; bit set = page currently advised away).
  uint64_t &releasedWord(size_t PageIndex) const {
    return static_cast<uint64_t *>(ReleasedSummary.base())[PageIndex / 64];
  }
  bool releasedBit(size_t PageIndex) const {
    return (releasedWord(PageIndex) >> (PageIndex % 64)) & 1;
  }

  // --- Remote-free sidecar encoding ---------------------------------------
  // SidecarHead: 0 = empty, else slot + 1 of the most recent push.
  // Link word of slot s (in SidecarLinks): 0 = s is not in the sidecar;
  // SidecarTail = s is pending and ends the chain; else next slot + 1.
  // A push claims its link word with a CAS from 0 — the claim doubles as
  // push-time double-free detection — then splices onto the head; the drain
  // detaches the whole chain with one exchange and walks it. Links live in
  // their own demand-zero mapping (4 bytes per slot, committed only for
  // slots that actually see remote frees), accessed through atomic_ref.
  static constexpr uint32_t SidecarTail = UINT32_MAX;

  /// The link word of slot \p Slot.
  uint32_t &sidecarLink(size_t Slot) const {
    return static_cast<uint32_t *>(SidecarLinks.base())[Slot];
  }

  char *Base = nullptr;
  size_t ObjectSize = 0;
  size_t Slots = 0;
  size_t Threshold = 0;
  uint64_t StreamSeed = 0;
  bool FillOnAllocate = false;
  bool FillOnFree = false;
  Rng Rand;
  Bitmap IsAllocated;
  std::atomic<size_t> InUse{0};
  std::atomic<size_t> LiveBytes{0};
  PartitionStats Stats;

  // --- Partial page return ------------------------------------------------
  // The data pages lying entirely inside the region: [FirstPage, FirstPage
  // + NumDataPages * page size). Edge bytes outside that range share pages
  // with neighbouring partitions (or metadata) and are never released. The
  // released-page summary has one bit per data page, lives in its own
  // demand-zero mapping (committed only when pages actually get released),
  // and is mutated only under the partition lock; ReleasedPages mirrors its
  // popcount as a relaxed atomic so the hot allocation path and lock-free
  // gauges need exactly one relaxed load.
  char *FirstPage = nullptr;
  size_t NumDataPages = 0;
  MmapRegion ReleasedSummary;
  std::atomic<size_t> ReleasedPages{0};

  /// Free-stamp (Stats.Frees + Stats.ReturnedSlots, both monotonic) at the
  /// end of the last span scan. An unchanged stamp means no bit has been
  /// cleared since, so the scan is skipped. Written under the partition
  /// lock, relaxed so pageScanPending() may read it lock-free.
  std::atomic<uint64_t> LastScanFreeStamp{0};

  // --- Page meshing ---------------------------------------------------------
  // Occupancy masks are byte-granular: one bit per 8-byte unit of a page
  // (objects are multiples of 8 and 8-aligned), so objects straddling page
  // boundaries mark exactly the bytes they own on each page. MeshMaskWords
  // bounds the mask to 4 KiB pages — larger-page systems simply never mesh.
  // MeshPartners / MeshSnapshots are demand-zero side mappings with one
  // entry per data page, mutated only under the partition lock; MeshedCount
  // mirrors the number of meshed donor pages as a relaxed atomic so the hot
  // allocation path pays one relaxed load when nothing is meshed.
  static constexpr size_t MeshMaskWords = 8;
  static constexpr size_t MaxMeshCandidates = 128;
  static constexpr size_t MaxMeshPairsPerPass = 64;
  MmapRegion *MeshBacking = nullptr;
  size_t MeshPageBase = 0; ///< FirstPage's index within MeshBacking.
  MmapRegion MeshPartners;
  MmapRegion MeshSnapshots;
  std::atomic<size_t> MeshedCount{0};
  std::atomic<bool> MeshArmed{false};
  std::atomic<uint64_t> LastMeshFreeStamp{0};

  /// Remote-free sidecar state. The link array and head are mutated
  /// lock-free by pushers; RemoteDrained and the drain walk are owner-only
  /// (under the partition lock), but every counter is lock-free readable.
  MmapRegion SidecarLinks;
  std::atomic<uint32_t> SidecarHead{0};
  std::atomic<uint64_t> RemotePushes{0};
  std::atomic<uint64_t> RemoteRejects{0};
  std::atomic<uint64_t> RemoteDrained{0};
};

} // namespace diehard

#endif // DIEHARD_CORE_RANDOMIZEDPARTITION_H
