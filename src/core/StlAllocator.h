//===- core/StlAllocator.h - std-compatible allocator adapter ---*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A C++ standard-library allocator backed by a DieHardHeap, so containers
/// can opt into probabilistic memory safety per-object without global
/// interposition:
///
/// \code
///   DieHardHeap Heap(Options);
///   std::vector<int, StlAllocator<int>> V{StlAllocator<int>(Heap)};
/// \endcode
///
/// Container nodes land at uniformly random heap locations; iterator
/// invalidation bugs and container-node overflows inherit DieHard's
/// masking probabilities.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_CORE_STLALLOCATOR_H
#define DIEHARD_CORE_STLALLOCATOR_H

#include "core/DieHardHeap.h"

#include <cstddef>
#include <new>

namespace diehard {

/// std::allocator-compatible adapter over a DieHardHeap.
///
/// Copies of the adapter share the same heap; two adapters compare equal
/// iff they use the same heap instance (so memory allocated through one
/// can be released through the other, as the standard requires).
template <typename T> class StlAllocator {
public:
  using value_type = T;
  using size_type = size_t;
  using difference_type = ptrdiff_t;

  /// Binds the adapter to \p Bound, which must outlive every container
  /// using it.
  explicit StlAllocator(DieHardHeap &Bound) noexcept : Heap(&Bound) {}

  template <typename U>
  StlAllocator(const StlAllocator<U> &Other) noexcept : Heap(Other.heap()) {}

  T *allocate(size_type Count) {
    if (Count > SIZE_MAX / sizeof(T))
      throw std::bad_alloc();
    void *Ptr = Heap->allocate(Count * sizeof(T));
    if (Ptr == nullptr)
      throw std::bad_alloc();
    return static_cast<T *>(Ptr);
  }

  void deallocate(T *Ptr, size_type) noexcept { Heap->deallocate(Ptr); }

  /// The underlying heap (used by the converting constructor).
  DieHardHeap *heap() const noexcept { return Heap; }

private:
  DieHardHeap *Heap;
};

template <typename A, typename B>
bool operator==(const StlAllocator<A> &X, const StlAllocator<B> &Y) {
  return X.heap() == Y.heap();
}

template <typename A, typename B>
bool operator!=(const StlAllocator<A> &X, const StlAllocator<B> &Y) {
  return !(X == Y);
}

} // namespace diehard

#endif // DIEHARD_CORE_STLALLOCATOR_H
