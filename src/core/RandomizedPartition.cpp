//===- core/RandomizedPartition.cpp ---------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the per-size-class randomized partition: the Figure 2
/// probe/fallback placement discipline and validated frees, scoped to one
/// region.
///
//===----------------------------------------------------------------------===//

#include "core/RandomizedPartition.h"

#include <cassert>

namespace diehard {

size_t claimRandomSlot(Bitmap &Bits, Rng &Rand, size_t Slots,
                       uint64_t &Probes, uint64_t &Fallbacks) {
  assert(Slots != 0 && Slots == Bits.size() && "bitmap must cover the slots");
  // Probe for a free slot, like probing into a hash table. Since the region
  // is at most 1/M full, the expected probe count is 1/(1 - 1/M); a bounded
  // number of random probes followed by a linear fallback guarantees
  // termination without measurably biasing placement.
  for (int Attempt = 0; Attempt < 64; ++Attempt) {
    ++Probes;
    size_t Index = Rand.nextBounded(static_cast<uint32_t>(Slots));
    if (Bits.trySet(Index))
      return Index;
  }
  ++Fallbacks;
  size_t Start = Rand.nextBounded(static_cast<uint32_t>(Slots));
  size_t Index = Bits.findNextClear(Start);
  if (Index == Slots)
    Index = Bits.findNextClear(0);
  if (Index == Slots)
    return Slots; // Every slot taken; the 1/M threshold makes this unreachable.
  Bits.trySet(Index);
  return Index;
}

void randomFillWords(Rng &Rand, void *Ptr, size_t Bytes) {
  auto *Words = static_cast<uint32_t *>(Ptr);
  for (size_t I = 0; I < Bytes / sizeof(uint32_t); ++I)
    Words[I] = Rand.next();
}

bool RandomizedPartition::init(void *RegionBase, size_t ObjectBytes,
                               size_t NumSlots, double M, uint64_t Seed,
                               bool FillAllocate, bool FillFree) {
  assert(M > 1.0 && "expansion factor M must exceed 1");
  Base = static_cast<char *>(RegionBase);
  ObjectSize = ObjectBytes;
  Slots = NumSlots;
  // The region is allowed to become at most 1/M full (Section 4.1).
  Threshold = static_cast<size_t>(static_cast<double>(NumSlots) / M);
  StreamSeed = Seed;
  FillOnAllocate = FillAllocate;
  FillOnFree = FillFree;
  Rand.setSeed(Seed);
  IsAllocated.reset(NumSlots);
  return IsAllocated.size() == NumSlots;
}

void RandomizedPartition::randomFill(void *Ptr, size_t Bytes) {
  randomFillWords(Rand, Ptr, Bytes);
}

void *RandomizedPartition::allocate() {
  if (InUse.load(std::memory_order_relaxed) >= Threshold) {
    // At threshold: the 1/M bound says no more memory for this class.
    ++Stats.FailedAllocations;
    return nullptr;
  }
  size_t Index = claimRandomSlot(IsAllocated, Rand, Slots, Stats.Probes,
                                 Stats.ProbeFallbacks);
  if (Index == Slots) {
    ++Stats.FailedAllocations;
    return nullptr;
  }
  InUse.fetch_add(1, std::memory_order_relaxed);
  ++Stats.Allocations;
  LiveBytes.fetch_add(ObjectSize, std::memory_order_relaxed);
  char *Ptr = Base + Index * ObjectSize;
  if (FillOnAllocate)
    randomFill(Ptr, ObjectSize);
  return Ptr;
}

bool RandomizedPartition::deallocate(void *Ptr) {
  assert(contains(Ptr) && "caller routes only pointers in this partition");
  size_t Offset = static_cast<size_t>(static_cast<char *>(Ptr) - Base);
  // Validity check 1: the offset must be an exact multiple of the object
  // size. Validity check 2: the slot must currently be allocated. Anything
  // else is an invalid or double free and is ignored.
  if (Offset % ObjectSize != 0) {
    ++Stats.IgnoredFrees;
    return false;
  }
  size_t Index = Offset / ObjectSize;
  if (!IsAllocated.tryClear(Index)) {
    ++Stats.IgnoredFrees;
    return false;
  }
  assert(InUse.load(std::memory_order_relaxed) > 0 &&
         "bitmap and counter out of sync");
  InUse.fetch_sub(1, std::memory_order_relaxed);
  ++Stats.Frees;
  LiveBytes.fetch_sub(ObjectSize, std::memory_order_relaxed);
  if (FillOnFree)
    randomFill(Ptr, ObjectSize);
  return true;
}

size_t RandomizedPartition::objectSize(const void *Ptr) const {
  assert(contains(Ptr) && "caller routes only pointers in this partition");
  size_t Offset =
      static_cast<size_t>(static_cast<const char *>(Ptr) - Base);
  size_t Index = Offset / ObjectSize;
  return IsAllocated.test(Index) ? ObjectSize : 0;
}

void *RandomizedPartition::objectStart(const void *Ptr) const {
  assert(contains(Ptr) && "caller routes only pointers in this partition");
  size_t Offset =
      static_cast<size_t>(static_cast<const char *>(Ptr) - Base);
  size_t Index = Offset / ObjectSize;
  return IsAllocated.test(Index) ? Base + Index * ObjectSize : nullptr;
}

} // namespace diehard
