//===- core/RandomizedPartition.cpp ---------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the per-size-class randomized partition: the Figure 2
/// probe/fallback placement discipline and validated frees, scoped to one
/// region.
///
//===----------------------------------------------------------------------===//

#include "core/RandomizedPartition.h"

#include <cassert>
#include <cstring>

namespace diehard {

namespace {

/// FNV-1a over the mask words. Never returns 0 — that is the "no snapshot
/// yet" sentinel in the per-page snapshot table.
uint64_t hashMask(const uint64_t *Mask, size_t Words) {
  uint64_t H = 1469598103934665603ull;
  for (size_t W = 0; W < Words; ++W) {
    H ^= Mask[W];
    H *= 1099511628211ull;
  }
  return H == 0 ? 1 : H;
}

/// Copies every 8-byte unit whose mask bit is set, same offsets in \p Dst
/// and \p Src, one memcpy per maximal run of set bits.
///
/// Not TSan-instrumented: the mesh copy is ordered against client writes
/// by the write-quiescence guard — `mprotect(PROT_READ)` on the donor
/// before the copy makes any later write fault and spin, and the kernel's
/// page-table update orders earlier writes before the copy's reads. That
/// is real synchronization TSan cannot model (no atomics involved), so
/// under TSan the copy runs as plain un-instrumented loads/stores (the
/// memcpy interceptor would re-introduce the false report).
#if defined(__SANITIZE_THREAD__)
__attribute__((no_sanitize("thread")))
void copyMaskedUnits(char *Dst, const char *Src, const uint64_t *Mask,
                     size_t Words) {
  for (size_t U = 0; U < Words * 64; ++U)
    if (((Mask[U / 64] >> (U % 64)) & 1) != 0)
      reinterpret_cast<uint64_t *>(Dst)[U] =
          reinterpret_cast<const uint64_t *>(Src)[U];
}
#else
void copyMaskedUnits(char *Dst, const char *Src, const uint64_t *Mask,
                     size_t Words) {
  for (size_t U = 0; U < Words * 64;) {
    if (((Mask[U / 64] >> (U % 64)) & 1) == 0) {
      ++U;
      continue;
    }
    size_t RunBegin = U;
    while (U < Words * 64 && ((Mask[U / 64] >> (U % 64)) & 1) != 0)
      ++U;
    std::memcpy(Dst + RunBegin * 8, Src + RunBegin * 8, (U - RunBegin) * 8);
  }
}
#endif

} // namespace

size_t claimRandomSlot(Bitmap &Bits, Rng &Rand, size_t Slots,
                       uint64_t &Probes, uint64_t &Fallbacks) {
  assert(Slots != 0 && Slots == Bits.size() && "bitmap must cover the slots");
  // Probe for a free slot, like probing into a hash table. Since the region
  // is at most 1/M full, the expected probe count is 1/(1 - 1/M); a bounded
  // number of random probes followed by a linear fallback guarantees
  // termination without measurably biasing placement.
  for (int Attempt = 0; Attempt < 64; ++Attempt) {
    ++Probes;
    size_t Index = Rand.nextBounded(static_cast<uint32_t>(Slots));
    if (Bits.trySet(Index))
      return Index;
  }
  ++Fallbacks;
  size_t Start = Rand.nextBounded(static_cast<uint32_t>(Slots));
  size_t Index = Bits.findNextClear(Start);
  if (Index == Slots)
    Index = Bits.findNextClear(0);
  if (Index == Slots)
    return Slots; // Every slot taken; the 1/M threshold makes this unreachable.
  Bits.trySet(Index);
  return Index;
}

void randomFillWords(Rng &Rand, void *Ptr, size_t Bytes) {
  auto *Words = static_cast<uint32_t *>(Ptr);
  for (size_t I = 0; I < Bytes / sizeof(uint32_t); ++I)
    Words[I] = Rand.next();
}

bool RandomizedPartition::init(void *RegionBase, size_t ObjectBytes,
                               size_t NumSlots, double M, uint64_t Seed,
                               bool FillAllocate, bool FillFree) {
  assert(M > 1.0 && "expansion factor M must exceed 1");
  Base = static_cast<char *>(RegionBase);
  ObjectSize = ObjectBytes;
  Slots = NumSlots;
  // The region is allowed to become at most 1/M full (Section 4.1).
  Threshold = static_cast<size_t>(static_cast<double>(NumSlots) / M);
  StreamSeed = Seed;
  FillOnAllocate = FillAllocate;
  FillOnFree = FillFree;
  Rand.setSeed(Seed);
  IsAllocated.reset(NumSlots);
  // The sidecar link array: one word per slot, demand-zero (0 = not
  // pending), committed only for slots remote frees actually touch. The
  // slot-in-a-uint32 encoding needs two sentinel values; refuse (in
  // release builds too) a partition whose slot indices would not fit —
  // the probe discipline's nextBounded() casts share the same limit, so
  // such a partition was never usable anyway.
  if (NumSlots >= SidecarTail - 1)
    return false;
  SidecarHead.store(0, std::memory_order_relaxed);
  RemotePushes.store(0, std::memory_order_relaxed);
  RemoteRejects.store(0, std::memory_order_relaxed);
  RemoteDrained.store(0, std::memory_order_relaxed);
  if (!SidecarLinks.map(NumSlots * sizeof(uint32_t)))
    return false;
  // Link words are probed on every remote free and drain — like the bitmap,
  // always-resident metadata worth huge-page backing under DIEHARD_THP.
  SidecarLinks.adviseHugePages();

  // Page-return geometry: only pages lying entirely inside the data region
  // are ever released. Partition bases are 4K-aligned in practice, making
  // that the whole region; on systems with larger pages the edge pages
  // shared with neighbours are simply never returned.
  const size_t Page = MmapRegion::pageSize();
  auto RegionBegin = reinterpret_cast<uintptr_t>(Base);
  uintptr_t RegionEnd = RegionBegin + NumSlots * ObjectBytes;
  uintptr_t AlignedBegin = (RegionBegin + Page - 1) & ~(Page - 1);
  uintptr_t AlignedEnd = RegionEnd & ~(Page - 1);
  FirstPage = reinterpret_cast<char *>(AlignedBegin);
  NumDataPages =
      AlignedBegin < AlignedEnd ? (AlignedEnd - AlignedBegin) / Page : 0;
  ReleasedPages.store(0, std::memory_order_relaxed);
  LastScanFreeStamp.store(0, std::memory_order_relaxed);
  if (NumDataPages != 0 &&
      !ReleasedSummary.map(((NumDataPages + 63) / 64) * sizeof(uint64_t)))
    return false;
  return IsAllocated.size() == NumSlots;
}

void RandomizedPartition::randomFill(void *Ptr, size_t Bytes) {
  randomFillWords(Rand, Ptr, Bytes);
}

size_t RandomizedPartition::claimCleanSlot(uint64_t &Probes,
                                           uint64_t &Fallbacks) {
  for (;;) {
    size_t Index =
        claimRandomSlot(IsAllocated, Rand, Slots, Probes, Fallbacks);
    if (Index == Slots)
      return Index;
    // Reject a slot with an in-flight sidecar entry: that push is a stale
    // (double) free of the slot's previous life, and handing the slot out
    // now would let the next drain free the new occupant. Give the bit
    // back, consume the stale entry (bit clear -> counted IgnoredFree),
    // and probe again. One relaxed load on the common (clean) path.
    std::atomic_ref<uint32_t> Link(sidecarLink(Index));
    if (Link.load(std::memory_order_relaxed) == 0)
      return Index;
    IsAllocated.tryClear(Index);
    drainRemoteFrees();
  }
}

void *RandomizedPartition::allocate() {
  if (InUse.load(std::memory_order_relaxed) >= Threshold) {
    // At threshold: the 1/M bound says no more memory for this class.
    ++Stats.FailedAllocations;
    return nullptr;
  }
  uint64_t Probes = 0, Fallbacks = 0;
  size_t Index = claimCleanSlot(Probes, Fallbacks);
  Stats.Probes += Probes;
  Stats.ProbeFallbacks += Fallbacks;
  if (Index == Slots) {
    ++Stats.FailedAllocations;
    return nullptr;
  }
  // One relaxed load is the meshing tax on the hot path; the unmesh walk
  // runs only while donor pages are actually meshed away.
  if (MeshedCount.load(std::memory_order_relaxed) != 0 &&
      !unmeshForSlot(Index)) {
    // The slot's page could not be unmeshed. Writing a fresh object there
    // would land on the shared frame and corrupt the partner page's live
    // bytes, so give the slot back and refuse the request.
    IsAllocated.tryClear(Index);
    ++Stats.FailedAllocations;
    return nullptr;
  }
  InUse.fetch_add(1, std::memory_order_relaxed);
  ++Stats.Allocations;
  LiveBytes.fetch_add(ObjectSize, std::memory_order_relaxed);
  // One relaxed load is all the hot path pays for partial page return; the
  // per-page bookkeeping runs only while released pages actually exist.
  // Measured when meshing landed: with the summary fully populated the
  // alloc/free pair costs the same ns/op as with the gate short-circuiting
  // (deltas within run noise, min-of-runs identical), so the clearing
  // stays here rather than deferring to the sweeper — deferral would need
  // a pending-clear queue whose bookkeeping costs more than the two bit
  // flips it saves.
  if (ReleasedPages.load(std::memory_order_relaxed) != 0)
    clearReleasedForSlot(Index);
  char *Ptr = Base + Index * ObjectSize;
  if (FillOnAllocate)
    randomFill(Ptr, ObjectSize);
  return Ptr;
}

size_t RandomizedPartition::claimRandomSlots(void **Out, size_t MaxCount) {
  size_t Live = InUse.load(std::memory_order_relaxed);
  if (Live >= Threshold)
    return 0; // Saturated: no refusal counted, the caller owns that call.
  size_t Want = Threshold - Live;
  if (Want > MaxCount)
    Want = MaxCount;

  // Each claim runs the exact allocate() probe discipline, so the i-th
  // claimed slot is uniform over the slots free after the first i-1 claims
  // — the same process as i consecutive allocate() calls.
  uint64_t Probes = 0, Fallbacks = 0;
  size_t N = 0;
  while (N < Want) {
    size_t Index = claimCleanSlot(Probes, Fallbacks);
    if (Index == Slots)
      break; // Unreachable below the threshold; stay defensive.
    if (MeshedCount.load(std::memory_order_relaxed) != 0 &&
        !unmeshForSlot(Index)) {
      // See allocate(): a slot on a page that cannot be unmeshed must not
      // be handed out. End the batch with what was claimed so far.
      IsAllocated.tryClear(Index);
      break;
    }
    if (ReleasedPages.load(std::memory_order_relaxed) != 0)
      clearReleasedForSlot(Index);
    Out[N++] = Base + Index * ObjectSize;
  }
  Stats.Probes += Probes;
  Stats.ProbeFallbacks += Fallbacks;
  Stats.ClaimedSlots += N;
  InUse.fetch_add(N, std::memory_order_relaxed);
  LiveBytes.fetch_add(N * ObjectSize, std::memory_order_relaxed);

  // Shuffle so the order a cache hands slots out is independent of the
  // order they were claimed (Fisher-Yates from this partition's stream).
  for (size_t I = N; I > 1; --I) {
    size_t J = Rand.nextBounded(static_cast<uint32_t>(I));
    void *Tmp = Out[I - 1];
    Out[I - 1] = Out[J];
    Out[J] = Tmp;
  }
  if (FillOnAllocate)
    for (size_t I = 0; I < N; ++I)
      randomFill(Out[I], ObjectSize);
  return N;
}

void RandomizedPartition::reclaimSlots(void *const *Ptrs, size_t Count) {
  for (size_t I = 0; I < Count; ++I) {
    assert(contains(Ptrs[I]) && "reclaimed slot must be in this partition");
    size_t Offset =
        static_cast<size_t>(static_cast<char *>(Ptrs[I]) - Base);
    assert(Offset % ObjectSize == 0 && "reclaimed slot must be aligned");
    bool WasSet = IsAllocated.tryClear(Offset / ObjectSize);
    assert(WasSet && "reclaimed slot must still be claimed");
    (void)WasSet;
  }
  Stats.ReturnedSlots += Count;
  InUse.fetch_sub(Count, std::memory_order_relaxed);
  LiveBytes.fetch_sub(Count * ObjectSize, std::memory_order_relaxed);
}

size_t RandomizedPartition::deallocateBatch(void *const *Ptrs,
                                            size_t Count) {
  size_t Freed = 0;
  for (size_t I = 0; I < Count; ++I)
    if (deallocate(Ptrs[I]))
      ++Freed;
  return Freed;
}

void RandomizedPartition::remoteFree(void *Ptr) {
  assert(contains(Ptr) && "caller routes only pointers in this partition");
  size_t Offset = static_cast<size_t>(static_cast<char *>(Ptr) - Base);
  if (Offset % ObjectSize != 0) {
    // Validity check 1 (a correct slot offset) needs only immutable
    // geometry, so the invalid free is detected right here, lock-free.
    RemoteRejects.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto Slot = static_cast<uint32_t>(Offset / ObjectSize);

  // Claim the slot's link word. Failure means the slot is already pending:
  // a second free of the same object raced in before the owner drained the
  // first — a double free, detected at push time. (The claim is also what
  // makes concurrent double frees unable to corrupt the chain.)
  std::atomic_ref<uint32_t> Link(sidecarLink(Slot));
  uint32_t Expected = 0;
  if (!Link.compare_exchange_strong(Expected, SidecarTail,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
    RemoteRejects.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Treiber push: point the claimed link at the current chain and swing
  // the head. The release CAS publishes the link word (and the pusher's
  // prior writes) to the draining owner's acquire exchange.
  uint32_t Head = SidecarHead.load(std::memory_order_relaxed);
  do {
    Link.store(Head == 0 ? SidecarTail : Head, std::memory_order_relaxed);
  } while (!SidecarHead.compare_exchange_weak(Head, Slot + 1,
                                              std::memory_order_release,
                                              std::memory_order_relaxed));
  RemotePushes.fetch_add(1, std::memory_order_relaxed);
}

size_t RandomizedPartition::drainRemoteFrees() {
  if (SidecarHead.load(std::memory_order_relaxed) == 0)
    return 0; // Cheap empty check: one relaxed load on the common path.
  uint32_t Head = SidecarHead.exchange(0, std::memory_order_acquire);
  size_t N = 0;
  while (Head != 0) {
    uint32_t Slot = Head - 1;
    std::atomic_ref<uint32_t> Link(sidecarLink(Slot));
    uint32_t Next = Link.load(std::memory_order_relaxed);
    // Validity checks 2 and 3 (live slot, not already freed) run exactly
    // as for a locked free — detection deferred to drain time, not lost.
    deallocate(Base + static_cast<size_t>(Slot) * ObjectSize);
    // Reopen the link only AFTER the free materializes: a double free
    // racing this drain then fails its claim and is rejected at push
    // time, instead of entering the sidecar as a pending entry for a
    // slot this lock hold may immediately reallocate — which would make
    // the next drain free the slot's NEXT occupant. A push landing after
    // the reopen finds the bit already clear and is rejected by the next
    // drain's validation; claimCleanSlot() refuses to hand out any slot
    // whose link is still claimed, so a stale push cannot alias a
    // reallocation. (What remains is the ambiguity every allocator has:
    // a free of an address whose slot was already freed, drained AND
    // re-handed-out is indistinguishable from a valid free of the new
    // object.)
    Link.store(0, std::memory_order_release);
    ++N;
    Head = Next == SidecarTail ? 0 : Next;
  }
  RemoteDrained.fetch_add(N, std::memory_order_relaxed);
  ++Stats.SidecarDrains;
  return N;
}

void RandomizedPartition::clearReleasedForSlot(size_t Index) {
  // Pages the slot's bytes overlap, clamped to the releasable data pages.
  // A slot straddling a page boundary un-marks both sides: any page about
  // to hold live data must be considered resident again so a later scan
  // can re-advise it once the neighbourhood goes quiet.
  const size_t Page = MmapRegion::pageSize();
  auto First = reinterpret_cast<uintptr_t>(FirstPage);
  uintptr_t SlotBegin = reinterpret_cast<uintptr_t>(Base) + Index * ObjectSize;
  uintptr_t SlotLast = SlotBegin + ObjectSize - 1;
  if (SlotLast < First)
    return;
  size_t P0 = SlotBegin > First ? (SlotBegin - First) / Page : 0;
  size_t P1 = (SlotLast - First) / Page;
  if (P1 >= NumDataPages)
    P1 = NumDataPages - 1; // Caller guarantees NumDataPages != 0.
  for (size_t P = P0; P <= P1 && P < NumDataPages; ++P) {
    uint64_t Mask = uint64_t(1) << (P % 64);
    uint64_t &Word = releasedWord(P);
    if (Word & Mask) {
      Word &= ~Mask;
      ReleasedPages.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void RandomizedPartition::scanAndReleaseSpans(MaintainOutcome &Out) {
  const size_t Page = MmapRegion::pageSize();
  auto First = reinterpret_cast<uintptr_t>(FirstPage);
  auto RegionBegin = reinterpret_cast<uintptr_t>(Base);
  size_t Pages = 0, Spans = 0;
  size_t SlotFrom = 0;
  while (SlotFrom < Slots) {
    size_t RunBegin = IsAllocated.findNextClear(SlotFrom);
    if (RunBegin == Slots)
      break;
    size_t RunEnd = IsAllocated.findNextSet(RunBegin);
    SlotFrom = RunEnd;
    // Clip the free run's byte range inward to whole pages. A page
    // overlapped by any set slot (live, cache-claimed, or sidecar-pending)
    // lies inside no clear run, so objects straddling page boundaries are
    // respected by construction.
    uintptr_t ByteBegin = RegionBegin + RunBegin * ObjectSize;
    uintptr_t ByteEnd = RegionBegin + RunEnd * ObjectSize;
    uintptr_t PageBegin = (ByteBegin + Page - 1) & ~(Page - 1);
    uintptr_t PageEnd = ByteEnd & ~(Page - 1);
    if (PageBegin >= PageEnd)
      continue;
    size_t P = (PageBegin - First) / Page;
    size_t RunPagesEnd = (PageEnd - First) / Page;
    if (RunPagesEnd > NumDataPages)
      RunPagesEnd = NumDataPages;
    // Advise each maximal sub-run of not-yet-released pages in one call.
    // The summary keeps the scan idempotent per span: an idle partition's
    // next sweep finds every bit set and issues no syscall. Meshed pages
    // are filtered here so ranges handed to releaseDataPages() contain
    // none (the released-bit accounting below relies on a prefix release)
    // — a fully-dead meshed pair keeps its one frame resident until reuse
    // dissolves the mesh, after which these scans reclaim it normally.
    while (P < RunPagesEnd) {
      while (P < RunPagesEnd && (releasedBit(P) || meshedDataPage(P)))
        ++P;
      size_t SubBegin = P;
      while (P < RunPagesEnd && !releasedBit(P) && !meshedDataPage(P))
        ++P;
      if (P == SubBegin)
        continue;
      size_t Bytes = releaseDataPages(SubBegin, P - SubBegin);
      if (Bytes == 0)
        continue; // Policy off or the kernel refused: nothing to record.
      size_t N = Bytes / Page;
      for (size_t I = SubBegin; I < SubBegin + N; ++I)
        releasedWord(I) |= uint64_t(1) << (I % 64);
      ReleasedPages.fetch_add(N, std::memory_order_relaxed);
      Pages += N;
      ++Spans;
    }
  }
  if (Pages != 0) {
    ++Stats.PartialReturns;
    Stats.PagesReturned += Pages;
    Stats.SpansReleased += Spans;
  }
  Out.PagesReturned += Pages;
  Out.SpansReleased += Spans;
}

RandomizedPartition::MaintainOutcome RandomizedPartition::maintain() {
  MaintainOutcome Out;
  Out.Drained = drainRemoteFrees();
  Stats.SweeperDrained += Out.Drained;
  // Partial page return. The bitmap walk is gated on the free-stamp: an
  // unchanged stamp means no bit has been cleared since the last scan, so
  // there is nothing new to release — repeated sweeps of an idle heap cost
  // two relaxed loads here and no syscall. Replicated-fill partitions skip
  // data-page return entirely (a demand-zero refault would destroy the
  // pre-randomized contents FillOnAllocate hands out).
  if (NumDataPages != 0 && !FillOnAllocate) {
    uint64_t Stamp = Stats.Frees + Stats.ReturnedSlots;
    if (Stamp != LastScanFreeStamp.load(std::memory_order_relaxed)) {
      scanAndReleaseSpans(Out);
      LastScanFreeStamp.store(Stamp, std::memory_order_relaxed);
    }
  }
  // Page meshing, same free-stamp gating — plus the armed flag, which a
  // scan sets when it saw pages whose occupancy changed since the last
  // pass: the quiet-page criterion needs two consecutive identical
  // observations, so one more pass may pair what this one only snapshot.
  if (MeshBacking != nullptr && NumDataPages != 0) {
    uint64_t Stamp = Stats.Frees + Stats.ReturnedSlots;
    if (MeshArmed.load(std::memory_order_relaxed) ||
        Stamp != LastMeshFreeStamp.load(std::memory_order_relaxed)) {
      meshScan(Out);
      LastMeshFreeStamp.store(Stamp, std::memory_order_relaxed);
    }
  }
  return Out;
}

bool RandomizedPartition::bindMeshBacking(MmapRegion *Backing) {
  const size_t Page = MmapRegion::pageSize();
  // Meshing preconditions: a meshable backing covering our data pages, no
  // replica random fill (a punched frame refaults zero, destroying the
  // pre-randomized contents; and fill-on-free writes object bytes under
  // the partition lock, which meshing's copy discipline excludes), masks
  // sized for the system page, and a class whose page masks can ever be
  // disjoint — an object size of a page or more fills every mask it
  // touches, so such classes simply never mesh.
  if (Backing == nullptr || !Backing->meshable() || NumDataPages == 0 ||
      FillOnAllocate || FillOnFree || ObjectSize >= Page ||
      Page / 8 / 64 > MeshMaskWords || !Backing->contains(FirstPage))
    return false;
  if (!MeshPartners.map(NumDataPages * sizeof(uint32_t)))
    return false;
  if (!MeshSnapshots.map(NumDataPages * sizeof(uint64_t))) {
    MeshPartners.unmap();
    return false;
  }
  MeshPageBase =
      static_cast<size_t>(FirstPage -
                          static_cast<char *>(Backing->base())) /
      Page;
  MeshedCount.store(0, std::memory_order_relaxed);
  MeshArmed.store(false, std::memory_order_relaxed);
  LastMeshFreeStamp.store(0, std::memory_order_relaxed);
  MeshBacking = Backing;
  return true;
}

size_t RandomizedPartition::releaseDataPages(size_t First, size_t Count) {
  if (MeshBacking != nullptr)
    return MeshBacking->releasePages(MeshPageBase + First, Count);
  const size_t Page = MmapRegion::pageSize();
  return MmapRegion::releasePageRange(FirstPage + First * Page,
                                      Count * Page);
}

size_t RandomizedPartition::buildPageMask(size_t PageIndex,
                                          uint64_t *Mask) const {
  const size_t Page = MmapRegion::pageSize();
  for (size_t W = 0; W < MeshMaskWords; ++W)
    Mask[W] = 0;
  auto RegionBegin = reinterpret_cast<uintptr_t>(Base);
  uintptr_t PB = reinterpret_cast<uintptr_t>(FirstPage) + PageIndex * Page;
  uintptr_t PE = PB + Page;
  // First slot whose bytes can reach the page: the one containing PB (a
  // straddler from the previous page starts before PB but owns bytes on
  // this one). Walk set slots from there until one starts past the page.
  size_t S0 = PB > RegionBegin ? (PB - RegionBegin) / ObjectSize : 0;
  size_t Units = 0;
  for (size_t S = IsAllocated.findNextSet(S0); S < Slots;
       S = IsAllocated.findNextSet(S + 1)) {
    uintptr_t OB = RegionBegin + S * ObjectSize;
    if (OB >= PE)
      break;
    uintptr_t OE = OB + ObjectSize;
    uintptr_t B = OB > PB ? OB : PB;
    uintptr_t E = OE < PE ? OE : PE;
    if (B >= E)
      continue;
    // Object sizes are multiples of 8 and slot 0 is 8-aligned, so the
    // clipped range falls on 8-byte unit boundaries exactly.
    size_t U0 = (B - PB) / 8, U1 = (E - PB) / 8;
    for (size_t U = U0; U < U1; ++U)
      Mask[U / 64] |= uint64_t(1) << (U % 64);
    Units += U1 - U0;
  }
  return Units;
}

void RandomizedPartition::meshScan(MaintainOutcome &Out) {
  struct Candidate {
    uint32_t PageIndex;
    uint32_t Units;
    uint64_t Mask[MeshMaskWords];
  };
  Candidate Cands[MaxMeshCandidates];
  size_t NumCands = 0;
  bool Rearm = false;
  for (size_t P = 0; P < NumDataPages; ++P) {
    if (meshPartner(P) != 0)
      continue; // Already meshed (either side); reuse dissolves it.
    uint64_t Mask[MeshMaskWords];
    size_t Units = buildPageMask(P, Mask);
    if (Units == 0 || Units == MeshMaskWords * 64) {
      // Empty pages are the span scanner's business; full pages can never
      // pair. Drop any stale snapshot.
      meshSnapshot(P) = 0;
      continue;
    }
    uint64_t H = hashMask(Mask, MeshMaskWords);
    if (meshSnapshot(P) != H) {
      // Not quiet yet: a page must show the same occupancy on two
      // consecutive scans before it may mesh. Snapshot and re-check.
      meshSnapshot(P) = H;
      Rearm = true;
      continue;
    }
    if (NumCands == MaxMeshCandidates) {
      Rearm = true; // More quiet pages than one pass examines.
      break;
    }
    Cands[NumCands].PageIndex = static_cast<uint32_t>(P);
    Cands[NumCands].Units = static_cast<uint32_t>(Units);
    for (size_t W = 0; W < MeshMaskWords; ++W)
      Cands[NumCands].Mask[W] = Mask[W];
    ++NumCands;
  }

  // Greedy first-fit pairing of disjoint masks; the sparser page donates
  // (fewer bytes to copy, and its frame is the one punched out).
  size_t Meshed = 0;
  bool Used[MaxMeshCandidates] = {};
  for (size_t I = 0; I + 1 < NumCands && Meshed < MaxMeshPairsPerPass; ++I) {
    if (Used[I])
      continue;
    for (size_t J = I + 1; J < NumCands; ++J) {
      if (Used[J])
        continue;
      uint64_t Overlap = 0;
      for (size_t W = 0; W < MeshMaskWords; ++W)
        Overlap |= Cands[I].Mask[W] & Cands[J].Mask[W];
      if (Overlap != 0)
        continue;
      Used[I] = Used[J] = true;
      ++Stats.MeshCandidates;
      size_t Donor = Cands[I].Units <= Cands[J].Units ? I : J;
      size_t Survivor = Donor == I ? J : I;
      if (meshPair(Cands[Donor].PageIndex, Cands[Survivor].PageIndex,
                   Cands[Donor].Mask))
        ++Meshed;
      break;
    }
  }
  if (Meshed == MaxMeshPairsPerPass)
    Rearm = true;
  MeshArmed.store(Rearm, std::memory_order_relaxed);
  if (Meshed != 0) {
    Stats.PagesMeshed += Meshed;
    Stats.MeshedBytes += Meshed * MmapRegion::pageSize();
  }
  Out.PagesMeshed += Meshed;
}

bool RandomizedPartition::meshPair(size_t Donor, size_t Survivor,
                                   const uint64_t *DonorMask) {
  const size_t Page = MmapRegion::pageSize();
  char *DonorAddr = FirstPage + Donor * Page;
  char *SurvivorAddr = FirstPage + Survivor * Page;
  // Quiesce user writes to the donor for the copy: a concurrent writer
  // faults into the guard's handler, spins until the guard drops, and
  // retries — by then the donor's virtual page is remapped read/write
  // onto the survivor's frame, where the copied object lives.
  if (!MmapRegion::beginMeshGuard(DonorAddr))
    return false; // Another mesh in flight process-wide: next pass.
  copyMaskedUnits(SurvivorAddr, DonorAddr, DonorMask, MeshMaskWords);
  if (!MeshBacking->remapPageTo(MeshPageBase + Donor,
                                MeshPageBase + Survivor)) {
    MmapRegion::abortMeshGuard(DonorAddr);
    return false;
  }
  MmapRegion::endMeshGuard();
  meshPartner(Donor) = static_cast<uint32_t>(Survivor) + 1;
  meshPartner(Survivor) = static_cast<uint32_t>(Donor) + 1;
  MeshedCount.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool RandomizedPartition::unmeshForSlot(size_t Index) {
  if (MeshBacking == nullptr || NumDataPages == 0)
    return true;
  const size_t Page = MmapRegion::pageSize();
  auto First = reinterpret_cast<uintptr_t>(FirstPage);
  uintptr_t SlotBegin =
      reinterpret_cast<uintptr_t>(Base) + Index * ObjectSize;
  uintptr_t SlotLast = SlotBegin + ObjectSize - 1;
  if (SlotLast < First)
    return true;
  size_t P0 = SlotBegin > First ? (SlotBegin - First) / Page : 0;
  size_t P1 = (SlotLast - First) / Page;
  if (P1 >= NumDataPages)
    P1 = NumDataPages - 1;
  for (size_t P = P0; P <= P1 && P < NumDataPages; ++P) {
    uint32_t Partner = meshPartner(P);
    if (Partner == 0)
      continue;
    // Either side of the pair must dissolve: a new object on the donor
    // would be written through the remap onto the survivor's frame, and a
    // new object on the survivor could overwrite units the donor's live
    // objects occupy there. Which side is the donor is recorded in the
    // backing's remap table.
    size_t Other = static_cast<size_t>(Partner) - 1;
    bool PIsDonor =
        MeshBacking->meshTargetOf(MeshPageBase + P) != MeshPageBase + P;
    if (!unmeshPage(PIsDonor ? P : Other, PIsDonor ? Other : P))
      return false;
  }
  return true;
}

bool RandomizedPartition::unmeshPage(size_t Donor, size_t Survivor) {
  const size_t Page = MmapRegion::pageSize();
  char *DonorAddr = FirstPage + Donor * Page;
  // Rebuild the donor's punched-out frame through a scratch mapping while
  // the donor's virtual page still reads the shared frame.
  void *Scratch = MeshBacking->mapFrameScratch(MeshPageBase + Donor);
  if (Scratch == nullptr)
    return false;
  uint64_t Mask[MeshMaskWords];
  buildPageMask(Donor, Mask);
  // The process-wide guard may be briefly held by the sweeper meshing a
  // different partition; a mesh is one page copy long, so wait it out
  // (bounded, in case of a stuck holder).
  bool Guarded = false;
  for (int Spin = 0; Spin < (1 << 22); ++Spin)
    if ((Guarded = MmapRegion::beginMeshGuard(DonorAddr)))
      break;
  if (!Guarded) {
    MmapRegion::unmapFrameScratch(Scratch);
    return false;
  }
  copyMaskedUnits(static_cast<char *>(Scratch), DonorAddr, Mask,
                  MeshMaskWords);
  bool Ok =
      MeshBacking->remapPageTo(MeshPageBase + Donor, MeshPageBase + Donor);
  if (Ok)
    MmapRegion::endMeshGuard();
  else
    MmapRegion::abortMeshGuard(DonorAddr);
  MmapRegion::unmapFrameScratch(Scratch);
  if (!Ok)
    return false;
  meshPartner(Donor) = 0;
  meshPartner(Survivor) = 0;
  // Occupancy is about to change (the caller claimed a slot here); force
  // both pages back through the two-scan quiet criterion.
  meshSnapshot(Donor) = 0;
  meshSnapshot(Survivor) = 0;
  MeshedCount.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool RandomizedPartition::deallocate(void *Ptr) {
  assert(contains(Ptr) && "caller routes only pointers in this partition");
  size_t Offset = static_cast<size_t>(static_cast<char *>(Ptr) - Base);
  // Validity check 1: the offset must be an exact multiple of the object
  // size. Validity check 2: the slot must currently be allocated. Anything
  // else is an invalid or double free and is ignored.
  if (Offset % ObjectSize != 0) {
    ++Stats.IgnoredFrees;
    return false;
  }
  size_t Index = Offset / ObjectSize;
  if (!IsAllocated.tryClear(Index)) {
    ++Stats.IgnoredFrees;
    return false;
  }
  assert(InUse.load(std::memory_order_relaxed) > 0 &&
         "bitmap and counter out of sync");
  InUse.fetch_sub(1, std::memory_order_relaxed);
  ++Stats.Frees;
  LiveBytes.fetch_sub(ObjectSize, std::memory_order_relaxed);
  if (FillOnFree)
    randomFill(Ptr, ObjectSize);
  return true;
}

size_t RandomizedPartition::objectSize(const void *Ptr) const {
  assert(contains(Ptr) && "caller routes only pointers in this partition");
  size_t Offset =
      static_cast<size_t>(static_cast<const char *>(Ptr) - Base);
  size_t Index = Offset / ObjectSize;
  return IsAllocated.test(Index) ? ObjectSize : 0;
}

void *RandomizedPartition::objectStart(const void *Ptr) const {
  assert(contains(Ptr) && "caller routes only pointers in this partition");
  size_t Offset =
      static_cast<size_t>(static_cast<const char *>(Ptr) - Base);
  size_t Index = Offset / ObjectSize;
  return IsAllocated.test(Index) ? Base + Index * ObjectSize : nullptr;
}

} // namespace diehard
