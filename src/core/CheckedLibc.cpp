//===- core/CheckedLibc.cpp -----------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the bounds-clamping libc replacements (Section 4.4).
///
//===----------------------------------------------------------------------===//

#include "core/CheckedLibc.h"

#include "core/DieHardHeap.h"

#include <cstdint>
#include <cstring>

namespace diehard {

size_t CheckedLibc::availableSpace(const void *Dst) const {
  // Two comparisons decide heap membership; then the object start is
  // recovered from the power-of-two layout and the distance to the end of
  // the object is the writable space (Section 4.4).
  void *Start = Heap.getObjectStart(Dst);
  if (Start == nullptr)
    return SIZE_MAX;
  size_t Size = Heap.getObjectSize(Start);
  size_t Used = static_cast<const char *>(Dst) - static_cast<char *>(Start);
  return Size - Used;
}

char *CheckedLibc::strcpy(char *Dst, const char *Src) const {
  size_t Space = availableSpace(Dst);
  if (Space == SIZE_MAX)
    return std::strcpy(Dst, Src);
  if (Space == 0)
    return Dst;
  size_t Len = std::strlen(Src);
  size_t Copy = Len < Space - 1 ? Len : Space - 1;
  std::memcpy(Dst, Src, Copy);
  Dst[Copy] = '\0';
  return Dst;
}

char *CheckedLibc::strncpy(char *Dst, const char *Src, size_t Count) const {
  size_t Space = availableSpace(Dst);
  // The programmer-supplied bound is not trusted: the actual space in the
  // destination object caps it.
  size_t Bound = Space == SIZE_MAX ? Count : (Count < Space ? Count : Space);
  size_t I = 0;
  for (; I < Bound && Src[I] != '\0'; ++I)
    Dst[I] = Src[I];
  for (; I < Bound; ++I)
    Dst[I] = '\0';
  return Dst;
}

char *CheckedLibc::strcat(char *Dst, const char *Src) const {
  size_t Space = availableSpace(Dst);
  if (Space == SIZE_MAX)
    return std::strcat(Dst, Src);
  size_t DstLen = ::strnlen(Dst, Space);
  if (DstLen >= Space)
    return Dst; // Unterminated destination: nothing safe to do.
  size_t Avail = Space - DstLen;
  if (Avail <= 1) {
    Dst[DstLen] = '\0';
    return Dst;
  }
  size_t Len = std::strlen(Src);
  size_t Copy = Len < Avail - 1 ? Len : Avail - 1;
  std::memcpy(Dst + DstLen, Src, Copy);
  Dst[DstLen + Copy] = '\0';
  return Dst;
}

void *CheckedLibc::memcpy(void *Dst, const void *Src, size_t Count) const {
  size_t Space = availableSpace(Dst);
  size_t Copy = Space == SIZE_MAX ? Count : (Count < Space ? Count : Space);
  return std::memcpy(Dst, Src, Copy);
}

void *CheckedLibc::memset(void *Dst, int Value, size_t Count) const {
  size_t Space = availableSpace(Dst);
  size_t Fill = Space == SIZE_MAX ? Count : (Count < Space ? Count : Space);
  return std::memset(Dst, Value, Fill);
}

} // namespace diehard
