//===- core/AdaptiveHeap.h - dynamically growing DieHard heap ---*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive variant the paper sketches as future work (Section 9): "an
/// adaptive version of DieHard that grows memory regions dynamically as
/// objects are allocated", removing the need to size the heap for the
/// maximum it will ever reach.
///
/// Each size class starts with a small sub-region and, whenever the class
/// reaches its 1/M fill bound, adds a new sub-region that doubles the
/// class's capacity. The DieHard invariant — live objects never exceed 1/M
/// of the class's slots, placement uniform over all slots — is maintained
/// at every moment, so the Section 6 analyses apply with F computed from
/// the *current* capacity. Growth keeps the expected probe count bounded by
/// 1/(1 - 1/M) exactly as in the fixed heap.
///
/// Like the fixed heap, the adaptive heap is decomposed per size class:
/// every class carries its own cache-line-padded lock, its own RNG stream
/// derived from the heap seed, and grows *under its own lock*, one
/// partition at a time — a growth spurt in the 8-byte class never stalls
/// allocation in any other class. All public methods are thread-safe at
/// that per-class granularity.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_CORE_ADAPTIVEHEAP_H
#define DIEHARD_CORE_ADAPTIVEHEAP_H

#include "core/LargeObjectManager.h"
#include "core/SizeClass.h"
#include "support/AddressRangeMap.h"
#include "support/Bitmap.h"
#include "support/MmapRegion.h"
#include "support/Rng.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace diehard {

/// Configuration for an AdaptiveDieHardHeap.
struct AdaptiveOptions {
  /// Slots in the first sub-region of every class. Capacity doubles on
  /// each growth, so even a tiny start reaches any demand in O(log n)
  /// growth steps.
  size_t InitialSlotsPerClass = 64;

  /// The heap expansion factor M (same meaning as DieHardOptions::M).
  double M = 2.0;

  /// RNG seed; 0 selects a truly random seed. Each class derives its own
  /// stream from this seed.
  uint64_t Seed = 0;

  /// Replicated mode: fill allocated objects with random data.
  bool RandomFillObjects = false;
};

/// Counters for the adaptive heap.
struct AdaptiveStats {
  uint64_t Allocations = 0;
  uint64_t Frees = 0;
  uint64_t IgnoredFrees = 0;
  uint64_t Probes = 0;
  uint64_t ProbeFallbacks = 0;   ///< Times the linear fallback scan ran.
  uint64_t Growths = 0;          ///< Sub-regions added across all classes.
  uint64_t LargeAllocations = 0;
  uint64_t LargeFrees = 0;
};

/// DieHard with on-demand region growth instead of a fixed reservation.
///
/// Same correctness contract as DieHardHeap: allocation failure returns
/// nullptr, invalid and double frees are ignored, metadata lives far from
/// the heap. Thread-safe with per-size-class locking: operations on
/// different classes never contend, and growth happens one class at a time
/// under that class's lock.
class AdaptiveDieHardHeap {
public:
  explicit AdaptiveDieHardHeap(
      const AdaptiveOptions &Options = AdaptiveOptions());

  AdaptiveDieHardHeap(const AdaptiveDieHardHeap &) = delete;
  AdaptiveDieHardHeap &operator=(const AdaptiveDieHardHeap &) = delete;

  /// Random-placement allocation; grows the class when it hits its 1/M
  /// bound. \returns nullptr only when the system is out of memory.
  void *allocate(size_t Size);

  /// Validated free; invalid or double frees are ignored.
  void deallocate(void *Ptr);

  /// Usable (rounded) size of the live object containing \p Ptr, or 0.
  size_t getObjectSize(const void *Ptr) const;

  /// Start of the live small object containing \p Ptr, or nullptr.
  void *getObjectStart(const void *Ptr) const;

  /// Current slot capacity of \p Class across all its sub-regions.
  size_t capacityOfClass(int Class) const;

  /// Live objects in \p Class.
  size_t liveInClass(int Class) const;

  /// Bytes of address space currently reserved (all sub-regions).
  size_t reservedBytes() const {
    return Reserved.load(std::memory_order_relaxed);
  }

  const AdaptiveOptions &options() const { return Opts; }

  /// Behaviour counters, materialized from the relaxed atomics; values may
  /// trail concurrent operations by a moment.
  AdaptiveStats stats() const;

  uint64_t seed() const { return ResolvedSeed; }

private:
  struct SubRegion {
    MmapRegion Memory;
    size_t Slots = 0;
    size_t SlotBase = 0; ///< Global slot index of this sub-region's slot 0.
  };

  /// One size class's growable partition: sub-regions, bitmap, RNG stream,
  /// and its own lock, padded so neighbouring classes never false-share.
  struct alignas(64) ClassState {
    mutable std::mutex Lock;
    std::vector<SubRegion> Regions; ///< Guarded by Lock.
    Bitmap Allocated;               ///< One bit per slot, globally indexed.
    size_t TotalSlots = 0;          ///< Guarded by Lock.
    Rng Rand;                       ///< Per-class stream; guarded by Lock.
    std::atomic<size_t> InUse{0};   ///< Lock-free gauge.
    std::atomic<size_t> Capacity{0}; ///< Lock-free mirror of TotalSlots.
  };

  /// Adds a sub-region to \p State, doubling its capacity (the first call
  /// installs the initial region). Requires \p State's lock to be held —
  /// growth stalls only the class that is growing. \returns false on mmap
  /// failure.
  bool growLocked(ClassState &State, int Class);

  /// Maps a global slot index of \p Class to its address. Requires the
  /// class lock.
  char *slotAddress(const ClassState &State, int Class, size_t Slot) const;

  /// If \p Ptr lies in one of \p State's sub-regions, fills in the global
  /// slot index and slot start and returns true. Requires the class lock.
  /// \p AllowInterior accepts pointers not at the slot start.
  bool locateInClass(const ClassState &State, int Class, const void *Ptr,
                     bool AllowInterior, size_t &Slot, char *&Start) const;

  void randomFill(ClassState &State, void *Ptr, size_t Bytes);

  AdaptiveOptions Opts;
  uint64_t ResolvedSeed = 0;
  ClassState Classes[SizeClass::NumClasses];

  /// Every sub-region, tagged with its class index. Pointer queries resolve
  /// the owning class here (one shared-lock lookup) and then take exactly
  /// that class's lock — a free never touches the other classes' locks, so
  /// the per-class isolation of allocate() holds for deallocate() too.
  /// Lock order: a grow inserts while holding its class lock (class lock →
  /// registry write lock); queries release the registry's shared lock
  /// before taking the class lock, so the two orders never interleave.
  AddressRangeMap Regions;

  mutable std::mutex LargeLock;
  LargeObjectManager LargeObjects; ///< Guarded by LargeLock.

  std::atomic<size_t> Reserved{0};

  // Counters (relaxed atomics; incremented on the paths that own the
  // corresponding lock, read lock-free by stats()).
  std::atomic<uint64_t> Allocations{0};
  std::atomic<uint64_t> Frees{0};
  std::atomic<uint64_t> IgnoredFrees{0};
  std::atomic<uint64_t> Probes{0};
  std::atomic<uint64_t> ProbeFallbacks{0};
  std::atomic<uint64_t> Growths{0};
  std::atomic<uint64_t> LargeAllocations{0};
  std::atomic<uint64_t> LargeFrees{0};
};

} // namespace diehard

#endif // DIEHARD_CORE_ADAPTIVEHEAP_H
