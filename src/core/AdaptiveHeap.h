//===- core/AdaptiveHeap.h - dynamically growing DieHard heap ---*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive variant the paper sketches as future work (Section 9): "an
/// adaptive version of DieHard that grows memory regions dynamically as
/// objects are allocated", removing the need to size the heap for the
/// maximum it will ever reach.
///
/// Each size class starts with a small sub-region and, whenever the class
/// reaches its 1/M fill bound, adds a new sub-region that doubles the
/// class's capacity. The DieHard invariant — live objects never exceed 1/M
/// of the class's slots, placement uniform over all slots — is maintained
/// at every moment, so the Section 6 analyses apply with F computed from
/// the *current* capacity. Growth keeps the expected probe count bounded by
/// 1/(1 - 1/M) exactly as in the fixed heap.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_CORE_ADAPTIVEHEAP_H
#define DIEHARD_CORE_ADAPTIVEHEAP_H

#include "core/LargeObjectManager.h"
#include "core/SizeClass.h"
#include "support/Bitmap.h"
#include "support/MmapRegion.h"
#include "support/Rng.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace diehard {

/// Configuration for an AdaptiveDieHardHeap.
struct AdaptiveOptions {
  /// Slots in the first sub-region of every class. Capacity doubles on
  /// each growth, so even a tiny start reaches any demand in O(log n)
  /// growth steps.
  size_t InitialSlotsPerClass = 64;

  /// The heap expansion factor M (same meaning as DieHardOptions::M).
  double M = 2.0;

  /// RNG seed; 0 selects a truly random seed.
  uint64_t Seed = 0;

  /// Replicated mode: fill allocated objects with random data.
  bool RandomFillObjects = false;
};

/// Counters for the adaptive heap.
struct AdaptiveStats {
  uint64_t Allocations = 0;
  uint64_t Frees = 0;
  uint64_t IgnoredFrees = 0;
  uint64_t Probes = 0;
  uint64_t Growths = 0;          ///< Sub-regions added across all classes.
  uint64_t LargeAllocations = 0;
  uint64_t LargeFrees = 0;
};

/// DieHard with on-demand region growth instead of a fixed reservation.
///
/// Same correctness contract as DieHardHeap: allocation failure returns
/// nullptr, invalid and double frees are ignored, metadata lives far from
/// the heap. Not thread-safe by itself.
class AdaptiveDieHardHeap {
public:
  explicit AdaptiveDieHardHeap(
      const AdaptiveOptions &Options = AdaptiveOptions());

  AdaptiveDieHardHeap(const AdaptiveDieHardHeap &) = delete;
  AdaptiveDieHardHeap &operator=(const AdaptiveDieHardHeap &) = delete;

  /// Random-placement allocation; grows the class when it hits its 1/M
  /// bound. \returns nullptr only when the system is out of memory.
  void *allocate(size_t Size);

  /// Validated free; invalid or double frees are ignored.
  void deallocate(void *Ptr);

  /// Usable (rounded) size of the live object containing \p Ptr, or 0.
  size_t getObjectSize(const void *Ptr) const;

  /// Start of the live small object containing \p Ptr, or nullptr.
  void *getObjectStart(const void *Ptr) const;

  /// Current slot capacity of \p Class across all its sub-regions.
  size_t capacityOfClass(int Class) const;

  /// Live objects in \p Class.
  size_t liveInClass(int Class) const;

  /// Bytes of address space currently reserved (all sub-regions).
  size_t reservedBytes() const { return Reserved; }

  const AdaptiveOptions &options() const { return Opts; }
  const AdaptiveStats &stats() const { return Stats; }
  uint64_t seed() const { return ResolvedSeed; }

private:
  struct SubRegion {
    MmapRegion Memory;
    size_t Slots = 0;
    size_t SlotBase = 0; ///< Global slot index of this sub-region's slot 0.
  };

  struct ClassState {
    std::vector<SubRegion> Regions;
    Bitmap Allocated; ///< One bit per slot, globally indexed.
    size_t TotalSlots = 0;
    size_t InUse = 0;
  };

  /// Adds a sub-region to \p Class, doubling its capacity (the first call
  /// installs the initial region). \returns false on mmap failure.
  bool grow(int Class);

  /// Maps a global slot index of \p Class to its address.
  char *slotAddress(const ClassState &State, int Class, size_t Slot) const;

  /// Finds (class, global slot, slot start) for \p Ptr; returns false if
  /// the pointer is in no sub-region or misaligned within its slot unless
  /// \p AllowInterior.
  bool locate(const void *Ptr, bool AllowInterior, int &Class, size_t &Slot,
              char *&Start) const;

  void randomFill(void *Ptr, size_t Bytes);

  AdaptiveOptions Opts;
  uint64_t ResolvedSeed = 0;
  Rng Rand;
  ClassState Classes[SizeClass::NumClasses];
  LargeObjectManager LargeObjects;
  size_t Reserved = 0;
  AdaptiveStats Stats;
};

} // namespace diehard

#endif // DIEHARD_CORE_ADAPTIVEHEAP_H
