//===- core/DieHardHeap.h - the randomized DieHard heap ---------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The randomized memory manager at the heart of DieHard (Section 4),
/// composed from twelve RandomizedPartition objects — one per power-of-two
/// size class (8 B .. 16 KB) — plus the mmap-backed LargeObjectManager.
/// Objects are placed uniformly at random within their class's partition,
/// each partition may become at most 1/M full, all metadata (one bit per
/// object) lives far from the heap, and free validates every address it is
/// given. Larger objects go to the large-object manager.
///
/// The paper states its safety argument per partition, and the class
/// structure mirrors that: DieHardHeap owns the contiguous reservation and
/// the large-object path, routes each request to the partition that covers
/// it, and aggregates accounting; everything class-specific — bitmap,
/// threshold, probe logic, RNG stream — lives in RandomizedPartition. Each
/// partition draws from its own RNG stream derived from the heap seed, so
/// the sharded layer can lock partitions independently.
///
/// This M-approximation of an infinite heap is what provides probabilistic
/// memory safety: overflows probably land on free space, and prematurely
/// freed objects are probably not reused for a long time.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_CORE_DIEHARDHEAP_H
#define DIEHARD_CORE_DIEHARDHEAP_H

#include "core/LargeObjectManager.h"
#include "core/RandomizedPartition.h"
#include "core/SizeClass.h"
#include "support/MmapRegion.h"
#include "support/Rng.h"

#include <cstddef>
#include <cstdint>
#include <functional>

namespace diehard {

/// Configuration for a DieHardHeap.
struct DieHardOptions {
  /// Total bytes reserved across all twelve size-class partitions. Reserved
  /// pages are committed lazily, so a large default is cheap. The paper's
  /// experiments use 384 MB.
  size_t HeapSize = 384 * 1024 * 1024;

  /// The heap expansion factor M: each partition may become at most 1/M
  /// full. M = 2 means the heap is twice the maximum live size.
  double M = 2.0;

  /// RNG seed. Zero selects a truly random seed (from /dev/urandom), which
  /// is what the replicated framework wants; tests pass a fixed seed. Each
  /// partition derives its own stream from this seed.
  uint64_t Seed = 0;

  /// Replicated mode: fill each allocated object with random values so that
  /// uninitialized reads return different data in every replica
  /// (Section 3.2). Stand-alone mode leaves objects untouched.
  bool RandomFillObjects = false;

  /// Replicated mode: additionally fill freed objects with fresh random
  /// values, so reads through dangling pointers also diverge across
  /// replicas.
  bool RandomFillOnFree = false;

  /// Replicated mode, Figure 2's initialization: fill the *entire* heap
  /// with random values up front, so reads beyond object bounds also
  /// return replica-divergent data. Commits every page of the
  /// reservation, so it trades the lazy-initialization space saving for
  /// maximal detection (the paper enables it only in replicated mode).
  bool RandomFillHeapOnInit = false;

  /// Page meshing: back the reservation with a memfd (MAP_SHARED) so the
  /// sweeper's maintain() passes can remap pairs of sparse pages with
  /// disjoint occupancy onto one physical frame — RSS drops, every
  /// virtual address, bitmap bit, and validation path is untouched.
  /// Incompatible with the random-fill options (a meshed frame's punch
  /// refaults zero) — the constructor ignores Meshing when any fill
  /// option is set, and falls back to a private mapping (meshing off,
  /// heap fully functional) when the kernel lacks memfd support.
  bool Meshing = false;
};

/// Running counters describing heap behaviour; used by tests, benches, and
/// the experiment harness. Aggregated over the partitions on each stats()
/// call.
struct DieHardStats {
  uint64_t Allocations = 0;       ///< Successful small allocations.
  /// Successful small frees. NOT monotonic while frees are in flight:
  /// aggregations count parked deferred-buffer entries and undrained
  /// sidecar pushes as Frees (the user's free already happened), and an
  /// in-flight entry that fails validation when it materializes is
  /// reclassified to IgnoredFrees — so sampling Frees as a monotonic
  /// event counter can see a small negative delta across a flush/drain.
  /// Exact at quiescence.
  uint64_t Frees = 0;
  uint64_t LargeAllocations = 0;  ///< Successful large allocations.
  uint64_t LargeFrees = 0;        ///< Successful large frees.
  uint64_t FailedAllocations = 0; ///< Requests refused (partition full).
  uint64_t IgnoredFrees = 0;      ///< Invalid/double frees ignored.
  uint64_t ReallocRejects = 0;    ///< realloc() of a pointer that is not a
                                  ///< live heap object, refused (nullptr
                                  ///< returned, no state touched) — the
                                  ///< realloc-entry analogue of
                                  ///< IgnoredFrees.
  uint64_t Probes = 0;            ///< Bitmap probes across all allocations.
  uint64_t ProbeFallbacks = 0;    ///< Times the linear fallback scan ran.
  uint64_t OverflowAllocations = 0; ///< Allocations served by a sibling
                                    ///< shard (sharded layer only; always 0
                                    ///< for a lone DieHardHeap).

  // Thread-cache tier (sharded layer only; always 0 for a lone heap).
  uint64_t CachedSlots = 0;   ///< Slots currently claimed into caches.
  uint64_t CacheRefills = 0;  ///< Batch refills taken from partitions.
  uint64_t CacheFlushes = 0;  ///< Deferred-free / full cache flushes.

  // Remote-free sidecar (pushed only by the sharded layer's cross-shard
  // frees; always 0 for a lone heap).
  uint64_t RemoteFrees = 0;   ///< Lock-free sidecar pushes accepted.
  uint64_t SidecarDrains = 0; ///< Non-empty owner-side sidecar drains.

  // Epoch sweeper (sharded layer only; always 0 for a lone heap or with
  // the sweeper disabled).
  uint64_t SweepPasses = 0;          ///< Completed sweeper passes.
  uint64_t SweeperDrainedRemote = 0; ///< Sidecar entries drained by sweeps.
  uint64_t AgedCaches = 0;           ///< Quiet thread caches aged out.
  uint64_t PagesReturned = 0;        ///< Object-free data pages returned to
                                     ///< the OS by the span scanner.
  uint64_t PartialReturns = 0;       ///< maintain() scans that released
                                     ///< pages from a partition.
  uint64_t SpansReleased = 0;        ///< Contiguous page runs advised away
                                     ///< (one madvise call each).
  uint64_t MeshCandidates = 0;       ///< Disjoint page pairs found by mesh
                                     ///< scans (attempted meshes).
  uint64_t PagesMeshed = 0;          ///< Donor pages remapped onto a
                                     ///< survivor's physical frame.
  uint64_t MeshedBytes = 0;          ///< Physical bytes reclaimed by
                                     ///< meshing.
};

/// Folds one partition's counters into \p Total: the PartitionStats
/// fields, the sidecar gauges (push-time rejects into IgnoredFrees), and
/// the in-flight (undrained) sidecar entries into Frees — those are frees
/// the user already performed, so Allocations == Frees holds at
/// quiescence with entries still parked. The ONE fold every aggregation
/// path (lone heap, sharded locked stats, sharded lock-free approx) goes
/// through, so the layers' books cannot silently diverge.
void addPartitionStats(DieHardStats &Total, const RandomizedPartition &P);

/// The randomized DieHard memory manager.
///
/// Not thread-safe by itself; concurrent users must wrap calls in locks.
/// Because every small-object operation touches exactly one partition, the
/// sharded layer locks at partition granularity: two threads are free to
/// operate on *different* size classes of the same DieHardHeap
/// concurrently, as long as each class is serialized (see ShardedHeap for
/// the lock table; partitionIndexOf() is the pre-lock routing query). The
/// large-object path and the whole-heap queries (stats(), bytesLive(),
/// forEachLiveObject()) are not covered by that scheme and remain
/// single-threaded-or-externally-serialized.
///
/// The heap never throws and never aborts on bad input: allocation failure
/// returns nullptr and invalid frees are silently ignored, exactly as the
/// paper specifies.
class DieHardHeap {
public:
  /// Number of size-class partitions.
  static constexpr int NumPartitions = SizeClass::NumClasses;

  /// Creates a heap per \p Options. On mmap failure the heap is unusable and
  /// every allocation returns nullptr (isValid() reports false).
  explicit DieHardHeap(const DieHardOptions &Options = DieHardOptions());

  DieHardHeap(const DieHardHeap &) = delete;
  DieHardHeap &operator=(const DieHardHeap &) = delete;
  ~DieHardHeap();

  /// Returns true if the backing reservation succeeded.
  bool isValid() const { return Heap.base() != nullptr; }

  /// DieHardMalloc (Figure 2): random-probe allocation for small sizes,
  /// mmap with guard pages for large ones. \returns nullptr when the size
  /// class is at its 1/M threshold or the request cannot be satisfied.
  void *allocate(size_t Size);

  /// DieHardFree (Figure 2): frees \p Ptr if and only if it is a currently
  /// live object at a correct slot offset; otherwise the request is ignored.
  void deallocate(void *Ptr);

  /// C realloc semantics on top of allocate/deallocate.
  void *reallocate(void *Ptr, size_t NewSize);

  /// Zero-initialized allocation (C calloc semantics, overflow-checked).
  void *allocateZeroed(size_t Count, size_t Size);

  /// Returns the usable size of the object containing \p Ptr: the rounded
  /// size-class size for small objects (for any interior pointer of a live
  /// object), the requested size for large objects, and 0 if \p Ptr is not a
  /// live heap object. This is the query the checked libc functions
  /// (Section 4.4) use to clamp writes.
  size_t getObjectSize(const void *Ptr) const;

  /// Returns the start of the live object containing \p Ptr (interior
  /// pointers allowed), or nullptr if \p Ptr is not inside a live small
  /// object. Large objects are matched only by their exact base address.
  void *getObjectStart(const void *Ptr) const;

  /// Returns true if \p Ptr lies anywhere inside the small-object heap
  /// reservation (live or not).
  bool isInHeap(const void *Ptr) const { return Heap.contains(Ptr); }

  /// Base address of the small-object reservation (nullptr if invalid).
  /// The sharded layer registers [heapBase(), heapBase() + heapBytes()) in
  /// its address-range registry to route frees to the owning shard.
  const void *heapBase() const { return Heap.base(); }

  /// Size in bytes of the small-object reservation (0 if invalid).
  size_t heapBytes() const { return Heap.size(); }

  /// Index of the partition (= size class) covering \p Ptr, or -1 if \p Ptr
  /// is outside the small-object reservation. This is the pre-lock routing
  /// query concurrent layers use to pick the partition lock before calling
  /// deallocate()/getObjectSize(); it reads only construction-time state.
  int partitionIndexOf(const void *Ptr) const;

  /// Thread-cache batch claim: up to \p MaxCount uniformly chosen slots of
  /// size class \p Class, written to \p Out in shuffled order and counted
  /// as live (see RandomizedPartition::claimRandomSlots). Callers hold the
  /// class's partition lock in concurrent configurations.
  size_t claimCachedSlots(int Class, void **Out, size_t MaxCount);

  /// Returns never-handed-out cached slots of class \p Class to their
  /// partition (see RandomizedPartition::reclaimSlots). Same locking rule.
  void reclaimCachedSlots(int Class, void *const *Ptrs, size_t Count);

  /// Validated batch free of \p Count pointers, all inside class \p Class's
  /// partition, under one lock acquisition. \returns the number freed.
  size_t deallocateBatch(int Class, void *const *Ptrs, size_t Count);

  /// Lock-free cross-thread free: pushes \p Ptr (inside class \p Class's
  /// partition) onto that partition's remote-free sidecar without taking
  /// any lock (see RandomizedPartition::remoteFree). Callable from any
  /// thread concurrently with lock-holding operations on the partition.
  void remoteFree(int Class, void *Ptr);

  /// Drains class \p Class's remote-free sidecar through the validated
  /// free path. Callers hold the class's partition lock in concurrent
  /// configurations. \returns the number of entries processed.
  size_t drainRemoteFrees(int Class);

  /// Epoch-maintenance pass over class \p Class's partition: sidecar drain
  /// plus empty-partition page return (see RandomizedPartition::maintain).
  /// Callers hold the class's partition lock in concurrent configurations.
  RandomizedPartition::MaintainOutcome maintain(int Class);

  /// Read-only access to partition \p Class: per-partition stats, fill
  /// gauges, and the live-object walk. The lock-free gauges (live(),
  /// liveBytes(), fill()) are safe to read concurrently; the rest follows
  /// the partition's locking discipline.
  const RandomizedPartition &partition(int Class) const;

  /// Number of live small objects in size class \p Class.
  size_t liveInClass(int Class) const { return partition(Class).live(); }

  /// Slot capacity of size class \p Class (before applying the 1/M bound).
  size_t slotsInClass(int Class) const { return partition(Class).slots(); }

  /// Maximum live objects allowed in \p Class (the 1/M threshold).
  size_t thresholdForClass(int Class) const {
    return partition(Class).threshold();
  }

  /// Bytes currently live (rounded sizes; includes large objects).
  size_t bytesLive() const;

  /// The heap options this instance was built with.
  const DieHardOptions &options() const { return Opts; }

  /// True when the reservation is memfd-backed and at least one partition
  /// accepted mesh binding — i.e. maintain() passes may actually mesh.
  /// False when Meshing was requested but the kernel refused memfd (the
  /// constructor fell back to a private mapping).
  bool meshingActive() const { return MeshingActive; }

  /// Behaviour counters, aggregated across the partitions and the
  /// large-object path. Not synchronized: call single-threaded or use the
  /// sharded layer's locked aggregation.
  DieHardStats stats() const;

  /// The seed actually used (after resolving Seed == 0 to a random one).
  uint64_t seed() const { return ResolvedSeed; }

  /// Visits every live small object as (size class, slot index, pointer,
  /// rounded size). Iteration order is deterministic (class-major, slot
  /// ascending), which the heap-differencing debugger relies on.
  void forEachLiveObject(
      const std::function<void(int Class, size_t Slot, const void *Ptr,
                               size_t Size)> &Visit) const;

private:
  /// Fills \p Size bytes at \p Ptr with values from the heap-level RNG
  /// (whole-heap init fill and large-object fill; partitions fill their own
  /// objects from their own streams).
  void randomFill(void *Ptr, size_t Size);

  DieHardOptions Opts;
  uint64_t ResolvedSeed = 0;
  Rng Rand; ///< Heap-level stream: init fill and large-object fill only.
  MmapRegion Heap;
  size_t PartitionSize = 0; ///< Bytes per size-class partition.
  bool MeshingActive = false; ///< Meshable backing up and bound.

  RandomizedPartition Partitions[NumPartitions];

  LargeObjectManager LargeObjects;

  // Large-object and foreign-pointer accounting. These live at the heap
  // level (not in any partition) and are only touched by the stand-alone
  // large path and by frees of pointers outside the reservation — paths the
  // sharded layer never routes into a shard, so they need no lock there.
  uint64_t LargeAllocationCount = 0;
  uint64_t LargeFreeCount = 0;
  uint64_t LargeFailedCount = 0;
  uint64_t ForeignIgnoredFrees = 0;
  uint64_t ReallocRejectCount = 0;
  size_t LargeLiveBytes = 0;
};

} // namespace diehard

#endif // DIEHARD_CORE_DIEHARDHEAP_H
