//===- core/SizeClass.h - power-of-two size classes -------------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The twelve power-of-two size classes of the DieHard heap, 8 bytes through
/// 16 kilobytes (Section 4.1). Requests are rounded up to the nearest power
/// of two; using powers of two lets division and modulus be bit operations,
/// which the paper calls out as significantly speeding allocation.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_CORE_SIZECLASS_H
#define DIEHARD_CORE_SIZECLASS_H

#include <bit>
#include <cassert>
#include <cstddef>

namespace diehard {

/// Size-class geometry shared by the heap, the analysis module, and the
/// fault-injection harness.
struct SizeClass {
  /// Number of size classes: 8, 16, ..., 16384 bytes.
  static constexpr int NumClasses = 12;

  /// Smallest object size in bytes (class 0).
  static constexpr size_t MinObjectSize = 8;

  /// Largest object handled by the randomized heap; anything bigger goes to
  /// the large-object manager (mmap with guard pages).
  static constexpr size_t MaxObjectSize = 16 * 1024;

  /// Returns the object size of class \p Class.
  static constexpr size_t classToSize(int Class) {
    assert(Class >= 0 && Class < NumClasses && "size class out of range");
    return MinObjectSize << Class;
  }

  /// Returns the class whose object size is the smallest power of two that
  /// can hold \p Size bytes. \p Size must be in (0, MaxObjectSize].
  static constexpr int sizeToClass(size_t Size) {
    assert(Size > 0 && Size <= MaxObjectSize && "size out of class range");
    if (Size <= MinObjectSize)
      return 0;
    // ceil(log2(Size)) - log2(MinObjectSize).
    return std::bit_width(Size - 1) - 3;
  }

  /// Rounds \p Size up to its class's object size.
  static constexpr size_t roundUp(size_t Size) {
    return classToSize(sizeToClass(Size));
  }

  /// Returns true if \p Size is served by the randomized small-object heap.
  static constexpr bool isSmall(size_t Size) {
    return Size > 0 && Size <= MaxObjectSize;
  }
};

static_assert(SizeClass::classToSize(0) == 8, "class 0 must be 8 bytes");
static_assert(SizeClass::classToSize(11) == 16384,
              "class 11 must be 16 KB");
static_assert(SizeClass::sizeToClass(8) == 0, "8 bytes maps to class 0");
static_assert(SizeClass::sizeToClass(9) == 1, "9 bytes maps to class 1");
static_assert(SizeClass::sizeToClass(16384) == 11,
              "16 KB maps to class 11");

} // namespace diehard

#endif // DIEHARD_CORE_SIZECLASS_H
