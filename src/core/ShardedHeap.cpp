//===- core/ShardedHeap.cpp -----------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the sharded heap: thread-token assignment, owner lookup
/// through the range array and AddressRangeMap, per-partition locking, the
/// overflow routing slow path, and the shared large-object path. See the
/// header for the locking discipline.
///
//===----------------------------------------------------------------------===//

#include "core/ShardedHeap.h"

#include "core/SizeClass.h"
#include "support/RealRandomSource.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

#include <time.h>
#include <unistd.h>

namespace diehard {

namespace {

/// Salt for the large-object fill RNG, so its stream is unrelated to any
/// shard's placement streams under a fixed seed.
constexpr uint64_t LargeSeedSalt = 0xD1E4A8D0B5E7ULL;

/// Monotonic source of heap-instance ids (starting at 1; 0 is the memo's
/// "empty" key). Ids are never reused, so a thread's cache memo can never
/// alias a later heap.
std::atomic<uint64_t> NextHeapId{1};

/// Monotonic source of thread tokens. Process-global (not per heap): a
/// thread keeps one token for its lifetime and maps it onto any instance's
/// shard count with a modulo, which round-robins threads across shards and
/// wraps naturally when threads outnumber shards.
std::atomic<uint32_t> NextThreadToken{0};

/// The token, offset by one so zero means "unassigned". Constant-initialized
/// POD with initial-exec TLS: reading it never allocates, which matters
/// inside the malloc shim.
#if defined(__GNUC__)
thread_local uint32_t ThreadToken __attribute__((tls_model("initial-exec"))) =
    0;
#else
thread_local uint32_t ThreadToken = 0;
#endif

/// Guards the process-global intrusive list of sweeper-enabled heaps the
/// fork handlers walk. Ordering: list lock -> sweeper pass gate; nothing
/// that holds a pass gate ever takes the list lock.
pthread_mutex_t SweeperListLock = PTHREAD_MUTEX_INITIALIZER;
ShardedHeap *SweeperListHead = nullptr;
pthread_once_t SweeperAtforkOnce = PTHREAD_ONCE_INIT;

} // namespace

size_t ShardedHeap::defaultShardCount() {
  long Cpus = ::sysconf(_SC_NPROCESSORS_ONLN);
  if (Cpus < 1)
    Cpus = 1;
  return static_cast<size_t>(Cpus) < MaxShards ? static_cast<size_t>(Cpus)
                                               : MaxShards;
}

ShardedHeap::ShardedHeap(const ShardedHeapOptions &Options) : Opts(Options) {
  size_t N = Opts.NumShards != 0 ? Opts.NumShards : defaultShardCount();
  if (N > MaxShards)
    N = MaxShards;

  // Every shard reserves the full configured heap size (Hoard-style). The
  // reservation is MAP_NORESERVE virtual space and the bitmaps are
  // demand-zero mappings, so unused shards cost nothing physical — while a
  // process that allocates from a single thread keeps the full capacity it
  // was configured for instead of 1/N of it.
  DieHardOptions PerShard = Opts.Heap;

  Shards.reserve(N);
  Valid = true;
  for (size_t I = 0; I < N; ++I) {
    DieHardOptions O = PerShard;
    if (Opts.Heap.Seed != 0)
      O.Seed = Rng::deriveStream(Opts.Heap.Seed, static_cast<uint64_t>(I),
                                 Rng::ShardStreamGamma);
    Shards.push_back(std::make_unique<Shard>(O));
    Valid = Valid && Shards.back()->Heap.isValid();
  }
  LargeOwner = static_cast<uint32_t>(N);

  if (Valid) {
    // Record each shard's contiguous small-object reservation; the array is
    // immutable from here on, so ownerOf() reads it without locks.
    ShardRanges.reserve(N);
    for (size_t I = 0; I < N; ++I) {
      const DieHardHeap &H = Shards[I]->Heap;
      auto Begin = reinterpret_cast<uintptr_t>(H.heapBase());
      ShardRanges.push_back(ShardRange{Begin, Begin + H.heapBytes()});
    }
  }

  LargeRand.setSeed(Opts.Heap.Seed != 0 ? Opts.Heap.Seed ^ LargeSeedSalt
                                        : realRandomSeed());

  Id = NextHeapId.fetch_add(1, std::memory_order_relaxed);
  if (Opts.ThreadCacheSlots != 0) {
    size_t K = Opts.ThreadCacheSlots;
    if (K > ThreadCache::MaxSlotsPerClass)
      K = ThreadCache::MaxSlotsPerClass;
    CacheSlotsPerClass = static_cast<uint32_t>(K);
    size_t D = 2 * K;
    if (D < 16)
      D = 16;
    if (D > ThreadCache::MaxDeferred)
      D = ThreadCache::MaxDeferred;
    CacheDeferredCap = static_cast<uint32_t>(D);
    // Adaptive sizing moves each cache's per-class K within
    // [K/4, 8K] (clamped to [2, MaxSlotsPerClass]); buffers are sized for
    // the cap so growth never needs a remap. Fixed mode pins cap == K.
    CacheAdaptive = Opts.ThreadCacheAdaptive;
    if (CacheAdaptive) {
      size_t Cap = 8 * K;
      if (Cap > ThreadCache::MaxSlotsPerClass)
        Cap = ThreadCache::MaxSlotsPerClass;
      CacheCapPerClass = static_cast<uint32_t>(Cap);
      CacheMinK = static_cast<uint32_t>(K / 4 < 2 ? 2 : K / 4);
    } else {
      CacheCapPerClass = CacheSlotsPerClass;
      CacheMinK = CacheSlotsPerClass;
    }
  }

  if (Opts.SweepIntervalMs == 0)
    Opts.SweepIntervalMs = 1;
  if (Opts.Sweeper && Valid)
    startSweeper();
}

ShardedHeap::~ShardedHeap() {
  // Join the sweeper before anything it walks (caches, partitions) goes
  // away. After this returns no other thread touches this instance.
  stopSweeper();
  // Threads using this heap are contractually done; their caches hold only
  // pointers into reservations that are about to vanish, so there is
  // nothing to flush — just orphan them. Owner threads prune the corpses
  // lazily (or at their exit).
  threadCacheRetireHeap(Caches);
}

const DieHardHeap &ShardedHeap::shard(size_t Index) const {
  return Shards[Index]->Heap;
}

uint32_t ShardedHeap::ownerOf(const void *Ptr) const {
  auto P = reinterpret_cast<uintptr_t>(Ptr);
  for (size_t I = 0; I < ShardRanges.size(); ++I)
    if (P >= ShardRanges[I].Begin && P < ShardRanges[I].End)
      return static_cast<uint32_t>(I);
  return Registry.ownerOf(Ptr); // LargeOwner for live large objects.
}

size_t ShardedHeap::shardIndexOf(const void *Ptr) const {
  uint32_t Owner = ownerOf(Ptr);
  if (Owner == AddressRangeMap::NoOwner)
    return SIZE_MAX;
  return Owner;
}

uint32_t ShardedHeap::homeShard() const {
  uint32_t T = ThreadToken;
  if (T == 0) {
    T = NextThreadToken.fetch_add(1, std::memory_order_relaxed) + 1;
    ThreadToken = T;
  }
  return (T - 1) % static_cast<uint32_t>(Shards.size());
}

void ShardedHeap::pinThreadToken(uint32_t Token) {
  // Offset by one: zero is homeShard()'s "unassigned" sentinel, so a pin
  // of token 0 must still stick (and map to shard 0).
  ThreadToken = Token + 1;
}

void *ShardedHeap::allocateSmallIn(uint32_t Index, int Class, size_t Size) {
  Shard &S = *Shards[Index];
  std::lock_guard<std::mutex> Guard(partitionLock(S, Class));
  // Opportunistic sidecar drain — the allocate-slow-path boundary. Free on
  // the common path (one relaxed load when empty), and it means a
  // partition driven to its 1/M bound recovers capacity from in-flight
  // cross-shard frees before refusing work.
  S.Heap.drainRemoteFrees(Class);
  return S.Heap.allocate(Size);
}

void *ShardedHeap::allocate(size_t Size) {
  if (!Valid || Size == 0)
    return nullptr;
  if (Size > SizeClass::MaxObjectSize)
    return allocateLarge(Size);
  int Class = SizeClass::sizeToClass(Size);

  // The lock-free fast path: pop a pre-claimed slot from the calling
  // thread's cache. On an empty class buffer, one locked batch refill; if
  // even that finds the home partition saturated, fall through to the
  // ordinary locked path, which knows how to route overflow to a sibling.
  if (CacheSlotsPerClass != 0) {
    ThreadCache *TC = cacheForThread();
    if (TC != nullptr) {
      // The guard is the owner half of the sweeper handshake; it compiles
      // to nothing when the sweeper is off.
      CacheOpGuard Bracket(*this, *TC);
      void *Ptr = TC->pop(Class);
      if (Ptr != nullptr)
        return Ptr;
      Ptr = refillAndPop(*TC, Class);
      if (Ptr != nullptr)
        return Ptr;
    }
  }

  uint32_t Home = homeShard();
  bool Route = Opts.OverflowRouting && Shards.size() > 1;

  // With routing on, a saturated home partition is a detour, not a
  // failure, so keep its FailedAllocations meaningful: skip the locked
  // attempt when the lock-free gauge already shows the 1/M bound. A stale
  // gauge read can still let a doomed attempt through — the partition
  // re-checks under its lock and counts that refusal — so remember
  // whether home already recorded this request before counting the
  // whole-request failure below.
  void *Ptr = nullptr;
  bool HomeCounted = false;
  const RandomizedPartition &HomePart = Shards[Home]->Heap.partition(Class);
  if (!Route || HomePart.live() < HomePart.threshold() ||
      HomePart.hasPendingRemoteFrees()) {
    // (A saturated gauge with sidecar entries pending still takes the
    // locked attempt: the drain inside may recover capacity.)
    Ptr = allocateSmallIn(Home, Class, Size);
    HomeCounted = Ptr == nullptr;
  }
  if (Ptr != nullptr || !Route)
    return Ptr;
  // Home partition at its 1/M bound: steal capacity from a sibling.
  Ptr = allocateOverflow(Home, Class, Size);
  if (Ptr == nullptr && !HomeCounted) {
    // The request failed as a whole (home and every viable sibling
    // saturated) and no partition counter recorded a refusal — the
    // saturated partitions were skipped by gauge — so record the failed
    // malloc here. One failed request thus counts once in the common
    // path; the only residual imprecision is a stale-gauge race letting
    // a refusal through whose request a sibling then serves, which
    // leaves a spurious partition-level count behind (benign, rare, and
    // only possible under concurrent saturation).
    OverflowFailedCount.fetch_add(1, std::memory_order_relaxed);
  }
  return Ptr;
}

void *ShardedHeap::allocateOverflow(uint32_t Home, int Class, size_t Size) {
  // With the sweeper running, rank siblings from its published pressure
  // table — two gauge loads per sibling become one table load, and the
  // table is refreshed every pass. Table entries can be a full sweep
  // interval stale, so a miss (every table-ranked probe refused under its
  // lock) falls back to one direct-gauge round; staleness costs a retry,
  // never a spurious whole-request failure.
  void *Ptr = overflowProbe(Home, Class, Size, /*UseTable=*/SweeperOn);
  if (Ptr == nullptr && SweeperOn)
    Ptr = overflowProbe(Home, Class, Size, /*UseTable=*/false);
  return Ptr;
}

void *ShardedHeap::overflowProbe(uint32_t Home, int Class, size_t Size,
                                 bool UseTable) {
  // Rank siblings by the target partition's fill, skipping ones whose
  // gauge already shows saturation. The gauges (and the sweeper's table)
  // are relaxed atomics, so this snapshot can be stale — harmless, because
  // the chosen partition re-checks its 1/M bound under its own lock. All
  // shards share one threshold (same options), so the live count alone
  // orders fills.
  struct Candidate {
    size_t Live;
    uint32_t Index;
  };
  Candidate Candidates[MaxShards];
  size_t N = 0;
  for (uint32_t I = 0; I < Shards.size(); ++I) {
    if (I == Home)
      continue;
    const RandomizedPartition &P = Shards[I]->Heap.partition(Class);
    size_t Live;
    if (UseTable) {
      Live = Pressure[I * static_cast<size_t>(DieHardHeap::NumPartitions) +
                      static_cast<size_t>(Class)]
                 .load(std::memory_order_relaxed);
    } else {
      Live = P.live();
      // Rank by live net of undrained sidecar entries: those slots free
      // the moment the candidate's lock is taken (allocateSmallIn drains
      // first), so a gauge-saturated partition with pending frees is
      // still viable. (The table is published already net of pending.)
      uint64_t Pending = P.pendingRemoteFrees();
      Live = Pending < Live ? Live - static_cast<size_t>(Pending) : 0;
    }
    if (Live < P.threshold())
      Candidates[N++] = {Live, I};
  }
  std::sort(Candidates, Candidates + N,
            [](const Candidate &A, const Candidate &B) {
              return A.Live < B.Live;
            });

  size_t Probes = N < MaxOverflowProbes ? N : MaxOverflowProbes;
  for (size_t K = 0; K < Probes; ++K) {
    void *Ptr = allocateSmallIn(Candidates[K].Index, Class, Size);
    if (Ptr != nullptr) {
      OverflowCount.fetch_add(1, std::memory_order_relaxed);
      return Ptr;
    }
  }
  return nullptr; // Every probed sibling is at its 1/M bound too.
}

ThreadCache *ShardedHeap::cacheForThread() {
  ThreadCache *TC = threadCacheLookup(Id);
  if (TC == nullptr)
    TC = threadCacheInstall(*this, Caches, Id, homeShard(),
                            CacheCapPerClass, CacheSlotsPerClass,
                            CacheDeferredCap);
  // Activity stamp for the sweeper's aging scan: every cache operation
  // passes through here, so a thread is "quiet" exactly when it has made
  // no allocator call for two full sweep intervals. Two relaxed accesses,
  // only when the sweeper is on.
  if (TC != nullptr && SweeperOn)
    TC->stampEpoch(SweepPassCount.load(std::memory_order_relaxed));
  return TC;
}

void *ShardedHeap::refillAndPop(ThreadCache &TC, int Class) {
  Shard &S = *Shards[TC.homeShard()];
  // Lock-free gauge pre-check, mirroring the locked path's: when the home
  // partition already shows its 1/M bound, skip the doomed lock
  // round-trip — otherwise a saturated class would re-serialize every
  // same-class thread on exactly the mutex this tier exists to avoid. A
  // stale read is harmless: claimCachedSlots re-checks under the lock.
  // Pending sidecar entries override the skip: the drain below may
  // recover capacity from in-flight cross-shard frees.
  const RandomizedPartition &Part = S.Heap.partition(Class);
  if (Part.live() >= Part.threshold() && !Part.hasPendingRemoteFrees()) {
    // Saturation is still demand: mark the class active so the adaptive
    // idle sweep does not halve a hot-but-capacity-starved class's K to
    // the floor (growth itself waits for a successful refill — claims
    // clip at the threshold, so growing now would be pointless).
    if (CacheAdaptive)
      TC.noteRefill(Class);
    return nullptr;
  }
  void *Batch[ThreadCache::MaxSlotsPerClass];
  size_t N;
  {
    std::lock_guard<std::mutex> Guard(partitionLock(S, Class));
    // The refill boundary is a sidecar drain point: the lock is held
    // anyway, and draining first lets the claim below reuse slots that
    // cross-shard frees just returned.
    S.Heap.drainRemoteFrees(Class);
    N = S.Heap.claimCachedSlots(Class, Batch, TC.targetK(Class));
  }
  if (N == 0) {
    if (CacheAdaptive)
      TC.noteRefill(Class); // As above: saturated, not idle.
    return nullptr; // Home partition at its 1/M bound.
  }
  CacheRefillCount.fetch_add(1, std::memory_order_relaxed);
  // Refill boundaries double as fold points, keeping the per-pop fast path
  // free of shared atomics while the aggregates stay at most K behind.
  FoldedPops.fetch_add(TC.takePops(), std::memory_order_relaxed);
  TC.put(Class, Batch, N);
  void *Ptr = TC.pop(Class);
  if (CacheAdaptive)
    adaptAfterRefill(TC, Class);
  return Ptr;
}

void ShardedHeap::adaptAfterRefill(ThreadCache &TC, int Class) {
  // A second refill of the same class within one sweep window marks it
  // hot: double its batch size toward the cap, halving the class's lock
  // round-trips per allocation from here on. Growth is geometric, so a
  // class at the base K reaches the cap within a few hot windows.
  if (TC.noteRefill(Class) >= CacheGrowRefills) {
    uint32_t K = TC.targetK(Class) * 2;
    TC.setTargetK(Class, K < CacheCapPerClass ? K : CacheCapPerClass);
  }
  maybeSweepCache(TC);
}

void ShardedHeap::maybeSweepCache(ThreadCache &TC) {
  if (!TC.tickSlowPath(CacheSweepPeriod))
    return;
  // The closing window's verdict, class by class: classes with no refill
  // shrink (halve toward the floor) and hand any cached surplus above the
  // new K back to their home partition, releasing idle claims against the
  // 1/M bound. reclaimSlots undoes the claim exactly — no Frees counted,
  // placement statistics untouched.
  Shard &S = *Shards[TC.homeShard()];
  void *Surplus[ThreadCache::MaxSlotsPerClass];
  for (int C = 0; C < DieHardHeap::NumPartitions; ++C) {
    if (TC.takeRefillMark(C) != 0)
      continue; // Active this window; growth already handled it.
    uint32_t K = TC.targetK(C) / 2;
    uint32_t NewK = K > CacheMinK ? K : CacheMinK;
    TC.setTargetK(C, NewK);
    size_t N = TC.takeSurplus(C, Surplus, NewK);
    if (N != 0) {
      std::lock_guard<std::mutex> Guard(partitionLock(S, C));
      S.Heap.drainRemoteFrees(C);
      S.Heap.reclaimCachedSlots(C, Surplus, N);
    }
  }
}

void ShardedHeap::flushDeferred(ThreadCache &TC, bool Adapt) {
  DeferredFree Buf[ThreadCache::MaxDeferred];
  size_t N = TC.drainDeferred(Buf);
  if (N == 0)
    return;
  // Return the frees grouped by owning partition. Home-shard groups go
  // back as one locked batch — those locks are the cheap, rarely-contended
  // ones, and holding them drains the sidecar for free. Groups owned by
  // OTHER shards never touch the remote mutex: each pointer is pushed onto
  // the owning partition's lock-free sidecar, to be materialized by
  // whoever holds that lock next. Cross-shard flushing thus contends with
  // nobody.
  void *Group[ThreadCache::MaxDeferred];
  size_t Remaining = N;
  while (Remaining != 0) {
    uint32_t Owner = Buf[0].Owner;
    int32_t Class = Buf[0].Class;
    size_t GroupSize = 0, Kept = 0;
    for (size_t I = 0; I < Remaining; ++I) {
      if (Buf[I].Owner == Owner && Buf[I].Class == Class)
        Group[GroupSize++] = Buf[I].Ptr;
      else
        Buf[Kept++] = Buf[I];
    }
    Shard &S = *Shards[Owner];
    if (Owner == TC.homeShard()) {
      std::lock_guard<std::mutex> Guard(partitionLock(S, Class));
      S.Heap.drainRemoteFrees(Class);
      S.Heap.deallocateBatch(Class, Group, GroupSize);
    } else {
      for (size_t I = 0; I < GroupSize; ++I)
        S.Heap.remoteFree(Class, Group[I]);
    }
    Remaining = Kept;
  }
  CacheFlushCount.fetch_add(1, std::memory_order_relaxed);
  // Adaptive bookkeeping touches the owner's private sizing words, so a
  // sweeper-driven flush (Adapt == false) must skip it: the seized owner
  // is quiescent but may resume the instant the sweeper releases it.
  if (CacheAdaptive && Adapt)
    maybeSweepCache(TC);
}

void ShardedHeap::flushCacheFully(ThreadCache &TC, bool Adapt) {
  flushDeferred(TC, Adapt);
  Shard &S = *Shards[TC.homeShard()];
  void *Slots[ThreadCache::MaxSlotsPerClass];
  for (int C = 0; C < DieHardHeap::NumPartitions; ++C) {
    size_t N = TC.take(C, Slots);
    if (N == 0)
      continue;
    std::lock_guard<std::mutex> Guard(partitionLock(S, C));
    S.Heap.drainRemoteFrees(C);
    S.Heap.reclaimCachedSlots(C, Slots, N);
  }
  FoldedPops.fetch_add(TC.takePops(), std::memory_order_relaxed);
  CacheFlushCount.fetch_add(1, std::memory_order_relaxed);
}

void ShardedHeap::flushThreadCache() {
  if (CacheSlotsPerClass == 0)
    return;
  ThreadCache *TC = threadCacheLookup(Id);
  if (TC != nullptr) {
    CacheOpGuard Bracket(*this, *TC);
    flushCacheFully(*TC);
  }
}

size_t ShardedHeap::drainRemoteFrees() {
  size_t Drained = 0;
  for (const std::unique_ptr<Shard> &S : Shards)
    for (int C = 0; C < DieHardHeap::NumPartitions; ++C) {
      if (!S->Heap.partition(C).hasPendingRemoteFrees())
        continue; // Lock-free skip; a push racing past lands next drain.
      std::lock_guard<std::mutex> Guard(partitionLock(*S, C));
      Drained += S->Heap.drainRemoteFrees(C);
    }
  return Drained;
}

uint64_t ShardedHeap::remoteFrees() const {
  uint64_t Total = 0;
  for (const std::unique_ptr<Shard> &S : Shards)
    for (int C = 0; C < DieHardHeap::NumPartitions; ++C)
      Total += S->Heap.partition(C).remoteFrees();
  return Total;
}

uint64_t ShardedHeap::pendingRemoteFrees() const {
  uint64_t Total = 0;
  for (const std::unique_ptr<Shard> &S : Shards)
    for (int C = 0; C < DieHardHeap::NumPartitions; ++C)
      Total += S->Heap.partition(C).pendingRemoteFrees();
  return Total;
}

uint64_t ShardedHeap::remoteFreeRejects() const {
  uint64_t Total = 0;
  for (const std::unique_ptr<Shard> &S : Shards)
    for (int C = 0; C < DieHardHeap::NumPartitions; ++C)
      Total += S->Heap.partition(C).remoteFreeRejects();
  return Total;
}

size_t ShardedHeap::threadCacheTargetK(int Class) const {
  if (CacheSlotsPerClass == 0 || Class < 0 ||
      Class >= DieHardHeap::NumPartitions)
    return 0;
  ThreadCache *TC = threadCacheLookup(Id);
  return TC != nullptr ? TC->targetK(Class) : 0;
}

void *ShardedHeap::allocateLarge(size_t Size) {
  std::lock_guard<std::mutex> Guard(LargeLock);
  void *Ptr = LargeObjects.allocate(Size);
  if (Ptr == nullptr) {
    ++LargeFailedCount;
    return nullptr;
  }
  if (!Registry.insert(Ptr, Size, LargeOwner)) {
    // Registry node allocation failed (heap exhausted). Unwind: an object
    // the registry cannot route could never be freed or sized.
    LargeObjects.deallocate(Ptr);
    ++LargeFailedCount;
    return nullptr;
  }
  ++LargeAllocCount;
  LargeLiveBytes += Size;
  if (Opts.Heap.RandomFillObjects) {
    // Same fill as DieHardHeap, from the dedicated large-object stream.
    randomFillWords(LargeRand, Ptr, Size & ~size_t(3));
  }
  return Ptr;
}

void ShardedHeap::deallocate(void *Ptr) {
  if (Ptr == nullptr)
    return;
  deferOrDeallocate(Ptr, ownerOf(Ptr));
}

void ShardedHeap::deferOrDeallocate(void *Ptr, uint32_t Owner) {
  // Small-object frees — home or cross-thread alike — park in the calling
  // thread's deferred buffer with their owner pre-resolved; validation
  // happens at flush time by the owning partition, exactly as it would
  // have at free time. Large and foreign pointers keep their locked paths.
  if (CacheSlotsPerClass != 0 && Owner != AddressRangeMap::NoOwner &&
      Owner != LargeOwner) {
    ThreadCache *TC = cacheForThread();
    if (TC != nullptr) {
      CacheOpGuard Bracket(*this, *TC);
      int Class = Shards[Owner]->Heap.partitionIndexOf(Ptr);
      if (!TC->pushDeferred(Ptr, Owner, Class)) {
        flushDeferred(*TC);
        TC->pushDeferred(Ptr, Owner, Class); // Cannot fail after a drain.
      }
      return;
    }
  }
  deallocateOwned(Ptr, Owner);
}

void ShardedHeap::deallocateOwned(void *Ptr, uint32_t Owner) {
  if (Owner == AddressRangeMap::NoOwner) {
    // Foreign pointer: no shard, no large object. Count and ignore, matching
    // DieHardHeap's treatment of addresses it does not own.
    ForeignFrees.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (Owner == LargeOwner) {
    deallocateLarge(Ptr);
    return;
  }
  Shard &S = *Shards[Owner];
  // The partition index derives from immutable construction-time geometry,
  // so routing to the right lock needs no lock itself.
  int Class = S.Heap.partitionIndexOf(Ptr);
  if (Owner != homeShard()) {
    // Uncached cross-shard free (cache tier off, or its install failed):
    // push onto the owning partition's lock-free sidecar instead of taking
    // a remote mutex — the same contention-free route the deferred-flush
    // path uses. Push-time validation still catches double frees; whoever
    // holds the owner's lock next (or the sweeper) materializes it.
    S.Heap.remoteFree(Class, Ptr);
    return;
  }
  std::lock_guard<std::mutex> Guard(partitionLock(S, Class));
  S.Heap.deallocate(Ptr);
}

void ShardedHeap::deallocateLarge(void *Ptr) {
  std::lock_guard<std::mutex> Guard(LargeLock);
  size_t Size = LargeObjects.getSize(Ptr);
  if (Size != 0 && LargeObjects.deallocate(Ptr)) {
    Registry.erase(Ptr);
    ++LargeFreeCount;
    LargeLiveBytes -= Size;
    return;
  }
  // Interior pointer into a live large object, or a double free.
  ++LargeIgnoredFrees;
}

void *ShardedHeap::reallocate(void *Ptr, size_t NewSize) {
  if (Ptr == nullptr)
    return allocate(NewSize);
  if (NewSize == 0) {
    deallocate(Ptr);
    return nullptr;
  }
  // Resolve the owner once; the size query, the in-place check and the
  // final free all work against the same resolution.
  uint32_t Owner = ownerOf(Ptr);
  size_t OldSize = sizeOfOwned(Ptr, Owner);
  if (OldSize == 0) {
    ReallocRejectCount.fetch_add(1, std::memory_order_relaxed);
    return nullptr; // Not one of ours; refuse rather than corrupt.
  }

  // Same in-place rule as DieHardHeap: small objects may shrink (or re-grow)
  // within their rounded size class.
  if (Owner != LargeOwner && NewSize <= OldSize && NewSize > OldSize / 2)
    return Ptr;

  void *Fresh = allocate(NewSize);
  if (Fresh == nullptr)
    return nullptr;
  std::memcpy(Fresh, Ptr, OldSize < NewSize ? OldSize : NewSize);
  deferOrDeallocate(Ptr, Owner);
  return Fresh;
}

void *ShardedHeap::allocateZeroed(size_t Count, size_t Size) {
  if (Count != 0 && Size > SIZE_MAX / Count)
    return nullptr;
  size_t Total = Count * Size;
  void *Ptr = allocate(Total);
  if (Ptr != nullptr)
    std::memset(Ptr, 0, Total);
  return Ptr;
}

size_t ShardedHeap::getObjectSize(const void *Ptr) const {
  if (Ptr == nullptr)
    return 0;
  return sizeOfOwned(Ptr, ownerOf(Ptr));
}

size_t ShardedHeap::sizeOfOwned(const void *Ptr, uint32_t Owner) const {
  if (Owner == AddressRangeMap::NoOwner)
    return 0;
  if (Owner == LargeOwner) {
    std::lock_guard<std::mutex> Guard(LargeLock);
    return LargeObjects.getSize(Ptr);
  }
  const Shard &S = *Shards[Owner];
  int Class = S.Heap.partitionIndexOf(Ptr);
  std::lock_guard<std::mutex> Guard(partitionLock(S, Class));
  return S.Heap.partition(Class).objectSize(Ptr);
}

DieHardStats ShardedHeap::sharedCounterSnapshot() const {
  // Everything both stats() and statsApprox() read the same way: the
  // heap-level relaxed gauges (no locks anywhere).
  DieHardStats Total;
  Total.Allocations = FoldedPops.load(std::memory_order_relaxed);
  Total.CacheRefills = CacheRefillCount.load(std::memory_order_relaxed);
  Total.CacheFlushes = CacheFlushCount.load(std::memory_order_relaxed);
  Total.LargeAllocations = LargeAllocCount;
  Total.LargeFrees = LargeFreeCount;
  Total.FailedAllocations = LargeFailedCount;
  Total.IgnoredFrees = LargeIgnoredFrees;
  Total.IgnoredFrees += ForeignFrees.load(std::memory_order_relaxed);
  Total.OverflowAllocations = OverflowCount.load(std::memory_order_relaxed);
  Total.FailedAllocations +=
      OverflowFailedCount.load(std::memory_order_relaxed);
  Total.ReallocRejects = ReallocRejectCount.load(std::memory_order_relaxed);
  Total.SweepPasses = SweepPassCount.load(std::memory_order_relaxed);
  Total.AgedCaches = AgedCacheCount.load(std::memory_order_relaxed);
  return Total;
}

DieHardStats ShardedHeap::stats() const {
  // Cache tier first (registry lock taken and released before any
  // partition lock, per the hierarchy). Pops not yet folded and deferred
  // frees not yet flushed are folded into Allocations/Frees here, so the
  // totals describe user-visible events even mid-flight.
  ThreadCacheTally Tally = threadCacheTally(Caches);
  DieHardStats Total = sharedCounterSnapshot();
  Total.CachedSlots = Tally.CachedSlots;
  Total.Allocations += Tally.PendingPops;
  Total.Frees += Tally.DeferredFrees;

  for (const std::unique_ptr<Shard> &S : Shards) {
    // One partition lock at a time, ascending class order (the only place a
    // thread may take several locks of one shard; see the lock hierarchy).
    for (int C = 0; C < DieHardHeap::NumPartitions; ++C) {
      std::lock_guard<std::mutex> Guard(partitionLock(*S, C));
      addPartitionStats(Total, S->Heap.partition(C));
    }
    // A shard heap's own large path is never exercised behind this layer
    // (large requests use the shared path above, and only in-reservation
    // pointers route into a shard), so its heap-level large counters stay
    // zero forever — nothing to fold in, and skipping them keeps this
    // aggregation off DieHardHeap::stats(), whose unlocked partition reads
    // would race with concurrent allocation.
  }
  return Total;
}

DieHardStats ShardedHeap::statsApprox() const {
  DieHardStats Total = sharedCounterSnapshot();
  uint64_t Folded = Total.Allocations; // FoldedPops, per the snapshot.

  uint64_t Claimed = 0, Returned = 0;
  for (const std::unique_ptr<Shard> &S : Shards) {
    for (int C = 0; C < DieHardHeap::NumPartitions; ++C) {
      // Relaxed-gauge reads only: no partition lock, no registry lock.
      const RandomizedPartition &P = S->Heap.partition(C);
      addPartitionStats(Total, P);
      Claimed += P.stats().ClaimedSlots;
      Returned += P.stats().ReturnedSlots;
    }
  }
  // Cached = claimed - returned - popped, using the folded pop count as the
  // (lagging) pop estimate. Unsynchronized counter reads can transiently
  // order against each other, so clamp instead of wrapping.
  int64_t Cached = static_cast<int64_t>(Claimed) -
                   static_cast<int64_t>(Returned) -
                   static_cast<int64_t>(Folded);
  Total.CachedSlots = Cached > 0 ? static_cast<uint64_t>(Cached) : 0;
  return Total;
}

size_t ShardedHeap::bytesLive() const {
  // Gauges all the way down (the large live-byte counter included): no
  // locks needed.
  size_t Total = LargeLiveBytes;
  for (const std::unique_ptr<Shard> &S : Shards)
    for (int C = 0; C < DieHardHeap::NumPartitions; ++C)
      Total += S->Heap.partition(C).liveBytes();
  return Total;
}

size_t ShardedHeap::liveLargeObjects() const {
  std::lock_guard<std::mutex> Guard(LargeLock);
  return LargeObjects.liveCount();
}

uint64_t ShardedHeap::seed() const { return Shards[0]->Heap.seed(); }

//===----------------------------------------------------------------------===//
// Epoch sweeper
//===----------------------------------------------------------------------===//

uint64_t ShardedHeap::pagesReturned() const {
  uint64_t Total = 0;
  for (const std::unique_ptr<Shard> &S : Shards)
    for (int C = 0; C < DieHardHeap::NumPartitions; ++C)
      Total += S->Heap.partition(C).stats().PagesReturned;
  return Total;
}

uint64_t ShardedHeap::partialReturns() const {
  uint64_t Total = 0;
  for (const std::unique_ptr<Shard> &S : Shards)
    for (int C = 0; C < DieHardHeap::NumPartitions; ++C)
      Total += S->Heap.partition(C).stats().PartialReturns;
  return Total;
}

uint64_t ShardedHeap::spansReleased() const {
  uint64_t Total = 0;
  for (const std::unique_ptr<Shard> &S : Shards)
    for (int C = 0; C < DieHardHeap::NumPartitions; ++C)
      Total += S->Heap.partition(C).stats().SpansReleased;
  return Total;
}

uint64_t ShardedHeap::pagesMeshed() const {
  uint64_t Total = 0;
  for (const std::unique_ptr<Shard> &S : Shards)
    for (int C = 0; C < DieHardHeap::NumPartitions; ++C)
      Total += S->Heap.partition(C).stats().PagesMeshed;
  return Total;
}

uint64_t ShardedHeap::meshedBytes() const {
  uint64_t Total = 0;
  for (const std::unique_ptr<Shard> &S : Shards)
    for (int C = 0; C < DieHardHeap::NumPartitions; ++C)
      Total += S->Heap.partition(C).stats().MeshedBytes;
  return Total;
}

size_t ShardedHeap::sweepOnce() {
  // Callers hold the pass gate (Sweep.Lock); the pass itself takes at most
  // one other lock at a time and never blocks while holding one.
  uint64_t Epoch = SweepPassCount.load(std::memory_order_relaxed) + 1;

  // Layer 2 first: aging a quiet thread's cache returns its claimed slots
  // and pushes its parked cross-shard frees into sidecars, so the
  // partition scan below materializes them within this same pass.
  size_t Aged = threadCacheAgeQuiet(Caches, Epoch);
  if (Aged != 0)
    AgedCacheCount.fetch_add(Aged, std::memory_order_relaxed);

  // Layer 1: drain pressured partitions and run the partial page-return
  // scan on quiet ones, then publish the post-maintenance pressure table
  // entry.
  size_t Drained = 0;
  for (uint32_t I = 0; I < Shards.size(); ++I) {
    Shard &S = *Shards[I];
    for (int C = 0; C < DieHardHeap::NumPartitions; ++C) {
      const RandomizedPartition &P = S.Heap.partition(C);
      // Lock only when there is work: pending sidecar entries to drain,
      // or frees since the last span scan on a partition at or below the
      // fill gate (hot partitions are skipped — their bitmaps are mostly
      // set and the scan would walk memory for little gain). Replica-
      // filled partitions never pass the pre-check (their data must stay
      // resident for the fill invariant).
      if (P.hasPendingRemoteFrees() ||
          P.pageScanPending(PartialReturnFillGate) ||
          P.meshScanPending(PartialReturnFillGate)) {
        std::lock_guard<std::mutex> Guard(partitionLock(S, C));
        Drained += S.Heap.maintain(C).Drained;
      }
      size_t Live = P.live();
      uint64_t Pending = P.pendingRemoteFrees();
      size_t Net = Pending < Live ? Live - static_cast<size_t>(Pending) : 0;
      if (Net > UINT32_MAX)
        Net = UINT32_MAX;
      Pressure[I * static_cast<size_t>(DieHardHeap::NumPartitions) +
               static_cast<size_t>(C)]
          .store(static_cast<uint32_t>(Net), std::memory_order_relaxed);
    }
  }

  // Publishing the epoch last means a cache stamped during this pass reads
  // at worst Epoch - 1 and still survives the aging test at Epoch + 1.
  SweepPassCount.store(Epoch, std::memory_order_relaxed);
  return Drained;
}

size_t ShardedHeap::sweepNow() {
  if (!SweeperOn)
    return 0;
  pthread_mutex_lock(&Sweep.Lock);
  size_t Drained = sweepOnce();
  pthread_mutex_unlock(&Sweep.Lock);
  return Drained;
}

void *ShardedHeap::sweeperMain(void *Arg) {
  auto *H = static_cast<ShardedHeap *>(Arg);
  SweeperState &S = H->Sweep;
  // The pass gate is held for the thread's whole life except while parked
  // in the timed wait, so a fork handler that acquires it is guaranteed
  // the sweeper is between passes (holding no other lock).
  pthread_mutex_lock(&S.Lock);
  while (!S.StopRequested) {
    timespec Deadline;
    clock_gettime(CLOCK_MONOTONIC, &Deadline);
    uint64_t Ns = static_cast<uint64_t>(Deadline.tv_nsec) +
                  static_cast<uint64_t>(H->Opts.SweepIntervalMs) * 1000000u;
    Deadline.tv_sec += static_cast<time_t>(Ns / 1000000000u);
    Deadline.tv_nsec = static_cast<long>(Ns % 1000000000u);
    int Rc = 0;
    while (!S.StopRequested && Rc != ETIMEDOUT)
      Rc = pthread_cond_timedwait(&S.Wake, &S.Lock, &Deadline);
    if (S.StopRequested)
      break;
    H->sweepOnce();
  }
  pthread_mutex_unlock(&S.Lock);
  return nullptr;
}

void ShardedHeap::startSweeper() {
  // Construction-time only; no concurrent callers. All state is embedded
  // in the heap object — starting the sweeper allocates nothing, which
  // keeps it safe inside the malloc shim.
  pthread_once(&SweeperAtforkOnce, +[] {
    pthread_atfork(sweeperAtforkPrepare, sweeperAtforkParent,
                   sweeperAtforkChild);
  });
  pthread_condattr_t Attr;
  pthread_condattr_init(&Attr);
  pthread_condattr_setclock(&Attr, CLOCK_MONOTONIC);
  pthread_cond_init(&Sweep.Wake, &Attr);
  pthread_condattr_destroy(&Attr);
  // Link into the fork-handler list before the thread can take its gate,
  // so a concurrent fork elsewhere sees either no sweeper or a fully
  // registered one.
  pthread_mutex_lock(&SweeperListLock);
  if (pthread_create(&Sweep.Thread, nullptr, sweeperMain, this) == 0) {
    Sweep.Running = true;
    SweeperOn = true;
    SweeperNext = SweeperListHead;
    SweeperListHead = this;
  }
  pthread_mutex_unlock(&SweeperListLock);
}

void ShardedHeap::stopSweeper() {
  if (!SweeperOn)
    return;
  pthread_mutex_lock(&Sweep.Lock);
  Sweep.StopRequested = true;
  bool Join = Sweep.Running;
  pthread_cond_signal(&Sweep.Wake);
  pthread_mutex_unlock(&Sweep.Lock);
  // In a forked child Running is false — the thread did not survive the
  // fork and must not be joined.
  if (Join)
    pthread_join(Sweep.Thread, nullptr);
  // Unlink only after the join: the pass gate is free, and the fork
  // handlers must never walk into a destroyed heap. List lock and pass
  // gate are never held together here (see the lock hierarchy).
  pthread_mutex_lock(&SweeperListLock);
  for (ShardedHeap **Link = &SweeperListHead; *Link != nullptr;
       Link = &(*Link)->SweeperNext) {
    if (*Link == this) {
      *Link = SweeperNext;
      break;
    }
  }
  pthread_mutex_unlock(&SweeperListLock);
}

void ShardedHeap::sweeperAtforkPrepare() {
  // List lock first, then every registered pass gate (list order). With
  // all gates held, every sweeper thread is parked between passes and
  // holds no other lock, so the child's address space cannot inherit a
  // mutex frozen mid-pass.
  pthread_mutex_lock(&SweeperListLock);
  for (ShardedHeap *H = SweeperListHead; H != nullptr; H = H->SweeperNext)
    pthread_mutex_lock(&H->Sweep.Lock);
}

void ShardedHeap::sweeperAtforkParent() {
  for (ShardedHeap *H = SweeperListHead; H != nullptr; H = H->SweeperNext)
    pthread_mutex_unlock(&H->Sweep.Lock);
  pthread_mutex_unlock(&SweeperListLock);
}

void ShardedHeap::sweeperAtforkChild() {
  // Only the forking thread exists in the child: mark each sweeper as not
  // running (nothing to join) rather than respawning it. A child that
  // wants background sweeping builds its own heap.
  for (ShardedHeap *H = SweeperListHead; H != nullptr; H = H->SweeperNext) {
    H->Sweep.Running = false;
    pthread_mutex_unlock(&H->Sweep.Lock);
  }
  pthread_mutex_unlock(&SweeperListLock);
}

} // namespace diehard
