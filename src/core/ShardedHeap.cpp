//===- core/ShardedHeap.cpp -----------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the sharded heap: thread-token assignment, owner lookup
/// through the AddressRangeMap, and the shared large-object path. See the
/// header for the locking discipline.
///
//===----------------------------------------------------------------------===//

#include "core/ShardedHeap.h"

#include "core/SizeClass.h"
#include "support/RealRandomSource.h"

#include <atomic>
#include <cstring>

#include <unistd.h>

namespace diehard {

namespace {

/// Decorrelates the per-shard seeds derived from a fixed base seed. Shard 0
/// uses the base seed verbatim so a single-shard heap reproduces a lone
/// DieHardHeap bit for bit.
constexpr uint64_t ShardSeedStride = 0x9E3779B97F4A7C15ULL;

/// Salt for the large-object fill RNG, so its stream is unrelated to any
/// shard's placement stream under a fixed seed.
constexpr uint64_t LargeSeedSalt = 0xD1E4A8D0B5E7ULL;

/// Monotonic source of thread tokens. Process-global (not per heap): a
/// thread keeps one token for its lifetime and maps it onto any instance's
/// shard count with a modulo, which round-robins threads across shards and
/// wraps naturally when threads outnumber shards.
std::atomic<uint32_t> NextThreadToken{0};

/// The token, offset by one so zero means "unassigned". Constant-initialized
/// POD with initial-exec TLS: reading it never allocates, which matters
/// inside the malloc shim.
#if defined(__GNUC__)
thread_local uint32_t ThreadToken __attribute__((tls_model("initial-exec"))) =
    0;
#else
thread_local uint32_t ThreadToken = 0;
#endif

} // namespace

size_t ShardedHeap::defaultShardCount() {
  long Cpus = ::sysconf(_SC_NPROCESSORS_ONLN);
  if (Cpus < 1)
    Cpus = 1;
  return static_cast<size_t>(Cpus) < MaxShards ? static_cast<size_t>(Cpus)
                                               : MaxShards;
}

ShardedHeap::ShardedHeap(const ShardedHeapOptions &Options) : Opts(Options) {
  size_t N = Opts.NumShards != 0 ? Opts.NumShards : defaultShardCount();
  if (N > MaxShards)
    N = MaxShards;

  // Every shard reserves the full configured heap size (Hoard-style). The
  // reservation is MAP_NORESERVE virtual space and the bitmaps are
  // demand-zero mappings, so unused shards cost nothing physical — while a
  // process that allocates from a single thread keeps the full capacity it
  // was configured for instead of 1/N of it.
  DieHardOptions PerShard = Opts.Heap;

  Shards.reserve(N);
  Valid = true;
  for (size_t I = 0; I < N; ++I) {
    DieHardOptions O = PerShard;
    if (Opts.Heap.Seed != 0)
      O.Seed = Opts.Heap.Seed + static_cast<uint64_t>(I) * ShardSeedStride;
    Shards.push_back(std::make_unique<Shard>(O));
    Valid = Valid && Shards.back()->Heap.isValid();
  }
  LargeOwner = static_cast<uint32_t>(N);

  if (Valid) {
    // Record each shard's contiguous small-object reservation; the array is
    // immutable from here on, so ownerOf() reads it without locks.
    ShardRanges.reserve(N);
    for (size_t I = 0; I < N; ++I) {
      const DieHardHeap &H = Shards[I]->Heap;
      auto Begin = reinterpret_cast<uintptr_t>(H.heapBase());
      ShardRanges.push_back(ShardRange{Begin, Begin + H.heapBytes()});
    }
  }

  LargeRand.setSeed(Opts.Heap.Seed != 0 ? Opts.Heap.Seed ^ LargeSeedSalt
                                        : realRandomSeed());
}

ShardedHeap::~ShardedHeap() = default;

const DieHardHeap &ShardedHeap::shard(size_t Index) const {
  return Shards[Index]->Heap;
}

uint32_t ShardedHeap::ownerOf(const void *Ptr) const {
  auto P = reinterpret_cast<uintptr_t>(Ptr);
  for (size_t I = 0; I < ShardRanges.size(); ++I)
    if (P >= ShardRanges[I].Begin && P < ShardRanges[I].End)
      return static_cast<uint32_t>(I);
  return Registry.ownerOf(Ptr); // LargeOwner for live large objects.
}

size_t ShardedHeap::shardIndexOf(const void *Ptr) const {
  uint32_t Owner = ownerOf(Ptr);
  if (Owner == AddressRangeMap::NoOwner)
    return SIZE_MAX;
  return Owner;
}

uint32_t ShardedHeap::homeShard() const {
  uint32_t T = ThreadToken;
  if (T == 0) {
    T = NextThreadToken.fetch_add(1, std::memory_order_relaxed) + 1;
    ThreadToken = T;
  }
  return (T - 1) % static_cast<uint32_t>(Shards.size());
}

void *ShardedHeap::allocate(size_t Size) {
  if (!Valid || Size == 0)
    return nullptr;
  if (Size > SizeClass::MaxObjectSize)
    return allocateLarge(Size);
  Shard &S = *Shards[homeShard()];
  std::lock_guard<std::mutex> Guard(S.Lock);
  return S.Heap.allocate(Size);
}

void *ShardedHeap::allocateLarge(size_t Size) {
  std::lock_guard<std::mutex> Guard(LargeLock);
  void *Ptr = LargeObjects.allocate(Size);
  if (Ptr == nullptr) {
    ++LargeStats.FailedAllocations;
    return nullptr;
  }
  if (!Registry.insert(Ptr, Size, LargeOwner)) {
    // Registry node allocation failed (heap exhausted). Unwind: an object
    // the registry cannot route could never be freed or sized.
    LargeObjects.deallocate(Ptr);
    ++LargeStats.FailedAllocations;
    return nullptr;
  }
  ++LargeStats.LargeAllocations;
  LargeLiveBytes += Size;
  if (Opts.Heap.RandomFillObjects) {
    // Same 32-bit fill as DieHardHeap::randomFill, from the dedicated
    // large-object stream.
    auto *Words = static_cast<uint32_t *>(Ptr);
    for (size_t I = 0; I < (Size & ~size_t(3)) / sizeof(uint32_t); ++I)
      Words[I] = LargeRand.next();
  }
  return Ptr;
}

void ShardedHeap::deallocate(void *Ptr) {
  if (Ptr == nullptr)
    return;
  deallocateOwned(Ptr, ownerOf(Ptr));
}

void ShardedHeap::deallocateOwned(void *Ptr, uint32_t Owner) {
  if (Owner == AddressRangeMap::NoOwner) {
    // Foreign pointer: no shard, no large object. Count and ignore, matching
    // DieHardHeap's treatment of addresses it does not own.
    ForeignFrees.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (Owner == LargeOwner) {
    deallocateLarge(Ptr);
    return;
  }
  Shard &S = *Shards[Owner];
  std::lock_guard<std::mutex> Guard(S.Lock);
  S.Heap.deallocate(Ptr);
}

void ShardedHeap::deallocateLarge(void *Ptr) {
  std::lock_guard<std::mutex> Guard(LargeLock);
  size_t Size = LargeObjects.getSize(Ptr);
  if (Size != 0 && LargeObjects.deallocate(Ptr)) {
    Registry.erase(Ptr);
    ++LargeStats.LargeFrees;
    LargeLiveBytes -= Size;
    return;
  }
  // Interior pointer into a live large object, or a double free.
  ++LargeStats.IgnoredFrees;
}

void *ShardedHeap::reallocate(void *Ptr, size_t NewSize) {
  if (Ptr == nullptr)
    return allocate(NewSize);
  if (NewSize == 0) {
    deallocate(Ptr);
    return nullptr;
  }
  // Resolve the owner once; the size query, the in-place check and the
  // final free all work against the same resolution.
  uint32_t Owner = ownerOf(Ptr);
  size_t OldSize = sizeOfOwned(Ptr, Owner);
  if (OldSize == 0)
    return nullptr; // Not one of ours; refuse rather than corrupt.

  // Same in-place rule as DieHardHeap: small objects may shrink (or re-grow)
  // within their rounded size class.
  if (Owner != LargeOwner && NewSize <= OldSize && NewSize > OldSize / 2)
    return Ptr;

  void *Fresh = allocate(NewSize);
  if (Fresh == nullptr)
    return nullptr;
  std::memcpy(Fresh, Ptr, OldSize < NewSize ? OldSize : NewSize);
  deallocateOwned(Ptr, Owner);
  return Fresh;
}

void *ShardedHeap::allocateZeroed(size_t Count, size_t Size) {
  if (Count != 0 && Size > SIZE_MAX / Count)
    return nullptr;
  size_t Total = Count * Size;
  void *Ptr = allocate(Total);
  if (Ptr != nullptr)
    std::memset(Ptr, 0, Total);
  return Ptr;
}

size_t ShardedHeap::getObjectSize(const void *Ptr) const {
  if (Ptr == nullptr)
    return 0;
  return sizeOfOwned(Ptr, ownerOf(Ptr));
}

size_t ShardedHeap::sizeOfOwned(const void *Ptr, uint32_t Owner) const {
  if (Owner == AddressRangeMap::NoOwner)
    return 0;
  if (Owner == LargeOwner) {
    std::lock_guard<std::mutex> Guard(LargeLock);
    return LargeObjects.getSize(Ptr);
  }
  const Shard &S = *Shards[Owner];
  std::lock_guard<std::mutex> Guard(S.Lock);
  return S.Heap.getObjectSize(Ptr);
}

DieHardStats ShardedHeap::stats() const {
  DieHardStats Total;
  {
    std::lock_guard<std::mutex> Guard(LargeLock);
    Total = LargeStats;
  }
  Total.IgnoredFrees += ForeignFrees.load(std::memory_order_relaxed);
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> Guard(S->Lock);
    const DieHardStats &St = S->Heap.stats();
    Total.Allocations += St.Allocations;
    Total.Frees += St.Frees;
    Total.LargeAllocations += St.LargeAllocations;
    Total.LargeFrees += St.LargeFrees;
    Total.FailedAllocations += St.FailedAllocations;
    Total.IgnoredFrees += St.IgnoredFrees;
    Total.Probes += St.Probes;
    Total.ProbeFallbacks += St.ProbeFallbacks;
  }
  return Total;
}

size_t ShardedHeap::bytesLive() const {
  size_t Total;
  {
    std::lock_guard<std::mutex> Guard(LargeLock);
    Total = LargeLiveBytes;
  }
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> Guard(S->Lock);
    Total += S->Heap.bytesLive();
  }
  return Total;
}

size_t ShardedHeap::liveLargeObjects() const {
  std::lock_guard<std::mutex> Guard(LargeLock);
  return LargeObjects.liveCount();
}

uint64_t ShardedHeap::seed() const { return Shards[0]->Heap.seed(); }

} // namespace diehard
