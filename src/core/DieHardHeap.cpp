//===- core/DieHardHeap.cpp -----------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the randomized M-heap (Figure 2): random-probe
/// allocation, validated frees, and the realloc/calloc wrappers.
///
//===----------------------------------------------------------------------===//

#include "core/DieHardHeap.h"

#include "support/RealRandomSource.h"

#include <cassert>
#include <cstring>

namespace diehard {

DieHardHeap::DieHardHeap(const DieHardOptions &Options) : Opts(Options) {
  assert(Opts.M > 1.0 && "expansion factor M must exceed 1");
  ResolvedSeed = Opts.Seed != 0 ? Opts.Seed : realRandomSeed();
  Rand.setSeed(ResolvedSeed);

  // Divide the reservation evenly into one partition per size class, keeping
  // each partition a multiple of the largest object size so every slot of
  // every class is naturally aligned within its partition.
  PartitionSize = Opts.HeapSize / SizeClass::NumClasses;
  PartitionSize -= PartitionSize % SizeClass::MaxObjectSize;
  if (PartitionSize == 0)
    return; // Heap too small to be usable; isValid() stays false.

  if (!Heap.map(PartitionSize * SizeClass::NumClasses))
    return;

  for (int C = 0; C < SizeClass::NumClasses; ++C) {
    size_t Slots = PartitionSize / SizeClass::classToSize(C);
    IsAllocated[C].reset(Slots);
    if (IsAllocated[C].size() != Slots) {
      // Metadata mapping failed: render the heap invalid rather than
      // faulting on the first probe.
      Heap.unmap();
      return;
    }
    InUse[C] = 0;
    // Each region is allowed to become at most 1/M full (Section 4.1).
    Threshold[C] = static_cast<size_t>(static_cast<double>(Slots) / Opts.M);
  }

  // REPLICATED (Figure 2): fill the whole heap with random values.
  if (Opts.RandomFillHeapOnInit)
    randomFill(Heap.base(), Heap.size());
}

DieHardHeap::~DieHardHeap() = default;

size_t DieHardHeap::liveInClass(int Class) const {
  assert(Class >= 0 && Class < SizeClass::NumClasses);
  return InUse[Class];
}

size_t DieHardHeap::slotsInClass(int Class) const {
  assert(Class >= 0 && Class < SizeClass::NumClasses);
  return IsAllocated[Class].size();
}

size_t DieHardHeap::thresholdForClass(int Class) const {
  assert(Class >= 0 && Class < SizeClass::NumClasses);
  return Threshold[Class];
}

void DieHardHeap::randomFill(void *Ptr, size_t Size) {
  // Fill in 32-bit units, as in Figure 2 of the paper. Sizes here are always
  // multiples of 8, so no tail handling is needed.
  auto *Words = static_cast<uint32_t *>(Ptr);
  for (size_t I = 0; I < Size / sizeof(uint32_t); ++I)
    Words[I] = Rand.next();
}

void *DieHardHeap::allocate(size_t Size) {
  if (!isValid() || Size == 0)
    return nullptr;

  if (Size > SizeClass::MaxObjectSize) {
    void *Ptr = LargeObjects.allocate(Size);
    if (Ptr == nullptr) {
      ++Stats.FailedAllocations;
      return nullptr;
    }
    ++Stats.LargeAllocations;
    LiveBytes += Size;
    if (Opts.RandomFillObjects)
      randomFill(Ptr, Size & ~size_t(3));
    return Ptr;
  }

  int C = SizeClass::sizeToClass(Size);
  if (InUse[C] >= Threshold[C]) {
    // At threshold: the 1/M bound says no more memory for this class.
    ++Stats.FailedAllocations;
    return nullptr;
  }

  size_t ObjectSize = SizeClass::classToSize(C);
  size_t Slots = IsAllocated[C].size();

  // Probe for a free slot, like probing into a hash table. Since the region
  // is at most 1/M full, the expected probe count is 1/(1 - 1/M); a bounded
  // number of random probes followed by a linear fallback guarantees
  // termination without measurably biasing placement.
  size_t Index = 0;
  bool Found = false;
  for (int Attempt = 0; Attempt < 64; ++Attempt) {
    ++Stats.Probes;
    Index = Rand.nextBounded(static_cast<uint32_t>(Slots));
    if (IsAllocated[C].trySet(Index)) {
      Found = true;
      break;
    }
  }
  if (!Found) {
    ++Stats.ProbeFallbacks;
    size_t Start = Rand.nextBounded(static_cast<uint32_t>(Slots));
    Index = IsAllocated[C].findNextClear(Start);
    if (Index == Slots)
      Index = IsAllocated[C].findNextClear(0);
    if (Index == Slots) {
      // Every slot is taken; the 1/M threshold should make this unreachable.
      ++Stats.FailedAllocations;
      return nullptr;
    }
    IsAllocated[C].trySet(Index);
  }

  ++InUse[C];
  ++Stats.Allocations;
  LiveBytes += ObjectSize;

  char *Ptr = static_cast<char *>(Heap.base()) +
              static_cast<size_t>(C) * PartitionSize + Index * ObjectSize;
  if (Opts.RandomFillObjects)
    randomFill(Ptr, ObjectSize);
  return Ptr;
}

int DieHardHeap::partitionOf(const void *Ptr) const {
  if (!Heap.contains(Ptr))
    return -1;
  size_t Offset = static_cast<const char *>(Ptr) -
                  static_cast<const char *>(Heap.base());
  return static_cast<int>(Offset / PartitionSize);
}

void DieHardHeap::deallocate(void *Ptr) {
  if (Ptr == nullptr)
    return;

  // Addresses outside the heap area may be large objects; the large-object
  // table validates them (Section 4.3).
  if (!Heap.contains(Ptr)) {
    size_t Size = LargeObjects.getSize(Ptr);
    if (Size != 0 && LargeObjects.deallocate(Ptr)) {
      ++Stats.LargeFrees;
      LiveBytes -= Size;
      return;
    }
    ++Stats.IgnoredFrees;
    return;
  }

  int C = partitionOf(Ptr);
  assert(C >= 0 && C < SizeClass::NumClasses && "contains implies partition");
  size_t ObjectSize = SizeClass::classToSize(C);
  size_t Offset = static_cast<const char *>(Ptr) -
                  (static_cast<const char *>(Heap.base()) +
                   static_cast<size_t>(C) * PartitionSize);

  // Validity check 1: the offset must be an exact multiple of the object
  // size. Validity check 2: the slot must currently be allocated. Anything
  // else is an invalid or double free and is ignored.
  if (Offset % ObjectSize != 0) {
    ++Stats.IgnoredFrees;
    return;
  }
  size_t Index = Offset / ObjectSize;
  if (!IsAllocated[C].tryClear(Index)) {
    ++Stats.IgnoredFrees;
    return;
  }
  assert(InUse[C] > 0 && "bitmap and counter out of sync");
  --InUse[C];
  ++Stats.Frees;
  LiveBytes -= ObjectSize;
  if (Opts.RandomFillOnFree)
    randomFill(Ptr, ObjectSize);
}

void *DieHardHeap::reallocate(void *Ptr, size_t NewSize) {
  if (Ptr == nullptr)
    return allocate(NewSize);
  if (NewSize == 0) {
    deallocate(Ptr);
    return nullptr;
  }
  size_t OldSize = getObjectSize(Ptr);
  if (OldSize == 0)
    return nullptr; // Not one of ours; refuse rather than corrupt.
  // Small objects can grow in place up to their rounded class size.
  if (Heap.contains(Ptr) && NewSize <= OldSize &&
      NewSize > OldSize / 2)
    return Ptr;
  void *Fresh = allocate(NewSize);
  if (Fresh == nullptr)
    return nullptr;
  std::memcpy(Fresh, Ptr, OldSize < NewSize ? OldSize : NewSize);
  deallocate(Ptr);
  return Fresh;
}

void *DieHardHeap::allocateZeroed(size_t Count, size_t Size) {
  if (Count != 0 && Size > SIZE_MAX / Count)
    return nullptr;
  size_t Total = Count * Size;
  void *Ptr = allocate(Total);
  if (Ptr != nullptr)
    std::memset(Ptr, 0, Total);
  return Ptr;
}

size_t DieHardHeap::getObjectSize(const void *Ptr) const {
  if (Ptr == nullptr)
    return 0;
  if (!Heap.contains(Ptr))
    return LargeObjects.getSize(Ptr);
  int C = partitionOf(Ptr);
  size_t ObjectSize = SizeClass::classToSize(C);
  size_t Offset = static_cast<const char *>(Ptr) -
                  (static_cast<const char *>(Heap.base()) +
                   static_cast<size_t>(C) * PartitionSize);
  size_t Index = Offset / ObjectSize;
  if (Index >= IsAllocated[C].size() || !IsAllocated[C].test(Index))
    return 0;
  return ObjectSize;
}

void DieHardHeap::forEachLiveObject(
    const std::function<void(int Class, size_t Slot, const void *Ptr,
                             size_t Size)> &Visit) const {
  for (int C = 0; C < SizeClass::NumClasses; ++C) {
    size_t ObjectSize = SizeClass::classToSize(C);
    const char *PartitionStart = static_cast<const char *>(Heap.base()) +
                                 static_cast<size_t>(C) * PartitionSize;
    const Bitmap &Bits = IsAllocated[C];
    for (size_t Slot = 0; Slot < Bits.size(); ++Slot)
      if (Bits.test(Slot))
        Visit(C, Slot, PartitionStart + Slot * ObjectSize, ObjectSize);
  }
}

void *DieHardHeap::getObjectStart(const void *Ptr) const {
  if (Ptr == nullptr)
    return nullptr;
  if (!Heap.contains(Ptr)) {
    // Large objects are only matched by their base address.
    return LargeObjects.contains(Ptr) ? const_cast<void *>(Ptr) : nullptr;
  }
  int C = partitionOf(Ptr);
  size_t ObjectSize = SizeClass::classToSize(C);
  char *PartitionStart = static_cast<char *>(Heap.base()) +
                         static_cast<size_t>(C) * PartitionSize;
  size_t Offset = static_cast<const char *>(Ptr) - PartitionStart;
  size_t Index = Offset / ObjectSize;
  if (Index >= IsAllocated[C].size() || !IsAllocated[C].test(Index))
    return nullptr;
  return PartitionStart + Index * ObjectSize;
}

} // namespace diehard
