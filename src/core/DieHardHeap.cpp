//===- core/DieHardHeap.cpp -----------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the randomized M-heap as a composition of per-class
/// RandomizedPartition objects: construction carves the reservation into
/// twelve regions, and each request is routed to the partition (or the
/// large-object manager) that covers it.
///
//===----------------------------------------------------------------------===//

#include "core/DieHardHeap.h"

#include "support/RealRandomSource.h"

#include <cassert>
#include <cstring>

namespace diehard {

DieHardHeap::DieHardHeap(const DieHardOptions &Options) : Opts(Options) {
  assert(Opts.M > 1.0 && "expansion factor M must exceed 1");
  ResolvedSeed = Opts.Seed != 0 ? Opts.Seed : realRandomSeed();
  Rand.setSeed(ResolvedSeed);

  // Divide the reservation evenly into one partition per size class, keeping
  // each partition a multiple of the largest object size so every slot of
  // every class is naturally aligned within its partition.
  PartitionSize = Opts.HeapSize / SizeClass::NumClasses;
  PartitionSize -= PartitionSize % SizeClass::MaxObjectSize;
  if (PartitionSize == 0)
    return; // Heap too small to be usable; isValid() stays false.

  // Meshing wants the memfd-backed shared mapping; random-fill modes are
  // incompatible (a meshed donor's punched frame refaults zero), and a
  // kernel without memfd falls back to the ordinary private mapping with
  // meshing off — never an unusable heap.
  bool WantMesh = Opts.Meshing && !Opts.RandomFillObjects &&
                  !Opts.RandomFillOnFree && !Opts.RandomFillHeapOnInit;
  bool HaveMesh =
      WantMesh && Heap.mapMeshable(PartitionSize * SizeClass::NumClasses);
  if (!HaveMesh && !Heap.map(PartitionSize * SizeClass::NumClasses))
    return;

  for (int C = 0; C < NumPartitions; ++C) {
    size_t ObjectSize = SizeClass::classToSize(C);
    char *Region = static_cast<char *>(Heap.base()) +
                   static_cast<size_t>(C) * PartitionSize;
    // Streams are numbered from 1 so no partition shares the heap-level
    // stream (stream 0 with the class gamma is the seed itself).
    uint64_t Stream = Rng::deriveStream(
        ResolvedSeed, static_cast<uint64_t>(C) + 1, Rng::ClassStreamGamma);
    if (!Partitions[C].init(Region, ObjectSize, PartitionSize / ObjectSize,
                            Opts.M, Stream, Opts.RandomFillObjects,
                            Opts.RandomFillOnFree)) {
      // Metadata mapping failed: render the heap invalid rather than
      // faulting on the first probe.
      Heap.unmap();
      return;
    }
    // Classes whose objects span whole pages refuse the binding (their
    // page masks are always full) — meshing is active if anyone accepted.
    if (HaveMesh && Partitions[C].bindMeshBacking(&Heap))
      MeshingActive = true;
  }

  // REPLICATED (Figure 2): fill the whole heap with random values.
  if (Opts.RandomFillHeapOnInit)
    randomFill(Heap.base(), Heap.size());
}

DieHardHeap::~DieHardHeap() = default;

const RandomizedPartition &DieHardHeap::partition(int Class) const {
  assert(Class >= 0 && Class < NumPartitions && "size class out of range");
  return Partitions[Class];
}

void DieHardHeap::randomFill(void *Ptr, size_t Size) {
  // Sizes here are always multiples of 4 after the callers' masking.
  randomFillWords(Rand, Ptr, Size);
}

void *DieHardHeap::allocate(size_t Size) {
  if (!isValid() || Size == 0)
    return nullptr;

  if (Size > SizeClass::MaxObjectSize) {
    void *Ptr = LargeObjects.allocate(Size);
    if (Ptr == nullptr) {
      ++LargeFailedCount;
      return nullptr;
    }
    ++LargeAllocationCount;
    LargeLiveBytes += Size;
    if (Opts.RandomFillObjects)
      randomFill(Ptr, Size & ~size_t(3));
    return Ptr;
  }

  return Partitions[SizeClass::sizeToClass(Size)].allocate();
}

size_t DieHardHeap::claimCachedSlots(int Class, void **Out,
                                     size_t MaxCount) {
  assert(Class >= 0 && Class < NumPartitions && "size class out of range");
  return Partitions[Class].claimRandomSlots(Out, MaxCount);
}

void DieHardHeap::reclaimCachedSlots(int Class, void *const *Ptrs,
                                     size_t Count) {
  assert(Class >= 0 && Class < NumPartitions && "size class out of range");
  Partitions[Class].reclaimSlots(Ptrs, Count);
}

size_t DieHardHeap::deallocateBatch(int Class, void *const *Ptrs,
                                    size_t Count) {
  assert(Class >= 0 && Class < NumPartitions && "size class out of range");
  return Partitions[Class].deallocateBatch(Ptrs, Count);
}

void DieHardHeap::remoteFree(int Class, void *Ptr) {
  assert(Class >= 0 && Class < NumPartitions && "size class out of range");
  Partitions[Class].remoteFree(Ptr);
}

size_t DieHardHeap::drainRemoteFrees(int Class) {
  assert(Class >= 0 && Class < NumPartitions && "size class out of range");
  return Partitions[Class].drainRemoteFrees();
}

RandomizedPartition::MaintainOutcome DieHardHeap::maintain(int Class) {
  assert(Class >= 0 && Class < NumPartitions && "size class out of range");
  return Partitions[Class].maintain();
}

void addPartitionStats(DieHardStats &Total, const RandomizedPartition &P) {
  const PartitionStats &PS = P.stats();
  Total.Allocations += PS.Allocations;
  Total.Frees += PS.Frees;
  Total.FailedAllocations += PS.FailedAllocations;
  Total.IgnoredFrees += PS.IgnoredFrees;
  Total.Probes += PS.Probes;
  Total.ProbeFallbacks += PS.ProbeFallbacks;
  Total.RemoteFrees += P.remoteFrees();
  Total.SidecarDrains += PS.SidecarDrains;
  Total.SweeperDrainedRemote += PS.SweeperDrained;
  Total.PagesReturned += PS.PagesReturned;
  Total.PartialReturns += PS.PartialReturns;
  Total.SpansReleased += PS.SpansReleased;
  Total.MeshCandidates += PS.MeshCandidates;
  Total.PagesMeshed += PS.PagesMeshed;
  Total.MeshedBytes += PS.MeshedBytes;
  // Push-time rejects are double/invalid frees the sidecar refused; they
  // never reach a partition's IgnoredFrees counter, so fold them here.
  Total.IgnoredFrees += P.remoteFreeRejects();
  // In-flight (undrained) sidecar entries fold into Frees exactly like
  // the sharded layer's parked deferred-buffer frees: the user's free
  // already happened, only materialization is pending.
  Total.Frees += P.pendingRemoteFrees();
}

int DieHardHeap::partitionIndexOf(const void *Ptr) const {
  if (!Heap.contains(Ptr))
    return -1;
  size_t Offset = static_cast<size_t>(static_cast<const char *>(Ptr) -
                                      static_cast<const char *>(Heap.base()));
  return static_cast<int>(Offset / PartitionSize);
}

void DieHardHeap::deallocate(void *Ptr) {
  if (Ptr == nullptr)
    return;

  // Addresses outside the heap area may be large objects; the large-object
  // table validates them (Section 4.3).
  int C = partitionIndexOf(Ptr);
  if (C < 0) {
    size_t Size = LargeObjects.getSize(Ptr);
    if (Size != 0 && LargeObjects.deallocate(Ptr)) {
      ++LargeFreeCount;
      LargeLiveBytes -= Size;
      return;
    }
    ++ForeignIgnoredFrees;
    return;
  }
  Partitions[C].deallocate(Ptr);
}

void *DieHardHeap::reallocate(void *Ptr, size_t NewSize) {
  if (Ptr == nullptr)
    return allocate(NewSize);
  if (NewSize == 0) {
    deallocate(Ptr);
    return nullptr;
  }
  size_t OldSize = getObjectSize(Ptr);
  if (OldSize == 0) {
    ++ReallocRejectCount;
    return nullptr; // Not one of ours; refuse rather than corrupt.
  }
  // Small objects can grow in place up to their rounded class size.
  if (Heap.contains(Ptr) && NewSize <= OldSize &&
      NewSize > OldSize / 2)
    return Ptr;
  void *Fresh = allocate(NewSize);
  if (Fresh == nullptr)
    return nullptr;
  std::memcpy(Fresh, Ptr, OldSize < NewSize ? OldSize : NewSize);
  deallocate(Ptr);
  return Fresh;
}

void *DieHardHeap::allocateZeroed(size_t Count, size_t Size) {
  if (Count != 0 && Size > SIZE_MAX / Count)
    return nullptr;
  size_t Total = Count * Size;
  void *Ptr = allocate(Total);
  if (Ptr != nullptr)
    std::memset(Ptr, 0, Total);
  return Ptr;
}

size_t DieHardHeap::getObjectSize(const void *Ptr) const {
  if (Ptr == nullptr)
    return 0;
  int C = partitionIndexOf(Ptr);
  if (C < 0)
    return LargeObjects.getSize(Ptr);
  return Partitions[C].objectSize(Ptr);
}

void *DieHardHeap::getObjectStart(const void *Ptr) const {
  if (Ptr == nullptr)
    return nullptr;
  int C = partitionIndexOf(Ptr);
  if (C < 0) {
    // Large objects are only matched by their base address.
    return LargeObjects.contains(Ptr) ? const_cast<void *>(Ptr) : nullptr;
  }
  return Partitions[C].objectStart(Ptr);
}

size_t DieHardHeap::bytesLive() const {
  size_t Total = LargeLiveBytes;
  for (const RandomizedPartition &P : Partitions)
    Total += P.liveBytes();
  return Total;
}

DieHardStats DieHardHeap::stats() const {
  DieHardStats S;
  for (const RandomizedPartition &P : Partitions)
    addPartitionStats(S, P);
  S.LargeAllocations = LargeAllocationCount;
  S.LargeFrees = LargeFreeCount;
  S.FailedAllocations += LargeFailedCount;
  S.IgnoredFrees += ForeignIgnoredFrees;
  S.ReallocRejects = ReallocRejectCount;
  return S;
}

void DieHardHeap::forEachLiveObject(
    const std::function<void(int Class, size_t Slot, const void *Ptr,
                             size_t Size)> &Visit) const {
  for (int C = 0; C < NumPartitions; ++C) {
    size_t ObjectSize = SizeClass::classToSize(C);
    Partitions[C].forEachLive([&](size_t Slot, const void *Ptr) {
      Visit(C, Slot, Ptr, ObjectSize);
    });
  }
}

} // namespace diehard
