//===- core/HeapAdapter.h - DieHardHeap as an Allocator ---------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adapts a DieHardHeap (or a ShardedHeap) to the uniform Allocator facade
/// so workloads, replica bodies, and benches can drive a replica-private
/// heap — or the whole thread-scalable sharded front end — through the same
/// interface as the baseline allocators.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_CORE_HEAPADAPTER_H
#define DIEHARD_CORE_HEAPADAPTER_H

#include "baselines/Allocator.h"
#include "core/DieHardHeap.h"
#include "core/ShardedHeap.h"

namespace diehard {

/// Allocator facade over a DieHardHeap, which must outlive the adapter.
class HeapAdapter final : public Allocator {
public:
  /// Wraps \p Target; \p AdapterName is returned by getName().
  explicit HeapAdapter(DieHardHeap &Target, const char *AdapterName = "diehard")
      : H(Target), Name(AdapterName) {}

  void *allocate(size_t Size) override { return H.allocate(Size); }
  void deallocate(void *Ptr) override { H.deallocate(Ptr); }
  const char *getName() const override { return Name; }

private:
  DieHardHeap &H;
  const char *Name;
};

/// Allocator facade over a ShardedHeap, which must outlive the adapter.
/// Unlike HeapAdapter this facade is thread-safe end to end (the sharded
/// layer locks per partition; with the thread-cache tier on, the steady
/// state is lock-free), so one adapter instance can serve a multithreaded
/// workload.
class ShardedHeapAdapter final : public Allocator {
public:
  /// Wraps \p Target; \p AdapterName is returned by getName().
  explicit ShardedHeapAdapter(ShardedHeap &Target,
                              const char *AdapterName = "diehard-sharded")
      : H(Target), Name(AdapterName) {}

  void *allocate(size_t Size) override { return H.allocate(Size); }
  void deallocate(void *Ptr) override { H.deallocate(Ptr); }
  const char *getName() const override { return Name; }

  /// Cache-aware counters (CachedSlots/CacheRefills/CacheFlushes included)
  /// for workload harnesses that report allocator behaviour. Exact but
  /// lock-taking; see ShardedHeap::statsApprox() for the lock-free view.
  DieHardStats stats() const { return H.stats(); }

  /// Slots currently parked in thread caches (0 with the tier off).
  size_t cachedSlots() const { return H.cachedSlots(); }

  /// Flushes the calling thread's cache, so a workload's teardown can
  /// assert exact liveness (bytesLive() == 0) deterministically.
  void flushThreadCache() { H.flushThreadCache(); }

private:
  ShardedHeap &H;
  const char *Name;
};

} // namespace diehard

#endif // DIEHARD_CORE_HEAPADAPTER_H
