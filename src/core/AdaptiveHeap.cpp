//===- core/AdaptiveHeap.cpp ----------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the adaptive (dynamically growing) DieHard heap.
///
//===----------------------------------------------------------------------===//

#include "core/AdaptiveHeap.h"

#include "support/RealRandomSource.h"

#include <cassert>
#include <cstring>

namespace diehard {

AdaptiveDieHardHeap::AdaptiveDieHardHeap(const AdaptiveOptions &Options)
    : Opts(Options) {
  assert(Opts.M > 1.0 && "expansion factor M must exceed 1");
  assert(Opts.InitialSlotsPerClass >= 2 && "need at least two slots");
  ResolvedSeed = Opts.Seed != 0 ? Opts.Seed : realRandomSeed();
  Rand.setSeed(ResolvedSeed);
}

bool AdaptiveDieHardHeap::grow(int Class) {
  ClassState &State = Classes[Class];
  // First growth installs InitialSlotsPerClass slots; each later growth
  // doubles the class capacity, so the per-growth cost amortizes to O(1)
  // per allocation and the number of sub-regions stays logarithmic.
  size_t NewSlots =
      State.TotalSlots == 0 ? Opts.InitialSlotsPerClass : State.TotalSlots;
  size_t Bytes = NewSlots * SizeClass::classToSize(Class);

  SubRegion Fresh;
  if (!Fresh.Memory.map(Bytes))
    return false;
  Fresh.Slots = NewSlots;
  Fresh.SlotBase = State.TotalSlots;

  // Extend the bitmap, preserving existing allocation bits. The mapping can
  // fail (Bitmap is left empty); refuse the growth before committing any
  // state, or allocate() would probe a zero-sized bitmap.
  Bitmap Extended(State.TotalSlots + NewSlots);
  if (Extended.size() != State.TotalSlots + NewSlots)
    return false;
  for (size_t I = 0; I < State.Allocated.size(); ++I)
    if (State.Allocated.test(I))
      Extended.trySet(I);

  Reserved += Bytes;
  State.Regions.push_back(std::move(Fresh));
  State.TotalSlots += NewSlots;
  State.Allocated = std::move(Extended);
  ++Stats.Growths;
  return true;
}

char *AdaptiveDieHardHeap::slotAddress(const ClassState &State, int Class,
                                       size_t Slot) const {
  for (const SubRegion &R : State.Regions) {
    if (Slot < R.SlotBase + R.Slots) {
      return static_cast<char *>(R.Memory.base()) +
             (Slot - R.SlotBase) * SizeClass::classToSize(Class);
    }
  }
  assert(false && "slot index beyond class capacity");
  return nullptr;
}

void AdaptiveDieHardHeap::randomFill(void *Ptr, size_t Bytes) {
  auto *Words = static_cast<uint32_t *>(Ptr);
  for (size_t I = 0; I < Bytes / sizeof(uint32_t); ++I)
    Words[I] = Rand.next();
}

void *AdaptiveDieHardHeap::allocate(size_t Size) {
  if (Size == 0)
    return nullptr;
  if (Size > SizeClass::MaxObjectSize) {
    void *Ptr = LargeObjects.allocate(Size);
    if (Ptr != nullptr)
      ++Stats.LargeAllocations;
    return Ptr;
  }

  int C = SizeClass::sizeToClass(Size);
  ClassState &State = Classes[C];

  // Grow whenever the next allocation would break the 1/M bound; this is
  // the adaptive replacement for the fixed heap's allocation refusal.
  while (static_cast<double>(State.InUse + 1) >
         static_cast<double>(State.TotalSlots) / Opts.M) {
    if (!grow(C))
      return nullptr; // Genuinely out of memory.
  }

  size_t Slots = State.TotalSlots;
  size_t Index = 0;
  bool Found = false;
  for (int Attempt = 0; Attempt < 64; ++Attempt) {
    ++Stats.Probes;
    Index = Rand.nextBounded(static_cast<uint32_t>(Slots));
    if (State.Allocated.trySet(Index)) {
      Found = true;
      break;
    }
  }
  if (!Found) {
    size_t Start = Rand.nextBounded(static_cast<uint32_t>(Slots));
    Index = State.Allocated.findNextClear(Start);
    if (Index == Slots)
      Index = State.Allocated.findNextClear(0);
    if (Index == Slots)
      return nullptr; // Unreachable given the 1/M bound.
    State.Allocated.trySet(Index);
  }

  ++State.InUse;
  ++Stats.Allocations;
  char *Ptr = slotAddress(State, C, Index);
  if (Opts.RandomFillObjects)
    randomFill(Ptr, SizeClass::classToSize(C));
  return Ptr;
}

bool AdaptiveDieHardHeap::locate(const void *Ptr, bool AllowInterior,
                                 int &Class, size_t &Slot,
                                 char *&Start) const {
  for (int C = 0; C < SizeClass::NumClasses; ++C) {
    size_t ObjectSize = SizeClass::classToSize(C);
    for (const SubRegion &R : Classes[C].Regions) {
      if (!R.Memory.contains(Ptr))
        continue;
      size_t Offset = static_cast<const char *>(Ptr) -
                      static_cast<const char *>(R.Memory.base());
      if (!AllowInterior && Offset % ObjectSize != 0)
        return false;
      Class = C;
      Slot = R.SlotBase + Offset / ObjectSize;
      Start = static_cast<char *>(R.Memory.base()) +
              (Offset / ObjectSize) * ObjectSize;
      return true;
    }
  }
  return false;
}

void AdaptiveDieHardHeap::deallocate(void *Ptr) {
  if (Ptr == nullptr)
    return;
  int C;
  size_t Slot;
  char *Start;
  if (!locate(Ptr, /*AllowInterior=*/false, C, Slot, Start)) {
    if (LargeObjects.deallocate(Ptr)) {
      ++Stats.LargeFrees;
      return;
    }
    ++Stats.IgnoredFrees;
    return;
  }
  if (Start != Ptr || !Classes[C].Allocated.tryClear(Slot)) {
    ++Stats.IgnoredFrees;
    return;
  }
  assert(Classes[C].InUse > 0 && "bitmap and counter out of sync");
  --Classes[C].InUse;
  ++Stats.Frees;
}

size_t AdaptiveDieHardHeap::getObjectSize(const void *Ptr) const {
  if (Ptr == nullptr)
    return 0;
  int C;
  size_t Slot;
  char *Start;
  if (!locate(Ptr, /*AllowInterior=*/true, C, Slot, Start))
    return LargeObjects.getSize(Ptr);
  return Classes[C].Allocated.test(Slot) ? SizeClass::classToSize(C) : 0;
}

void *AdaptiveDieHardHeap::getObjectStart(const void *Ptr) const {
  if (Ptr == nullptr)
    return nullptr;
  int C;
  size_t Slot;
  char *Start;
  if (!locate(Ptr, /*AllowInterior=*/true, C, Slot, Start))
    return LargeObjects.contains(Ptr) ? const_cast<void *>(Ptr) : nullptr;
  return Classes[C].Allocated.test(Slot) ? Start : nullptr;
}

size_t AdaptiveDieHardHeap::capacityOfClass(int Class) const {
  assert(Class >= 0 && Class < SizeClass::NumClasses);
  return Classes[Class].TotalSlots;
}

size_t AdaptiveDieHardHeap::liveInClass(int Class) const {
  assert(Class >= 0 && Class < SizeClass::NumClasses);
  return Classes[Class].InUse;
}

} // namespace diehard
