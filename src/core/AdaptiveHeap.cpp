//===- core/AdaptiveHeap.cpp ----------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the adaptive (dynamically growing) DieHard heap with
/// per-size-class locking: each class grows, allocates and frees under its
/// own lock, and pointer queries scan one class at a time so no operation
/// ever holds two class locks.
///
//===----------------------------------------------------------------------===//

#include "core/AdaptiveHeap.h"

#include "core/RandomizedPartition.h"
#include "support/RealRandomSource.h"

#include <cassert>
#include <cstring>

namespace diehard {

AdaptiveDieHardHeap::AdaptiveDieHardHeap(const AdaptiveOptions &Options)
    : Opts(Options) {
  assert(Opts.M > 1.0 && "expansion factor M must exceed 1");
  assert(Opts.InitialSlotsPerClass >= 2 && "need at least two slots");
  ResolvedSeed = Opts.Seed != 0 ? Opts.Seed : realRandomSeed();
  for (int C = 0; C < SizeClass::NumClasses; ++C)
    Classes[C].Rand.setSeed(Rng::deriveStream(ResolvedSeed,
                                              static_cast<uint64_t>(C) + 1,
                                              Rng::ClassStreamGamma));
}

bool AdaptiveDieHardHeap::growLocked(ClassState &State, int Class) {
  // First growth installs InitialSlotsPerClass slots; each later growth
  // doubles the class capacity, so the per-growth cost amortizes to O(1)
  // per allocation and the number of sub-regions stays logarithmic.
  size_t NewSlots =
      State.TotalSlots == 0 ? Opts.InitialSlotsPerClass : State.TotalSlots;
  size_t Bytes = NewSlots * SizeClass::classToSize(Class);

  SubRegion Fresh;
  if (!Fresh.Memory.map(Bytes))
    return false;
  Fresh.Slots = NewSlots;
  Fresh.SlotBase = State.TotalSlots;

  // Extend the bitmap, preserving existing allocation bits. The mapping can
  // fail (Bitmap is left empty); refuse the growth before committing any
  // state, or allocate() would probe a zero-sized bitmap.
  Bitmap Extended(State.TotalSlots + NewSlots);
  if (Extended.size() != State.TotalSlots + NewSlots)
    return false;

  // Register the sub-region before committing, so a pointer query can
  // resolve its class the instant an object can exist in it. A failed
  // node allocation refuses the growth (Fresh unmaps on destruction).
  if (!Regions.insert(Fresh.Memory.base(), Bytes,
                      static_cast<uint32_t>(Class)))
    return false;
  for (size_t I = 0; I < State.Allocated.size(); ++I)
    if (State.Allocated.test(I))
      Extended.trySet(I);

  Reserved.fetch_add(Bytes, std::memory_order_relaxed);
  State.Regions.push_back(std::move(Fresh));
  State.TotalSlots += NewSlots;
  State.Capacity.store(State.TotalSlots, std::memory_order_relaxed);
  State.Allocated = std::move(Extended);
  Growths.fetch_add(1, std::memory_order_relaxed);
  return true;
}

char *AdaptiveDieHardHeap::slotAddress(const ClassState &State, int Class,
                                       size_t Slot) const {
  for (const SubRegion &R : State.Regions) {
    if (Slot < R.SlotBase + R.Slots) {
      return static_cast<char *>(R.Memory.base()) +
             (Slot - R.SlotBase) * SizeClass::classToSize(Class);
    }
  }
  assert(false && "slot index beyond class capacity");
  return nullptr;
}

void AdaptiveDieHardHeap::randomFill(ClassState &State, void *Ptr,
                                     size_t Bytes) {
  randomFillWords(State.Rand, Ptr, Bytes);
}

void *AdaptiveDieHardHeap::allocate(size_t Size) {
  if (Size == 0)
    return nullptr;
  if (Size > SizeClass::MaxObjectSize) {
    std::lock_guard<std::mutex> Guard(LargeLock);
    void *Ptr = LargeObjects.allocate(Size);
    if (Ptr != nullptr)
      LargeAllocations.fetch_add(1, std::memory_order_relaxed);
    return Ptr;
  }

  int C = SizeClass::sizeToClass(Size);
  ClassState &State = Classes[C];
  std::lock_guard<std::mutex> Guard(State.Lock);

  // Grow whenever the next allocation would break the 1/M bound; this is
  // the adaptive replacement for the fixed heap's allocation refusal. Only
  // this class's lock is held: growth never stalls the other classes.
  size_t Live = State.InUse.load(std::memory_order_relaxed);
  while (static_cast<double>(Live + 1) >
         static_cast<double>(State.TotalSlots) / Opts.M) {
    if (!growLocked(State, C))
      return nullptr; // Genuinely out of memory.
  }

  uint64_t LocalProbes = 0, LocalFallbacks = 0;
  size_t Index = claimRandomSlot(State.Allocated, State.Rand,
                                 State.TotalSlots, LocalProbes,
                                 LocalFallbacks);
  Probes.fetch_add(LocalProbes, std::memory_order_relaxed);
  if (LocalFallbacks != 0)
    ProbeFallbacks.fetch_add(LocalFallbacks, std::memory_order_relaxed);
  if (Index == State.TotalSlots)
    return nullptr; // Unreachable given the 1/M bound.

  State.InUse.fetch_add(1, std::memory_order_relaxed);
  Allocations.fetch_add(1, std::memory_order_relaxed);
  char *Ptr = slotAddress(State, C, Index);
  if (Opts.RandomFillObjects)
    randomFill(State, Ptr, SizeClass::classToSize(C));
  return Ptr;
}

bool AdaptiveDieHardHeap::locateInClass(const ClassState &State, int Class,
                                        const void *Ptr, bool AllowInterior,
                                        size_t &Slot, char *&Start) const {
  size_t ObjectSize = SizeClass::classToSize(Class);
  for (const SubRegion &R : State.Regions) {
    if (!R.Memory.contains(Ptr))
      continue;
    size_t Offset = static_cast<size_t>(static_cast<const char *>(Ptr) -
                                        static_cast<const char *>(
                                            R.Memory.base()));
    if (!AllowInterior && Offset % ObjectSize != 0)
      return false; // In-region but misaligned: an invalid free.
    Slot = R.SlotBase + Offset / ObjectSize;
    Start = static_cast<char *>(R.Memory.base()) +
            (Offset / ObjectSize) * ObjectSize;
    return true;
  }
  return false;
}

void AdaptiveDieHardHeap::deallocate(void *Ptr) {
  if (Ptr == nullptr)
    return;
  // Resolve the owning class through the range registry (one shared-lock
  // read; sub-regions are never unmapped, so the answer cannot go stale),
  // then take exactly that class's lock. A free therefore never contends
  // with the other classes — the isolation allocate() has.
  uint32_t Owner = Regions.ownerOf(Ptr);
  if (Owner != AddressRangeMap::NoOwner) {
    int C = static_cast<int>(Owner);
    ClassState &State = Classes[C];
    std::lock_guard<std::mutex> Guard(State.Lock);
    size_t Slot;
    char *Start;
    if (!locateInClass(State, C, Ptr, /*AllowInterior=*/true, Slot, Start) ||
        Start != Ptr || !State.Allocated.tryClear(Slot)) {
      IgnoredFrees.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    assert(State.InUse.load(std::memory_order_relaxed) > 0 &&
           "bitmap and counter out of sync");
    State.InUse.fetch_sub(1, std::memory_order_relaxed);
    Frees.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    std::lock_guard<std::mutex> Guard(LargeLock);
    if (LargeObjects.deallocate(Ptr)) {
      LargeFrees.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  IgnoredFrees.fetch_add(1, std::memory_order_relaxed);
}

size_t AdaptiveDieHardHeap::getObjectSize(const void *Ptr) const {
  if (Ptr == nullptr)
    return 0;
  uint32_t Owner = Regions.ownerOf(Ptr);
  if (Owner != AddressRangeMap::NoOwner) {
    int C = static_cast<int>(Owner);
    const ClassState &State = Classes[C];
    std::lock_guard<std::mutex> Guard(State.Lock);
    size_t Slot;
    char *Start;
    if (locateInClass(State, C, Ptr, /*AllowInterior=*/true, Slot, Start))
      return State.Allocated.test(Slot) ? SizeClass::classToSize(C) : 0;
    return 0;
  }
  std::lock_guard<std::mutex> Guard(LargeLock);
  return LargeObjects.getSize(Ptr);
}

void *AdaptiveDieHardHeap::getObjectStart(const void *Ptr) const {
  if (Ptr == nullptr)
    return nullptr;
  uint32_t Owner = Regions.ownerOf(Ptr);
  if (Owner != AddressRangeMap::NoOwner) {
    int C = static_cast<int>(Owner);
    const ClassState &State = Classes[C];
    std::lock_guard<std::mutex> Guard(State.Lock);
    size_t Slot;
    char *Start;
    if (locateInClass(State, C, Ptr, /*AllowInterior=*/true, Slot, Start))
      return State.Allocated.test(Slot) ? Start : nullptr;
    return nullptr;
  }
  std::lock_guard<std::mutex> Guard(LargeLock);
  return LargeObjects.contains(Ptr) ? const_cast<void *>(Ptr) : nullptr;
}

size_t AdaptiveDieHardHeap::capacityOfClass(int Class) const {
  assert(Class >= 0 && Class < SizeClass::NumClasses);
  return Classes[Class].Capacity.load(std::memory_order_relaxed);
}

size_t AdaptiveDieHardHeap::liveInClass(int Class) const {
  assert(Class >= 0 && Class < SizeClass::NumClasses);
  return Classes[Class].InUse.load(std::memory_order_relaxed);
}

AdaptiveStats AdaptiveDieHardHeap::stats() const {
  AdaptiveStats S;
  S.Allocations = Allocations.load(std::memory_order_relaxed);
  S.Frees = Frees.load(std::memory_order_relaxed);
  S.IgnoredFrees = IgnoredFrees.load(std::memory_order_relaxed);
  S.Probes = Probes.load(std::memory_order_relaxed);
  S.ProbeFallbacks = ProbeFallbacks.load(std::memory_order_relaxed);
  S.Growths = Growths.load(std::memory_order_relaxed);
  S.LargeAllocations = LargeAllocations.load(std::memory_order_relaxed);
  S.LargeFrees = LargeFrees.load(std::memory_order_relaxed);
  return S;
}

} // namespace diehard
