//===- faultinject/TraceIO.h - allocation-log persistence -------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persistence for allocation logs. The paper's methodology is two-phased
/// and file-based: "we first run the application with a tracing allocator
/// that generates an allocation log ... we then sort the log by allocation
/// time and use a fault-injection library" (Section 7.3.1). These helpers
/// write and read that log so the traced run and the injected runs can be
/// separate processes (as they are in `bench_fault_injection`'s forked
/// children, and as they were in the paper's harness).
///
/// Format: a text file, one record per line, `<allocTime> <freeTime>
/// <size>`, preceded by a `diehard-trace v1 <count>` header. freeTime is
/// -1 for objects never freed.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_FAULTINJECT_TRACEIO_H
#define DIEHARD_FAULTINJECT_TRACEIO_H

#include "faultinject/TraceAllocator.h"

#include <string>

namespace diehard {

/// Writes \p Trace to \p Path. \returns true on success.
bool writeTrace(const AllocationTrace &Trace, const std::string &Path);

/// Reads a trace written by writeTrace. \returns true on success; on
/// failure \p Trace is left empty.
bool readTrace(AllocationTrace &Trace, const std::string &Path);

} // namespace diehard

#endif // DIEHARD_FAULTINJECT_TRACEIO_H
