//===- faultinject/TraceIO.cpp --------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of allocation-log persistence (diehard-trace v1).
///
//===----------------------------------------------------------------------===//

#include "faultinject/TraceIO.h"

#include <cinttypes>
#include <cstdio>

namespace diehard {

bool writeTrace(const AllocationTrace &Trace, const std::string &Path) {
  FILE *File = std::fopen(Path.c_str(), "w");
  if (File == nullptr)
    return false;
  bool Ok = std::fprintf(File, "diehard-trace v1 %zu\n", Trace.size()) > 0;
  for (const AllocationRecord &R : Trace) {
    if (!Ok)
      break;
    Ok = std::fprintf(File, "%" PRIu64 " %" PRId64 " %zu\n", R.AllocTime,
                      R.FreeTime, R.Size) > 0;
  }
  Ok = std::fclose(File) == 0 && Ok;
  return Ok;
}

bool readTrace(AllocationTrace &Trace, const std::string &Path) {
  Trace.clear();
  FILE *File = std::fopen(Path.c_str(), "r");
  if (File == nullptr)
    return false;
  size_t Count = 0;
  if (std::fscanf(File, "diehard-trace v1 %zu\n", &Count) != 1) {
    std::fclose(File);
    return false;
  }
  Trace.reserve(Count);
  for (size_t I = 0; I < Count; ++I) {
    AllocationRecord R;
    if (std::fscanf(File, "%" SCNu64 " %" SCNd64 " %zu\n", &R.AllocTime,
                    &R.FreeTime, &R.Size) != 3) {
      Trace.clear();
      std::fclose(File);
      return false;
    }
    Trace.push_back(R);
  }
  std::fclose(File);
  return true;
}

} // namespace diehard
