//===- faultinject/TraceAllocator.h - allocation tracing --------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// First half of the Section 7.3.1 fault-injection methodology: a tracing
/// allocator that runs the application once and generates an allocation log.
/// For every object the log records when it was allocated and when it was
/// freed, both in allocation time (the number of allocations performed so
/// far). The log, sorted by allocation time, then drives the fault injector
/// on a second, identical run.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_FAULTINJECT_TRACEALLOCATOR_H
#define DIEHARD_FAULTINJECT_TRACEALLOCATOR_H

#include "baselines/Allocator.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace diehard {

/// One object's lifetime in allocation time.
struct AllocationRecord {
  uint64_t AllocTime;      ///< Index of the allocation that created it.
  int64_t FreeTime;        ///< Allocation count at free; -1 if never freed.
  size_t Size;             ///< Requested size in bytes.
};

/// The allocation log: records indexed by allocation time.
using AllocationTrace = std::vector<AllocationRecord>;

/// Allocator decorator that records an AllocationTrace while forwarding all
/// requests to an underlying allocator.
class TraceAllocator final : public Allocator {
public:
  /// Wraps \p Underlying, which must outlive this object.
  explicit TraceAllocator(Allocator &Underlying) : Inner(Underlying) {}

  void *allocate(size_t Size) override;
  void deallocate(void *Ptr) override;
  const char *getName() const override { return "trace"; }

  void registerRootRange(void *Base, size_t Len) override {
    Inner.registerRootRange(Base, Len);
  }
  void unregisterRootRange(void *Base) override {
    Inner.unregisterRootRange(Base);
  }
  void collect() override { Inner.collect(); }

  /// The log recorded so far (indexed by allocation time).
  const AllocationTrace &trace() const { return Trace; }

private:
  Allocator &Inner;
  AllocationTrace Trace;
  std::unordered_map<void *, uint64_t> LiveIndex;
};

} // namespace diehard

#endif // DIEHARD_FAULTINJECT_TRACEALLOCATOR_H
