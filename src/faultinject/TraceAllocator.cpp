//===- faultinject/TraceAllocator.cpp -------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the tracing allocator that records allocation logs.
///
//===----------------------------------------------------------------------===//

#include "faultinject/TraceAllocator.h"

namespace diehard {

void *TraceAllocator::allocate(size_t Size) {
  void *Ptr = Inner.allocate(Size);
  if (Ptr == nullptr)
    return nullptr;
  uint64_t Now = Trace.size();
  Trace.push_back(AllocationRecord{Now, -1, Size});
  LiveIndex[Ptr] = Now;
  return Ptr;
}

void TraceAllocator::deallocate(void *Ptr) {
  if (Ptr != nullptr) {
    auto It = LiveIndex.find(Ptr);
    if (It != LiveIndex.end()) {
      // Free time is measured in allocation time: the number of allocations
      // that have happened so far.
      Trace[It->second].FreeTime = static_cast<int64_t>(Trace.size());
      LiveIndex.erase(It);
    }
  }
  Inner.deallocate(Ptr);
}

} // namespace diehard
