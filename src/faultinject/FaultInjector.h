//===- faultinject/FaultInjector.h - memory-error injection -----*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Second half of the Section 7.3.1 methodology: a fault-injection layer
/// that sits between the application and the memory allocator and triggers
/// errors probabilistically, based on requested frequencies.
///
///  * Buffer overflows are triggered by under-allocation: the injector
///    requests less memory from the underlying allocator than the
///    application asked for, so the application's ordinary writes overflow.
///  * Dangling pointers are triggered using the allocation log from a prior
///    traced run: the injector frees an object `Distance` allocations before
///    the application would, and ignores the application's subsequent
///    (actual) free of that object.
///
/// Dangling injection applies only to small objects (< 16K), as in the
/// paper.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_FAULTINJECT_FAULTINJECTOR_H
#define DIEHARD_FAULTINJECT_FAULTINJECTOR_H

#include "baselines/Allocator.h"
#include "core/SizeClass.h"
#include "faultinject/TraceAllocator.h"
#include "support/Rng.h"

#include <cstdint>
#include <map>
#include <unordered_set>

namespace diehard {

/// Requested fault frequencies (Section 7.3.1's experiment uses dangling
/// 50% / distance 10, and overflow 1% / 4-byte under-allocation of requests
/// of 32 bytes or more).
struct FaultConfig {
  double DanglingProbability = 0.0; ///< Chance a freed object frees early.
  uint64_t DanglingDistance = 10;   ///< How many allocations too early.
  double OverflowProbability = 0.0; ///< Chance an allocation under-allocates.
  size_t UnderAllocateBytes = 4;    ///< How many bytes short.
  size_t OverflowMinSize = 32;      ///< Only under-allocate requests >= this.
  uint64_t Seed = 1;                ///< Injection RNG seed.
};

/// Counters describing what was actually injected.
struct FaultStats {
  uint64_t DanglingInjected = 0; ///< Premature frees performed.
  uint64_t IgnoredRealFrees = 0; ///< Application frees swallowed afterwards.
  uint64_t OverflowsInjected = 0; ///< Under-allocated requests.
};

/// Allocator decorator injecting dangling-pointer and overflow faults.
class FaultInjector final : public Allocator {
public:
  /// Wraps \p Underlying. \p Log is the allocation log from a traced run of
  /// the same (deterministic) workload; it drives dangling injection. Both
  /// must outlive this object.
  FaultInjector(Allocator &Underlying, const AllocationTrace &Log,
                const FaultConfig &Cfg);

  void *allocate(size_t Size) override;
  void deallocate(void *Ptr) override;
  const char *getName() const override { return "fault-injector"; }

  void registerRootRange(void *Base, size_t Len) override {
    Inner.registerRootRange(Base, Len);
  }
  void unregisterRootRange(void *Base) override {
    Inner.unregisterRootRange(Base);
  }
  void collect() override { Inner.collect(); }

  const FaultStats &stats() const { return Stats; }

private:
  /// Performs any premature frees that have come due at the current
  /// allocation time.
  void runDuePrematureFrees();

  Allocator &Inner;
  const AllocationTrace &Trace;
  FaultConfig Config;
  Rng Rand;
  FaultStats Stats;

  uint64_t Now = 0; ///< Allocations performed so far.
  /// Premature frees scheduled at future allocation times.
  std::multimap<uint64_t, void *> Pending;
  /// Pointers already freed early; the application's own free is ignored.
  std::unordered_set<void *> FreedEarly;
};

} // namespace diehard

#endif // DIEHARD_FAULTINJECT_FAULTINJECTOR_H
