//===- faultinject/FaultInjector.cpp --------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the probabilistic fault injector (Section 7.3.1).
///
//===----------------------------------------------------------------------===//

#include "faultinject/FaultInjector.h"

namespace diehard {

FaultInjector::FaultInjector(Allocator &Underlying,
                             const AllocationTrace &Log,
                             const FaultConfig &Cfg)
    : Inner(Underlying), Trace(Log), Config(Cfg), Rand(Cfg.Seed) {}

void FaultInjector::runDuePrematureFrees() {
  while (!Pending.empty() && Pending.begin()->first <= Now) {
    void *Victim = Pending.begin()->second;
    Pending.erase(Pending.begin());
    // The premature free: from the application's point of view this object
    // is still live, so every later read or write through it is a dangling
    // pointer access.
    if (FreedEarly.insert(Victim).second) {
      Inner.deallocate(Victim);
      ++Stats.DanglingInjected;
    }
  }
}

void *FaultInjector::allocate(size_t Size) {
  uint64_t AllocTime = Now++;

  size_t Request = Size;
  if (Config.OverflowProbability > 0.0 && Size >= Config.OverflowMinSize &&
      Size > Config.UnderAllocateBytes &&
      Rand.nextDouble() < Config.OverflowProbability) {
    // Under-allocate: the application believes it got `Size` bytes, so its
    // ordinary writes run off the end of the object.
    Request = Size - Config.UnderAllocateBytes;
    ++Stats.OverflowsInjected;
  }

  void *Ptr = Inner.allocate(Request);

  // Schedule a premature free for this object if the trace knows when it
  // would normally die. Only small objects, as in the paper.
  if (Ptr != nullptr && AllocTime < Trace.size() &&
      Size < SizeClass::MaxObjectSize &&
      Config.DanglingProbability > 0.0 &&
      Rand.nextDouble() < Config.DanglingProbability) {
    int64_t FreeTime = Trace[AllocTime].FreeTime;
    if (FreeTime > 0) {
      uint64_t Early = static_cast<uint64_t>(FreeTime) >
                               Config.DanglingDistance
                           ? static_cast<uint64_t>(FreeTime) -
                                 Config.DanglingDistance
                           : AllocTime + 1;
      if (Early <= AllocTime)
        Early = AllocTime + 1;
      Pending.emplace(Early, Ptr);
    }
  }

  runDuePrematureFrees();
  return Ptr;
}

void FaultInjector::deallocate(void *Ptr) {
  auto It = FreedEarly.find(Ptr);
  if (It != FreedEarly.end()) {
    // The application's own free of an object we already freed early: the
    // injector swallows it (the paper "ignores the subsequent actual call to
    // free this object").
    FreedEarly.erase(It);
    ++Stats.IgnoredRealFrees;
    return;
  }
  // Drop any still-pending premature free for this pointer: the object's
  // real lifetime ended first.
  for (auto P = Pending.begin(); P != Pending.end(); ++P) {
    if (P->second == Ptr) {
      Pending.erase(P);
      break;
    }
  }
  Inner.deallocate(Ptr);
}

} // namespace diehard
