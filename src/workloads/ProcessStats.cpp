//===- workloads/ProcessStats.cpp -----------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the shared process memory metrics.
///
//===----------------------------------------------------------------------===//

#include "workloads/ProcessStats.h"

#include <cstdio>
#include <cstring>

#include <sys/mman.h>
#include <unistd.h>

namespace diehard {

long currentRssKb() {
  std::FILE *F = std::fopen("/proc/self/statm", "r");
  if (F == nullptr)
    return 0;
  long SizePages = 0, ResidentPages = 0;
  int N = std::fscanf(F, "%ld %ld", &SizePages, &ResidentPages);
  std::fclose(F);
  if (N != 2)
    return 0;
  return ResidentPages * (::sysconf(_SC_PAGESIZE) / 1024);
}

long lazyFreeKb() {
  std::FILE *F = std::fopen("/proc/self/smaps_rollup", "r");
  if (F == nullptr)
    return 0;
  char Line[256];
  long Kb = 0;
  while (std::fgets(Line, sizeof(Line), F) != nullptr)
    if (std::sscanf(Line, "LazyFree: %ld kB", &Kb) == 1)
      break;
  std::fclose(F);
  return Kb;
}

bool pageOutAnonymous() {
#ifdef MADV_PAGEOUT
  std::FILE *F = std::fopen("/proc/self/maps", "r");
  if (F == nullptr)
    return false;
  char Line[512];
  while (std::fgets(Line, sizeof(Line), F) != nullptr) {
    unsigned long Begin = 0, End = 0, Offset = 0, Inode = 1;
    char Perms[8] = {}, Dev[16] = {};
    if (std::sscanf(Line, "%lx-%lx %7s %lx %15s %lu", &Begin, &End, Perms,
                    &Offset, Dev, &Inode) != 6)
      continue;
    // Unnamed rw anonymous mappings only: the heap's reservations. Named
    // regions ([stack], [heap], file backings) are skipped.
    if (Inode != 0 || std::strcmp(Perms, "rw-p") != 0 ||
        std::strchr(Line, '[') != nullptr || std::strchr(Line, '/') != nullptr)
      continue;
    ::madvise(reinterpret_cast<void *>(Begin), End - Begin, MADV_PAGEOUT);
  }
  std::fclose(F);
  return true;
#else
  return false;
#endif
}

} // namespace diehard
