//===- workloads/WorkloadSuite.cpp ----------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the preset benchmark profiles (Section 7.1 suites).
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadSuite.h"

#include <cassert>

namespace diehard {

// Profiles are derived from the published characterizations of these
// programs (Berger, Zorn & McKinley 2001/2002; Zorn & Grunwald's and
// Johnstone & Wilson's workload studies): object-size bands, live-set
// scale, and the allocation:compute ratio. Operation counts are sized so
// one run takes tens of milliseconds; benches scale them up.

std::vector<WorkloadParams> allocationIntensiveSuite(uint64_t OpsScale) {
  std::vector<WorkloadParams> Suite;

  // cfrac: continued-fraction factorization; torrents of tiny short-lived
  // bignum digits.
  Suite.push_back(WorkloadParams{"cfrac", 400000 * OpsScale, 8, 64,
                                 SizeShape::SmallBiased, 1500, 2, 16,
                                 0xCF12AC});

  // espresso: PLA minimizer; small-to-medium cube structures, bursty.
  Suite.push_back(WorkloadParams{"espresso", 300000 * OpsScale, 8, 512,
                                 SizeShape::SmallBiased, 4000, 4, 24,
                                 0xE5B2E5});

  // lindsay: hypercube simulator; the paper's uninitialized-read culprit.
  Suite.push_back(WorkloadParams{"lindsay", 250000 * OpsScale, 16, 256,
                                 SizeShape::Uniform, 3000, 6, 24,
                                 0x11D5A1});

  // p2c: Pascal-to-C translator; AST nodes of moderate, varied sizes.
  Suite.push_back(WorkloadParams{"p2c", 250000 * OpsScale, 32, 1024,
                                 SizeShape::Bimodal, 6000, 6, 32,
                                 0x92C000});

  // roboop: robot-kinematics library; fixed-size matrix temporaries churned
  // at the highest rate in the suite.
  Suite.push_back(WorkloadParams{"roboop", 500000 * OpsScale, 48, 48,
                                 SizeShape::Fixed, 600, 1, 32,
                                 0x50B009});

  return Suite;
}

std::vector<WorkloadParams> generalPurposeSuite(uint64_t OpsScale) {
  std::vector<WorkloadParams> Suite;
  // SPECint2000-like profiles: allocation is a minor fraction of total
  // work (high ComputePerOp), so allocator differences mostly wash out —
  // the paper's geometric-mean 12% overhead story. perlbmk and twolf are
  // modeled as the outliers the paper discusses.
  Suite.push_back(WorkloadParams{"164.gzip-like", 30000 * OpsScale, 1024,
                                 16384, SizeShape::Uniform, 200, 1500, 64,
                                 0x6219});
  Suite.push_back(WorkloadParams{"175.vpr-like", 50000 * OpsScale, 16, 512,
                                 SizeShape::Uniform, 4000, 900, 24, 0x0175});
  Suite.push_back(WorkloadParams{"176.gcc-like", 80000 * OpsScale, 16, 4096,
                                 SizeShape::Bimodal, 12000, 550, 32, 0x0176});
  Suite.push_back(WorkloadParams{"181.mcf-like", 20000 * OpsScale, 4096,
                                 16384, SizeShape::Uniform, 300, 2200, 64,
                                 0x0181});
  Suite.push_back(WorkloadParams{"186.crafty-like", 25000 * OpsScale, 64,
                                 2048, SizeShape::Uniform, 500, 1800, 32,
                                 0x0186});
  Suite.push_back(WorkloadParams{"197.parser-like", 90000 * OpsScale, 8, 128,
                                 SizeShape::SmallBiased, 8000, 480, 16,
                                 0x0197});
  Suite.push_back(WorkloadParams{"252.eon-like", 40000 * OpsScale, 32, 1024,
                                 SizeShape::Uniform, 2500, 1100, 32, 0x0252});
  // 253.perlbmk: allocation-intensive for a SPEC program (~12.5% of its
  // time in memory operations) — low compute per op.
  Suite.push_back(WorkloadParams{"253.perlbmk-like", 150000 * OpsScale, 8,
                                 1024, SizeShape::SmallBiased, 10000, 60, 24,
                                 0x0253});
  Suite.push_back(WorkloadParams{"254.gap-like", 60000 * OpsScale, 16, 2048,
                                 SizeShape::Bimodal, 5000, 760, 32, 0x0254});
  Suite.push_back(WorkloadParams{"255.vortex-like", 70000 * OpsScale, 32,
                                 512, SizeShape::Uniform, 9000, 620, 32,
                                 0x0255});
  Suite.push_back(WorkloadParams{"256.bzip2-like", 20000 * OpsScale, 2048,
                                 16384, SizeShape::Uniform, 150, 2100, 64,
                                 0x0256});
  // 300.twolf: a wide range of object sizes spread across many size-class
  // partitions — the paper's TLB-miss outlier (109% overhead on Linux).
  Suite.push_back(WorkloadParams{"300.twolf-like", 120000 * OpsScale, 8,
                                 8192, SizeShape::WideSpread, 15000, 150, 32,
                                 0x0300});
  return Suite;
}

WorkloadParams findWorkload(const std::string &Name, uint64_t OpsScale) {
  for (const WorkloadParams &P : allocationIntensiveSuite(OpsScale))
    if (P.Name == Name)
      return P;
  for (const WorkloadParams &P : generalPurposeSuite(OpsScale))
    if (P.Name == Name)
      return P;
  assert(false && "unknown workload name");
  return WorkloadParams{};
}

} // namespace diehard
