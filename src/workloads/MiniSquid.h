//===- workloads/MiniSquid.h - buggy caching-server case study --*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature web-cache server core reproducing the Squid 2.3s5 case study
/// (Section 7.3): a parsing path copies a client-supplied string into a
/// fixed-size heap buffer with an unchecked strcpy, so an ill-formed request
/// overflows the heap.
///
/// All server state — cache entries, the access log, URL strings — lives in
/// objects from the injected allocator, and the access-log record for a
/// request is allocated immediately after the URL buffer and before the
/// copy. Allocators that place consecutive allocations adjacently (the
/// Lea-style baseline, the bump-allocating collector) therefore have live
/// pointer data right where the overflow lands: the server crashes, exactly
/// as the paper observed for Squid under both GNU libc and the BDW
/// collector. DieHard's random placement masks the overflow with high
/// probability, and the checked libc functions (Section 4.4) clamp it
/// entirely.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_WORKLOADS_MINISQUID_H
#define DIEHARD_WORKLOADS_MINISQUID_H

#include "baselines/Allocator.h"
#include "core/CheckedLibc.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace diehard {

/// The miniature caching server. Crashes under corruption are the point:
/// run it behind a fork boundary (see ForkHarness.h) when feeding it
/// ill-formed input.
class MiniSquid {
public:
  /// Serves requests using \p Alloc. If \p Libc is non-null, string
  /// copies go through DieHard's checked libc functions.
  explicit MiniSquid(Allocator &Alloc, const CheckedLibc *Libc = nullptr);
  ~MiniSquid();

  /// Handles one request line of the form "GET <url>". URLs longer than
  /// the 64-byte internal buffer trigger the overflow bug. \returns the
  /// response text.
  std::string handleRequest(const std::string &RequestLine);

  /// Number of cache entries currently resident.
  size_t cacheSize() const { return EntryCount; }

  /// Number of access-log records currently retained.
  size_t logSize() const { return LogCount; }

  /// Total requests served (including cache hits).
  size_t requestsServed() const { return Served; }

private:
  /// One cached document; lives in the injected heap.
  struct CacheEntry {
    char *Url;
    char *Payload;
    size_t PayloadSize;
    CacheEntry *Next;
  };

  /// One access-log record; lives in the injected heap. The overflow in
  /// canonicalizeUrl lands on the most recent record under sequentially
  /// placing allocators.
  struct LogRecord {
    char *UrlCopy;    ///< Heap copy of the raw request URL.
    uint32_t Status;  ///< HTTP-ish status code recorded for the request.
    LogRecord *Next;
  };

  char *duplicateString(const char *Text);
  CacheEntry *findEntry(const char *Url);
  void insertEntry(const char *Url, const std::string &Payload);
  void evictIfNeeded();
  void trimLog();

  /// Touches recent log records the way a stats endpoint would; this is
  /// where clobbered pointers get dereferenced.
  uint32_t summarizeRecentLog() const;

  Allocator &Heap;
  const CheckedLibc *Checked;
  CacheEntry *Entries = nullptr;
  size_t EntryCount = 0;
  LogRecord *Log = nullptr;
  size_t LogCount = 0;
  size_t Served = 0;

  static constexpr size_t UrlBufferSize = 64;
  static constexpr size_t MaxEntries = 64;
  static constexpr size_t MaxLogRecords = 128;
};

} // namespace diehard

#endif // DIEHARD_WORKLOADS_MINISQUID_H
