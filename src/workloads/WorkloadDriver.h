//===- workloads/WorkloadDriver.h - gauntlet workload driver ----*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared multithreaded workload driver behind the allocator gauntlet
/// (bench_gauntlet) and the workload stress tests. It runs the classic
/// allocator-bench stress shapes — larson-style server churn with
/// cross-thread handoff, producer/consumer pipelines, burst alloc/free
/// phases, and a fragmentation-heavy long-runner — against anything behind
/// the uniform Allocator facade, with three properties the benches and
/// tests both rely on:
///
///  * *Deterministic op sequences.* Every decision (sizes, slots, tags)
///    comes from per-thread RNG streams derived from one seed, and object
///    hashes fold into the checksum commutatively, so two runs with the
///    same parameters produce identical op counts and checksums no matter
///    how the scheduler interleaves threads or which thread ends up
///    freeing a handed-off object.
///
///  * *Exact accounting.* Each workload performs a closed-form number of
///    allocations (expectedAllocations) and frees every one of them before
///    returning, so Allocations == Frees at quiescence is a hard
///    invariant any allocator must preserve.
///
///  * *Self-validation.* Every object is stamped at allocation and
///    verified at free through the same stampObject/hashObject helpers the
///    synthetic suite uses, so a corrupting allocator changes the checksum
///    instead of silently passing.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_WORKLOADS_WORKLOADDRIVER_H
#define DIEHARD_WORKLOADS_WORKLOADDRIVER_H

#include "baselines/Allocator.h"
#include "workloads/LatencyHistogram.h"

#include <cstdint>
#include <mutex>
#include <string>

namespace diehard {

/// Writes a recognizable pattern derived from \p Tag into the front
/// TouchBytes of the object and, when it fits, its final four bytes —
/// the footprint applications leave in memory they asked for. The matching
/// hashObject() reads exactly these bytes back, so any allocator that
/// preserves user data yields the identical hash.
void stampObject(void *Ptr, size_t Size, uint32_t Tag, size_t TouchBytes);

/// FNV-folds the bytes stampObject() wrote and returns the object's hash.
/// Allocator-independent: depends only on (Size, Tag, TouchBytes).
uint64_t hashObject(const void *Ptr, size_t Size, size_t TouchBytes);

/// Serializes a non-thread-safe Allocator behind one mutex so the
/// multithreaded gauntlet can drive the single-heap baselines (Lea,
/// DieHardHeap direct) the way a pre-threading malloc wrapped its arena.
class LockedAllocator final : public Allocator {
public:
  explicit LockedAllocator(Allocator &Target) : Inner(Target) {
    Name = std::string(Target.getName()) + "-locked";
  }

  void *allocate(size_t Size) override {
    std::lock_guard<std::mutex> Guard(Lock);
    return Inner.allocate(Size);
  }
  void deallocate(void *Ptr) override {
    std::lock_guard<std::mutex> Guard(Lock);
    Inner.deallocate(Ptr);
  }
  const char *getName() const override { return Name.c_str(); }

private:
  Allocator &Inner;
  std::mutex Lock;
  std::string Name;
};

/// The gauntlet's workload shapes, named for their allocator-bench-canon
/// ancestors (see docs/ARCHITECTURE.md for the mapping).
enum class GauntletKind {
  Larson,   ///< Server churn: slot blocks rotate between threads each
            ///< round, so objects are freed by a different thread than
            ///< allocated them (larson's cross-thread handoff).
  Pipeline, ///< Producer/consumer pairs over SPSC rings: every free is a
            ///< remote free (xmalloc-test's async-free shape).
  Burst,    ///< Alternating allocate-B / free-B phases per thread
            ///< (alloc-test's batch churn).
  Fragment, ///< Fill, free all but scattered survivors, churn into the
            ///< holes (the fragmentation long-runner shape).
};

/// Returns the lowercase workload name used in reports and CLI arguments.
const char *gauntletKindName(GauntletKind Kind);

/// Parses a workload name; returns false on an unknown name.
bool gauntletKindFromName(const std::string &Name, GauntletKind &KindOut);

/// Parameters for one gauntlet run.
struct GauntletParams {
  GauntletKind Kind = GauntletKind::Larson;
  int Threads = 4;             ///< Worker threads (Pipeline uses pairs).
  uint64_t OpsPerThread = 100000; ///< Exact allocations per worker thread.
  size_t MinSize = 8;
  size_t MaxSize = 512;
  size_t SlotsPerThread = 512; ///< Live-set block size (Larson, Fragment).
  size_t BurstObjects = 1024;  ///< Objects per burst phase (Burst).
  int PinnedStride = 16;       ///< Fragment: every Nth slot stays pinned.
  int Rounds = 8;              ///< Larson: handoff rounds.
  size_t TouchBytes = 16;      ///< Bytes stamped/verified per object.
  int SamplePeriod = 8;        ///< Latency-sample every Nth operation.
  uint64_t Seed = 0x6A07;      ///< Root of all per-thread RNG streams.
};

/// What a gauntlet run produced.
struct GauntletResult {
  uint64_t Allocations = 0;
  uint64_t Frees = 0;
  uint64_t FailedAllocations = 0;
  uint64_t Checksum = 0; ///< Commutative fold of per-object hashes.
  double Seconds = 0.0;  ///< Wall time of the worker phase.
  double OpsPerSec = 0.0; ///< (Allocations + Frees) / Seconds.
  LatencyHistogram Latency; ///< Sampled per-op (alloc and free) latencies.
};

/// Number of worker threads a run will actually use (Pipeline rounds the
/// requested count down to producer/consumer pairs, minimum one pair).
int gauntletThreadsUsed(const GauntletParams &Params);

/// The closed-form allocation count of a run: every workload allocates
/// exactly OpsPerThread objects per worker thread (per producer for
/// Pipeline) and frees all of them before returning.
uint64_t expectedAllocations(const GauntletParams &Params);

/// Runs one gauntlet workload against \p Target and reports throughput,
/// sampled latency, and the determinism-checkable counters.
GauntletResult runGauntlet(const GauntletParams &Params, Allocator &Target);

} // namespace diehard

#endif // DIEHARD_WORKLOADS_WORKLOADDRIVER_H
