//===- workloads/WorkloadDriver.cpp ---------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the shared gauntlet workload driver.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadDriver.h"

#include "support/Rng.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cassert>
#include <chrono>
#include <thread>
#include <vector>

namespace diehard {

void stampObject(void *Ptr, size_t Size, uint32_t Tag, size_t TouchBytes) {
  size_t Touch = std::min(Size, TouchBytes);
  auto *Bytes = static_cast<unsigned char *>(Ptr);
  for (size_t I = 0; I < Touch; ++I)
    Bytes[I] = static_cast<unsigned char>(Tag >> ((I % 4) * 8));
  if (Size >= Touch + 4)
    for (size_t I = Size - 4; I < Size; ++I)
      Bytes[I] = static_cast<unsigned char>(Tag >> ((I % 4) * 8));
}

uint64_t hashObject(const void *Ptr, size_t Size, size_t TouchBytes) {
  size_t Touch = std::min(Size, TouchBytes);
  const auto *Bytes = static_cast<const unsigned char *>(Ptr);
  uint64_t Hash = 0xCBF29CE484222325ULL ^ Size;
  for (size_t I = 0; I < Touch; ++I)
    Hash = Hash * 1099511628211ULL ^ Bytes[I];
  if (Size >= Touch + 4)
    for (size_t I = Size - 4; I < Size; ++I)
      Hash = Hash * 1099511628211ULL ^ Bytes[I];
  return Hash;
}

const char *gauntletKindName(GauntletKind Kind) {
  switch (Kind) {
  case GauntletKind::Larson:
    return "larson";
  case GauntletKind::Pipeline:
    return "pipeline";
  case GauntletKind::Burst:
    return "burst";
  case GauntletKind::Fragment:
    return "fragment";
  }
  return "unknown";
}

bool gauntletKindFromName(const std::string &Name, GauntletKind &KindOut) {
  for (GauntletKind Kind :
       {GauntletKind::Larson, GauntletKind::Pipeline, GauntletKind::Burst,
        GauntletKind::Fragment}) {
    if (Name == gauntletKindName(Kind)) {
      KindOut = Kind;
      return true;
    }
  }
  return false;
}

int gauntletThreadsUsed(const GauntletParams &Params) {
  int Threads = std::max(1, Params.Threads);
  if (Params.Kind == GauntletKind::Pipeline)
    return 2 * std::max(1, Threads / 2);
  return Threads;
}

uint64_t expectedAllocations(const GauntletParams &Params) {
  int Used = gauntletThreadsUsed(Params);
  // Pipeline allocates only on the producer half of its thread pairs.
  if (Params.Kind == GauntletKind::Pipeline)
    Used /= 2;
  return static_cast<uint64_t>(Used) * Params.OpsPerThread;
}

namespace {

/// One live object as the driver tracks it.
struct Slot {
  void *Ptr = nullptr;
  uint32_t Size = 0;
  uint32_t Tag = 0;
};

/// Per-worker counters, merged after the join (no shared hot-path state).
struct WorkerStats {
  uint64_t Allocations = 0;
  uint64_t Frees = 0;
  uint64_t Failed = 0;
  uint64_t Checksum = 0; ///< Wrapping sum of object hashes (commutative).
  uint64_t OpCounter = 0;
  LatencyHistogram Latency;
};

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Uniform size in [MinSize, MaxSize]; with \p LogSpread, log-uniform
/// across the power-of-two bands of the range (the fragmentation shape:
/// many size classes touched with equal probability).
size_t pickSize(Rng &Rand, const GauntletParams &P, bool LogSpread) {
  size_t Lo = P.MinSize, Hi = P.MaxSize;
  if (Lo >= Hi)
    return Lo;
  if (!LogSpread)
    return Lo + Rand.nextBounded(static_cast<uint32_t>(Hi - Lo + 1));
  int LoBits = 0, HiBits = 0;
  for (size_t S = Lo; S > 1; S >>= 1)
    ++LoBits;
  for (size_t S = Hi; S > 1; S >>= 1)
    ++HiBits;
  int Bits = LoBits + static_cast<int>(Rand.nextBounded(
                          static_cast<uint32_t>(HiBits - LoBits + 1)));
  size_t Base = size_t(1) << Bits;
  size_t Limit = std::min(Hi, Base * 2 - 1);
  size_t Start = std::max(Lo, Base);
  return Start +
         Rand.nextBounded(static_cast<uint32_t>(Limit - Start + 1));
}

/// Allocates, stamps, and accounts one object. Every SamplePeriod-th
/// operation is timed into the worker's histogram.
Slot allocOne(Allocator &Target, const GauntletParams &P, Rng &Rand,
              WorkerStats &Stats, bool LogSpread) {
  Slot S;
  size_t Size = pickSize(Rand, P, LogSpread);
  uint32_t Tag = Rand.next();
  bool Sampled = (Stats.OpCounter++ % static_cast<uint64_t>(
                                          std::max(1, P.SamplePeriod))) == 0;
  uint64_t Start = Sampled ? nowNs() : 0;
  void *Ptr = Target.allocate(Size);
  if (Sampled)
    Stats.Latency.record(nowNs() - Start);
  if (Ptr == nullptr) {
    ++Stats.Failed;
    return S;
  }
  stampObject(Ptr, Size, Tag, P.TouchBytes);
  S.Ptr = Ptr;
  S.Size = static_cast<uint32_t>(Size);
  S.Tag = Tag;
  ++Stats.Allocations;
  return S;
}

/// Verifies, frees, and accounts one object; empty slots are a no-op.
void freeOne(Allocator &Target, const GauntletParams &P, Slot &S,
             WorkerStats &Stats) {
  if (S.Ptr == nullptr)
    return;
  Stats.Checksum += hashObject(S.Ptr, S.Size, P.TouchBytes);
  bool Sampled = (Stats.OpCounter++ % static_cast<uint64_t>(
                                          std::max(1, P.SamplePeriod))) == 0;
  uint64_t Start = Sampled ? nowNs() : 0;
  Target.deallocate(S.Ptr);
  if (Sampled)
    Stats.Latency.record(nowNs() - Start);
  S.Ptr = nullptr;
  ++Stats.Frees;
}

/// Larson-style server churn. The slot table is split into one block per
/// thread; each round, thread t churns block (t + round) % T, so the
/// objects a thread leaves behind are freed by its successor — the
/// cross-thread handoff that defines the larson shape. A barrier separates
/// rounds (and the final drain) so exactly one thread owns a block at a
/// time.
void larsonWorker(Allocator &Target, const GauntletParams &P, int Thread,
                  int Threads, std::vector<Slot> &Slots,
                  std::barrier<> &RoundBarrier, WorkerStats &Stats) {
  Rng Rand(Rng::deriveStream(P.Seed, static_cast<uint64_t>(Thread) + 1));
  int Rounds = std::max(1, P.Rounds);
  uint64_t OpsPerRound = P.OpsPerThread / Rounds;
  for (int Round = 0; Round < Rounds; ++Round) {
    size_t Block =
        (static_cast<size_t>(Thread) + Round) % static_cast<size_t>(Threads);
    Slot *Base = Slots.data() + Block * P.SlotsPerThread;
    uint64_t Ops = OpsPerRound +
                   (Round == Rounds - 1 ? P.OpsPerThread % Rounds : 0);
    for (uint64_t I = 0; I < Ops; ++I) {
      Slot &S = Base[Rand.nextBounded(
          static_cast<uint32_t>(P.SlotsPerThread))];
      freeOne(Target, P, S, Stats);
      S = allocOne(Target, P, Rand, Stats, /*LogSpread=*/false);
    }
    RoundBarrier.arrive_and_wait();
  }
  // Drain: the block rotation continues one more step, so every block is
  // emptied by exactly one thread.
  size_t Block =
      (static_cast<size_t>(Thread) + Rounds) % static_cast<size_t>(Threads);
  Slot *Base = Slots.data() + Block * P.SlotsPerThread;
  for (size_t I = 0; I < P.SlotsPerThread; ++I)
    freeOne(Target, P, Base[I], Stats);
}

/// Single-producer/single-consumer ring carrying live objects from the
/// allocating thread to the freeing thread.
struct SpscRing {
  static constexpr size_t Capacity = 1024; // Power of two.
  Slot Entries[Capacity];
  std::atomic<size_t> Head{0}; ///< Next slot the consumer reads.
  std::atomic<size_t> Tail{0}; ///< Next slot the producer writes.

  bool tryPush(const Slot &S) {
    size_t T = Tail.load(std::memory_order_relaxed);
    if (T - Head.load(std::memory_order_acquire) == Capacity)
      return false;
    Entries[T % Capacity] = S;
    Tail.store(T + 1, std::memory_order_release);
    return true;
  }

  bool tryPop(Slot &S) {
    size_t H = Head.load(std::memory_order_relaxed);
    if (H == Tail.load(std::memory_order_acquire))
      return false;
    S = Entries[H % Capacity];
    Head.store(H + 1, std::memory_order_release);
    return true;
  }
};

/// Producer half of a pipeline pair: allocate, stamp, hand off.
void pipelineProducer(Allocator &Target, const GauntletParams &P, int Pair,
                      SpscRing &Ring, WorkerStats &Stats) {
  Rng Rand(Rng::deriveStream(P.Seed, static_cast<uint64_t>(Pair) + 1,
                             Rng::ClassStreamGamma));
  for (uint64_t I = 0; I < P.OpsPerThread; ++I) {
    Slot S = allocOne(Target, P, Rand, Stats, /*LogSpread=*/false);
    while (!Ring.tryPush(S))
      std::this_thread::yield();
  }
}

/// Consumer half: receive, verify, free. Pops exactly OpsPerThread slots,
/// so the pair's hand-off count is closed-form (failed allocations travel
/// through the ring as empty slots and are skipped by freeOne).
void pipelineConsumer(Allocator &Target, const GauntletParams &P,
                      SpscRing &Ring, WorkerStats &Stats) {
  for (uint64_t I = 0; I < P.OpsPerThread; ++I) {
    Slot S;
    while (!Ring.tryPop(S))
      std::this_thread::yield();
    freeOne(Target, P, S, Stats);
  }
}

/// Burst churn: allocate a batch, free the whole batch, repeat.
void burstWorker(Allocator &Target, const GauntletParams &P, int Thread,
                 WorkerStats &Stats) {
  Rng Rand(Rng::deriveStream(P.Seed, static_cast<uint64_t>(Thread) + 1));
  std::vector<Slot> Batch;
  size_t BatchSize = std::max<size_t>(1, P.BurstObjects);
  Batch.reserve(BatchSize);
  uint64_t Remaining = P.OpsPerThread;
  while (Remaining > 0) {
    uint64_t This = std::min<uint64_t>(BatchSize, Remaining);
    Remaining -= This;
    for (uint64_t I = 0; I < This; ++I)
      Batch.push_back(allocOne(Target, P, Rand, Stats, /*LogSpread=*/false));
    for (Slot &S : Batch)
      freeOne(Target, P, S, Stats);
    Batch.clear();
  }
}

/// Fragmentation long-runner: fill the slot table, free everything except
/// scattered pinned survivors (one per stride), then churn allocations
/// into the holes with a log-spread size mix. The pins keep pages and
/// partitions partially occupied for the whole run — the shape partial
/// page return cannot reclaim and meshing exists for.
void fragmentWorker(Allocator &Target, const GauntletParams &P, int Thread,
                    WorkerStats &Stats) {
  Rng Rand(Rng::deriveStream(P.Seed, static_cast<uint64_t>(Thread) + 1));
  size_t NumSlots =
      std::max<size_t>(1, std::min<uint64_t>(P.SlotsPerThread,
                                             P.OpsPerThread));
  int Stride = std::max(2, P.PinnedStride);
  std::vector<Slot> Slots(NumSlots);
  for (Slot &S : Slots)
    S = allocOne(Target, P, Rand, Stats, /*LogSpread=*/true);
  for (size_t I = 0; I < NumSlots; ++I)
    if (I % static_cast<size_t>(Stride) != 0)
      freeOne(Target, P, Slots[I], Stats);
  uint64_t Churn = P.OpsPerThread - NumSlots;
  for (uint64_t I = 0; I < Churn; ++I) {
    size_t Index = Rand.nextBounded(static_cast<uint32_t>(NumSlots));
    if (NumSlots > 1 && Index % static_cast<size_t>(Stride) == 0)
      Index = (Index + 1 < NumSlots) ? Index + 1 : 1;
    freeOne(Target, P, Slots[Index], Stats);
    Slots[Index] = allocOne(Target, P, Rand, Stats, /*LogSpread=*/true);
  }
  for (Slot &S : Slots)
    freeOne(Target, P, S, Stats);
}

} // namespace

GauntletResult runGauntlet(const GauntletParams &Params, Allocator &Target) {
  assert(Params.MinSize > 0 && Params.MinSize <= Params.MaxSize &&
         "degenerate size range");
  GauntletResult Result;
  int Threads = gauntletThreadsUsed(Params);
  std::vector<WorkerStats> Stats(static_cast<size_t>(Threads));

  // Larson's shared slot table and barrier live across the whole run.
  std::vector<Slot> LarsonSlots;
  std::barrier<> RoundBarrier(Threads);
  if (Params.Kind == GauntletKind::Larson)
    LarsonSlots.resize(static_cast<size_t>(Threads) * Params.SlotsPerThread);

  // Pipeline's rings, one per producer/consumer pair.
  std::vector<SpscRing> Rings;
  if (Params.Kind == GauntletKind::Pipeline)
    Rings = std::vector<SpscRing>(static_cast<size_t>(Threads / 2));

  std::atomic<bool> Go{false};
  std::vector<std::thread> Workers;
  Workers.reserve(static_cast<size_t>(Threads));
  for (int T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      WorkerStats &S = Stats[static_cast<size_t>(T)];
      switch (Params.Kind) {
      case GauntletKind::Larson:
        larsonWorker(Target, Params, T, Threads, LarsonSlots, RoundBarrier,
                     S);
        break;
      case GauntletKind::Pipeline:
        // Even indices produce, odd indices consume, pair i = threads
        // (2i, 2i+1).
        if (T % 2 == 0)
          pipelineProducer(Target, Params, T / 2,
                           Rings[static_cast<size_t>(T / 2)], S);
        else
          pipelineConsumer(Target, Params, Rings[static_cast<size_t>(T / 2)],
                           S);
        break;
      case GauntletKind::Burst:
        burstWorker(Target, Params, T, S);
        break;
      case GauntletKind::Fragment:
        fragmentWorker(Target, Params, T, S);
        break;
      }
    });
  }

  auto Start = std::chrono::steady_clock::now();
  Go.store(true, std::memory_order_release);
  for (std::thread &W : Workers)
    W.join();
  Result.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  for (const WorkerStats &S : Stats) {
    Result.Allocations += S.Allocations;
    Result.Frees += S.Frees;
    Result.FailedAllocations += S.Failed;
    Result.Checksum += S.Checksum;
    Result.Latency.merge(S.Latency);
  }
  if (Result.Seconds > 0.0)
    Result.OpsPerSec = static_cast<double>(Result.Allocations + Result.Frees) /
                       Result.Seconds;
  return Result;
}

} // namespace diehard
