//===- workloads/ProcessStats.h - process memory metrics --------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-level memory metrics shared by the space and gauntlet benches:
/// current and lazily-freed resident set from /proc, and a synthetic
/// memory-pressure trigger. These were private to bench_space before the
/// gauntlet needed the same numbers; they live in the workload library so
/// every harness reads RSS the same way.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_WORKLOADS_PROCESSSTATS_H
#define DIEHARD_WORKLOADS_PROCESSSTATS_H

namespace diehard {

/// The process's *current* resident set in KB (from /proc/self/statm) —
/// unlike ru_maxrss this can go back down, which is what the sweeper's
/// page-return measurements are about. Returns 0 on failure.
long currentRssKb();

/// The process's lazily-freed resident pages in KB, from
/// /proc/self/smaps_rollup. MADV_FREE'd pages stay in RSS until memory
/// pressure reclaims them; subtracting LazyFree gives the footprint the
/// process would shrink to under pressure ("effective RSS"). Returns 0
/// where the kernel has no smaps_rollup or no LazyFree accounting.
long lazyFreeKb();

/// Simulates memory pressure on the calling process: MADV_PAGEOUT over
/// every writable private anonymous mapping forces the kernel to reclaim
/// lazily-freed (MADV_FREE / LazyFree) pages right now rather than
/// waiting for a real low-memory event. Returns false where the kernel
/// predates MADV_PAGEOUT; clean and dirty live pages survive (they are
/// paged out and fault back), so the call is safe to run mid-benchmark.
bool pageOutAnonymous();

} // namespace diehard

#endif // DIEHARD_WORKLOADS_PROCESSSTATS_H
