//===- workloads/SyntheticWorkload.h - benchmark drivers --------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized synthetic workloads standing in for the paper's benchmark
/// binaries (the allocation-intensive suite and SPECint2000, Section 7.1).
/// Each driver reproduces a benchmark's allocation profile: rate of memory
/// operations, object-size distribution, live-set size, and the ratio of
/// computation to allocation. The drivers are deterministic given a seed
/// and compute a checksum over data they wrote themselves, so any correct
/// allocator yields the identical checksum — which doubles as an integration
/// test of allocator correctness.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_WORKLOADS_SYNTHETICWORKLOAD_H
#define DIEHARD_WORKLOADS_SYNTHETICWORKLOAD_H

#include "baselines/Allocator.h"
#include "support/Rng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace diehard {

/// Object-size distribution shapes seen across the benchmark suites.
enum class SizeShape {
  Uniform,     ///< Uniform in [MinSize, MaxSize].
  SmallBiased, ///< Geometric bias toward MinSize (cfrac-like).
  Bimodal,     ///< Mostly small with occasional MaxSize spikes (gcc-like).
  Fixed,       ///< Always MinSize (roboop-like fixed temporaries).
  WideSpread,  ///< Log-uniform across the full range (twolf-like; stresses
               ///< many size classes, the paper's TLB-miss case).
};

/// Parameters describing one benchmark's allocation profile.
struct WorkloadParams {
  std::string Name;
  uint64_t MemoryOps = 100000; ///< Total allocate+free operations.
  size_t MinSize = 8;
  size_t MaxSize = 256;
  SizeShape Shape = SizeShape::Uniform;
  size_t MaxLive = 4096;   ///< Live-object target (steady state).
  int ComputePerOp = 0;    ///< Synthetic compute units between memory ops.
  int TouchBytes = 16;     ///< Bytes written (then read) per object.
  uint64_t Seed = 0x5EED;  ///< Drives all workload decisions.
};

/// What a workload run produced.
struct WorkloadResult {
  uint64_t Checksum = 0;   ///< Allocator-independent data checksum.
  uint64_t Allocations = 0;
  uint64_t Frees = 0;
  uint64_t FailedAllocations = 0;
  size_t PeakLive = 0;
};

/// Runs one deterministic allocation workload against any allocator.
class SyntheticWorkload {
public:
  explicit SyntheticWorkload(const WorkloadParams &P);

  /// Executes the workload on \p Target. Live-object bookkeeping is
  /// registered as a GC root range so collectors see the true live set.
  WorkloadResult run(Allocator &Target);

  const WorkloadParams &params() const { return Params; }

private:
  size_t pickSize(Rng &Rand) const;

  WorkloadParams Params;
};

} // namespace diehard

#endif // DIEHARD_WORKLOADS_SYNTHETICWORKLOAD_H
