//===- workloads/WorkloadSuite.h - benchmark suite presets ------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Preset allocation profiles for the two benchmark suites of Section 7.1:
/// the allocation-intensive suite (cfrac, espresso, lindsay, p2c, roboop —
/// 100K to 1.7M memory operations per second) and a general-purpose
/// SPECint2000-like suite, where allocation is a small fraction of the work
/// (253.perlbmk, at ~12.5% memory operations, and 300.twolf, with its wide
/// size mix, are the interesting outliers the paper calls out).
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_WORKLOADS_WORKLOADSUITE_H
#define DIEHARD_WORKLOADS_WORKLOADSUITE_H

#include "workloads/SyntheticWorkload.h"

#include <vector>

namespace diehard {

/// The allocation-intensive suite (cfrac, espresso, lindsay, p2c, roboop).
std::vector<WorkloadParams> allocationIntensiveSuite(uint64_t OpsScale = 1);

/// The general-purpose SPECint2000-like suite (gzip .. twolf).
std::vector<WorkloadParams> generalPurposeSuite(uint64_t OpsScale = 1);

/// Finds a preset by name across both suites; asserts if absent.
WorkloadParams findWorkload(const std::string &Name, uint64_t OpsScale = 1);

} // namespace diehard

#endif // DIEHARD_WORKLOADS_WORKLOADSUITE_H
