//===- workloads/ForkHarness.cpp ------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the fork-and-observe crash harness.
///
//===----------------------------------------------------------------------===//

#include "workloads/ForkHarness.h"

#include <chrono>

#include <poll.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

namespace diehard {

namespace {

/// Interprets a wait4() status plus its rusage into a ForkOutcome.
void fillOutcome(ForkOutcome &Outcome, int Status,
                 const struct rusage &Usage) {
  if (WIFEXITED(Status)) {
    Outcome.Exited = true;
    Outcome.ExitCode = WEXITSTATUS(Status);
  } else if (WIFSIGNALED(Status)) {
    Outcome.Signaled = true;
    Outcome.Signal = WTERMSIG(Status);
  }
  Outcome.MaxRssKb = Usage.ru_maxrss;
}

} // namespace

ForkOutcome runInFork(const std::function<int()> &Body, int TimeoutMillis) {
  ForkOutcome Outcome;
  pid_t Pid = ::fork();
  if (Pid < 0) {
    Outcome.ForkFailed = true;
    return Outcome;
  }
  if (Pid == 0) {
    // Child: make crashes quiet (no core, default handlers) and run.
    ::_exit(Body());
  }

  auto Start = std::chrono::steady_clock::now();
  for (;;) {
    int Status = 0;
    struct rusage Usage = {};
    pid_t R = ::wait4(Pid, &Status, WNOHANG, &Usage);
    if (R == Pid) {
      fillOutcome(Outcome, Status, Usage);
      return Outcome;
    }
    auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
    if (Elapsed > TimeoutMillis) {
      ::kill(Pid, SIGKILL);
      struct rusage KillUsage = {};
      ::wait4(Pid, &Status, 0, &KillUsage);
      Outcome.TimedOut = true;
      Outcome.MaxRssKb = KillUsage.ru_maxrss;
      return Outcome;
    }
    ::usleep(500);
  }
}

ExecCapture runCommandCapture(const std::vector<std::string> &Argv,
                              const std::vector<std::string> &ExtraEnv,
                              int TimeoutMillis) {
  ExecCapture Capture;
  int Fds[2];
  if (Argv.empty() || ::pipe(Fds) != 0) {
    Capture.Outcome.ForkFailed = true;
    return Capture;
  }
  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Fds[0]);
    ::close(Fds[1]);
    Capture.Outcome.ForkFailed = true;
    return Capture;
  }
  if (Pid == 0) {
    ::close(Fds[0]);
    ::dup2(Fds[1], STDOUT_FILENO);
    ::close(Fds[1]);
    for (const std::string &Assignment : ExtraEnv) {
      size_t Eq = Assignment.find('=');
      if (Eq != std::string::npos)
        ::setenv(Assignment.substr(0, Eq).c_str(),
                 Assignment.c_str() + Eq + 1, 1);
    }
    std::vector<char *> Args;
    Args.reserve(Argv.size() + 1);
    for (const std::string &Arg : Argv)
      Args.push_back(const_cast<char *>(Arg.c_str()));
    Args.push_back(nullptr);
    ::execv(Args[0], Args.data());
    ::_exit(127); // Exec failed; the parent sees a distinct exit code.
  }

  ::close(Fds[1]);
  auto Start = std::chrono::steady_clock::now();
  bool Killed = false;
  for (;;) {
    auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
    int Remaining = TimeoutMillis - static_cast<int>(Elapsed);
    if (Remaining <= 0 && !Killed) {
      ::kill(Pid, SIGKILL);
      Killed = true;
      Remaining = 1000; // Drain whatever the dying child flushed.
    }
    struct pollfd Poll = {Fds[0], POLLIN, 0};
    int Ready = ::poll(&Poll, 1, Remaining);
    if (Ready < 0)
      break;
    if (Ready == 0) {
      if (Killed)
        break;
      continue;
    }
    char Buffer[4096];
    ssize_t N = ::read(Fds[0], Buffer, sizeof(Buffer));
    if (N <= 0)
      break; // EOF: every writer end is closed.
    Capture.Output.append(Buffer, static_cast<size_t>(N));
  }
  ::close(Fds[0]);

  int Status = 0;
  struct rusage Usage = {};
  ::wait4(Pid, &Status, 0, &Usage);
  fillOutcome(Capture.Outcome, Status, Usage);
  if (Killed) {
    Capture.Outcome.TimedOut = true;
    Capture.Outcome.Exited = false;
    Capture.Outcome.Signaled = false;
  }
  return Capture;
}

} // namespace diehard
