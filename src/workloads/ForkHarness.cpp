//===- workloads/ForkHarness.cpp ------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the fork-and-observe crash harness.
///
//===----------------------------------------------------------------------===//

#include "workloads/ForkHarness.h"

#include <chrono>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace diehard {

ForkOutcome runInFork(const std::function<int()> &Body, int TimeoutMillis) {
  ForkOutcome Outcome;
  pid_t Pid = ::fork();
  if (Pid < 0) {
    Outcome.ForkFailed = true;
    return Outcome;
  }
  if (Pid == 0) {
    // Child: make crashes quiet (no core, default handlers) and run.
    ::_exit(Body());
  }

  auto Start = std::chrono::steady_clock::now();
  for (;;) {
    int Status = 0;
    pid_t R = ::waitpid(Pid, &Status, WNOHANG);
    if (R == Pid) {
      if (WIFEXITED(Status)) {
        Outcome.Exited = true;
        Outcome.ExitCode = WEXITSTATUS(Status);
      } else if (WIFSIGNALED(Status)) {
        Outcome.Signaled = true;
        Outcome.Signal = WTERMSIG(Status);
      }
      return Outcome;
    }
    auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
    if (Elapsed > TimeoutMillis) {
      ::kill(Pid, SIGKILL);
      ::waitpid(Pid, &Status, 0);
      Outcome.TimedOut = true;
      return Outcome;
    }
    ::usleep(500);
  }
}

} // namespace diehard
