//===- workloads/SyntheticWorkload.cpp ------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the parameterized synthetic allocation workloads.
///
//===----------------------------------------------------------------------===//

#include "workloads/SyntheticWorkload.h"

#include "workloads/WorkloadDriver.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace diehard {

SyntheticWorkload::SyntheticWorkload(const WorkloadParams &P) : Params(P) {
  assert(Params.MinSize > 0 && Params.MinSize <= Params.MaxSize &&
         "degenerate size range");
}

size_t SyntheticWorkload::pickSize(Rng &Rand) const {
  size_t Lo = Params.MinSize, Hi = Params.MaxSize;
  switch (Params.Shape) {
  case SizeShape::Fixed:
    return Lo;
  case SizeShape::Uniform:
    return Lo + Rand.nextBounded(static_cast<uint32_t>(Hi - Lo + 1));
  case SizeShape::SmallBiased: {
    // Geometric: each doubling of size is half as likely.
    size_t Size = Lo;
    while (Size * 2 <= Hi && (Rand.next() & 1) == 0)
      Size *= 2;
    return std::min(Hi, Size + Rand.nextBounded(static_cast<uint32_t>(Size)));
  }
  case SizeShape::Bimodal:
    // 1 in 32 allocations is a large spike; the rest are small.
    if (Rand.nextBounded(32) == 0)
      return Hi;
    return Lo + Rand.nextBounded(
                    static_cast<uint32_t>(std::min(Hi, Lo * 8) - Lo + 1));
  case SizeShape::WideSpread: {
    // Log-uniform: pick a power-of-two band, then a size inside it. This
    // touches many size classes, reproducing 300.twolf's wide object mix.
    int LoBits = 0, HiBits = 0;
    for (size_t S = Lo; S > 1; S >>= 1)
      ++LoBits;
    for (size_t S = Hi; S > 1; S >>= 1)
      ++HiBits;
    int Bits = LoBits +
               static_cast<int>(Rand.nextBounded(
                   static_cast<uint32_t>(HiBits - LoBits + 1)));
    size_t Base = size_t(1) << Bits;
    size_t Limit = std::min(Hi, Base * 2 - 1);
    size_t Start = std::max(Lo, Base);
    return Start + Rand.nextBounded(
                       static_cast<uint32_t>(Limit - Start + 1));
  }
  }
  return Lo;
}

WorkloadResult SyntheticWorkload::run(Allocator &Target) {
  WorkloadResult Result;
  Rng Rand(Params.Seed);

  struct LiveObject {
    void *Ptr;
    size_t Size;
    uint32_t Tag; ///< What we wrote into it, for checksum verification.
  };
  std::vector<LiveObject> Live;
  Live.reserve(Params.MaxLive);
  // Collectors need to see the live table; for manual allocators this is a
  // no-op. The vector never reallocates (reserved above), so registering
  // its backing store once is sound.
  Target.registerRootRange(Live.data(), Params.MaxLive * sizeof(LiveObject));

  uint64_t Checksum = 0x9E3779B97F4A7C15ULL ^ Params.Seed;
  volatile uint64_t ComputeSink = 0;

  for (uint64_t Op = 0; Op < Params.MemoryOps; ++Op) {
    // Synthetic computation between memory operations: this is what turns
    // an allocation-intensive profile into a general-purpose one.
    if (Params.ComputePerOp > 0) {
      uint64_t Acc = Checksum + Op;
      for (int I = 0; I < Params.ComputePerOp; ++I) {
        Acc ^= Acc << 13;
        Acc ^= Acc >> 7;
        Acc ^= Acc << 17;
      }
      ComputeSink = Acc;
    }

    // Keep the live set hovering around MaxLive: allocate when below,
    // free when at capacity, mix otherwise.
    bool DoAlloc;
    if (Live.empty())
      DoAlloc = true;
    else if (Live.size() >= Params.MaxLive)
      DoAlloc = false;
    else
      DoAlloc = Rand.nextBounded(100) <
                (Live.size() < Params.MaxLive / 2 ? 70 : 50);

    if (DoAlloc) {
      size_t Size = pickSize(Rand);
      void *Ptr = Target.allocate(Size);
      if (Ptr == nullptr) {
        ++Result.FailedAllocations;
        continue;
      }
      uint32_t Tag = Rand.next();
      // Touch the object the way applications do: write a recognizable
      // pattern at the front and a tag in the final bytes (programs use
      // the whole extent they asked for — this is what makes the
      // fault injector's under-allocation into a real overflow).
      stampObject(Ptr, Size, Tag, static_cast<size_t>(Params.TouchBytes));
      Live.push_back(LiveObject{Ptr, Size, Tag});
      Result.PeakLive = std::max(Result.PeakLive, Live.size());
      ++Result.Allocations;
      continue;
    }

    // Free a random live object, verifying the data we wrote survived
    // (hashObject reads exactly the bytes stampObject wrote).
    uint32_t Victim = Rand.nextBounded(static_cast<uint32_t>(Live.size()));
    LiveObject Obj = Live[Victim];
    Live[Victim] = Live.back();
    Live.pop_back();
    Checksum = Checksum * 1099511628211ULL ^
               hashObject(Obj.Ptr, Obj.Size,
                          static_cast<size_t>(Params.TouchBytes));
    Target.deallocate(Obj.Ptr);
    ++Result.Frees;
  }

  // Drain the live set so the run ends with an empty heap.
  for (const LiveObject &Obj : Live) {
    Checksum = Checksum * 1099511628211ULL ^
               hashObject(Obj.Ptr, Obj.Size,
                          static_cast<size_t>(Params.TouchBytes));
    Target.deallocate(Obj.Ptr);
    ++Result.Frees;
  }
  Live.clear();
  Target.unregisterRootRange(Live.data());

  (void)ComputeSink;
  Result.Checksum = Checksum;
  return Result;
}

} // namespace diehard
