//===- workloads/ForkHarness.h - crash observation harness ------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a callable — or an exec'd command — in a forked child and reports
/// how it ended. The error-avoidance experiments (Section 7.3) need to
/// observe crashes, infinite loops, and clean completions of deliberately
/// corrupted programs without taking down the harness, which is exactly
/// what a fork boundary provides; the space and gauntlet benches
/// additionally read the child's peak resident set from the same wait,
/// and the gauntlet's backend matrix exec's the bench binary back into
/// itself under LD_PRELOAD configurations while capturing its output.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_WORKLOADS_FORKHARNESS_H
#define DIEHARD_WORKLOADS_FORKHARNESS_H

#include <functional>
#include <string>
#include <vector>

namespace diehard {

/// How a forked run ended.
struct ForkOutcome {
  bool ForkFailed = false;
  bool Exited = false;   ///< Terminated via exit().
  int ExitCode = -1;     ///< Valid when Exited.
  bool Signaled = false; ///< Terminated by a signal (crash).
  int Signal = 0;        ///< Valid when Signaled.
  bool TimedOut = false; ///< Killed by the harness watchdog (hang).
  long MaxRssKb = 0;     ///< Child's peak resident set (ru_maxrss).

  /// True if the child exited normally with status 0.
  bool cleanExit() const { return Exited && ExitCode == 0; }
};

/// Runs \p Body in a forked child; the child's exit status is Body's return
/// value. If the child runs longer than \p TimeoutMillis it is killed and
/// the outcome reports a hang (the fault-injection experiments saw espresso
/// enter an infinite loop under injected overflows).
ForkOutcome runInFork(const std::function<int()> &Body,
                      int TimeoutMillis = 20000);

/// What an exec'd child produced: its fate plus everything it wrote to
/// stdout.
struct ExecCapture {
  ForkOutcome Outcome;
  std::string Output;
};

/// Fork-execs \p Argv (argv[0] is the binary path) with \p ExtraEnv
/// ("KEY=VALUE" strings) applied on top of the inherited environment, and
/// captures the child's stdout until it exits or the watchdog fires. The
/// peak RSS in the outcome is the exec'd process's, which is what lets the
/// gauntlet report footprint per allocator backend without instrumenting
/// the child.
ExecCapture runCommandCapture(const std::vector<std::string> &Argv,
                              const std::vector<std::string> &ExtraEnv = {},
                              int TimeoutMillis = 120000);

} // namespace diehard

#endif // DIEHARD_WORKLOADS_FORKHARNESS_H
