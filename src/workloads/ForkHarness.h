//===- workloads/ForkHarness.h - crash observation harness ------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a callable in a forked child and reports how it ended. The error-
/// avoidance experiments (Section 7.3) need to observe crashes, infinite
/// loops, and clean completions of deliberately corrupted programs without
/// taking down the harness, which is exactly what a fork boundary provides.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_WORKLOADS_FORKHARNESS_H
#define DIEHARD_WORKLOADS_FORKHARNESS_H

#include <functional>

namespace diehard {

/// How a forked run ended.
struct ForkOutcome {
  bool ForkFailed = false;
  bool Exited = false;   ///< Terminated via exit().
  int ExitCode = -1;     ///< Valid when Exited.
  bool Signaled = false; ///< Terminated by a signal (crash).
  int Signal = 0;        ///< Valid when Signaled.
  bool TimedOut = false; ///< Killed by the harness watchdog (hang).

  /// True if the child exited normally with status 0.
  bool cleanExit() const { return Exited && ExitCode == 0; }
};

/// Runs \p Body in a forked child; the child's exit status is Body's return
/// value. If the child runs longer than \p TimeoutMillis it is killed and
/// the outcome reports a hang (the fault-injection experiments saw espresso
/// enter an infinite loop under injected overflows).
ForkOutcome runInFork(const std::function<int()> &Body,
                      int TimeoutMillis = 20000);

} // namespace diehard

#endif // DIEHARD_WORKLOADS_FORKHARNESS_H
