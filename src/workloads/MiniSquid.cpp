//===- workloads/MiniSquid.cpp --------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the miniature Squid web-cache core with its
/// overflow-prone parsing path.
///
//===----------------------------------------------------------------------===//

#include "workloads/MiniSquid.h"

#include <cstring>

namespace diehard {

MiniSquid::MiniSquid(Allocator &Alloc, const CheckedLibc *Libc)
    : Heap(Alloc), Checked(Libc) {}

MiniSquid::~MiniSquid() {
  while (Entries != nullptr) {
    CacheEntry *Next = Entries->Next;
    Heap.deallocate(Entries->Url);
    Heap.deallocate(Entries->Payload);
    Heap.deallocate(Entries);
    Entries = Next;
  }
  while (Log != nullptr) {
    LogRecord *Next = Log->Next;
    Heap.deallocate(Log->UrlCopy);
    Heap.deallocate(Log);
    Log = Next;
  }
}

char *MiniSquid::duplicateString(const char *Text) {
  size_t Len = std::strlen(Text) + 1;
  char *Copy = static_cast<char *>(Heap.allocate(Len));
  if (Copy != nullptr)
    std::memcpy(Copy, Text, Len);
  return Copy;
}

MiniSquid::CacheEntry *MiniSquid::findEntry(const char *Url) {
  for (CacheEntry *E = Entries; E != nullptr; E = E->Next)
    if (std::strcmp(E->Url, Url) == 0)
      return E;
  return nullptr;
}

void MiniSquid::evictIfNeeded() {
  if (EntryCount < MaxEntries || Entries == nullptr)
    return;
  // Evict the last (oldest) entry.
  CacheEntry **Link = &Entries;
  while ((*Link)->Next != nullptr)
    Link = &(*Link)->Next;
  CacheEntry *Oldest = *Link;
  *Link = nullptr;
  Heap.deallocate(Oldest->Url);
  Heap.deallocate(Oldest->Payload);
  Heap.deallocate(Oldest);
  --EntryCount;
}

void MiniSquid::insertEntry(const char *Url, const std::string &Payload) {
  evictIfNeeded();
  char *Key = duplicateString(Url);
  char *Body = static_cast<char *>(Heap.allocate(Payload.size() + 1));
  auto *Entry = static_cast<CacheEntry *>(Heap.allocate(sizeof(CacheEntry)));
  if (Key == nullptr || Body == nullptr || Entry == nullptr) {
    Heap.deallocate(Key);
    Heap.deallocate(Body);
    Heap.deallocate(Entry);
    return;
  }
  std::memcpy(Body, Payload.data(), Payload.size() + 1);
  Entry->Url = Key;
  Entry->Payload = Body;
  Entry->PayloadSize = Payload.size();
  Entry->Next = Entries;
  Entries = Entry;
  ++EntryCount;
}

void MiniSquid::trimLog() {
  if (LogCount <= MaxLogRecords)
    return;
  LogRecord **Link = &Log;
  while ((*Link)->Next != nullptr)
    Link = &(*Link)->Next;
  LogRecord *Oldest = *Link;
  *Link = nullptr;
  Heap.deallocate(Oldest->UrlCopy);
  Heap.deallocate(Oldest);
  --LogCount;
}

uint32_t MiniSquid::summarizeRecentLog() const {
  // The stats path every real server has: it walks recent log records and
  // dereferences their string pointers. If the overflow clobbered a record,
  // this is where the corrupted pointer is chased.
  uint32_t Acc = 0;
  int Walked = 0;
  for (const LogRecord *R = Log; R != nullptr && Walked < 8;
       R = R->Next, ++Walked) {
    Acc = Acc * 31 + R->Status;
    if (R->UrlCopy != nullptr)
      Acc = Acc * 31 + static_cast<unsigned char>(R->UrlCopy[0]);
  }
  return Acc;
}

std::string MiniSquid::handleRequest(const std::string &RequestLine) {
  ++Served;
  if (RequestLine.rfind("GET ", 0) != 0)
    return "400 Bad Request\n";
  std::string Url = RequestLine.substr(4);
  while (!Url.empty() && (Url.back() == '\n' || Url.back() == '\r'))
    Url.pop_back();
  if (Url.empty())
    return "400 Bad Request\n";

  // --- The buggy path, faithful to Squid 2.3s5. ---
  // 1. A fixed-size heap buffer for the canonicalized URL.
  char *Buffer = static_cast<char *>(Heap.allocate(UrlBufferSize));
  // 2. The access-log record for this request, allocated *before* the copy:
  //    under sequentially placing allocators it sits right after the
  //    buffer, holding live pointers.
  auto *Rec = static_cast<LogRecord *>(Heap.allocate(sizeof(LogRecord)));
  char *RawCopy = duplicateString(Url.c_str());
  if (Buffer == nullptr || Rec == nullptr || RawCopy == nullptr) {
    Heap.deallocate(Buffer);
    Heap.deallocate(Rec);
    Heap.deallocate(RawCopy);
    return "500 Out Of Memory\n";
  }
  Rec->UrlCopy = RawCopy;
  Rec->Status = 200;
  Rec->Next = Log;
  Log = Rec;
  ++LogCount;
  trimLog();

  // 3. The unchecked copy: a URL longer than 64 bytes overflows the buffer
  //    (and, under adjacent layouts, the log record and beyond).
  if (Checked != nullptr)
    Checked->strcpy(Buffer, Url.c_str()); // Clamped replacement.
  else
    std::strcpy(Buffer, Url.c_str()); // The bug.

  // Canonicalize: lower-case scheme and host (up to the third '/').
  int Slashes = 0;
  for (char *P = Buffer; *P != '\0'; ++P) {
    if (*P == '/') {
      if (++Slashes == 3)
        break;
      continue;
    }
    if (*P >= 'A' && *P <= 'Z')
      *P = static_cast<char>(*P - 'A' + 'a');
  }

  std::string Response;
  if (CacheEntry *Hit = findEntry(Buffer)) {
    Response = "200 HIT ";
    Response.append(Hit->Payload, Hit->PayloadSize);
    Response.push_back('\n');
  } else {
    std::string Payload = "doc(";
    Payload += Buffer;
    Payload += ")";
    insertEntry(Buffer, Payload);
    Response = "200 MISS ";
    Response += Payload;
    Response.push_back('\n');
  }

  // The stats walk that chases log-record pointers.
  (void)summarizeRecentLog();

  Heap.deallocate(Buffer);
  return Response;
}

} // namespace diehard
