//===- workloads/LatencyHistogram.h - log-bucket latency sketch -*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size logarithmic histogram for per-operation latencies, in the
/// HdrHistogram style: each power-of-two octave is split into 2^SubBits
/// linear sub-buckets, so relative error is bounded by 1/2^SubBits (12.5%
/// here) at every magnitude from nanoseconds to minutes. Recording is two
/// shifts and an increment — cheap enough to sit inside a benchmark's
/// timed loop — and histograms merge by addition, so each worker thread
/// records privately and the driver folds them after the join with no
/// synchronization on the hot path.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_WORKLOADS_LATENCYHISTOGRAM_H
#define DIEHARD_WORKLOADS_LATENCYHISTOGRAM_H

#include <cstddef>
#include <cstdint>

namespace diehard {

/// Log-bucket histogram of nanosecond latencies with bounded relative error.
class LatencyHistogram {
public:
  static constexpr int SubBits = 3; ///< 8 linear sub-buckets per octave.
  static constexpr int NumOctaves = 40; ///< Covers up to ~2^39 ns (~9 min).
  static constexpr size_t NumBuckets =
      static_cast<size_t>(NumOctaves) << SubBits;

  /// Adds one sample. Values beyond the last octave clamp into it.
  void record(uint64_t Ns) {
    ++Counts[bucketOf(Ns)];
    ++TotalSamples;
  }

  /// Adds every sample of \p Other into this histogram.
  void merge(const LatencyHistogram &Other) {
    for (size_t I = 0; I < NumBuckets; ++I)
      Counts[I] += Other.Counts[I];
    TotalSamples += Other.TotalSamples;
  }

  /// Number of recorded samples.
  uint64_t samples() const { return TotalSamples; }

  /// Value at quantile \p Q in [0, 1] — the upper bound of the bucket
  /// holding the Q-th sample, so the reported number never understates the
  /// true percentile by more than one sub-bucket. Returns 0 when empty.
  uint64_t valueAtQuantile(double Q) const {
    if (TotalSamples == 0)
      return 0;
    if (Q < 0.0)
      Q = 0.0;
    if (Q > 1.0)
      Q = 1.0;
    uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(
                                                  TotalSamples - 1));
    uint64_t Seen = 0;
    for (size_t I = 0; I < NumBuckets; ++I) {
      Seen += Counts[I];
      if (Seen > Rank)
        return bucketUpperBound(I);
    }
    return bucketUpperBound(NumBuckets - 1);
  }

  /// Convenience percentiles for reports.
  uint64_t p50() const { return valueAtQuantile(0.50); }
  uint64_t p99() const { return valueAtQuantile(0.99); }

private:
  /// Maps a value to its bucket. The first octave [0, 2^SubBits) is exact
  /// (one value per bucket); octave k >= SubBits spans [2^k, 2^(k+1)) split
  /// into 2^SubBits equal sub-buckets.
  static size_t bucketOf(uint64_t Ns) {
    constexpr uint64_t FirstOctaveLimit = uint64_t(1) << SubBits;
    if (Ns < FirstOctaveLimit)
      return static_cast<size_t>(Ns);
    int Msb = 63 - __builtin_clzll(Ns);
    int Octave = Msb - SubBits + 1; // 1-based past the exact range.
    if (Octave >= NumOctaves - 1)
      return NumBuckets - 1;
    uint64_t Sub = (Ns >> (Msb - SubBits)) & (FirstOctaveLimit - 1);
    return (static_cast<size_t>(Octave) << SubBits) +
           static_cast<size_t>(Sub);
  }

  /// Largest value that maps into bucket \p Index (inclusive upper bound).
  static uint64_t bucketUpperBound(size_t Index) {
    constexpr uint64_t FirstOctaveLimit = uint64_t(1) << SubBits;
    if (Index < FirstOctaveLimit)
      return Index;
    size_t Octave = Index >> SubBits;
    uint64_t Sub = Index & (FirstOctaveLimit - 1);
    // Invert bucketOf: bucket base is 2^(Octave+SubBits-1), sub-bucket
    // width is base / 2^SubBits.
    uint64_t Base = uint64_t(1) << (Octave + SubBits - 1);
    uint64_t Width = Base >> SubBits;
    return Base + (Sub + 1) * Width - 1;
  }

  uint64_t Counts[NumBuckets] = {};
  uint64_t TotalSamples = 0;
};

} // namespace diehard

#endif // DIEHARD_WORKLOADS_LATENCYHISTOGRAM_H
