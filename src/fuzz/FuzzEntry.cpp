//===- fuzz/FuzzEntry.cpp - libFuzzer entry point -------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The libFuzzer shell around the differential driver, built only under
/// DIEHARD_BUILD_FUZZERS (clang + -fsanitize=fuzzer; see docs/USAGE.md).
/// A differential-check failure aborts with the driver's message so
/// libFuzzer saves the input as an artifact; crashes and sanitizer
/// reports are findings in their own right.
///
//===----------------------------------------------------------------------===//

#include "fuzz/FuzzDriver.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  diehard::fuzz::FuzzResult R = diehard::fuzz::runFuzzSequence(Data, Size);
  if (!R.Ok) {
    std::fprintf(stderr,
                 "DIEHARD FUZZ FAILURE (seed %llu, %llu ops): %s\n",
                 static_cast<unsigned long long>(diehard::fuzz::fuzzBaseSeed()),
                 static_cast<unsigned long long>(R.OpsExecuted),
                 R.Message.c_str());
    std::abort();
  }
  return 0;
}
