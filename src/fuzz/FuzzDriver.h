//===- fuzz/FuzzDriver.h - differential API fuzzing core --------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adversarial-fuzzing core: decodes an arbitrary byte string into a
/// ShardedHeap configuration plus a malloc/calloc/realloc/memalign/free
/// operation sequence — including deliberately injected errors (double
/// frees, invalid frees, misaligned frees, cross-thread double frees
/// through spawned worker threads, and wild reallocs) — and executes it
/// differentially against a reference heap model.
///
/// The reference model is the paper's correctness contract made executable:
/// a map of live [base, base + size) ranges with deterministic content
/// patterns. After every operation the driver checks that allocations do
/// not overlap live ranges, satisfy alignment and usable-size contracts,
/// and land inside a shard; that live objects' contents round-trip
/// unchanged (so an injected error provably corrupted nothing); that no
/// partition exceeds its 1/M bound; and — at forced quiescence — that
/// every injected error was rejected *and counted* exactly once
/// (IgnoredFrees / ReallocRejects), that Allocations == Frees, that no
/// cached slots leaked, and that the locked and lock-free stats
/// aggregations agree. Section 3's probabilistic-safety argument only
/// covers callers the allocator *detects*; this harness searches for
/// caller behaviours where detection or containment fails.
///
/// The same driver core backs three shells: the libFuzzer entry point
/// (FuzzEntry.cpp, behind DIEHARD_BUILD_FUZZERS), the bounded
/// random-sequence runner and corpus replayer (tools/fuzz_replay.cpp), and
/// the tier-1 committed-corpus regression suite (tests/fuzz/).
///
/// Determinism contract: a run is a pure function of (input bytes, base
/// seed). Worker threads execute commands synchronously (the driver blocks
/// until the worker finishes), worker home shards are pinned via
/// ShardedHeap::pinThreadToken rather than taken from the process-global
/// round-robin, and a zero seed is remapped before it can select true
/// randomness. Configurations with the background sweeper enabled are the
/// one exception — sweep timing perturbs *which* path materializes a free
/// (never the totals) — and report deterministic() == false so replay
/// comparisons can skip them.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_FUZZ_FUZZDRIVER_H
#define DIEHARD_FUZZ_FUZZDRIVER_H

#include "core/DieHardHeap.h"
#include "support/MmapRegion.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace diehard {
namespace fuzz {

/// The injected error classes the acceptance criteria enumerate. Indexes
/// FuzzResult::Injected.
enum ErrorClass {
  DoubleFree = 0,          ///< free(p) twice, same thread, back to back.
  InvalidFree = 1,         ///< free of a dead slot / unowned address.
  MisalignedFree = 2,      ///< free of live object base + k, k in 1..7.
  CrossThreadDoubleFree = 3, ///< both frees on worker threads.
  WildRealloc = 4,         ///< realloc of a pointer the heap never issued.
  NumErrorClasses = 5
};

/// Human-readable name of \p Class ("double_free", ...).
const char *errorClassName(int Class);

/// The heap configuration decoded from an input's leading bytes. Exposed
/// so shells can report which axes a corpus covers.
struct FuzzConfig {
  size_t NumShards = 1;        ///< 1..4.
  size_t ThreadCacheSlots = 0; ///< 0 (tier off) or 8 (DIEHARD_TCACHE).
  bool Adaptive = false;       ///< DIEHARD_TCACHE_ADAPT.
  bool Sweeper = false;        ///< DIEHARD_SWEEPER.
  size_t SweepIntervalMs = 2;  ///< Sweep epoch length, 1..16 ms.
  /// DIEHARD_PAGE_RETURN for the run. Off and Free must leave every
  /// differential check untouched: page return only ever drops pages no
  /// live object overlaps, so the policy is pure footprint, never
  /// placement or content.
  PageReturnPolicy PageReturn = PageReturnPolicy::DontNeed;
  bool Overflow = true;        ///< DIEHARD_OVERFLOW.
  bool RandomFill = false;     ///< Replica-style object fill.
  /// DIEHARD_MESH for the run (forced off with RandomFill, like the
  /// shim). Meshing must leave every differential check untouched: pair
  /// remaps only change which physical frame backs a virtual page, never
  /// placement, contents, or validation outcomes.
  bool Meshing = false;
  size_t HeapSize = 0;         ///< Per-shard reservation bytes.
  size_t Workers = 0;          ///< Spawned worker threads, 0..3.
  uint64_t Seed = 0;           ///< Resolved heap seed (never 0).

  /// True when two runs of the same input must produce identical stats
  /// and placement traces: everything except sweeper configurations
  /// (whose background timing moves counts between equivalent paths).
  bool deterministic() const { return !Sweeper; }
};

/// Outcome of one driven sequence.
struct FuzzResult {
  bool Ok = true;       ///< False iff a differential check failed.
  std::string Message;  ///< First failure, with the op index; empty if Ok.
  FuzzConfig Config;    ///< The decoded configuration.
  uint64_t OpsExecuted = 0; ///< Decoded operations actually performed.
  uint64_t ModelAllocs = 0; ///< Successful allocations the model tracked.
  uint64_t FailedAllocs = 0; ///< Allocations the heap refused (saturation).
  uint64_t Injected[NumErrorClasses] = {}; ///< Errors injected, per class.
  /// FNV-1a hash of the placement trace: (op index, shard-relative offset)
  /// for every small allocation. Two replays of a deterministic() config
  /// must produce equal hashes — this is the satellite determinism check's
  /// strong signal, independent of ASLR (large objects hash their sizes,
  /// not their mmap addresses).
  uint64_t TraceHash = 1469598103934665603ULL;
  /// Locked stats() at forced quiescence (before teardown). Meaningful
  /// only when Ok.
  DieHardStats FinalStats;
};

/// The base seed replays combine with per-input entropy bytes:
/// DIEHARD_SEED when set and nonzero, else a fixed default. (input bytes,
/// base seed) is the complete replay key.
uint64_t fuzzBaseSeed();

/// Decodes only the configuration header of \p Data (zero bytes decode to
/// the all-defaults config). Cheap; never touches a heap.
FuzzConfig decodeFuzzConfig(const uint8_t *Data, size_t Size,
                            uint64_t BaseSeed);

/// Runs one full differential sequence: decode, execute against a fresh
/// ShardedHeap + reference model, force quiescence, audit the books.
/// Never throws, never crashes on any input — a non-Ok result (or a
/// sanitizer report) is a finding.
FuzzResult runFuzzSequence(const uint8_t *Data, size_t Size,
                           uint64_t BaseSeed);

/// Convenience overload using fuzzBaseSeed().
FuzzResult runFuzzSequence(const uint8_t *Data, size_t Size);

} // namespace fuzz
} // namespace diehard

#endif // DIEHARD_FUZZ_FUZZDRIVER_H
