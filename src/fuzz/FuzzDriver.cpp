//===- fuzz/FuzzDriver.cpp - differential API fuzzing core ----------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//

#include "fuzz/FuzzDriver.h"

#include "core/ShardedHeap.h"
#include "core/SizeClass.h"
#include "support/Rng.h"

#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace diehard {
namespace fuzz {

namespace {

/// A static, never-heap address used as the always-available target for
/// foreign-free and wild-realloc injections (graveyard and synthesized
/// targets are only usable when they are provably dead).
alignas(16) uint8_t ForeignTarget[64];

/// Sequential reader over the input bytes. Reads past the end return 0 —
/// deterministic, and it lets short inputs still decode complete
/// operations (libFuzzer shrinks more effectively when truncation does
/// not change the meaning of the surviving prefix).
class ByteReader {
public:
  ByteReader(const uint8_t *Bytes, size_t Len) : Data(Bytes), Size(Len) {}

  bool done() const { return Pos >= Size; }

  uint8_t u8() { return Pos < Size ? Data[Pos++] : 0; }

  uint16_t u16() {
    uint16_t Lo = u8();
    return static_cast<uint16_t>(Lo | (static_cast<uint16_t>(u8()) << 8));
  }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
};

/// Deterministic content pattern: the object's bytes are the Rng stream of
/// its pattern seed. Filling and verifying regenerate the same stream, so
/// the model stores one word per object instead of a byte copy.
void fillPattern(void *Ptr, size_t Size, uint64_t Seed) {
  Rng R(Seed);
  uint8_t *P = static_cast<uint8_t *>(Ptr);
  size_t I = 0;
  for (; I + 4 <= Size; I += 4) {
    uint32_t V = R.next();
    std::memcpy(P + I, &V, 4);
  }
  if (I < Size) {
    uint32_t V = R.next();
    std::memcpy(P + I, &V, Size - I);
  }
}

/// Returns the first byte index where the object diverges from its
/// pattern, or SIZE_MAX when the contents round-trip exactly.
size_t findPatternMismatch(const void *Ptr, size_t Size, uint64_t Seed) {
  Rng R(Seed);
  const uint8_t *P = static_cast<const uint8_t *>(Ptr);
  size_t I = 0;
  for (; I + 4 <= Size; I += 4) {
    uint32_t V = R.next();
    if (std::memcmp(P + I, &V, 4) != 0) {
      for (size_t J = 0; J < 4; ++J)
        if (P[I + J] != reinterpret_cast<const uint8_t *>(&V)[J])
          return I + J;
    }
  }
  if (I < Size) {
    uint32_t V = R.next();
    for (size_t J = 0; I + J < Size; ++J)
      if (P[I + J] != reinterpret_cast<const uint8_t *>(&V)[J])
        return I + J;
  }
  return SIZE_MAX;
}

/// Worker threads for the cross-thread error classes. Every command is
/// executed synchronously — the driver blocks until the worker finishes —
/// so a sequence interleaves threads without introducing scheduling
/// nondeterminism into the replay. Workers pin their shard tokens
/// (worker i gets token i + 1; the driver runs on token 0) so home-shard
/// assignment comes from the input, not from process history.
class WorkerPool {
public:
  WorkerPool(ShardedHeap &H, size_t N) : Heap(H) {
    for (size_t I = 0; I < N; ++I) {
      Workers.push_back(std::make_unique<Worker>());
      // Hand the thread its Worker directly: indexing the vector from the
      // thread would race with the next push_back's reallocation.
      Worker *W = Workers.back().get();
      Workers.back()->T =
          std::thread([this, W, I] { workerMain(*W, I + 1); });
    }
  }

  ~WorkerPool() {
    for (std::unique_ptr<Worker> &W : Workers) {
      send(*W, Cmd::Exit, nullptr);
      W->T.join();
    }
  }

  size_t size() const { return Workers.size(); }

  /// Frees \p Ptr on worker \p I's thread; returns once the free happened.
  void freeOn(size_t I, void *Ptr) { send(*Workers[I], Cmd::Free, Ptr); }

  /// Flushes worker \p I's thread cache (deferred frees included).
  void flushOn(size_t I) { send(*Workers[I], Cmd::Flush, nullptr); }

  /// Flushes every worker's thread cache (deferred frees included).
  void flushAll() {
    for (std::unique_ptr<Worker> &W : Workers)
      send(*W, Cmd::Flush, nullptr);
  }

private:
  enum class Cmd { None, Free, Flush, Exit };

  struct Worker {
    std::thread T;
    std::mutex M;
    std::condition_variable CV;
    Cmd Pending = Cmd::None;
    void *Arg = nullptr;
  };

  void send(Worker &W, Cmd C, void *Arg) {
    std::unique_lock<std::mutex> Lock(W.M);
    W.Pending = C;
    W.Arg = Arg;
    W.CV.notify_all();
    W.CV.wait(Lock, [&] { return W.Pending == Cmd::None; });
  }

  void workerMain(Worker &W, size_t Token) {
    ShardedHeap::pinThreadToken(static_cast<uint32_t>(Token));
    std::unique_lock<std::mutex> Lock(W.M);
    for (;;) {
      W.CV.wait(Lock, [&] { return W.Pending != Cmd::None; });
      Cmd C = W.Pending;
      void *Arg = W.Arg;
      if (C == Cmd::Free)
        Heap.deallocate(Arg);
      else if (C == Cmd::Flush)
        Heap.flushThreadCache();
      W.Pending = Cmd::None;
      W.CV.notify_all();
      if (C == Cmd::Exit)
        return;
    }
  }

  ShardedHeap &Heap;
  std::vector<std::unique_ptr<Worker>> Workers;
};

/// One model entry: the requested size and the pattern-stream seed of the
/// bytes the driver wrote there.
struct ModelObject {
  size_t Size;
  uint64_t Pattern;
};

/// Executes one decoded sequence against a fresh heap, mirroring every
/// operation into the reference model and checking the differential
/// invariants (see FuzzDriver.h).
class Driver {
public:
  Driver(FuzzResult &Result, ShardedHeap &H, const uint8_t *Data,
         size_t Size)
      : R(Result), Cfg(Result.Config), Heap(H), Rd(Data, Size),
        Pool(new WorkerPool(H, Result.Config.Workers)) {
    for (size_t S = 0; S < Heap.numShards(); ++S)
      ShardBases.push_back(
          reinterpret_cast<uintptr_t>(Heap.shard(S).heapBase()));
  }

  void run() {
    // The 4-byte config header was consumed by decodeFuzzConfig; skip it.
    for (int I = 0; I < 4; ++I)
      Rd.u8();
    while (!Rd.done() && R.Ok) {
      step();
      ++OpIndex;
      ++R.OpsExecuted;
      if ((OpIndex & 63) == 0)
        periodicChecks();
    }
    if (R.Ok)
      audit();
  }

private:
  // --- failure reporting ---------------------------------------------------

  bool fail(const std::string &Msg) {
    if (R.Ok) {
      R.Ok = false;
      R.Message = "op " + std::to_string(OpIndex) + ": " + Msg;
    }
    return false;
  }

  static std::string hex(const void *Ptr) {
    char Buf[24];
    std::snprintf(Buf, sizeof(Buf), "%p", Ptr);
    return Buf;
  }

  // --- placement trace -----------------------------------------------------

  void hashWord(uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      R.TraceHash ^= (V >> (I * 8)) & 0xFF;
      R.TraceHash *= 1099511628211ULL;
    }
  }

  /// Hashes where an allocation landed. Small objects hash their
  /// shard-relative offset (ASLR-independent); large objects hash only
  /// their size, since mmap placement is the OS's choice, not the
  /// allocator's.
  void traceAlloc(const void *Ptr, size_t Size) {
    hashWord(OpIndex);
    size_t S = Heap.shardIndexOf(Ptr);
    if (S < ShardBases.size())
      hashWord((static_cast<uint64_t>(S) << 48) |
               (reinterpret_cast<uintptr_t>(Ptr) - ShardBases[S]));
    else
      hashWord(0xA11C000000000000ULL | Size);
  }

  // --- reference model -----------------------------------------------------

  uint64_t patternSeed() {
    return Rng::deriveStream(Cfg.Seed, OpIndex + 1, Rng::ClassStreamGamma);
  }

  bool verifyObject(uintptr_t Base, const ModelObject &MO) {
    size_t Bad = findPatternMismatch(reinterpret_cast<void *>(Base),
                                     MO.Size, MO.Pattern);
    if (Bad == SIZE_MAX)
      return true;
    return fail("content corrupted: object " +
                hex(reinterpret_cast<void *>(Base)) + " size " +
                std::to_string(MO.Size) + " diverges at byte " +
                std::to_string(Bad));
  }

  /// Admission check + model insert for a fresh allocation. \p MinAlign is
  /// the alignment the API contract promises for this call.
  bool admit(void *Ptr, size_t Requested, size_t MinAlign, bool Zeroed) {
    uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
    if (P % MinAlign != 0)
      return fail("allocation " + hex(Ptr) + " not aligned to " +
                  std::to_string(MinAlign));
    size_t Owner = Heap.shardIndexOf(Ptr);
    bool Large = Requested > SizeClass::MaxObjectSize;
    if (Large ? Owner != Heap.numShards() : Owner >= Heap.numShards())
      return fail("allocation " + hex(Ptr) + " has owner " +
                  std::to_string(Owner) + " for size " +
                  std::to_string(Requested));
    size_t Usable = Heap.getObjectSize(Ptr);
    if (Usable < Requested)
      return fail("usable size " + std::to_string(Usable) +
                  " < requested " + std::to_string(Requested));
    // Overlap against every live range: the left neighbour must end at or
    // before P, the right neighbour must start at or after P + Requested.
    auto Next = Live.lower_bound(P);
    if (Next != Live.begin()) {
      auto Prev = std::prev(Next);
      if (Prev->first + Prev->second.Size > P)
        return fail("allocation " + hex(Ptr) + " overlaps live object " +
                    hex(reinterpret_cast<void *>(Prev->first)));
    }
    if (Next != Live.end() && Next->first < P + Requested)
      return fail("allocation " + hex(Ptr) + " overlaps live object " +
                  hex(reinterpret_cast<void *>(Next->first)));
    if (Zeroed) {
      const uint8_t *B = static_cast<const uint8_t *>(Ptr);
      for (size_t I = 0; I < Requested; ++I)
        if (B[I] != 0)
          return fail("calloc memory not zeroed at byte " +
                      std::to_string(I));
    }
    ModelObject MO{Requested, patternSeed()};
    fillPattern(Ptr, Requested, MO.Pattern);
    Live.emplace(P, MO);
    Order.push_back(P);
    traceAlloc(Ptr, Requested);
    ++R.ModelAllocs;
    return true;
  }

  /// Verifies and removes Order[Idx] from the model; the caller performs
  /// the actual free. Returns the pointer, or nullptr on verify failure.
  void *modelTakeAt(size_t Idx) {
    uintptr_t Base = Order[Idx];
    auto It = Live.find(Base);
    if (!verifyObject(Base, It->second))
      return nullptr;
    Live.erase(It);
    Order[Idx] = Order.back();
    Order.pop_back();
    Graveyard[GravePos++ % GraveSlots] = Base;
    if (GraveCount < GraveSlots)
      ++GraveCount;
    return reinterpret_cast<void *>(Base);
  }

  /// A dead in-heap (or foreign) address to aim invalid frees and wild
  /// reallocs at, or nullptr when no candidate is provably dead right now
  /// (a freed slot still parked in a deferred buffer keeps its bitmap bit,
  /// so the heap would treat it as live — only allocation can revive a
  /// slot, so a zero answer here is stable for the injection that
  /// follows).
  void *deadTarget(uint8_t Variant, uint16_t Entropy) {
    switch (Variant % 3) {
    case 0:
      return ForeignTarget; // Never heap memory; always injectable.
    case 1: {
      if (GraveCount == 0)
        return ForeignTarget;
      void *T = reinterpret_cast<void *>(Graveyard[Entropy % GraveCount]);
      return Heap.getObjectSize(T) == 0 ? T : nullptr;
    }
    default: {
      // Synthesize an 8-aligned address inside a shard's reservation.
      size_t S = Entropy % Heap.numShards();
      size_t Bytes = Heap.shard(S).heapBytes();
      if (Bytes == 0)
        return ForeignTarget;
      uintptr_t Off =
          (static_cast<uintptr_t>(Entropy) * 2654435761u) % Bytes & ~7ULL;
      void *T = reinterpret_cast<void *>(ShardBases[S] + Off);
      return Heap.getObjectSize(T) == 0 ? T : nullptr;
    }
    }
  }

  // --- decoded operations --------------------------------------------------

  size_t decodeSize() {
    uint16_t V = Rd.u16();
    uint16_t Raw = static_cast<uint16_t>(V >> 2);
    switch (V & 3) {
    case 0:
      return 1 + Raw % 512; // The common small-object sizes.
    case 1: {
      // Size-class boundaries: 8 << c, one under and one over — the
      // rounding and in-place-realloc edge cases.
      size_t Base = static_cast<size_t>(8) << (Raw % 12);
      switch ((Raw / 12) % 3) {
      case 0:
        return Base;
      case 1:
        return Base + 1; // 16384 + 1 crosses into the large path.
      default:
        return Base - 1;
      }
    }
    case 2:
      return 1 + Raw % SizeClass::MaxObjectSize;
    default:
      return SizeClass::MaxObjectSize + 1 + static_cast<size_t>(Raw) * 4;
    }
  }

  void opMalloc() {
    if (Order.size() >= MaxLive)
      return;
    size_t Size = decodeSize();
    void *Ptr = Heap.allocate(Size);
    if (Ptr == nullptr) {
      ++R.FailedAllocs;
      return;
    }
    admit(Ptr, Size, 8, /*Zeroed=*/false);
  }

  void opCalloc() {
    if (Order.size() >= MaxLive)
      return;
    size_t Count = 1 + Rd.u8() % 8;
    size_t Unit = 1 + decodeSize() / Count;
    void *Ptr = Heap.allocateZeroed(Count, Unit);
    if (Ptr == nullptr) {
      ++R.FailedAllocs;
      return;
    }
    admit(Ptr, Count * Unit, 8, /*Zeroed=*/true);
  }

  void opMemalign() {
    if (Order.size() >= MaxLive)
      return;
    // The shim's posix_memalign strategy: power-of-two size classes give
    // natural alignment once the request is raised to the alignment.
    size_t Align = static_cast<size_t>(8) << (Rd.u8() % 10); // 8..4096.
    size_t Size = decodeSize();
    size_t Request = Size < Align ? Align : Size;
    void *Ptr = Heap.allocate(Request);
    if (Ptr == nullptr) {
      ++R.FailedAllocs;
      return;
    }
    admit(Ptr, Request, Align, /*Zeroed=*/false);
  }

  void opRealloc() {
    if (Order.empty())
      return;
    size_t Idx = Rd.u16() % Order.size();
    size_t NewSize = decodeSize();
    uintptr_t Base = Order[Idx];
    ModelObject Old = Live.find(Base)->second;
    if (!verifyObject(Base, Old))
      return;
    void *OldPtr = reinterpret_cast<void *>(Base);
    void *NewPtr = Heap.reallocate(OldPtr, NewSize);
    if (NewPtr == nullptr) {
      // Allocation failure inside realloc: the old object must survive
      // untouched (C semantics; both heap layers implement this).
      ++R.FailedAllocs;
      return;
    }
    // Remove the old entry first so the overlap check does not see it.
    Live.erase(Base);
    Order[Idx] = Order.back();
    Order.pop_back();
    if (NewPtr != OldPtr) {
      Graveyard[GravePos++ % GraveSlots] = Base;
      if (GraveCount < GraveSlots)
        ++GraveCount;
    }
    if (!admitRealloc(NewPtr, NewSize, Old))
      return;
  }

  /// Post-realloc admission: the prefix min(old, new) must carry the old
  /// pattern before the new pattern is laid down.
  bool admitRealloc(void *Ptr, size_t NewSize, const ModelObject &Old) {
    uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
    if (P % 8 != 0)
      return fail("realloc result " + hex(Ptr) + " misaligned");
    size_t Usable = Heap.getObjectSize(Ptr);
    if (Usable < NewSize)
      return fail("realloc usable size " + std::to_string(Usable) +
                  " < requested " + std::to_string(NewSize));
    auto Next = Live.lower_bound(P);
    if (Next != Live.begin()) {
      auto Prev = std::prev(Next);
      if (Prev->first + Prev->second.Size > P)
        return fail("realloc result overlaps live object " +
                    hex(reinterpret_cast<void *>(Prev->first)));
    }
    if (Next != Live.end() && Next->first < P + NewSize)
      return fail("realloc result overlaps live object " +
                  hex(reinterpret_cast<void *>(Next->first)));
    size_t Keep = Old.Size < NewSize ? Old.Size : NewSize;
    size_t Bad = findPatternMismatch(Ptr, Keep, Old.Pattern);
    if (Bad != SIZE_MAX)
      return fail("realloc lost contents at byte " + std::to_string(Bad));
    ModelObject MO{NewSize, patternSeed()};
    fillPattern(Ptr, NewSize, MO.Pattern);
    Live.emplace(P, MO);
    Order.push_back(P);
    traceAlloc(Ptr, NewSize);
    return true;
  }

  void opFree(bool CrossThread) {
    if (Order.empty())
      return;
    size_t Idx = Rd.u16() % Order.size();
    uint8_t W = Rd.u8();
    void *Ptr = modelTakeAt(Idx);
    if (Ptr == nullptr)
      return;
    if (CrossThread && Pool->size() > 0)
      Pool->freeOn(W % Pool->size(), Ptr);
    else
      Heap.deallocate(Ptr);
  }

  // --- error injections ----------------------------------------------------
  //
  // Every injection is designed to be *provably* detectable, so rejection
  // can be asserted exactly: double frees are back-to-back (no allocation
  // can revive the slot between the two frees, since only this driver
  // allocates); invalid-free and wild-realloc targets are checked dead
  // first (and only allocation revives a slot); misaligned offsets k in
  // 1..7 can never hit a slot base (every slot base is 8-aligned). The
  // post-reuse double free — free, slot legitimately reallocated, free
  // again — is deliberately NOT generated: the paper's bitmap validation
  // cannot distinguish it from a valid free of the newer object (that is
  // the probabilistic part of the safety story), so it has no oracle.
  //
  // With the cache tier on, the double-free and dead-slot injections are
  // additionally bracketed with cache flushes so each injected free is
  // *validated* before the driver's next allocation. This sidesteps a real
  // validation gap this harness found (tracked in ROADMAP.md): bitmap
  // validation cannot tell a cache-CLAIMED slot from a live one, so an
  // erroneous free parked in a deferred buffer while its (dead) slot gets
  // re-claimed by a refill materializes as a bogus "valid" free of the
  // claimed slot — Frees overcounts by one and the cache ends up holding a
  // freed slot. The lock-free sidecar path has no such window (every
  // allocation and refill drains the owner's sidecar under the same lock
  // *before* claiming slots); only the thread-local deferred buffer is
  // blind. Forcing the flush makes validation happen while the slot state
  // is still what the grammar proved, restoring an exact oracle; the
  // rejected totals are path-independent, so the bracket changes *when*
  // the error is caught, never how it is counted.

  void injectDoubleFree(bool CrossThread) {
    if (Order.empty())
      return;
    size_t Idx = Rd.u16() % Order.size();
    uint8_t W = Rd.u8();
    void *Ptr = modelTakeAt(Idx);
    if (Ptr == nullptr)
      return;
    if (CrossThread && Pool->size() > 0) {
      size_t A = W % Pool->size();
      size_t B = (W / 4) % Pool->size();
      Pool->freeOn(A, Ptr);
      if (Cfg.ThreadCacheSlots != 0)
        Pool->flushOn(A); // Validate free #1 before free #2 arrives.
      Pool->freeOn(B, Ptr);
      if (Cfg.ThreadCacheSlots != 0)
        Pool->flushOn(B);
      ++R.Injected[CrossThreadDoubleFree];
    } else {
      Heap.deallocate(Ptr);
      if (Cfg.ThreadCacheSlots != 0)
        Heap.flushThreadCache(); // Validate free #1 before free #2.
      Heap.deallocate(Ptr);
      if (Cfg.ThreadCacheSlots != 0)
        Heap.flushThreadCache();
      ++R.Injected[DoubleFree];
    }
    ++ExpectedIgnored;
  }

  void injectInvalidFree() {
    void *T = deadTarget(Rd.u8(), Rd.u16());
    if (T == nullptr)
      return; // No provably-dead candidate; skip rather than guess.
    Heap.deallocate(T);
    if (Cfg.ThreadCacheSlots != 0) {
      // Materialize the rejection now: a dead-slot free parked in the
      // deferred buffer could otherwise race a refill claiming the slot
      // (see the claimed-slot note above).
      Heap.flushThreadCache();
    }
    ++ExpectedIgnored;
    ++R.Injected[InvalidFree];
  }

  void injectMisalignedFree() {
    if (Order.empty())
      return;
    size_t Idx = Rd.u16() % Order.size();
    size_t K = 1 + Rd.u8() % 7;
    uintptr_t Base = Order[Idx];
    // The object stays in the model: a misaligned free must not free it,
    // and its contents are re-verified by later operations and teardown.
    Heap.deallocate(reinterpret_cast<void *>(Base + K));
    ++ExpectedIgnored;
    ++R.Injected[MisalignedFree];
  }

  void injectWildRealloc() {
    void *T = deadTarget(Rd.u8(), Rd.u16());
    if (T == nullptr)
      return;
    size_t NewSize = decodeSize();
    uint64_t Before = Heap.reallocRejects();
    void *Ret = Heap.reallocate(T, NewSize);
    if (Ret != nullptr) {
      fail("wild realloc of " + hex(T) + " returned memory");
      return;
    }
    if (Heap.reallocRejects() != Before + 1) {
      fail("wild realloc of " + hex(T) + " not counted");
      return;
    }
    ++R.Injected[WildRealloc];
  }

  void opMaintenance() {
    switch (Rd.u8() % 4) {
    case 0:
      Heap.flushThreadCache();
      break;
    case 1:
      Heap.drainRemoteFrees();
      break;
    case 2:
      if (Cfg.Sweeper)
        Heap.sweepNow();
      break;
    default:
      Pool->flushAll();
      Heap.deallocate(nullptr); // free(NULL): the legal no-op.
      break;
    }
  }

  void step() {
    switch (Rd.u8() & 15) {
    case 0:
    case 1:
    case 2:
      opMalloc();
      break;
    case 3:
      opCalloc();
      break;
    case 4:
      opMemalign();
      break;
    case 5:
    case 6:
      opRealloc();
      break;
    case 7:
    case 8:
      opFree(/*CrossThread=*/false);
      break;
    case 9:
      opFree(/*CrossThread=*/true);
      break;
    case 10:
      injectDoubleFree(/*CrossThread=*/false);
      break;
    case 11:
      injectDoubleFree(/*CrossThread=*/true);
      break;
    case 12:
      injectInvalidFree();
      break;
    case 13:
      injectMisalignedFree();
      break;
    case 14:
      injectWildRealloc();
      break;
    default:
      opMaintenance();
      break;
    }
  }

  // --- invariant checks ----------------------------------------------------

  void periodicChecks() {
    // The 1/M bound, partition by partition (Section 3.1): claimed cache
    // slots count as live, so the bound covers the cache tier too.
    for (size_t S = 0; S < Heap.numShards(); ++S)
      for (int C = 0; C < DieHardHeap::NumPartitions; ++C) {
        size_t InUse = Heap.shard(S).liveInClass(C);
        size_t Bound = Heap.shard(S).thresholdForClass(C);
        if (InUse > Bound) {
          fail("1/M bound exceeded: shard " + std::to_string(S) +
               " class " + std::to_string(C) + " has " +
               std::to_string(InUse) + " live > threshold " +
               std::to_string(Bound));
          return;
        }
      }
    // Spot-verify one live object's round-trip.
    if (!Order.empty()) {
      uintptr_t Base = Order[OpIndex % Order.size()];
      verifyObject(Base, Live.find(Base)->second);
    }
  }

  /// Forced quiescence, then the books must balance exactly.
  void audit() {
    // Free every remaining live object through the driver, verifying each
    // object's contents on the way out — the full round-trip check.
    while (!Order.empty() && R.Ok) {
      void *Ptr = modelTakeAt(Order.size() - 1);
      if (Ptr == nullptr)
        return;
      Heap.deallocate(Ptr);
    }
    if (!R.Ok)
      return;
    // Quiescence: workers flush and exit (their caches retire), the
    // driver's cache flushes, every sidecar drains.
    Pool->flushAll();
    Pool.reset();
    Heap.flushThreadCache();
    Heap.drainRemoteFrees();

    DieHardStats S = Heap.stats();
    uint64_t ExpectedWild = R.Injected[WildRealloc];
    if (S.Allocations != S.Frees) {
      fail("quiescence: Allocations " + std::to_string(S.Allocations) +
           " != Frees " + std::to_string(S.Frees));
      return;
    }
    if (S.LargeAllocations != S.LargeFrees) {
      fail("quiescence: LargeAllocations " +
           std::to_string(S.LargeAllocations) + " != LargeFrees " +
           std::to_string(S.LargeFrees));
      return;
    }
    if (S.IgnoredFrees != ExpectedIgnored) {
      fail("injected " + std::to_string(ExpectedIgnored) +
           " bad frees but IgnoredFrees is " +
           std::to_string(S.IgnoredFrees));
      return;
    }
    if (S.ReallocRejects != ExpectedWild) {
      fail("injected " + std::to_string(ExpectedWild) +
           " wild reallocs but ReallocRejects is " +
           std::to_string(S.ReallocRejects));
      return;
    }
    if (Cfg.deterministic() && S.FailedAllocations != R.FailedAllocs) {
      fail("saw " + std::to_string(R.FailedAllocs) +
           " refused allocations but FailedAllocations is " +
           std::to_string(S.FailedAllocations));
      return;
    }
    if (S.CachedSlots != 0 || Heap.cachedSlots() != 0) {
      fail("cached slots leaked after full flush: " +
           std::to_string(Heap.cachedSlots()));
      return;
    }
    if (Heap.pendingRemoteFrees() != 0) {
      fail("sidecar entries still pending after drain");
      return;
    }
    if (Heap.bytesLive() != 0) {
      fail("quiescence: " + std::to_string(Heap.bytesLive()) +
           " bytes still live with no model objects");
      return;
    }
    if (Heap.liveLargeObjects() != 0) {
      fail("large objects leaked");
      return;
    }
    // The locked and lock-free aggregation paths must agree at
    // quiescence — a second, independent set of books over the same run.
    DieHardStats A = Heap.statsApprox();
    if (A.Allocations != S.Allocations || A.Frees != S.Frees ||
        A.IgnoredFrees != S.IgnoredFrees ||
        A.ReallocRejects != S.ReallocRejects) {
      fail("stats() and statsApprox() disagree at quiescence");
      return;
    }
    R.FinalStats = S;
  }

  static constexpr size_t MaxLive = 512;
  static constexpr size_t GraveSlots = 64;

  FuzzResult &R;
  const FuzzConfig &Cfg;
  ShardedHeap &Heap;
  ByteReader Rd;
  std::unique_ptr<WorkerPool> Pool;
  std::map<uintptr_t, ModelObject> Live;
  std::vector<uintptr_t> Order;
  uintptr_t Graveyard[GraveSlots] = {};
  size_t GraveCount = 0;
  size_t GravePos = 0;
  std::vector<uintptr_t> ShardBases;
  uint64_t OpIndex = 0;
  uint64_t ExpectedIgnored = 0;
};

} // namespace

const char *errorClassName(int Class) {
  switch (Class) {
  case DoubleFree:
    return "double_free";
  case InvalidFree:
    return "invalid_free";
  case MisalignedFree:
    return "misaligned_free";
  case CrossThreadDoubleFree:
    return "cross_thread_double_free";
  case WildRealloc:
    return "wild_realloc";
  default:
    return "unknown";
  }
}

uint64_t fuzzBaseSeed() {
  const char *Env = std::getenv("DIEHARD_SEED");
  if (Env != nullptr && Env[0] != '\0') {
    uint64_t V = std::strtoull(Env, nullptr, 10);
    if (V != 0)
      return V;
  }
  return 0xD1E4A12DFA57ULL;
}

FuzzConfig decodeFuzzConfig(const uint8_t *Data, size_t Size,
                            uint64_t BaseSeed) {
  auto At = [&](size_t I) -> uint8_t { return I < Size ? Data[I] : 0; };
  uint8_t B0 = At(0), B1 = At(1), B2 = At(2), B3 = At(3);
  FuzzConfig C;
  C.NumShards = 1 + (B1 & 3);
  C.ThreadCacheSlots = (B0 & 1) != 0 ? 8 : 0;
  C.Adaptive = (B0 & 2) != 0 && C.ThreadCacheSlots != 0;
  C.Sweeper = (B0 & 4) != 0;
  C.Overflow = (B0 & 8) == 0;
  C.RandomFill = (B0 & 16) != 0;
  // Small reservations on purpose: saturation, overflow routing and
  // allocation failure are part of the searched surface.
  C.HeapSize = (B0 & 32) != 0 ? (8u << 20) : (24u << 20);
  // Bits 6-7 pick the page-return policy. Two of the four codes map to
  // the DontNeed default so random inputs mostly exercise the production
  // configuration and the Free / Off corners stay reachable.
  switch (B0 >> 6) {
  case 2:
    C.PageReturn = PageReturnPolicy::Free;
    break;
  case 3:
    C.PageReturn = PageReturnPolicy::Off;
    break;
  default:
    C.PageReturn = PageReturnPolicy::DontNeed;
    break;
  }
  C.Workers = (B1 >> 2) & 3;
  C.SweepIntervalMs = 1 + ((B1 >> 4) & 7); // 1..8 ms epochs.
  // B1's top bit (formerly interval range 9..16, a redundant timing axis)
  // now toggles meshing; forced off with RandomFill exactly like the shim
  // (a meshed donor's punched frame refaults zero, destroying fill).
  C.Meshing = (B1 & 0x80) != 0 && !C.RandomFill;
  C.Seed = Rng::deriveStream(BaseSeed, 1 + B2 + 256 * B3);
  if (C.Seed == 0)
    C.Seed = 0x5EEDULL; // Zero would select true randomness.
  return C;
}

FuzzResult runFuzzSequence(const uint8_t *Data, size_t Size,
                           uint64_t BaseSeed) {
  FuzzResult R;
  R.Config = decodeFuzzConfig(Data, Size, BaseSeed);
  const FuzzConfig &Cfg = R.Config;

  ShardedHeapOptions Opts;
  Opts.Heap.HeapSize = Cfg.HeapSize;
  Opts.Heap.Seed = Cfg.Seed;
  Opts.Heap.RandomFillObjects = Cfg.RandomFill;
  Opts.Heap.RandomFillOnFree = Cfg.RandomFill;
  Opts.Heap.Meshing = Cfg.Meshing;
  Opts.NumShards = Cfg.NumShards;
  Opts.OverflowRouting = Cfg.Overflow;
  Opts.ThreadCacheSlots = Cfg.ThreadCacheSlots;
  Opts.ThreadCacheAdaptive = Cfg.Adaptive;
  Opts.Sweeper = Cfg.Sweeper;
  // Fast epochs either way: aging must happen mid-sequence.
  Opts.SweepIntervalMs = Cfg.SweepIntervalMs;

  // The page-return policy is process state; apply the decoded one for the
  // duration of this sequence and restore whatever the host had. The fuzz
  // claim being checked: releasing object-free pages mid-sequence never
  // perturbs placement, contents, or the books.
  PageReturnPolicy HostPolicy = MmapRegion::pageReturnPolicy();
  MmapRegion::setPageReturnPolicy(Cfg.PageReturn);

  // The driver's home shard comes from the input too, not from how many
  // threads allocated earlier in this process.
  ShardedHeap::pinThreadToken(0);
  {
    ShardedHeap Heap(Opts);
    if (Heap.isValid()) {
      Driver D(R, Heap, Data, Size);
      D.run();
    }
    // else: reservation failure, nothing to differentiate.
  }
  MmapRegion::setPageReturnPolicy(HostPolicy);
  return R;
}

FuzzResult runFuzzSequence(const uint8_t *Data, size_t Size) {
  return runFuzzSequence(Data, Size, fuzzBaseSeed());
}

} // namespace fuzz
} // namespace diehard
