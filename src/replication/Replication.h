//===- replication/Replication.h - replicated execution ---------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replicated variant of DieHard (Section 5). The manager spawns each
/// replica in its own process with a differently seeded, fully randomized
/// memory manager. Standard input is broadcast to every replica over a
/// pipe; each replica writes its standard output into a memory-mapped
/// region shared with the manager. The voter periodically synchronizes at
/// barriers: whenever all currently-live replicas have terminated or filled
/// an output chunk (4 KB, the unit of transfer of a pipe), it compares the
/// chunks and only commits output agreed on by at least two replicas.
/// Disagreeing replicas have entered an undefined state and are killed.
///
/// Errors like buffer overflows overwrite different memory in different
/// replicas, so agreement implies (with high probability) a safe execution;
/// uninitialized reads make all replicas disagree and are thereby detected.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_REPLICATION_REPLICATION_H
#define DIEHARD_REPLICATION_REPLICATION_H

#include "core/DieHardHeap.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace diehard {

/// Execution environment handed to the replica body after fork.
class ReplicaContext {
public:
  /// Heap options for this replica: replicated mode (random object fill)
  /// with a replica-specific random seed.
  const DieHardOptions &heapOptions() const { return HeapOpts; }

  /// Index of this replica (0-based).
  int replicaIndex() const { return Index; }

  /// File descriptor carrying this replica's copy of standard input.
  int inputFd() const { return InputFd; }

  /// Reads all of standard input into a string (convenience).
  std::string readAllInput() const;

  /// Appends \p Len bytes to this replica's output buffer.
  /// \returns false if the buffer is exhausted (the replica should abort).
  bool write(const void *Data, size_t Len);

  /// Convenience overload for text.
  bool write(const std::string &Text) {
    return write(Text.data(), Text.size());
  }

  /// A virtual clock, identical across replicas, standing in for the
  /// paper's interception of date/clock system calls so that correct
  /// replicas stay output-equivalent.
  uint64_t virtualTimeNanos() const { return VirtualTime; }

private:
  friend class ReplicaManager;
  DieHardOptions HeapOpts;
  int Index = 0;
  int InputFd = -1;
  uint64_t VirtualTime = 0;
  void *Shared = nullptr; ///< SharedBuffer header, opaque here.
  size_t Capacity = 0;    ///< Output buffer capacity in bytes.
};

/// The body a replica executes; its return value becomes the process exit
/// code. The body should write all program output through the context.
using ReplicaBody = std::function<int(ReplicaContext &)>;

/// Configuration for a replicated run.
struct ReplicationOptions {
  int Replicas = 3;            ///< One, or at least three (k != 2).
  size_t ChunkSize = 4096;     ///< Voting barrier granularity.
  size_t BufferCapacity = 1 << 24; ///< Per-replica output buffer bytes.
  uint64_t MasterSeed = 0;     ///< 0 = truly random per-replica seeds.
  size_t HeapSize = 64 * 1024 * 1024; ///< Per-replica heap reservation.
  double M = 2.0;              ///< Heap expansion factor per replica.
  int TimeoutMillis = 30000;   ///< Watchdog for hung replicas (0 = none).
};

/// How a replica ended.
enum class ReplicaFate {
  Agreed,       ///< Ran to completion and agreed with the vote throughout.
  Crashed,      ///< Terminated by a signal (e.g. SIGSEGV).
  KilledByVote, ///< Produced output disagreeing with the majority.
  NonzeroExit,  ///< Exited with a nonzero status.
  TimedOut,     ///< Killed by the watchdog.
  SpawnFailed,  ///< pipe() or fork() failed; the replica never ran.
};

/// Outcome of a replicated execution.
struct ReplicationResult {
  /// True if output was committed by agreement (at least two replicas, or
  /// the single replica in stand-alone mode) through the end of the run.
  bool Success = false;

  /// True if at some barrier *all* live replicas disagreed pairwise — the
  /// signature of an uninitialized read propagating to output (Section 6.3).
  bool UninitReadDetected = false;

  /// The voted output stream.
  std::string Output;

  /// Per-replica fate, indexed by replica number.
  std::vector<ReplicaFate> Fates;

  /// Number of replicas that reached the end in agreement.
  int Survivors = 0;
};

/// Spawns, feeds, votes on, and reaps a set of randomized replicas.
class ReplicaManager {
public:
  explicit ReplicaManager(const ReplicationOptions &Options);

  /// Runs \p Body in Options.Replicas processes, broadcasting \p Input to
  /// each via its stdin pipe, and votes on their output.
  ReplicationResult run(const ReplicaBody &Body, const std::string &Input);

private:
  ReplicationOptions Opts;
};

} // namespace diehard

#endif // DIEHARD_REPLICATION_REPLICATION_H
