//===- replication/Replication.cpp ----------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the replica manager: process spawning, input
/// broadcast, shared-memory output chunks, and barrier voting
/// (Section 5.2).
///
//===----------------------------------------------------------------------===//

#include "replication/Replication.h"

#include "support/RealRandomSource.h"
#include "support/Rng.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstring>

#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

namespace diehard {
namespace {

/// Header of the per-replica shared-memory output buffer. The replica is
/// the only writer of Written; Done is set by the replica on successful
/// completion, or by the manager when it excludes a replica from voting.
/// Data bytes follow the header.
struct SharedBuffer {
  std::atomic<uint64_t> Written; ///< Bytes appended so far.
  std::atomic<uint32_t> Done;    ///< Replica finished writing.
  char Data[];                   ///< BufferCapacity bytes.
};

SharedBuffer *mapSharedBuffer(size_t Capacity) {
  void *P = ::mmap(nullptr, sizeof(SharedBuffer) + Capacity,
                   PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return nullptr;
  auto *Buf = new (P) SharedBuffer;
  Buf->Written.store(0, std::memory_order_relaxed);
  Buf->Done.store(0, std::memory_order_relaxed);
  return Buf;
}

/// Bookkeeping the manager keeps per replica.
struct ReplicaSlot {
  pid_t Pid = -1;
  SharedBuffer *Buffer = nullptr;
  int StdinWriteFd = -1;
  bool Live = false;
  size_t Voted = 0; ///< Bytes already committed by the voter.
  ReplicaFate Fate = ReplicaFate::Agreed;
};

uint64_t nowMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

std::string ReplicaContext::readAllInput() const {
  std::string All;
  char Chunk[4096];
  ssize_t N;
  while ((N = ::read(InputFd, Chunk, sizeof(Chunk))) > 0)
    All.append(Chunk, static_cast<size_t>(N));
  return All;
}

bool ReplicaContext::write(const void *Data, size_t Len) {
  auto *Buf = static_cast<SharedBuffer *>(Shared);
  assert(Buf != nullptr && "context not wired to a buffer");
  uint64_t Offset = Buf->Written.load(std::memory_order_relaxed);
  if (Offset + Len > Capacity)
    return false;
  std::memcpy(Buf->Data + Offset, Data, Len);
  Buf->Written.store(Offset + Len, std::memory_order_release);
  return true;
}

ReplicaManager::ReplicaManager(const ReplicationOptions &Options)
    : Opts(Options) {
  assert((Opts.Replicas == 1 || Opts.Replicas >= 3) &&
         "the voter cannot arbitrate between exactly two replicas");
}

ReplicationResult ReplicaManager::run(const ReplicaBody &Body,
                                      const std::string &Input) {
  ReplicationResult Result;
  int K = Opts.Replicas;
  Result.Fates.assign(static_cast<size_t>(K), ReplicaFate::Agreed);

  // Per-replica seeds: either truly random (deployment) or derived from the
  // master seed (reproducible tests).
  Rng SeedGen(Opts.MasterSeed != 0 ? Opts.MasterSeed : realRandomSeed());
  uint64_t VirtualTime = SeedGen.next64();

  std::vector<ReplicaSlot> Slots(static_cast<size_t>(K));
  for (int I = 0; I < K; ++I) {
    ReplicaSlot &Slot = Slots[static_cast<size_t>(I)];
    Slot.Buffer = mapSharedBuffer(Opts.BufferCapacity);
    if (Slot.Buffer == nullptr)
      return Result;

    uint64_t Seed = SeedGen.next64() | 1; // Nonzero.
    int Fds[2] = {-1, -1};
    pid_t Pid = ::pipe(Fds) == 0 ? ::fork() : -1;
    if (Pid == 0) {
      // Child: this process *is* replica I. Drop inherited write ends of
      // earlier replicas' stdin pipes so their EOF does not depend on us.
      for (int J = 0; J < I; ++J)
        if (Slots[static_cast<size_t>(J)].StdinWriteFd >= 0)
          ::close(Slots[static_cast<size_t>(J)].StdinWriteFd);
      ::close(Fds[1]);
      ReplicaContext Ctx;
      Ctx.HeapOpts.HeapSize = Opts.HeapSize;
      Ctx.HeapOpts.M = Opts.M;
      Ctx.HeapOpts.Seed = Seed;
      Ctx.HeapOpts.RandomFillObjects = true; // Replicated mode (Section 3.2).
      Ctx.HeapOpts.RandomFillOnFree = true;
      Ctx.Index = I;
      Ctx.InputFd = Fds[0];
      Ctx.VirtualTime = VirtualTime;
      Ctx.Shared = Slot.Buffer;
      Ctx.Capacity = Opts.BufferCapacity;
      int Code = Body(Ctx);
      // Done marks *successful* completion only. A replica whose body
      // failed must not present its buffer as finished output: the voter
      // could otherwise commit a unanimous final round of failed replicas
      // before waitpid observes their nonzero exits.
      if (Code == 0)
        Slot.Buffer->Done.store(1, std::memory_order_release);
      ::_exit(Code);
    }
    if (Pid < 0) {
      // A slot that never spawned must be excluded from voting outright:
      // it is not Live (reapDead skips it) and its Done would otherwise
      // stay unset, so the barrier would wait on it forever.
      if (Fds[0] >= 0) {
        ::close(Fds[0]);
        ::close(Fds[1]);
      }
      Slot.Buffer->Done.store(1, std::memory_order_release);
      Slot.Voted = SIZE_MAX;
      Result.Fates[static_cast<size_t>(I)] = ReplicaFate::SpawnFailed;
      continue;
    }
    ::close(Fds[0]);
    Slot.Pid = Pid;
    Slot.StdinWriteFd = Fds[1];
    Slot.Live = true;
  }

  // Broadcast standard input to every replica, then close the pipes so the
  // replicas see end-of-file.
  for (ReplicaSlot &Slot : Slots) {
    if (!Slot.Live)
      continue;
    size_t Off = 0;
    while (Off < Input.size()) {
      ssize_t N = ::write(Slot.StdinWriteFd, Input.data() + Off,
                          Input.size() - Off);
      if (N <= 0)
        break;
      Off += static_cast<size_t>(N);
    }
    ::close(Slot.StdinWriteFd);
    Slot.StdinWriteFd = -1;
  }

  auto reapDead = [&]() {
    for (int I = 0; I < K; ++I) {
      ReplicaSlot &Slot = Slots[static_cast<size_t>(I)];
      if (!Slot.Live)
        continue;
      int Status = 0;
      pid_t R = ::waitpid(Slot.Pid, &Status, WNOHANG);
      if (R != Slot.Pid)
        continue;
      // A replica that exited without marking Done crashed or failed: it is
      // no longer live. Whenever a replica dies, the manager decrements the
      // number of currently-live replicas (Section 5.2).
      bool FinishedCleanly =
          Slot.Buffer->Done.load(std::memory_order_acquire) != 0 &&
          WIFEXITED(Status) && WEXITSTATUS(Status) == 0;
      if (!FinishedCleanly) {
        Slot.Live = false;
        Result.Fates[static_cast<size_t>(I)] = WIFSIGNALED(Status)
                                                   ? ReplicaFate::Crashed
                                                   : ReplicaFate::NonzeroExit;
      } else {
        Slot.Live = false; // Finished; still participates via its buffer.
        Result.Fates[static_cast<size_t>(I)] = ReplicaFate::Agreed;
      }
      Slot.Pid = -1;
    }
  };

  auto killReplica = [&](int I, ReplicaFate Fate) {
    ReplicaSlot &Slot = Slots[static_cast<size_t>(I)];
    if (Slot.Pid > 0) {
      ::kill(Slot.Pid, SIGKILL);
      int Status;
      ::waitpid(Slot.Pid, &Status, 0);
      Slot.Pid = -1;
    }
    Slot.Live = false;
    Slot.Buffer->Done.store(1, std::memory_order_release);
    Slot.Voted = SIZE_MAX; // Excluded from all further voting.
    Result.Fates[static_cast<size_t>(I)] = Fate;
  };

  // Voting loop. A replica participates while Voted != SIZE_MAX; its buffer
  // remains valid even after process exit.
  uint64_t Deadline =
      Opts.TimeoutMillis > 0
          ? nowMillis() + static_cast<uint64_t>(Opts.TimeoutMillis)
          : ~uint64_t(0);
  bool VotingFailed = false;

  auto participants = [&]() {
    std::vector<int> P;
    for (int I = 0; I < K; ++I)
      if (Slots[static_cast<size_t>(I)].Voted != SIZE_MAX)
        P.push_back(I);
    return P;
  };

  while (!VotingFailed) {
    reapDead();

    // Drop participants that died before finishing their output: a crashed
    // or error-exiting replica has entered an undefined state and its
    // buffer cannot be trusted.
    for (int I = 0; I < K; ++I) {
      ReplicaSlot &Slot = Slots[static_cast<size_t>(I)];
      if (Slot.Voted == SIZE_MAX || Slot.Live)
        continue;
      ReplicaFate Fate = Result.Fates[static_cast<size_t>(I)];
      if (Fate == ReplicaFate::Crashed || Fate == ReplicaFate::NonzeroExit)
        Slot.Voted = SIZE_MAX;
    }

    std::vector<int> Voters = participants();
    if (Voters.empty()) {
      VotingFailed = true;
      break;
    }

    // How much unvoted output does each participant have, and are they all
    // finished?
    bool AllDone = true;
    size_t MinAvail = SIZE_MAX;
    for (int I : Voters) {
      ReplicaSlot &Slot = Slots[static_cast<size_t>(I)];
      uint64_t Written = Slot.Buffer->Written.load(std::memory_order_acquire);
      size_t Avail = static_cast<size_t>(Written) - Slot.Voted;
      MinAvail = Avail < MinAvail ? Avail : MinAvail;
      if (Slot.Buffer->Done.load(std::memory_order_acquire) == 0)
        AllDone = false;
    }

    bool FinalRound = AllDone;
    if (!FinalRound && MinAvail < Opts.ChunkSize) {
      // Barrier not reached: wait for the laggards (or the watchdog).
      if (nowMillis() > Deadline) {
        for (int I : Voters)
          if (Slots[static_cast<size_t>(I)].Live)
            killReplica(I, ReplicaFate::TimedOut);
        continue;
      }
      ::usleep(200);
      continue;
    }

    // Vote on the next chunk. In the final round replicas may have
    // different total lengths; length differences count as disagreement.
    struct Ballot {
      const char *Data;
      size_t Len;
      std::vector<int> Members;
    };
    std::vector<Ballot> Ballots;
    for (int I : Voters) {
      ReplicaSlot &Slot = Slots[static_cast<size_t>(I)];
      uint64_t Written = Slot.Buffer->Written.load(std::memory_order_acquire);
      size_t Avail = static_cast<size_t>(Written) - Slot.Voted;
      size_t Len = FinalRound ? Avail
                              : (Opts.ChunkSize < Avail ? Opts.ChunkSize
                                                        : Avail);
      const char *Data = Slot.Buffer->Data + Slot.Voted;
      bool Placed = false;
      for (Ballot &B : Ballots) {
        if (B.Len == Len && std::memcmp(B.Data, Data, Len) == 0) {
          B.Members.push_back(I);
          Placed = true;
          break;
        }
      }
      if (!Placed)
        Ballots.push_back(Ballot{Data, Len, {I}});
    }

    // Pick the winning ballot: any ballot with at least two members (two
    // agreeing randomized replicas are almost surely correct), or the only
    // ballot when a single replica remains (stand-alone degradation).
    const Ballot *Winner = nullptr;
    for (const Ballot &B : Ballots)
      if (B.Members.size() >= 2)
        Winner = &B;
    if (Winner == nullptr && Voters.size() == 1)
      Winner = &Ballots.front();

    if (Winner == nullptr) {
      // All live replicas disagree pairwise. With three or more voters this
      // is the signature of an uninitialized read reaching output
      // (Section 6.3); with fewer it is an unarbitrable failure.
      Result.UninitReadDetected = Voters.size() >= 3;
      for (int I : Voters)
        killReplica(I, ReplicaFate::KilledByVote);
      VotingFailed = true;
      break;
    }

    Result.Output.append(Winner->Data, Winner->Len);
    // Losers have entered undefined states; kill and exclude them.
    for (int I : Voters) {
      bool InWinner = false;
      for (int W : Winner->Members)
        InWinner |= W == I;
      if (!InWinner)
        killReplica(I, ReplicaFate::KilledByVote);
    }
    for (int W : Winner->Members)
      Slots[static_cast<size_t>(W)].Voted += Winner->Len;

    if (FinalRound) {
      Result.Success = true;
      Result.Survivors = static_cast<int>(Winner->Members.size());
      break;
    }
  }

  // Cleanup: reap everything and release the shared buffers.
  for (int I = 0; I < K; ++I) {
    ReplicaSlot &Slot = Slots[static_cast<size_t>(I)];
    if (Slot.Pid > 0) {
      ::kill(Slot.Pid, SIGKILL);
      int Status;
      ::waitpid(Slot.Pid, &Status, 0);
    }
    if (Slot.StdinWriteFd >= 0)
      ::close(Slot.StdinWriteFd);
    if (Slot.Buffer != nullptr)
      ::munmap(Slot.Buffer, sizeof(SharedBuffer) + Opts.BufferCapacity);
  }
  return Result;
}

} // namespace diehard
