//===- interpose/Interpose.cpp - malloc/free interposition ----------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The libdiehard.so shim (Section 5.1). Loading this library with
/// LD_PRELOAD redirects all malloc/free calls of an unmodified binary to a
/// process-global sharded DieHard heap — "DieHard works with binaries and
/// supports any language using explicit allocation". The replicated launcher
/// points LD_PRELOAD at this library for every replica.
///
/// Configuration via the environment:
///   DIEHARD_HEAP_SIZE   heap reservation in bytes (default 384 MB),
///                       reserved per shard (lazily committed, so shards
///                       cost address space rather than memory)
///   DIEHARD_M           expansion factor M (default 2)
///   DIEHARD_SEED        RNG seed; 0 or unset = truly random per process
///   DIEHARD_SHARDS      heap shard count; unset/0 = one per CPU, clamped to
///                       [1, 64]. Replicated mode defaults to 1 so a
///                       replica's allocation sequence stays deterministic
///                       per seed regardless of thread scheduling.
///   DIEHARD_REPLICATED  "1" enables random object fill (replica mode)
///   DIEHARD_OVERFLOW    "0" disables overflow routing (default on): with
///                       routing, a thread whose home shard's size-class
///                       partition is at its 1/M bound borrows capacity
///                       from the least-loaded sibling shard instead of
///                       failing the allocation
///   DIEHARD_TCACHE      K: per-thread, per-size-class cached slot count
///                       for the lock-free fast path (default 32 in
///                       sharded mode; 0 disables). Forced off in
///                       replicated mode — replicas must stay
///                       deterministic per seed regardless of thread
///                       timing — and under an explicit DIEHARD_SHARDS=1,
///                       where bit-identity with a lone DieHardHeap is
///                       being enforced.
///   DIEHARD_TCACHE_ADAPT "1" adapts each cache's per-class K to the
///                       thread's traffic: frequent refills double K
///                       toward a cap (8x the base), idle classes halve
///                       it and return the surplus slots to their
///                       partition. Off by default; meaningless without
///                       the thread cache.
///   DIEHARD_SWEEPER     "1" starts the background epoch sweeper: periodic
///                       passes drain idle partitions' remote-free
///                       sidecars, age out quiet threads' caches, return
///                       quiet partitions' object-free pages to the OS and
///                       publish the pressure table overflow routing ranks
///                       from. Off by default, and forced off in
///                       replicated mode — a concurrent maintenance thread
///                       would perturb a replica's per-seed determinism.
///   DIEHARD_SWEEP_MS    milliseconds between sweeper passes (default 100,
///                       clamped to >= 1); meaningless without the sweeper
///   DIEHARD_PAGE_RETURN how released page spans are handed back to the
///                       OS: "dontneed" (default; MADV_DONTNEED, RSS drops
///                       immediately), "free" (MADV_FREE where the kernel
///                       supports it — pages stay resident until memory
///                       pressure, cheaper refaults; falls back to
///                       dontneed), or "off" (never release pages).
///   DIEHARD_THP         "1" backs the always-resident metadata mappings
///                       (allocation bitmaps, sidecar link words) with
///                       transparent huge pages (MADV_HUGEPAGE) to cut TLB
///                       pressure on the fast path. Off by default.
///   DIEHARD_STATS       "1" dumps a JSON stats line (the lock-free
///                       statsApprox() snapshot) at process exit to the
///                       process's startup stderr; any other value is
///                       taken as a file path to append the line to.
///
/// Locking: there is no global malloc lock. After initialization the
/// steady-state malloc/free is a thread-cache array pop/push with no lock
/// at all (DIEHARD_TCACHE); refills and same-shard deferred-free flushes
/// take exactly one *partition* lock (one size class of one shard) per
/// batch, and cross-shard flush batches take no remote lock at all — each
/// pointer is pushed onto the owning partition's lock-free remote-free
/// sidecar and materialized by the next thread holding that lock anyway.
/// With the cache off, every entry point goes straight into ShardedHeap's
/// per-partition locking — the calling thread's home shard for allocation,
/// the owner of the freed pointer for frees — or the dedicated
/// large-object lock. The one remaining global mutex is a narrow
/// constructor guard that serializes first-time heap construction and is
/// never touched again once the heap pointer is published.
///
/// Re-entrancy: constructing the heap allocates metadata (bitmaps and the
/// shard address registry), which re-enters malloc on the same thread. The
/// constructor guard is recursive, and those nested requests are served from
/// a static bootstrap arena; frees of bootstrap memory are ignored forever
/// after.
///
//===----------------------------------------------------------------------===//

#include "core/ShardedHeap.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <new>

#include <fcntl.h>
#include <pthread.h>
#include <unistd.h>

using diehard::DieHardOptions;
using diehard::ShardedHeap;
using diehard::ShardedHeapOptions;

namespace {

// Narrow constructor guard: recursive, because the nested (bootstrap)
// mallocs during heap construction run on the same thread that already
// holds it. Only taken while TheHeap is still null.
pthread_mutex_t ConstructionLock = PTHREAD_RECURSIVE_MUTEX_INITIALIZER_NP;

struct LockGuard {
  LockGuard() { pthread_mutex_lock(&ConstructionLock); }
  ~LockGuard() { pthread_mutex_unlock(&ConstructionLock); }
};

// Bootstrap arena for allocations made while the heap itself is being
// constructed (bitmap storage, registry nodes and friends).
constexpr size_t BootstrapBytes = 4 << 20;
alignas(16) char BootstrapArena[BootstrapBytes];
size_t BootstrapUsed = 0;
bool ConstructingHeap = false; // Guarded by ConstructionLock.

bool isBootstrapPointer(const void *Ptr) {
  const char *P = static_cast<const char *>(Ptr);
  return P >= BootstrapArena && P < BootstrapArena + BootstrapBytes;
}

void *bootstrapAllocate(size_t Size) {
  size_t Aligned = (Size + 15) & ~size_t(15);
  if (BootstrapUsed + Aligned > BootstrapBytes)
    return nullptr;
  void *Ptr = BootstrapArena + BootstrapUsed;
  BootstrapUsed += Aligned;
  return Ptr;
}

/// realloc support: bootstrap blocks have no recorded size, so copy the
/// requested size, clamped to the end of the arena so the read cannot run
/// past it.
void copyFromBootstrap(void *Fresh, const void *Ptr, size_t Size) {
  size_t Avail = static_cast<size_t>(BootstrapArena + BootstrapBytes -
                                     static_cast<const char *>(Ptr));
  std::memcpy(Fresh, Ptr, Size < Avail ? Size : Avail);
}

alignas(ShardedHeap) char HeapStorage[sizeof(ShardedHeap)];
std::atomic<ShardedHeap *> TheHeap{nullptr};

size_t envSize(const char *Name, size_t Default) {
  const char *V = std::getenv(Name);
  if (V == nullptr || *V == '\0')
    return Default;
  char *End = nullptr;
  unsigned long long Parsed = std::strtoull(V, &End, 10);
  return End != V ? static_cast<size_t>(Parsed) : Default;
}

double envDouble(const char *Name, double Default) {
  const char *V = std::getenv(Name);
  if (V == nullptr || *V == '\0')
    return Default;
  char *End = nullptr;
  double Parsed = std::strtod(V, &End);
  return End != V && Parsed > 1.0 ? Parsed : Default;
}

bool envFlag(const char *Name, bool Default) {
  const char *V = std::getenv(Name);
  if (V == nullptr || *V == '\0')
    return Default;
  return V[0] != '0';
}

/// Resolves the shard count: DIEHARD_SHARDS wins; otherwise replicas get a
/// single deterministic shard and stand-alone processes one shard per CPU
/// (0 lets ShardedHeap ask the OS).
size_t envShards(bool Replicated) {
  size_t Explicit = envSize("DIEHARD_SHARDS", 0);
  if (Explicit != 0)
    return Explicit < ShardedHeap::MaxShards ? Explicit
                                             : ShardedHeap::MaxShards;
  return Replicated ? 1 : 0;
}

/// Resolves the thread-cache size K: DIEHARD_TCACHE wins (0 disables),
/// default 32 — but forced off for replicas (per-seed determinism must not
/// depend on thread timing) and under an explicit DIEHARD_SHARDS=1 (the
/// bit-identity-with-a-lone-heap configuration).
size_t envThreadCache(bool Replicated) {
  if (Replicated || envSize("DIEHARD_SHARDS", 0) == 1)
    return 0;
  return envSize("DIEHARD_TCACHE", 32);
}

/// Where the DIEHARD_STATS dump goes: a load-time dup of stderr (or an
/// opened file), -1 when disabled. Dup'ed early because applications (the
/// coreutils close_stdout idiom among them) may close their streams from
/// their own atexit handlers, which run before our DSO destructor.
int StatsFd = -1;

/// DIEHARD_STATS exit hook: dump the lock-free stats snapshot without
/// calling anything that might allocate mid-teardown.
void dumpStatsAtExit() {
  diehard::ShardedHeap *H = TheHeap.load(std::memory_order_acquire);
  if (H == nullptr || StatsFd < 0)
    return;
  diehard::DieHardStats S = H->statsApprox();
  char Line[1024];
  int N = std::snprintf(
      Line, sizeof(Line),
      "{\"diehard_stats\":{\"allocations\":%llu,\"frees\":%llu,"
      "\"failed\":%llu,\"ignored_frees\":%llu,\"large_allocations\":%llu,"
      "\"large_frees\":%llu,\"overflow\":%llu,\"cached_slots\":%llu,"
      "\"cache_refills\":%llu,\"cache_flushes\":%llu,"
      "\"remote_frees\":%llu,\"sidecar_drains\":%llu,"
      "\"sweep_passes\":%llu,\"sweeper_drained\":%llu,"
      "\"aged_caches\":%llu,\"pages_returned\":%llu,"
      "\"partial_returns\":%llu,\"spans_released\":%llu,"
      "\"mesh_candidates\":%llu,\"pages_meshed\":%llu,"
      "\"meshed_bytes\":%llu,\"probes\":%llu,"
      "\"realloc_rejects\":%llu}}\n",
      static_cast<unsigned long long>(S.Allocations),
      static_cast<unsigned long long>(S.Frees),
      static_cast<unsigned long long>(S.FailedAllocations),
      static_cast<unsigned long long>(S.IgnoredFrees),
      static_cast<unsigned long long>(S.LargeAllocations),
      static_cast<unsigned long long>(S.LargeFrees),
      static_cast<unsigned long long>(S.OverflowAllocations),
      static_cast<unsigned long long>(S.CachedSlots),
      static_cast<unsigned long long>(S.CacheRefills),
      static_cast<unsigned long long>(S.CacheFlushes),
      static_cast<unsigned long long>(S.RemoteFrees),
      static_cast<unsigned long long>(S.SidecarDrains),
      static_cast<unsigned long long>(S.SweepPasses),
      static_cast<unsigned long long>(S.SweeperDrainedRemote),
      static_cast<unsigned long long>(S.AgedCaches),
      static_cast<unsigned long long>(S.PagesReturned),
      static_cast<unsigned long long>(S.PartialReturns),
      static_cast<unsigned long long>(S.SpansReleased),
      static_cast<unsigned long long>(S.MeshCandidates),
      static_cast<unsigned long long>(S.PagesMeshed),
      static_cast<unsigned long long>(S.MeshedBytes),
      static_cast<unsigned long long>(S.Probes),
      static_cast<unsigned long long>(S.ReallocRejects));
  if (N > 0)
    (void)!::write(StatsFd, Line, static_cast<size_t>(N));
}

/// Constructs the heap on first use. Must be called with ConstructionLock
/// held and ConstructingHeap false.
ShardedHeap *constructHeap() {
  ConstructingHeap = true;
  ShardedHeapOptions Options;
  Options.Heap.HeapSize = envSize("DIEHARD_HEAP_SIZE", Options.Heap.HeapSize);
  Options.Heap.M = envDouble("DIEHARD_M", Options.Heap.M);
  Options.Heap.Seed = envSize("DIEHARD_SEED", 0);
  const char *Replicated = std::getenv("DIEHARD_REPLICATED");
  bool IsReplica = Replicated != nullptr && Replicated[0] == '1';
  if (IsReplica) {
    Options.Heap.RandomFillObjects = true;
    Options.Heap.RandomFillOnFree = true;
  }
  Options.NumShards = envShards(IsReplica);
  Options.OverflowRouting = envFlag("DIEHARD_OVERFLOW", true);
  Options.ThreadCacheSlots = envThreadCache(IsReplica);
  Options.ThreadCacheAdaptive = envFlag("DIEHARD_TCACHE_ADAPT", false);
  // Replicas never run the sweeper: its thread would interleave with the
  // replica's allocation sequence and break per-seed determinism.
  Options.Sweeper = !IsReplica && envFlag("DIEHARD_SWEEPER", false);
  // Meshing is likewise replica-incompatible (random fill relies on pages
  // keeping their contents; a meshed donor's punched frame refaults zero).
  Options.Heap.Meshing = !IsReplica && envFlag("DIEHARD_MESH", false);
  size_t SweepMs = envSize("DIEHARD_SWEEP_MS", Options.SweepIntervalMs);
  Options.SweepIntervalMs =
      SweepMs > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(SweepMs);
  ShardedHeap *H = new (HeapStorage) ShardedHeap(Options);
  ConstructingHeap = false;
  TheHeap.store(H, std::memory_order_release);
  return H;
}

/// Static hook pair for the stats dump. The constructor resolves the sink
/// while the process's descriptors are still pristine; the destructor —
/// registered at shim load, hence run after the application's own atexit
/// handlers — emits the line. (Registering via atexit() from the lazily
/// constructed heap is not an option: the first malloc can come from the
/// dynamic loader, before atexit() works.)
struct StatsDumper {
  StatsDumper() {
    const char *V = std::getenv("DIEHARD_STATS");
    if (V == nullptr || V[0] == '\0' || (V[0] == '0' && V[1] == '\0'))
      return; // Disabled.
    if (V[0] == '1' && V[1] == '\0')
      StatsFd = ::fcntl(2, F_DUPFD_CLOEXEC, 100); // Startup stderr.
    else
      StatsFd = ::open(V, O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  }
  ~StatsDumper() {
    dumpStatsAtExit();
    if (StatsFd >= 0)
      ::close(StatsFd);
  }
};
StatsDumper TheStatsDumper;

/// The slow path shared by the allocating entry points: either we are the
/// constructing thread re-entering malloc (serve from the arena, signalled
/// by returning null through \p FromBootstrap), or the heap needs to be
/// (raced to be) constructed.
ShardedHeap *getHeapSlow(bool &FromBootstrap) {
  LockGuard Guard;
  if (ConstructingHeap) {
    FromBootstrap = true;
    return nullptr;
  }
  FromBootstrap = false;
  ShardedHeap *H = TheHeap.load(std::memory_order_relaxed);
  return H != nullptr ? H : constructHeap();
}

} // namespace

extern "C" {

void *malloc(size_t Size) {
  ShardedHeap *H = TheHeap.load(std::memory_order_acquire);
  if (H == nullptr) {
    bool FromBootstrap;
    H = getHeapSlow(FromBootstrap);
    if (FromBootstrap)
      return bootstrapAllocate(Size);
  }
  void *Ptr = H->allocate(Size != 0 ? Size : 1);
  if (Ptr == nullptr)
    errno = ENOMEM;
  return Ptr;
}

void free(void *Ptr) {
  if (Ptr == nullptr || isBootstrapPointer(Ptr))
    return; // Bootstrap memory is permanent.
  ShardedHeap *H = TheHeap.load(std::memory_order_acquire);
  if (H == nullptr)
    return; // Pre-heap frees are foreign.
  H->deallocate(Ptr);
}

void *calloc(size_t Count, size_t Size) {
  ShardedHeap *H = TheHeap.load(std::memory_order_acquire);
  if (H == nullptr) {
    bool FromBootstrap;
    H = getHeapSlow(FromBootstrap);
    if (FromBootstrap) {
      if (Count != 0 && Size > SIZE_MAX / Count)
        return nullptr;
      void *Ptr = bootstrapAllocate(Count * Size);
      if (Ptr != nullptr)
        std::memset(Ptr, 0, Count * Size);
      return Ptr;
    }
  }
  void *Ptr = H->allocateZeroed(Count, Size != 0 ? Size : 1);
  if (Ptr == nullptr)
    errno = ENOMEM; // Covers the Count * Size overflow refusal too.
  return Ptr;
}

void *realloc(void *Ptr, size_t Size) {
  ShardedHeap *H = TheHeap.load(std::memory_order_acquire);
  if (H == nullptr) {
    bool FromBootstrap;
    H = getHeapSlow(FromBootstrap);
    if (FromBootstrap) {
      void *Fresh = bootstrapAllocate(Size);
      if (Fresh != nullptr && Ptr != nullptr && isBootstrapPointer(Ptr))
        copyFromBootstrap(Fresh, Ptr, Size);
      return Fresh;
    }
  }
  if (Ptr != nullptr && isBootstrapPointer(Ptr)) {
    void *Fresh = H->allocate(Size);
    if (Fresh != nullptr)
      copyFromBootstrap(Fresh, Ptr, Size);
    return Fresh;
  }
  void *Fresh = H->reallocate(Ptr, Size);
  // Size == 0 is the free-and-return-null contract, not a failure; a wild
  // pointer is refused with ENOMEM rather than the abort glibc would do.
  if (Fresh == nullptr && Size != 0)
    errno = ENOMEM;
  return Fresh;
}

int posix_memalign(void **Out, size_t Alignment, size_t Size) {
  if (Alignment < sizeof(void *) || (Alignment & (Alignment - 1)) != 0)
    return EINVAL;
  // Power-of-two size classes give natural alignment up to a page; larger
  // alignments are not supported by the randomized layout.
  if (Alignment > 4096)
    return ENOMEM;
  ShardedHeap *H = TheHeap.load(std::memory_order_acquire);
  if (H == nullptr) {
    bool FromBootstrap;
    H = getHeapSlow(FromBootstrap);
    if (FromBootstrap) {
      *Out = bootstrapAllocate(Size < Alignment ? Alignment : Size);
      return *Out != nullptr ? 0 : ENOMEM;
    }
  }
  size_t Request = Size < Alignment ? Alignment : Size;
  *Out = H->allocate(Request != 0 ? Request : 1);
  return *Out != nullptr ? 0 : ENOMEM;
}

void *aligned_alloc(size_t Alignment, size_t Size) {
  // Unlike posix_memalign, these report through errno.
  void *Ptr = nullptr;
  int Err = posix_memalign(&Ptr, Alignment, Size);
  if (Err == 0)
    return Ptr;
  errno = Err;
  return nullptr;
}

void *memalign(size_t Alignment, size_t Size) {
  void *Ptr = nullptr;
  int Err = posix_memalign(&Ptr, Alignment, Size);
  if (Err == 0)
    return Ptr;
  errno = Err;
  return nullptr;
}

size_t malloc_usable_size(void *Ptr) {
  if (Ptr == nullptr || isBootstrapPointer(Ptr))
    return 0;
  ShardedHeap *H = TheHeap.load(std::memory_order_acquire);
  if (H == nullptr)
    return 0;
  return H->getObjectSize(Ptr);
}

// --- Observability hooks ----------------------------------------------------
// Looked up with dlsym() by test victims and available to applications that
// want cache-tier visibility without a dependency on DieHard headers.

/// Slots currently claimed into thread caches across the process heap
/// (0 with the cache tier off or before the heap exists).
size_t diehard_cached_slots(void) {
  ShardedHeap *H = TheHeap.load(std::memory_order_acquire);
  return H != nullptr ? H->cachedSlots() : 0;
}

/// Flushes the calling thread's cache: deferred frees return to their
/// partitions, unused cached slots are reclaimed.
void diehard_flush_thread_cache(void) {
  ShardedHeap *H = TheHeap.load(std::memory_order_acquire);
  if (H != nullptr)
    H->flushThreadCache();
}

/// Cross-shard frees pushed through the lock-free remote-free sidecars so
/// far (0 before the heap exists). Lock-free.
size_t diehard_remote_frees(void) {
  ShardedHeap *H = TheHeap.load(std::memory_order_acquire);
  return H != nullptr ? static_cast<size_t>(H->remoteFrees()) : 0;
}

/// The calling thread's current adaptive batch size K for size class
/// \p Class (see DIEHARD_TCACHE_ADAPT), or 0 when the cache tier is off,
/// the class is out of range, or this thread has no cache yet.
size_t diehard_tcache_target_k(int Class) {
  ShardedHeap *H = TheHeap.load(std::memory_order_acquire);
  return H != nullptr ? H->threadCacheTargetK(Class) : 0;
}

/// Completed epoch-sweeper passes (see DIEHARD_SWEEPER); 0 with the
/// sweeper off or before the heap exists. Lock-free.
size_t diehard_sweep_passes(void) {
  ShardedHeap *H = TheHeap.load(std::memory_order_acquire);
  return H != nullptr ? static_cast<size_t>(H->sweepPasses()) : 0;
}

/// Quiet thread caches the sweeper has aged out so far. Lock-free.
size_t diehard_aged_caches(void) {
  ShardedHeap *H = TheHeap.load(std::memory_order_acquire);
  return H != nullptr ? static_cast<size_t>(H->agedCaches()) : 0;
}

/// Object-free data pages returned to the OS by the span scanner (see
/// DIEHARD_PAGE_RETURN). Lock-free.
size_t diehard_pages_returned(void) {
  ShardedHeap *H = TheHeap.load(std::memory_order_acquire);
  return H != nullptr ? static_cast<size_t>(H->pagesReturned()) : 0;
}

/// Partition maintenance scans that released at least one page. Lock-free.
size_t diehard_partial_returns(void) {
  ShardedHeap *H = TheHeap.load(std::memory_order_acquire);
  return H != nullptr ? static_cast<size_t>(H->partialReturns()) : 0;
}

/// Contiguous page runs advised away (one madvise call each). Lock-free.
size_t diehard_spans_released(void) {
  ShardedHeap *H = TheHeap.load(std::memory_order_acquire);
  return H != nullptr ? static_cast<size_t>(H->spansReleased()) : 0;
}

/// Donor pages meshed onto a survivor's physical frame by the sweeper's
/// mesh passes (see DIEHARD_MESH). Lock-free.
size_t diehard_pages_meshed(void) {
  ShardedHeap *H = TheHeap.load(std::memory_order_acquire);
  return H != nullptr ? static_cast<size_t>(H->pagesMeshed()) : 0;
}

} // extern "C"
