//===- interpose/Interpose.cpp - malloc/free interposition ----------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The libdiehard.so shim (Section 5.1). Loading this library with
/// LD_PRELOAD redirects all malloc/free calls of an unmodified binary to a
/// process-global DieHard heap — "DieHard works with binaries and supports
/// any language using explicit allocation". The replicated launcher points
/// LD_PRELOAD at this library for every replica.
///
/// Configuration via the environment:
///   DIEHARD_HEAP_SIZE   total heap reservation in bytes (default 384 MB)
///   DIEHARD_M           expansion factor M (default 2)
///   DIEHARD_SEED        RNG seed; 0 or unset = truly random per process
///   DIEHARD_REPLICATED  "1" enables random object fill (replica mode)
///
/// Re-entrancy: constructing the heap allocates metadata (the bitmaps),
/// which re-enters malloc on the same thread. Those nested requests are
/// served from a static bootstrap arena; frees of bootstrap memory are
/// ignored forever after.
///
//===----------------------------------------------------------------------===//

#include "core/DieHardHeap.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <new>

#include <pthread.h>

using diehard::DieHardHeap;
using diehard::DieHardOptions;

namespace {

// A recursive lock: the nested (bootstrap) malloc during heap construction
// runs on the same thread that already holds it.
pthread_mutex_t TheLock = PTHREAD_RECURSIVE_MUTEX_INITIALIZER_NP;

struct LockGuard {
  LockGuard() { pthread_mutex_lock(&TheLock); }
  ~LockGuard() { pthread_mutex_unlock(&TheLock); }
};

// Bootstrap arena for allocations made while the heap itself is being
// constructed (bitmap storage and friends).
constexpr size_t BootstrapBytes = 4 << 20;
alignas(16) char BootstrapArena[BootstrapBytes];
size_t BootstrapUsed = 0;
bool ConstructingHeap = false;

bool isBootstrapPointer(const void *Ptr) {
  const char *P = static_cast<const char *>(Ptr);
  return P >= BootstrapArena && P < BootstrapArena + BootstrapBytes;
}

void *bootstrapAllocate(size_t Size) {
  size_t Aligned = (Size + 15) & ~size_t(15);
  if (BootstrapUsed + Aligned > BootstrapBytes)
    return nullptr;
  void *Ptr = BootstrapArena + BootstrapUsed;
  BootstrapUsed += Aligned;
  return Ptr;
}

alignas(DieHardHeap) char HeapStorage[sizeof(DieHardHeap)];
DieHardHeap *TheHeap = nullptr;

size_t envSize(const char *Name, size_t Default) {
  const char *V = std::getenv(Name);
  if (V == nullptr || *V == '\0')
    return Default;
  char *End = nullptr;
  unsigned long long Parsed = std::strtoull(V, &End, 10);
  return End != V ? static_cast<size_t>(Parsed) : Default;
}

double envDouble(const char *Name, double Default) {
  const char *V = std::getenv(Name);
  if (V == nullptr || *V == '\0')
    return Default;
  char *End = nullptr;
  double Parsed = std::strtod(V, &End);
  return End != V && Parsed > 1.0 ? Parsed : Default;
}

DieHardHeap *getHeap() {
  if (TheHeap != nullptr)
    return TheHeap;
  ConstructingHeap = true;
  DieHardOptions Options;
  Options.HeapSize = envSize("DIEHARD_HEAP_SIZE", Options.HeapSize);
  Options.M = envDouble("DIEHARD_M", Options.M);
  Options.Seed = envSize("DIEHARD_SEED", 0);
  const char *Replicated = std::getenv("DIEHARD_REPLICATED");
  if (Replicated != nullptr && Replicated[0] == '1') {
    Options.RandomFillObjects = true;
    Options.RandomFillOnFree = true;
  }
  TheHeap = new (HeapStorage) DieHardHeap(Options);
  ConstructingHeap = false;
  return TheHeap;
}

} // namespace

extern "C" {

void *malloc(size_t Size) {
  LockGuard Guard;
  if (ConstructingHeap)
    return bootstrapAllocate(Size);
  return getHeap()->allocate(Size != 0 ? Size : 1);
}

void free(void *Ptr) {
  if (Ptr == nullptr)
    return;
  LockGuard Guard;
  if (isBootstrapPointer(Ptr) || TheHeap == nullptr)
    return; // Bootstrap memory is permanent; pre-heap frees are foreign.
  TheHeap->deallocate(Ptr);
}

void *calloc(size_t Count, size_t Size) {
  LockGuard Guard;
  if (ConstructingHeap) {
    if (Count != 0 && Size > SIZE_MAX / Count)
      return nullptr;
    void *Ptr = bootstrapAllocate(Count * Size);
    if (Ptr != nullptr)
      std::memset(Ptr, 0, Count * Size);
    return Ptr;
  }
  return getHeap()->allocateZeroed(Count, Size != 0 ? Size : 1);
}

void *realloc(void *Ptr, size_t Size) {
  LockGuard Guard;
  if (ConstructingHeap)
    return bootstrapAllocate(Size);
  if (Ptr != nullptr && isBootstrapPointer(Ptr)) {
    // Bootstrap blocks have no recorded size; conservatively copy `Size`
    // bytes (bootstrap blocks only ever grow during construction).
    void *Fresh = getHeap()->allocate(Size);
    if (Fresh != nullptr)
      std::memcpy(Fresh, Ptr, Size);
    return Fresh;
  }
  return getHeap()->reallocate(Ptr, Size);
}

int posix_memalign(void **Out, size_t Alignment, size_t Size) {
  if (Alignment < sizeof(void *) || (Alignment & (Alignment - 1)) != 0)
    return EINVAL;
  // Power-of-two size classes give natural alignment up to a page; larger
  // alignments are not supported by the randomized layout.
  if (Alignment > 4096)
    return ENOMEM;
  LockGuard Guard;
  if (ConstructingHeap) {
    *Out = bootstrapAllocate(Size < Alignment ? Alignment : Size);
    return *Out != nullptr ? 0 : ENOMEM;
  }
  size_t Request = Size < Alignment ? Alignment : Size;
  *Out = getHeap()->allocate(Request != 0 ? Request : 1);
  return *Out != nullptr ? 0 : ENOMEM;
}

void *aligned_alloc(size_t Alignment, size_t Size) {
  void *Ptr = nullptr;
  return posix_memalign(&Ptr, Alignment, Size) == 0 ? Ptr : nullptr;
}

void *memalign(size_t Alignment, size_t Size) {
  void *Ptr = nullptr;
  return posix_memalign(&Ptr, Alignment, Size) == 0 ? Ptr : nullptr;
}

size_t malloc_usable_size(void *Ptr) {
  if (Ptr == nullptr)
    return 0;
  LockGuard Guard;
  if (isBootstrapPointer(Ptr) || TheHeap == nullptr)
    return 0;
  return TheHeap->getObjectSize(Ptr);
}

} // extern "C"
