//===- analysis/MonteCarlo.cpp --------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the Monte-Carlo simulators that cross-check the
/// Section 6 closed forms.
///
//===----------------------------------------------------------------------===//

#include "analysis/MonteCarlo.h"

#include "support/Bitmap.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace diehard {

double simulateOverflowMask(size_t HeapSlots, size_t LiveSlots,
                            int OverflowObjects, int Replicas, int Trials,
                            Rng &Rand) {
  assert(LiveSlots <= HeapSlots && "live set cannot exceed the heap");
  assert(Trials > 0 && Replicas >= 1);
  double LiveFraction =
      static_cast<double>(LiveSlots) / static_cast<double>(HeapSlots);
  int Masked = 0;
  for (int T = 0; T < Trials; ++T) {
    bool AnyReplicaSurvived = false;
    for (int R = 0; R < Replicas && !AnyReplicaSurvived; ++R) {
      // Each replica has its own random layout, so each overwritten slot is
      // live independently with probability L/H (the paper's model treats
      // the overflow as writes to uniformly random heap locations).
      bool HitLive = false;
      for (int O = 0; O < OverflowObjects && !HitLive; ++O)
        HitLive = Rand.nextDouble() < LiveFraction;
      AnyReplicaSurvived = !HitLive;
    }
    Masked += AnyReplicaSurvived ? 1 : 0;
  }
  return static_cast<double>(Masked) / Trials;
}

double simulateDanglingMask(size_t FreeSlots, size_t Allocations,
                            int Replicas, int Trials, Rng &Rand) {
  assert(FreeSlots > 0 && Trials > 0 && Replicas >= 1);
  if (Allocations >= FreeSlots)
    return 0.0;
  int Masked = 0;
  std::vector<uint32_t> Slots(FreeSlots);
  for (int T = 0; T < Trials; ++T) {
    bool AnyReplicaSurvived = false;
    for (int R = 0; R < Replicas && !AnyReplicaSurvived; ++R) {
      // Sample `Allocations` distinct slots out of FreeSlots via a partial
      // Fisher-Yates shuffle; the prematurely freed object lives in slot 0
      // by symmetry.
      for (uint32_t I = 0; I < Slots.size(); ++I)
        Slots[I] = I;
      bool Reused = false;
      for (size_t A = 0; A < Allocations && !Reused; ++A) {
        uint32_t Pick =
            A + Rand.nextBounded(static_cast<uint32_t>(FreeSlots - A));
        std::swap(Slots[A], Slots[Pick]);
        Reused = Slots[A] == 0;
      }
      AnyReplicaSurvived = !Reused;
    }
    Masked += AnyReplicaSurvived ? 1 : 0;
  }
  return static_cast<double>(Masked) / Trials;
}

double simulateUninitDetect(int Bits, int Replicas, int Trials, Rng &Rand) {
  assert(Bits >= 1 && Bits <= 32 && Trials > 0 && Replicas >= 1);
  uint32_t Mask = Bits == 32 ? ~uint32_t(0) : ((uint32_t(1) << Bits) - 1);
  int Detected = 0;
  std::vector<uint32_t> Values(static_cast<size_t>(Replicas));
  for (int T = 0; T < Trials; ++T) {
    for (auto &V : Values)
      V = Rand.next() & Mask;
    // Detection requires all replicas to disagree pairwise.
    std::sort(Values.begin(), Values.end());
    bool AllDistinct =
        std::adjacent_find(Values.begin(), Values.end()) == Values.end();
    Detected += AllDistinct ? 1 : 0;
  }
  return static_cast<double>(Detected) / Trials;
}

} // namespace diehard
