//===- analysis/Probability.cpp -------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the Section 6 closed-form miss probabilities.
///
//===----------------------------------------------------------------------===//

#include "analysis/Probability.h"

#include <cassert>
#include <cmath>

namespace diehard {

double maskOverflowProbability(double FreeFraction, int OverflowObjects,
                               int Replicas) {
  assert(FreeFraction >= 0.0 && FreeFraction <= 1.0 &&
         "F/H must be a fraction");
  assert(OverflowObjects >= 0 && "overflow size cannot be negative");
  assert(Replicas >= 1 && Replicas != 2 &&
         "the voter needs one replica or at least three");
  // Odds one replica's overflow hits only free space: (F/H)^O.
  double PerReplica = std::pow(FreeFraction, OverflowObjects);
  // Masked if at least one replica survives.
  return 1.0 - std::pow(1.0 - PerReplica, Replicas);
}

double maskDanglingProbability(size_t FreeBytes, size_t ObjectSize,
                               size_t Allocations, int Replicas) {
  assert(ObjectSize > 0 && "object size must be positive");
  assert(Replicas >= 1 && Replicas != 2 &&
         "the voter needs one replica or at least three");
  double Q = static_cast<double>(FreeBytes) /
             static_cast<double>(ObjectSize); // Slots in the bitmap.
  double A = static_cast<double>(Allocations);
  if (A >= Q)
    return 0.0; // Beyond the theorem's A <= F/S validity range.
  // One replica overwrites the slot with probability A/Q; masking needs at
  // least one replica not to.
  return 1.0 - std::pow(A / Q, Replicas);
}

double detectUninitReadProbability(int Bits, int Replicas) {
  assert(Bits >= 1 && Bits < 64 && "bit count out of supported range");
  assert(Replicas >= 1 && "need at least one replica");
  // Product form of (2^B)! / ((2^B - k)! 2^(Bk)): prod_{i<k} (2^B - i)/2^B.
  double Domain = std::ldexp(1.0, Bits); // 2^B.
  if (Replicas > Domain)
    return 0.0; // Pigeonhole: some pair of replicas must collide.
  double P = 1.0;
  for (int I = 0; I < Replicas; ++I)
    P *= (Domain - I) / Domain;
  return P;
}

double expectedProbes(double M) {
  assert(M > 1.0 && "expansion factor must exceed 1");
  return 1.0 / (1.0 - 1.0 / M);
}

} // namespace diehard
