//===- analysis/Probability.h - Theorems 1-3 closed forms -------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closed-form probabilities from Section 6 of the paper. These quantify the
/// probabilistic memory safety of the stand-alone (k = 1) and replicated
/// (k >= 3) configurations and are what Figures 4(a) and 4(b) plot.
///
/// Notation (Figure 1): M is the heap expansion factor, H the heap size, L
/// the maximum live size (L <= H/M), F = H - L the free space, O the number
/// of objects' worth of bytes overflowed, A the allocations intervening
/// after a premature free, S the object size, k the number of replicas, and
/// B the number of uninitialized bits read.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_ANALYSIS_PROBABILITY_H
#define DIEHARD_ANALYSIS_PROBABILITY_H

#include <cstddef>

namespace diehard {

/// Theorem 1: probability that a buffer overflow of \p OverflowObjects
/// objects' worth of bytes overwrites no live data in at least one of
/// \p Replicas replicas, with \p FreeFraction = F/H free space.
///
/// P = 1 - (1 - (F/H)^O)^k. Valid for k != 2 (a two-replica voter cannot
/// break ties); asserts on k == 2.
double maskOverflowProbability(double FreeFraction, int OverflowObjects,
                               int Replicas);

/// Theorem 2: lower bound on the probability that a prematurely freed object
/// of size \p ObjectSize is still intact after \p Allocations intervening
/// allocations, with \p FreeBytes of free heap per replica.
///
/// P >= 1 - (A/(F/S))^k, valid for A <= F/S; asserts on k == 2.
double maskDanglingProbability(size_t FreeBytes, size_t ObjectSize,
                               size_t Allocations, int Replicas);

/// Theorem 3: probability that an uninitialized read of \p Bits bits is
/// detected by \p Replicas replicas (all replicas must disagree), assuming a
/// non-narrowing, non-widening computation.
///
/// P = (2^B)! / ((2^B - k)! * 2^(B*k)), computed in product form so large B
/// does not overflow. Requires k <= 2^B for a nonzero result.
double detectUninitReadProbability(int Bits, int Replicas);

/// Expected number of bitmap probes per allocation for heap expansion factor
/// \p M: 1 / (1 - 1/M) (Section 4.2).
double expectedProbes(double M);

} // namespace diehard

#endif // DIEHARD_ANALYSIS_PROBABILITY_H
