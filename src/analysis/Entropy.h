//===- analysis/Entropy.h - layout unpredictability -------------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Estimators for allocation-layout unpredictability, quantifying the
/// paper's security observation (Section 8): base-address randomization
/// provides little protection, whereas "DieHard makes it difficult for an
/// attacker to predict the layout or adjacency of objects in any replica".
/// We measure two attacker-relevant quantities:
///
///  * the entropy of an object's placement (how many guesses an attacker
///    needs to locate a victim object), and
///  * the adjacency rate of consecutive allocations (how reliably a heap
///    groom places attacker data next to a victim).
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_ANALYSIS_ENTROPY_H
#define DIEHARD_ANALYSIS_ENTROPY_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace diehard {

/// Result of an entropy estimation over observed placements.
struct EntropyEstimate {
  double ShannonBits = 0.0; ///< Plug-in Shannon entropy of the samples.
  double MinEntropyBits = 0.0; ///< -log2(frequency of the modal value).
  size_t DistinctValues = 0;   ///< Support size observed.
  int Samples = 0;
};

/// Estimates the entropy of a placement function: \p PlacementForSeed maps
/// an allocator seed to the observed placement (e.g. the slot offset of
/// the first allocation). Called with \p Samples distinct seeds.
EntropyEstimate estimatePlacementEntropy(
    const std::function<uint64_t(uint64_t Seed)> &PlacementForSeed,
    int Samples);

/// Measures how often two consecutive same-size allocations are adjacent
/// in memory (distance exactly the object size). \p PairForSeed returns
/// the two addresses for a fresh allocator seeded with the given seed.
/// \returns the adjacency rate in [0, 1] — ~1 for bump/freelist
/// allocators, ~1/slots for DieHard.
double measureAdjacencyRate(
    const std::function<std::pair<uintptr_t, uintptr_t>(uint64_t Seed)>
        &PairForSeed,
    size_t ObjectSize, int Samples);

} // namespace diehard

#endif // DIEHARD_ANALYSIS_ENTROPY_H
