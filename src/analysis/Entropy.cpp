//===- analysis/Entropy.cpp -----------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the layout-entropy and adjacency-rate estimators.
///
//===----------------------------------------------------------------------===//

#include "analysis/Entropy.h"

#include <cassert>
#include <cmath>
#include <map>

namespace diehard {

EntropyEstimate estimatePlacementEntropy(
    const std::function<uint64_t(uint64_t Seed)> &PlacementForSeed,
    int Samples) {
  assert(Samples > 0 && "need at least one sample");
  std::map<uint64_t, int> Counts;
  for (int S = 0; S < Samples; ++S)
    ++Counts[PlacementForSeed(static_cast<uint64_t>(S) * 2654435761u + 1)];

  EntropyEstimate Estimate;
  Estimate.Samples = Samples;
  Estimate.DistinctValues = Counts.size();
  int Modal = 0;
  double Shannon = 0.0;
  for (const auto &[Value, Count] : Counts) {
    double P = static_cast<double>(Count) / Samples;
    Shannon -= P * std::log2(P);
    Modal = Count > Modal ? Count : Modal;
  }
  Estimate.ShannonBits = Shannon;
  Estimate.MinEntropyBits =
      -std::log2(static_cast<double>(Modal) / Samples);
  return Estimate;
}

double measureAdjacencyRate(
    const std::function<std::pair<uintptr_t, uintptr_t>(uint64_t Seed)>
        &PairForSeed,
    size_t ObjectSize, int Samples) {
  assert(Samples > 0 && "need at least one sample");
  int Adjacent = 0;
  for (int S = 0; S < Samples; ++S) {
    auto [First, Second] =
        PairForSeed(static_cast<uint64_t>(S) * 40503u + 11);
    uintptr_t Delta = Second > First ? Second - First : First - Second;
    Adjacent += Delta == ObjectSize ? 1 : 0;
  }
  return static_cast<double>(Adjacent) / Samples;
}

} // namespace diehard
