//===- analysis/MonteCarlo.h - simulation cross-checks ----------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monte-Carlo simulators for the Section 6 analyses. Each simulator models
/// the randomized heap abstractly (a bitmap of slots with uniform placement)
/// and estimates the same probabilities as the closed forms in
/// Probability.h, providing an independent check that the formulas — and the
/// allocator that realizes them — are consistent.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_ANALYSIS_MONTECARLO_H
#define DIEHARD_ANALYSIS_MONTECARLO_H

#include "support/Rng.h"

#include <cstddef>

namespace diehard {

/// Estimates Theorem 1 by simulation: a heap of \p HeapSlots with
/// \p LiveSlots live objects per replica; an overflow writes
/// \p OverflowObjects uniformly random slots; the overflow is masked when at
/// least one of \p Replicas replicas has no live slot hit.
double simulateOverflowMask(size_t HeapSlots, size_t LiveSlots,
                            int OverflowObjects, int Replicas, int Trials,
                            Rng &Rand);

/// Estimates Theorem 2 by simulation: one slot out of \p FreeSlots is freed
/// prematurely; \p Allocations subsequent allocations each take a uniformly
/// random currently-free slot (no intervening frees, the worst case); the
/// error is masked when at least one replica never reuses the slot.
double simulateDanglingMask(size_t FreeSlots, size_t Allocations,
                            int Replicas, int Trials, Rng &Rand);

/// Estimates Theorem 3 by simulation: each of \p Replicas replicas fills a
/// \p Bits-bit region with random data; the uninitialized read is detected
/// when all replicas pairwise disagree.
double simulateUninitDetect(int Bits, int Replicas, int Trials, Rng &Rand);

} // namespace diehard

#endif // DIEHARD_ANALYSIS_MONTECARLO_H
