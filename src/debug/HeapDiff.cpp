//===- debug/HeapDiff.cpp -------------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the heap-differencing debugger.
///
//===----------------------------------------------------------------------===//

#include "debug/HeapDiff.h"

#include "core/DieHardHeap.h"

#include <cstdio>
#include <cstring>

namespace diehard {

HeapSnapshot HeapSnapshot::capture(const DieHardHeap &Heap) {
  HeapSnapshot Snap;
  Snap.Seed = Heap.seed();
  Heap.forEachLiveObject([&](int Class, size_t Slot, const void *Ptr,
                             size_t Size) {
    ObjectImage Image;
    Image.Size = Size;
    Image.Bytes.resize(Size);
    std::memcpy(Image.Bytes.data(), Ptr, Size);
    Snap.Objects.emplace(std::make_pair(Class, Slot), std::move(Image));
    ++Snap.ClassCounts[static_cast<size_t>(Class)];
  });
  return Snap;
}

std::vector<HeapDiffEntry>
diffHeapSnapshots(const HeapSnapshot &Reference,
                  const HeapSnapshot &Suspect) {
  std::vector<HeapDiffEntry> Diff;

  auto RefIt = Reference.Objects.begin();
  auto SusIt = Suspect.Objects.begin();
  while (RefIt != Reference.Objects.end() ||
         SusIt != Suspect.Objects.end()) {
    bool TakeRef = SusIt == Suspect.Objects.end() ||
                   (RefIt != Reference.Objects.end() &&
                    RefIt->first < SusIt->first);
    bool TakeSus = RefIt == Reference.Objects.end() ||
                   (SusIt != Suspect.Objects.end() &&
                    SusIt->first < RefIt->first);
    if (TakeRef) {
      Diff.push_back(HeapDiffEntry{HeapDiffKind::OnlyInReference,
                                   RefIt->first.first, RefIt->first.second,
                                   RefIt->second.Size, 0, 0});
      ++RefIt;
      continue;
    }
    if (TakeSus) {
      Diff.push_back(HeapDiffEntry{HeapDiffKind::OnlyInSuspect,
                                   SusIt->first.first, SusIt->first.second,
                                   SusIt->second.Size, 0, 0});
      ++SusIt;
      continue;
    }
    // Same slot live in both: compare contents.
    const auto &RefBytes = RefIt->second.Bytes;
    const auto &SusBytes = SusIt->second.Bytes;
    size_t N = RefBytes.size() < SusBytes.size() ? RefBytes.size()
                                                 : SusBytes.size();
    size_t First = N, Last = 0;
    for (size_t B = 0; B < N; ++B) {
      if (RefBytes[B] != SusBytes[B]) {
        if (First == N)
          First = B;
        Last = B;
      }
    }
    if (First != N)
      Diff.push_back(HeapDiffEntry{HeapDiffKind::ContentChanged,
                                   RefIt->first.first, RefIt->first.second,
                                   RefIt->second.Size, First, Last});
    ++RefIt;
    ++SusIt;
  }
  return Diff;
}

std::string formatHeapDiff(const std::vector<HeapDiffEntry> &Diff) {
  if (Diff.empty())
    return "heaps identical\n";
  std::string Out;
  char Line[160];
  for (const HeapDiffEntry &E : Diff) {
    switch (E.Kind) {
    case HeapDiffKind::ContentChanged:
      std::snprintf(Line, sizeof(Line),
                    "class %2d slot %6zu (%5zu B): bytes [%zu, %zu] "
                    "overwritten\n",
                    E.Class, E.Slot, E.Size, E.FirstByte, E.LastByte);
      break;
    case HeapDiffKind::OnlyInReference:
      std::snprintf(Line, sizeof(Line),
                    "class %2d slot %6zu (%5zu B): live only in reference "
                    "run\n",
                    E.Class, E.Slot, E.Size);
      break;
    case HeapDiffKind::OnlyInSuspect:
      std::snprintf(Line, sizeof(Line),
                    "class %2d slot %6zu (%5zu B): live only in suspect "
                    "run\n",
                    E.Class, E.Slot, E.Size);
      break;
    }
    Out += Line;
  }
  return Out;
}

} // namespace diehard
