//===- debug/HeapDiff.h - heap differencing debugger ------------*- C++ -*-===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory-corruption debugger the paper sketches in its conclusion
/// (Section 9): "By differencing the heaps of correct and incorrect
/// executions of applications, it may be possible to pinpoint the exact
/// locations of memory errors and report these as part of a crash dump
/// without the crash."
///
/// The workflow: run the program twice with the *same* DieHard seed — the
/// layouts are then identical — once as the reference and once with the
/// suspect input (or fault), snapshot both heaps, and diff. Any slot whose
/// contents differ (or whose liveness differs) is a victim or evidence of
/// the error; the byte range narrows the write.
///
//===----------------------------------------------------------------------===//

#ifndef DIEHARD_DEBUG_HEAPDIFF_H
#define DIEHARD_DEBUG_HEAPDIFF_H

#include "core/SizeClass.h"

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace diehard {

class DieHardHeap;

/// A point-in-time copy of every live object in a heap.
class HeapSnapshot {
public:
  /// Captures all live small objects of \p Heap (contents copied). The walk
  /// follows the heap's partition decomposition — class-major, slot
  /// ascending — so same-seed executions produce snapshots whose keys line
  /// up pairwise.
  static HeapSnapshot capture(const DieHardHeap &Heap);

  /// Number of live objects captured.
  size_t objectCount() const { return Objects.size(); }

  /// Live objects captured in size class \p Class (one partition's worth).
  /// Diffing these per-partition tallies first cheaply localizes which
  /// regions diverged before the byte-level walk.
  size_t objectsInClass(int Class) const {
    return ClassCounts[static_cast<size_t>(Class)];
  }

  /// The seed of the heap this snapshot came from (diffs require equal
  /// seeds to be meaningful).
  uint64_t heapSeed() const { return Seed; }

private:
  friend std::vector<struct HeapDiffEntry>
  diffHeapSnapshots(const HeapSnapshot &Reference,
                    const HeapSnapshot &Suspect);

  struct ObjectImage {
    size_t Size;
    std::vector<uint8_t> Bytes;
  };

  /// Keyed by (class, slot): identical seeds make keys comparable across
  /// executions.
  std::map<std::pair<int, size_t>, ObjectImage> Objects;
  std::array<size_t, SizeClass::NumClasses> ClassCounts = {};
  uint64_t Seed = 0;
};

/// What kind of divergence a diff entry reports.
enum class HeapDiffKind {
  ContentChanged,  ///< Same object live in both, bytes differ.
  OnlyInReference, ///< Live in the reference run only (lost object).
  OnlyInSuspect,   ///< Live in the suspect run only (extra object).
};

/// One divergent slot between two same-seed executions.
struct HeapDiffEntry {
  HeapDiffKind Kind;
  int Class;        ///< Size class of the slot.
  size_t Slot;      ///< Slot index within the class.
  size_t Size;      ///< Object size in bytes.
  size_t FirstByte; ///< First differing byte (ContentChanged only).
  size_t LastByte;  ///< Last differing byte (ContentChanged only).
};

/// Compares two snapshots taken at the same program point of two same-seed
/// executions; returns every divergent slot. An overflow shows up as
/// ContentChanged entries whose byte range abuts the end of a neighbouring
/// (in slot space) object; a lost update through a dangling pointer shows
/// up the same way on the reused slot.
std::vector<HeapDiffEntry>
diffHeapSnapshots(const HeapSnapshot &Reference,
                  const HeapSnapshot &Suspect);

/// Renders a diff in a compact human-readable report.
std::string formatHeapDiff(const std::vector<HeapDiffEntry> &Diff);

} // namespace diehard

#endif // DIEHARD_DEBUG_HEAPDIFF_H
