//===- examples/real_apps_tour.cpp - the benchmark apps, live -------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tour of the three real miniature applications built for the evaluation
/// (cfrac, espresso, and lindsay cores), each running on a DieHard heap
/// with its allocation behaviour reported — a feel for why these programs
/// anchor the paper's allocation-intensive suite.
///
//===----------------------------------------------------------------------===//

#include "apps/MiniCfrac.h"
#include "apps/MiniEspresso.h"
#include "apps/MiniLindsay.h"
#include "baselines/DieHardAllocator.h"

#include <cstdio>

using namespace diehard;

namespace {

DieHardAllocator *freshHeap() {
  DieHardOptions O;
  O.HeapSize = 384 * 1024 * 1024;
  O.Seed = 0;
  return new DieHardAllocator(O);
}

void report(const char *Name, DieHardAllocator *A, uint64_t Checksum) {
  const DieHardStats &S = A->heap().stats();
  std::printf("%-22s checksum %016llx\n", Name,
              static_cast<unsigned long long>(Checksum));
  std::printf("%-22s %llu allocations, %llu frees, %.2f probes/alloc\n\n",
              "", static_cast<unsigned long long>(S.Allocations),
              static_cast<unsigned long long>(S.Frees),
              static_cast<double>(S.Probes) /
                  static_cast<double>(S.Allocations ? S.Allocations : 1));
  delete A;
}

} // namespace

int main() {
  std::printf("The paper's allocation-intensive programs, in miniature, on "
              "DieHard\n\n");

  {
    // cfrac: continued-fraction convergents with allocator-backed bignums.
    DieHardAllocator *A = freshHeap();
    uint64_t Sum = runCfracWorkload(*A, 30, 200, 0xC0FFEE);
    std::printf("cfrac-core: sqrt continued fractions, e.g. sqrt(2) "
                "convergent p/q after 20 terms:\n");
    {
      std::vector<uint32_t> Terms = sqrtContinuedFraction(2, 20);
      Convergent C = foldConvergent(*A, Terms);
      std::printf("  p = %s\n  q = %s\n", C.P.toDecimal().c_str(),
                  C.Q.toDecimal().c_str());
    }
    report("cfrac-core", A, Sum);
  }

  {
    // espresso: two-level minimization of random ON-sets.
    DieHardAllocator *A = freshHeap();
    uint64_t Sum = runEspressoWorkload(*A, 100, 10, 120, 0xE59);
    {
      // Scoped so the cover releases its cubes before the heap goes away.
      Cover Demo(*A, 3);
      for (uint32_t M = 0; M < 8; ++M)
        if (M & 1)
          Demo.addMinterm(M);
      size_t Before = Demo.cubeCount();
      Demo.minimize();
      std::printf("espresso-core: f = x0 over 3 vars minimizes %zu cubes "
                  "-> %zu cube\n",
                  Before, Demo.cubeCount());
    }
    report("espresso-core", A, Sum);
  }

  {
    // lindsay: hypercube message routing.
    DieHardAllocator *A = freshHeap();
    LindsayConfig Config;
    Config.Dimensions = 8;
    Config.Messages = 20000;
    LindsayResult R = runLindsay(*A, Config);
    std::printf("lindsay-core: %llu messages, %llu hops on a %d-cube\n",
                static_cast<unsigned long long>(R.MessagesDelivered),
                static_cast<unsigned long long>(R.TotalHops),
                Config.Dimensions);
    report("lindsay-core", A, R.RoutingSummary);
  }

  std::printf("Every object above lived at a uniformly random heap slot;\n"
              "rerun and the checksums stay identical while every address\n"
              "changes.\n");
  return 0;
}
