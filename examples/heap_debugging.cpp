//===- examples/heap_debugging.cpp - crash dump without the crash ---------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 9 debugging idea in action: "by differencing the heaps of
/// correct and incorrect executions ... pinpoint the exact locations of
/// memory errors and report these as part of a crash dump without the
/// crash."
///
/// A toy order-processing program has an overflow bug that triggers only on
/// a malicious order name. We run it twice with the same DieHard seed —
/// identical layouts — once with benign input and once with the trigger,
/// snapshot both heaps, and print the diff: the exact victim objects and
/// byte ranges, with no crash anywhere.
///
//===----------------------------------------------------------------------===//

#include "core/DieHardHeap.h"
#include "debug/HeapDiff.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace diehard;

namespace {

/// A toy program: builds a batch of fixed-size order records, then copies
/// the (possibly attacker-controlled) customer note into record 12 with an
/// unchecked strcpy.
void processOrders(DieHardHeap &Heap, const std::string &CustomerNote,
                   std::vector<char *> &Records) {
  for (int I = 0; I < 32; ++I) {
    auto *Rec = static_cast<char *>(Heap.allocate(128));
    std::snprintf(Rec, 128, "order-%03d qty=%d", I, (I * 7) % 13);
    Records.push_back(Rec);
  }
  // The bug: no bounds check on the customer-supplied note.
  std::strcpy(Records[12] + 32, CustomerNote.c_str());
}

} // namespace

int main() {
  constexpr uint64_t SharedSeed = 0xDEB06;

  std::printf("Heap differencing: pinpointing an overflow without a "
              "crash\n\n");

  // Reference execution: benign input.
  DieHardOptions O;
  O.HeapSize = 64 * 1024 * 1024;
  O.Seed = SharedSeed;
  DieHardHeap Reference(O);
  std::vector<char *> RefRecords;
  processOrders(Reference, "gift wrap please", RefRecords);
  HeapSnapshot RefSnap = HeapSnapshot::capture(Reference);
  std::printf("reference run: %zu live objects, input \"gift wrap "
              "please\"\n",
              RefSnap.objectCount());

  // Suspect execution: same seed, malicious input.
  DieHardHeap Suspect(O);
  std::vector<char *> SusRecords;
  std::string Attack(200, '!');
  processOrders(Suspect, Attack, SusRecords);
  HeapSnapshot SusSnap = HeapSnapshot::capture(Suspect);
  std::printf("suspect run:   %zu live objects, input of %zu '!' bytes\n\n",
              SusSnap.objectCount(), Attack.size());

  // The diff localizes the error precisely.
  auto Diff = diffHeapSnapshots(RefSnap, SusSnap);
  std::printf("heap diff (victims of the overflow):\n%s\n",
              formatHeapDiff(Diff).c_str());
  std::printf("The first entry is the buggy record itself (bytes from\n"
              "offset 32 differ — that is where the copy starts); further\n"
              "entries are innocent neighbours the overflow reached. The\n"
              "byte ranges hand the developer the write's exact extent —\n"
              "a crash dump without the crash (Section 9).\n");
  return 0;
}
