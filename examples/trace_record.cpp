//===- examples/trace_record.cpp - record an allocation log ---------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase one of the Section 7.3.1 pipeline as a command-line tool: run a
/// named benchmark workload under the tracing allocator and write its
/// allocation log (and fault-free checksum) to a file that fault_replay
/// consumes.
///
/// Usage: trace_record <workload> <trace-file>
///   workload: cfrac | espresso | lindsay | p2c | roboop | ...
///
//===----------------------------------------------------------------------===//

#include "baselines/DieHardAllocator.h"
#include "faultinject/TraceAllocator.h"
#include "faultinject/TraceIO.h"
#include "workloads/WorkloadSuite.h"

#include <cstdio>
#include <string>

using namespace diehard;

int main(int Argc, char **Argv) {
  if (Argc != 3) {
    std::fprintf(stderr, "usage: %s <workload> <trace-file>\n", Argv[0]);
    std::fprintf(stderr, "workloads:");
    for (const WorkloadParams &P : allocationIntensiveSuite())
      std::fprintf(stderr, " %s", P.Name.c_str());
    std::fprintf(stderr, "\n");
    return 64;
  }

  WorkloadParams Params = findWorkload(Argv[1]);
  SyntheticWorkload W(Params);

  DieHardOptions O;
  O.HeapSize = 384 * 1024 * 1024;
  O.Seed = 0x7ACE;
  DieHardAllocator Inner(O);
  TraceAllocator Tracer(Inner);
  WorkloadResult R = W.run(Tracer);

  if (!writeTrace(Tracer.trace(), Argv[2])) {
    std::fprintf(stderr, "error: cannot write %s\n", Argv[2]);
    return 1;
  }
  std::printf("traced %zu allocations of '%s' to %s\n",
              Tracer.trace().size(), Params.Name.c_str(), Argv[2]);
  std::printf("fault-free checksum: %016llx\n",
              static_cast<unsigned long long>(R.Checksum));
  return 0;
}
