//===- examples/diehard_launcher.cpp - the `diehard` command --------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's `diehard` command (Section 5): run an *unmodified binary*
/// under k replicas, each with LD_PRELOAD pointing at the DieHard memory
/// manager (libdiehard.so) seeded differently, broadcast standard input to
/// all of them, and only emit output agreed on by at least two replicas.
///
/// Usage:
///   diehard_launcher <path-to-libdiehard.so> <replicas> <command> [args..]
///
/// Example (one line):
///   echo hello | ./build/examples/diehard_launcher
///       ./build/src/interpose/libdiehard.so 3 /bin/cat
///
/// This launcher votes on each replica's complete output once all replicas
/// finish (the library-level ReplicaManager votes incrementally in 4K
/// chunks; batch programs produce identical results either way).
///
//===----------------------------------------------------------------------===//

#include "support/RealRandomSource.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

namespace {

struct Replica {
  pid_t Pid = -1;
  int StdinFd = -1;
  int StdoutFd = -1;
  std::string Output;
  bool Exited = false;
  int ExitCode = -1;
};

std::string readAll(int Fd) {
  std::string All;
  char Buf[4096];
  ssize_t N;
  while ((N = ::read(Fd, Buf, sizeof(Buf))) > 0)
    All.append(Buf, static_cast<size_t>(N));
  return All;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <libdiehard.so> <replicas> <command> [args..]\n",
                 Argv[0]);
    return 64;
  }
  const char *Library = Argv[1];
  int K = std::atoi(Argv[2]);
  if (K < 1 || K == 2) {
    std::fprintf(stderr, "error: replicas must be 1 or >= 3 "
                         "(a two-way vote cannot break ties)\n");
    return 64;
  }

  // Read all of our standard input up front so it can be broadcast.
  std::string Input = readAll(STDIN_FILENO);

  std::vector<Replica> Replicas(static_cast<size_t>(K));
  for (int I = 0; I < K; ++I) {
    int InPipe[2], OutPipe[2];
    if (::pipe(InPipe) != 0 || ::pipe(OutPipe) != 0) {
      std::perror("pipe");
      return 1;
    }
    pid_t Pid = ::fork();
    if (Pid == 0) {
      // Child: wire stdin/stdout, point LD_PRELOAD at the DieHard library
      // with a fresh random seed and replicated (random-fill) mode on.
      ::dup2(InPipe[0], STDIN_FILENO);
      ::dup2(OutPipe[1], STDOUT_FILENO);
      ::close(InPipe[0]);
      ::close(InPipe[1]);
      ::close(OutPipe[0]);
      ::close(OutPipe[1]);
      for (int J = 0; J < I; ++J) {
        ::close(Replicas[static_cast<size_t>(J)].StdinFd);
        ::close(Replicas[static_cast<size_t>(J)].StdoutFd);
      }
      ::setenv("LD_PRELOAD", Library, 1);
      char Seed[32];
      std::snprintf(Seed, sizeof(Seed), "%llu",
                    static_cast<unsigned long long>(
                        diehard::realRandomSeed() | 1));
      ::setenv("DIEHARD_SEED", Seed, 1);
      ::setenv("DIEHARD_REPLICATED", "1", 1);
      ::execvp(Argv[3], Argv + 3);
      std::perror("execvp");
      ::_exit(127);
    }
    ::close(InPipe[0]);
    ::close(OutPipe[1]);
    Replica &R = Replicas[static_cast<size_t>(I)];
    R.Pid = Pid;
    R.StdinFd = InPipe[1];
    R.StdoutFd = OutPipe[0];
  }

  // Broadcast input, then close to signal EOF.
  for (Replica &R : Replicas) {
    size_t Off = 0;
    while (Off < Input.size()) {
      ssize_t N = ::write(R.StdinFd, Input.data() + Off,
                          Input.size() - Off);
      if (N <= 0)
        break;
      Off += static_cast<size_t>(N);
    }
    ::close(R.StdinFd);
  }

  // Collect each replica's full output and exit status.
  for (Replica &R : Replicas) {
    R.Output = readAll(R.StdoutFd);
    ::close(R.StdoutFd);
    int Status = 0;
    ::waitpid(R.Pid, &Status, 0);
    R.Exited = WIFEXITED(Status);
    R.ExitCode = R.Exited ? WEXITSTATUS(Status) : -1;
  }

  // Vote: find an output shared by at least two replicas that exited
  // cleanly (or accept the single replica in stand-alone mode).
  for (int I = 0; I < K; ++I) {
    const Replica &A = Replicas[static_cast<size_t>(I)];
    if (!A.Exited || A.ExitCode != 0)
      continue;
    int Agreeing = 1;
    for (int J = 0; J < K; ++J)
      if (J != I && Replicas[static_cast<size_t>(J)].Exited &&
          Replicas[static_cast<size_t>(J)].ExitCode == 0 &&
          Replicas[static_cast<size_t>(J)].Output == A.Output)
        ++Agreeing;
    if (Agreeing >= 2 || K == 1) {
      ::fwrite(A.Output.data(), 1, A.Output.size(), stdout);
      std::fflush(stdout);
      std::fprintf(stderr, "diehard: %d/%d replicas agreed\n", Agreeing, K);
      return 0;
    }
  }

  std::fprintf(stderr,
               "diehard: no two replicas agreed — likely memory error "
               "(e.g. uninitialized read); no output committed\n");
  return 70;
}
