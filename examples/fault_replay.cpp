//===- examples/fault_replay.cpp - inject faults from a trace -------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase two of the Section 7.3.1 pipeline as a command-line tool: re-run
/// a traced workload with the fault injector between the application and
/// the allocator of your choice, at chosen frequencies, and report the
/// outcome (completed / crashed / hung) across several runs.
///
/// Usage:
///   fault_replay <workload> <trace-file> <allocator>
///                [dangling-pct] [overflow-pct] [runs]
///   allocator: lea | diehard
///
/// Example (the paper's configuration, Section 7.3.1):
///   trace_record espresso /tmp/espresso.trace
///   fault_replay espresso /tmp/espresso.trace lea     50 1 10
///   fault_replay espresso /tmp/espresso.trace diehard 50 1 10
///
//===----------------------------------------------------------------------===//

#include "baselines/DieHardAllocator.h"
#include "baselines/LeaAllocator.h"
#include "faultinject/FaultInjector.h"
#include "faultinject/TraceIO.h"
#include "workloads/ForkHarness.h"
#include "workloads/WorkloadSuite.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace diehard;

int main(int Argc, char **Argv) {
  if (Argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <workload> <trace-file> <lea|diehard> "
                 "[dangling-pct] [overflow-pct] [runs]\n",
                 Argv[0]);
    return 64;
  }
  std::string Workload = Argv[1];
  std::string TracePath = Argv[2];
  bool UseDieHard = std::strcmp(Argv[3], "diehard") == 0;
  double DanglingPct = Argc > 4 ? std::atof(Argv[4]) : 50.0;
  double OverflowPct = Argc > 5 ? std::atof(Argv[5]) : 1.0;
  int Runs = Argc > 6 ? std::atoi(Argv[6]) : 10;

  AllocationTrace Trace;
  if (!readTrace(Trace, TracePath)) {
    std::fprintf(stderr, "error: cannot read trace %s\n", TracePath.c_str());
    return 1;
  }

  WorkloadParams Params = findWorkload(Workload);
  SyntheticWorkload W(Params);

  // Recompute the fault-free checksum locally (allocator-independent).
  SystemAllocator Reference;
  uint64_t Clean = W.run(Reference).Checksum;

  std::printf("replaying '%s' under %s: dangling %.1f%% (distance 10), "
              "overflow %.1f%%, %d runs\n",
              Params.Name.c_str(), UseDieHard ? "DieHard" : "Lea malloc",
              DanglingPct, OverflowPct, Runs);

  int Survived = 0;
  for (int Run = 0; Run < Runs; ++Run) {
    FaultConfig Config;
    Config.DanglingProbability = DanglingPct / 100.0;
    Config.DanglingDistance = 10;
    Config.OverflowProbability = OverflowPct / 100.0;
    Config.OverflowMinSize = 32;
    Config.UnderAllocateBytes = 4;
    Config.Seed = static_cast<uint64_t>(Run) * 7919 + 13;

    ForkOutcome Outcome = runInFork([&]() -> int {
      if (UseDieHard) {
        DieHardOptions O;
        O.HeapSize = 384 * 1024 * 1024;
        O.Seed = 0;
        DieHardAllocator A(O);
        FaultInjector Injector(A, Trace, Config);
        return W.run(Injector).Checksum == Clean ? 0 : 1;
      }
      LeaAllocator Lea(size_t(512) << 20);
      FaultInjector Injector(Lea, Trace, Config);
      return W.run(Injector).Checksum == Clean ? 0 : 1;
    });
    const char *Result = Outcome.cleanExit() ? "completed correctly"
                         : Outcome.Signaled  ? "CRASHED"
                         : Outcome.TimedOut  ? "HUNG"
                                             : "wrong output";
    std::printf("  run %2d: %s\n", Run + 1, Result);
    Survived += Outcome.cleanExit() ? 1 : 0;
  }
  std::printf("%d/%d runs correct\n", Survived, Runs);
  return Survived == Runs ? 0 : 2;
}
