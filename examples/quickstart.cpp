//===- examples/quickstart.cpp - DieHard in five minutes ------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: create a DieHard heap, allocate and free through it, and
/// watch it shrug off the memory errors that corrupt conventional heaps —
/// double frees, invalid frees, and buffer overflows.
///
/// Build and run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/CheckedLibc.h"
#include "core/DieHardHeap.h"

#include <cstdio>
#include <cstring>

using namespace diehard;

int main() {
  // 1. A heap with the paper's default geometry: 384 MB reservation split
  //    into twelve power-of-two size-class regions, each at most 1/M = 1/2
  //    full. Reserved-but-untouched pages cost nothing.
  DieHardOptions Options;
  Options.HeapSize = 384 * 1024 * 1024;
  Options.M = 2.0;
  Options.Seed = 0; // Truly random layout, like a deployed process.
  DieHardHeap Heap(Options);
  if (!Heap.isValid()) {
    std::fprintf(stderr, "error: heap reservation failed\n");
    return 1;
  }
  std::printf("heap ready (seed %llu)\n",
              static_cast<unsigned long long>(Heap.seed()));

  // 2. Ordinary allocation. Requests round up to a power of two; objects
  //    land at uniformly random slots in their size class.
  char *Greeting = static_cast<char *>(Heap.allocate(32));
  std::strcpy(Greeting, "hello, randomized heap");
  std::printf("allocated 32 bytes -> object size %zu: \"%s\"\n",
              Heap.getObjectSize(Greeting), Greeting);

  // 3. Errors that corrupt freelist allocators are simply ignored here.
  Heap.deallocate(Greeting);
  Heap.deallocate(Greeting); // Double free: ignored.
  int Local = 0;
  Heap.deallocate(&Local); // Invalid free: ignored.
  std::printf("double free + invalid free ignored (%llu ignored so far)\n",
              static_cast<unsigned long long>(Heap.stats().IgnoredFrees));

  // 4. A buffer overflow probably lands on empty space: with the heap at
  //    most half full, a one-object overflow is masked with >= 50%
  //    probability, and far more when the heap is emptier (Theorem 1).
  auto *Buffer = static_cast<char *>(Heap.allocate(64));
  auto *Neighbour = static_cast<char *>(Heap.allocate(64));
  std::memset(Neighbour, 'N', 64);
  std::memset(Buffer, 'X', 64 + 32); // 32 bytes past the end!
  std::printf("overflow wrote 32 bytes past an object; neighbour %s\n",
              Neighbour[0] == 'N' && Neighbour[63] == 'N'
                  ? "intact (overflow masked)"
                  : "was hit (unlucky draw)");

  // 5. The checked libc variants clamp overflows deterministically.
  CheckedLibc Checked(Heap);
  Checked.strcpy(Buffer, "this string is much longer than the 64-byte "
                         "destination object can possibly hold");
  std::printf("checked strcpy wrote %zu bytes at most\n",
              std::strlen(Buffer) + 1);

  Heap.deallocate(Buffer);
  Heap.deallocate(Neighbour);

  const DieHardStats &S = Heap.stats();
  std::printf("stats: %llu allocs, %llu frees, %llu probes, "
              "%llu ignored frees\n",
              static_cast<unsigned long long>(S.Allocations),
              static_cast<unsigned long long>(S.Frees),
              static_cast<unsigned long long>(S.Probes),
              static_cast<unsigned long long>(S.IgnoredFrees));
  return 0;
}
