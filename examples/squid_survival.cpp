//===- examples/squid_survival.cpp - the Squid case study, live -----------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interactive version of the Section 7.3 case study: a miniature caching
/// server with Squid 2.3s5's overflow bug serves the same request stream —
/// including one ill-formed request — under a freelist allocator and under
/// DieHard. The freelist run crashes; the DieHard run answers everything.
///
/// Usage: squid_survival [lea|gc|diehard|checked]
/// (default: run all four in forked children and print a summary)
///
//===----------------------------------------------------------------------===//

#include "baselines/DieHardAllocator.h"
#include "baselines/GcAllocator.h"
#include "baselines/LeaAllocator.h"
#include "workloads/ForkHarness.h"
#include "workloads/MiniSquid.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace diehard;

namespace {

int serve(Allocator &Heap, const CheckedLibc *Checked, bool Verbose) {
  MiniSquid Server(Heap, Checked);
  for (int I = 0; I < 40; ++I)
    Server.handleRequest("GET http://cache.example/warm" +
                         std::to_string(I));
  if (Verbose)
    std::printf("  warmed cache with 40 documents (%zu resident)\n",
                Server.cacheSize());

  std::string IllFormed = "GET http://evil.example/";
  IllFormed.append(300, 'A');
  if (Verbose)
    std::printf("  sending ill-formed request (%zu-byte URL into a "
                "64-byte buffer)...\n",
                IllFormed.size() - 4);
  Server.handleRequest(IllFormed);

  for (int I = 0; I < 150; ++I) {
    std::string R = Server.handleRequest("GET http://cache.example/post" +
                                         std::to_string(I));
    if (R.rfind("200 ", 0) != 0)
      return 1;
  }
  if (Verbose)
    std::printf("  served 150 post-attack requests correctly\n");
  return 0;
}

int runMode(const std::string &Mode, bool Verbose) {
  if (Mode == "lea") {
    LeaAllocator Lea(size_t(256) << 20);
    return serve(Lea, nullptr, Verbose);
  }
  if (Mode == "gc") {
    GcAllocator Gc(size_t(256) << 20);
    return serve(Gc, nullptr, Verbose);
  }
  DieHardOptions O;
  O.HeapSize = 384 * 1024 * 1024;
  O.Seed = 0;
  DieHardAllocator A(O);
  if (Mode == "checked") {
    CheckedLibc Checked(A.heap());
    return serve(A, &Checked, Verbose);
  }
  return serve(A, nullptr, Verbose);
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc > 1) {
    std::string Mode = Argv[1];
    std::printf("serving with allocator '%s'\n", Mode.c_str());
    int Rc = runMode(Mode, /*Verbose=*/true);
    std::printf(Rc == 0 ? "server survived\n" : "server corrupted\n");
    return Rc;
  }

  std::printf("Squid case study: one buggy server, four memory managers\n");
  const char *Modes[] = {"lea", "gc", "diehard", "checked"};
  const char *Labels[] = {"freelist (GNU-libc-style)", "conservative GC",
                          "DieHard", "DieHard + checked libc"};
  for (int I = 0; I < 4; ++I) {
    std::string Mode = Modes[I];
    ForkOutcome Outcome =
        runInFork([&] { return runMode(Mode, /*Verbose=*/false); });
    const char *Result = Outcome.cleanExit() ? "survived"
                         : Outcome.Signaled  ? "CRASHED (signal)"
                                             : "failed";
    std::printf("  %-28s %s\n", Labels[I], Result);
  }
  return 0;
}
