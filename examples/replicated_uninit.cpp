//===- examples/replicated_uninit.cpp - catching uninitialized reads ------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replicated mode as an error-detecting tool (Sections 3.2, 5, 6.3).
/// A small "statistics" program computes a summary over heap data but — due
/// to an off-by-one — reads one value it never initialized. Three replicas
/// with differently seeded, random-filling heaps disagree on the output,
/// and the voter reports the bug instead of committing garbage. The fixed
/// version of the same program agrees unanimously.
///
/// The paper notes DieHard found real uninitialized reads in its benchmark
/// suite this way, in seconds, where Valgrind took two orders of magnitude
/// longer.
///
//===----------------------------------------------------------------------===//

#include "core/DieHardHeap.h"
#include "replication/Replication.h"

#include <cstdio>

using namespace diehard;

namespace {

/// Sums `Count` ints from a heap array the program filled with 1..Count.
/// When `Buggy`, the fill loop stops one short — the classic off-by-one —
/// so the last element read is uninitialized memory.
int statsProgram(ReplicaContext &Ctx, bool Buggy) {
  DieHardHeap Heap(Ctx.heapOptions());
  constexpr int Count = 16;
  auto *Values = static_cast<int *>(Heap.allocate(Count * sizeof(int)));
  if (Values == nullptr)
    return 1;
  int Fill = Buggy ? Count - 1 : Count;
  for (int I = 0; I < Fill; ++I)
    Values[I] = I + 1;
  long Sum = 0;
  for (int I = 0; I < Count; ++I) // Reads Values[15] uninitialized if buggy.
    Sum += Values[I];
  char Line[64];
  int N = std::snprintf(Line, sizeof(Line), "sum = %ld\n", Sum);
  Ctx.write(Line, static_cast<size_t>(N));
  Heap.deallocate(Values);
  return 0;
}

void runOnce(const char *Label, bool Buggy) {
  ReplicationOptions Options;
  Options.Replicas = 3;
  Options.MasterSeed = 0; // Truly random seeds, like `diehard 3 app`.
  Options.HeapSize = 32 * 1024 * 1024;
  ReplicaManager Manager(Options);

  std::printf("%s:\n", Label);
  ReplicationResult R = Manager.run(
      [Buggy](ReplicaContext &Ctx) { return statsProgram(Ctx, Buggy); },
      "");
  if (R.Success) {
    std::printf("  replicas agreed; committed output: %s",
                R.Output.c_str());
  } else if (R.UninitReadDetected) {
    std::printf("  replicas all disagreed -> uninitialized read detected; "
                "no output committed\n");
  } else {
    std::printf("  replication failed\n");
  }
}

} // namespace

int main() {
  std::printf("Replicated DieHard as an uninitialized-read detector\n\n");
  runOnce("correct program (fills all 16 values)", /*Buggy=*/false);
  runOnce("buggy program (off-by-one leaves one value uninitialized)",
          /*Buggy=*/true);
  std::printf("\nEach replica fills fresh objects with different random\n"
              "values, so a read of uninitialized memory yields a\n"
              "different sum in every replica — and the voter refuses to\n"
              "commit (Section 6.3).\n");
  return 0;
}
