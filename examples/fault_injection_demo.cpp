//===- examples/fault_injection_demo.cpp - resilience, quantified ---------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 7.3.1 methodology end to end, at demo scale:
///
///   1. trace a deterministic workload to learn every object's lifetime;
///   2. re-run it with a fault injector that frees objects early and
///      under-allocates requests, at chosen frequencies;
///   3. compare survival under a freelist allocator versus DieHard.
///
/// Usage: fault_injection_demo [dangling-pct] [overflow-pct]
/// (defaults: 50 1 — the paper's configuration)
///
//===----------------------------------------------------------------------===//

#include "baselines/DieHardAllocator.h"
#include "baselines/LeaAllocator.h"
#include "faultinject/FaultInjector.h"
#include "faultinject/TraceAllocator.h"
#include "workloads/ForkHarness.h"
#include "workloads/SyntheticWorkload.h"

#include <cstdio>
#include <cstdlib>

using namespace diehard;

namespace {

WorkloadParams demoWorkload() {
  WorkloadParams P;
  P.Name = "demo";
  P.MemoryOps = 60000;
  P.MinSize = 8;
  P.MaxSize = 512;
  P.Shape = SizeShape::SmallBiased;
  P.MaxLive = 2000;
  P.Seed = 0xDE40;
  return P;
}

} // namespace

int main(int Argc, char **Argv) {
  double DanglingPct = Argc > 1 ? std::atof(Argv[1]) : 50.0;
  double OverflowPct = Argc > 2 ? std::atof(Argv[2]) : 1.0;

  std::printf("Fault-injection demo: dangling %.1f%% (distance 10), "
              "overflow %.1f%% (4-byte under-allocation)\n\n",
              DanglingPct, OverflowPct);

  // Step 1: trace the workload once to learn object lifetimes and the
  // correct checksum.
  SyntheticWorkload W(demoWorkload());
  DieHardOptions TraceHeap;
  TraceHeap.HeapSize = 128 * 1024 * 1024;
  TraceHeap.Seed = 1;
  DieHardAllocator TraceInner(TraceHeap);
  TraceAllocator Tracer(TraceInner);
  WorkloadResult Clean = W.run(Tracer);
  std::printf("traced %zu allocations; fault-free checksum %016llx\n\n",
              Tracer.trace().size(),
              static_cast<unsigned long long>(Clean.Checksum));

  FaultConfig Config;
  Config.DanglingProbability = DanglingPct / 100.0;
  Config.DanglingDistance = 10;
  Config.OverflowProbability = OverflowPct / 100.0;
  Config.OverflowMinSize = 32;
  Config.UnderAllocateBytes = 4;

  // Step 2 + 3: run five injected trials under each allocator.
  for (const char *Which : {"freelist (Lea)", "DieHard"}) {
    bool UseDieHard = Which[0] == 'D';
    std::printf("%s:\n", Which);
    for (int Run = 0; Run < 5; ++Run) {
      FaultConfig C = Config;
      C.Seed = static_cast<uint64_t>(Run) * 31 + 7;
      ForkOutcome Outcome = runInFork([&]() -> int {
        if (UseDieHard) {
          DieHardOptions O;
          O.HeapSize = 384 * 1024 * 1024;
          O.Seed = 0;
          DieHardAllocator A(O);
          FaultInjector Injector(A, Tracer.trace(), C);
          return W.run(Injector).Checksum == Clean.Checksum ? 0 : 1;
        }
        LeaAllocator Lea(size_t(512) << 20);
        FaultInjector Injector(Lea, Tracer.trace(), C);
        return W.run(Injector).Checksum == Clean.Checksum ? 0 : 1;
      });
      const char *Result = Outcome.cleanExit() ? "completed correctly"
                           : Outcome.Signaled  ? "CRASHED"
                           : Outcome.TimedOut  ? "HUNG"
                                               : "wrong output";
      std::printf("  run %d: %s\n", Run + 1, Result);
    }
  }
  std::printf("\nThe same faults, the same workload: the freelist heap\n"
              "corrupts itself while DieHard keeps computing the right\n"
              "answer (Section 7.3.1).\n");
  return 0;
}
