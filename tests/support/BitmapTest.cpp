//===- tests/support/BitmapTest.cpp ---------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the allocation bitmap.
///
//===----------------------------------------------------------------------===//

#include "support/Bitmap.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

namespace diehard {
namespace {

TEST(BitmapTest, StartsAllClear) {
  Bitmap B(1000);
  EXPECT_EQ(B.size(), 1000u);
  EXPECT_EQ(B.count(), 0u);
  for (size_t I = 0; I < 1000; ++I)
    EXPECT_FALSE(B.test(I));
}

TEST(BitmapTest, SetAndClearRoundTrip) {
  Bitmap B(128);
  EXPECT_TRUE(B.trySet(5));
  EXPECT_TRUE(B.test(5));
  EXPECT_TRUE(B.tryClear(5));
  EXPECT_FALSE(B.test(5));
}

TEST(BitmapTest, DoubleSetFails) {
  Bitmap B(64);
  EXPECT_TRUE(B.trySet(63));
  EXPECT_FALSE(B.trySet(63)) << "second set of the same bit must fail";
  EXPECT_TRUE(B.test(63));
}

TEST(BitmapTest, DoubleClearFails) {
  Bitmap B(64);
  EXPECT_FALSE(B.tryClear(10)) << "clearing a clear bit must fail";
  B.trySet(10);
  EXPECT_TRUE(B.tryClear(10));
  EXPECT_FALSE(B.tryClear(10));
}

TEST(BitmapTest, CountTracksSets) {
  Bitmap B(300);
  for (size_t I = 0; I < 300; I += 3)
    B.trySet(I);
  EXPECT_EQ(B.count(), 100u);
}

TEST(BitmapTest, WordBoundaries) {
  Bitmap B(130);
  for (size_t I : {0u, 63u, 64u, 127u, 128u, 129u}) {
    EXPECT_TRUE(B.trySet(I)) << I;
    EXPECT_TRUE(B.test(I)) << I;
  }
  EXPECT_EQ(B.count(), 6u);
}

TEST(BitmapTest, FindNextClearSkipsSetBits) {
  Bitmap B(256);
  for (size_t I = 0; I < 100; ++I)
    B.trySet(I);
  EXPECT_EQ(B.findNextClear(0), 100u);
  EXPECT_EQ(B.findNextClear(100), 100u);
  EXPECT_EQ(B.findNextClear(101), 101u);
}

TEST(BitmapTest, FindNextClearFullBitmap) {
  Bitmap B(64);
  for (size_t I = 0; I < 64; ++I)
    B.trySet(I);
  EXPECT_EQ(B.findNextClear(0), 64u) << "full bitmap reports size()";
}

TEST(BitmapTest, FindNextClearCrossesFullWords) {
  Bitmap B(200);
  for (size_t I = 0; I < 192; ++I)
    B.trySet(I);
  EXPECT_EQ(B.findNextClear(5), 192u);
}

TEST(BitmapTest, FindNextClearWordBoundarySkip) {
  // Word 0 entirely set: the full-word fast path must land exactly on bit
  // 64, whether the scan starts at the word's first or last bit.
  Bitmap B(128);
  for (size_t I = 0; I < 64; ++I)
    B.trySet(I);
  EXPECT_EQ(B.findNextClear(0), 64u);
  EXPECT_EQ(B.findNextClear(63), 64u);
  EXPECT_EQ(B.findNextClear(64), 64u);
}

TEST(BitmapTest, FindNextClearFromMidWordOfFullWord) {
  // Starting mid-way through a fully-set word must not skip the clear bit
  // at the start of the next word.
  Bitmap B(192);
  for (size_t I = 0; I < 64; ++I)
    B.trySet(I);
  B.trySet(65); // Bit 64 clear, bit 65 set.
  EXPECT_EQ(B.findNextClear(10), 64u);
  EXPECT_EQ(B.findNextClear(65), 66u);
}

TEST(BitmapTest, FindNextClearNonMultipleOf64Tail) {
  // 70 bits: the last word holds only 6 valid bits. A fully-set bitmap must
  // report size() == 70, not scan into the word's unused upper bits.
  Bitmap B(70);
  for (size_t I = 0; I < 70; ++I)
    B.trySet(I);
  EXPECT_EQ(B.findNextClear(0), 70u);
  EXPECT_EQ(B.findNextClear(69), 70u);
  // With only the last valid bit clear, the scan must find exactly it.
  B.tryClear(69);
  EXPECT_EQ(B.findNextClear(64), 69u);
  EXPECT_EQ(B.findNextClear(69), 69u);
}

TEST(BitmapTest, FindNextClearFromSizeIsSize) {
  Bitmap B(100);
  EXPECT_EQ(B.findNextClear(100), 100u) << "From == size() must be a no-op";
}

TEST(BitmapTest, FindNextClearOnlyLastBitClear) {
  Bitmap B(128);
  for (size_t I = 0; I < 127; ++I)
    B.trySet(I);
  EXPECT_EQ(B.findNextClear(0), 127u);
}

TEST(BitmapTest, FindNextSetMirrorsFindNextClear) {
  Bitmap B(256);
  EXPECT_EQ(B.findNextSet(0), 256u) << "all-clear bitmap reports size()";
  B.trySet(100);
  B.trySet(200);
  EXPECT_EQ(B.findNextSet(0), 100u);
  EXPECT_EQ(B.findNextSet(100), 100u);
  EXPECT_EQ(B.findNextSet(101), 200u);
  EXPECT_EQ(B.findNextSet(201), 256u);
}

TEST(BitmapTest, FindNextSetWordBoundarySkip) {
  // Word 0 entirely clear: the empty-word fast path must land exactly on
  // bit 64, whether the scan starts at the word's first or last bit.
  Bitmap B(128);
  B.trySet(64);
  EXPECT_EQ(B.findNextSet(0), 64u);
  EXPECT_EQ(B.findNextSet(63), 64u);
  EXPECT_EQ(B.findNextSet(64), 64u);
}

TEST(BitmapTest, FindNextSetFromMidWordOfEmptyWord) {
  // Starting mid-way through an all-clear word must not skip the set bit
  // at the start of the next word.
  Bitmap B(192);
  B.trySet(64);
  B.trySet(66);
  EXPECT_EQ(B.findNextSet(10), 64u);
  EXPECT_EQ(B.findNextSet(65), 66u);
}

TEST(BitmapTest, FindNextSetNonMultipleOf64Tail) {
  // 70 bits: only the last valid bit set — the scan must find exactly it
  // and From == size() must be a no-op.
  Bitmap B(70);
  B.trySet(69);
  EXPECT_EQ(B.findNextSet(0), 69u);
  EXPECT_EQ(B.findNextSet(69), 69u);
  EXPECT_EQ(B.findNextSet(70), 70u);
}

TEST(BitmapTest, FindNextSetAndClearEnumerateRuns) {
  // The pairing the span scanner uses: alternating findNextClear /
  // findNextSet calls enumerate exactly the maximal free runs.
  Bitmap B(300);
  for (size_t I = 50; I < 80; ++I)
    B.trySet(I);
  for (size_t I = 190; I < 200; ++I)
    B.trySet(I);
  EXPECT_EQ(B.findNextClear(0), 0u);
  EXPECT_EQ(B.findNextSet(0), 50u);     // Run [0, 50).
  EXPECT_EQ(B.findNextClear(50), 80u);
  EXPECT_EQ(B.findNextSet(80), 190u);   // Run [80, 190).
  EXPECT_EQ(B.findNextClear(190), 200u);
  EXPECT_EQ(B.findNextSet(200), 300u);  // Run [200, 300).
}

TEST(BitmapTest, ResetClearsAndResizes) {
  Bitmap B(10);
  B.trySet(3);
  B.reset(500);
  EXPECT_EQ(B.size(), 500u);
  EXPECT_EQ(B.count(), 0u);
}

TEST(BitmapTest, ClearKeepsSize) {
  Bitmap B(77);
  B.trySet(5);
  B.trySet(76);
  B.clear();
  EXPECT_EQ(B.size(), 77u);
  EXPECT_EQ(B.count(), 0u);
}

/// Property: a randomized set/clear workload keeps count() consistent with
/// a reference std::set.
TEST(BitmapTest, RandomizedAgainstReference) {
  Bitmap B(512);
  std::set<size_t> Reference;
  Rng Rand(2024);
  for (int Step = 0; Step < 20000; ++Step) {
    size_t Index = Rand.nextBounded(512);
    if (Rand.next() & 1) {
      bool Inserted = Reference.insert(Index).second;
      EXPECT_EQ(B.trySet(Index), Inserted);
    } else {
      bool Erased = Reference.erase(Index) > 0;
      EXPECT_EQ(B.tryClear(Index), Erased);
    }
  }
  EXPECT_EQ(B.count(), Reference.size());
  for (size_t I = 0; I < 512; ++I)
    EXPECT_EQ(B.test(I), Reference.count(I) > 0) << I;
}

} // namespace
} // namespace diehard
