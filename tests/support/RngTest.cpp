//===- tests/support/RngTest.cpp ------------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the multiply-with-carry RNG.
///
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include "support/RealRandomSource.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace diehard {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Matches = 0;
  for (int I = 0; I < 1000; ++I)
    Matches += A.next() == B.next() ? 1 : 0;
  EXPECT_LT(Matches, 5) << "nearby seeds must yield unrelated streams";
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng R(0);
  std::set<uint32_t> Values;
  for (int I = 0; I < 100; ++I)
    Values.insert(R.next());
  EXPECT_GT(Values.size(), 90u) << "zero seed must not degenerate";
}

TEST(RngTest, ReseedRestartsStream) {
  Rng R(7);
  std::vector<uint32_t> First;
  for (int I = 0; I < 16; ++I)
    First.push_back(R.next());
  R.setSeed(7);
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(R.next(), First[static_cast<size_t>(I)]);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng R(99);
  for (uint32_t Bound : {1u, 2u, 3u, 10u, 255u, 4096u, 1000003u}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(R.nextBounded(Bound), Bound);
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng R(123);
  constexpr uint32_t Bound = 16;
  constexpr int Samples = 160000;
  int Counts[Bound] = {};
  for (int I = 0; I < Samples; ++I)
    ++Counts[R.nextBounded(Bound)];
  // Expected 10000 per bucket; allow 5% deviation (far beyond 6 sigma).
  for (uint32_t B = 0; B < Bound; ++B)
    EXPECT_NEAR(Counts[B], Samples / Bound, Samples / Bound / 20)
        << "bucket " << B;
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng R(5);
  double Sum = 0.0;
  for (int I = 0; I < 10000; ++I) {
    double V = R.nextDouble();
    ASSERT_GE(V, 0.0);
    ASSERT_LT(V, 1.0);
    Sum += V;
  }
  EXPECT_NEAR(Sum / 10000.0, 0.5, 0.02) << "mean of U[0,1) samples";
}

TEST(RngTest, BitsAreBalanced) {
  Rng R(77);
  int Ones[32] = {};
  constexpr int Samples = 20000;
  for (int I = 0; I < Samples; ++I) {
    uint32_t V = R.next();
    for (int B = 0; B < 32; ++B)
      Ones[B] += (V >> B) & 1;
  }
  for (int B = 0; B < 32; ++B)
    EXPECT_NEAR(Ones[B], Samples / 2, Samples / 20)
        << "bit " << B << " is biased";
}

TEST(RngTest, Next64CombinesTwoDraws) {
  Rng A(11), B(11);
  uint64_t V = A.next64();
  uint64_t High = B.next();
  uint64_t Low = B.next();
  EXPECT_EQ(V, (High << 32) | Low);
}

TEST(RealRandomSourceTest, ProducesDistinctSeeds) {
  // Astronomically unlikely to collide if the source works.
  EXPECT_NE(realRandomSeed(), realRandomSeed());
}

} // namespace
} // namespace diehard
