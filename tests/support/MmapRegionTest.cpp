//===- tests/support/MmapRegionTest.cpp -----------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the RAII mmap wrapper.
///
//===----------------------------------------------------------------------===//

#include "support/MmapRegion.h"

#include <gtest/gtest.h>

#include <cstring>

namespace diehard {
namespace {

TEST(MmapRegionTest, MapsAndZeroFills) {
  MmapRegion R(1 << 20);
  ASSERT_NE(R.base(), nullptr);
  EXPECT_EQ(R.size(), size_t(1) << 20);
  const char *P = static_cast<const char *>(R.base());
  for (size_t I = 0; I < 4096; I += 512)
    EXPECT_EQ(P[I], 0) << "anonymous pages are demand-zero";
}

TEST(MmapRegionTest, WritableEverywhere) {
  MmapRegion R(1 << 16);
  ASSERT_NE(R.base(), nullptr);
  std::memset(R.base(), 0xAB, R.size());
  const auto *P = static_cast<const unsigned char *>(R.base());
  EXPECT_EQ(P[0], 0xAB);
  EXPECT_EQ(P[R.size() - 1], 0xAB);
}

TEST(MmapRegionTest, ContainsIsExact) {
  MmapRegion R(4096);
  ASSERT_NE(R.base(), nullptr);
  const char *B = static_cast<const char *>(R.base());
  EXPECT_TRUE(R.contains(B));
  EXPECT_TRUE(R.contains(B + 4095));
  EXPECT_FALSE(R.contains(B + 4096));
  EXPECT_FALSE(R.contains(B - 1));
  int Local;
  EXPECT_FALSE(R.contains(&Local));
}

TEST(MmapRegionTest, EmptyRegionBehaves) {
  MmapRegion R;
  EXPECT_EQ(R.base(), nullptr);
  EXPECT_EQ(R.size(), 0u);
  EXPECT_FALSE(R.contains(&R));
}

TEST(MmapRegionTest, MoveTransfersOwnership) {
  MmapRegion A(8192);
  void *Base = A.base();
  ASSERT_NE(Base, nullptr);
  MmapRegion B(std::move(A));
  EXPECT_EQ(B.base(), Base);
  EXPECT_EQ(A.base(), nullptr);
  MmapRegion C;
  C = std::move(B);
  EXPECT_EQ(C.base(), Base);
  EXPECT_EQ(B.base(), nullptr);
}

TEST(MmapRegionTest, UnmapIsIdempotent) {
  MmapRegion R(4096);
  R.unmap();
  EXPECT_EQ(R.base(), nullptr);
  R.unmap();
  EXPECT_EQ(R.base(), nullptr);
}

TEST(MmapRegionTest, RemapReplacesOldMapping) {
  MmapRegion R(4096);
  ASSERT_TRUE(R.map(8192));
  EXPECT_EQ(R.size(), 8192u);
  ASSERT_NE(R.base(), nullptr);
}

TEST(MmapRegionTest, PageSizeIsSane) {
  size_t Page = MmapRegion::pageSize();
  EXPECT_GE(Page, 4096u);
  EXPECT_EQ(Page & (Page - 1), 0u) << "page size must be a power of two";
}

TEST(MmapRegionDeathTest, GuardPageFaults) {
  MmapRegion R(4 * MmapRegion::pageSize());
  ASSERT_NE(R.base(), nullptr);
  ASSERT_TRUE(R.protectNone(MmapRegion::pageSize(), MmapRegion::pageSize()));
  char *Guarded = static_cast<char *>(R.base()) + MmapRegion::pageSize();
  EXPECT_DEATH({ *Guarded = 1; }, "");
}

TEST(MmapRegionTest, HugeReservationIsLazy) {
  // 8 GB of reserved-but-untouched address space must succeed: this is the
  // property that makes DieHard's M-times heap affordable.
  MmapRegion R(size_t(8) << 30);
  EXPECT_NE(R.base(), nullptr);
}

//===----------------------------------------------------------------------===//
// Page-return policy layer
//===----------------------------------------------------------------------===//

/// Restores the process defaults on scope exit — the policy and THP
/// switches are process state shared by every test in the binary.
struct PolicyDefaultsGuard {
  ~PolicyDefaultsGuard() {
    MmapRegion::setPageReturnPolicy(PageReturnPolicy::DontNeed);
    MmapRegion::setHugePageMetadata(false);
  }
};

TEST(MmapRegionTest, ReleasePageRangeDropsContentsUnderDontNeed) {
  PolicyDefaultsGuard Guard;
  MmapRegion::setPageReturnPolicy(PageReturnPolicy::DontNeed);
  const size_t Page = MmapRegion::pageSize();
  MmapRegion R(4 * Page);
  ASSERT_NE(R.base(), nullptr);
  auto *B = static_cast<unsigned char *>(R.base());
  std::memset(B, 0x5C, 4 * Page);

  // Release the two middle pages; the edges keep their bytes.
  EXPECT_EQ(MmapRegion::releasePageRange(B + Page, 2 * Page), 2 * Page);
  EXPECT_EQ(B[0], 0x5Cu);
  EXPECT_EQ(B[4 * Page - 1], 0x5Cu);
  EXPECT_EQ(B[Page], 0u) << "DONTNEED'ed page must refault demand-zero";
  EXPECT_EQ(B[3 * Page - 1], 0u);
  // Still mapped and writable after the refault.
  B[Page] = 0x21;
  EXPECT_EQ(B[Page], 0x21u);
}

TEST(MmapRegionTest, ReleasePageRangeIsInertWhenOff) {
  PolicyDefaultsGuard Guard;
  MmapRegion::setPageReturnPolicy(PageReturnPolicy::Off);
  const size_t Page = MmapRegion::pageSize();
  MmapRegion R(2 * Page);
  ASSERT_NE(R.base(), nullptr);
  auto *B = static_cast<unsigned char *>(R.base());
  std::memset(B, 0x9D, 2 * Page);
  EXPECT_EQ(MmapRegion::releasePageRange(B, 2 * Page), 0u)
      << "off means no advice and 0 bytes reported";
  EXPECT_EQ(B[0], 0x9Du) << "contents must survive untouched";
  EXPECT_EQ(B[2 * Page - 1], 0x9Du);
}

TEST(MmapRegionTest, FreePolicyReleasesWithFallback) {
  // MADV_FREE keeps pages resident (and their contents intact) until
  // memory pressure, so contents may legitimately read back either way;
  // what must hold: the advice covers the full range — via MADV_FREE where
  // the kernel has it, else the detector falls back to MADV_DONTNEED —
  // and the pages stay mapped and writable.
  PolicyDefaultsGuard Guard;
  MmapRegion::setPageReturnPolicy(PageReturnPolicy::Free);
  const size_t Page = MmapRegion::pageSize();
  MmapRegion R(2 * Page);
  ASSERT_NE(R.base(), nullptr);
  auto *B = static_cast<unsigned char *>(R.base());
  std::memset(B, 0x33, 2 * Page);
  EXPECT_EQ(MmapRegion::releasePageRange(B, 2 * Page), 2 * Page);
  B[0] = 0x44; // A write after MADV_FREE cancels the lazy free: legal.
  EXPECT_EQ(B[0], 0x44u);
  EXPECT_EQ(MmapRegion::pageReturnPolicy(), PageReturnPolicy::Free);
}

TEST(MmapRegionTest, PolicyOverrideRoundTrips) {
  PolicyDefaultsGuard Guard;
  MmapRegion::setPageReturnPolicy(PageReturnPolicy::Off);
  EXPECT_EQ(MmapRegion::pageReturnPolicy(), PageReturnPolicy::Off);
  MmapRegion::setPageReturnPolicy(PageReturnPolicy::Free);
  EXPECT_EQ(MmapRegion::pageReturnPolicy(), PageReturnPolicy::Free);
  MmapRegion::setPageReturnPolicy(PageReturnPolicy::DontNeed);
  EXPECT_EQ(MmapRegion::pageReturnPolicy(), PageReturnPolicy::DontNeed);
}

TEST(MmapRegionTest, HugePageAdviceIsHarmless) {
  // MADV_HUGEPAGE is a hint: with the switch on, advising a mapping must
  // neither fail the mapping nor disturb its contents, whatever the
  // system-wide THP setting is.
  PolicyDefaultsGuard Guard;
  MmapRegion::setHugePageMetadata(true);
  EXPECT_TRUE(MmapRegion::hugePageMetadata());
  MmapRegion R(4 << 20);
  ASSERT_NE(R.base(), nullptr);
  R.adviseHugePages();
  auto *B = static_cast<unsigned char *>(R.base());
  std::memset(B, 0x66, 4 << 20);
  EXPECT_EQ(B[0], 0x66u);
  EXPECT_EQ(B[(4 << 20) - 1], 0x66u);
  MmapRegion::setHugePageMetadata(false);
  EXPECT_FALSE(MmapRegion::hugePageMetadata());
  R.adviseHugePages(); // Switch off: a silent no-op.
}

//===----------------------------------------------------------------------===//
// Meshable (memfd-backed) mode
//===----------------------------------------------------------------------===//

/// Maps a small meshable region or skips the test on kernels without
/// memfd_create. Every page is pre-touched with a distinct byte so remaps
/// are observable by content.
bool mapMeshableOrSkip(MmapRegion &R, size_t Pages) {
  const size_t Page = MmapRegion::pageSize();
  if (!R.mapMeshable(Pages * Page))
    return false;
  auto *B = static_cast<unsigned char *>(R.base());
  for (size_t P = 0; P < Pages; ++P)
    std::memset(B + P * Page, 0x10 + static_cast<int>(P), Page);
  return true;
}

TEST(MmapRegionTest, MeshableMapsLikePrivate) {
  MmapRegion R;
  const size_t Page = MmapRegion::pageSize();
  if (!R.mapMeshable(4 * Page))
    GTEST_SKIP() << "no memfd support on this kernel";
  EXPECT_TRUE(R.meshable());
  EXPECT_EQ(R.numPages(), 4u);
  EXPECT_EQ(R.size(), 4 * Page);
  auto *B = static_cast<unsigned char *>(R.base());
  for (size_t I = 0; I < 4 * Page; I += 511)
    EXPECT_EQ(B[I], 0u) << "meshable pages are demand-zero";
  std::memset(B, 0xC7, 4 * Page);
  EXPECT_EQ(B[4 * Page - 1], 0xC7u);
  // A plain region reports not-meshable.
  MmapRegion Plain(Page);
  EXPECT_FALSE(Plain.meshable());
  EXPECT_EQ(Plain.numPages(), 0u);
}

TEST(MmapRegionTest, RemapAliasesFrameAndIsIdempotent) {
  MmapRegion R;
  if (!mapMeshableOrSkip(R, 4))
    GTEST_SKIP() << "no memfd support on this kernel";
  const size_t Page = MmapRegion::pageSize();
  auto *B = static_cast<unsigned char *>(R.base());

  ASSERT_TRUE(R.remapPageTo(2, 0));
  EXPECT_EQ(R.meshTargetOf(2), 0u);
  EXPECT_EQ(R.frameRefs(0), 1u);
  EXPECT_TRUE(R.pageMeshed(2));
  EXPECT_TRUE(R.pageMeshed(0));
  EXPECT_FALSE(R.pageMeshed(1));
  // Page 2's virtual address now reads frame 0's content, and a write
  // through either address is visible through both (one frame).
  EXPECT_EQ(B[2 * Page], 0x10u);
  B[2 * Page + 5] = 0xEE;
  EXPECT_EQ(B[5], 0xEEu);

  // Idempotent: re-remapping onto the current target is a cheap yes.
  EXPECT_TRUE(R.remapPageTo(2, 0));
  EXPECT_EQ(R.frameRefs(0), 1u) << "idempotent remap must not re-count";
}

TEST(MmapRegionTest, RemapEnforcesStrictlyPairwiseMeshing) {
  MmapRegion R;
  if (!mapMeshableOrSkip(R, 4))
    GTEST_SKIP() << "no memfd support on this kernel";
  ASSERT_TRUE(R.remapPageTo(2, 0));
  // A page that has been remapped away may not re-target elsewhere...
  EXPECT_FALSE(R.remapPageTo(2, 1));
  // ...no one may mesh onto a donor whose own page is remapped away...
  EXPECT_FALSE(R.remapPageTo(3, 2));
  // ...and a survivor hosting a sibling may not itself donate.
  EXPECT_FALSE(R.remapPageTo(0, 1));
  // An untouched pair still pairs.
  EXPECT_TRUE(R.remapPageTo(3, 1));
  EXPECT_EQ(R.frameRefs(1), 1u);
}

TEST(MmapRegionTest, UnmeshRestoresIdentityAndRefaultsZero) {
  PolicyDefaultsGuard Guard;
  MmapRegion::setPageReturnPolicy(PageReturnPolicy::DontNeed);
  MmapRegion R;
  if (!mapMeshableOrSkip(R, 4))
    GTEST_SKIP() << "no memfd support on this kernel";
  const size_t Page = MmapRegion::pageSize();
  auto *B = static_cast<unsigned char *>(R.base());
  ASSERT_TRUE(R.remapPageTo(2, 0));
  // Identity restore: the remap away punched page 2's own frame, so the
  // refault after unmesh reads zero — page-return semantics, by design.
  ASSERT_TRUE(R.remapPageTo(2, 2));
  EXPECT_FALSE(R.pageMeshed(2));
  EXPECT_FALSE(R.pageMeshed(0));
  EXPECT_EQ(R.frameRefs(0), 0u);
  EXPECT_EQ(R.meshTargetOf(2), 2u);
  EXPECT_EQ(B[2 * Page], 0u) << "donor frame was punched; refault is zero";
  EXPECT_EQ(B[0], 0x10u) << "survivor frame is untouched by the unmesh";
  // The restored page is independent flesh again: writes stay local.
  B[2 * Page] = 0x77;
  EXPECT_EQ(B[0], 0x10u);
  // Identity restore of an identity page is a no-op success.
  EXPECT_TRUE(R.remapPageTo(1, 1));
}

TEST(MmapRegionTest, FrameScratchRebuildsAPunchedFrame) {
  MmapRegion R;
  if (!mapMeshableOrSkip(R, 4))
    GTEST_SKIP() << "no memfd support on this kernel";
  const size_t Page = MmapRegion::pageSize();
  auto *B = static_cast<unsigned char *>(R.base());
  ASSERT_TRUE(R.remapPageTo(2, 0));
  // The unmesh discipline: write the donor's bytes into its own (punched)
  // frame through a scratch mapping, then restore identity — the page
  // then reads the rebuilt content, not zero.
  void *Scratch = R.mapFrameScratch(2);
  ASSERT_NE(Scratch, nullptr);
  std::memset(Scratch, 0x5A, Page);
  MmapRegion::unmapFrameScratch(Scratch);
  ASSERT_TRUE(R.remapPageTo(2, 2));
  EXPECT_EQ(B[2 * Page], 0x5Au);
  EXPECT_EQ(B[2 * Page + Page - 1], 0x5Au);
  EXPECT_EQ(B[0], 0x10u);
}

TEST(MmapRegionTest, ReleasePagesSkipsMeshedFramesUnderEveryPolicy) {
  PolicyDefaultsGuard Guard;
  for (PageReturnPolicy Policy :
       {PageReturnPolicy::DontNeed, PageReturnPolicy::Free}) {
    MmapRegion::setPageReturnPolicy(Policy);
    MmapRegion R;
    if (!mapMeshableOrSkip(R, 4))
      GTEST_SKIP() << "no memfd support on this kernel";
    const size_t Page = MmapRegion::pageSize();
    auto *B = static_cast<unsigned char *>(R.base());
    ASSERT_TRUE(R.remapPageTo(2, 0));
    B[5] = 0xAD; // Shared frame content, read via both page 0 and page 2.
    // A release sweep across all four pages must leave the meshed pair's
    // frame alone (refcounted) and reclaim only the unmeshed pages.
    size_t Released = R.releasePages(0, 4);
    EXPECT_EQ(Released, 2 * Page)
        << "exactly the two unmeshed pages reclaim";
    EXPECT_EQ(B[5], 0xADu) << "survivor frame must stay intact";
    EXPECT_EQ(B[2 * Page + 5], 0xADu) << "donor still reads through mesh";
    EXPECT_EQ(B[1 * Page], 0u) << "unmeshed page reclaimed to zero";
    EXPECT_EQ(B[3 * Page], 0u);
  }
  // Off: nothing reclaims, meshed or not.
  MmapRegion::setPageReturnPolicy(PageReturnPolicy::Off);
  MmapRegion R;
  if (!mapMeshableOrSkip(R, 2))
    GTEST_SKIP() << "no memfd support on this kernel";
  EXPECT_EQ(R.releasePages(0, 2), 0u);
  EXPECT_EQ(static_cast<unsigned char *>(R.base())[0], 0x10u);
}

TEST(MmapRegionTest, MeshGuardSerializesAndRestoresAccess) {
  MmapRegion R;
  if (!mapMeshableOrSkip(R, 2))
    GTEST_SKIP() << "no memfd support on this kernel";
  auto *B = static_cast<unsigned char *>(R.base());
  ASSERT_TRUE(MmapRegion::beginMeshGuard(B));
  // One guard process-wide: a second begin fails (its caller aborts the
  // pair and retries on a later pass).
  EXPECT_FALSE(MmapRegion::beginMeshGuard(B));
  // Reads of the guarded page are legal during the copy.
  EXPECT_EQ(B[0], 0x10u);
  MmapRegion::abortMeshGuard(B);
  // The abort restored write access; writes proceed normally.
  B[0] = 0x99;
  EXPECT_EQ(B[0], 0x99u);
  // The guard is free again.
  ASSERT_TRUE(MmapRegion::beginMeshGuard(B));
  MmapRegion::endMeshGuard();
  // endMeshGuard leaves protection alone (the remap normally restores
  // it); re-arm and abort to restore writability for the region teardown.
  ASSERT_TRUE(MmapRegion::beginMeshGuard(B));
  MmapRegion::abortMeshGuard(B);
  B[1] = 0x42;
  EXPECT_EQ(B[1], 0x42u);
}

} // namespace
} // namespace diehard
