//===- tests/support/MmapRegionTest.cpp -----------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the RAII mmap wrapper.
///
//===----------------------------------------------------------------------===//

#include "support/MmapRegion.h"

#include <gtest/gtest.h>

#include <cstring>

namespace diehard {
namespace {

TEST(MmapRegionTest, MapsAndZeroFills) {
  MmapRegion R(1 << 20);
  ASSERT_NE(R.base(), nullptr);
  EXPECT_EQ(R.size(), size_t(1) << 20);
  const char *P = static_cast<const char *>(R.base());
  for (size_t I = 0; I < 4096; I += 512)
    EXPECT_EQ(P[I], 0) << "anonymous pages are demand-zero";
}

TEST(MmapRegionTest, WritableEverywhere) {
  MmapRegion R(1 << 16);
  ASSERT_NE(R.base(), nullptr);
  std::memset(R.base(), 0xAB, R.size());
  const auto *P = static_cast<const unsigned char *>(R.base());
  EXPECT_EQ(P[0], 0xAB);
  EXPECT_EQ(P[R.size() - 1], 0xAB);
}

TEST(MmapRegionTest, ContainsIsExact) {
  MmapRegion R(4096);
  ASSERT_NE(R.base(), nullptr);
  const char *B = static_cast<const char *>(R.base());
  EXPECT_TRUE(R.contains(B));
  EXPECT_TRUE(R.contains(B + 4095));
  EXPECT_FALSE(R.contains(B + 4096));
  EXPECT_FALSE(R.contains(B - 1));
  int Local;
  EXPECT_FALSE(R.contains(&Local));
}

TEST(MmapRegionTest, EmptyRegionBehaves) {
  MmapRegion R;
  EXPECT_EQ(R.base(), nullptr);
  EXPECT_EQ(R.size(), 0u);
  EXPECT_FALSE(R.contains(&R));
}

TEST(MmapRegionTest, MoveTransfersOwnership) {
  MmapRegion A(8192);
  void *Base = A.base();
  ASSERT_NE(Base, nullptr);
  MmapRegion B(std::move(A));
  EXPECT_EQ(B.base(), Base);
  EXPECT_EQ(A.base(), nullptr);
  MmapRegion C;
  C = std::move(B);
  EXPECT_EQ(C.base(), Base);
  EXPECT_EQ(B.base(), nullptr);
}

TEST(MmapRegionTest, UnmapIsIdempotent) {
  MmapRegion R(4096);
  R.unmap();
  EXPECT_EQ(R.base(), nullptr);
  R.unmap();
  EXPECT_EQ(R.base(), nullptr);
}

TEST(MmapRegionTest, RemapReplacesOldMapping) {
  MmapRegion R(4096);
  ASSERT_TRUE(R.map(8192));
  EXPECT_EQ(R.size(), 8192u);
  ASSERT_NE(R.base(), nullptr);
}

TEST(MmapRegionTest, PageSizeIsSane) {
  size_t Page = MmapRegion::pageSize();
  EXPECT_GE(Page, 4096u);
  EXPECT_EQ(Page & (Page - 1), 0u) << "page size must be a power of two";
}

TEST(MmapRegionDeathTest, GuardPageFaults) {
  MmapRegion R(4 * MmapRegion::pageSize());
  ASSERT_NE(R.base(), nullptr);
  ASSERT_TRUE(R.protectNone(MmapRegion::pageSize(), MmapRegion::pageSize()));
  char *Guarded = static_cast<char *>(R.base()) + MmapRegion::pageSize();
  EXPECT_DEATH({ *Guarded = 1; }, "");
}

TEST(MmapRegionTest, HugeReservationIsLazy) {
  // 8 GB of reserved-but-untouched address space must succeed: this is the
  // property that makes DieHard's M-times heap affordable.
  MmapRegion R(size_t(8) << 30);
  EXPECT_NE(R.base(), nullptr);
}

} // namespace
} // namespace diehard
