//===- tests/support/MmapRegionTest.cpp -----------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the RAII mmap wrapper.
///
//===----------------------------------------------------------------------===//

#include "support/MmapRegion.h"

#include <gtest/gtest.h>

#include <cstring>

namespace diehard {
namespace {

TEST(MmapRegionTest, MapsAndZeroFills) {
  MmapRegion R(1 << 20);
  ASSERT_NE(R.base(), nullptr);
  EXPECT_EQ(R.size(), size_t(1) << 20);
  const char *P = static_cast<const char *>(R.base());
  for (size_t I = 0; I < 4096; I += 512)
    EXPECT_EQ(P[I], 0) << "anonymous pages are demand-zero";
}

TEST(MmapRegionTest, WritableEverywhere) {
  MmapRegion R(1 << 16);
  ASSERT_NE(R.base(), nullptr);
  std::memset(R.base(), 0xAB, R.size());
  const auto *P = static_cast<const unsigned char *>(R.base());
  EXPECT_EQ(P[0], 0xAB);
  EXPECT_EQ(P[R.size() - 1], 0xAB);
}

TEST(MmapRegionTest, ContainsIsExact) {
  MmapRegion R(4096);
  ASSERT_NE(R.base(), nullptr);
  const char *B = static_cast<const char *>(R.base());
  EXPECT_TRUE(R.contains(B));
  EXPECT_TRUE(R.contains(B + 4095));
  EXPECT_FALSE(R.contains(B + 4096));
  EXPECT_FALSE(R.contains(B - 1));
  int Local;
  EXPECT_FALSE(R.contains(&Local));
}

TEST(MmapRegionTest, EmptyRegionBehaves) {
  MmapRegion R;
  EXPECT_EQ(R.base(), nullptr);
  EXPECT_EQ(R.size(), 0u);
  EXPECT_FALSE(R.contains(&R));
}

TEST(MmapRegionTest, MoveTransfersOwnership) {
  MmapRegion A(8192);
  void *Base = A.base();
  ASSERT_NE(Base, nullptr);
  MmapRegion B(std::move(A));
  EXPECT_EQ(B.base(), Base);
  EXPECT_EQ(A.base(), nullptr);
  MmapRegion C;
  C = std::move(B);
  EXPECT_EQ(C.base(), Base);
  EXPECT_EQ(B.base(), nullptr);
}

TEST(MmapRegionTest, UnmapIsIdempotent) {
  MmapRegion R(4096);
  R.unmap();
  EXPECT_EQ(R.base(), nullptr);
  R.unmap();
  EXPECT_EQ(R.base(), nullptr);
}

TEST(MmapRegionTest, RemapReplacesOldMapping) {
  MmapRegion R(4096);
  ASSERT_TRUE(R.map(8192));
  EXPECT_EQ(R.size(), 8192u);
  ASSERT_NE(R.base(), nullptr);
}

TEST(MmapRegionTest, PageSizeIsSane) {
  size_t Page = MmapRegion::pageSize();
  EXPECT_GE(Page, 4096u);
  EXPECT_EQ(Page & (Page - 1), 0u) << "page size must be a power of two";
}

TEST(MmapRegionDeathTest, GuardPageFaults) {
  MmapRegion R(4 * MmapRegion::pageSize());
  ASSERT_NE(R.base(), nullptr);
  ASSERT_TRUE(R.protectNone(MmapRegion::pageSize(), MmapRegion::pageSize()));
  char *Guarded = static_cast<char *>(R.base()) + MmapRegion::pageSize();
  EXPECT_DEATH({ *Guarded = 1; }, "");
}

TEST(MmapRegionTest, HugeReservationIsLazy) {
  // 8 GB of reserved-but-untouched address space must succeed: this is the
  // property that makes DieHard's M-times heap affordable.
  MmapRegion R(size_t(8) << 30);
  EXPECT_NE(R.base(), nullptr);
}

//===----------------------------------------------------------------------===//
// Page-return policy layer
//===----------------------------------------------------------------------===//

/// Restores the process defaults on scope exit — the policy and THP
/// switches are process state shared by every test in the binary.
struct PolicyDefaultsGuard {
  ~PolicyDefaultsGuard() {
    MmapRegion::setPageReturnPolicy(PageReturnPolicy::DontNeed);
    MmapRegion::setHugePageMetadata(false);
  }
};

TEST(MmapRegionTest, ReleasePageRangeDropsContentsUnderDontNeed) {
  PolicyDefaultsGuard Guard;
  MmapRegion::setPageReturnPolicy(PageReturnPolicy::DontNeed);
  const size_t Page = MmapRegion::pageSize();
  MmapRegion R(4 * Page);
  ASSERT_NE(R.base(), nullptr);
  auto *B = static_cast<unsigned char *>(R.base());
  std::memset(B, 0x5C, 4 * Page);

  // Release the two middle pages; the edges keep their bytes.
  EXPECT_EQ(MmapRegion::releasePageRange(B + Page, 2 * Page), 2 * Page);
  EXPECT_EQ(B[0], 0x5Cu);
  EXPECT_EQ(B[4 * Page - 1], 0x5Cu);
  EXPECT_EQ(B[Page], 0u) << "DONTNEED'ed page must refault demand-zero";
  EXPECT_EQ(B[3 * Page - 1], 0u);
  // Still mapped and writable after the refault.
  B[Page] = 0x21;
  EXPECT_EQ(B[Page], 0x21u);
}

TEST(MmapRegionTest, ReleasePageRangeIsInertWhenOff) {
  PolicyDefaultsGuard Guard;
  MmapRegion::setPageReturnPolicy(PageReturnPolicy::Off);
  const size_t Page = MmapRegion::pageSize();
  MmapRegion R(2 * Page);
  ASSERT_NE(R.base(), nullptr);
  auto *B = static_cast<unsigned char *>(R.base());
  std::memset(B, 0x9D, 2 * Page);
  EXPECT_EQ(MmapRegion::releasePageRange(B, 2 * Page), 0u)
      << "off means no advice and 0 bytes reported";
  EXPECT_EQ(B[0], 0x9Du) << "contents must survive untouched";
  EXPECT_EQ(B[2 * Page - 1], 0x9Du);
}

TEST(MmapRegionTest, FreePolicyReleasesWithFallback) {
  // MADV_FREE keeps pages resident (and their contents intact) until
  // memory pressure, so contents may legitimately read back either way;
  // what must hold: the advice covers the full range — via MADV_FREE where
  // the kernel has it, else the detector falls back to MADV_DONTNEED —
  // and the pages stay mapped and writable.
  PolicyDefaultsGuard Guard;
  MmapRegion::setPageReturnPolicy(PageReturnPolicy::Free);
  const size_t Page = MmapRegion::pageSize();
  MmapRegion R(2 * Page);
  ASSERT_NE(R.base(), nullptr);
  auto *B = static_cast<unsigned char *>(R.base());
  std::memset(B, 0x33, 2 * Page);
  EXPECT_EQ(MmapRegion::releasePageRange(B, 2 * Page), 2 * Page);
  B[0] = 0x44; // A write after MADV_FREE cancels the lazy free: legal.
  EXPECT_EQ(B[0], 0x44u);
  EXPECT_EQ(MmapRegion::pageReturnPolicy(), PageReturnPolicy::Free);
}

TEST(MmapRegionTest, PolicyOverrideRoundTrips) {
  PolicyDefaultsGuard Guard;
  MmapRegion::setPageReturnPolicy(PageReturnPolicy::Off);
  EXPECT_EQ(MmapRegion::pageReturnPolicy(), PageReturnPolicy::Off);
  MmapRegion::setPageReturnPolicy(PageReturnPolicy::Free);
  EXPECT_EQ(MmapRegion::pageReturnPolicy(), PageReturnPolicy::Free);
  MmapRegion::setPageReturnPolicy(PageReturnPolicy::DontNeed);
  EXPECT_EQ(MmapRegion::pageReturnPolicy(), PageReturnPolicy::DontNeed);
}

TEST(MmapRegionTest, HugePageAdviceIsHarmless) {
  // MADV_HUGEPAGE is a hint: with the switch on, advising a mapping must
  // neither fail the mapping nor disturb its contents, whatever the
  // system-wide THP setting is.
  PolicyDefaultsGuard Guard;
  MmapRegion::setHugePageMetadata(true);
  EXPECT_TRUE(MmapRegion::hugePageMetadata());
  MmapRegion R(4 << 20);
  ASSERT_NE(R.base(), nullptr);
  R.adviseHugePages();
  auto *B = static_cast<unsigned char *>(R.base());
  std::memset(B, 0x66, 4 << 20);
  EXPECT_EQ(B[0], 0x66u);
  EXPECT_EQ(B[(4 << 20) - 1], 0x66u);
  MmapRegion::setHugePageMetadata(false);
  EXPECT_FALSE(MmapRegion::hugePageMetadata());
  R.adviseHugePages(); // Switch off: a silent no-op.
}

} // namespace
} // namespace diehard
