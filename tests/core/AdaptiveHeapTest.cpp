//===- tests/core/AdaptiveHeapTest.cpp ------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the adaptive growing heap.
///
//===----------------------------------------------------------------------===//

#include "core/AdaptiveHeap.h"

#include "baselines/AdaptiveAllocator.h"
#include "support/Rng.h"
#include "workloads/SyntheticWorkload.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

namespace diehard {
namespace {

AdaptiveOptions testOptions(double M = 2.0, uint64_t Seed = 7,
                            size_t InitialSlots = 64) {
  AdaptiveOptions O;
  O.M = M;
  O.Seed = Seed;
  O.InitialSlotsPerClass = InitialSlots;
  return O;
}

TEST(AdaptiveHeapTest, StartsEmptyAndUnreserved) {
  AdaptiveDieHardHeap H(testOptions());
  EXPECT_EQ(H.reservedBytes(), 0u);
  for (int C = 0; C < SizeClass::NumClasses; ++C) {
    EXPECT_EQ(H.capacityOfClass(C), 0u);
    EXPECT_EQ(H.liveInClass(C), 0u);
  }
}

TEST(AdaptiveHeapTest, FirstAllocationInstallsRegion) {
  AdaptiveDieHardHeap H(testOptions());
  void *P = H.allocate(64);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(H.capacityOfClass(SizeClass::sizeToClass(64)), 64u);
  EXPECT_GT(H.reservedBytes(), 0u);
  EXPECT_EQ(H.stats().Growths, 1u);
  H.deallocate(P);
}

TEST(AdaptiveHeapTest, GrowthDoublesCapacity) {
  AdaptiveDieHardHeap H(testOptions(2.0, 3, 8));
  int C = SizeClass::sizeToClass(128);
  std::vector<void *> Held;
  // With 8 initial slots and M=2, the 5th live object forces a doubling
  // (4/8 is the bound), then 16, 32, ...
  for (int I = 0; I < 64; ++I) {
    void *P = H.allocate(128);
    ASSERT_NE(P, nullptr);
    Held.push_back(P);
  }
  EXPECT_GE(H.capacityOfClass(C), 128u)
      << "64 live objects need at least 128 slots under M=2";
  // The 1/M invariant holds at every moment.
  EXPECT_LE(static_cast<double>(H.liveInClass(C)),
            static_cast<double>(H.capacityOfClass(C)) / 2.0);
  for (void *P : Held)
    H.deallocate(P);
}

TEST(AdaptiveHeapTest, InvariantHoldsUnderChurn) {
  AdaptiveDieHardHeap H(testOptions(4.0, 9, 16));
  Rng Rand(1);
  std::vector<void *> Live;
  for (int Step = 0; Step < 20000; ++Step) {
    if (Live.empty() || (Rand.next() & 1)) {
      void *P = H.allocate(1 + Rand.nextBounded(1024));
      if (P != nullptr)
        Live.push_back(P);
    } else {
      size_t I = Rand.nextBounded(static_cast<uint32_t>(Live.size()));
      H.deallocate(Live[I]);
      Live[I] = Live.back();
      Live.pop_back();
    }
    if (Step % 1000 == 0) {
      for (int C = 0; C < SizeClass::NumClasses; ++C) {
        if (H.capacityOfClass(C) == 0)
          continue;
        ASSERT_LE(static_cast<double>(H.liveInClass(C)),
                  static_cast<double>(H.capacityOfClass(C)) / 4.0 + 1.0)
            << "class " << C << " step " << Step;
      }
    }
  }
  for (void *P : Live)
    H.deallocate(P);
}

TEST(AdaptiveHeapTest, ObjectsSurviveGrowth) {
  // Growth must never move or damage live objects (sub-regions are added,
  // never reallocated).
  AdaptiveDieHardHeap H(testOptions(2.0, 5, 8));
  std::vector<std::pair<unsigned char *, int>> Objects;
  for (int I = 0; I < 200; ++I) {
    auto *P = static_cast<unsigned char *>(H.allocate(256));
    ASSERT_NE(P, nullptr);
    std::memset(P, I & 0xFF, 256);
    Objects.push_back({P, I & 0xFF});
  }
  EXPECT_GT(H.stats().Growths, 3u) << "the class must have grown repeatedly";
  for (auto &[P, Tag] : Objects)
    for (int B = 0; B < 256; ++B)
      ASSERT_EQ(P[B], Tag);
  for (auto &[P, Tag] : Objects)
    H.deallocate(P);
}

TEST(AdaptiveHeapTest, DoubleAndInvalidFreesIgnored) {
  AdaptiveDieHardHeap H(testOptions());
  void *P = H.allocate(32);
  ASSERT_NE(P, nullptr);
  H.deallocate(P);
  H.deallocate(P); // Double free.
  int Stack;
  H.deallocate(&Stack); // Foreign pointer.
  char *Q = static_cast<char *>(H.allocate(1024));
  H.deallocate(Q + 8); // Misaligned interior pointer.
  EXPECT_EQ(H.stats().IgnoredFrees, 3u);
  EXPECT_EQ(H.getObjectSize(Q), 1024u);
  H.deallocate(Q);
}

TEST(AdaptiveHeapTest, ObjectQueriesWork) {
  AdaptiveDieHardHeap H(testOptions());
  char *P = static_cast<char *>(H.allocate(100));
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(H.getObjectSize(P), 128u);
  EXPECT_EQ(H.getObjectStart(P + 77), P);
  H.deallocate(P);
  EXPECT_EQ(H.getObjectSize(P), 0u);
  EXPECT_EQ(H.getObjectStart(P), nullptr);
}

TEST(AdaptiveHeapTest, LargeObjectsRouted) {
  AdaptiveDieHardHeap H(testOptions());
  auto *P = static_cast<char *>(H.allocate(100 * 1024));
  ASSERT_NE(P, nullptr);
  std::memset(P, 3, 100 * 1024);
  EXPECT_EQ(H.getObjectSize(P), 100u * 1024);
  EXPECT_EQ(H.stats().LargeAllocations, 1u);
  H.deallocate(P);
  EXPECT_EQ(H.stats().LargeFrees, 1u);
}

TEST(AdaptiveHeapTest, ReservationTracksDemandNotMaximum) {
  // The adaptive heap's selling point: a workload with a small live set
  // reserves memory proportional to its *live* demand, not a fixed 384 MB.
  AdaptiveOptions O = testOptions(2.0, 11, 64);
  AdaptiveAllocator A(O);
  WorkloadParams P;
  P.Name = "small";
  P.MemoryOps = 20000;
  P.MinSize = 8;
  P.MaxSize = 256;
  P.MaxLive = 200;
  P.Seed = 12;
  SyntheticWorkload W(P);
  WorkloadResult R = W.run(A);
  EXPECT_EQ(R.FailedAllocations, 0u);
  EXPECT_LT(A.heap().reservedBytes(), size_t(4) << 20)
      << "a 200-object live set must not reserve many megabytes";
}

TEST(AdaptiveHeapTest, ChecksumMatchesFixedHeap) {
  AdaptiveAllocator A(testOptions(2.0, 21));
  WorkloadParams P;
  P.Name = "check";
  P.MemoryOps = 30000;
  P.MinSize = 8;
  P.MaxSize = 2048;
  P.MaxLive = 1000;
  P.Seed = 5;
  SyntheticWorkload W(P);
  uint64_t Adaptive = W.run(A).Checksum;
  SystemAllocator System;
  EXPECT_EQ(Adaptive, W.run(System).Checksum);
}

TEST(AdaptiveHeapTest, RandomFillWorks) {
  AdaptiveOptions O = testOptions();
  O.RandomFillObjects = true;
  AdaptiveDieHardHeap H(O);
  auto *P = static_cast<uint32_t *>(H.allocate(256));
  ASSERT_NE(P, nullptr);
  int NonZero = 0;
  for (int I = 0; I < 64; ++I)
    NonZero += P[I] != 0 ? 1 : 0;
  EXPECT_GT(NonZero, 50);
  H.deallocate(P);
}

TEST(AdaptiveHeapTest, ZeroSizeReturnsNull) {
  AdaptiveDieHardHeap H(testOptions());
  EXPECT_EQ(H.allocate(0), nullptr);
}

TEST(AdaptiveHeapTest, ConcurrentGrowthAcrossClassesStaysIsolated) {
  // Growth happens one partition at a time under that partition's lock:
  // four threads repeatedly force growth in four different classes, which
  // must neither corrupt each other's regions nor serialize through a
  // shared structure (TSan checks the latter half of that claim in the
  // sanitizer lanes).
  AdaptiveDieHardHeap H(testOptions(2.0, 13, 8));
  constexpr int Threads = 4;
  constexpr int PerThread = 600; // 8 initial slots -> several doublings.
  std::atomic<int> Failures{0};
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&H, &Failures, T] {
      size_t Size = SizeClass::classToSize(T + 1); // 16 B .. 128 B
      auto Tag = static_cast<unsigned char>(0x40 + T);
      std::vector<unsigned char *> Mine;
      for (int I = 0; I < PerThread; ++I) {
        auto *P = static_cast<unsigned char *>(H.allocate(Size));
        if (P == nullptr) {
          ++Failures;
          return;
        }
        std::memset(P, Tag, Size);
        Mine.push_back(P);
      }
      for (unsigned char *P : Mine) {
        for (size_t B = 0; B < Size; ++B)
          if (P[B] != Tag) {
            ++Failures;
            return;
          }
        H.deallocate(P);
      }
    });
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(Failures.load(), 0);
  AdaptiveStats S = H.stats();
  EXPECT_EQ(S.Allocations, static_cast<uint64_t>(Threads) * PerThread);
  EXPECT_EQ(S.Frees, S.Allocations);
  EXPECT_GT(S.Growths, static_cast<uint64_t>(Threads) * 4)
      << "every driven class must have grown repeatedly";
  for (int T = 0; T < Threads; ++T)
    EXPECT_EQ(H.liveInClass(T + 1), 0u);
}

TEST(AdaptiveHeapTest, ConcurrentSameClassChurnKeepsAccounting) {
  // The other contention shape: several threads in *one* class, so every
  // operation (including growth) serializes on that class's lock. The
  // 1/M invariant and the counters must hold throughout.
  AdaptiveDieHardHeap H(testOptions(2.0, 17, 16));
  constexpr int Threads = 4;
  int C = SizeClass::sizeToClass(64);
  std::atomic<int> Failures{0};
  std::atomic<int> InvariantViolations{0};
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&H, &Failures, &InvariantViolations, C, T] {
      unsigned State = static_cast<unsigned>(T) * 2654435761u + 1;
      std::vector<void *> Live;
      for (int Step = 0; Step < 1500; ++Step) {
        State = State * 1664525u + 1013904223u;
        if (State % 2 == 0 || Live.empty()) {
          void *P = H.allocate(64);
          if (P == nullptr) {
            ++Failures;
            return;
          }
          Live.push_back(P);
        } else {
          H.deallocate(Live.back());
          Live.pop_back();
        }
        if (Step % 100 == 0) {
          // Sample the 1/M bound *while* the class is under load. The two
          // gauges are independent relaxed atomics, so a sampler can see a
          // newer InUse against an older Capacity; a slack of one
          // in-flight allocation per thread absorbs that skew.
          size_t LiveNow = H.liveInClass(C);
          size_t CapNow = H.capacityOfClass(C);
          if (LiveNow >
              static_cast<size_t>(static_cast<double>(CapNow) / 2.0) +
                  Threads)
            ++InvariantViolations;
        }
      }
      for (void *P : Live)
        H.deallocate(P);
    });
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(InvariantViolations.load(), 0)
      << "live count exceeded capacity/M while the class was under load";
  AdaptiveStats S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
  EXPECT_EQ(S.IgnoredFrees, 0u);
  EXPECT_EQ(H.liveInClass(C), 0u);
}

/// Property sweep: the 1/M invariant and growth behaviour hold for every M.
class AdaptiveExpansionSweep : public ::testing::TestWithParam<double> {};

TEST_P(AdaptiveExpansionSweep, BoundRespectedWhileLoading) {
  double M = GetParam();
  AdaptiveDieHardHeap H(testOptions(M, 31, 16));
  int C = SizeClass::sizeToClass(64);
  std::vector<void *> Held;
  for (int I = 0; I < 500; ++I) {
    void *P = H.allocate(64);
    ASSERT_NE(P, nullptr);
    Held.push_back(P);
    ASSERT_LE(static_cast<double>(H.liveInClass(C)),
              static_cast<double>(H.capacityOfClass(C)) / M + 1e-9)
        << "allocation " << I;
  }
  for (void *P : Held)
    H.deallocate(P);
}

INSTANTIATE_TEST_SUITE_P(Factors, AdaptiveExpansionSweep,
                         ::testing::Values(1.5, 2.0, 3.0, 4.0, 8.0));

} // namespace
} // namespace diehard
