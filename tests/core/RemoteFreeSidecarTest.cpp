//===- tests/core/RemoteFreeSidecarTest.cpp -------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the remote-free MPSC sidecar and adaptive cache sizing: the
/// cross-shard flush path that never touches the remote partition's mutex
/// (asserted through the RemoteFrees/SidecarDrains counters), opportunistic
/// owner-side drains at the refill boundary, double-free detection at push
/// and at drain time, stats reconciliation (Allocations == Frees with frees
/// still in flight), a TSan-covered cross-shard free storm through full
/// sidecars, and the adaptive-K grow/shrink policy with surplus slots
/// returned to their partition.
///
/// The storm test scales with DIEHARD_STRESS_ITERS (a multiplier, default
/// 1) so the nightly CI lane can run it at elevated counts.
///
//===----------------------------------------------------------------------===//

#include "core/ShardedHeap.h"

#include "core/SizeClass.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

namespace diehard {
namespace {

/// Iteration multiplier for the storm test, from DIEHARD_STRESS_ITERS
/// (the nightly stress lane raises it; default 1, clamped to [1, 1000]).
int stressMultiplier() {
  const char *V = std::getenv("DIEHARD_STRESS_ITERS");
  if (V == nullptr || *V == '\0')
    return 1;
  long N = std::strtol(V, nullptr, 10);
  return N < 1 ? 1 : (N > 1000 ? 1000 : static_cast<int>(N));
}

/// Small fixed-seed sharded heap with the cache tier on: per-class
/// partitions are 16 * MaxObjectSize, so the 256-byte class has 1024 slots
/// and a 1/M threshold of 512.
ShardedHeapOptions sidecarOptions(size_t Shards, size_t CacheSlots = 16,
                                  uint64_t Seed = 42,
                                  bool Adaptive = false) {
  ShardedHeapOptions O;
  O.Heap.HeapSize = SizeClass::NumClasses * SizeClass::MaxObjectSize * 16;
  O.Heap.Seed = Seed;
  O.NumShards = Shards;
  O.ThreadCacheSlots = CacheSlots;
  O.ThreadCacheAdaptive = Adaptive;
  return O;
}

constexpr size_t ProbeSize = 256;

/// Runs \p Fn on a freshly spawned thread whose home shard compares to
/// \p Shard as \p Equal asks, spawning (and burning a shard token on) at
/// most a few threads to find one. Thread tokens round-robin
/// process-globally, so a fresh thread hits any wanted shard within
/// numShards() spawns.
template <typename F>
void onThreadHomed(ShardedHeap &H, size_t Shard, bool Equal, F &&Fn) {
  for (size_t Attempt = 0; Attempt <= H.numShards(); ++Attempt) {
    bool Ran = false;
    std::thread T([&] {
      if ((H.homeShardIndex() == Shard) != Equal)
        return;
      Ran = true;
      Fn();
    });
    T.join();
    if (Ran)
      return;
  }
  FAIL() << "no thread landed " << (Equal ? "on" : "off") << " shard "
         << Shard;
}

TEST(RemoteFreeSidecarTest, CrossShardFlushNeverTakesTheRemoteMutex) {
  // The acceptance criterion: a cross-shard deferred-free flush performs
  // zero acquisitions of the remote partition's mutex. Observable through
  // the counters: a locked free materializes in the partition's Frees
  // immediately, while a sidecar push only moves RemoteFrees — so after
  // the flush, RemoteFrees must carry ALL the frees and the owner's
  // Frees/SidecarDrains must both still be zero.
  ShardedHeap H(sidecarOptions(2));
  ASSERT_TRUE(H.isValid());
  int Class = SizeClass::sizeToClass(ProbeSize);

  std::vector<void *> Made;
  size_t OwnerShard = SIZE_MAX;
  std::thread Producer([&] {
    OwnerShard = H.homeShardIndex();
    for (int I = 0; I < 40; ++I) {
      void *P = H.allocate(ProbeSize);
      ASSERT_NE(P, nullptr);
      Made.push_back(P);
    }
    H.flushThreadCache(); // Return unused claims; keep the 40 live.
  });
  Producer.join();
  ASSERT_LT(OwnerShard, H.numShards());
  const RandomizedPartition &Owned = H.shard(OwnerShard).partition(Class);

  onThreadHomed(H, OwnerShard, false, [&] {
    for (void *P : Made)
      H.deallocate(P); // Deferred with the remote owner pre-resolved.
    H.flushThreadCache();

    // Every free crossed shards through the sidecar: pushed, pending,
    // and never under the remote mutex.
    EXPECT_EQ(Owned.remoteFrees(), 40u);
    EXPECT_EQ(Owned.pendingRemoteFrees(), 40u);
    EXPECT_EQ(Owned.stats().Frees, 0u)
        << "a locked free on the remote partition would count here";
    EXPECT_EQ(Owned.stats().SidecarDrains, 0u);
  });

  // stats() folds in-flight sidecar entries into Frees, so the books
  // balance before any drain runs.
  DieHardStats S = H.stats();
  EXPECT_EQ(S.RemoteFrees, 40u);
  EXPECT_EQ(S.SidecarDrains, 0u);
  EXPECT_EQ(S.Allocations, 40u);
  EXPECT_EQ(S.Frees, 40u);

  // Force quiescence: the drain materializes the frees through the
  // validated path, with nothing lost or double-counted.
  EXPECT_EQ(H.drainRemoteFrees(), 40u);
  EXPECT_EQ(Owned.stats().Frees, 40u);
  EXPECT_EQ(Owned.stats().SidecarDrains, 1u);
  EXPECT_EQ(Owned.pendingRemoteFrees(), 0u);
  S = H.stats();
  EXPECT_EQ(S.Frees, 40u);
  EXPECT_EQ(S.IgnoredFrees, 0u);
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(RemoteFreeSidecarTest, RefillDrainsTheSidecarOpportunistically) {
  // The owner needs no explicit drain call: its next cache refill holds
  // the partition lock anyway and sweeps the sidecar first.
  ShardedHeap H(sidecarOptions(2));
  ASSERT_TRUE(H.isValid());
  int Class = SizeClass::sizeToClass(ProbeSize);

  std::vector<void *> Made;
  size_t OwnerShard = SIZE_MAX;
  std::thread Producer([&] {
    OwnerShard = H.homeShardIndex();
    for (int I = 0; I < 24; ++I)
      Made.push_back(H.allocate(ProbeSize));
    H.flushThreadCache(); // Empty the cache so the next allocate refills.
  });
  Producer.join();
  const RandomizedPartition &Owned = H.shard(OwnerShard).partition(Class);

  onThreadHomed(H, OwnerShard, false, [&] {
    for (void *P : Made)
      H.deallocate(P);
    H.flushThreadCache();
    EXPECT_EQ(Owned.pendingRemoteFrees(), 24u);
  });

  // An owner-homed thread allocates once: the refill's drain runs first.
  onThreadHomed(H, OwnerShard, true, [&] {
    void *P = H.allocate(ProbeSize);
    EXPECT_NE(P, nullptr);
    EXPECT_EQ(Owned.pendingRemoteFrees(), 0u)
        << "the refill boundary must have drained the sidecar";
    EXPECT_GE(Owned.stats().SidecarDrains, 1u);
    H.deallocate(P);
    H.flushThreadCache();
  });

  H.drainRemoteFrees();
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(RemoteFreeSidecarTest, DoubleFreeCaughtAtPushTime) {
  // Freeing the same object twice before the owner drains: the second
  // push finds the slot already pending and is rejected on the spot —
  // the sidecar's structure cannot be corrupted by racing double frees.
  ShardedHeap H(sidecarOptions(2));
  ASSERT_TRUE(H.isValid());
  int Class = SizeClass::sizeToClass(ProbeSize);

  void *Victim = nullptr;
  size_t OwnerShard = SIZE_MAX;
  std::thread Producer([&] {
    OwnerShard = H.homeShardIndex();
    Victim = H.allocate(ProbeSize);
    H.flushThreadCache();
  });
  Producer.join();
  ASSERT_NE(Victim, nullptr);
  const RandomizedPartition &Owned = H.shard(OwnerShard).partition(Class);

  onThreadHomed(H, OwnerShard, false, [&] {
    H.deallocate(Victim);
    H.flushThreadCache(); // First free: pushed, pending.
    H.deallocate(Victim);
    H.flushThreadCache(); // Second free: push rejected, counted.
    EXPECT_EQ(Owned.remoteFrees(), 1u);
    EXPECT_EQ(Owned.remoteFreeRejects(), 1u);
  });

  EXPECT_EQ(H.drainRemoteFrees(), 1u);
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Frees, 1u);
  EXPECT_EQ(S.IgnoredFrees, 1u) << "push-time reject folds in here";
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(RemoteFreeSidecarTest, DoubleFreeCaughtAtDrainTime) {
  // Freeing the same object twice with a drain in between: the second
  // entry travels the sidecar and is exposed as a dead slot by the
  // validated deallocate when the owner drains it.
  ShardedHeap H(sidecarOptions(2));
  ASSERT_TRUE(H.isValid());

  void *Victim = nullptr;
  size_t OwnerShard = SIZE_MAX;
  std::thread Producer([&] {
    OwnerShard = H.homeShardIndex();
    Victim = H.allocate(ProbeSize);
    H.flushThreadCache();
  });
  Producer.join();
  ASSERT_NE(Victim, nullptr);
  const RandomizedPartition &Owned = H.shard(OwnerShard).partition(
      SizeClass::sizeToClass(ProbeSize));

  onThreadHomed(H, OwnerShard, false, [&] {
    H.deallocate(Victim);
    H.flushThreadCache();
    EXPECT_EQ(H.drainRemoteFrees(), 1u); // First free materializes.
    H.deallocate(Victim);
    H.flushThreadCache(); // Second free: accepted (slot reopened) ...
    EXPECT_EQ(Owned.remoteFrees(), 2u);
  });

  EXPECT_EQ(H.drainRemoteFrees(), 1u); // ... and exposed at drain.
  EXPECT_EQ(Owned.stats().Frees, 1u);
  EXPECT_EQ(Owned.stats().IgnoredFrees, 1u);
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Frees, 1u);
  EXPECT_EQ(S.IgnoredFrees, 1u);
}

TEST(RemoteFreeSidecarTest, CrossShardFreeStormStaysConsistent) {
  // The TSan workload: producers on every shard allocate and publish;
  // consumers free whatever arrives, wherever it lives, so sidecars fill
  // and drain concurrently with claims, reclaims and locked batches.
  // Adaptive sizing is on so the storm also exercises K moving under
  // load. Scaled by DIEHARD_STRESS_ITERS for the nightly lane.
  const int Mult = stressMultiplier();
  ShardedHeapOptions O = sidecarOptions(4, 8, 77, /*Adaptive=*/true);
  O.Heap.HeapSize = SizeClass::NumClasses * SizeClass::MaxObjectSize * 64;
  ShardedHeap H(O);
  ASSERT_TRUE(H.isValid());

  std::mutex ExchangeLock;
  std::vector<std::pair<unsigned char *, size_t>> Exchange;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 8; ++T)
    Threads.emplace_back([&H, &ExchangeLock, &Exchange, &Failures, T,
                          Mult] {
      unsigned State = (T + 1) * 2654435761u;
      auto Next = [&State] {
        State = State * 1664525u + 1013904223u;
        return State;
      };
      std::vector<std::pair<unsigned char *, size_t>> Live;
      const int Steps = 3000 * Mult;
      for (int Step = 0; Step < Steps; ++Step) {
        unsigned Op = Next() % 100;
        // Allocation and retirement rates balance (35 in, 20 + 15 out,
        // with the exchange draining faster than it fills), so the live
        // set is stationary no matter the multiplier; the explicit cap
        // keeps elevated nightly runs inside the 1/M bounds regardless.
        if ((Op < 35 && Live.size() < 600) || Live.empty()) {
          size_t Size = 1 + Next() % 1024;
          auto *P = static_cast<unsigned char *>(H.allocate(Size));
          if (P == nullptr) {
            ++Failures;
            return;
          }
          std::memset(P, static_cast<int>(T + 1), Size);
          Live.emplace_back(P, Size);
        } else if (Op < 55) {
          std::lock_guard<std::mutex> G(ExchangeLock);
          Exchange.push_back(Live.back());
          Live.pop_back();
        } else if (Op < 85) {
          std::unique_lock<std::mutex> G(ExchangeLock);
          if (!Exchange.empty()) {
            auto [P, Size] = Exchange.back();
            Exchange.pop_back();
            G.unlock();
            // Cross-thread (usually cross-shard): rides a sidecar at the
            // next deferred flush.
            H.deallocate(P);
          }
        } else {
          H.deallocate(Live.back().first);
          Live.pop_back();
        }
      }
      for (auto &[P, Size] : Live)
        H.deallocate(P);
    });
  for (std::thread &T : Threads)
    T.join();
  for (auto &[P, Size] : Exchange)
    H.deallocate(P);
  H.flushThreadCache();
  H.drainRemoteFrees();

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(H.cachedSlots(), 0u);
  EXPECT_EQ(H.bytesLive(), 0u);
  EXPECT_EQ(H.pendingRemoteFrees(), 0u);
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees)
      << "sidecar traffic must reconcile at quiescence";
  EXPECT_EQ(S.IgnoredFrees, 0u);
  EXPECT_GT(S.RemoteFrees, 0u) << "the storm must exercise the sidecars";
  EXPECT_GE(S.SidecarDrains, 1u);
}

TEST(RemoteFreeSidecarTest, AdaptiveKGrowsOnHotTraffic) {
  // A class refilling repeatedly within one sweep window doubles its K
  // toward the cap (8x the base), so steady allocation takes ever fewer
  // lock round-trips.
  ShardedHeap H(sidecarOptions(1, 8, 11, /*Adaptive=*/true));
  ASSERT_TRUE(H.isValid());
  constexpr size_t HotSize = 64;
  int Hot = SizeClass::sizeToClass(HotSize);
  EXPECT_EQ(H.threadCacheTargetK(Hot), 0u) << "no cache before first use";

  std::vector<void *> Held;
  for (int I = 0; I < 600; ++I) {
    void *P = H.allocate(HotSize);
    ASSERT_NE(P, nullptr);
    Held.push_back(P);
  }
  EXPECT_EQ(H.threadCacheTargetK(Hot), 64u)
      << "8 base slots must have grown to the 8x cap";

  for (void *P : Held)
    H.deallocate(P);
  H.flushThreadCache();
  H.drainRemoteFrees();
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
}

TEST(RemoteFreeSidecarTest, AdaptiveKShrinksAndReturnsSurplusWhenIdle) {
  // A hot class gone idle is swept: its K halves per idle window down to
  // the floor and the cached surplus above the new K is returned to the
  // partition via reclaimSlots, releasing its claim on the 1/M bound.
  ShardedHeap H(sidecarOptions(1, 8, 12, /*Adaptive=*/true));
  ASSERT_TRUE(H.isValid());
  constexpr size_t IdleSize = 64, BusySize = 1024;
  int Idle = SizeClass::sizeToClass(IdleSize);
  const RandomizedPartition &IdlePart = H.shard(0).partition(Idle);

  // Phase 1: make the class hot; grow K to the cap and leave its buffer
  // holding claimed slots.
  std::vector<void *> Held;
  for (int I = 0; I < 600; ++I)
    Held.push_back(H.allocate(IdleSize));
  ASSERT_EQ(H.threadCacheTargetK(Idle), 64u);
  for (void *P : Held)
    H.deallocate(P);
  Held.clear();
  size_t CachedAfterHot = IdlePart.live();
  EXPECT_GT(CachedAfterHot, 2u) << "the buffer must hold claimed slots";

  // Phase 2: hammer a different class only. Deferred flushes and refills
  // tick the sweep clock; five idle windows walk K from 64 down to the
  // floor of base/4 = 2, reclaiming the surplus along the way.
  for (int I = 0; I < 4000; ++I) {
    void *P = H.allocate(BusySize);
    ASSERT_NE(P, nullptr);
    H.deallocate(P);
  }
  EXPECT_EQ(H.threadCacheTargetK(Idle), 2u)
      << "idle sweeps must have halved K to the floor";
  EXPECT_LE(IdlePart.live(), 2u)
      << "surplus cached slots must be back in the partition";
  EXPECT_GT(IdlePart.stats().ReturnedSlots, 0u);

  H.flushThreadCache();
  H.drainRemoteFrees();
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
  EXPECT_EQ(H.bytesLive(), 0u);
}

} // namespace
} // namespace diehard
