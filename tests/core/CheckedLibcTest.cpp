//===- tests/core/CheckedLibcTest.cpp -------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the bounds-clamping libc replacements.
///
//===----------------------------------------------------------------------===//

#include "core/CheckedLibc.h"

#include "core/DieHardHeap.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace diehard {
namespace {

class CheckedLibcTest : public ::testing::Test {
protected:
  CheckedLibcTest() : Heap(makeOptions()), Checked(Heap) {}

  static DieHardOptions makeOptions() {
    DieHardOptions O;
    O.HeapSize = 24 * 1024 * 1024;
    O.Seed = 11;
    return O;
  }

  DieHardHeap Heap;
  CheckedLibc Checked;
};

TEST_F(CheckedLibcTest, StrcpyWithinBoundsCopiesAll) {
  auto *Dst = static_cast<char *>(Heap.allocate(64));
  ASSERT_NE(Dst, nullptr);
  Checked.strcpy(Dst, "hello");
  EXPECT_STREQ(Dst, "hello");
  Heap.deallocate(Dst);
}

TEST_F(CheckedLibcTest, StrcpyClampsOverflow) {
  auto *Dst = static_cast<char *>(Heap.allocate(16));
  ASSERT_NE(Dst, nullptr);
  std::string Long(200, 'A');
  Checked.strcpy(Dst, Long.c_str());
  // The destination object is exactly 16 bytes; the copy must stop at 15
  // characters plus the terminator.
  EXPECT_EQ(std::strlen(Dst), 15u);
  EXPECT_EQ(std::string(Dst), std::string(15, 'A'));
  Heap.deallocate(Dst);
}

TEST_F(CheckedLibcTest, StrcpyClampsFromInteriorPointer) {
  auto *Dst = static_cast<char *>(Heap.allocate(32));
  ASSERT_NE(Dst, nullptr);
  std::string Long(100, 'B');
  Checked.strcpy(Dst + 20, Long.c_str());
  // Only 12 bytes remain past offset 20 in a 32-byte object.
  EXPECT_EQ(std::strlen(Dst + 20), 11u);
  Heap.deallocate(Dst);
}

TEST_F(CheckedLibcTest, StrcpyOverflowDoesNotTouchNeighbourSlots) {
  // Fill the 16-byte class heavily, then overflow one object and verify
  // every other object is intact (the write was clamped, not redirected).
  std::vector<char *> Objects;
  for (int I = 0; I < 200; ++I) {
    auto *P = static_cast<char *>(Heap.allocate(16));
    ASSERT_NE(P, nullptr);
    std::memset(P, 'x', 16);
    Objects.push_back(P);
  }
  std::string Long(500, 'Z');
  Checked.strcpy(Objects[100], Long.c_str());
  for (int I = 0; I < 200; ++I) {
    if (I == 100)
      continue;
    for (int B = 0; B < 16; ++B)
      ASSERT_EQ(Objects[static_cast<size_t>(I)][B], 'x')
          << "object " << I << " byte " << B;
  }
  for (char *P : Objects)
    Heap.deallocate(P);
}

TEST_F(CheckedLibcTest, StrcpyPassesThroughForNonHeapDestination) {
  char Stack[32];
  Checked.strcpy(Stack, "stack-dest");
  EXPECT_STREQ(Stack, "stack-dest");
}

TEST_F(CheckedLibcTest, StrncpyUsesActualSpaceAsBound) {
  auto *Dst = static_cast<char *>(Heap.allocate(8));
  ASSERT_NE(Dst, nullptr);
  std::string Long(64, 'C');
  // The programmer's (wrong) bound of 64 must be overridden by the real
  // space of 8 bytes.
  Checked.strncpy(Dst, Long.c_str(), 64);
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(Dst[I], 'C');
  Heap.deallocate(Dst);
}

TEST_F(CheckedLibcTest, StrncpyHonoursSmallerUserBound) {
  auto *Dst = static_cast<char *>(Heap.allocate(64));
  ASSERT_NE(Dst, nullptr);
  std::memset(Dst, '#', 64);
  Checked.strncpy(Dst, "abcdef", 3);
  EXPECT_EQ(Dst[0], 'a');
  EXPECT_EQ(Dst[2], 'c');
  EXPECT_EQ(Dst[3], '#') << "bytes past the user bound stay untouched";
  Heap.deallocate(Dst);
}

TEST_F(CheckedLibcTest, StrncpyPadsWithNulsLikeLibc) {
  auto *Dst = static_cast<char *>(Heap.allocate(16));
  ASSERT_NE(Dst, nullptr);
  std::memset(Dst, '#', 16);
  Checked.strncpy(Dst, "ab", 10);
  EXPECT_EQ(Dst[0], 'a');
  EXPECT_EQ(Dst[1], 'b');
  for (int I = 2; I < 10; ++I)
    EXPECT_EQ(Dst[I], '\0') << I;
  EXPECT_EQ(Dst[10], '#');
  Heap.deallocate(Dst);
}

TEST_F(CheckedLibcTest, StrcatClampsAtObjectEnd) {
  auto *Dst = static_cast<char *>(Heap.allocate(16));
  ASSERT_NE(Dst, nullptr);
  Checked.strcpy(Dst, "0123456789");
  Checked.strcat(Dst, "ABCDEFGHIJ");
  EXPECT_EQ(std::strlen(Dst), 15u);
  EXPECT_EQ(std::string(Dst), "0123456789ABCDE");
  Heap.deallocate(Dst);
}

TEST_F(CheckedLibcTest, StrcatWithinBounds) {
  auto *Dst = static_cast<char *>(Heap.allocate(64));
  ASSERT_NE(Dst, nullptr);
  Checked.strcpy(Dst, "foo");
  Checked.strcat(Dst, "bar");
  EXPECT_STREQ(Dst, "foobar");
  Heap.deallocate(Dst);
}

TEST_F(CheckedLibcTest, MemcpyClamps) {
  auto *Dst = static_cast<char *>(Heap.allocate(32));
  ASSERT_NE(Dst, nullptr);
  char Src[128];
  std::memset(Src, 7, sizeof(Src));
  Checked.memcpy(Dst, Src, 128);
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(Dst[I], 7);
  Heap.deallocate(Dst);
}

TEST_F(CheckedLibcTest, MemsetClamps) {
  auto *Dst = static_cast<char *>(Heap.allocate(32));
  ASSERT_NE(Dst, nullptr);
  Checked.memset(Dst, 9, 4096);
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(Dst[I], 9);
  Heap.deallocate(Dst);
}

TEST_F(CheckedLibcTest, AvailableSpaceGeometry) {
  auto *Dst = static_cast<char *>(Heap.allocate(100)); // Rounds to 128.
  ASSERT_NE(Dst, nullptr);
  EXPECT_EQ(Checked.availableSpace(Dst), 128u);
  EXPECT_EQ(Checked.availableSpace(Dst + 100), 28u);
  EXPECT_EQ(Checked.availableSpace(Dst + 127), 1u);
  int Stack;
  EXPECT_EQ(Checked.availableSpace(&Stack), SIZE_MAX);
  Heap.deallocate(Dst);
  EXPECT_EQ(Checked.availableSpace(Dst), SIZE_MAX)
      << "freed objects are not heap destinations";
}

/// Property sweep: for every size class, a strcpy of a string longer than
/// the class size is clamped to exactly classSize-1 characters, from the
/// base pointer and from an interior pointer.
class CheckedLibcClassSweep : public ::testing::TestWithParam<int> {};

TEST_P(CheckedLibcClassSweep, ClampsAtEveryClassBoundary) {
  int C = GetParam();
  DieHardOptions O;
  O.HeapSize = 96 * 1024 * 1024;
  O.Seed = 0xC1A55;
  DieHardHeap Heap(O);
  CheckedLibc Checked(Heap);

  size_t Size = SizeClass::classToSize(C);
  auto *Dst = static_cast<char *>(Heap.allocate(Size));
  ASSERT_NE(Dst, nullptr);
  std::string Long(2 * Size + 17, 'W');
  Checked.strcpy(Dst, Long.c_str());
  EXPECT_EQ(std::strlen(Dst), Size - 1) << "class " << C;

  if (Size >= 4) {
    size_t Offset = Size / 2;
    Checked.strcpy(Dst + Offset, Long.c_str());
    EXPECT_EQ(std::strlen(Dst + Offset), Size - Offset - 1)
        << "interior pointer, class " << C;
  }
  Heap.deallocate(Dst);
}

INSTANTIATE_TEST_SUITE_P(AllClasses, CheckedLibcClassSweep,
                         ::testing::Range(0, SizeClass::NumClasses));

} // namespace
} // namespace diehard
