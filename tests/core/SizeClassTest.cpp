//===- tests/core/SizeClassTest.cpp ---------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the size-class geometry.
///
//===----------------------------------------------------------------------===//

#include "core/SizeClass.h"

#include <gtest/gtest.h>

namespace diehard {
namespace {

TEST(SizeClassTest, TwelveClassesEightToSixteenK) {
  EXPECT_EQ(SizeClass::NumClasses, 12);
  EXPECT_EQ(SizeClass::classToSize(0), 8u);
  EXPECT_EQ(SizeClass::classToSize(11), 16384u);
}

TEST(SizeClassTest, ClassSizesDouble) {
  for (int C = 1; C < SizeClass::NumClasses; ++C)
    EXPECT_EQ(SizeClass::classToSize(C), 2 * SizeClass::classToSize(C - 1));
}

TEST(SizeClassTest, ExactPowersMapToOwnClass) {
  for (int C = 0; C < SizeClass::NumClasses; ++C)
    EXPECT_EQ(SizeClass::sizeToClass(SizeClass::classToSize(C)), C);
}

TEST(SizeClassTest, OneBytePastPowerBumpsClass) {
  for (int C = 0; C + 1 < SizeClass::NumClasses; ++C)
    EXPECT_EQ(SizeClass::sizeToClass(SizeClass::classToSize(C) + 1), C + 1);
}

TEST(SizeClassTest, TinySizesShareClassZero) {
  for (size_t S = 1; S <= 8; ++S)
    EXPECT_EQ(SizeClass::sizeToClass(S), 0) << S;
}

TEST(SizeClassTest, RoundUpIsIdempotentAndCovers) {
  for (size_t S = 1; S <= SizeClass::MaxObjectSize; S += 7) {
    size_t R = SizeClass::roundUp(S);
    EXPECT_GE(R, S);
    if (S >= SizeClass::MinObjectSize) {
      EXPECT_LT(R, 2 * S) << "round-up may at most double";
    }
    EXPECT_EQ(SizeClass::roundUp(R), R);
    EXPECT_EQ(R & (R - 1), 0u) << "rounded size must be a power of two";
  }
}

TEST(SizeClassTest, IsSmallBoundary) {
  EXPECT_FALSE(SizeClass::isSmall(0));
  EXPECT_TRUE(SizeClass::isSmall(1));
  EXPECT_TRUE(SizeClass::isSmall(SizeClass::MaxObjectSize));
  EXPECT_FALSE(SizeClass::isSmall(SizeClass::MaxObjectSize + 1));
}

// Edge-case regression section: the exact boundaries of the class range.

TEST(SizeClassEdgeTest, MaxObjectSizeIsLastClass) {
  EXPECT_EQ(SizeClass::sizeToClass(SizeClass::MaxObjectSize),
            SizeClass::NumClasses - 1);
  EXPECT_EQ(SizeClass::sizeToClass(SizeClass::MaxObjectSize - 1),
            SizeClass::NumClasses - 1);
  EXPECT_EQ(SizeClass::roundUp(SizeClass::MaxObjectSize),
            SizeClass::MaxObjectSize);
}

TEST(SizeClassEdgeTest, PenultimateClassBoundary) {
  // 8 KB is class 10; one byte more crosses into the final class.
  size_t Half = SizeClass::MaxObjectSize / 2;
  EXPECT_EQ(SizeClass::sizeToClass(Half), SizeClass::NumClasses - 2);
  EXPECT_EQ(SizeClass::sizeToClass(Half + 1), SizeClass::NumClasses - 1);
}

TEST(SizeClassEdgeTest, MinObjectSizeBoundary) {
  EXPECT_EQ(SizeClass::sizeToClass(SizeClass::MinObjectSize), 0);
  EXPECT_EQ(SizeClass::sizeToClass(SizeClass::MinObjectSize + 1), 1);
  EXPECT_EQ(SizeClass::roundUp(1), SizeClass::MinObjectSize);
}

/// Property sweep: sizeToClass is the inverse of classToSize on the whole
/// valid range (dlog2e of the request, minus 3 — Section 4.2).
class SizeClassSweep : public ::testing::TestWithParam<int> {};

TEST_P(SizeClassSweep, EverySizeInClassRangeMapsBack) {
  int C = GetParam();
  size_t Lo = C == 0 ? 1 : SizeClass::classToSize(C - 1) + 1;
  size_t Hi = SizeClass::classToSize(C);
  for (size_t S = Lo; S <= Hi; S += (C >= 8 ? 37 : 1))
    EXPECT_EQ(SizeClass::sizeToClass(S), C) << "size " << S;
}

INSTANTIATE_TEST_SUITE_P(AllClasses, SizeClassSweep,
                         ::testing::Range(0, SizeClass::NumClasses));

} // namespace
} // namespace diehard
