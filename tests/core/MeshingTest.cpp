//===- tests/core/MeshingTest.cpp -----------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for page meshing (DIEHARD_MESH): the sweeper-pass compaction that
/// remaps pairs of sparse pages with disjoint occupancy onto one physical
/// frame. The suite proves the acceptance properties: live objects are
/// byte-identical across a mesh (virtual-address geometry is invariant),
/// free validation — including double-free detection — still works on
/// meshed pages, freed meshed slots are reusable (allocation dissolves the
/// mesh first), frame refcounts keep the span scanner off frames a meshed
/// sibling still reads, and a multi-thread churn-vs-sweeper run is clean
/// under the sanitizer lanes. Scales with DIEHARD_STRESS_ITERS like the
/// sweeper stress tests.
///
//===----------------------------------------------------------------------===//

#include "core/DieHardHeap.h"
#include "core/ShardedHeap.h"
#include "core/SizeClass.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

namespace diehard {
namespace {

/// Iteration multiplier for the stress test (see SweeperTest).
int stressMultiplier() {
  const char *V = std::getenv("DIEHARD_STRESS_ITERS");
  if (V == nullptr || *V == '\0')
    return 1;
  long N = std::strtol(V, nullptr, 10);
  return N < 1 ? 1 : (N > 1000 ? 1000 : static_cast<int>(N));
}

constexpr size_t ObjBytes = 64;

/// A lone meshing heap sized so the 64-byte partition spans 256 data pages
/// (1 MiB): room for abundant sparse pages after churn.
DieHardOptions meshOptions(uint64_t Seed = 42) {
  DieHardOptions O;
  O.HeapSize = SizeClass::NumClasses * SizeClass::MaxObjectSize * 64;
  O.Seed = Seed;
  O.Meshing = true;
  return O;
}

/// Deterministic per-object fill pattern (distinct across objects and
/// offsets, so any cross-page smear is caught byte-exactly).
char tagByte(size_t Obj, size_t Offset) {
  return static_cast<char>((Obj * 131 + Offset * 17 + 7) & 0xFF);
}

void tagObject(char *Ptr, size_t Obj) {
  for (size_t I = 0; I < ObjBytes; ++I)
    Ptr[I] = tagByte(Obj, I);
}

::testing::AssertionResult objectIntact(const char *Ptr, size_t Obj) {
  for (size_t I = 0; I < ObjBytes; ++I)
    if (Ptr[I] != tagByte(Obj, I))
      return ::testing::AssertionFailure()
             << "object " << Obj << " corrupted at offset " << I;
  return ::testing::AssertionSuccess();
}

/// Churns the 64-byte class into a fragmentation-heavy state: allocates
/// \p Total objects, frees all but every \p KeepEvery-th, and tags the
/// survivors. Exactly the regime partial page return cannot touch (1-2
/// live objects per page) and meshing exists for.
std::vector<char *> fragment(DieHardHeap &H, size_t Total, size_t KeepEvery) {
  std::vector<char *> All;
  All.reserve(Total);
  for (size_t I = 0; I < Total; ++I) {
    auto *P = static_cast<char *>(H.allocate(ObjBytes));
    EXPECT_NE(P, nullptr);
    All.push_back(P);
  }
  std::vector<char *> Kept;
  for (size_t I = 0; I < All.size(); ++I) {
    if (I % KeepEvery == 0)
      Kept.push_back(All[I]);
    else
      H.deallocate(All[I]);
  }
  for (size_t K = 0; K < Kept.size(); ++K)
    tagObject(Kept[K], K);
  return Kept;
}

/// Two maintain() passes: the first snapshots page occupancy (the
/// quiet-page criterion needs two consecutive identical observations),
/// the second pairs and meshes. Returns pages meshed by the second.
size_t meshTwice(DieHardHeap &H, int Class) {
  H.maintain(Class);
  return H.maintain(Class).PagesMeshed;
}

TEST(MeshingTest, ContentIntegrityAcrossMesh) {
  DieHardHeap H(meshOptions());
  ASSERT_TRUE(H.isValid());
  if (!H.meshingActive())
    GTEST_SKIP() << "no memfd support on this kernel";
  const int C = SizeClass::sizeToClass(ObjBytes);
  std::vector<char *> Kept = fragment(H, 4096, 16);

  size_t Meshed = meshTwice(H, C);
  EXPECT_GT(Meshed, 0u) << "sparse disjoint pages must pair";
  const PartitionStats &PS = H.partition(C).stats();
  EXPECT_EQ(static_cast<uint64_t>(PS.PagesMeshed), Meshed);
  EXPECT_GE(static_cast<uint64_t>(PS.MeshCandidates), Meshed);
  EXPECT_EQ(static_cast<uint64_t>(PS.MeshedBytes),
            Meshed * MmapRegion::pageSize());
  EXPECT_EQ(H.partition(C).meshedPages(), Meshed);

  // Every surviving object reads back byte-identical through its original
  // (unchanged) virtual address — donors now alias survivors' frames.
  for (size_t K = 0; K < Kept.size(); ++K)
    EXPECT_TRUE(objectIntact(Kept[K], K));

  // Writes through meshed pages land correctly and stay isolated.
  for (size_t K = 0; K < Kept.size(); ++K)
    tagObject(Kept[K], K + 1000);
  for (size_t K = 0; K < Kept.size(); ++K)
    EXPECT_TRUE(objectIntact(Kept[K], K + 1000));
}

TEST(MeshingTest, DoubleFreeIntoMeshedPageCaught) {
  DieHardHeap H(meshOptions(43));
  ASSERT_TRUE(H.isValid());
  if (!H.meshingActive())
    GTEST_SKIP() << "no memfd support on this kernel";
  const int C = SizeClass::sizeToClass(ObjBytes);
  std::vector<char *> Kept = fragment(H, 4096, 16);
  ASSERT_GT(meshTwice(H, C), 0u);

  const PartitionStats &PS = H.partition(C).stats();
  uint64_t Frees = PS.Frees, Ignored = PS.IgnoredFrees;
  // A valid free of a meshed-page object validates normally...
  H.deallocate(Kept[0]);
  EXPECT_EQ(static_cast<uint64_t>(PS.Frees), Frees + 1);
  EXPECT_EQ(static_cast<uint64_t>(PS.IgnoredFrees), Ignored);
  // ...and the second free of the same address is caught and ignored:
  // the bitmap is untouched by meshing, so validation sees the truth.
  H.deallocate(Kept[0]);
  EXPECT_EQ(static_cast<uint64_t>(PS.Frees), Frees + 1);
  EXPECT_EQ(static_cast<uint64_t>(PS.IgnoredFrees), Ignored + 1);
  // An interior (misaligned) free into a meshed page is also refused.
  H.deallocate(Kept[1] + 4);
  EXPECT_EQ(static_cast<uint64_t>(PS.IgnoredFrees), Ignored + 2);
  // The neighbours survived all of it.
  for (size_t K = 2; K < Kept.size(); ++K)
    EXPECT_TRUE(objectIntact(Kept[K], K));
}

TEST(MeshingTest, FreedMeshedSlotsValidateAndReuse) {
  DieHardHeap H(meshOptions(44));
  ASSERT_TRUE(H.isValid());
  if (!H.meshingActive())
    GTEST_SKIP() << "no memfd support on this kernel";
  const int C = SizeClass::sizeToClass(ObjBytes);
  std::vector<char *> Kept = fragment(H, 4096, 16);
  ASSERT_GT(meshTwice(H, C), 0u);

  const PartitionStats &PS = H.partition(C).stats();
  uint64_t Frees = PS.Frees, Ignored = PS.IgnoredFrees;
  // Free half the survivors (many live on meshed pages): all validate.
  std::vector<char *> Still;
  for (size_t K = 0; K < Kept.size(); ++K) {
    if (K % 2 == 0) {
      Still.push_back(Kept[K]);
      continue;
    }
    H.deallocate(Kept[K]);
  }
  EXPECT_EQ(static_cast<uint64_t>(PS.Frees),
            Frees + (Kept.size() - Still.size()));
  EXPECT_EQ(static_cast<uint64_t>(PS.IgnoredFrees), Ignored);

  // Reuse: allocation onto a meshed page dissolves the mesh first, so new
  // objects can never corrupt a partner page's live bytes. Fill well past
  // the meshed population and write every new object.
  std::vector<char *> Fresh;
  for (size_t I = 0; I < 2048; ++I) {
    auto *P = static_cast<char *>(H.allocate(ObjBytes));
    ASSERT_NE(P, nullptr);
    tagObject(P, 5000 + I);
    Fresh.push_back(P);
  }
  // Both generations intact: the unmesh rebuilt donor frames correctly
  // and fresh writes stayed on their own pages.
  for (size_t K = 0; K < Still.size(); ++K)
    EXPECT_TRUE(objectIntact(Still[K], 2 * K));
  for (size_t I = 0; I < Fresh.size(); ++I)
    EXPECT_TRUE(objectIntact(Fresh[I], 5000 + I));
}

TEST(MeshingTest, FrameRefcountsSurviveSpanScansUnderEachPolicy) {
  // The span scanner runs with meshed pages present; the frame-refcount
  // skip must keep survivors' frames resident under every page-return
  // policy — a punched survivor frame would zero the donor's objects.
  PageReturnPolicy Old = MmapRegion::pageReturnPolicy();
  for (PageReturnPolicy Policy :
       {PageReturnPolicy::DontNeed, PageReturnPolicy::Free,
        PageReturnPolicy::Off}) {
    MmapRegion::setPageReturnPolicy(Policy);
    DieHardHeap H(meshOptions(45));
    ASSERT_TRUE(H.isValid());
    if (!H.meshingActive()) {
      MmapRegion::setPageReturnPolicy(Old);
      GTEST_SKIP() << "no memfd support on this kernel";
    }
    const int C = SizeClass::sizeToClass(ObjBytes);
    std::vector<char *> Kept = fragment(H, 4096, 16);
    ASSERT_GT(meshTwice(H, C), 0u);

    // Free a few more objects so the next maintain() re-runs the span
    // scanner (free-stamp gating) with the meshes in place.
    for (size_t K = 0; K + 1 < Kept.size(); K += 2)
      H.deallocate(Kept[K]);
    H.maintain(C);
    H.maintain(C);
    for (size_t K = 1; K < Kept.size(); K += 2)
      EXPECT_TRUE(objectIntact(Kept[K], K));
  }
  MmapRegion::setPageReturnPolicy(Old);
}

TEST(MeshingTest, MeshingOffByDefaultAndForcedOffWithRandomFill) {
  DieHardOptions Plain = meshOptions(46);
  Plain.Meshing = false;
  DieHardHeap H1(Plain);
  ASSERT_TRUE(H1.isValid());
  EXPECT_FALSE(H1.meshingActive());

  DieHardOptions Replica = meshOptions(46);
  Replica.RandomFillObjects = true;
  Replica.RandomFillOnFree = true;
  DieHardHeap H2(Replica);
  ASSERT_TRUE(H2.isValid());
  EXPECT_FALSE(H2.meshingActive())
      << "random-fill heaps must refuse meshing";
  const int C = SizeClass::sizeToClass(ObjBytes);
  fragment(H2, 1024, 16);
  EXPECT_EQ(meshTwice(H2, C), 0u);
  EXPECT_EQ(static_cast<uint64_t>(H2.partition(C).stats().PagesMeshed), 0u);
}

TEST(MeshingTest, MeshingChurnStress) {
  // 4 threads churn (allocate, tag, verify, rewrite, free) while the real
  // background sweeper meshes and un-meshes at a 1 ms interval. Run under
  // TSan in the nightly lane; here it is an integrity soak. Long-lived
  // tagged objects are periodically rewritten so writer-vs-mesh-copy
  // collisions actually exercise the write-quiescence guard.
  ShardedHeapOptions O;
  O.Heap.HeapSize = SizeClass::NumClasses * SizeClass::MaxObjectSize * 64;
  O.Heap.Seed = 47;
  O.Heap.Meshing = true;
  O.NumShards = 2;
  O.ThreadCacheSlots = 8;
  O.Sweeper = true;
  O.SweepIntervalMs = 1;
  ShardedHeap H(O);
  ASSERT_TRUE(H.isValid());

  const int Iters = 400 * stressMultiplier();
  constexpr int NumThreads = 4;
  constexpr size_t BatchSize = 256;
  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads);
  for (int T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&H, T, Iters] {
      std::vector<char *> Held;
      std::vector<size_t> HeldTag;
      for (int It = 0; It < Iters; ++It) {
        // Fragment: allocate a batch, keep every 8th tagged.
        std::vector<char *> Batch;
        for (size_t I = 0; I < BatchSize; ++I) {
          auto *P = static_cast<char *>(H.allocate(ObjBytes));
          if (P != nullptr)
            Batch.push_back(P);
        }
        for (size_t I = 0; I < Batch.size(); ++I) {
          if (I % 8 == 0) {
            size_t Tag = static_cast<size_t>(T) * 1000003 +
                         static_cast<size_t>(It) * 131 + I;
            tagObject(Batch[I], Tag);
            Held.push_back(Batch[I]);
            HeldTag.push_back(Tag);
          } else {
            H.deallocate(Batch[I]);
          }
        }
        // Verify and rewrite the held set (writes race mesh copies), then
        // trim it so the partitions keep crossing the sweeper's fill gate.
        for (size_t K = 0; K < Held.size(); ++K) {
          ASSERT_TRUE(objectIntact(Held[K], HeldTag[K]));
          HeldTag[K] += 7;
          tagObject(Held[K], HeldTag[K]);
        }
        while (Held.size() > 512) {
          H.deallocate(Held.back());
          Held.pop_back();
          HeldTag.pop_back();
        }
      }
      for (char *P : Held)
        H.deallocate(P);
    });
  }
  for (std::thread &T : Threads)
    T.join();

  // Quiesce and reconcile: drains + flushes leave the books exact.
  H.flushThreadCache();
  DieHardStats S = H.stats();
  EXPECT_EQ(S.IgnoredFrees, 0u) << "churn never double-frees";
}

} // namespace
} // namespace diehard
