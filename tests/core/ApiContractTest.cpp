//===- tests/core/ApiContractTest.cpp -------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation-API contracts asserted directly at the library layer, on both
/// the lone DieHardHeap and the ShardedHeap front end (the shim-level
/// mirror of these contracts lives in tests/interpose/ContractVictim.cpp,
/// which additionally runs against glibc). Everything here is semantics a
/// caller may rely on regardless of randomization: calloc overflow
/// refusal, realloc's null/zero/preservation rules, usable-size floors,
/// and nullptr discipline.
///
//===----------------------------------------------------------------------===//

#include "core/DieHardHeap.h"
#include "core/ShardedHeap.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

namespace diehard {
namespace {

DieHardOptions smallHeap(uint64_t Seed) {
  DieHardOptions O;
  O.HeapSize = 32 * 1024 * 1024;
  O.Seed = Seed;
  return O;
}

ShardedHeapOptions shardedOptions(uint64_t Seed, size_t Shards) {
  ShardedHeapOptions O;
  O.Heap = smallHeap(Seed);
  O.NumShards = Shards;
  return O;
}

TEST(ApiContractTest, CallocOverflowRefusedOnBothLayers) {
  DieHardHeap Lone(smallHeap(41));
  ShardedHeap Sharded(shardedOptions(41, 2));
  ASSERT_TRUE(Lone.isValid());
  ASSERT_TRUE(Sharded.isValid());

  // Count * Size wrapping must fail, never wrap into a small allocation.
  EXPECT_EQ(Lone.allocateZeroed(SIZE_MAX / 2, 3), nullptr);
  EXPECT_EQ(Lone.allocateZeroed(SIZE_MAX, SIZE_MAX), nullptr);
  EXPECT_EQ(Lone.allocateZeroed(SIZE_MAX / 4 + 1, 4), nullptr);
  EXPECT_EQ(Sharded.allocateZeroed(SIZE_MAX / 2, 3), nullptr);
  EXPECT_EQ(Sharded.allocateZeroed(SIZE_MAX, SIZE_MAX), nullptr);
  EXPECT_EQ(Sharded.allocateZeroed(SIZE_MAX / 4 + 1, 4), nullptr);

  // The refusal is an arithmetic guard, not an allocation attempt: the
  // books record no failed allocation for it.
  EXPECT_EQ(Lone.stats().FailedAllocations, 0u);
  EXPECT_EQ(Sharded.stats().FailedAllocations, 0u);

  // The boundary product that does NOT wrap is served (and zeroed).
  void *Edge = Lone.allocateZeroed(3, 5);
  ASSERT_NE(Edge, nullptr);
  Lone.deallocate(Edge);
}

TEST(ApiContractTest, CallocZeroesEveryByteEvenWithRandomFill) {
  // Random object fill (replica mode) runs before the zeroing; no fill
  // byte may leak through the calloc contract.
  DieHardOptions O = smallHeap(43);
  O.RandomFillObjects = true;
  O.RandomFillOnFree = true;
  DieHardHeap Heap(O);
  ASSERT_TRUE(Heap.isValid());
  for (size_t Size : {1u, 7u, 64u, 1000u, 20000u}) {
    unsigned char *P =
        static_cast<unsigned char *>(Heap.allocateZeroed(3, Size));
    ASSERT_NE(P, nullptr) << Size;
    for (size_t I = 0; I < 3 * Size; ++I)
      ASSERT_EQ(P[I], 0u) << "byte " << I << " of calloc(3, " << Size << ")";
    Heap.deallocate(P);
  }
}

TEST(ApiContractTest, ReallocNullAndZeroSemantics) {
  ShardedHeap Heap(shardedOptions(47, 2));
  ASSERT_TRUE(Heap.isValid());

  // realloc(NULL, n) behaves as malloc(n).
  void *P = Heap.reallocate(nullptr, 48);
  ASSERT_NE(P, nullptr);
  EXPECT_GE(Heap.getObjectSize(P), 48u);

  // realloc(p, 0) frees and returns null; the object is gone.
  EXPECT_EQ(Heap.reallocate(P, 0), nullptr);
  EXPECT_EQ(Heap.getObjectSize(P), 0u);

  DieHardStats S = Heap.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
  EXPECT_EQ(S.IgnoredFrees, 0u);
}

TEST(ApiContractTest, ReallocPreservesContentsAcrossTheSizeSpectrum) {
  ShardedHeap Heap(shardedOptions(53, 2));
  ASSERT_TRUE(Heap.isValid());

  // Walk the object through growth steps that cross size-class boundaries
  // and the small/large frontier; the prefix must survive every move.
  size_t Size = 5;
  unsigned char *P = static_cast<unsigned char *>(Heap.allocate(Size));
  ASSERT_NE(P, nullptr);
  for (size_t I = 0; I < Size; ++I)
    P[I] = static_cast<unsigned char>(I * 37 + 11);

  while (Size < 100000) {
    size_t NewSize = Size * 3 + 1;
    unsigned char *Q =
        static_cast<unsigned char *>(Heap.reallocate(P, NewSize));
    ASSERT_NE(Q, nullptr) << NewSize;
    for (size_t I = 0; I < Size; ++I)
      ASSERT_EQ(Q[I], static_cast<unsigned char>(I * 37 + 11))
          << "byte " << I << " after growth to " << NewSize;
    // Extend the pattern over the new tail for the next round.
    for (size_t I = Size; I < NewSize; ++I)
      Q[I] = static_cast<unsigned char>(I * 37 + 11);
    P = Q;
    Size = NewSize;
  }

  // And back down: shrinking preserves the shorter prefix.
  unsigned char *R = static_cast<unsigned char *>(Heap.reallocate(P, 9));
  ASSERT_NE(R, nullptr);
  for (size_t I = 0; I < 9; ++I)
    EXPECT_EQ(R[I], static_cast<unsigned char>(I * 37 + 11));
  Heap.deallocate(R);

  DieHardStats S = Heap.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
  EXPECT_EQ(S.LargeAllocations, S.LargeFrees);
  EXPECT_EQ(S.IgnoredFrees, 0u);
}

TEST(ApiContractTest, UsableSizeNeverUndercutsTheRequest) {
  DieHardHeap Lone(smallHeap(59));
  ShardedHeap Sharded(shardedOptions(59, 3));
  ASSERT_TRUE(Lone.isValid());
  ASSERT_TRUE(Sharded.isValid());

  for (size_t Size = 1; Size <= 40000; Size = Size * 2 + 3) {
    void *P = Lone.allocate(Size);
    void *Q = Sharded.allocate(Size);
    ASSERT_NE(P, nullptr) << Size;
    ASSERT_NE(Q, nullptr) << Size;
    EXPECT_GE(Lone.getObjectSize(P), Size);
    EXPECT_GE(Sharded.getObjectSize(Q), Size);
    // The reported size is a real floor: writing that many bytes is safe
    // (verified the hard way — sanitizer configs would trip here).
    std::memset(P, 0x7E, Lone.getObjectSize(P));
    std::memset(Q, 0x7E, Sharded.getObjectSize(Q));
    Lone.deallocate(P);
    Sharded.deallocate(Q);
  }
}

TEST(ApiContractTest, NullAndForeignPointerQueriesAreInert) {
  ShardedHeap Heap(shardedOptions(61, 2));
  ASSERT_TRUE(Heap.isValid());

  EXPECT_EQ(Heap.getObjectSize(nullptr), 0u);
  Heap.deallocate(nullptr); // free(NULL) is a no-op, not an ignored free.

  int Stack = 0;
  EXPECT_EQ(Heap.getObjectSize(&Stack), 0u);

  DieHardStats S = Heap.stats();
  EXPECT_EQ(S.IgnoredFrees, 0u);
  EXPECT_EQ(S.Allocations, 0u);
}

TEST(ApiContractTest, ZeroByteAllocationsAreDistinctAndFreeable) {
  // The library maps 0 to a minimal allocation at the shim layer; directly
  // the contract is: allocate(1) objects are distinct, freeable, and do
  // not alias.
  ShardedHeap Heap(shardedOptions(67, 2));
  ASSERT_TRUE(Heap.isValid());
  void *A = Heap.allocate(1);
  void *B = Heap.allocate(1);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_NE(A, B);
  Heap.deallocate(A);
  Heap.deallocate(B);
  DieHardStats S = Heap.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
}

} // namespace
} // namespace diehard
