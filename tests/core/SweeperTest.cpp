//===- tests/core/SweeperTest.cpp -----------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the epoch sweeper: sidecar drains without owner activity,
/// aging of quiet threads' caches without the threads exiting, partial
/// page return of quiet partitions' free spans with the bitmap metadata
/// (and so double-free detection) intact, the fill-ratio gate that keeps
/// the scanner off hot partitions, double frees exposed at the sweeper's
/// own drains, the stale-pressure-table fallback of overflow routing, and
/// sweeper-vs-allocator stress runs for the sanitizer lanes.
///
/// Deterministic cases construct the heap with the sweeper on but an
/// hour-long interval and drive passes synchronously with sweepNow(); the
/// stress case runs the background thread for real at a short interval.
/// The stress test scales with DIEHARD_STRESS_ITERS (a multiplier,
/// default 1) so the nightly CI lane can run it at elevated counts.
///
//===----------------------------------------------------------------------===//

#include "core/ShardedHeap.h"

#include "core/SizeClass.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

namespace diehard {
namespace {

/// Iteration multiplier for the stress test, from DIEHARD_STRESS_ITERS
/// (the nightly stress lane raises it; default 1, clamped to [1, 1000]).
int stressMultiplier() {
  const char *V = std::getenv("DIEHARD_STRESS_ITERS");
  if (V == nullptr || *V == '\0')
    return 1;
  long N = std::strtol(V, nullptr, 10);
  return N < 1 ? 1 : (N > 1000 ? 1000 : static_cast<int>(N));
}

/// Small fixed-seed sharded heap with the sweeper configured. The default
/// hour-long interval keeps the background thread parked so tests drive
/// every pass deterministically through sweepNow().
ShardedHeapOptions sweeperOptions(size_t Shards, size_t CacheSlots,
                                  uint32_t IntervalMs = 3600 * 1000,
                                  uint64_t Seed = 42) {
  ShardedHeapOptions O;
  O.Heap.HeapSize = SizeClass::NumClasses * SizeClass::MaxObjectSize * 16;
  O.Heap.Seed = Seed;
  O.NumShards = Shards;
  O.ThreadCacheSlots = CacheSlots;
  O.Sweeper = true;
  O.SweepIntervalMs = IntervalMs;
  return O;
}

constexpr size_t ProbeSize = 256;

/// Runs \p Fn on a freshly spawned thread whose home shard compares to
/// \p Shard as \p Equal asks (see RemoteFreeSidecarTest for the token
/// round-robin argument).
template <typename F>
void onThreadHomed(ShardedHeap &H, size_t Shard, bool Equal, F &&Fn) {
  for (size_t Attempt = 0; Attempt <= H.numShards(); ++Attempt) {
    bool Ran = false;
    std::thread T([&] {
      if ((H.homeShardIndex() == Shard) != Equal)
        return;
      Ran = true;
      Fn();
    });
    T.join();
    if (Ran)
      return;
  }
  FAIL() << "no thread landed " << (Equal ? "on" : "off") << " shard "
         << Shard;
}

TEST(SweeperTest, DrainsSidecarsWithoutOwnerActivity) {
  // In-flight cross-shard frees of a partition whose owner never
  // allocates again used to wait for the next lock holder; the sweeper
  // materializes them on its own.
  ShardedHeap H(sweeperOptions(2, /*CacheSlots=*/16));
  ASSERT_TRUE(H.isValid());
  ASSERT_TRUE(H.sweeperEnabled());
  int Class = SizeClass::sizeToClass(ProbeSize);

  std::vector<void *> Made;
  size_t OwnerShard = SIZE_MAX;
  std::thread Producer([&] {
    OwnerShard = H.homeShardIndex();
    for (int I = 0; I < 40; ++I) {
      void *P = H.allocate(ProbeSize);
      ASSERT_NE(P, nullptr);
      Made.push_back(P);
    }
    H.flushThreadCache();
  });
  Producer.join();
  const RandomizedPartition &Owned = H.shard(OwnerShard).partition(Class);

  onThreadHomed(H, OwnerShard, false, [&] {
    for (void *P : Made)
      H.deallocate(P);
    H.flushThreadCache();
    EXPECT_EQ(Owned.pendingRemoteFrees(), 40u);
  });

  // One pass, no owner-side activity anywhere: the pending frees
  // materialize through the validated path and are attributed to the
  // sweeper.
  EXPECT_GE(H.sweepNow(), 40u);
  EXPECT_EQ(Owned.pendingRemoteFrees(), 0u);
  EXPECT_EQ(H.pendingRemoteFrees(), 0u);
  DieHardStats S = H.stats();
  EXPECT_GE(S.SweeperDrainedRemote, 40u);
  EXPECT_EQ(S.Allocations, S.Frees);
  EXPECT_EQ(S.IgnoredFrees, 0u);
  EXPECT_EQ(H.bytesLive(), 0u);
  EXPECT_EQ(S.SweepPasses, 1u);
}

TEST(SweeperTest, AgesOutQuietThreadCacheWithoutThreadExit) {
  // The idle-thread reclamation scenario: a thread holds cached slots and
  // pending cross-shard frees, then goes quiet WITHOUT exiting. Two sweep
  // passes later everything it held has drained back — the gauges reach
  // zero while the thread is still alive.
  ShardedHeap H(sweeperOptions(2, /*CacheSlots=*/16));
  ASSERT_TRUE(H.isValid());

  std::vector<void *> Made;
  size_t OwnerShard = SIZE_MAX;
  std::thread Producer([&] {
    OwnerShard = H.homeShardIndex();
    for (int I = 0; I < 32; ++I)
      Made.push_back(H.allocate(ProbeSize));
    H.flushThreadCache();
  });
  Producer.join();

  // A persistent worker homed off the owner shard: it fills its cache
  // with claimed slots and its deferred buffer with cross-shard frees,
  // then falls silent — alive but making no allocator calls. Tokens
  // round-robin process-globally, so within numShards() spawns one lands
  // off-owner; workers that decline exit without touching the heap.
  std::atomic<int> Stage{0};
  std::thread Quiet;
  bool Landed = false;
  for (size_t Attempt = 0; Attempt <= H.numShards() && !Landed;
       ++Attempt) {
    std::atomic<int> Verdict{0}; // 1 = declined, 2 = running.
    Quiet = std::thread([&] {
      if (H.homeShardIndex() == OwnerShard) {
        Verdict.store(1, std::memory_order_release);
        return;
      }
      Verdict.store(2, std::memory_order_release);
      std::vector<void *> Own;
      for (int I = 0; I < 8; ++I)
        Own.push_back(H.allocate(ProbeSize));
      for (void *P : Own)
        H.deallocate(P); // Same-home deferred frees.
      for (void *P : Made)
        H.deallocate(P); // Cross-shard deferred frees.
      Stage.store(1, std::memory_order_release);
      while (Stage.load(std::memory_order_acquire) != 2)
        std::this_thread::yield(); // No allocator calls: quiet.
    });
    while (Verdict.load(std::memory_order_acquire) == 0)
      std::this_thread::yield();
    if (Verdict.load(std::memory_order_acquire) == 2) {
      Landed = true;
      while (Stage.load(std::memory_order_acquire) != 1)
        std::this_thread::yield();
    } else {
      Quiet.join();
    }
  }
  ASSERT_TRUE(Landed) << "no worker landed off shard " << OwnerShard;

  // The quiet thread holds claimed slots and unflushed deferred frees.
  EXPECT_GT(H.cachedSlots(), 0u);
  uint64_t AgedBefore = H.agedCaches();

  // Pass 1 advances the epoch past the thread's stamp; pass 2 crosses the
  // two-epoch quiet threshold and ages the cache — slots reclaimed,
  // deferred frees flushed, the cross-shard ones drained in the same pass.
  H.sweepNow();
  EXPECT_GT(H.cachedSlots(), 0u) << "cache aged one epoch too early";
  H.sweepNow();
  EXPECT_EQ(H.agedCaches(), AgedBefore + 1);
  EXPECT_EQ(H.cachedSlots(), 0u);
  EXPECT_EQ(H.pendingRemoteFrees(), 0u);
  EXPECT_EQ(H.bytesLive(), 0u);
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
  EXPECT_EQ(S.IgnoredFrees, 0u);
  EXPECT_GE(S.AgedCaches, 1u);

  // Only now release the quiet thread: reclamation happened without it
  // exiting. Its next allocator call re-syncs through the handshake.
  Stage.store(2, std::memory_order_release);
  Quiet.join();
}

TEST(SweeperTest, EmptyPartitionPagesReturnToTheOS) {
  // The degenerate span-scanner case: a fully empty partition is one
  // maximal free run, so every data page goes back to the OS; the bitmap
  // metadata stays resident, so the 1/M bound, placement and free
  // validation continue unchanged.
  ShardedHeap H(sweeperOptions(1, /*CacheSlots=*/0));
  ASSERT_TRUE(H.isValid());
  int Class = SizeClass::sizeToClass(4096);

  std::vector<void *> Held;
  for (int I = 0; I < 8; ++I) {
    auto *P = static_cast<char *>(H.allocate(4096));
    ASSERT_NE(P, nullptr);
    std::memset(P, 0x7E, 4096); // Commit the pages.
    Held.push_back(P);
  }
  for (void *P : Held)
    H.deallocate(P);
  EXPECT_EQ(H.shard(0).partition(Class).live(), 0u);
  EXPECT_FALSE(H.shard(0).partition(Class).pagesReleased());

  H.sweepNow();
  uint64_t Returned = H.pagesReturned();
  EXPECT_GE(Returned, 8u) << "eight dirtied 4 KB objects span >= 8 pages";
  EXPECT_TRUE(H.shard(0).partition(Class).pagesReleased());

  // Idempotent: no frees since the last scan, so a repeat sweep issues no
  // madvise (and does not even walk the bitmap).
  H.sweepNow();
  EXPECT_EQ(H.pagesReturned(), Returned);

  // The metadata survived: a stale double free into the released span is
  // still caught...
  H.deallocate(Held.front());
  EXPECT_EQ(H.stats().IgnoredFrees, 1u);
  // ...and an allocation un-marks only the pages its slot overlaps — the
  // rest of the partition stays released.
  void *Fresh = H.allocate(4096);
  ASSERT_NE(Fresh, nullptr);
  size_t AllReleased = H.shard(0).partition(Class).releasedPages();
  std::memset(Fresh, 0x31, 4096);
  EXPECT_TRUE(H.shard(0).partition(Class).pagesReleased());
  EXPECT_LT(H.shard(0).partition(Class).releasedPages(), Returned)
      << "the fresh slot's pages must drop off the released set";
  EXPECT_GT(AllReleased, 0u);
  // Freeing it re-arms the scan: the refaulted pages return again.
  H.deallocate(Fresh);
  H.sweepNow();
  EXPECT_GT(H.pagesReturned(), Returned);
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
  EXPECT_EQ(S.PagesReturned, H.pagesReturned());
  EXPECT_GE(S.PartialReturns, 2u);
  EXPECT_GE(S.SpansReleased, 2u);
}

TEST(SweeperTest, PartialReturnReleasesAroundPinnedObject) {
  // The asymmetry the span scanner removes: one live object used to pin
  // its entire size-class region. Now only the pages its slot overlaps
  // stay resident; every other free span goes back to the OS.
  ShardedHeap H(sweeperOptions(1, /*CacheSlots=*/0));
  ASSERT_TRUE(H.isValid());
  int Class = SizeClass::sizeToClass(4096);

  std::vector<char *> Held;
  for (int I = 0; I < 16; ++I) {
    auto *P = static_cast<char *>(H.allocate(4096));
    ASSERT_NE(P, nullptr);
    std::memset(P, 0x5A, 4096);
    Held.push_back(P);
  }
  char *Pinned = Held.back();
  Held.pop_back();
  for (char *P : Held)
    H.deallocate(P);
  EXPECT_EQ(H.shard(0).partition(Class).live(), 1u);

  H.sweepNow();
  EXPECT_TRUE(H.shard(0).partition(Class).pagesReleased())
      << "a single live object must no longer pin the whole region";
  EXPECT_GE(H.pagesReturned(), 15u)
      << "every dirtied page except the pinned object's must return";
  // The pinned object's data survived the release around it.
  for (size_t I = 0; I < 4096; ++I)
    ASSERT_EQ(Pinned[I], 0x5A) << "byte " << I << " of the live object";

  // A double free aimed into the released span is still caught: the
  // bitmap never left memory.
  H.deallocate(Held.front());
  EXPECT_EQ(H.stats().IgnoredFrees, 1u);

  H.deallocate(Pinned);
  H.sweepNow();
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(SweeperTest, FillGateSkipsHotPartitions) {
  // The sweeper only scans partitions at or below the fill gate: a hot
  // partition's bitmap is mostly set, so walking it would cost memory
  // traffic for almost no releasable pages.
  ShardedHeap H(sweeperOptions(1, /*CacheSlots=*/0));
  ASSERT_TRUE(H.isValid());
  int Class = SizeClass::sizeToClass(4096);
  size_t Threshold = H.shard(0).thresholdForClass(Class);
  ASSERT_GT(Threshold, 4u);

  // Fill past the gate, then free one object: frees have happened since
  // the last scan, but the partition is too hot to be scanned.
  size_t Hot =
      static_cast<size_t>(ShardedHeap::PartialReturnFillGate *
                          static_cast<double>(Threshold)) +
      2;
  std::vector<void *> Held;
  for (size_t I = 0; I < Hot; ++I) {
    auto *P = static_cast<char *>(H.allocate(4096));
    ASSERT_NE(P, nullptr);
    std::memset(P, 0x42, 4096);
    Held.push_back(P);
  }
  H.deallocate(Held.back());
  Held.pop_back();
  H.sweepNow();
  EXPECT_EQ(H.pagesReturned(), 0u)
      << "a partition above the fill gate must not be scanned";

  // Quiet it down below the gate: the very next pass scans and releases.
  for (void *P : Held)
    H.deallocate(P);
  H.sweepNow();
  EXPECT_GT(H.pagesReturned(), 0u);
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
}

TEST(SweeperTest, DoubleFreeCaughtAtSweeperDrain) {
  // A double free whose second push rides the sidecar is exposed by the
  // sweeper's drain through the ordinary validated path — enabling the
  // sweeper weakens no safety property.
  ShardedHeap H(sweeperOptions(2, /*CacheSlots=*/16));
  ASSERT_TRUE(H.isValid());

  void *Victim = nullptr;
  size_t OwnerShard = SIZE_MAX;
  std::thread Producer([&] {
    OwnerShard = H.homeShardIndex();
    Victim = H.allocate(ProbeSize);
    H.flushThreadCache();
  });
  Producer.join();
  ASSERT_NE(Victim, nullptr);

  onThreadHomed(H, OwnerShard, false, [&] {
    H.deallocate(Victim);
    H.flushThreadCache();
  });
  H.sweepNow(); // First free materializes (slot reopened for pushes).
  onThreadHomed(H, OwnerShard, false, [&] {
    H.deallocate(Victim);
    H.flushThreadCache();
  });
  H.sweepNow(); // Second free drains into the validated path: dead slot.

  DieHardStats S = H.stats();
  EXPECT_EQ(S.Frees, 1u);
  EXPECT_EQ(S.IgnoredFrees, 1u)
      << "the sweeper's drain must expose the double free";
  EXPECT_GE(S.SweeperDrainedRemote, 2u);
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(SweeperTest, OverflowFallsBackWhenPressureTableIsStale) {
  // Overflow routing ranks siblings from the sweeper's pressure table.
  // The table can be a whole interval stale; when every table-ranked
  // candidate is refused (or excluded), one direct-gauge round must still
  // find real capacity — staleness costs a retry, never a failure.
  ShardedHeapOptions O;
  O.Heap.HeapSize = 12 * SizeClass::MaxObjectSize * 4;
  O.Heap.Seed = 42;
  O.NumShards = 2;
  O.Sweeper = true;
  O.SweepIntervalMs = 3600 * 1000;
  ShardedHeap H(O);
  ASSERT_TRUE(H.isValid());
  int C = SizeClass::sizeToClass(4096);
  size_t Home = H.homeShardIndex();
  size_t Sibling = 1 - Home;
  size_t Threshold = H.shard(Home).thresholdForClass(C);

  // Saturate both shards' class, then publish that state to the table.
  std::vector<void *> HomeHeld, SiblingHeld;
  for (size_t I = 0; I < 2 * Threshold; ++I) {
    void *P = H.allocate(4096);
    ASSERT_NE(P, nullptr);
    (H.shardIndexOf(P) == Home ? HomeHeld : SiblingHeld).push_back(P);
  }
  H.sweepNow();
  EXPECT_EQ(H.partitionFill(Sibling, C), 1.0);

  // Free the sibling's objects WITHOUT sweeping: real capacity exists,
  // but the table still claims saturation.
  for (void *P : SiblingHeld)
    H.deallocate(P);
  H.drainRemoteFrees(); // Materialize the cross-shard frees themselves.
  EXPECT_EQ(H.shard(Sibling).liveInClass(C), 0u);

  // Home is still saturated; the table round finds no viable candidate,
  // and the gauge fallback must route to the sibling anyway.
  uint64_t OverflowBefore = H.overflowAllocations();
  void *P = H.allocate(4096);
  ASSERT_NE(P, nullptr) << "stale table must not fail the allocation";
  EXPECT_EQ(H.shardIndexOf(P), Sibling);
  EXPECT_EQ(H.overflowAllocations(), OverflowBefore + 1);

  H.deallocate(P);
  for (void *Q : HomeHeld)
    H.deallocate(Q);
  H.drainRemoteFrees();
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(SweeperTest, SweeperVersusAllocatorStressStaysConsistent) {
  // The TSan workload: the background sweeper runs at a short interval
  // while producers and consumers hammer every tier — cache pops and
  // refills under the Dekker bracket, deferred flushes, sidecar pushes,
  // overflow routing against the live pressure table, and sweeper-driven
  // aging racing thread exits. Scaled by DIEHARD_STRESS_ITERS for the
  // nightly lane.
  const int Mult = stressMultiplier();
  ShardedHeapOptions O = sweeperOptions(4, /*CacheSlots=*/8,
                                        /*IntervalMs=*/2, /*Seed=*/77);
  O.Heap.HeapSize = SizeClass::NumClasses * SizeClass::MaxObjectSize * 64;
  O.ThreadCacheAdaptive = true;
  ShardedHeap H(O);
  ASSERT_TRUE(H.isValid());
  ASSERT_TRUE(H.sweeperEnabled());

  std::mutex ExchangeLock;
  std::vector<std::pair<unsigned char *, size_t>> Exchange;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 8; ++T)
    Threads.emplace_back([&H, &ExchangeLock, &Exchange, &Failures, T,
                          Mult] {
      unsigned State = (T + 1) * 2654435761u;
      auto Next = [&State] {
        State = State * 1664525u + 1013904223u;
        return State;
      };
      std::vector<std::pair<unsigned char *, size_t>> Live;
      const int Steps = 2000 * Mult;
      for (int Step = 0; Step < Steps; ++Step) {
        unsigned Op = Next() % 100;
        if ((Op < 35 && Live.size() < 600) || Live.empty()) {
          size_t Size = 1 + Next() % 1024;
          auto *P = static_cast<unsigned char *>(H.allocate(Size));
          if (P == nullptr) {
            ++Failures;
            return;
          }
          std::memset(P, static_cast<int>(T + 1), Size);
          Live.emplace_back(P, Size);
        } else if (Op < 55) {
          std::lock_guard<std::mutex> G(ExchangeLock);
          Exchange.push_back(Live.back());
          Live.pop_back();
        } else if (Op < 85) {
          std::unique_lock<std::mutex> G(ExchangeLock);
          if (!Exchange.empty()) {
            auto [P, Size] = Exchange.back();
            Exchange.pop_back();
            G.unlock();
            H.deallocate(P);
          }
        } else {
          auto [P, Size] = Live.back();
          Live.pop_back();
          for (size_t I = 0; I < Size; ++I)
            if (P[I] != static_cast<unsigned char>(T + 1)) {
              ++Failures;
              break;
            }
          H.deallocate(P);
        }
        // An occasional breather makes some threads genuinely quiet for
        // a few sweep epochs, so aging really fires mid-run.
        if (Op == 99)
          std::this_thread::yield();
      }
      for (auto &[P, Size] : Live)
        H.deallocate(P);
    });
  for (std::thread &T : Threads)
    T.join();
  for (auto &[P, Size] : Exchange)
    H.deallocate(P);
  H.flushThreadCache();
  H.drainRemoteFrees();

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_GT(H.sweepPasses(), 0u) << "the background thread must have run";
  EXPECT_EQ(H.cachedSlots(), 0u);
  EXPECT_EQ(H.pendingRemoteFrees(), 0u);
  EXPECT_EQ(H.bytesLive(), 0u);
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees)
      << "books must balance at quiescence with the sweeper running";
  EXPECT_EQ(S.IgnoredFrees, 0u);
}

TEST(SweeperTest, PartialReturnVersusChurnStressStaysConsistent) {
  // The partial-return TSan workload: page-spanning objects churn in
  // bursts while long-held pinned survivors keep every partition
  // non-empty, so the background sweeper's span scanner is releasing
  // pages *around* live data the whole run, racing allocations that
  // refault and un-mark them. Content checks catch a page released under
  // a live object; the books catch lost or duplicated slots. Scaled by
  // DIEHARD_STRESS_ITERS for the nightly lane.
  const int Mult = stressMultiplier();
  ShardedHeapOptions O = sweeperOptions(2, /*CacheSlots=*/8,
                                        /*IntervalMs=*/2, /*Seed=*/99);
  O.Heap.HeapSize = SizeClass::NumClasses * SizeClass::MaxObjectSize * 64;
  ShardedHeap H(O);
  ASSERT_TRUE(H.isValid());
  ASSERT_TRUE(H.sweeperEnabled());

  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 4; ++T)
    Threads.emplace_back([&H, &Failures, T, Mult] {
      unsigned State = (T + 11) * 2654435761u;
      auto Next = [&State] {
        State = State * 1664525u + 1013904223u;
        return State;
      };
      const auto Tag = static_cast<unsigned char>(T + 1);
      std::vector<std::pair<unsigned char *, size_t>> Live, Pinned;
      const int Steps = 1500 * Mult;
      for (int Step = 0; Step < Steps; ++Step) {
        unsigned Op = Next() % 100;
        if ((Op < 40 && Live.size() < 200) || Live.empty()) {
          // Page-spanning sizes: 2 KB to 14 KB, so free spans form and
          // collapse across page boundaries continuously.
          size_t Size = 2048 + Next() % (12 * 1024);
          auto *P = static_cast<unsigned char *>(H.allocate(Size));
          if (P == nullptr) {
            ++Failures;
            return;
          }
          std::memset(P, Tag, Size);
          if (Pinned.size() < 8 && Op % 8 == 0)
            Pinned.emplace_back(P, Size); // Held to the end: pins pages
                                          // across hundreds of sweeps.
          else
            Live.emplace_back(P, Size);
        } else {
          // Free a burst, so whole spans actually go quiet long enough
          // for a 2 ms sweep to catch them released.
          size_t Burst = 1 + Next() % 16;
          while (Burst-- != 0 && !Live.empty()) {
            auto [P, Size] = Live.back();
            Live.pop_back();
            H.deallocate(P);
          }
        }
        if (Op >= 97)
          for (auto &[P, Size] : Pinned)
            for (size_t I = 0; I < Size; ++I)
              if (P[I] != Tag) {
                ++Failures;
                return;
              }
      }
      for (auto &[P, Size] : Pinned) {
        for (size_t I = 0; I < Size; ++I)
          if (P[I] != Tag) {
            ++Failures;
            break;
          }
        H.deallocate(P);
      }
      for (auto &[P, Size] : Live)
        H.deallocate(P);
    });
  for (std::thread &T : Threads)
    T.join();
  H.flushThreadCache();
  H.drainRemoteFrees();
  H.sweepNow(); // Everything is free now: the final scan releases it all.

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_GT(H.sweepPasses(), 0u) << "the background thread must have run";
  EXPECT_GT(H.pagesReturned(), 0u)
      << "a fully freed heap must shed its dirtied pages";
  EXPECT_EQ(H.cachedSlots(), 0u);
  EXPECT_EQ(H.pendingRemoteFrees(), 0u);
  EXPECT_EQ(H.bytesLive(), 0u);
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees)
      << "books must balance with pages released and refaulted all run";
  EXPECT_EQ(S.IgnoredFrees, 0u);
}

} // namespace
} // namespace diehard
