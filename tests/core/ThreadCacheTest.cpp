//===- tests/core/ThreadCacheTest.cpp -------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the thread-cache tier: the lock-free fast path's refill/flush
/// mechanics, the 1/M fill bound with cached-but-unissued slots counted as
/// live, thread-exit flushing (no leaked cached slots after joins),
/// cross-thread frees through the deferred buffer, heap teardown with live
/// caches, the statsApprox() snapshot, and — the paper's core claim — a
/// chi-square check that cached placement is statistically
/// indistinguishable from the uncached uniform discipline.
///
//===----------------------------------------------------------------------===//

#include "core/ThreadCache.h"

#include "core/ShardedHeap.h"
#include "core/SizeClass.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace diehard {
namespace {

/// One shard, fixed seed, cache K=16. HeapSize chosen so each partition is
/// 16 * MaxObjectSize: the 4 KB class has 64 slots and a 1/M threshold of
/// 32 — saturation and full-coverage statistics are cheap to reach.
ShardedHeapOptions cachedOptions(size_t CacheSlots = 16, uint64_t Seed = 42,
                                 size_t NumShards = 1) {
  ShardedHeapOptions O;
  O.Heap.HeapSize = SizeClass::NumClasses * SizeClass::MaxObjectSize * 16;
  O.Heap.Seed = Seed;
  O.NumShards = NumShards;
  O.ThreadCacheSlots = CacheSlots;
  return O;
}

constexpr size_t ProbeSize = 4096;

TEST(ThreadCacheTest, FirstAllocationRefillsOneBatch) {
  ShardedHeap H(cachedOptions(16));
  ASSERT_TRUE(H.isValid());
  EXPECT_EQ(H.cachedSlots(), 0u);

  void *P = H.allocate(ProbeSize);
  ASSERT_NE(P, nullptr);
  DieHardStats S = H.stats();
  EXPECT_EQ(S.CacheRefills, 1u);
  EXPECT_EQ(S.CachedSlots, 15u) << "one batch of 16, one slot handed out";
  EXPECT_EQ(S.Allocations, 1u) << "only the pop is a user allocation";

  // The next 15 allocations are pure cache pops: no further refill.
  std::vector<void *> Held{P};
  for (int I = 0; I < 15; ++I) {
    void *Q = H.allocate(ProbeSize);
    ASSERT_NE(Q, nullptr);
    Held.push_back(Q);
  }
  S = H.stats();
  EXPECT_EQ(S.CacheRefills, 1u);
  EXPECT_EQ(S.CachedSlots, 0u);
  EXPECT_EQ(S.Allocations, 16u);

  // The 17th triggers the second refill.
  Held.push_back(H.allocate(ProbeSize));
  ASSERT_NE(Held.back(), nullptr);
  EXPECT_EQ(H.stats().CacheRefills, 2u);

  for (void *Q : Held)
    H.deallocate(Q);
  H.flushThreadCache();
  EXPECT_EQ(H.cachedSlots(), 0u);
  EXPECT_EQ(H.bytesLive(), 0u);
  S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
}

TEST(ThreadCacheTest, CachedSlotsAreDistinctLiveObjects) {
  ShardedHeap H(cachedOptions(16));
  std::vector<void *> Held;
  for (int I = 0; I < 24; ++I) {
    auto *P = static_cast<unsigned char *>(H.allocate(ProbeSize));
    ASSERT_NE(P, nullptr);
    for (void *Q : Held)
      ASSERT_NE(P, Q) << "cache handed the same slot out twice";
    std::memset(P, 0x5C, ProbeSize);
    Held.push_back(P);
  }
  for (void *Q : Held)
    H.deallocate(Q);
  H.flushThreadCache();
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(ThreadCacheTest, CachedSlotsCountAgainstTheFillBound) {
  // The paper's 1/M invariant must hold with slots parked in caches: a
  // partition refuses work when live + cached hits the threshold, not
  // when user-visible allocations do.
  ShardedHeap H(cachedOptions(16));
  int Class = SizeClass::sizeToClass(ProbeSize);
  size_t Threshold = H.shard(0).thresholdForClass(Class);
  ASSERT_EQ(Threshold, 32u);
  const RandomizedPartition &Part = H.shard(0).partition(Class);

  std::vector<void *> Held;
  Held.push_back(H.allocate(ProbeSize));
  ASSERT_NE(Held.back(), nullptr);
  EXPECT_EQ(Part.live(), 16u)
      << "one user object, but the whole claimed batch is live";

  void *P;
  while ((P = H.allocate(ProbeSize)) != nullptr)
    Held.push_back(P);
  EXPECT_EQ(Part.live(), Threshold)
      << "cached slots count as live for the 1/M bound";
  EXPECT_EQ(Part.fill(), 1.0);
  EXPECT_EQ(Held.size() + H.cachedSlots(), Threshold)
      << "user objects + cached slots exactly fill the bound";
  EXPECT_LE(Held.size(), Threshold);

  // Freeing and flushing restores the full capacity.
  for (void *Q : Held)
    H.deallocate(Q);
  H.flushThreadCache();
  EXPECT_EQ(Part.live(), 0u);
  EXPECT_EQ(H.bytesLive(), 0u);
  EXPECT_NE(H.allocate(ProbeSize), nullptr);
  H.flushThreadCache();
}

TEST(ThreadCacheTest, DeferredFreesFlushInOneLockedBatch) {
  ShardedHeap H(cachedOptions(16));
  int Class = SizeClass::sizeToClass(64);
  std::vector<void *> Held;
  for (int I = 0; I < 20; ++I) {
    Held.push_back(H.allocate(64));
    ASSERT_NE(Held.back(), nullptr);
  }
  uint64_t FreesBefore = H.shard(0).partition(Class).stats().Frees;
  // 20 frees fit in the deferred buffer (capacity 2*K = 32): the partition
  // must not have seen any of them yet.
  for (void *P : Held)
    H.deallocate(P);
  EXPECT_EQ(H.shard(0).partition(Class).stats().Frees, FreesBefore);
  EXPECT_EQ(H.stats().Frees, 20u) << "stats() folds deferred frees in";

  H.flushThreadCache();
  EXPECT_EQ(H.shard(0).partition(Class).stats().Frees, FreesBefore + 20);
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(ThreadCacheTest, FullDeferredBufferFlushesAutomatically) {
  ShardedHeap H(cachedOptions(16)); // Deferred capacity = 32.
  int Class = SizeClass::sizeToClass(64);
  std::vector<void *> Held;
  for (int I = 0; I < 40; ++I) {
    Held.push_back(H.allocate(64));
    ASSERT_NE(Held.back(), nullptr);
  }
  for (void *P : Held)
    H.deallocate(P);
  // 40 frees through a 32-entry buffer: at least one automatic flush must
  // have returned the first 32 to the partition.
  EXPECT_GE(H.shard(0).partition(Class).stats().Frees, 32u);
  EXPECT_GE(H.stats().CacheFlushes, 1u);
  H.flushThreadCache();
  EXPECT_EQ(H.bytesLive(), 0u);
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
}

TEST(ThreadCacheTest, DoubleFreeThroughDeferredBufferIsIgnoredAtFlush) {
  ShardedHeap H(cachedOptions(16));
  void *P = H.allocate(64);
  ASSERT_NE(P, nullptr);
  H.deallocate(P);
  H.deallocate(P); // Both land in the deferred buffer.
  H.flushThreadCache();
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Frees, 1u) << "first free wins at flush";
  EXPECT_EQ(S.IgnoredFrees, 1u) << "second is validated away";
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(ThreadCacheTest, CrossThreadFreesRouteThroughDeferredBuffer) {
  // Four shards: the freeing thread defers frees of objects owned by
  // *other* shards; a full buffer forces a grouped flush that must route
  // every pointer back to its owning partition.
  ShardedHeap H(cachedOptions(16, 42, 4));
  ASSERT_TRUE(H.isValid());

  std::vector<void *> FromWorker;
  std::thread Producer([&] {
    for (int I = 0; I < 96; ++I) {
      void *P = H.allocate(256);
      ASSERT_NE(P, nullptr);
      std::memset(P, 0x7E, 256);
      FromWorker.push_back(P);
    }
    H.flushThreadCache(); // Return the producer's unused cached slots.
  });
  Producer.join();

  size_t Owner = H.shardIndexOf(FromWorker.front());
  ASSERT_LT(Owner, H.numShards());
  // Free everything from this thread: 96 entries overflow the 32-entry
  // deferred buffer repeatedly, so several grouped flushes reach the
  // owning shard — through its lock when this thread happens to share the
  // shard, through its lock-free sidecar otherwise. Either way the frees
  // fold into stats() immediately; the bytes stay counted live until the
  // sidecars drain.
  for (void *P : FromWorker) {
    EXPECT_EQ(H.shardIndexOf(P), Owner);
    H.deallocate(P);
  }
  H.flushThreadCache();
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, 96u);
  EXPECT_EQ(S.Frees, 96u);
  EXPECT_EQ(S.IgnoredFrees, 0u);
  H.drainRemoteFrees();
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(ThreadCacheTest, ThreadExitFlushLeavesNoCachedSlots) {
  // Waves of short-lived threads churn through the cache; every join must
  // leave CachedSlots at zero (the exit destructor returns deferred frees
  // AND unused claimed slots). The main thread deliberately never
  // allocates, so any residue would be a leak from a dead thread.
  ShardedHeapOptions O = cachedOptions(16, 7, 2);
  // Room for 8 threads' caches: every thread may park K slots per class,
  // and cached slots count against each partition's 1/M bound.
  O.Heap.HeapSize = SizeClass::NumClasses * SizeClass::MaxObjectSize * 64;
  ShardedHeap H(O);
  ASSERT_TRUE(H.isValid());

  for (int Wave = 0; Wave < 3; ++Wave) {
    std::vector<std::thread> Threads;
    for (int T = 0; T < 8; ++T)
      Threads.emplace_back([&H, Wave, T] {
        unsigned State = static_cast<unsigned>(Wave * 97 + T + 1);
        std::vector<std::pair<unsigned char *, size_t>> Live;
        for (int Step = 0; Step < 600; ++Step) {
          State = State * 1664525u + 1013904223u;
          if (State % 2 == 0 || Live.empty()) {
            size_t Size = 1 + State % 2048;
            auto *P = static_cast<unsigned char *>(H.allocate(Size));
            ASSERT_NE(P, nullptr);
            std::memset(P, 0x33, Size);
            Live.emplace_back(P, Size);
          } else {
            H.deallocate(Live.back().first);
            Live.pop_back();
          }
        }
        for (auto &[P, Size] : Live)
          H.deallocate(P);
      });
    for (std::thread &T : Threads)
      T.join();
    EXPECT_EQ(H.cachedSlots(), 0u)
        << "wave " << Wave << " leaked cached slots past its joins";
  }
  EXPECT_EQ(H.bytesLive(), 0u);
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
  EXPECT_EQ(S.CachedSlots, 0u);
}

TEST(ThreadCacheTest, HeapDestructionWithLiveCachesIsSafe) {
  // Destroy a heap while this thread still holds a cache for it; the next
  // heap must install a fresh cache (ids are never reused) and the corpse
  // must be pruned without touching the dead heap.
  {
    ShardedHeap H(cachedOptions(8));
    void *P = H.allocate(64);
    ASSERT_NE(P, nullptr);
    H.deallocate(P); // Left parked in the deferred buffer on purpose.
    EXPECT_GT(H.cachedSlots(), 0u);
  } // ~ShardedHeap retires the cache un-flushed.

  ShardedHeap Fresh(cachedOptions(8));
  void *Q = Fresh.allocate(64);
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(Fresh.stats().CacheRefills, 1u)
      << "the new heap must not inherit the dead heap's cache";
  Fresh.deallocate(Q);
  Fresh.flushThreadCache();
  EXPECT_EQ(Fresh.bytesLive(), 0u);
}

TEST(ThreadCacheTest, CacheOffMatchesLoneDieHardHeapBitForBit) {
  // ThreadCacheSlots = 0 must leave the single-shard configuration on the
  // exact code path the identity test pins down: same seed, same slots.
  DieHardOptions Plain;
  Plain.HeapSize = SizeClass::NumClasses * SizeClass::MaxObjectSize * 16;
  Plain.Seed = 42;
  DieHardHeap Reference(Plain);
  ShardedHeap Uncached(cachedOptions(0));
  ASSERT_TRUE(Reference.isValid());
  ASSERT_TRUE(Uncached.isValid());

  for (int I = 0; I < 200; ++I) {
    size_t Size = 8u << (I % 8);
    void *A = Reference.allocate(Size);
    void *B = Uncached.allocate(Size);
    ASSERT_NE(A, nullptr);
    ASSERT_NE(B, nullptr);
    ASSERT_EQ(static_cast<const char *>(A) -
                  static_cast<const char *>(Reference.heapBase()),
              static_cast<const char *>(B) -
                  static_cast<const char *>(Uncached.shard(0).heapBase()));
  }
}

TEST(ThreadCacheTest, StatsApproxMatchesExactWhenQuiescent) {
  ShardedHeap H(cachedOptions(16));
  std::vector<void *> Held;
  for (int I = 0; I < 50; ++I) {
    Held.push_back(H.allocate(1 + (I * 37) % 4000));
    ASSERT_NE(Held.back(), nullptr);
  }
  for (void *P : Held)
    H.deallocate(P);
  H.flushThreadCache(); // Folds every cache counter into the aggregates.

  DieHardStats Exact = H.stats();
  DieHardStats Approx = H.statsApprox();
  EXPECT_EQ(Approx.Allocations, Exact.Allocations);
  EXPECT_EQ(Approx.Frees, Exact.Frees);
  EXPECT_EQ(Approx.FailedAllocations, Exact.FailedAllocations);
  EXPECT_EQ(Approx.IgnoredFrees, Exact.IgnoredFrees);
  EXPECT_EQ(Approx.CachedSlots, Exact.CachedSlots);
  EXPECT_EQ(Approx.CacheRefills, Exact.CacheRefills);
  EXPECT_EQ(Approx.CacheFlushes, Exact.CacheFlushes);
  EXPECT_EQ(Approx.Probes, Exact.Probes);
}

/// Collects `Rounds` rounds of slot indices for the 4 KB class: each round
/// allocates up to the 1/M threshold, records every object's slot, then
/// frees and flushes so the next round starts from an empty partition.
std::vector<uint64_t> slotHistogram(ShardedHeap &H, int Rounds,
                                    size_t &SamplesOut) {
  int Class = SizeClass::sizeToClass(ProbeSize);
  const RandomizedPartition &Part = H.shard(0).partition(Class);
  const char *Base = static_cast<const char *>(Part.base());
  std::vector<uint64_t> Histogram(Part.slots(), 0);
  SamplesOut = 0;
  for (int R = 0; R < Rounds; ++R) {
    std::vector<void *> Held;
    void *P;
    while ((P = H.allocate(ProbeSize)) != nullptr) {
      size_t Slot =
          static_cast<size_t>(static_cast<char *>(P) - Base) / ProbeSize;
      ++Histogram[Slot];
      ++SamplesOut;
      Held.push_back(P);
    }
    for (void *Q : Held)
      H.deallocate(Q);
    H.flushThreadCache();
  }
  return Histogram;
}

TEST(ThreadCacheTest, CachedPlacementIsStatisticallyUniform) {
  // The randomization-preservation criterion, demonstrated rather than
  // asserted: slot-index distributions with and without the cache must be
  // statistically indistinguishable. Batch refills draw each slot with
  // allocate()'s exact probe discipline, so both configurations sample the
  // same process; a two-sample chi-square homogeneity test over the 64
  // slots of the 4 KB class checks it. Seeds are fixed, so the statistic
  // is deterministic — no flakiness.
  ShardedHeap Cached(cachedOptions(16, 1001));
  ShardedHeap Uncached(cachedOptions(0, 2002));
  ASSERT_TRUE(Cached.isValid());
  ASSERT_TRUE(Uncached.isValid());

  constexpr int Rounds = 300;
  size_t CachedSamples = 0, UncachedSamples = 0;
  std::vector<uint64_t> HC = slotHistogram(Cached, Rounds, CachedSamples);
  std::vector<uint64_t> HU =
      slotHistogram(Uncached, Rounds, UncachedSamples);
  ASSERT_EQ(HC.size(), HU.size());
  ASSERT_EQ(CachedSamples, UncachedSamples)
      << "both configurations must fill to the same 1/M bound";

  // Every slot must be reachable in both configurations (full support).
  for (size_t S = 0; S < HC.size(); ++S) {
    EXPECT_GT(HC[S], 0u) << "cached run never placed in slot " << S;
    EXPECT_GT(HU[S], 0u) << "uncached run never placed in slot " << S;
  }

  // Two-sample chi-square homogeneity: cells are slots, samples are the
  // two configurations. df = slots - 1 = 63; the alpha = 0.001 critical
  // value is 103.4 — accept comfortably below it.
  double Chi2 = 0.0;
  double Total = static_cast<double>(CachedSamples + UncachedSamples);
  for (size_t S = 0; S < HC.size(); ++S) {
    double RowTotal = static_cast<double>(HC[S] + HU[S]);
    double EC = RowTotal * static_cast<double>(CachedSamples) / Total;
    double EU = RowTotal * static_cast<double>(UncachedSamples) / Total;
    double DC = static_cast<double>(HC[S]) - EC;
    double DU = static_cast<double>(HU[S]) - EU;
    Chi2 += DC * DC / EC + DU * DU / EU;
  }
  EXPECT_LT(Chi2, 103.4)
      << "cached vs uncached slot distributions diverge (df=63, a=0.001)";

  // And each configuration individually must not stray from uniform.
  double Expected =
      static_cast<double>(CachedSamples) / static_cast<double>(HC.size());
  double Chi2C = 0.0, Chi2U = 0.0;
  for (size_t S = 0; S < HC.size(); ++S) {
    double DC = static_cast<double>(HC[S]) - Expected;
    double DU = static_cast<double>(HU[S]) - Expected;
    Chi2C += DC * DC / Expected;
    Chi2U += DU * DU / Expected;
  }
  EXPECT_LT(Chi2C, 103.4) << "cached placement not uniform over slots";
  EXPECT_LT(Chi2U, 103.4) << "uncached placement not uniform over slots";
}

TEST(ThreadCacheTest, AdaptiveCachedPlacementIsStatisticallyUniform) {
  // The randomization contract re-verified for adaptive sizing: moving K
  // changes only how MANY slots a refill claims — each claim still runs
  // allocate()'s exact uniform probe — so adaptive-cached placement must
  // be indistinguishable from uncached. Same two-sample chi-square
  // machinery as above; the fill-to-threshold rounds force refills at
  // several K values as the class heats up and the idle sweeps pull K
  // back between rounds.
  ShardedHeapOptions AO = cachedOptions(16, 5005);
  AO.ThreadCacheAdaptive = true;
  ShardedHeap Adaptive(AO);
  ShardedHeap Uncached(cachedOptions(0, 6006));
  ASSERT_TRUE(Adaptive.isValid());
  ASSERT_TRUE(Uncached.isValid());

  constexpr int Rounds = 300;
  size_t AdaptiveSamples = 0, UncachedSamples = 0;
  std::vector<uint64_t> HA =
      slotHistogram(Adaptive, Rounds, AdaptiveSamples);
  std::vector<uint64_t> HU =
      slotHistogram(Uncached, Rounds, UncachedSamples);
  ASSERT_EQ(HA.size(), HU.size());
  ASSERT_EQ(AdaptiveSamples, UncachedSamples)
      << "both configurations must fill to the same 1/M bound";

  double Chi2 = 0.0;
  double Total = static_cast<double>(AdaptiveSamples + UncachedSamples);
  for (size_t S = 0; S < HA.size(); ++S) {
    double RowTotal = static_cast<double>(HA[S] + HU[S]);
    double EA = RowTotal * static_cast<double>(AdaptiveSamples) / Total;
    double EU = RowTotal * static_cast<double>(UncachedSamples) / Total;
    double DA = static_cast<double>(HA[S]) - EA;
    double DU = static_cast<double>(HU[S]) - EU;
    Chi2 += DA * DA / EA + DU * DU / EU;
  }
  EXPECT_LT(Chi2, 103.4)
      << "adaptive-cached vs uncached distributions diverge (df=63)";

  double Expected = static_cast<double>(AdaptiveSamples) /
                    static_cast<double>(HA.size());
  double Chi2A = 0.0;
  for (size_t S = 0; S < HA.size(); ++S) {
    double DA = static_cast<double>(HA[S]) - Expected;
    Chi2A += DA * DA / Expected;
  }
  EXPECT_LT(Chi2A, 103.4) << "adaptive placement not uniform over slots";
}

TEST(ThreadCacheTest, ConcurrentCachedStressStaysConsistent) {
  // The TSan/ASan workload for the cache tier: several threads churning
  // mixed sizes with cross-thread frees through a shared exchange, all on
  // cached fast paths.
  ShardedHeapOptions O = cachedOptions(16, 9, 4);
  O.Heap.HeapSize = SizeClass::NumClasses * SizeClass::MaxObjectSize * 64;
  ShardedHeap H(O);
  ASSERT_TRUE(H.isValid());

  std::mutex ExchangeLock;
  std::vector<std::pair<unsigned char *, size_t>> Exchange;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 6; ++T)
    Threads.emplace_back([&H, &ExchangeLock, &Exchange, &Failures, T] {
      unsigned State = (T + 1) * 2654435761u;
      auto Next = [&State] {
        State = State * 1664525u + 1013904223u;
        return State;
      };
      std::vector<std::pair<unsigned char *, size_t>> Live;
      for (int Step = 0; Step < 4000; ++Step) {
        unsigned Op = Next() % 100;
        if (Op < 45 || Live.empty()) {
          size_t Size = 1 + Next() % 2048;
          auto *P = static_cast<unsigned char *>(H.allocate(Size));
          if (P == nullptr) {
            ++Failures;
            return;
          }
          std::memset(P, static_cast<int>(T + 1), Size);
          Live.emplace_back(P, Size);
        } else if (Op < 60) {
          std::lock_guard<std::mutex> G(ExchangeLock);
          Exchange.push_back(Live.back());
          Live.pop_back();
        } else if (Op < 75) {
          std::unique_lock<std::mutex> G(ExchangeLock);
          if (!Exchange.empty()) {
            auto [P, Size] = Exchange.back();
            Exchange.pop_back();
            G.unlock();
            H.deallocate(P); // Cross-thread: deferred with a remote owner.
          }
        } else {
          auto [P, Size] = Live.back();
          Live.pop_back();
          for (size_t I = 0; I < Size; ++I)
            if (P[I] != static_cast<unsigned char>(T + 1)) {
              ++Failures;
              return;
            }
          H.deallocate(P);
        }
      }
      for (auto &[P, Size] : Live)
        H.deallocate(P);
    });
  for (std::thread &T : Threads)
    T.join();
  for (auto &[P, Size] : Exchange)
    H.deallocate(P);
  H.flushThreadCache();
  H.drainRemoteFrees(); // Materialize in-flight cross-shard frees.

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(H.cachedSlots(), 0u);
  EXPECT_EQ(H.bytesLive(), 0u);
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
}

} // namespace
} // namespace diehard
