//===- tests/core/StlAllocatorTest.cpp ------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the DieHard-backed STL allocator.
///
//===----------------------------------------------------------------------===//

#include "core/StlAllocator.h"

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <string>
#include <vector>

namespace diehard {
namespace {

DieHardOptions stlOptions() {
  DieHardOptions O;
  O.HeapSize = 96 * 1024 * 1024;
  O.Seed = 0x571;
  return O;
}

TEST(StlAllocatorTest, VectorGrowsAndShrinksOnTheHeap) {
  DieHardHeap Heap(stlOptions());
  {
    std::vector<int, StlAllocator<int>> V{StlAllocator<int>(Heap)};
    for (int I = 0; I < 10000; ++I)
      V.push_back(I);
    for (int I = 0; I < 10000; ++I)
      ASSERT_EQ(V[static_cast<size_t>(I)], I);
    EXPECT_GT(Heap.bytesLive(), 10000u * sizeof(int) / 2);
  }
  EXPECT_EQ(Heap.bytesLive(), 0u) << "destruction releases everything";
}

TEST(StlAllocatorTest, NodeContainersWork) {
  DieHardHeap Heap(stlOptions());
  using MapAlloc = StlAllocator<std::pair<const int, std::string>>;
  {
    std::map<int, std::string, std::less<int>, MapAlloc> M{
        std::less<int>(), MapAlloc(Heap)};
    for (int I = 0; I < 1000; ++I)
      M.emplace(I, "value-" + std::to_string(I));
    EXPECT_EQ(M.size(), 1000u);
    EXPECT_EQ(M.at(500), "value-500");
    // Every node is a live DieHard object.
    EXPECT_GE(Heap.stats().Allocations, 1000u);
  }
  EXPECT_EQ(Heap.bytesLive(), 0u);
}

TEST(StlAllocatorTest, ListNodesAreRandomlyPlaced) {
  DieHardHeap Heap(stlOptions());
  std::list<long, StlAllocator<long>> L{StlAllocator<long>(Heap)};
  for (long I = 0; I < 64; ++I)
    L.push_back(I);
  // Successive nodes should not be contiguous (they would be under a bump
  // or freelist allocator).
  int Adjacent = 0;
  const long *Prev = nullptr;
  for (const long &Value : L) {
    if (Prev != nullptr) {
      auto Delta = reinterpret_cast<const char *>(&Value) -
                   reinterpret_cast<const char *>(Prev);
      Adjacent += (Delta > 0 && Delta <= 64) ? 1 : 0;
    }
    Prev = &Value;
  }
  EXPECT_LT(Adjacent, 8) << "random placement must break adjacency";
}

TEST(StlAllocatorTest, AllocatorsCompareByHeap) {
  DieHardHeap HeapA(stlOptions()), HeapB(stlOptions());
  StlAllocator<int> A1(HeapA), A2(HeapA), B(HeapB);
  EXPECT_EQ(A1, A2);
  EXPECT_NE(A1, B);
  StlAllocator<double> Rebound(A1); // Converting constructor.
  EXPECT_EQ(Rebound.heap(), A1.heap());
}

TEST(StlAllocatorTest, ExhaustionThrowsBadAlloc) {
  DieHardOptions O;
  O.HeapSize = 12 * SizeClass::MaxObjectSize * 2; // Tiny.
  O.Seed = 2;
  DieHardHeap Heap(O);
  StlAllocator<char> A(Heap);
  EXPECT_THROW(
      {
        // Far beyond the 4 KB class's threshold in a tiny heap.
        std::vector<void *> Held;
        for (int I = 0; I < 1000; ++I)
          Held.push_back(A.allocate(4096));
      },
      std::bad_alloc);
}

TEST(StlAllocatorTest, OverflowInCountThrows) {
  DieHardHeap Heap(stlOptions());
  StlAllocator<uint64_t> A(Heap);
  EXPECT_THROW(A.allocate(SIZE_MAX / 4), std::bad_alloc);
}

} // namespace
} // namespace diehard
