//===- tests/core/DieHardHeapTest.cpp -------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the randomized DieHard heap: placement, 1/M thresholds,
/// free validation, and per-seed determinism.
///
//===----------------------------------------------------------------------===//

#include "core/DieHardHeap.h"

#include "analysis/Probability.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <vector>

namespace diehard {
namespace {

DieHardOptions testOptions(double M = 2.0, uint64_t Seed = 42,
                           size_t HeapSize = 48 * 1024 * 1024) {
  DieHardOptions O;
  O.HeapSize = HeapSize;
  O.M = M;
  O.Seed = Seed;
  return O;
}

TEST(DieHardHeapTest, ConstructsValid) {
  DieHardHeap H(testOptions());
  EXPECT_TRUE(H.isValid());
  EXPECT_EQ(H.seed(), 42u);
}

TEST(DieHardHeapTest, AllocateReturnsWritableMemory) {
  DieHardHeap H(testOptions());
  void *P = H.allocate(100);
  ASSERT_NE(P, nullptr);
  std::memset(P, 0xCD, 100);
  EXPECT_EQ(static_cast<unsigned char *>(P)[99], 0xCD);
  H.deallocate(P);
}

TEST(DieHardHeapTest, ZeroSizeReturnsNull) {
  DieHardHeap H(testOptions());
  EXPECT_EQ(H.allocate(0), nullptr);
}

TEST(DieHardHeapTest, DistinctLiveObjectsNeverOverlap) {
  DieHardHeap H(testOptions());
  std::vector<std::pair<char *, size_t>> Objects;
  for (int I = 0; I < 2000; ++I) {
    size_t Size = 8 + (I % 200);
    char *P = static_cast<char *>(H.allocate(Size));
    ASSERT_NE(P, nullptr);
    Objects.push_back({P, SizeClass::roundUp(Size)});
  }
  // Tag each object, then verify no tag was clobbered by a later write.
  for (size_t I = 0; I < Objects.size(); ++I)
    std::memset(Objects[I].first, static_cast<int>(I & 0xFF),
                Objects[I].second);
  for (size_t I = 0; I < Objects.size(); ++I)
    for (size_t B = 0; B < Objects[I].second; ++B)
      ASSERT_EQ(static_cast<unsigned char>(Objects[I].first[B]),
                static_cast<unsigned char>(I & 0xFF))
          << "object " << I << " byte " << B;
  for (auto &[P, S] : Objects)
    H.deallocate(P);
}

TEST(DieHardHeapTest, FreeMakesSlotReusableEventually) {
  DieHardHeap H(testOptions());
  void *P = H.allocate(64);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(H.liveInClass(SizeClass::sizeToClass(64)), 1u);
  H.deallocate(P);
  EXPECT_EQ(H.liveInClass(SizeClass::sizeToClass(64)), 0u);
}

TEST(DieHardHeapTest, DoubleFreeIsIgnored) {
  DieHardHeap H(testOptions());
  void *P = H.allocate(32);
  ASSERT_NE(P, nullptr);
  H.deallocate(P);
  uint64_t Before = H.stats().IgnoredFrees;
  H.deallocate(P); // Double free: must be silently ignored.
  EXPECT_EQ(H.stats().IgnoredFrees, Before + 1);
  EXPECT_EQ(H.stats().Frees, 1u);
}

TEST(DieHardHeapTest, InvalidInteriorFreeIsIgnored) {
  DieHardHeap H(testOptions());
  char *P = static_cast<char *>(H.allocate(1024));
  ASSERT_NE(P, nullptr);
  uint64_t Before = H.stats().IgnoredFrees;
  H.deallocate(P + 8); // Wrong offset within the object: not slot-aligned.
  EXPECT_EQ(H.stats().IgnoredFrees, Before + 1);
  EXPECT_EQ(H.getObjectSize(P), 1024u) << "object must still be live";
  H.deallocate(P);
}

TEST(DieHardHeapTest, ForeignPointerFreeIsIgnored) {
  DieHardHeap H(testOptions());
  int Stack;
  static int Global;
  H.deallocate(&Stack);
  H.deallocate(&Global);
  int *Foreign = new int(7);
  H.deallocate(Foreign);
  delete Foreign;
  EXPECT_EQ(H.stats().IgnoredFrees, 3u);
  EXPECT_EQ(H.stats().Frees, 0u);
}

TEST(DieHardHeapTest, NullFreeIsNoop) {
  DieHardHeap H(testOptions());
  H.deallocate(nullptr);
  EXPECT_EQ(H.stats().IgnoredFrees, 0u);
}

TEST(DieHardHeapTest, ThresholdEnforcedPerClass) {
  // Tiny heap so the 1/M threshold is reachable quickly.
  DieHardHeap H(testOptions(2.0, 7, 12 * SizeClass::MaxObjectSize * 4));
  ASSERT_TRUE(H.isValid());
  int C = SizeClass::sizeToClass(4096);
  size_t Threshold = H.thresholdForClass(C);
  ASSERT_GT(Threshold, 0u);
  std::vector<void *> Held;
  for (size_t I = 0; I < Threshold; ++I) {
    void *P = H.allocate(4096);
    ASSERT_NE(P, nullptr) << "allocation " << I << " of " << Threshold;
    Held.push_back(P);
  }
  // At threshold: no more memory (Figure 2).
  EXPECT_EQ(H.allocate(4096), nullptr);
  EXPECT_GE(H.stats().FailedAllocations, 1u);
  // Other classes are unaffected.
  void *Other = H.allocate(8);
  EXPECT_NE(Other, nullptr);
  H.deallocate(Other);
  // Freeing one slot re-enables allocation.
  H.deallocate(Held.back());
  Held.pop_back();
  void *Again = H.allocate(4096);
  EXPECT_NE(Again, nullptr);
  H.deallocate(Again);
  for (void *P : Held)
    H.deallocate(P);
}

TEST(DieHardHeapTest, HeapNeverFillsBeyondHalfWithDefaultM) {
  DieHardHeap H(testOptions(2.0, 9, 12 * SizeClass::MaxObjectSize * 4));
  int C = SizeClass::sizeToClass(64);
  size_t Slots = H.slotsInClass(C);
  EXPECT_LE(H.thresholdForClass(C), Slots / 2);
}

TEST(DieHardHeapTest, DifferentSeedsGiveDifferentLayouts) {
  DieHardHeap A(testOptions(2.0, 1));
  DieHardHeap B(testOptions(2.0, 2));
  // Compare the sequence of allocation offsets relative to each heap's
  // first object: identical seeds reproduce it, different seeds must not.
  char *BaseA = static_cast<char *>(A.allocate(128));
  char *BaseB = static_cast<char *>(B.allocate(128));
  ASSERT_NE(BaseA, nullptr);
  ASSERT_NE(BaseB, nullptr);
  int SameSlot = 0;
  for (int I = 0; I < 64; ++I) {
    char *PA = static_cast<char *>(A.allocate(128));
    char *PB = static_cast<char *>(B.allocate(128));
    ASSERT_NE(PA, nullptr);
    ASSERT_NE(PB, nullptr);
    SameSlot += (PA - BaseA) == (PB - BaseB) ? 1 : 0;
  }
  EXPECT_LT(SameSlot, 8) << "layouts should differ across seeds";
}

TEST(DieHardHeapTest, SameSeedGivesSameLayout) {
  DieHardHeap A(testOptions(2.0, 5));
  DieHardHeap B(testOptions(2.0, 5));
  char *BaseA = static_cast<char *>(A.allocate(8));
  char *BaseB = static_cast<char *>(B.allocate(8));
  ASSERT_NE(BaseA, nullptr);
  ASSERT_NE(BaseB, nullptr);
  for (int I = 0; I < 256; ++I) {
    char *PA = static_cast<char *>(A.allocate(256));
    char *PB = static_cast<char *>(B.allocate(256));
    ASSERT_EQ(PA - BaseA, PB - BaseB) << "allocation " << I;
  }
}

TEST(DieHardHeapTest, PlacementIsUniformAcrossPartition) {
  // Chi-squared-style sanity check: slot indices of many allocations into
  // one class should cover the partition roughly uniformly.
  DieHardHeap H(testOptions(2.0, 31337));
  int C = SizeClass::sizeToClass(1024);
  size_t Slots = H.slotsInClass(C);
  constexpr int N = 2000;
  std::vector<char *> Ptrs;
  std::set<size_t> Buckets;
  char *First = static_cast<char *>(H.allocate(1024));
  char *PartitionProbe = static_cast<char *>(H.getObjectStart(First));
  ASSERT_NE(PartitionProbe, nullptr);
  Ptrs.push_back(First);
  for (int I = 1; I < N; ++I) {
    char *P = static_cast<char *>(H.allocate(1024));
    ASSERT_NE(P, nullptr);
    Ptrs.push_back(P);
  }
  // Bucket the slot index space into 16 ranges; all must be hit.
  char *Lo = *std::min_element(Ptrs.begin(), Ptrs.end());
  for (char *P : Ptrs) {
    size_t Slot = static_cast<size_t>(P - Lo) / 1024;
    Buckets.insert(Slot * 16 / Slots);
  }
  EXPECT_GE(Buckets.size(), 14u)
      << "random placement must spread across the partition";
  for (char *P : Ptrs)
    H.deallocate(P);
}

TEST(DieHardHeapTest, ProbeCountMatchesExpectation) {
  // E[probes] = 1/(1 - 1/M) = 2 for M = 2 at full load; far lower when the
  // heap is nearly empty. Load the class to its threshold and measure.
  DieHardHeap H(testOptions(2.0, 77, 12 * SizeClass::MaxObjectSize * 16));
  int C = SizeClass::sizeToClass(8);
  size_t Threshold = H.thresholdForClass(C);
  for (size_t I = 0; I < Threshold; ++I)
    ASSERT_NE(H.allocate(8), nullptr);
  double MeanProbes = static_cast<double>(H.stats().Probes) /
                      static_cast<double>(H.stats().Allocations);
  // Averaged over fill levels 0..1/2, the expectation is -M ln(1-1/M)
  // ≈ 1.386 for M = 2; allow generous slack.
  EXPECT_GT(MeanProbes, 1.0);
  EXPECT_LT(MeanProbes, expectedProbes(2.0));
}

TEST(DieHardHeapTest, GetObjectSizeRoundsToClass) {
  DieHardHeap H(testOptions());
  void *P = H.allocate(100);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(H.getObjectSize(P), 128u);
  H.deallocate(P);
  EXPECT_EQ(H.getObjectSize(P), 0u) << "freed objects have no size";
}

TEST(DieHardHeapTest, GetObjectStartHandlesInteriorPointers) {
  DieHardHeap H(testOptions());
  char *P = static_cast<char *>(H.allocate(512));
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(H.getObjectStart(P), P);
  EXPECT_EQ(H.getObjectStart(P + 1), P);
  EXPECT_EQ(H.getObjectStart(P + 511), P);
  H.deallocate(P);
  EXPECT_EQ(H.getObjectStart(P), nullptr);
}

TEST(DieHardHeapTest, ReallocGrowsAndPreservesContents) {
  DieHardHeap H(testOptions());
  char *P = static_cast<char *>(H.allocate(64));
  ASSERT_NE(P, nullptr);
  for (int I = 0; I < 64; ++I)
    P[I] = static_cast<char>(I);
  char *Q = static_cast<char *>(H.reallocate(P, 4096));
  ASSERT_NE(Q, nullptr);
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(Q[I], static_cast<char>(I));
  H.deallocate(Q);
}

TEST(DieHardHeapTest, ReallocNullActsAsMalloc) {
  DieHardHeap H(testOptions());
  void *P = H.reallocate(nullptr, 128);
  EXPECT_NE(P, nullptr);
  H.deallocate(P);
}

TEST(DieHardHeapTest, ReallocZeroActsAsFree) {
  DieHardHeap H(testOptions());
  void *P = H.allocate(128);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(H.reallocate(P, 0), nullptr);
  EXPECT_EQ(H.getObjectSize(P), 0u);
}

TEST(DieHardHeapTest, ReallocShrinkInPlaceWithinClass) {
  DieHardHeap H(testOptions());
  void *P = H.allocate(120);
  ASSERT_NE(P, nullptr);
  // 100 still rounds to 128: same class, same pointer.
  EXPECT_EQ(H.reallocate(P, 100), P);
  H.deallocate(P);
}

TEST(DieHardHeapTest, CallocZeroesAndChecksOverflow) {
  DieHardHeap H(testOptions());
  auto *P = static_cast<unsigned char *>(H.allocateZeroed(16, 16));
  ASSERT_NE(P, nullptr);
  for (int I = 0; I < 256; ++I)
    EXPECT_EQ(P[I], 0u);
  H.deallocate(P);
  EXPECT_EQ(H.allocateZeroed(SIZE_MAX / 2, 4), nullptr)
      << "count*size overflow must fail";
}

TEST(DieHardHeapTest, RandomFillMakesFreshObjectsNonZero) {
  DieHardOptions O = testOptions();
  O.RandomFillObjects = true;
  DieHardHeap H(O);
  auto *P = static_cast<uint32_t *>(H.allocate(1024));
  ASSERT_NE(P, nullptr);
  int NonZero = 0;
  for (int I = 0; I < 256; ++I)
    NonZero += P[I] != 0 ? 1 : 0;
  EXPECT_GT(NonZero, 200) << "replicated mode fills objects randomly";
  H.deallocate(P);
}

TEST(DieHardHeapTest, RandomFillDiffersAcrossSeeds) {
  DieHardOptions A = testOptions(2.0, 100);
  DieHardOptions B = testOptions(2.0, 200);
  A.RandomFillObjects = B.RandomFillObjects = true;
  DieHardHeap HA(A), HB(B);
  auto *PA = static_cast<uint32_t *>(HA.allocate(64));
  auto *PB = static_cast<uint32_t *>(HB.allocate(64));
  ASSERT_NE(PA, nullptr);
  ASSERT_NE(PB, nullptr);
  // An uninitialized read returns different values in different replicas.
  bool Different = false;
  for (int I = 0; I < 16; ++I)
    Different |= PA[I] != PB[I];
  EXPECT_TRUE(Different);
  HA.deallocate(PA);
  HB.deallocate(PB);
}

TEST(DieHardHeapTest, StressRandomAllocFreeKeepsAccounting) {
  DieHardHeap H(testOptions());
  Rng Rand(555);
  std::vector<std::pair<void *, size_t>> Live;
  for (int Step = 0; Step < 50000; ++Step) {
    if (Live.empty() || (Rand.next() & 1)) {
      size_t Size = 1 + Rand.nextBounded(2048);
      void *P = H.allocate(Size);
      if (P != nullptr)
        Live.push_back({P, Size});
    } else {
      size_t I = Rand.nextBounded(static_cast<uint32_t>(Live.size()));
      H.deallocate(Live[I].first);
      Live[I] = Live.back();
      Live.pop_back();
    }
  }
  size_t TotalLive = 0;
  for (int C = 0; C < SizeClass::NumClasses; ++C)
    TotalLive += H.liveInClass(C);
  EXPECT_EQ(TotalLive, Live.size());
  for (auto &[P, S] : Live)
    H.deallocate(P);
  TotalLive = 0;
  for (int C = 0; C < SizeClass::NumClasses; ++C)
    TotalLive += H.liveInClass(C);
  EXPECT_EQ(TotalLive, 0u);
  EXPECT_EQ(H.bytesLive(), 0u);
  EXPECT_EQ(H.stats().IgnoredFrees, 0u);
}

TEST(DieHardHeapTest, StatsFoldPendingRemoteFrees) {
  // An embedder driving the sidecar through DieHardHeap directly gets the
  // same books as the sharded layer: undrained pushes count as Frees (the
  // user's free already happened), so Allocations == Frees holds with
  // entries still parked, and draining moves them without double count.
  DieHardHeap H(testOptions());
  int Class = SizeClass::sizeToClass(64);
  void *A = H.allocate(64);
  void *B = H.allocate(64);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  H.remoteFree(Class, A);
  H.remoteFree(Class, B);

  DieHardStats S = H.stats();
  EXPECT_EQ(S.RemoteFrees, 2u);
  EXPECT_EQ(S.Allocations, 2u);
  EXPECT_EQ(S.Frees, 2u) << "pending sidecar entries must fold into Frees";
  EXPECT_EQ(S.SidecarDrains, 0u);

  EXPECT_EQ(H.drainRemoteFrees(Class), 2u);
  S = H.stats();
  EXPECT_EQ(S.Frees, 2u);
  EXPECT_EQ(S.SidecarDrains, 1u);
  EXPECT_EQ(S.IgnoredFrees, 0u);
  EXPECT_EQ(H.bytesLive(), 0u);
}

/// Property sweep over M: the threshold honours 1/M for every class.
class ExpansionSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExpansionSweep, ThresholdIsSlotsOverM) {
  double M = GetParam();
  DieHardHeap H(testOptions(M, 3));
  ASSERT_TRUE(H.isValid());
  for (int C = 0; C < SizeClass::NumClasses; ++C) {
    size_t Slots = H.slotsInClass(C);
    EXPECT_EQ(H.thresholdForClass(C),
              static_cast<size_t>(static_cast<double>(Slots) / M))
        << "class " << C;
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, ExpansionSweep,
                         ::testing::Values(1.5, 2.0, 3.0, 4.0, 8.0));

/// Property sweep: allocation in every size class lands inside the heap,
/// is class-aligned, and survives a write of its full rounded size.
class PerClassBehaviour : public ::testing::TestWithParam<int> {};

TEST_P(PerClassBehaviour, AllocWriteFreeAcrossClass) {
  int C = GetParam();
  DieHardHeap H(testOptions());
  size_t Size = SizeClass::classToSize(C);
  void *P = H.allocate(Size);
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(H.isInHeap(P));
  EXPECT_EQ(H.getObjectSize(P), Size);
  std::memset(P, 0x5A, Size);
  H.deallocate(P);
  EXPECT_EQ(H.getObjectSize(P), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllClasses, PerClassBehaviour,
                         ::testing::Range(0, SizeClass::NumClasses));

} // namespace
} // namespace diehard
