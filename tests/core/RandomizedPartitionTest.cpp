//===- tests/core/RandomizedPartitionTest.cpp -----------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct tests for the per-size-class RandomizedPartition: geometry and
/// threshold installation, the probe/fallback discipline, free validation,
/// lock-free gauges, stream derivation, and the deterministic live-object
/// walk the heap-differencing debugger depends on.
///
//===----------------------------------------------------------------------===//

#include "core/RandomizedPartition.h"

#include "core/DieHardHeap.h"
#include "support/MmapRegion.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

namespace diehard {
namespace {

/// A partition over its own private mapping, for driving the class without
/// a surrounding heap.
struct PartitionFixture {
  MmapRegion Region;
  RandomizedPartition Partition;

  PartitionFixture(size_t ObjectSize, size_t Slots, double M = 2.0,
                   uint64_t Seed = 42, bool FillOnAllocate = false,
                   bool FillOnFree = false) {
    EXPECT_TRUE(Region.map(ObjectSize * Slots));
    EXPECT_TRUE(Partition.init(Region.base(), ObjectSize, Slots, M, Seed,
                               FillOnAllocate, FillOnFree));
  }
};

TEST(RandomizedPartitionTest, InstallsGeometryAndThreshold) {
  PartitionFixture F(64, 1024, 2.0, 7);
  EXPECT_EQ(F.Partition.objectBytes(), 64u);
  EXPECT_EQ(F.Partition.slots(), 1024u);
  EXPECT_EQ(F.Partition.threshold(), 512u) << "1/M of the slots with M=2";
  EXPECT_EQ(F.Partition.live(), 0u);
  EXPECT_EQ(F.Partition.liveBytes(), 0u);
  EXPECT_EQ(F.Partition.streamSeed(), 7u);
  EXPECT_EQ(F.Partition.base(), F.Region.base());
}

TEST(RandomizedPartitionTest, AllocatesDistinctSlotsUpToThreshold) {
  PartitionFixture F(128, 256);
  std::set<void *> Seen;
  for (size_t I = 0; I < F.Partition.threshold(); ++I) {
    void *P = F.Partition.allocate();
    ASSERT_NE(P, nullptr) << "allocation " << I;
    EXPECT_TRUE(F.Partition.contains(P));
    EXPECT_TRUE(Seen.insert(P).second) << "slot handed out twice";
  }
  // At the 1/M bound: refused, and counted as a failure.
  EXPECT_EQ(F.Partition.allocate(), nullptr);
  EXPECT_GE(F.Partition.stats().FailedAllocations, 1u);
  EXPECT_EQ(F.Partition.live(), F.Partition.threshold());
  EXPECT_EQ(F.Partition.fill(), 1.0);
}

TEST(RandomizedPartitionTest, DeallocateValidatesOffsetAndLiveness) {
  PartitionFixture F(64, 128);
  auto *P = static_cast<char *>(F.Partition.allocate());
  ASSERT_NE(P, nullptr);
  // Misaligned interior pointer: ignored.
  EXPECT_FALSE(F.Partition.deallocate(P + 8));
  EXPECT_EQ(F.Partition.stats().IgnoredFrees, 1u);
  EXPECT_EQ(F.Partition.objectSize(P), 64u) << "object must still be live";
  // Correct free succeeds once.
  EXPECT_TRUE(F.Partition.deallocate(P));
  EXPECT_EQ(F.Partition.live(), 0u);
  // Double free: ignored.
  EXPECT_FALSE(F.Partition.deallocate(P));
  EXPECT_EQ(F.Partition.stats().IgnoredFrees, 2u);
  EXPECT_EQ(F.Partition.stats().Frees, 1u);
}

TEST(RandomizedPartitionTest, LiveBytesTrackRoundedSizes) {
  PartitionFixture F(256, 64);
  void *A = F.Partition.allocate();
  void *B = F.Partition.allocate();
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(F.Partition.liveBytes(), 512u);
  F.Partition.deallocate(A);
  EXPECT_EQ(F.Partition.liveBytes(), 256u);
  F.Partition.deallocate(B);
  EXPECT_EQ(F.Partition.liveBytes(), 0u);
}

TEST(RandomizedPartitionTest, ObjectQueriesHandleInteriorPointers) {
  PartitionFixture F(512, 64);
  auto *P = static_cast<char *>(F.Partition.allocate());
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(F.Partition.objectStart(P), P);
  EXPECT_EQ(F.Partition.objectStart(P + 511), P);
  EXPECT_EQ(F.Partition.objectSize(P + 100), 512u);
  F.Partition.deallocate(P);
  EXPECT_EQ(F.Partition.objectStart(P), nullptr);
  EXPECT_EQ(F.Partition.objectSize(P), 0u);
}

TEST(RandomizedPartitionTest, ClaimRandomSlotFallsBackWhenCrowded) {
  // Fill the bitmap to all-but-one slot; 64 random probes into a 1/256
  // chance miss almost surely, forcing the linear fallback — which must
  // still find the lone free slot.
  Bitmap Bits(256);
  for (size_t I = 0; I < 256; ++I)
    if (I != 137)
      Bits.trySet(I);
  Rng Rand(99);
  uint64_t Probes = 0, Fallbacks = 0;
  size_t Index = claimRandomSlot(Bits, Rand, 256, Probes, Fallbacks);
  EXPECT_EQ(Index, 137u);
  EXPECT_GE(Probes, 1u);
  // A full bitmap reports exhaustion instead of spinning.
  uint64_t P2 = 0, F2 = 0;
  EXPECT_EQ(claimRandomSlot(Bits, Rand, 256, P2, F2), 256u);
}

TEST(RandomizedPartitionTest, DistinctSeedsGiveDistinctPlacement) {
  PartitionFixture A(64, 4096, 2.0, 1);
  PartitionFixture B(64, 4096, 2.0, 2);
  int SameSlot = 0;
  for (int I = 0; I < 64; ++I) {
    auto *PA = static_cast<char *>(A.Partition.allocate());
    auto *PB = static_cast<char *>(B.Partition.allocate());
    ASSERT_NE(PA, nullptr);
    ASSERT_NE(PB, nullptr);
    SameSlot +=
        (PA - static_cast<char *>(A.Region.base())) ==
                (PB - static_cast<char *>(B.Region.base()))
            ? 1
            : 0;
  }
  EXPECT_LT(SameSlot, 8) << "different streams must place differently";
}

TEST(RandomizedPartitionTest, SameSeedReproducesPlacement) {
  PartitionFixture A(64, 4096, 2.0, 5);
  PartitionFixture B(64, 4096, 2.0, 5);
  for (int I = 0; I < 256; ++I) {
    auto *PA = static_cast<char *>(A.Partition.allocate());
    auto *PB = static_cast<char *>(B.Partition.allocate());
    ASSERT_EQ(PA - static_cast<char *>(A.Region.base()),
              PB - static_cast<char *>(B.Region.base()))
        << "allocation " << I;
  }
}

TEST(RandomizedPartitionTest, ForEachLiveVisitsSlotsAscending) {
  PartitionFixture F(64, 512);
  std::vector<void *> Held;
  for (int I = 0; I < 40; ++I)
    Held.push_back(F.Partition.allocate());
  size_t Count = 0;
  size_t LastSlot = 0;
  bool First = true;
  F.Partition.forEachLive([&](size_t Slot, const void *Ptr) {
    if (!First) {
      EXPECT_GT(Slot, LastSlot) << "walk must be slot-ascending";
    }
    First = false;
    LastSlot = Slot;
    EXPECT_TRUE(F.Partition.contains(Ptr));
    ++Count;
  });
  EXPECT_EQ(Count, 40u);
  for (void *P : Held)
    F.Partition.deallocate(P);
}

TEST(RandomizedPartitionTest, RandomFillOnAllocateAndFree) {
  PartitionFixture F(256, 64, 2.0, 11, /*FillOnAllocate=*/true,
                     /*FillOnFree=*/true);
  auto *P = static_cast<uint32_t *>(F.Partition.allocate());
  ASSERT_NE(P, nullptr);
  int NonZero = 0;
  for (int I = 0; I < 64; ++I)
    NonZero += P[I] != 0 ? 1 : 0;
  EXPECT_GT(NonZero, 50) << "replicated mode fills fresh objects";
  uint32_t BeforeFree[64];
  std::memcpy(BeforeFree, P, sizeof(BeforeFree));
  F.Partition.deallocate(P);
  EXPECT_NE(std::memcmp(BeforeFree, P, sizeof(BeforeFree)), 0)
      << "free must scramble the slot in replicated mode";
}

TEST(RandomizedPartitionTest, HeapPartitionStreamsAreDecorrelated) {
  // The heap derives one stream per class from its seed; no two partitions
  // (and no partition and the heap-level stream) may share a seed.
  DieHardOptions O;
  O.HeapSize = 48 * 1024 * 1024;
  O.Seed = 42;
  DieHardHeap H(O);
  ASSERT_TRUE(H.isValid());
  std::set<uint64_t> Streams;
  Streams.insert(H.seed());
  for (int C = 0; C < DieHardHeap::NumPartitions; ++C)
    Streams.insert(H.partition(C).streamSeed());
  EXPECT_EQ(Streams.size(),
            static_cast<size_t>(DieHardHeap::NumPartitions) + 1);
}

TEST(RandomizedPartitionTest, HeapExposesPartitionGauges) {
  DieHardOptions O;
  O.HeapSize = 48 * 1024 * 1024;
  O.Seed = 43;
  DieHardHeap H(O);
  int C = SizeClass::sizeToClass(1024);
  void *P = H.allocate(1024);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(H.partition(C).live(), 1u);
  EXPECT_EQ(H.partition(C).liveBytes(), 1024u);
  EXPECT_GT(H.partition(C).fill(), 0.0);
  EXPECT_EQ(H.partitionIndexOf(P), C);
  int Stack;
  EXPECT_EQ(H.partitionIndexOf(&Stack), -1);
  H.deallocate(P);
  EXPECT_EQ(H.partition(C).fill(), 0.0);
}

TEST(RandomizedPartitionTest, BatchClaimRespectsThresholdAndIsDistinct) {
  PartitionFixture F(128, 64); // Threshold 32.
  void *Batch[64];
  size_t N = F.Partition.claimRandomSlots(Batch, 20);
  EXPECT_EQ(N, 20u);
  EXPECT_EQ(F.Partition.live(), 20u) << "claimed slots count as live";
  EXPECT_EQ(F.Partition.liveBytes(), 20u * 128u);
  EXPECT_EQ(F.Partition.stats().ClaimedSlots, 20u);
  EXPECT_EQ(F.Partition.stats().Allocations, 0u)
      << "claims are not user allocations";
  std::set<void *> Seen;
  for (size_t I = 0; I < N; ++I) {
    EXPECT_TRUE(F.Partition.contains(Batch[I]));
    EXPECT_TRUE(Seen.insert(Batch[I]).second) << "slot claimed twice";
  }

  // A second claim is clipped to the 1/M bound, and a third returns 0.
  void *More[64];
  size_t M = F.Partition.claimRandomSlots(More, 20);
  EXPECT_EQ(M, 12u) << "claim clipped at the threshold";
  EXPECT_EQ(F.Partition.fill(), 1.0);
  EXPECT_EQ(F.Partition.claimRandomSlots(More + M, 20), 0u);
  EXPECT_EQ(F.Partition.stats().FailedAllocations, 0u)
      << "a refused batch claim is not a user-visible failed malloc";

  // Interleaved single allocations also see the bound.
  EXPECT_EQ(F.Partition.allocate(), nullptr);
  EXPECT_EQ(F.Partition.stats().FailedAllocations, 1u);

  // Reclaim restores capacity without touching Frees.
  F.Partition.reclaimSlots(Batch, N);
  F.Partition.reclaimSlots(More, M);
  EXPECT_EQ(F.Partition.live(), 0u);
  EXPECT_EQ(F.Partition.liveBytes(), 0u);
  EXPECT_EQ(F.Partition.stats().ReturnedSlots, 32u);
  EXPECT_EQ(F.Partition.stats().Frees, 0u);
  EXPECT_NE(F.Partition.allocate(), nullptr);
}

TEST(RandomizedPartitionTest, BatchDeallocateValidatesEachPointer) {
  PartitionFixture F(64, 256);
  void *Batch[8];
  size_t N = F.Partition.claimRandomSlots(Batch, 8);
  ASSERT_EQ(N, 8u);

  // A batch containing a double free and a misaligned pointer frees only
  // the valid entries and counts the rest as ignored.
  void *Frees[10];
  std::memcpy(Frees, Batch, sizeof(Batch));
  Frees[8] = Batch[0]; // Double free within the batch.
  Frees[9] = static_cast<char *>(Batch[1]) + 1; // Misaligned.
  EXPECT_EQ(F.Partition.deallocateBatch(Frees, 10), 8u);
  EXPECT_EQ(F.Partition.stats().Frees, 8u);
  EXPECT_EQ(F.Partition.stats().IgnoredFrees, 2u);
  EXPECT_EQ(F.Partition.live(), 0u);
}

TEST(RandomizedPartitionTest, BatchClaimDrawsFromTheUniformDiscipline) {
  // Claiming K slots must hit every slot with the same long-run frequency
  // as repeated single allocations: claim/reclaim batches over many rounds
  // and chi-square the slot histogram against uniform.
  PartitionFixture F(64, 64, 2.0, 99);
  std::vector<uint64_t> Histogram(64, 0);
  constexpr int Rounds = 600;
  void *Batch[16];
  for (int R = 0; R < Rounds; ++R) {
    size_t N = F.Partition.claimRandomSlots(Batch, 16);
    ASSERT_EQ(N, 16u);
    for (size_t I = 0; I < N; ++I) {
      size_t Slot = (static_cast<char *>(Batch[I]) -
                     static_cast<const char *>(F.Partition.base())) /
                    64;
      ++Histogram[Slot];
    }
    F.Partition.reclaimSlots(Batch, N);
  }
  double Expected = Rounds * 16.0 / 64.0;
  double Chi2 = 0.0;
  for (uint64_t Count : Histogram) {
    double D = static_cast<double>(Count) - Expected;
    Chi2 += D * D / Expected;
  }
  // df = 63, alpha = 0.001 critical value 103.4; fixed seed, so the
  // statistic is deterministic.
  EXPECT_LT(Chi2, 103.4);
}

TEST(RandomizedPartitionTest, RemoteFreePushAndDrain) {
  // The sidecar at partition level: pushes park slots (still live, still
  // bit-set), the drain materializes them through the validated free.
  PartitionFixture F(64, 128);
  void *A = F.Partition.allocate();
  void *B = F.Partition.allocate();
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);

  F.Partition.remoteFree(A);
  F.Partition.remoteFree(B);
  EXPECT_EQ(F.Partition.remoteFrees(), 2u);
  EXPECT_EQ(F.Partition.pendingRemoteFrees(), 2u);
  EXPECT_TRUE(F.Partition.hasPendingRemoteFrees());
  EXPECT_EQ(F.Partition.live(), 2u)
      << "pushed slots stay in the live gauge until drained";
  EXPECT_EQ(F.Partition.objectSize(A), 64u) << "and stay bit-set";
  EXPECT_EQ(F.Partition.stats().Frees, 0u);

  EXPECT_EQ(F.Partition.drainRemoteFrees(), 2u);
  EXPECT_EQ(F.Partition.pendingRemoteFrees(), 0u);
  EXPECT_FALSE(F.Partition.hasPendingRemoteFrees());
  EXPECT_EQ(F.Partition.live(), 0u);
  EXPECT_EQ(F.Partition.stats().Frees, 2u);
  EXPECT_EQ(F.Partition.stats().SidecarDrains, 1u);
  EXPECT_EQ(F.Partition.stats().IgnoredFrees, 0u);

  // Empty drain: no work, no SidecarDrains tick.
  EXPECT_EQ(F.Partition.drainRemoteFrees(), 0u);
  EXPECT_EQ(F.Partition.stats().SidecarDrains, 1u);
}

TEST(RandomizedPartitionTest, RemoteFreeValidation) {
  PartitionFixture F(64, 128);
  auto *P = static_cast<char *>(F.Partition.allocate());
  ASSERT_NE(P, nullptr);

  // Misaligned pointer: rejected at push time from immutable geometry.
  F.Partition.remoteFree(P + 8);
  EXPECT_EQ(F.Partition.remoteFrees(), 0u);
  EXPECT_EQ(F.Partition.remoteFreeRejects(), 1u);

  // Double push before a drain: the link-word claim fails, the second
  // free is rejected, the chain stays intact.
  F.Partition.remoteFree(P);
  F.Partition.remoteFree(P);
  EXPECT_EQ(F.Partition.remoteFrees(), 1u);
  EXPECT_EQ(F.Partition.remoteFreeRejects(), 2u);
  EXPECT_EQ(F.Partition.drainRemoteFrees(), 1u);
  EXPECT_EQ(F.Partition.stats().Frees, 1u);

  // Push of a slot that is no longer live: accepted (the push cannot read
  // the bitmap without the lock) but exposed by drain-time validation.
  F.Partition.remoteFree(P);
  EXPECT_EQ(F.Partition.remoteFrees(), 2u);
  EXPECT_EQ(F.Partition.drainRemoteFrees(), 1u);
  EXPECT_EQ(F.Partition.stats().Frees, 1u);
  EXPECT_EQ(F.Partition.stats().IgnoredFrees, 1u);
}

TEST(RandomizedPartitionTest, RemoteFreeLifoChainOrder) {
  // The Treiber stack drains newest-first; order is an implementation
  // detail, but the chain must deliver every entry exactly once even when
  // pushes interleave with drains.
  PartitionFixture F(64, 256);
  std::vector<void *> Ptrs;
  for (int I = 0; I < 48; ++I) {
    void *P = F.Partition.allocate();
    ASSERT_NE(P, nullptr);
    Ptrs.push_back(P);
  }
  for (int I = 0; I < 16; ++I)
    F.Partition.remoteFree(Ptrs[static_cast<size_t>(I)]);
  EXPECT_EQ(F.Partition.drainRemoteFrees(), 16u);
  for (int I = 16; I < 48; ++I)
    F.Partition.remoteFree(Ptrs[static_cast<size_t>(I)]);
  EXPECT_EQ(F.Partition.drainRemoteFrees(), 32u);
  EXPECT_EQ(F.Partition.live(), 0u);
  EXPECT_EQ(F.Partition.stats().Frees, 48u);
  EXPECT_EQ(F.Partition.stats().IgnoredFrees, 0u);
  EXPECT_EQ(F.Partition.remoteFrees(), 48u);
  EXPECT_EQ(F.Partition.pendingRemoteFrees(), 0u);
}

//===----------------------------------------------------------------------===//
// Partial page return (the free-span scanner behind maintain())
//===----------------------------------------------------------------------===//

/// Slot index of \p P inside \p F (the inverse of the placement map —
/// exact, since geometry is immutable).
size_t slotOf(const PartitionFixture &F, const void *P) {
  return static_cast<size_t>(static_cast<const char *>(P) -
                             static_cast<const char *>(F.Region.base())) /
         F.Partition.objectBytes();
}

/// Pins the page-return policy for a test and restores the default (and
/// the DIEHARD_PAGE_RETURN resolution) afterwards — the policy is process
/// state shared by every test in the binary.
struct PolicyGuard {
  explicit PolicyGuard(PageReturnPolicy P) {
    MmapRegion::setPageReturnPolicy(P);
  }
  ~PolicyGuard() {
    MmapRegion::setPageReturnPolicy(PageReturnPolicy::DontNeed);
  }
};

TEST(RandomizedPartitionTest, SpanScannerReleasesAroundLiveSlot) {
  // Page-sized objects, so slots and pages coincide: one live slot must
  // pin exactly one page and the scanner must release everything else as
  // at most two spans (the runs on either side of the survivor).
  PolicyGuard Guard(PageReturnPolicy::DontNeed);
  const size_t Page = MmapRegion::pageSize();
  PartitionFixture F(Page, 16);
  std::vector<char *> Held;
  for (size_t I = 0; I < F.Partition.threshold(); ++I) {
    auto *P = static_cast<char *>(F.Partition.allocate());
    ASSERT_NE(P, nullptr);
    std::memset(P, 0xAB, Page); // Dirty the page.
    Held.push_back(P);
  }
  char *Survivor = Held.back();
  Held.pop_back();
  for (char *P : Held)
    ASSERT_TRUE(F.Partition.deallocate(P));

  RandomizedPartition::MaintainOutcome Out = F.Partition.maintain();
  EXPECT_EQ(Out.PagesReturned, 15u) << "all pages but the survivor's";
  size_t K = slotOf(F, Survivor);
  EXPECT_EQ(Out.SpansReleased, (K == 0 || K == 15) ? 1u : 2u);
  EXPECT_EQ(F.Partition.releasedPages(), 15u);
  EXPECT_TRUE(F.Partition.pagesReleased());

  // The survivor's data is untouched; the released pages read demand-zero
  // (MADV_DONTNEED drops the 0xAB fill immediately).
  for (size_t I = 0; I < Page; ++I)
    ASSERT_EQ(static_cast<unsigned char>(Survivor[I]), 0xABu) << I;
  for (char *P : Held)
    for (size_t I = 0; I < Page; I += 512)
      ASSERT_EQ(P[I], 0) << "released page must refault zero";

  // Idempotent per span: nothing freed since, so a repeat scan is a no-op
  // (the free-stamp gate short-circuits before the bitmap walk).
  Out = F.Partition.maintain();
  EXPECT_EQ(Out.PagesReturned, 0u);
  EXPECT_EQ(Out.SpansReleased, 0u);
  EXPECT_EQ(F.Partition.stats().PartialReturns, 1u);
}

TEST(RandomizedPartitionTest, SpanScannerRespectsStraddlingObjects) {
  // 3 KB objects on 4 KB pages: most slots straddle a page boundary. A
  // page is releasable only when every slot overlapping it is free, and a
  // live straddler must pin both its pages.
  PolicyGuard Guard(PageReturnPolicy::DontNeed);
  const size_t Page = MmapRegion::pageSize();
  const size_t ObjectSize = 3 * Page / 4;
  const size_t Slots = 32; // Region: 24 pages (for Page == 4096).
  const size_t DataPages = Slots * ObjectSize / Page;
  PartitionFixture F(ObjectSize, Slots);
  std::vector<char *> Held;
  for (size_t I = 0; I < F.Partition.threshold(); ++I) {
    auto *P = static_cast<char *>(F.Partition.allocate());
    ASSERT_NE(P, nullptr);
    std::memset(P, 0x77, ObjectSize);
    Held.push_back(P);
  }
  char *Survivor = Held.front();
  Held.erase(Held.begin());
  for (char *P : Held)
    ASSERT_TRUE(F.Partition.deallocate(P));

  size_t K = slotOf(F, Survivor);
  size_t PinnedPages =
      (K * ObjectSize + ObjectSize - 1) / Page - (K * ObjectSize) / Page + 1;
  RandomizedPartition::MaintainOutcome Out = F.Partition.maintain();
  EXPECT_EQ(Out.PagesReturned, DataPages - PinnedPages)
      << "survivor at slot " << K << " must pin " << PinnedPages
      << " page(s), everything else returns";
  for (size_t I = 0; I < ObjectSize; ++I)
    ASSERT_EQ(static_cast<unsigned char>(Survivor[I]), 0x77u)
        << "byte " << I << " of the straddling survivor";
  EXPECT_EQ(F.Partition.live(), 1u);
}

TEST(RandomizedPartitionTest, AllocationIntoReleasedSpanRefaultsZero) {
  // release -> allocate -> the slot's pages drop off the released set and
  // the object reads demand-zero, never stale pre-release bytes.
  PolicyGuard Guard(PageReturnPolicy::DontNeed);
  const size_t Page = MmapRegion::pageSize();
  PartitionFixture F(Page, 16);
  std::vector<char *> Held;
  for (size_t I = 0; I < F.Partition.threshold(); ++I) {
    auto *P = static_cast<char *>(F.Partition.allocate());
    ASSERT_NE(P, nullptr);
    std::memset(P, 0xCD, Page);
    Held.push_back(P);
  }
  for (char *P : Held)
    ASSERT_TRUE(F.Partition.deallocate(P));
  ASSERT_GT(F.Partition.maintain().PagesReturned, 0u);
  size_t Released = F.Partition.releasedPages();
  ASSERT_EQ(Released, 16u) << "empty partition: every page released";

  auto *Fresh = static_cast<char *>(F.Partition.allocate());
  ASSERT_NE(Fresh, nullptr);
  EXPECT_EQ(F.Partition.releasedPages(), Released - 1)
      << "exactly the fresh slot's page must be un-marked";
  for (size_t I = 0; I < Page; ++I)
    ASSERT_EQ(Fresh[I], 0) << "refault must read zero, not stale data";
  // Writable after the refault (a DONTNEED'ed page is still mapped).
  std::memset(Fresh, 0x11, Page);
  EXPECT_EQ(static_cast<unsigned char>(Fresh[Page - 1]), 0x11u);
}

TEST(RandomizedPartitionTest, DoubleFreeIntoReleasedSpanStillCaught) {
  // The bitmap never leaves memory, so releasing a span weakens no
  // validation: a double free aimed into released pages is ignored and
  // counted exactly as before.
  PolicyGuard Guard(PageReturnPolicy::DontNeed);
  const size_t Page = MmapRegion::pageSize();
  PartitionFixture F(Page, 16);
  auto *P = static_cast<char *>(F.Partition.allocate());
  ASSERT_NE(P, nullptr);
  std::memset(P, 0xEE, Page);
  ASSERT_TRUE(F.Partition.deallocate(P));
  ASSERT_GT(F.Partition.maintain().PagesReturned, 0u);

  EXPECT_FALSE(F.Partition.deallocate(P)) << "double free into released span";
  EXPECT_EQ(F.Partition.stats().IgnoredFrees, 1u);
  EXPECT_FALSE(F.Partition.deallocate(P + Page / 2)) << "misaligned too";
  EXPECT_EQ(F.Partition.stats().IgnoredFrees, 2u);
  EXPECT_EQ(F.Partition.stats().Frees, 1u);
}

TEST(RandomizedPartitionTest, SpanScannerHonoursThePolicySwitch) {
  // DIEHARD_PAGE_RETURN=off must leave the scanner inert: no pages, no
  // spans, no released-set growth — and turning the policy back on after
  // new frees resumes releasing.
  const size_t Page = MmapRegion::pageSize();
  PartitionFixture F(Page, 16);
  {
    PolicyGuard Off(PageReturnPolicy::Off);
    auto *P = static_cast<char *>(F.Partition.allocate());
    ASSERT_NE(P, nullptr);
    std::memset(P, 0x55, Page);
    ASSERT_TRUE(F.Partition.deallocate(P));
    RandomizedPartition::MaintainOutcome Out = F.Partition.maintain();
    EXPECT_EQ(Out.PagesReturned, 0u);
    EXPECT_EQ(Out.SpansReleased, 0u);
    EXPECT_FALSE(F.Partition.pagesReleased());
    // The dirtied page kept its contents: off really means off.
    EXPECT_EQ(static_cast<unsigned char>(P[0]), 0x55u);
  }
  // Policy restored to DontNeed; a new free re-arms the stamp gate.
  auto *Q = static_cast<char *>(F.Partition.allocate());
  ASSERT_NE(Q, nullptr);
  ASSERT_TRUE(F.Partition.deallocate(Q));
  EXPECT_GT(F.Partition.maintain().PagesReturned, 0u);
}

TEST(RandomizedPartitionTest, ClaimedSlotsPinTheirPages) {
  // Cache-claimed slots are bit-set without being user-visible: the
  // scanner must treat them as live (their pages hold data a cache may
  // hand out) and reclaiming them must make the pages releasable again.
  PolicyGuard Guard(PageReturnPolicy::DontNeed);
  const size_t Page = MmapRegion::pageSize();
  PartitionFixture F(Page, 16);
  // One alloc/free primes the free-stamp so the scans below actually run
  // (a partition that never freed anything has nothing new to release).
  void *Primer = F.Partition.allocate();
  ASSERT_NE(Primer, nullptr);
  ASSERT_TRUE(F.Partition.deallocate(Primer));

  void *Claimed[4];
  ASSERT_EQ(F.Partition.claimRandomSlots(Claimed, 4), 4u);
  RandomizedPartition::MaintainOutcome Out = F.Partition.maintain();
  EXPECT_EQ(Out.PagesReturned, 12u)
      << "the four claimed slots' pages must stay resident";
  EXPECT_EQ(F.Partition.releasedPages(), 12u);

  F.Partition.reclaimSlots(Claimed, 4);
  Out = F.Partition.maintain();
  EXPECT_EQ(Out.PagesReturned, 4u)
      << "reclaimed slots free their pages for the next scan";
  EXPECT_EQ(F.Partition.releasedPages(), 16u);
}

} // namespace
} // namespace diehard
