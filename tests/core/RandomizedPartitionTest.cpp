//===- tests/core/RandomizedPartitionTest.cpp -----------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct tests for the per-size-class RandomizedPartition: geometry and
/// threshold installation, the probe/fallback discipline, free validation,
/// lock-free gauges, stream derivation, and the deterministic live-object
/// walk the heap-differencing debugger depends on.
///
//===----------------------------------------------------------------------===//

#include "core/RandomizedPartition.h"

#include "core/DieHardHeap.h"
#include "support/MmapRegion.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

namespace diehard {
namespace {

/// A partition over its own private mapping, for driving the class without
/// a surrounding heap.
struct PartitionFixture {
  MmapRegion Region;
  RandomizedPartition Partition;

  PartitionFixture(size_t ObjectSize, size_t Slots, double M = 2.0,
                   uint64_t Seed = 42, bool FillOnAllocate = false,
                   bool FillOnFree = false) {
    EXPECT_TRUE(Region.map(ObjectSize * Slots));
    EXPECT_TRUE(Partition.init(Region.base(), ObjectSize, Slots, M, Seed,
                               FillOnAllocate, FillOnFree));
  }
};

TEST(RandomizedPartitionTest, InstallsGeometryAndThreshold) {
  PartitionFixture F(64, 1024, 2.0, 7);
  EXPECT_EQ(F.Partition.objectBytes(), 64u);
  EXPECT_EQ(F.Partition.slots(), 1024u);
  EXPECT_EQ(F.Partition.threshold(), 512u) << "1/M of the slots with M=2";
  EXPECT_EQ(F.Partition.live(), 0u);
  EXPECT_EQ(F.Partition.liveBytes(), 0u);
  EXPECT_EQ(F.Partition.streamSeed(), 7u);
  EXPECT_EQ(F.Partition.base(), F.Region.base());
}

TEST(RandomizedPartitionTest, AllocatesDistinctSlotsUpToThreshold) {
  PartitionFixture F(128, 256);
  std::set<void *> Seen;
  for (size_t I = 0; I < F.Partition.threshold(); ++I) {
    void *P = F.Partition.allocate();
    ASSERT_NE(P, nullptr) << "allocation " << I;
    EXPECT_TRUE(F.Partition.contains(P));
    EXPECT_TRUE(Seen.insert(P).second) << "slot handed out twice";
  }
  // At the 1/M bound: refused, and counted as a failure.
  EXPECT_EQ(F.Partition.allocate(), nullptr);
  EXPECT_GE(F.Partition.stats().FailedAllocations, 1u);
  EXPECT_EQ(F.Partition.live(), F.Partition.threshold());
  EXPECT_EQ(F.Partition.fill(), 1.0);
}

TEST(RandomizedPartitionTest, DeallocateValidatesOffsetAndLiveness) {
  PartitionFixture F(64, 128);
  auto *P = static_cast<char *>(F.Partition.allocate());
  ASSERT_NE(P, nullptr);
  // Misaligned interior pointer: ignored.
  EXPECT_FALSE(F.Partition.deallocate(P + 8));
  EXPECT_EQ(F.Partition.stats().IgnoredFrees, 1u);
  EXPECT_EQ(F.Partition.objectSize(P), 64u) << "object must still be live";
  // Correct free succeeds once.
  EXPECT_TRUE(F.Partition.deallocate(P));
  EXPECT_EQ(F.Partition.live(), 0u);
  // Double free: ignored.
  EXPECT_FALSE(F.Partition.deallocate(P));
  EXPECT_EQ(F.Partition.stats().IgnoredFrees, 2u);
  EXPECT_EQ(F.Partition.stats().Frees, 1u);
}

TEST(RandomizedPartitionTest, LiveBytesTrackRoundedSizes) {
  PartitionFixture F(256, 64);
  void *A = F.Partition.allocate();
  void *B = F.Partition.allocate();
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(F.Partition.liveBytes(), 512u);
  F.Partition.deallocate(A);
  EXPECT_EQ(F.Partition.liveBytes(), 256u);
  F.Partition.deallocate(B);
  EXPECT_EQ(F.Partition.liveBytes(), 0u);
}

TEST(RandomizedPartitionTest, ObjectQueriesHandleInteriorPointers) {
  PartitionFixture F(512, 64);
  auto *P = static_cast<char *>(F.Partition.allocate());
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(F.Partition.objectStart(P), P);
  EXPECT_EQ(F.Partition.objectStart(P + 511), P);
  EXPECT_EQ(F.Partition.objectSize(P + 100), 512u);
  F.Partition.deallocate(P);
  EXPECT_EQ(F.Partition.objectStart(P), nullptr);
  EXPECT_EQ(F.Partition.objectSize(P), 0u);
}

TEST(RandomizedPartitionTest, ClaimRandomSlotFallsBackWhenCrowded) {
  // Fill the bitmap to all-but-one slot; 64 random probes into a 1/256
  // chance miss almost surely, forcing the linear fallback — which must
  // still find the lone free slot.
  Bitmap Bits(256);
  for (size_t I = 0; I < 256; ++I)
    if (I != 137)
      Bits.trySet(I);
  Rng Rand(99);
  uint64_t Probes = 0, Fallbacks = 0;
  size_t Index = claimRandomSlot(Bits, Rand, 256, Probes, Fallbacks);
  EXPECT_EQ(Index, 137u);
  EXPECT_GE(Probes, 1u);
  // A full bitmap reports exhaustion instead of spinning.
  uint64_t P2 = 0, F2 = 0;
  EXPECT_EQ(claimRandomSlot(Bits, Rand, 256, P2, F2), 256u);
}

TEST(RandomizedPartitionTest, DistinctSeedsGiveDistinctPlacement) {
  PartitionFixture A(64, 4096, 2.0, 1);
  PartitionFixture B(64, 4096, 2.0, 2);
  int SameSlot = 0;
  for (int I = 0; I < 64; ++I) {
    auto *PA = static_cast<char *>(A.Partition.allocate());
    auto *PB = static_cast<char *>(B.Partition.allocate());
    ASSERT_NE(PA, nullptr);
    ASSERT_NE(PB, nullptr);
    SameSlot +=
        (PA - static_cast<char *>(A.Region.base())) ==
                (PB - static_cast<char *>(B.Region.base()))
            ? 1
            : 0;
  }
  EXPECT_LT(SameSlot, 8) << "different streams must place differently";
}

TEST(RandomizedPartitionTest, SameSeedReproducesPlacement) {
  PartitionFixture A(64, 4096, 2.0, 5);
  PartitionFixture B(64, 4096, 2.0, 5);
  for (int I = 0; I < 256; ++I) {
    auto *PA = static_cast<char *>(A.Partition.allocate());
    auto *PB = static_cast<char *>(B.Partition.allocate());
    ASSERT_EQ(PA - static_cast<char *>(A.Region.base()),
              PB - static_cast<char *>(B.Region.base()))
        << "allocation " << I;
  }
}

TEST(RandomizedPartitionTest, ForEachLiveVisitsSlotsAscending) {
  PartitionFixture F(64, 512);
  std::vector<void *> Held;
  for (int I = 0; I < 40; ++I)
    Held.push_back(F.Partition.allocate());
  size_t Count = 0;
  size_t LastSlot = 0;
  bool First = true;
  F.Partition.forEachLive([&](size_t Slot, const void *Ptr) {
    if (!First) {
      EXPECT_GT(Slot, LastSlot) << "walk must be slot-ascending";
    }
    First = false;
    LastSlot = Slot;
    EXPECT_TRUE(F.Partition.contains(Ptr));
    ++Count;
  });
  EXPECT_EQ(Count, 40u);
  for (void *P : Held)
    F.Partition.deallocate(P);
}

TEST(RandomizedPartitionTest, RandomFillOnAllocateAndFree) {
  PartitionFixture F(256, 64, 2.0, 11, /*FillOnAllocate=*/true,
                     /*FillOnFree=*/true);
  auto *P = static_cast<uint32_t *>(F.Partition.allocate());
  ASSERT_NE(P, nullptr);
  int NonZero = 0;
  for (int I = 0; I < 64; ++I)
    NonZero += P[I] != 0 ? 1 : 0;
  EXPECT_GT(NonZero, 50) << "replicated mode fills fresh objects";
  uint32_t BeforeFree[64];
  std::memcpy(BeforeFree, P, sizeof(BeforeFree));
  F.Partition.deallocate(P);
  EXPECT_NE(std::memcmp(BeforeFree, P, sizeof(BeforeFree)), 0)
      << "free must scramble the slot in replicated mode";
}

TEST(RandomizedPartitionTest, HeapPartitionStreamsAreDecorrelated) {
  // The heap derives one stream per class from its seed; no two partitions
  // (and no partition and the heap-level stream) may share a seed.
  DieHardOptions O;
  O.HeapSize = 48 * 1024 * 1024;
  O.Seed = 42;
  DieHardHeap H(O);
  ASSERT_TRUE(H.isValid());
  std::set<uint64_t> Streams;
  Streams.insert(H.seed());
  for (int C = 0; C < DieHardHeap::NumPartitions; ++C)
    Streams.insert(H.partition(C).streamSeed());
  EXPECT_EQ(Streams.size(),
            static_cast<size_t>(DieHardHeap::NumPartitions) + 1);
}

TEST(RandomizedPartitionTest, HeapExposesPartitionGauges) {
  DieHardOptions O;
  O.HeapSize = 48 * 1024 * 1024;
  O.Seed = 43;
  DieHardHeap H(O);
  int C = SizeClass::sizeToClass(1024);
  void *P = H.allocate(1024);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(H.partition(C).live(), 1u);
  EXPECT_EQ(H.partition(C).liveBytes(), 1024u);
  EXPECT_GT(H.partition(C).fill(), 0.0);
  EXPECT_EQ(H.partitionIndexOf(P), C);
  int Stack;
  EXPECT_EQ(H.partitionIndexOf(&Stack), -1);
  H.deallocate(P);
  EXPECT_EQ(H.partition(C).fill(), 0.0);
}

TEST(RandomizedPartitionTest, BatchClaimRespectsThresholdAndIsDistinct) {
  PartitionFixture F(128, 64); // Threshold 32.
  void *Batch[64];
  size_t N = F.Partition.claimRandomSlots(Batch, 20);
  EXPECT_EQ(N, 20u);
  EXPECT_EQ(F.Partition.live(), 20u) << "claimed slots count as live";
  EXPECT_EQ(F.Partition.liveBytes(), 20u * 128u);
  EXPECT_EQ(F.Partition.stats().ClaimedSlots, 20u);
  EXPECT_EQ(F.Partition.stats().Allocations, 0u)
      << "claims are not user allocations";
  std::set<void *> Seen;
  for (size_t I = 0; I < N; ++I) {
    EXPECT_TRUE(F.Partition.contains(Batch[I]));
    EXPECT_TRUE(Seen.insert(Batch[I]).second) << "slot claimed twice";
  }

  // A second claim is clipped to the 1/M bound, and a third returns 0.
  void *More[64];
  size_t M = F.Partition.claimRandomSlots(More, 20);
  EXPECT_EQ(M, 12u) << "claim clipped at the threshold";
  EXPECT_EQ(F.Partition.fill(), 1.0);
  EXPECT_EQ(F.Partition.claimRandomSlots(More + M, 20), 0u);
  EXPECT_EQ(F.Partition.stats().FailedAllocations, 0u)
      << "a refused batch claim is not a user-visible failed malloc";

  // Interleaved single allocations also see the bound.
  EXPECT_EQ(F.Partition.allocate(), nullptr);
  EXPECT_EQ(F.Partition.stats().FailedAllocations, 1u);

  // Reclaim restores capacity without touching Frees.
  F.Partition.reclaimSlots(Batch, N);
  F.Partition.reclaimSlots(More, M);
  EXPECT_EQ(F.Partition.live(), 0u);
  EXPECT_EQ(F.Partition.liveBytes(), 0u);
  EXPECT_EQ(F.Partition.stats().ReturnedSlots, 32u);
  EXPECT_EQ(F.Partition.stats().Frees, 0u);
  EXPECT_NE(F.Partition.allocate(), nullptr);
}

TEST(RandomizedPartitionTest, BatchDeallocateValidatesEachPointer) {
  PartitionFixture F(64, 256);
  void *Batch[8];
  size_t N = F.Partition.claimRandomSlots(Batch, 8);
  ASSERT_EQ(N, 8u);

  // A batch containing a double free and a misaligned pointer frees only
  // the valid entries and counts the rest as ignored.
  void *Frees[10];
  std::memcpy(Frees, Batch, sizeof(Batch));
  Frees[8] = Batch[0]; // Double free within the batch.
  Frees[9] = static_cast<char *>(Batch[1]) + 1; // Misaligned.
  EXPECT_EQ(F.Partition.deallocateBatch(Frees, 10), 8u);
  EXPECT_EQ(F.Partition.stats().Frees, 8u);
  EXPECT_EQ(F.Partition.stats().IgnoredFrees, 2u);
  EXPECT_EQ(F.Partition.live(), 0u);
}

TEST(RandomizedPartitionTest, BatchClaimDrawsFromTheUniformDiscipline) {
  // Claiming K slots must hit every slot with the same long-run frequency
  // as repeated single allocations: claim/reclaim batches over many rounds
  // and chi-square the slot histogram against uniform.
  PartitionFixture F(64, 64, 2.0, 99);
  std::vector<uint64_t> Histogram(64, 0);
  constexpr int Rounds = 600;
  void *Batch[16];
  for (int R = 0; R < Rounds; ++R) {
    size_t N = F.Partition.claimRandomSlots(Batch, 16);
    ASSERT_EQ(N, 16u);
    for (size_t I = 0; I < N; ++I) {
      size_t Slot = (static_cast<char *>(Batch[I]) -
                     static_cast<const char *>(F.Partition.base())) /
                    64;
      ++Histogram[Slot];
    }
    F.Partition.reclaimSlots(Batch, N);
  }
  double Expected = Rounds * 16.0 / 64.0;
  double Chi2 = 0.0;
  for (uint64_t Count : Histogram) {
    double D = static_cast<double>(Count) - Expected;
    Chi2 += D * D / Expected;
  }
  // df = 63, alpha = 0.001 critical value 103.4; fixed seed, so the
  // statistic is deterministic.
  EXPECT_LT(Chi2, 103.4);
}

TEST(RandomizedPartitionTest, RemoteFreePushAndDrain) {
  // The sidecar at partition level: pushes park slots (still live, still
  // bit-set), the drain materializes them through the validated free.
  PartitionFixture F(64, 128);
  void *A = F.Partition.allocate();
  void *B = F.Partition.allocate();
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);

  F.Partition.remoteFree(A);
  F.Partition.remoteFree(B);
  EXPECT_EQ(F.Partition.remoteFrees(), 2u);
  EXPECT_EQ(F.Partition.pendingRemoteFrees(), 2u);
  EXPECT_TRUE(F.Partition.hasPendingRemoteFrees());
  EXPECT_EQ(F.Partition.live(), 2u)
      << "pushed slots stay in the live gauge until drained";
  EXPECT_EQ(F.Partition.objectSize(A), 64u) << "and stay bit-set";
  EXPECT_EQ(F.Partition.stats().Frees, 0u);

  EXPECT_EQ(F.Partition.drainRemoteFrees(), 2u);
  EXPECT_EQ(F.Partition.pendingRemoteFrees(), 0u);
  EXPECT_FALSE(F.Partition.hasPendingRemoteFrees());
  EXPECT_EQ(F.Partition.live(), 0u);
  EXPECT_EQ(F.Partition.stats().Frees, 2u);
  EXPECT_EQ(F.Partition.stats().SidecarDrains, 1u);
  EXPECT_EQ(F.Partition.stats().IgnoredFrees, 0u);

  // Empty drain: no work, no SidecarDrains tick.
  EXPECT_EQ(F.Partition.drainRemoteFrees(), 0u);
  EXPECT_EQ(F.Partition.stats().SidecarDrains, 1u);
}

TEST(RandomizedPartitionTest, RemoteFreeValidation) {
  PartitionFixture F(64, 128);
  auto *P = static_cast<char *>(F.Partition.allocate());
  ASSERT_NE(P, nullptr);

  // Misaligned pointer: rejected at push time from immutable geometry.
  F.Partition.remoteFree(P + 8);
  EXPECT_EQ(F.Partition.remoteFrees(), 0u);
  EXPECT_EQ(F.Partition.remoteFreeRejects(), 1u);

  // Double push before a drain: the link-word claim fails, the second
  // free is rejected, the chain stays intact.
  F.Partition.remoteFree(P);
  F.Partition.remoteFree(P);
  EXPECT_EQ(F.Partition.remoteFrees(), 1u);
  EXPECT_EQ(F.Partition.remoteFreeRejects(), 2u);
  EXPECT_EQ(F.Partition.drainRemoteFrees(), 1u);
  EXPECT_EQ(F.Partition.stats().Frees, 1u);

  // Push of a slot that is no longer live: accepted (the push cannot read
  // the bitmap without the lock) but exposed by drain-time validation.
  F.Partition.remoteFree(P);
  EXPECT_EQ(F.Partition.remoteFrees(), 2u);
  EXPECT_EQ(F.Partition.drainRemoteFrees(), 1u);
  EXPECT_EQ(F.Partition.stats().Frees, 1u);
  EXPECT_EQ(F.Partition.stats().IgnoredFrees, 1u);
}

TEST(RandomizedPartitionTest, RemoteFreeLifoChainOrder) {
  // The Treiber stack drains newest-first; order is an implementation
  // detail, but the chain must deliver every entry exactly once even when
  // pushes interleave with drains.
  PartitionFixture F(64, 256);
  std::vector<void *> Ptrs;
  for (int I = 0; I < 48; ++I) {
    void *P = F.Partition.allocate();
    ASSERT_NE(P, nullptr);
    Ptrs.push_back(P);
  }
  for (int I = 0; I < 16; ++I)
    F.Partition.remoteFree(Ptrs[static_cast<size_t>(I)]);
  EXPECT_EQ(F.Partition.drainRemoteFrees(), 16u);
  for (int I = 16; I < 48; ++I)
    F.Partition.remoteFree(Ptrs[static_cast<size_t>(I)]);
  EXPECT_EQ(F.Partition.drainRemoteFrees(), 32u);
  EXPECT_EQ(F.Partition.live(), 0u);
  EXPECT_EQ(F.Partition.stats().Frees, 48u);
  EXPECT_EQ(F.Partition.stats().IgnoredFrees, 0u);
  EXPECT_EQ(F.Partition.remoteFrees(), 48u);
  EXPECT_EQ(F.Partition.pendingRemoteFrees(), 0u);
}

} // namespace
} // namespace diehard
