//===- tests/core/ErrorCounterTest.cpp ------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exactly-once observability for every rejected-error class: each injected
/// caller error must increment precisely one counter by precisely one, and
/// corrupt nothing. The paper's error-tolerance claims (Section 3's
/// double-free and invalid-free masking) are only auditable if the
/// rejection paths are countable — these tests pin each error class to the
/// counter that reports it (IgnoredFrees, remoteFreeRejects,
/// ReallocRejects, overflowFailedAllocations) so the differential fuzz
/// oracle in src/fuzz can rely on exact bookkeeping.
///
//===----------------------------------------------------------------------===//

#include "core/DieHardHeap.h"
#include "core/ShardedHeap.h"
#include "core/SizeClass.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

namespace diehard {
namespace {

DieHardOptions loneOptions(uint64_t Seed) {
  DieHardOptions O;
  O.HeapSize = 24 * 1024 * 1024;
  O.Seed = Seed;
  return O;
}

ShardedHeapOptions shardedOptions(uint64_t Seed, size_t Shards) {
  ShardedHeapOptions O;
  O.Heap = loneOptions(Seed);
  O.NumShards = Shards;
  return O;
}

TEST(ErrorCounterTest, DoubleFreeCountsOneIgnoredFree) {
  DieHardHeap Heap(loneOptions(101));
  ASSERT_TRUE(Heap.isValid());
  void *P = Heap.allocate(128);
  ASSERT_NE(P, nullptr);
  Heap.deallocate(P);
  Heap.deallocate(P); // The error: the slot is already dead.
  DieHardStats S = Heap.stats();
  EXPECT_EQ(S.IgnoredFrees, 1u);
  EXPECT_EQ(S.Frees, 1u) << "the valid free is counted once, not twice";
  EXPECT_EQ(S.Allocations, 1u);
  EXPECT_EQ(Heap.bytesLive(), 0u);
}

TEST(ErrorCounterTest, MisalignedFreeIsCountedAndLeavesTheObjectLive) {
  DieHardHeap Heap(loneOptions(103));
  ASSERT_TRUE(Heap.isValid());
  unsigned char *P = static_cast<unsigned char *>(Heap.allocate(256));
  ASSERT_NE(P, nullptr);
  std::memset(P, 0x3C, 256);

  // Every interior misalignment 1..7 is an invalid free: counted, and the
  // object must remain live with its contents untouched.
  for (int K = 1; K <= 7; ++K)
    Heap.deallocate(P + K);

  DieHardStats S = Heap.stats();
  EXPECT_EQ(S.IgnoredFrees, 7u);
  EXPECT_EQ(S.Frees, 0u);
  EXPECT_GE(Heap.getObjectSize(P), 256u) << "object must still be live";
  for (int I = 0; I < 256; ++I)
    ASSERT_EQ(P[I], 0x3C) << "byte " << I << " corrupted by rejected frees";

  Heap.deallocate(P);
  EXPECT_EQ(Heap.stats().Frees, 1u);
  EXPECT_EQ(Heap.stats().IgnoredFrees, 7u) << "valid free adds nothing";
}

TEST(ErrorCounterTest, DanglingFreeAfterReallocMoveIsCounted) {
  DieHardHeap Heap(loneOptions(107));
  ASSERT_TRUE(Heap.isValid());
  void *P = Heap.allocate(64);
  ASSERT_NE(P, nullptr);
  // Force a move by growing past the in-place window.
  void *Q = Heap.reallocate(P, 4096);
  ASSERT_NE(Q, nullptr);
  ASSERT_NE(Q, P);
  // The stale pointer is now a dead slot; freeing it is the classic
  // dangling free the paper tolerates.
  Heap.deallocate(P);
  DieHardStats S = Heap.stats();
  EXPECT_EQ(S.IgnoredFrees, 1u);
  Heap.deallocate(Q);
  S = Heap.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
  EXPECT_EQ(S.IgnoredFrees, 1u);
}

TEST(ErrorCounterTest, ForeignFreeCountsOnceOnTheShardedLayer) {
  ShardedHeap Heap(shardedOptions(109, 2));
  ASSERT_TRUE(Heap.isValid());
  alignas(16) static unsigned char Foreign[64];
  Heap.deallocate(Foreign); // No shard, no large object: count and ignore.
  DieHardStats S = Heap.stats();
  EXPECT_EQ(S.IgnoredFrees, 1u);
  EXPECT_EQ(S.Frees, 0u);
  // The rejected pointer stays untouched (nothing wrote a freelist link
  // through it).
  for (unsigned char B : Foreign)
    ASSERT_EQ(B, 0u);
}

TEST(ErrorCounterTest, CrossShardDoubleFreeIsRejectedAtTheSidecarPush) {
  ShardedHeap Heap(shardedOptions(113, 2));
  ASSERT_TRUE(Heap.isValid());
  void *P = Heap.allocate(512);
  ASSERT_NE(P, nullptr);
  size_t Owner = Heap.shardIndexOf(P);
  ASSERT_LT(Owner, Heap.numShards());

  // Free the same pointer twice from a thread homed on the *other* shard:
  // both frees take the lock-free sidecar route. The first push is
  // accepted; the second loses the link-word CAS and is rejected before
  // any partition lock is ever taken.
  std::thread Worker([&] {
    ShardedHeap::pinThreadToken(static_cast<uint32_t>(Owner) + 1);
    Heap.deallocate(P);
    Heap.deallocate(P);
  });
  Worker.join();

  EXPECT_EQ(Heap.remoteFrees(), 1u) << "exactly one push accepted";
  EXPECT_EQ(Heap.remoteFreeRejects(), 1u) << "exactly one push rejected";

  // Rejects fold into IgnoredFrees and the pending push into Frees, so
  // the aggregate books balance even before the drain materializes it.
  DieHardStats Before = Heap.stats();
  EXPECT_EQ(Before.IgnoredFrees, 1u);
  EXPECT_EQ(Before.Frees, 1u);

  Heap.drainRemoteFrees();
  DieHardStats After = Heap.stats();
  EXPECT_EQ(After.IgnoredFrees, 1u) << "the drain must not double-count";
  EXPECT_EQ(After.Frees, 1u);
  EXPECT_EQ(After.Allocations, After.Frees);
  EXPECT_EQ(Heap.bytesLive(), 0u);
}

TEST(ErrorCounterTest, WildReallocCountsOnBothLayers) {
  DieHardHeap Lone(loneOptions(127));
  ASSERT_TRUE(Lone.isValid());
  alignas(16) static unsigned char NotMine[64];
  EXPECT_EQ(Lone.reallocate(NotMine, 256), nullptr);
  EXPECT_EQ(Lone.stats().ReallocRejects, 1u);
  EXPECT_EQ(Lone.stats().IgnoredFrees, 0u)
      << "a refused realloc is not an ignored free";
  EXPECT_EQ(Lone.stats().Allocations, 0u)
      << "the refusal happens before any allocation";

  ShardedHeap Sharded(shardedOptions(127, 2));
  ASSERT_TRUE(Sharded.isValid());
  EXPECT_EQ(Sharded.reallocate(NotMine, 256), nullptr);
  EXPECT_EQ(Sharded.reallocRejects(), 1u);
  EXPECT_EQ(Sharded.stats().ReallocRejects, 1u);
  EXPECT_EQ(Sharded.statsApprox().ReallocRejects, 1u)
      << "lock-free stats must agree";

  // A realloc of a *dead* slot is the same class of error.
  void *P = Sharded.allocate(64);
  ASSERT_NE(P, nullptr);
  Sharded.deallocate(P);
  EXPECT_EQ(Sharded.reallocate(P, 128), nullptr);
  EXPECT_EQ(Sharded.reallocRejects(), 2u);
}

TEST(ErrorCounterTest, OverflowExhaustionCountsOneFailedAllocation) {
  // Tiny two-shard heap (64 KB partitions): saturate one class on both
  // shards, then one more request fails — counted exactly once, in both
  // the dedicated gauge and the folded FailedAllocations.
  ShardedHeapOptions O;
  O.Heap.HeapSize = 12 * SizeClass::MaxObjectSize * 4;
  O.Heap.Seed = 131;
  O.NumShards = 2;
  O.OverflowRouting = true;
  ShardedHeap Heap(O);
  ASSERT_TRUE(Heap.isValid());

  int C = SizeClass::sizeToClass(4096);
  size_t Threshold = Heap.shard(0).thresholdForClass(C);
  ASSERT_GT(Threshold, 0u);
  std::vector<void *> Held;
  for (size_t I = 0; I < 2 * Threshold; ++I) {
    void *P = Heap.allocate(4096);
    ASSERT_NE(P, nullptr) << "allocation " << I;
    Held.push_back(P);
  }
  EXPECT_EQ(Heap.overflowFailedAllocations(), 0u);

  EXPECT_EQ(Heap.allocate(4096), nullptr);
  EXPECT_EQ(Heap.overflowFailedAllocations(), 1u);
  EXPECT_EQ(Heap.stats().FailedAllocations, 1u)
      << "one failed malloc, not one per probed partition";

  EXPECT_EQ(Heap.allocate(4096), nullptr);
  EXPECT_EQ(Heap.overflowFailedAllocations(), 2u) << "one per failed call";

  for (void *P : Held)
    Heap.deallocate(P);
  Heap.drainRemoteFrees();
  EXPECT_EQ(Heap.bytesLive(), 0u);
}

TEST(ErrorCounterTest, ErrorCountersSurviveTheThreadCacheTier) {
  // The same error classes with the lock-free cache tier in front: the
  // deferred-free buffer must not swallow or double-count a rejection.
  ShardedHeapOptions O = shardedOptions(137, 2);
  O.ThreadCacheSlots = 4;
  ShardedHeap Heap(O);
  ASSERT_TRUE(Heap.isValid());

  unsigned char *P = static_cast<unsigned char *>(Heap.allocate(128));
  ASSERT_NE(P, nullptr);
  std::memset(P, 0x77, 128);

  // Misaligned frees are geometric errors the deferred path also rejects
  // (validation happens when the flush materializes them).
  Heap.deallocate(P + 3);
  Heap.flushThreadCache();
  Heap.drainRemoteFrees();
  EXPECT_EQ(Heap.stats().IgnoredFrees, 1u);
  for (int I = 0; I < 128; ++I)
    ASSERT_EQ(P[I], 0x77);

  // Back-to-back double free through the deferred buffer: one valid free,
  // one ignored, never two live handouts of the slot.
  Heap.deallocate(P);
  Heap.deallocate(P);
  Heap.flushThreadCache();
  Heap.drainRemoteFrees();
  DieHardStats S = Heap.stats();
  EXPECT_EQ(S.IgnoredFrees, 2u);
  EXPECT_EQ(S.Allocations, S.Frees);
  Heap.flushThreadCache();
  EXPECT_EQ(Heap.cachedSlots(), 0u);
  EXPECT_EQ(Heap.bytesLive(), 0u);
}

} // namespace
} // namespace diehard
