//===- tests/core/ShardedHeapTest.cpp -------------------------------------===//
//
// Part of the DieHard reproduction (Berger & Zorn, PLDI 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the sharded heap layer: single-shard equivalence with a lone
/// DieHardHeap, cross-thread frees routed to the owning shard, thread churn
/// beyond the shard count, stats aggregation, and the shared large-object
/// path. The multithreaded cases double as the TSan/ASan workload for the
/// sanitizer CI lanes.
///
//===----------------------------------------------------------------------===//

#include "core/ShardedHeap.h"

#include "core/SizeClass.h"

#include <gtest/gtest.h>

#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

namespace diehard {
namespace {

ShardedHeapOptions smallOptions(size_t NumShards, uint64_t Seed = 42) {
  ShardedHeapOptions O;
  O.Heap.HeapSize = 96 * 1024 * 1024;
  O.Heap.Seed = Seed;
  O.NumShards = NumShards;
  return O;
}

ptrdiff_t offsetFromBase(const void *Ptr, const DieHardHeap &H) {
  return static_cast<const char *>(Ptr) -
         static_cast<const char *>(H.heapBase());
}

TEST(ShardedHeapTest, SingleShardMatchesDieHardHeapBitForBit) {
  // With one shard, the layer must reproduce a lone DieHardHeap exactly:
  // same seed, same RNG stream, same slot for every request. The replicated
  // framework depends on this equivalence for per-seed determinism.
  DieHardOptions Plain;
  Plain.HeapSize = 96 * 1024 * 1024;
  Plain.Seed = 42;
  DieHardHeap Reference(Plain);

  ShardedHeap Sharded(smallOptions(1));
  ASSERT_TRUE(Reference.isValid());
  ASSERT_TRUE(Sharded.isValid());
  ASSERT_EQ(Sharded.numShards(), 1u);
  EXPECT_EQ(Sharded.seed(), Reference.seed());

  const size_t Sizes[] = {8, 24, 100, 512, 16, 2048, 8000, 16384, 1, 333};
  std::vector<void *> FromReference, FromSharded;
  for (int Round = 0; Round < 50; ++Round)
    for (size_t Size : Sizes) {
      void *A = Reference.allocate(Size);
      void *B = Sharded.allocate(Size);
      ASSERT_NE(A, nullptr);
      ASSERT_NE(B, nullptr);
      ASSERT_EQ(offsetFromBase(A, Reference),
                offsetFromBase(B, Sharded.shard(0)))
          << "placement diverged for size " << Size;
      FromReference.push_back(A);
      FromSharded.push_back(B);
    }

  // Free every other object and allocate again: the streams must stay in
  // lockstep through frees too.
  for (size_t I = 0; I < FromReference.size(); I += 2) {
    Reference.deallocate(FromReference[I]);
    Sharded.deallocate(FromSharded[I]);
  }
  for (size_t Size : Sizes) {
    void *A = Reference.allocate(Size);
    void *B = Sharded.allocate(Size);
    ASSERT_EQ(offsetFromBase(A, Reference),
              offsetFromBase(B, Sharded.shard(0)));
  }
}

TEST(ShardedHeapTest, ResolvesShardCountAndDerivesSeeds) {
  ShardedHeap H(smallOptions(4));
  ASSERT_TRUE(H.isValid());
  EXPECT_EQ(H.numShards(), 4u);
  EXPECT_EQ(H.shard(0).seed(), 42u);
  for (size_t I = 1; I < H.numShards(); ++I)
    EXPECT_NE(H.shard(I).seed(), H.shard(0).seed())
        << "shard " << I << " must not share shard 0's stream";
}

TEST(ShardedHeapTest, ShardCountZeroUsesHardwareConcurrency) {
  ShardedHeap H(smallOptions(0));
  EXPECT_EQ(H.numShards(), ShardedHeap::defaultShardCount());
  EXPECT_GE(H.numShards(), 1u);
}

TEST(ShardedHeapTest, ClampsAbsurdShardCounts) {
  ShardedHeapOptions O = smallOptions(100000);
  O.Heap.HeapSize = 512 * 1024 * 1024; // Keep per-shard partitions usable.
  ShardedHeap H(O);
  EXPECT_EQ(H.numShards(), ShardedHeap::MaxShards);
}

TEST(ShardedHeapTest, EveryShardKeepsTheFullReservation) {
  // Hoard-style sizing: each shard reserves the full configured size, so a
  // single-threaded process does not lose capacity to sharding. Reference:
  // a lone DieHardHeap with the same options.
  DieHardOptions Plain;
  Plain.HeapSize = 96 * 1024 * 1024;
  Plain.Seed = 42;
  DieHardHeap Reference(Plain);

  ShardedHeap H(smallOptions(4));
  for (size_t I = 0; I < H.numShards(); ++I) {
    EXPECT_EQ(H.shard(I).heapBytes(), Reference.heapBytes());
    for (int C = 0; C < SizeClass::NumClasses; ++C)
      EXPECT_EQ(H.shard(I).thresholdForClass(C),
                Reference.thresholdForClass(C));
  }
}

TEST(ShardedHeapTest, CrossThreadFreeReturnsToOwningShard) {
  ShardedHeap H(smallOptions(4));
  ASSERT_TRUE(H.isValid());

  constexpr int Count = 500;
  std::vector<void *> Owned;
  for (int I = 0; I < Count; ++I) {
    void *P = H.allocate(64);
    ASSERT_NE(P, nullptr);
    std::memset(P, 0x5A, 64);
    Owned.push_back(P);
  }
  size_t Owner = H.shardIndexOf(Owned.front());
  ASSERT_LT(Owner, H.numShards());

  // Free everything from a different thread (which has a different home
  // shard token); the frees must land on the owner, not the freeing
  // thread's shard.
  std::thread Freer([&] {
    for (void *P : Owned) {
      EXPECT_EQ(H.shardIndexOf(P), Owner);
      H.deallocate(P);
    }
  });
  Freer.join();

  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, static_cast<uint64_t>(Count));
  EXPECT_EQ(S.Frees, static_cast<uint64_t>(Count));
  EXPECT_EQ(S.IgnoredFrees, 0u);
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(ShardedHeapTest, ConsecutiveThreadsCoverEveryShard) {
  ShardedHeap H(smallOptions(4));
  // Thread tokens are handed out round-robin, so a run of numShards()
  // threads created back to back must land on numShards() distinct shards.
  std::vector<size_t> Homes;
  for (size_t I = 0; I < H.numShards(); ++I) {
    std::thread T([&] {
      void *P = H.allocate(128);
      ASSERT_NE(P, nullptr);
      Homes.push_back(H.shardIndexOf(P));
      H.deallocate(P);
    });
    T.join(); // Sequential: no races on Homes, tokens stay consecutive.
  }
  std::vector<bool> Seen(H.numShards(), false);
  for (size_t Home : Homes) {
    ASSERT_LT(Home, H.numShards());
    Seen[Home] = true;
  }
  for (size_t I = 0; I < Seen.size(); ++I)
    EXPECT_TRUE(Seen[I]) << "no thread was assigned shard " << I;
}

TEST(ShardedHeapTest, ThreadChurnBeyondShardCount) {
  ShardedHeap H(smallOptions(2));
  ASSERT_TRUE(H.isValid());

  // Waves of short-lived threads, many more than there are shards: token
  // assignment must wrap and every thread's traffic must stay intact.
  constexpr int Waves = 4;
  constexpr int ThreadsPerWave = 12;
  std::atomic<int> Failures{0};
  for (int Wave = 0; Wave < Waves; ++Wave) {
    std::vector<std::thread> Threads;
    for (int T = 0; T < ThreadsPerWave; ++T)
      Threads.emplace_back([&H, &Failures, Wave, T] {
        struct Obj {
          unsigned char *Ptr;
          size_t Size;
          unsigned char Tag;
        };
        unsigned State = static_cast<unsigned>(Wave * 131 + T + 1);
        std::vector<Obj> Live;
        for (int Step = 0; Step < 400; ++Step) {
          State = State * 1664525u + 1013904223u;
          if (State % 2 == 0 || Live.empty()) {
            size_t Size = 1 + State % 1024;
            auto Tag = static_cast<unsigned char>(State >> 24);
            auto *P = static_cast<unsigned char *>(H.allocate(Size));
            if (P == nullptr) {
              ++Failures;
              return;
            }
            std::memset(P, Tag, Size);
            Live.push_back(Obj{P, Size, Tag});
          } else {
            Obj O = Live.back();
            Live.pop_back();
            for (size_t I = 0; I < O.Size; ++I)
              if (O.Ptr[I] != O.Tag) {
                ++Failures;
                return;
              }
            H.deallocate(O.Ptr);
          }
        }
        for (Obj &O : Live)
          H.deallocate(O.Ptr);
      });
    for (std::thread &T : Threads)
      T.join();
  }
  EXPECT_EQ(Failures.load(), 0);
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(ShardedHeapTest, StatsAggregateAcrossShardsAndLargePath) {
  ShardedHeap H(smallOptions(4));
  ASSERT_TRUE(H.isValid());

  constexpr size_t PerThread = 50;
  std::vector<std::thread> Threads;
  std::mutex PtrLock;
  std::vector<void *> All;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      std::vector<void *> Mine;
      for (size_t I = 0; I < PerThread; ++I) {
        void *P = H.allocate(256);
        ASSERT_NE(P, nullptr);
        Mine.push_back(P);
      }
      std::lock_guard<std::mutex> G(PtrLock);
      All.insert(All.end(), Mine.begin(), Mine.end());
    });
  for (std::thread &T : Threads)
    T.join();

  void *Large = H.allocate(SizeClass::MaxObjectSize + 1);
  ASSERT_NE(Large, nullptr);

  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, 4 * PerThread);
  EXPECT_EQ(S.LargeAllocations, 1u);
  EXPECT_EQ(H.liveLargeObjects(), 1u);

  uint64_t PerShardSum = 0;
  for (size_t I = 0; I < H.numShards(); ++I)
    PerShardSum += H.shard(I).stats().Allocations;
  EXPECT_EQ(PerShardSum, S.Allocations)
      << "aggregate must equal the sum of the shards";

  for (void *P : All)
    H.deallocate(P);
  H.deallocate(Large);
  EXPECT_EQ(H.bytesLive(), 0u);
  EXPECT_EQ(H.stats().LargeFrees, 1u);
}

TEST(ShardedHeapTest, LargeObjectsBypassShards) {
  ShardedHeap H(smallOptions(4));
  constexpr size_t Size = 64 * 1024;
  auto *P = static_cast<char *>(H.allocate(Size));
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(H.shardIndexOf(P), H.numShards()) << "large owner id expected";
  EXPECT_EQ(H.getObjectSize(P), Size);
  std::memset(P, 0x42, Size);
  H.deallocate(P);
  EXPECT_EQ(H.getObjectSize(P), 0u);
  H.deallocate(P); // Double free: validated and ignored.
  EXPECT_EQ(H.stats().IgnoredFrees, 1u);
}

TEST(ShardedHeapTest, ForeignPointersAreIgnored) {
  ShardedHeap H(smallOptions(2));
  int Local = 0;
  EXPECT_EQ(H.shardIndexOf(&Local), SIZE_MAX);
  EXPECT_EQ(H.getObjectSize(&Local), 0u);
  H.deallocate(&Local);
  EXPECT_EQ(H.stats().IgnoredFrees, 1u);
}

TEST(ShardedHeapTest, CrossThreadReallocPreservesData) {
  ShardedHeap H(smallOptions(4));
  auto *P = static_cast<unsigned char *>(H.allocate(100));
  ASSERT_NE(P, nullptr);
  for (int I = 0; I < 100; ++I)
    P[I] = static_cast<unsigned char>(I);
  size_t HomeOfMain = H.shardIndexOf(P);

  unsigned char *Q = nullptr;
  std::thread Grower([&] {
    // Growing past the rounded class size forces a move; the fresh block
    // comes from this thread's home shard.
    Q = static_cast<unsigned char *>(H.reallocate(P, 4096));
  });
  Grower.join();
  ASSERT_NE(Q, nullptr);
  for (int I = 0; I < 100; ++I)
    ASSERT_EQ(Q[I], static_cast<unsigned char>(I));
  EXPECT_LT(H.shardIndexOf(Q), H.numShards());
  (void)HomeOfMain; // The old slot is freed on its owner either way.
  H.deallocate(Q);
  EXPECT_EQ(H.bytesLive(), 0u);
}

TEST(ShardedHeapTest, ReallocSemanticsMatchDieHardHeap) {
  ShardedHeap H(smallOptions(2));
  // realloc(nullptr, n) allocates.
  void *P = H.reallocate(nullptr, 64);
  ASSERT_NE(P, nullptr);
  // Small shrink within the class stays in place.
  EXPECT_EQ(H.reallocate(P, 40), P);
  // realloc(p, 0) frees.
  EXPECT_EQ(H.reallocate(P, 0), nullptr);
  EXPECT_EQ(H.bytesLive(), 0u);
  // Foreign pointers are refused.
  int Local = 0;
  EXPECT_EQ(H.reallocate(&Local, 32), nullptr);
}

TEST(ShardedHeapTest, ZeroedAllocationIsZeroFilled) {
  ShardedHeap H(smallOptions(2));
  auto *P = static_cast<unsigned char *>(H.allocateZeroed(16, 32));
  ASSERT_NE(P, nullptr);
  for (int I = 0; I < 16 * 32; ++I)
    ASSERT_EQ(P[I], 0u);
  H.deallocate(P);
  EXPECT_EQ(H.allocateZeroed(SIZE_MAX / 2, 4), nullptr) << "overflow check";
}

TEST(ShardedHeapTest, TooSmallReservationTurnsInvalid) {
  ShardedHeapOptions O = smallOptions(8);
  O.Heap.HeapSize = 64 * 1024; // Far below 8 usable shards.
  ShardedHeap H(O);
  EXPECT_FALSE(H.isValid());
  EXPECT_EQ(H.allocate(64), nullptr);
}

TEST(ShardedHeapTest, ConcurrentMixedStress) {
  // The all-in-one race hunt for the sanitizer lanes: small and large
  // traffic, cross-thread frees through a shared exchange, reallocs and
  // queries, all concurrent.
  ShardedHeap H(smallOptions(4, 7));
  ASSERT_TRUE(H.isValid());

  std::mutex ExchangeLock;
  std::vector<std::pair<unsigned char *, size_t>> Exchange;
  std::atomic<int> Failures{0};

  auto Worker = [&](unsigned Id) {
    unsigned State = Id * 2654435761u + 1;
    auto Next = [&State] {
      State = State * 1664525u + 1013904223u;
      return State;
    };
    std::vector<std::pair<unsigned char *, size_t>> Live;
    for (int Step = 0; Step < 3000; ++Step) {
      unsigned Op = Next() % 100;
      if (Op < 40 || Live.empty()) {
        size_t Size = (Op % 10 == 0) ? 17 * 1024 + Next() % 4096
                                     : 1 + Next() % 2048;
        auto *P = static_cast<unsigned char *>(H.allocate(Size));
        if (P == nullptr) {
          ++Failures;
          return;
        }
        std::memset(P, static_cast<int>(Id), Size);
        Live.emplace_back(P, Size);
      } else if (Op < 55) {
        auto [P, Size] = Live.back();
        Live.pop_back();
        std::lock_guard<std::mutex> G(ExchangeLock);
        Exchange.emplace_back(P, Size);
      } else if (Op < 70) {
        std::unique_lock<std::mutex> G(ExchangeLock);
        if (!Exchange.empty()) {
          auto [P, Size] = Exchange.back();
          Exchange.pop_back();
          G.unlock();
          // Freed cross-thread: the registry must route to the owner.
          if (H.getObjectSize(P) == 0)
            ++Failures;
          H.deallocate(P);
        }
      } else if (Op < 80 && !Live.empty()) {
        auto &[P, Size] = Live.back();
        size_t NewSize = 1 + Next() % 4096;
        auto *Q = static_cast<unsigned char *>(H.reallocate(P, NewSize));
        if (Q == nullptr) {
          ++Failures;
          return;
        }
        P = Q;
        Size = NewSize;
        std::memset(P, static_cast<int>(Id), Size);
      } else if (!Live.empty()) {
        auto [P, Size] = Live.back();
        Live.pop_back();
        for (size_t I = 0; I < Size; ++I)
          if (P[I] != static_cast<unsigned char>(Id)) {
            ++Failures;
            break;
          }
        H.deallocate(P);
      }
    }
    for (auto &[P, Size] : Live)
      H.deallocate(P);
  };

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 8; ++T)
    Threads.emplace_back(Worker, T + 1);
  for (std::thread &T : Threads)
    T.join();
  for (auto &[P, Size] : Exchange)
    H.deallocate(P);

  EXPECT_EQ(Failures.load(), 0);
  DieHardStats S = H.stats();
  EXPECT_EQ(S.Allocations, S.Frees);
  EXPECT_EQ(S.LargeAllocations, S.LargeFrees);
  EXPECT_EQ(H.bytesLive(), 0u);
  EXPECT_EQ(H.liveLargeObjects(), 0u);
}

} // namespace
} // namespace diehard
